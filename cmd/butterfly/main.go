// Command butterfly inspects butterfly networks (experiment E1): it prints
// the Figure 1 structure of B8 by default — node counts, degree profile,
// diameter against the §1.1 formulas — an ASCII rendering of the network
// with its straight/cross edge pattern, optional Graphviz DOT output, and
// the Beneš rearrangeability check behind Lemma 2.5.
//
// -json writes the structure table and the Beneš check as a
// machine-readable run manifest.
//
// Usage:
//
//	butterfly [-n 8] [-wrap] [-diagram] [-dot] [-json path] [-trace path]
//	          [-metrics]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/topology"
)

func main() {
	n := flag.Int("n", 8, "number of butterfly inputs (power of two)")
	wrap := flag.Bool("wrap", false, "inspect Wn instead of Bn")
	diagram := flag.Bool("diagram", true, "print the Figure 1 style diagram (Bn only, n ≤ 16)")
	dot := flag.Bool("dot", false, "emit Graphviz DOT to stdout instead of the report")
	out := cli.RegisterOutput()
	flag.Parse()

	cli.Validate(cli.PowerOfTwo("n", *n))

	if *dot {
		var b *topology.Butterfly
		if *wrap {
			b = topology.NewWrappedButterfly(*n)
		} else {
			b = topology.NewButterfly(*n)
		}
		render.ButterflyDOT(os.Stdout, b, nil)
		return
	}

	out.Start("butterfly")

	reports := []core.StructureReport{core.ButterflyStructure(*n, *wrap)}
	if !*wrap && *n >= 4 {
		reports = append(reports, core.ButterflyStructure(*n, true))
	}
	fmt.Print(core.RenderStructureTable(reports))

	if *diagram && !*wrap && *n <= 16 {
		fmt.Println()
		fmt.Print(render.ButterflyASCII(topology.NewButterfly(*n)))
	}

	routed, total := core.BenesRearrangeabilityCheck(maxInt(*n, 4), 100, 7)
	fmt.Printf("\nBeneš rearrangeability (Lemma 2.5 substrate): %d/%d permutations routed edge-disjointly\n",
		routed, total)

	m := out.Manifest()
	m.AddTable("structure", "E1: structure (Fig. 1, §1.1)", reports).
		AddTable("benes", "Beneš rearrangeability (Lemma 2.5)", []core.BenesCheck{
			{N: maxInt(*n, 4), Routed: routed, Total: total},
		})
	out.Finish(m)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
