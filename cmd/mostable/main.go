// Command mostable regenerates experiment E3: the exact M2-bisection width
// of the mesh of stars MOS_{j,j} for a sweep of j, showing
// BW(MOS_{j,j},M2)/j² descending to √2−1 and the optimal class fractions
// converging to (√½,√½) (Lemmas 2.17–2.19).
//
// -json writes the sweep as a machine-readable run manifest.
//
// Usage:
//
//	mostable [-max-j 1024] [-json path] [-trace path] [-metrics]
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	maxJ := flag.Int("max-j", 1024, "largest j in the sweep (doubling from 2)")
	out := cli.RegisterOutput()
	flag.Parse()

	cli.Validate(cli.Positive("max-j", *maxJ))
	out.Start("mostable")

	var js []int
	for j := 2; j <= *maxJ; j *= 2 {
		js = append(js, j)
	}
	results := core.MOSConvergence(js)
	fmt.Print(core.RenderMOSTable(results))

	m := out.Manifest()
	m.AddTable("mos", "BW(MOS_{j,j}, M2)/j² → √2−1 (Lemmas 2.17–2.19)", results)
	out.Finish(m)
}
