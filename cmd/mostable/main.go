// Command mostable regenerates experiment E3: the exact M2-bisection width
// of the mesh of stars MOS_{j,j} for a sweep of j, showing
// BW(MOS_{j,j},M2)/j² descending to √2−1 and the optimal class fractions
// converging to (√½,√½) (Lemmas 2.17–2.19).
//
// Usage:
//
//	mostable [-max-j 1024]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	maxJ := flag.Int("max-j", 1024, "largest j in the sweep (doubling from 2)")
	flag.Parse()

	var js []int
	for j := 2; j <= *maxJ; j *= 2 {
		js = append(js, j)
	}
	fmt.Print(core.RenderMOSTable(core.MOSConvergence(js)))
}
