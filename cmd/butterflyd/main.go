// Command butterflyd is the long-running query daemon over the
// reproduction's engines: an HTTP/JSON API serving bisection widths,
// §4.3 expansion tables, Monte-Carlo routing statistics and the full
// E1–E17 report, with an LRU result cache, coalescing of concurrent
// identical queries, per-request deadlines, and explicit overload
// control (429/503).
//
// Responses reuse the run-manifest JSON schema of the CLI commands'
// -json flag (schema "repro/run-manifest", version 1), so a served
// answer and a paperrepro artifact are interchangeable downstream.
//
// Endpoints:
//
//	/v1/bisection?network=bn&n=1024[&exact-nodes=32][&timeout=5s]
//	/v1/expansion?kind=ee_wn&n=256[&d=1,2,3][&exact-nodes=32][&kmax=8]
//	/v1/routing?n=64[&kind=random|permutation][&trials=25][&seed=1]
//	/v1/report[?quick=true][&seed=1]
//	/healthz          200 while serving, 503 while draining
//	/debug/metrics    live metrics registry (cache, latency, solver)
//
// SIGINT/SIGTERM drain gracefully: in-flight solves are signalled to
// wind down, their handlers return best-so-far results marked non-exact
// (complete=false in the response's serve table), and the process exits
// once every response is written or -drain expires.
//
// Usage:
//
//	butterflyd [-addr localhost:8080] [-inflight 0] [-queue 0]
//	           [-queue-wait 2s] [-default-timeout 10s] [-max-timeout 60s]
//	           [-cache 256] [-drain 30s] [-trace path] [-pprof addr]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	inflight := flag.Int("inflight", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a solve slot before 429 (0 = 4×inflight)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max time a queued request waits for a slot before 503")
	defaultTimeout := flag.Duration("default-timeout", 10*time.Second, "solve budget when the request names none")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested solve budgets")
	cacheEntries := flag.Int("cache", 256, "result-cache entries (LRU)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	tracePath := flag.String("trace", "", "write request and solver trace events (JSONL) to this path")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof + /debug/metrics on this extra address")
	flag.Parse()

	cli.Validate(
		cli.NonNegative("inflight", *inflight),
		cli.NonNegative("queue", *queue),
		cli.Positive("cache", *cacheEntries),
	)

	var tracer *obs.Tracer
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -trace: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		tracer = obs.NewTracer(f)
	}

	cli.StartPprof(*pprofAddr)

	srv := serve.New(serve.Config{
		MaxInflight:     *inflight,
		MaxQueue:        *queue,
		QueueWait:       *queueWait,
		DefaultDeadline: *defaultTimeout,
		MaxDeadline:     *maxTimeout,
		CacheEntries:    *cacheEntries,
		Trace:           tracer,
	})

	// Bind synchronously so an occupied port is an immediate exit-1, not
	// a daemon that looks alive and serves nothing.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "butterflyd: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "butterflyd: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "butterflyd: serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintf(os.Stderr, "butterflyd: draining (up to %s)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "butterflyd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "butterflyd: serve: %v\n", err)
		os.Exit(1)
	}
	if traceFile != nil {
		if err := tracer.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -trace: %v\n", err)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -trace: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "butterflyd: drained cleanly")
}
