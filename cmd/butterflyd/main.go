// Command butterflyd is the long-running query daemon over the
// reproduction's engines: an HTTP/JSON API serving bisection widths,
// §4.3 expansion tables, Monte-Carlo routing statistics and the full
// E1–E17 report, with an LRU result cache, coalescing of concurrent
// identical queries, per-request deadlines, and explicit overload
// control (429/503).
//
// Responses reuse the run-manifest JSON schema of the CLI commands'
// -json flag (schema "repro/run-manifest", version 1), so a served
// answer and a paperrepro artifact are interchangeable downstream.
//
// Endpoints:
//
//	/v1/bisection?network=bn&n=1024[&exact-nodes=32][&timeout=5s]
//	/v1/expansion?kind=ee_wn&n=256[&d=1,2,3][&exact-nodes=32][&kmax=8]
//	/v1/routing?n=64[&kind=random|permutation|hotspot|bitreversal]
//	           [&trials=25][&seed=1][&drop=0,0.05,0.1][&dead=0.02]
//	           [&retransmits=4][&switching=sf|ct]
//	/v1/report[?quick=true][&seed=1]
//	/healthz          200 while serving, 503 while draining
//	/debug/metrics    live metrics registry (cache, latency, solver)
//	/debug/statusz    uptime, build/config, occupancy, latency quantiles
//
// Every query response carries an X-Request-ID header (the client's own,
// sanitized, or a generated one); the same ID labels the request's trace
// spans and its -access-log line, so one slow request can be chased
// across client, log and trace. With -access-log PATH the daemon appends
// one JSON line per query request (id, endpoint, status, outcome, cache
// source, latency µs, bytes) to PATH; "-" means stderr.
//
// The /v1/routing fault parameters drive the seeded lossy-link model:
// drop is the per-transmission loss probability (a comma-separated list
// sweeps a degradation curve, one row per rate), dead is the fraction of
// links killed for whole trials, retransmits bounds per-packet retries
// (0 = unbounded) and switching picks store-and-forward (sf) or
// cut-through (ct). A query whose every trial exhausts the 64·N step
// limit answers 422 instead of looping.
//
// SIGINT/SIGTERM drain gracefully: in-flight solves are signalled to
// wind down, their handlers return best-so-far results marked non-exact
// (complete=false in the response's serve table), and the process exits
// once every response is written or -drain expires.
//
// With -store DIR the daemon keeps a persistent result store under DIR:
// LRU evictions spill to it, cache misses fall back to it (X-Cache:
// store-hit), and the drain flushes the surviving cache into it — so a
// restarted daemon answers everything the previous process ever solved
// from disk, no solver invoked. The store directory also holds the
// routing engine's compiled-index snapshot (routeindex.bfc), written at
// drain and reloaded at startup.
//
// With -precompute GRID the daemon runs as a batch filler instead of a
// server: it solves every missing point of the declared grid into the
// store and exits. GRID is a comma-separated list of
// network:loglo-loghi[:exact-nodes] ranges over log2(n), e.g.
// "bn:3-12,wn:2-8,ccc:3-8".
//
// Cluster mode shards the daemon across peers. -cluster-listen ADDR
// serves the cluster RPC protocol (CRC-framed codec records over TCP) on
// ADDR: forwarded queries, distributed branch-and-bound shard batches,
// and incumbent gossip. -peers lists every node's cluster address
// (identical on all nodes); with -coordinator this node additionally
// consistent-hashes each canonical request key over the peer ring and
// forwards queries it does not own — the answer is relayed verbatim with
// X-Cluster-Peer naming the owner. A peer that stops answering is
// benched (its keys reassign to the survivors) and queries fall back to
// local solving, so the cluster degrades instead of failing.
//
// Usage:
//
//	butterflyd [-addr localhost:8080] [-inflight 0] [-queue 0]
//	           [-queue-wait 2s] [-default-timeout 10s] [-max-timeout 60s]
//	           [-cache 256] [-cache-bytes 67108864] [-drain 30s]
//	           [-store dir] [-precompute grid] [-precompute-workers 0]
//	           [-cluster-listen addr] [-peers a,b,c] [-coordinator]
//	           [-trace path] [-access-log path] [-pprof addr]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"path/filepath"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/store"
)

// splitPeers parses the -peers list, dropping empty entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	inflight := flag.Int("inflight", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a solve slot before 429 (0 = 4×inflight)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max time a queued request waits for a slot before 503")
	defaultTimeout := flag.Duration("default-timeout", 10*time.Second, "solve budget when the request names none")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested solve budgets")
	cacheEntries := flag.Int("cache", 256, "result-cache entries (LRU)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache byte budget (evicts past either bound)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	storeDir := flag.String("store", "", "persistent result store directory (spill, warm start, precompute)")
	precompute := flag.String("precompute", "", "batch-fill the store for this grid (network:loglo-loghi[:exact-nodes],...) and exit")
	precomputeWorkers := flag.Int("precompute-workers", 0, "parallel solves during -precompute (0 = GOMAXPROCS)")
	tracePath := flag.String("trace", "", "write request and solver trace events (JSONL) to this path")
	accessLogPath := flag.String("access-log", "", "append one JSON line per query request to this path (\"-\" = stderr)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof + /debug/metrics on this extra address")
	clusterListen := flag.String("cluster-listen", "", "serve the cluster RPC protocol on this address (peer mode)")
	peers := flag.String("peers", "", "comma-separated cluster addresses of every peer, this node included")
	coordinator := flag.Bool("coordinator", false, "consistent-hash request keys over -peers and forward queries to their owners")
	flag.Parse()

	cli.Validate(
		cli.NonNegative("inflight", *inflight),
		cli.NonNegative("queue", *queue),
		cli.Positive("cache", *cacheEntries),
		cli.NonNegative("precompute-workers", *precomputeWorkers),
	)
	if *precompute != "" && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "butterflyd: -precompute requires -store")
		os.Exit(2)
	}
	peerList := splitPeers(*peers)
	if *coordinator && len(peerList) == 0 {
		fmt.Fprintln(os.Stderr, "butterflyd: -coordinator requires -peers")
		os.Exit(2)
	}
	if len(peerList) > 0 && *clusterListen == "" {
		fmt.Fprintln(os.Stderr, "butterflyd: -peers requires -cluster-listen (this node's own cluster address)")
		os.Exit(2)
	}

	var tracer *obs.Tracer
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -trace: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		tracer = obs.NewTracer(f)
	}

	// The access log appends (a restarted daemon keeps the history) and
	// tolerates "-" for stderr, handy under systemd-style capture.
	var accessLog io.Writer
	var accessFile *os.File
	if *accessLogPath == "-" {
		accessLog = os.Stderr
	} else if *accessLogPath != "" {
		f, err := os.OpenFile(*accessLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -access-log: %v\n", err)
			os.Exit(1)
		}
		accessFile = f
		accessLog = f
	}

	cli.StartPprof(*pprofAddr)

	// The persistent store and the routing engine's compiled-index
	// snapshot live side by side under -store: both are warm-start state.
	var st *store.Store
	var routeSnapshot string
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{Trace: tracer})
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -store: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "butterflyd: store %s holds %d results\n", *storeDir, st.Len())
		routeSnapshot = filepath.Join(*storeDir, "routeindex.bfc")
		// A stale or damaged snapshot is only a lost warm start, never
		// fatal: the engine rebuilds indices lazily.
		if n, err := route.LoadIndexCache(routeSnapshot); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: route index snapshot ignored: %v\n", err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "butterflyd: loaded %d compiled route indices\n", n)
		}
	}

	// Cluster wiring: the router (built first — the server config needs
	// it) forwards keys this node does not own; the node handler (built
	// after — it dispatches into the server's mux) answers forwarded
	// queries, shard batches and gossip on -cluster-listen.
	clusterTr := &cluster.TCPTransport{}
	var peerRouter serve.PeerRouter
	if *coordinator {
		peerRouter = cluster.NewRouter(*clusterListen, peerList, clusterTr, *maxTimeout, 2)
	}

	srv := serve.New(serve.Config{
		MaxInflight:     *inflight,
		MaxQueue:        *queue,
		QueueWait:       *queueWait,
		DefaultDeadline: *defaultTimeout,
		MaxDeadline:     *maxTimeout,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		Store:           st,
		Trace:           tracer,
		AccessLog:       accessLog,
		Peers:           peerRouter,
	})

	var clusterLn net.Listener
	if *clusterListen != "" {
		node := cluster.NewNode(*clusterListen, srv.Handler(), clusterTr, 0)
		var cerr error
		clusterLn, cerr = net.Listen("tcp", *clusterListen)
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -cluster-listen: %v\n", cerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "butterflyd: cluster RPC on %s (%d peers)\n", clusterLn.Addr(), len(peerList))
		go func() {
			if serr := cluster.ServeTransport(clusterLn, node.Handle); serr != nil {
				fmt.Fprintf(os.Stderr, "butterflyd: cluster: %v\n", serr)
			}
		}()
	}

	if *precompute != "" {
		runPrecompute(srv, st, *precompute, *precomputeWorkers, traceFile, tracer)
		return
	}

	// Bind synchronously so an occupied port is an immediate exit-1, not
	// a daemon that looks alive and serves nothing.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "butterflyd: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "butterflyd: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "butterflyd: serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintf(os.Stderr, "butterflyd: draining (up to %s)\n", *drain)
	if clusterLn != nil {
		_ = clusterLn.Close() // stop accepting peer RPCs before the drain
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "butterflyd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "butterflyd: serve: %v\n", err)
		os.Exit(1)
	}
	if st != nil {
		// Shutdown already flushed the drained cache into the store; what
		// remains is snapshotting the compiled route indices and closing.
		if n, err := route.SaveIndexCache(routeSnapshot); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: route index snapshot: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "butterflyd: snapshotted %d compiled route indices\n", n)
		}
		n := st.Len()
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: store: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "butterflyd: store flushed, %d results on disk\n", n)
	}
	if traceFile != nil {
		if err := tracer.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -trace: %v\n", err)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -trace: %v\n", err)
		}
	}
	if err := srv.AccessLogErr(); err != nil {
		fmt.Fprintf(os.Stderr, "butterflyd: -access-log: %v\n", err)
	}
	if accessFile != nil {
		if err := accessFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -access-log: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "butterflyd: drained cleanly")
}

// runPrecompute is the -precompute batch mode: solve every missing grid
// point into the store at the requested parallelism, report, exit. A
// SIGINT/SIGTERM stops feeding new points and lets in-flight solves
// finish.
func runPrecompute(srv *serve.Server, st *store.Store, spec string, workers int, traceFile *os.File, tracer *obs.Tracer) {
	grid, err := serve.ParseGrid(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "butterflyd: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "butterflyd: precomputing %d grid points\n", len(grid))
	res, err := srv.Precompute(ctx, grid, workers, func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "butterflyd: "+format+"\n", args...)
	})
	fmt.Fprintf(os.Stderr, "butterflyd: precompute done in %s: %d solved, %d skipped, %d failed; store holds %d results\n",
		time.Since(start).Round(time.Millisecond), res.Solved, res.Skipped, res.Failed, st.Len())
	if cerr := st.Close(); cerr != nil {
		fmt.Fprintf(os.Stderr, "butterflyd: store: %v\n", cerr)
		os.Exit(1)
	}
	if traceFile != nil {
		if terr := tracer.Err(); terr != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -trace: %v\n", terr)
		}
		if terr := traceFile.Close(); terr != nil {
			fmt.Fprintf(os.Stderr, "butterflyd: -trace: %v\n", terr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "butterflyd: %v\n", err)
		os.Exit(1)
	}
}
