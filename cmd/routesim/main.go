// Command routesim runs the §1.2 routing experiment (E8): every node of Bn
// sends a packet to a uniformly random destination; the simulated
// store-and-forward completion time is compared against the bisection
// bound steps ≥ crossings / C(S,S̄) computed on the best constructed
// bisection. It also routes random permutations along monotone paths.
// Each row aggregates -trials independently seeded Monte-Carlo trials
// (min/mean/max steps, steps/bound ratios, bound-tightness counts) fanned
// over -workers parallel workers on the flat simulation engine.
//
// -timeout bounds the whole run: at the deadline, in-flight trials are
// discarded and each row aggregates only its completed trials (the trials
// column then reads "done of requested"). -progress streams completed
// trial counts to stderr. -json writes both tables as a machine-readable
// run manifest; -trace streams per-trial events as JSONL.
//
// Usage:
//
//	routesim [-seed 1] [-max-log 9] [-trials 100] [-workers 0]
//	         [-timeout 0] [-progress] [-pprof addr]
//	         [-json path] [-trace path] [-metrics]
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	seed := flag.Int64("seed", 1, "base RNG seed (per-trial seeds derive from it)")
	maxLog := flag.Int("max-log", 9, "largest log n simulated")
	trials := flag.Int("trials", 100, "Monte-Carlo trials per row")
	workers := flag.Int("workers", 0, "parallel trial workers (0 = all cores)")
	long := cli.RegisterLongRun()
	out := cli.RegisterOutput()
	flag.Parse()

	cli.Validate(
		cli.Positive("trials", *trials),
		cli.NonNegative("workers", *workers),
		// A 2^24-input butterfly already simulates ~4·10^8 node-steps per
		// trial; larger exponents are out of this simulator's reach.
		cli.Range("max-log", *maxLog, 3, 24),
	)

	ctx, cancel, onProgress := long.Start()
	defer cancel()
	out.Start("routesim")

	opt := core.RoutingOptions{
		Trials:     *trials,
		Workers:    *workers,
		Ctx:        ctx,
		OnProgress: onProgress,
		Trace:      out.Tracer(),
	}
	var random, perms []core.RoutingReport
	for d := 3; d <= *maxLog; d++ {
		n := 1 << d
		random = append(random, core.RandomRoutingExperiment(n, *seed, opt))
		perms = append(perms, core.PermutationRoutingExperiment(n, *seed, opt))
	}
	fmt.Printf("%d trials per row, seed %d\n\n", *trials, *seed)
	fmt.Print(core.RenderRoutingTable("Random destinations on Bn: time vs the N/(4·BW)-style bound (§1.2)", random))
	fmt.Println()
	fmt.Print(core.RenderRoutingTable("Random permutations on Bn (monotone paths)", perms))

	m := out.Manifest()
	m.Seed = *seed
	m.AddTable("routing.random", "Random destinations on Bn (§1.2)", random).
		AddTable("routing.permutation", "Random permutations on Bn (monotone paths)", perms)
	out.Finish(m)
}
