// Command routesim runs the §1.2 routing experiment (E8): every node of Bn
// sends a packet to a uniformly random destination; the simulated
// store-and-forward completion time is compared against the bisection
// bound steps ≥ crossings / C(S,S̄) computed on the best constructed
// bisection. It also routes random permutations along monotone paths.
//
// Usage:
//
//	routesim [-seed 1] [-max-log 7]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	seed := flag.Int64("seed", 1, "RNG seed")
	maxLog := flag.Int("max-log", 7, "largest log n simulated")
	flag.Parse()

	var random, perms []core.RoutingReport
	for d := 3; d <= *maxLog; d++ {
		n := 1 << d
		random = append(random, core.RandomRoutingExperiment(n, *seed))
		perms = append(perms, core.PermutationRoutingExperiment(n, *seed))
	}
	fmt.Print(core.RenderRoutingTable("Random destinations on Bn: time vs the N/(4·BW)-style bound (§1.2)", random))
	fmt.Println()
	fmt.Print(core.RenderRoutingTable("Random permutations on Bn (monotone paths)", perms))
}
