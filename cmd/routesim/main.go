// Command routesim runs the §1.2 routing experiment (E8): every node of Bn
// sends a packet to a uniformly random destination; the simulated
// store-and-forward completion time is compared against the bisection
// bound steps ≥ crossings / C(S,S̄) computed on the best constructed
// bisection. It also routes random permutations along monotone paths.
// Each row aggregates -trials independently seeded Monte-Carlo trials
// (min/mean/max steps, steps/bound ratios, bound-tightness counts) fanned
// over -workers parallel workers on the flat simulation engine.
//
// -pattern selects the traffic (random, permutation, hotspot,
// bitreversal — comma-separated, one table each). The fault model rides
// on top: -drop is the per-transmission loss probability (lost packets
// retransmit next step, bounded by -retransmits; 0 = retry forever),
// -dead kills that fraction of links for a whole trial, and -switching
// picks store-and-forward (sf) or cut-through (ct). All faults are
// seeded: the same seed reproduces the same losses at any worker count.
// -drop-sweep runs a degradation curve instead — one row per drop rate
// at the largest size — so a single invocation shows delivery rate and
// steps/bound decay as links get lossier.
//
// -timeout bounds the whole run: at the deadline, in-flight trials are
// discarded and each row aggregates only its completed trials (the trials
// column then reads "done of requested"). -progress streams completed
// trial counts to stderr. -json writes both tables as a machine-readable
// run manifest; -trace streams per-trial events as JSONL.
//
// Usage:
//
//	routesim [-seed 1] [-max-log 9] [-trials 100] [-workers 0]
//	         [-pattern random,permutation] [-drop 0] [-dead 0]
//	         [-retransmits 0] [-switching sf] [-drop-sweep rates]
//	         [-timeout 0] [-progress] [-pprof addr]
//	         [-json path] [-trace path] [-metrics]
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/route"
)

// experiments maps each Bn traffic pattern to its experiment runner.
var experiments = map[route.TrialKind]func(int, int64, core.RoutingOptions) core.RoutingReport{
	route.RandomDestinations:      core.RandomRoutingExperiment,
	route.RandomPermutations:      core.PermutationRoutingExperiment,
	route.HotSpotDestinations:     core.HotSpotRoutingExperiment,
	route.BitReversalDestinations: core.BitReversalRoutingExperiment,
}

// tableTitles names the per-pattern tables in the rendered output.
var tableTitles = map[route.TrialKind]string{
	route.RandomDestinations:      "Random destinations on Bn: time vs the N/(4·BW)-style bound (§1.2)",
	route.RandomPermutations:      "Random permutations on Bn (monotone paths)",
	route.HotSpotDestinations:     "Hot-spot (all-to-one) traffic on Bn",
	route.BitReversalDestinations: "Bit-reversal permutation on Bn",
}

func main() {
	seed := flag.Int64("seed", 1, "base RNG seed (per-trial seeds derive from it)")
	maxLog := flag.Int("max-log", 9, "largest log n simulated")
	trials := flag.Int("trials", 100, "Monte-Carlo trials per row")
	workers := flag.Int("workers", 0, "parallel trial workers (0 = all cores)")
	patterns := flag.String("pattern", "random,permutation", "traffic patterns (comma-separated: random, permutation, hotspot, bitreversal)")
	drop := flag.Float64("drop", 0, "per-transmission drop probability in [0,1)")
	dead := flag.Float64("dead", 0, "fraction of links dead for a whole trial, in [0,1)")
	retransmits := flag.Int("retransmits", 0, "retransmission budget per packet (0 = unbounded)")
	switching := flag.String("switching", "sf", "switching discipline: sf (store-and-forward) or ct (cut-through)")
	dropSweep := flag.String("drop-sweep", "", "comma-separated drop rates: run a degradation curve at n = 2^max-log instead of the per-size tables")
	long := cli.RegisterLongRun()
	out := cli.RegisterOutput()
	flag.Parse()

	sw, swErr := route.ParseSwitching(*switching)
	kinds, kindErr := parsePatterns(*patterns)
	rates, sweepErr := parseRates(*dropSweep, *drop)
	cli.Validate(
		cli.Positive("trials", *trials),
		cli.NonNegative("workers", *workers),
		// A 2^24-input butterfly already simulates ~4·10^8 node-steps per
		// trial; larger exponents are out of this simulator's reach.
		cli.Range("max-log", *maxLog, 3, 24),
		cli.Probability("drop", *drop),
		cli.Probability("dead", *dead),
		cli.NonNegative("retransmits", *retransmits),
		swErr, kindErr, sweepErr,
	)

	ctx, cancel, onProgress := long.Start()
	defer cancel()
	out.Start("routesim")

	fault := route.FaultOptions{DropProb: *drop, MaxRetransmits: *retransmits, DeadLinkProb: *dead}
	opt := core.RoutingOptions{
		Trials:     *trials,
		Workers:    *workers,
		Fault:      fault,
		Switching:  sw,
		Ctx:        ctx,
		OnProgress: onProgress,
		Trace:      out.Tracer(),
	}
	faulty := fault.Enabled() || sw != route.StoreAndForward

	fmt.Printf("%d trials per row, seed %d\n\n", *trials, *seed)
	m := out.Manifest()
	m.Seed = *seed

	if len(rates) > 0 {
		// Degradation curve: one row per drop rate at the largest size,
		// per pattern, all in one table.
		n := 1 << *maxLog
		var sweep []core.RoutingReport
		for _, kind := range kinds {
			sweep = append(sweep, core.RoutingDegradation(n, *seed, kind, rates, opt)...)
		}
		title := fmt.Sprintf("Routing under faults: drop-rate sweep on B%d (§1.2 degradation)", n)
		fmt.Print(core.RenderFaultRoutingTable(title, sweep))
		m.AddTable("routing.faults", title, sweep)
		out.Finish(m)
		return
	}

	for _, kind := range kinds {
		run := experiments[kind]
		var reports []core.RoutingReport
		for d := 3; d <= *maxLog; d++ {
			reports = append(reports, run(1<<d, *seed, opt))
		}
		title := tableTitles[kind]
		if faulty {
			fmt.Print(core.RenderFaultRoutingTable(title, reports))
		} else {
			fmt.Print(core.RenderRoutingTable(title, reports))
		}
		fmt.Println()
		m.AddTable("routing."+kind.Slug(), title, reports)
	}
	out.Finish(m)
}

// parsePatterns resolves the -pattern CSV to Bn trial kinds.
func parsePatterns(csv string) ([]route.TrialKind, error) {
	var kinds []route.TrialKind
	for _, part := range strings.Split(csv, ",") {
		kind, err := route.ParseTrialKind(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-pattern: %v", err)
		}
		if _, ok := experiments[kind]; !ok {
			return nil, fmt.Errorf("-pattern: %s runs on Wn, not on the Bn tables (want random, permutation, hotspot or bitreversal)", kind.Slug())
		}
		kinds = append(kinds, kind)
	}
	return kinds, nil
}

// parseRates resolves the -drop-sweep CSV; an empty flag means no sweep.
// A sweep replaces the single -drop rate, so setting both is an error.
func parseRates(csv string, drop float64) ([]float64, error) {
	if csv == "" {
		return nil, nil
	}
	if drop != 0 {
		return nil, fmt.Errorf("-drop-sweep replaces -drop; set only one")
	}
	var rates []float64
	for _, part := range strings.Split(csv, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || p < 0 || p >= 1 {
			return nil, fmt.Errorf("-drop-sweep: rates must be in [0, 1) (got %q)", part)
		}
		rates = append(rates, p)
	}
	return rates, nil
}
