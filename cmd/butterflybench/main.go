// Command butterflybench drives a live butterflyd with an open-loop
// constant-QPS load and reports what the server did under it: µs-level
// client-side latency quantiles, achieved vs offered rate, the X-Cache
// hit/coalesced/store-hit breakdown, 429/503/422 rates, and the server's
// own /debug/metrics deltas over the run — all in the same versioned
// run-manifest JSON the repo's other commands emit, so bench reports
// diff and archive like any other artifact (BENCH_pr9.json is one).
//
// The load is open loop: requests fire on their schedule regardless of
// how fast earlier ones complete, so an overloaded server shows up as
// queueing, rejections and tail latency instead of being hidden by a
// generator that politely waits (coordinated omission). The request
// sequence is a pure function of (-mix, -seed), so two runs with the
// same pair offer byte-identical workloads.
//
// Mixes: hit-heavy (LRU fast path), miss-heavy (every request a fresh
// solve), zipf-shapes (zipfian skew over butterfly sizes), storm
// (bursts of identical queries that must coalesce).
//
// -slo declares pass/fail objectives evaluated against the finished
// run; any failed objective makes the exit status 1:
//
//	butterflybench -target http://localhost:8080 -qps 500 -duration 30s \
//	    -mix zipf-shapes -slo p99=50ms,errors=1% -json bench.json
//
// -qps-sweep lo:hi:step replaces the single run with one run per offered
// rate and reports the latency-vs-offered-load curve (the bench.sweep
// manifest table) — where achieved rate stops tracking offered rate is
// the saturation point. SLOs are evaluated at every point:
//
//	butterflybench -target http://localhost:8080 -qps-sweep 100:1000:100 \
//	    -duration 10s -mix zipf-shapes -slo p99=50ms -json sweep.json
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/loadgen"
)

func main() {
	target := flag.String("target", "http://localhost:8080", "base URL of the butterflyd under test")
	qps := flag.Float64("qps", 100, "offered request rate (open loop)")
	qpsSweep := flag.String("qps-sweep", "", "sweep offered rates lo:hi:step, one run per point (overrides -qps)")
	duration := flag.Duration("duration", 10*time.Second, "run length; request count is qps x duration")
	mix := flag.String("mix", "hit-heavy", "request mix: hit-heavy, miss-heavy, zipf-shapes, storm")
	seed := flag.Int64("seed", 1, "request-sequence seed (same mix+seed = identical workload)")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "client-side per-request timeout")
	sloSpec := flag.String("slo", "", "objectives, e.g. p99=50ms,errors=1%,achieved=90% (failing any exits 1)")
	out := cli.RegisterOutput()
	flag.Parse()

	profile, perr := loadgen.ParseProfile(*mix)
	slos, serr := loadgen.ParseSLOs(*sloSpec)
	var sweep []float64
	var swerr error
	if *qpsSweep != "" {
		sweep, swerr = loadgen.ParseSweep(*qpsSweep)
	}
	cli.Validate(perr, serr, swerr)
	checkRate := []float64{*qps}
	if sweep != nil {
		checkRate = sweep
	}
	for _, q := range checkRate {
		if q <= 0 || int(q*duration.Seconds()) < 1 {
			fmt.Fprintf(os.Stderr, "butterflybench: %g qps over -duration %s plans no requests\n", q, *duration)
			os.Exit(2)
		}
	}

	out.Start("butterflybench")

	// Preflight: one probe request with a caller-chosen X-Request-ID. A
	// dead target fails here with a clear message instead of a report
	// full of transport errors; a live one must echo the ID back (the
	// contract that lets a bench latency outlier be matched to its
	// server-side access-log line and trace spans).
	probeID := fmt.Sprintf("bench-probe-%d", os.Getpid())
	if err := probe(*target, probeID, *reqTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "butterflybench: preflight: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := loadgen.Options{
		BaseURL:  *target,
		Profile:  profile,
		Seed:     *seed,
		QPS:      *qps,
		Duration: *duration,
		Timeout:  *reqTimeout,
		SLOs:     slos,
	}

	if sweep != nil {
		fmt.Fprintf(os.Stderr, "butterflybench: %s sweep %s (%d points x %s) against %s (seed %d)\n",
			profile, *qpsSweep, len(sweep), *duration, *target, *seed)
		points, err := loadgen.RunSweep(ctx, opt, sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
		printSweepSummary(points)
		out.Finish(loadgen.BuildSweepReport(opt, points))
		if !loadgen.SweepAllPass(points) {
			os.Exit(1)
		}
		return
	}

	fmt.Fprintf(os.Stderr, "butterflybench: %s @ %g qps for %s against %s (seed %d)\n",
		profile, *qps, *duration, *target, *seed)
	res, err := loadgen.Run(ctx, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
		os.Exit(1)
	}

	results := res.Evaluate(slos)
	printSummary(res, results)
	out.Finish(loadgen.BuildReport(opt, res, results))

	if !loadgen.AllPass(results) {
		os.Exit(1)
	}
}

// probe sends one cheap query carrying id as X-Request-ID and verifies
// the daemon answers and echoes the ID.
func probe(target, id string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	req, err := http.NewRequest(http.MethodGet, target+"/v1/bisection?network=bn&n=4", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Request-ID", id)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe query: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != id {
		return fmt.Errorf("X-Request-ID not echoed: sent %q, got %q", id, got)
	}
	return nil
}

// printSweepSummary renders the latency-vs-offered-load curve, one line
// per sweep point; the -json manifest carries it as the bench.sweep table.
func printSweepSummary(points []loadgen.SweepPoint) {
	fmt.Printf("%10s %10s %9s %8s %9s %9s %9s %6s\n",
		"offered", "achieved", "completed", "err%", "p50", "p95", "p99", "slo")
	us := func(v float64) string {
		return (time.Duration(v) * time.Microsecond).Round(time.Microsecond).String()
	}
	for _, p := range points {
		verdict := "PASS"
		if !loadgen.AllPass(p.SLOs) {
			verdict = "FAIL"
		}
		if len(p.SLOs) == 0 {
			verdict = "-"
		}
		r := p.Result
		fmt.Printf("%10.1f %10.1f %9d %7.1f%% %9s %9s %9s %6s\n",
			p.QPS, r.AchievedQPS, r.Completed, r.ErrorRate()*100,
			us(r.Overall.Quantile(0.50)), us(r.Overall.Quantile(0.95)),
			us(r.Overall.Quantile(0.99)), verdict)
	}
}

// printSummary renders the human-readable run report on stdout; the
// -json manifest carries the same numbers machine-readably.
func printSummary(res *loadgen.Result, slos []loadgen.SLOResult) {
	fmt.Printf("requests   %d planned, %d completed (%.1f%% errors)\n",
		res.Planned, res.Completed, res.ErrorRate()*100)
	fmt.Printf("rate       offered %.1f qps, achieved %.1f qps",
		res.OfferedQPS, res.AchievedQPS)
	if res.BehindSchedule > 0 {
		fmt.Printf("  [generator lagged on %d dispatches, worst %s — client-side saturation]",
			res.BehindSchedule, time.Duration(res.MaxLagUS)*time.Microsecond)
	}
	fmt.Println()
	us := func(v float64) string {
		return (time.Duration(v) * time.Microsecond).Round(time.Microsecond).String()
	}
	mean := 0.0
	if res.Overall.Count > 0 {
		mean = float64(res.Overall.Sum) / float64(res.Overall.Count)
	}
	fmt.Printf("latency    mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		us(mean), us(res.Overall.Quantile(0.50)), us(res.Overall.Quantile(0.95)),
		us(res.Overall.Quantile(0.99)), time.Duration(res.Overall.Max)*time.Microsecond)
	fmt.Printf("outcomes  ")
	for _, class := range res.OutcomeClassesPresent() {
		fmt.Printf(" %s=%d", class, res.Outcomes[class])
	}
	fmt.Println()
	for _, s := range slos {
		verdict := "PASS"
		if !s.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("slo        %-4s %-9s want %-10s got %-10s\n", verdict, s.Name, s.Threshold, s.Actual)
	}
}
