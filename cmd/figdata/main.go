// Command figdata emits the two figure-like series of the reproduction as
// CSV, ready for plotting: the BW(Bn)/n construction ratio against log n
// (Theorem 2.20's convergence), and BW(MOS_{j,j},M2)/j² against j
// (Lemma 2.19's convergence). Columns include the theory limits.
//
// -json writes the selected series as a machine-readable run manifest
// (rows mirror the CSV columns).
//
// Usage:
//
//	figdata -series bisection [-max-log 30] [-json path]
//	figdata -series mos [-max-j 1024] [-json path]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/construct"
	"repro/internal/mos"
)

func main() {
	series := flag.String("series", "bisection", `"bisection" or "mos"`)
	maxLog := flag.Int("max-log", 30, "largest log n for the bisection series")
	maxJ := flag.Int("max-j", 1024, "largest j for the mos series")
	out := cli.RegisterOutput()
	flag.Parse()

	cli.Validate(
		// The plan constructor refuses exponents above 48; reject the flag
		// up front instead of crashing mid-series.
		cli.Range("max-log", *maxLog, 6, 48),
		cli.Positive("max-j", *maxJ),
	)
	out.Start("figdata")
	m := out.Manifest()

	switch *series {
	case "bisection":
		fmt.Println("log_n,j,a,b,capacity_over_n,folklore,theory_limit")
		var plans []construct.Plan
		for d := 6; d <= *maxLog; d++ {
			p, err := construct.BestPlan(1 << d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figdata: %v\n", err)
				os.Exit(1)
			}
			plans = append(plans, *p)
			fmt.Printf("%d,%d,%d,%d,%.6f,1.0,%.6f\n",
				d, p.J, p.A, p.B, p.Ratio, construct.TheoreticalRatio)
		}
		m.AddTable("figdata.bisection", "BW(Bn)/n construction ratio vs log n", plans)
	case "mos":
		fmt.Println("j,capacity,ratio,x,y,limit")
		var results []mos.Result
		for j := 2; j <= *maxJ; j *= 2 {
			r := mos.M2BisectionWidth(j)
			results = append(results, r)
			fmt.Printf("%d,%d,%.6f,%.6f,%.6f,%.6f\n",
				r.J, r.Capacity, r.Ratio,
				float64(r.A)/float64(r.J), float64(r.B)/float64(r.J), mos.Limit)
		}
		m.AddTable("figdata.mos", "BW(MOS_{j,j},M2)/j² vs j", results)
	default:
		fmt.Fprintf(os.Stderr, "figdata: unknown series %q\n", *series)
		os.Exit(2)
	}
	out.Finish(m)
}
