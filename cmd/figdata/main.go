// Command figdata emits the two figure-like series of the reproduction as
// CSV, ready for plotting: the BW(Bn)/n construction ratio against log n
// (Theorem 2.20's convergence), and BW(MOS_{j,j},M2)/j² against j
// (Lemma 2.19's convergence). Columns include the theory limits.
//
// Usage:
//
//	figdata -series bisection [-max-log 30]
//	figdata -series mos [-max-j 1024]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/construct"
	"repro/internal/mos"
)

func main() {
	series := flag.String("series", "bisection", `"bisection" or "mos"`)
	maxLog := flag.Int("max-log", 30, "largest log n for the bisection series")
	maxJ := flag.Int("max-j", 1024, "largest j for the mos series")
	flag.Parse()

	cli.Validate(
		// The plan constructor refuses exponents above 48; reject the flag
		// up front instead of crashing mid-series.
		cli.Range("max-log", *maxLog, 6, 48),
		cli.Positive("max-j", *maxJ),
	)

	switch *series {
	case "bisection":
		fmt.Println("log_n,j,a,b,capacity_over_n,folklore,theory_limit")
		for d := 6; d <= *maxLog; d++ {
			p := construct.BestPlan(1 << d)
			fmt.Printf("%d,%d,%d,%d,%.6f,1.0,%.6f\n",
				d, p.J, p.A, p.B, p.Ratio, construct.TheoreticalRatio)
		}
	case "mos":
		fmt.Println("j,capacity,ratio,x,y,limit")
		for j := 2; j <= *maxJ; j *= 2 {
			r := mos.M2BisectionWidth(j)
			fmt.Printf("%d,%d,%.6f,%.6f,%.6f,%.6f\n",
				r.J, r.Capacity, r.Ratio,
				float64(r.A)/float64(r.J), float64(r.B)/float64(r.J), mos.Limit)
		}
	default:
		fmt.Fprintf(os.Stderr, "figdata: unknown series %q\n", *series)
		os.Exit(2)
	}
}
