// Command bwtable regenerates the bisection-width results of the paper
// (experiments E2, E4, E5): exact values on small networks, constructed
// cuts and certified lower bounds on larger ones, and the sub-n
// construction sweep that refutes the folklore BW(Bn) = n.
//
// -timeout bounds the whole run: expiring mid-search degrades exact values
// to best-found incumbents, flagged "no" in the exact? column, instead of
// running forever. -progress streams solver telemetry to stderr. -json
// writes every table as a machine-readable run manifest; -trace streams
// solver span events as JSONL.
//
// Usage:
//
//	bwtable [-exact-nodes N] [-max-log 20] [-timeout 0] [-progress]
//	        [-pprof addr] [-json path] [-trace path] [-metrics]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	exactNodes := flag.Int("exact-nodes", 32, "run the exact solver on networks up to this many nodes")
	maxLog := flag.Int("max-log", 20, "largest log n for the sub-n construction sweep")
	long := cli.RegisterLongRun()
	out := cli.RegisterOutput()
	flag.Parse()

	cli.Validate(
		cli.NonNegative("exact-nodes", *exactNodes),
		// Above 2^48 the plan search itself becomes the bottleneck; the
		// constructor refuses, so reject the flag up front.
		cli.Range("max-log", *maxLog, 0, 48),
	)

	ctx, cancel, onProgress := long.Start()
	defer cancel()
	out.Start("bwtable")
	budget := core.BisectionBudget{
		ExactNodes: *exactNodes,
		Ctx:        ctx,
		OnProgress: onProgress,
		Trace:      out.Tracer(),
	}

	// The classic table, then the -max-log extension: constructed rows at
	// 2^12–2^20, the large ones verified virtually by the word-parallel
	// evaluator without ever materializing the graph.
	sizes := []int{2, 4, 8, 16, 64, 256, 1024}
	for _, lg := range []int{12, 15, 18, 20} {
		if lg <= *maxLog {
			sizes = append(sizes, 1<<lg)
		}
	}
	var butterflies []core.BisectionReport
	for _, n := range sizes {
		r, err := core.ButterflyBisection(n, budget)
		if err != nil {
			out.Finish(nil)
			fmt.Fprintf(os.Stderr, "bwtable: %v\n", err)
			os.Exit(1)
		}
		butterflies = append(butterflies, r)
	}
	fmt.Print(core.RenderBisectionTable("BW(Bn): 2(√2−1)n + o(n), refuting folklore n (Thm 2.20)", butterflies))
	fmt.Println()

	var wrapped []core.BisectionReport
	for _, n := range []int{4, 8, 16, 64, 256} {
		wrapped = append(wrapped, core.WrappedBisection(n, budget))
	}
	fmt.Print(core.RenderBisectionTable("BW(Wn) = n (Lemma 3.2)", wrapped))
	fmt.Println()

	var cccs []core.BisectionReport
	for _, n := range []int{8, 16, 64, 256} {
		cccs = append(cccs, core.CCCBisection(n, budget))
	}
	fmt.Print(core.RenderBisectionTable("BW(CCCn) = n/2 (Lemma 3.3)", cccs))
	fmt.Println()

	m := out.Manifest()
	m.AddTable("bisection.bn", "BW(Bn) (Thm 2.20)", butterflies).
		AddTable("bisection.wn", "BW(Wn) = n (Lemma 3.2)", wrapped).
		AddTable("bisection.ccc", "BW(CCCn) = n/2 (Lemma 3.3)", cccs)

	var dims []int
	for d := 6; d <= *maxLog; d++ {
		dims = append(dims, d)
	}
	if len(dims) == 0 {
		fmt.Fprintln(os.Stderr, "bwtable: -max-log below 6, skipping the sweep")
		out.Finish(m)
		return
	}
	sweep, err := core.SubFolkloreSweep(dims)
	if err != nil {
		out.Finish(nil)
		fmt.Fprintf(os.Stderr, "bwtable: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(core.RenderSubFolkloreTable(sweep))

	inputCheck := core.InputBisectionCheck(4)
	fmt.Printf("\nLemma 3.1 check: BW(B4, inputs) = %d (lemma: ≥ n = 4)\n", inputCheck)

	m.AddTable("bisection.sub_folklore", "sub-n plans vs folklore", sweep).
		AddTable("checks", "scalar verification results", []core.CheckRow{
			{Name: "input_bisection_b4", Value: inputCheck},
		})
	out.Finish(m)
}
