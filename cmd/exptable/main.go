// Command exptable regenerates the §4.3 summary tables (experiments E6 and
// E7): for each of the four expansion functions EE/NE on Wn/Bn, the
// measured boundary of the paper's witness constructions (upper bounds),
// the credit-scheme certified lower bounds evaluated on those witnesses,
// the exact optima where enumerable, and the k/log k theory columns.
//
// Exact optima come from the parallel witness-seeded branch-and-bound in
// internal/exact; -workers sizes its pool and -kmax widens the set sizes it
// is allowed to certify. -timeout bounds the run: searches still open at
// the deadline report their incumbent, flagged "no" in the exact? column.
// -progress streams explored/pruned/incumbent telemetry to stderr. -json
// writes the four tables as a machine-readable run manifest; -trace
// streams survey span events as JSONL.
//
// Usage:
//
//	exptable [-n 256] [-max-d 4] [-exact-nodes 32] [-kmax 8] [-workers 0]
//	         [-timeout 0] [-progress] [-pprof addr]
//	         [-json path] [-trace path] [-metrics]
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/core"
)

func main() {
	n := flag.Int("n", 256, "butterfly inputs (power of two)")
	maxD := flag.Int("max-d", 4, "largest witness sub-butterfly dimension")
	exactNodes := flag.Int("exact-nodes", 32, "exact enumeration budget (node count)")
	kmax := flag.Int("kmax", 8, "largest set size certified by the exact engine")
	workers := flag.Int("workers", 0, "exact-engine worker goroutines (0 = GOMAXPROCS)")
	long := cli.RegisterLongRun()
	out := cli.RegisterOutput()
	flag.Parse()

	cli.Validate(
		cli.PowerOfTwo("n", *n),
		cli.Positive("max-d", *maxD),
		cli.NonNegative("exact-nodes", *exactNodes),
		cli.Positive("kmax", *kmax),
		cli.NonNegative("workers", *workers),
	)

	ctx, cancel, onProgress := long.Start()
	defer cancel()
	out.Start("exptable")
	opts := core.ExpansionTableOptions{
		ExactNodes: *exactNodes,
		KMax:       *kmax,
		Workers:    *workers,
		Ctx:        ctx,
		OnProgress: onProgress,
		Trace:      out.Tracer(),
	}
	m := out.Manifest()
	for _, kind := range []core.ExpansionKind{core.WnEdge, core.WnNode, core.BnEdge, core.BnNode} {
		// Each kind's lemma construction has its own valid dimension range;
		// clamp so one sweep can cover all four tables.
		top := core.MaxWitnessDim(kind, *n)
		if top > *maxD {
			top = *maxD
		}
		var dims []int
		for d := 1; d <= top; d++ {
			dims = append(dims, d)
		}
		rows := core.ExpansionTable(kind, *n, dims, opts)
		fmt.Print(core.RenderExpansionTable(rows))
		fmt.Println()
		m.AddTable("expansion."+kind.Slug(), kind.String()+" (§4.3)", rows)
	}
	out.Finish(m)
}
