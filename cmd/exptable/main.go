// Command exptable regenerates the §4.3 summary tables (experiments E6 and
// E7): for each of the four expansion functions EE/NE on Wn/Bn, the
// measured boundary of the paper's witness constructions (upper bounds),
// the credit-scheme certified lower bounds evaluated on those witnesses,
// the exact optima where enumerable, and the k/log k theory columns.
//
// Usage:
//
//	exptable [-n 256] [-max-d 4] [-exact-nodes 32]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	n := flag.Int("n", 256, "butterfly inputs (power of two)")
	maxD := flag.Int("max-d", 4, "largest witness sub-butterfly dimension")
	exactNodes := flag.Int("exact-nodes", 32, "exact enumeration budget (node count)")
	flag.Parse()

	dims := make([]int, 0, *maxD)
	for d := 1; d <= *maxD; d++ {
		dims = append(dims, d)
	}
	for _, kind := range []core.ExpansionKind{core.WnEdge, core.WnNode, core.BnEdge, core.BnNode} {
		rows := core.ExpansionTable(kind, *n, dims, *exactNodes)
		fmt.Print(core.RenderExpansionTable(rows))
		fmt.Println()
	}
}
