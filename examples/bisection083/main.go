// bisection083 walks through the paper's §2 construction in detail on a
// butterfly small enough to materialize: how columns are classified, how
// middle components are typed, how the amenable frontier balances the cut,
// and how the capacity accounting in edge groups reproduces f(x,y)·2n.
package main

import (
	"fmt"

	"repro/internal/construct"
	"repro/internal/heuristic"
	"repro/internal/mos"
	"repro/internal/topology"
)

func main() {
	n := 1 << 12 // 4096 columns, 53k nodes: materializable
	b := topology.NewButterfly(n)

	fmt.Printf("Constructing a sub-n bisection of B%d (N = %d nodes)\n\n", n, b.N())
	for j := 2; j*j <= n; j *= 2 {
		plan, ok := construct.PlanButterflyBisection(n, j)
		if !ok {
			continue
		}
		fmt.Printf("  j=%4d: classes (a,b)=(%d,%d), %4d edge groups × %4d edges = capacity %6d (%.4f·n)\n",
			j, plan.A, plan.B, plan.Groups, plan.GroupEdges, plan.Capacity, plan.Ratio)
	}

	plan, err := construct.BestPlan(n)
	if err != nil {
		panic(err)
	}
	c := plan.Build(b)
	fmt.Printf("\nbest plan: j=%d, measured capacity %d, |A|=%d, |Ā|=%d, bisection=%v\n",
		plan.J, c.Capacity(), c.SizeS(), c.SizeSbar(), c.IsBisection())
	fmt.Printf("folklore value: n = %d; this cut saves %d edges\n", n, n-c.Capacity())

	// The class fractions chase the mesh-of-stars optimum (√½, √½).
	r := mos.M2BisectionWidth(plan.J)
	fmt.Printf("\nmesh-of-stars reference at j=%d: BW(MOS,M2)/j² = %.4f (limit √2−1 = %.4f)\n",
		plan.J, r.Ratio, mos.Limit)

	// Let an adversarial local search try to beat the construction.
	improved := heuristic.RefineCut(c, 8)
	fmt.Printf("\nFM refinement of the constructed cut: %d (was %d) — ", improved, plan.Capacity)
	if improved < plan.Capacity {
		fmt.Println("search shaved a few edges off the finite-size construction")
	} else {
		fmt.Println("no improvement found")
	}
}
