// expansion-survey reproduces the §4 expansion story on one network pair:
// for growing set sizes it prints the exact optimum (where enumerable), the
// sub-butterfly witness upper bound, and the credit-scheme certified lower
// bound, showing the 4:3:2:1/2 constant pattern of the §4.3 tables.
package main

import (
	"fmt"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/expansion"
	"repro/internal/topology"
)

func main() {
	w := topology.NewWrappedButterfly(64)
	b := topology.NewButterfly(64)

	fmt.Println("EE(Wn,k): the (4±o(1))k/log k band (Lemmas 4.1–4.2)")
	for d := 1; d <= 4; d++ {
		set := expansion.WnEdgeWitness(w, d)
		k := len(set)
		ub := cut.EdgeBoundary(w.Graph, set)
		lb := expansion.WnEdgeCreditBound(w, set).LowerBound
		exactStr := "-"
		if k <= 6 {
			_, ee := exact.MinEdgeExpansion(w.Graph, k)
			exactStr = fmt.Sprintf("%d", ee)
		}
		fmt.Printf("  k=%3d: credit LB %3d ≤ exact %3s ≤ witness UB %3d (4k/(d+1) = %d)\n",
			k, lb, exactStr, ub, 4*k/(d+1))
	}

	fmt.Println("\nNE(Bn,k): the (1/2..1)k/log k band (Lemmas 4.10–4.11)")
	for d := 1; d <= 4; d++ {
		set := expansion.BnNodeWitness(b, d)
		k := len(set)
		nb := len(cut.NodeBoundary(b.Graph, set))
		lb := expansion.BnNodeCreditBound(b, set).LowerBound
		fmt.Printf("  k=%3d: credit LB %3d ≤ |N(A)| = %3d (2^(d+1) = %d)\n",
			k, lb, nb, 1<<(d+1))
	}

	// The credit schemes certify bounds for arbitrary sets too — here the
	// first k nodes of level 0, a set the lemmas never saw.
	fmt.Println("\ncredit certificates on an ad-hoc set (half of level 0 of W64):")
	adhoc := w.LevelNodes(0)[:32]
	r := expansion.WnEdgeCreditBound(w, adhoc)
	fmt.Printf("  k=%d: certified C(A,Ā) ≥ %d; actual boundary %d\n",
		len(adhoc), r.LowerBound, cut.EdgeBoundary(w.Graph, adhoc))
	fmt.Printf("  credit conservation: retained %.3f + leaked %.3f = k = %d\n",
		r.CutRetained, r.LeakedToLeaves, r.K)
}
