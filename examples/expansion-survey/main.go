// expansion-survey reproduces the §4 expansion story end to end: a batched
// run of the parallel exact engine certifies EE(Wn,k) and NE(Wn,k) for a
// sweep of set sizes, seeded by the paper's witness sets where a lemma
// applies and by greedy sets everywhere else, then the witness upper bounds
// and credit-scheme lower bounds are laid against the exact optima, showing
// the 4:3:2:1/2 constant pattern of the §4.3 tables.
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/expansion"
	"repro/internal/heuristic"
	"repro/internal/topology"
)

func main() {
	w := topology.NewWrappedButterfly(16) // 64 nodes: exact up to k=12
	ks := []int{2, 4, 6, 8, 10, 12}

	// Seed every k with the cheapest achievable bound available: the Lemma
	// 4.1 witness where k is a witness size, a greedy set otherwise. Wn is
	// vertex-transitive, so rooting the search at node 0 is exact and a
	// factor-N cheaper (Lemma 2.2/3.2 automorphisms).
	witnessUB := make(map[int]int)
	for d := 1; d <= w.Dim()-2; d++ {
		set := expansion.WnEdgeWitness(w, d)
		witnessUB[len(set)] = cut.EdgeBoundary(w.Graph, set)
	}
	edgeSeed := func(k int) int {
		if ub, ok := witnessUB[k]; ok {
			return ub
		}
		_, b := heuristic.GreedyEdgeExpansion(w.Graph, k, heuristic.ExpansionOptions{})
		return b
	}
	nodeSeed := func(k int) int {
		_, b := heuristic.GreedyNodeExpansion(w.Graph, k, heuristic.ExpansionOptions{})
		return b
	}

	start := time.Now()
	results := exact.ExpansionSurveyWithOptions(w.Graph, ks, 0, 0, exact.SurveyOptions{
		EdgeSeed: edgeSeed,
		NodeSeed: nodeSeed,
	})
	fmt.Printf("exact EE/NE(W16,k) for k=%v on %d workers in %v\n",
		ks, runtime.GOMAXPROCS(0), time.Since(start).Round(time.Millisecond))

	fmt.Println("\nEE(Wn,k): the (4±o(1))k/log k band (Lemmas 4.1–4.2)")
	for _, r := range results {
		lb := expansion.WnEdgeCreditBound(w, r.EESet).LowerBound
		note := ""
		if ub, ok := witnessUB[r.K]; ok {
			note = fmt.Sprintf("  (witness UB %d seeded the search)", ub)
		}
		fmt.Printf("  k=%3d: credit LB %3d ≤ exact EE %3d%s\n", r.K, lb, r.EE, note)
	}

	fmt.Println("\nNE(Wn,k): exact optima from the same batched run")
	for _, r := range results {
		fmt.Printf("  k=%3d: exact NE %3d (|N(S)| of returned set: %d)\n",
			r.K, r.NE, len(cut.NodeBoundary(w.Graph, r.NESet)))
	}

	// At witness scale the lemma formulas are exact: B64's node witnesses.
	b := topology.NewButterfly(64)
	fmt.Println("\nNE(Bn,k): the (1/2..1)k/log k band (Lemmas 4.10–4.11)")
	for d := 1; d <= 4; d++ {
		set := expansion.BnNodeWitness(b, d)
		k := len(set)
		nb := len(cut.NodeBoundary(b.Graph, set))
		lb := expansion.BnNodeCreditBound(b, set).LowerBound
		fmt.Printf("  k=%3d: credit LB %3d ≤ |N(A)| = %3d (2^(d+1) = %d)\n",
			k, lb, nb, 1<<(d+1))
	}

	// The credit schemes certify bounds for arbitrary sets too — here the
	// first k nodes of level 0, a set the lemmas never saw.
	w64 := topology.NewWrappedButterfly(64)
	fmt.Println("\ncredit certificates on an ad-hoc set (half of level 0 of W64):")
	adhoc := w64.LevelNodes(0)[:32]
	r := expansion.WnEdgeCreditBound(w64, adhoc)
	fmt.Printf("  k=%d: certified C(A,Ā) ≥ %d; actual boundary %d\n",
		len(adhoc), r.LowerBound, cut.EdgeBoundary(w64.Graph, adhoc))
	fmt.Printf("  credit conservation: retained %.3f + leaked %.3f = k = %d\n",
		r.CutRetained, r.LeakedToLeaves, r.K)
}
