// Quickstart: build a butterfly, measure the folklore column bisection,
// beat it with the paper's construction, and certify a lower bound — the
// whole Theorem 2.20 story in a page of code.
package main

import (
	"fmt"

	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/topology"
)

func main() {
	// The 32-node butterfly of the paper's Figure 1.
	b := topology.NewButterfly(8)
	fmt.Printf("B8: %d nodes, %d edges, diameter %d (theory: 2·log n = %d)\n",
		b.N(), b.M(), b.Diameter(), 2*b.Dim())

	// The folklore bisection: split by the first column bit.
	folklore := construct.ColumnBisection(b)
	fmt.Printf("folklore column cut: capacity %d (= n)\n", folklore.Capacity())

	// The exact bisection width, by branch and bound.
	_, bw := exact.MinBisection(b.Graph)
	fmt.Printf("exact BW(B8) = %d — folklore holds at small n, as the o(n) term allows\n", bw)

	// At large n the paper's construction drops below n. No graph is
	// materialized: half a million nodes are evaluated virtually, 64
	// columns at a time by the word-parallel kernel.
	n := 1 << 15
	plan, err := construct.BestPlan(n)
	if err != nil {
		panic(err)
	}
	capacity, sizeA := plan.EvaluateVirtualWords()
	fmt.Printf("\nB%d: constructed bisection capacity %d < n = %d (ratio %.4f)\n",
		n, capacity, n, plan.Ratio)
	fmt.Printf("  exact balance: |A| = %d of %d nodes\n", sizeA, n*(plan.Dim+1))
	fmt.Printf("  theory limit: 2(√2−1) ≈ %.4f (Theorem 2.20)\n", core.TheoreticalBisectionRatio)
}
