// dissemination demonstrates the paper's §1.3 motivation for expansion:
// information held by k nodes reaches at least k + NE(G,k) nodes per step,
// so expansion governs broadcast and load-balancing speed. We spread a
// rumor on Wn, verify every round's growth against the certified node
// expansion floor, and contrast with a low-expansion network (a cycle).
package main

import (
	"fmt"

	"repro/internal/expansion"
	"repro/internal/graph"
	"repro/internal/spread"
	"repro/internal/topology"
)

func main() {
	w := topology.NewWrappedButterfly(64)
	tr, err := spread.Run(w.Graph, []int{0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("W64 (N = %d): rumor from one node informs everyone in %d rounds (diameter %d)\n",
		w.N(), tr.Rounds, w.Diameter())
	fmt.Printf("  informed sizes: %v\n", tr.Sizes)

	// Per-round growth vs the credit-certified NE floor: for the actual
	// informed sets we can certify a lower bound on how much each round
	// MUST have grown.
	informed := []int{0}
	for round := 0; round < tr.Rounds; round++ {
		k := len(informed)
		grew := tr.Sizes[round+1] - tr.Sizes[round]
		note := ""
		if k >= 2 && k < w.N()/2 {
			cert := expansion.WnNodeCreditBound(w, informed).LowerBound
			note = fmt.Sprintf(" (certified ≥ %d)", cert)
			if grew < cert {
				panic("growth below certified expansion — impossible")
			}
		}
		fmt.Printf("  round %d: %4d → %4d, grew %4d%s\n", round+1, k, tr.Sizes[round+1], grew, note)
		informed = spread.Step(w.Graph, informed)
	}

	// Contrast: a cycle of the same size has expansion 2, so broadcast
	// takes Θ(N) rounds instead of Θ(log N).
	cyc := cycleGraph(w.N())
	trc, err := spread.Run(cyc, []int{0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncycle with the same %d nodes: %d rounds — the expansion gap in action\n",
		w.N(), trc.Rounds)
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}
