// vlsi-layout lays butterflies out on the Thompson grid (§1.1/§1.2): it
// compares the packed router's Θ(n²) area against the naive Θ(n²·log n)
// one, checks Thompson's A ≥ BW² against the constructed bisection width,
// and prints the track budget per level gap for one instance.
package main

import (
	"fmt"

	"repro/internal/construct"
	"repro/internal/layout"
	"repro/internal/topology"
)

func main() {
	fmt.Println("Thompson-grid layouts of Bn (validated: no two wires share a track)")
	fmt.Println()
	fmt.Println("   n     packed area   area/n²   naive area   BW²     A ≥ BW²")
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		b := topology.NewButterfly(n)
		packed := layout.New(b, layout.Packed)
		if err := packed.Validate(); err != nil {
			panic(err)
		}
		naive := layout.New(b, layout.Naive)
		plan, err := construct.BestPlan(n)
		if err != nil {
			panic(err)
		}
		bw := plan.Capacity
		fmt.Printf("  %5d  %12d  %8.3f  %11d  %8d  %v\n",
			n, packed.Area(), packed.AreaRatio(), naive.Area(), bw*bw,
			packed.ThompsonConsistent(bw))
	}

	fmt.Println("\ntrack budget per level gap of B64 (packed: 2·span per gap):")
	b := topology.NewButterfly(64)
	l := layout.New(b, layout.Packed)
	for gap, tracks := range l.TracksPerGap {
		fmt.Printf("  levels %d→%d: %2d tracks (cross wires span %d columns)\n",
			gap, gap+1, tracks, 1<<(b.Dim()-gap-1))
	}
	fmt.Printf("total grid: %d × %d = %d\n", l.Width, l.Height, l.Area())
}
