// permutation-routing exercises the routing substrate: the Beneš looping
// algorithm routes arbitrary permutations along edge-disjoint paths
// (rearrangeability, §1.5/Lemma 2.5), and the store-and-forward simulator
// relates butterfly routing time to bisection width (§1.2).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/construct"
	"repro/internal/route"
	"repro/internal/topology"
)

func main() {
	// 1. Rearrangeability: a hard permutation through a 64-input Beneš.
	be := topology.NewBenes(64)
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(64)
	paths, err := route.RoutePermutation(be, perm)
	if err != nil {
		panic(err)
	}
	ok, _ := route.VerifyEdgeDisjoint(be.Graph, paths)
	fmt.Printf("Beneš(64): routed a random permutation over %d levels; edge-disjoint: %v\n",
		be.Levels(), ok)

	// Bit reversal, the classic adversary for butterflies, routes too.
	rev := make([]int, 64)
	for i := range rev {
		r := 0
		for bit := 0; bit < 6; bit++ {
			r = r<<1 | (i >> bit & 1)
		}
		rev[i] = r
	}
	paths, err = route.RoutePermutation(be, rev)
	if err != nil {
		panic(err)
	}
	ok, _ = route.VerifyEdgeDisjoint(be.Graph, paths)
	fmt.Printf("Beneš(64): bit-reversal permutation edge-disjoint: %v\n", ok)

	// 2. Butterfly routing under load: random destinations vs the
	//    bisection bound of §1.2, one trial in detail first.
	b := topology.NewButterfly(64)
	plan, err := construct.BestPlan(64)
	if err != nil {
		panic(err)
	}
	ref := plan.Build(b)
	res := route.SimulateRandomDestinations(b, ref, 11)
	fmt.Printf("\nB64 random destinations: %d packets in %d steps\n", res.Packets, res.Steps)
	fmt.Printf("  %d routes cross the bisection (capacity %d): time ≥ ⌈%d/%d⌉ = %d steps\n",
		res.CutCrossings, ref.Capacity(), res.CutCrossings, ref.Capacity(), res.CongestionBound)
	fmt.Printf("  worst queue: %d packets\n", res.MaxQueue)

	// 3. The Monte-Carlo view: 200 independently seeded trials over a
	//    worker pool say how tight the bound is on average, not just once.
	stats := route.SimulateMany(b, ref, route.RandomDestinations,
		route.ManyOptions{Trials: 200, Seed: 11, TightFactor: 4})
	fmt.Printf("\nB64, %d random-destination trials:\n", stats.Trials)
	fmt.Printf("  steps min/mean/max: %d/%.1f/%d  (bound mean %.1f)\n",
		stats.MinSteps, stats.MeanSteps, stats.MaxSteps, stats.MeanBound)
	fmt.Printf("  steps/bound ratio min/mean/max: %.2f/%.2f/%.2f\n",
		stats.MinRatio, stats.MeanRatio, stats.MaxRatio)
	fmt.Printf("  trials within %.0f× of the §1.2 bound: %d/%d\n",
		stats.TightFactor, stats.TightTrials, stats.Trials)
	fmt.Printf("  worst queue over all trials: %d packets\n", stats.MaxQueuePeak)
}
