// permutation-routing exercises the routing substrate: the Beneš looping
// algorithm routes arbitrary permutations along edge-disjoint paths
// (rearrangeability, §1.5/Lemma 2.5), and the store-and-forward simulator
// relates butterfly routing time to bisection width (§1.2).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/construct"
	"repro/internal/route"
	"repro/internal/topology"
)

func main() {
	// 1. Rearrangeability: a hard permutation through a 64-input Beneš.
	be := topology.NewBenes(64)
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(64)
	paths, err := route.RoutePermutation(be, perm)
	if err != nil {
		panic(err)
	}
	ok, _ := route.VerifyEdgeDisjoint(be.Graph, paths)
	fmt.Printf("Beneš(64): routed a random permutation over %d levels; edge-disjoint: %v\n",
		be.Levels(), ok)

	// Bit reversal, the classic adversary for butterflies, routes too.
	rev := make([]int, 64)
	for i := range rev {
		r := 0
		for bit := 0; bit < 6; bit++ {
			r = r<<1 | (i >> bit & 1)
		}
		rev[i] = r
	}
	paths, err = route.RoutePermutation(be, rev)
	if err != nil {
		panic(err)
	}
	ok, _ = route.VerifyEdgeDisjoint(be.Graph, paths)
	fmt.Printf("Beneš(64): bit-reversal permutation edge-disjoint: %v\n", ok)

	// 2. Butterfly routing under load: random destinations vs the
	//    bisection bound of §1.2.
	b := topology.NewButterfly(64)
	ref := construct.BestPlan(64).Build(b)
	res := route.SimulateRandomDestinations(b, ref, 11)
	fmt.Printf("\nB64 random destinations: %d packets in %d steps\n", res.Packets, res.Steps)
	fmt.Printf("  %d routes cross the bisection (capacity %d): time ≥ ⌈%d/%d⌉ = %d steps\n",
		res.CutCrossings, ref.Capacity(), res.CutCrossings, ref.Capacity(), res.CongestionBound)
	fmt.Printf("  worst queue: %d packets\n", res.MaxQueue)
}
