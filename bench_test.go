// Benchmarks: one per experiment of DESIGN.md (E1–E17), regenerating the
// rows/series of the paper's results, plus ablations of the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/construct"
	"repro/internal/core"
	"repro/internal/cut"
	"repro/internal/embed"
	"repro/internal/emulation"
	"repro/internal/exact"
	"repro/internal/expansion"
	"repro/internal/flow"
	"repro/internal/heuristic"
	"repro/internal/layout"
	"repro/internal/mos"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/variants"
)

// --- E1: Fig. 1 / §1.1 structure ---

func BenchmarkFig1Structure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := core.ButterflyStructure(8, false)
		if rep.Diameter != rep.TheoryDiam {
			b.Fatalf("diameter %d, theory %d", rep.Diameter, rep.TheoryDiam)
		}
	}
}

// --- E2: BW(Bn) (Theorem 2.20) ---

// mustPlanB unwraps BestPlan for the statically valid benchmark sizes.
func mustPlanB(b *testing.B, n int) *construct.Plan {
	b.Helper()
	p, err := construct.BestPlan(n)
	if err != nil {
		b.Fatalf("BestPlan(%d): %v", n, err)
	}
	return p
}

func BenchmarkBisectionBnExact(b *testing.B) {
	bt := topology.NewButterfly(4)
	for i := 0; i < b.N; i++ {
		if _, w := exact.MinBisection(bt.Graph); w != 4 {
			b.Fatalf("BW(B4) = %d", w)
		}
	}
}

func BenchmarkBisectionBnConstructed(b *testing.B) {
	// The headline series: best sub-n plan on a half-million-node
	// butterfly, verified virtually.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := mustPlanB(b, 1<<15)
		capacity, _ := p.EvaluateVirtual()
		if capacity >= 1<<15 {
			b.Fatalf("capacity %d did not beat folklore", capacity)
		}
	}
}

func BenchmarkSubFolkloreSweep(b *testing.B) {
	dims := []int{6, 9, 12, 15, 18, 21, 24}
	for i := 0; i < b.N; i++ {
		plans, err := core.SubFolkloreSweep(dims)
		if err != nil {
			b.Fatal(err)
		}
		if plans[len(plans)-1].Ratio >= 1 {
			b.Fatalf("sweep did not go sub-folklore")
		}
	}
}

// --- E3: mesh of stars (Lemmas 2.17–2.19) ---

func BenchmarkMOSBisection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := mos.M2BisectionWidth(512)
		if r.Ratio <= mos.Limit {
			b.Fatalf("ratio %v at or below the limit", r.Ratio)
		}
	}
}

// --- E4: BW(Wn) = n (Lemma 3.2) ---

func BenchmarkBisectionWn(b *testing.B) {
	w := topology.NewWrappedButterfly(8)
	for i := 0; i < b.N; i++ {
		if _, width := exact.MinBisectionWithBound(w.Graph, 8); width != 8 {
			b.Fatalf("BW(W8) = %d", width)
		}
	}
}

func BenchmarkLemma31InputBisection(b *testing.B) {
	bt := topology.NewButterfly(4)
	for i := 0; i < b.N; i++ {
		if _, w := exact.MinSubsetBisection(bt.Graph, bt.InputNodes()); w != 4 {
			b.Fatalf("BW(B4,L0) = %d", w)
		}
	}
}

// --- E5: BW(CCCn) = n/2 (Lemma 3.3) ---

func BenchmarkBisectionCCC(b *testing.B) {
	c := topology.NewCCC(8)
	for i := 0; i < b.N; i++ {
		if _, width := exact.MinBisectionWithBound(c.Graph, 4); width != 4 {
			b.Fatalf("BW(CCC8) = %d", width)
		}
	}
}

// --- E6: §4.3 lower bounds (credit schemes) ---

func BenchmarkExpansionLowerWnEdge(b *testing.B) {
	w := topology.NewWrappedButterfly(256)
	set := expansion.WnEdgeWitness(w, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := expansion.WnEdgeCreditBound(w, set)
		if r.LowerBound <= 0 {
			b.Fatalf("degenerate bound")
		}
	}
}

func BenchmarkExpansionLowerBnNode(b *testing.B) {
	bt := topology.NewButterfly(256)
	set := expansion.BnNodeWitness(bt, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := expansion.BnNodeCreditBound(bt, set)
		if r.LowerBound <= 0 {
			b.Fatalf("degenerate bound")
		}
	}
}

// --- E7: §4.3 upper bounds (witness constructions) ---

func BenchmarkExpansionUpperWitnesses(b *testing.B) {
	w := topology.NewWrappedButterfly(256)
	bt := topology.NewButterfly(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cut.EdgeBoundary(w.Graph, expansion.WnEdgeWitness(w, 4)) != 64 {
			b.Fatalf("Wn edge witness boundary wrong")
		}
		if len(cut.NodeBoundary(bt.Graph, expansion.BnNodeWitness(bt, 4))) != 32 {
			b.Fatalf("Bn node witness boundary wrong")
		}
	}
}

func BenchmarkExpansionExact(b *testing.B) {
	w := topology.NewWrappedButterfly(8)
	for i := 0; i < b.N; i++ {
		if _, ee := exact.MinEdgeExpansion(w.Graph, 4); ee <= 0 {
			b.Fatalf("EE = %d", ee)
		}
	}
}

// BenchmarkExpansionExactParallel{Edge,Node} measure the parallel
// prefix-fan-out expansion engine on a W16 workload the serial engine of
// the seed handled in the hundreds of milliseconds; the serial entries
// above stay as the baseline of the trajectory.
func BenchmarkExpansionExactParallelEdge(b *testing.B) {
	w := topology.NewWrappedButterfly(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ee := exact.MinEdgeExpansionParallel(w.Graph, 6, 0); ee != 10 {
			b.Fatalf("EE(W16,6) = %d", ee)
		}
	}
}

func BenchmarkExpansionExactParallelNode(b *testing.B) {
	w := topology.NewWrappedButterfly(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ne := exact.MinNodeExpansionParallel(w.Graph, 6, 0); ne != 9 {
			b.Fatalf("NE(W16,6) = %d", ne)
		}
	}
}

// BenchmarkExpansionSurvey measures the batched engine: one BFS order, one
// worker pool and per-worker scratch reused across the whole k-sweep, each
// search root-forced (Wn is vertex-transitive) and seeded by its witness.
func BenchmarkExpansionSurvey(b *testing.B) {
	w := topology.NewWrappedButterfly(8)
	ks := []int{2, 3, 4, 5, 6}
	seed := func(k int) int {
		if k == 4 {
			return cut.EdgeBoundary(w.Graph, expansion.WnEdgeWitness(w, 1))
		}
		return -1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := exact.ExpansionSurveyWithOptions(w.Graph, ks, 0, 0,
			exact.SurveyOptions{EdgeSeed: seed})
		if res[2].EE != 8 {
			b.Fatalf("EE(W8,4) = %d", res[2].EE)
		}
	}
}

// --- E8: routing vs bisection bound (§1.2) ---

func BenchmarkRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.RandomRoutingExperiment(32, int64(i), core.RoutingOptions{})
		if r.Stats.MinBound > 0 && r.Stats.MinRatio < 1 {
			b.Fatalf("steps below certified bound: %+v", r.Stats)
		}
	}
}

// BenchmarkRoutingSingleTrial{Map,Flat} measure one B7 random-destination
// trial on the seed tree's map-based engine vs the flat directed-edge-CSR
// engine (the acceptance target is ≥5× with ~zero steady-state allocs).
func BenchmarkRoutingSingleTrialMap(b *testing.B) {
	bt := topology.NewButterfly(128)
	ref := mustPlanB(b, 128).Build(bt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := route.SimulateRandomDestinationsReference(bt, ref, int64(i))
		if r.Steps < r.CongestionBound {
			b.Fatalf("steps %d below bound %d", r.Steps, r.CongestionBound)
		}
	}
}

func BenchmarkRoutingSingleTrialFlat(b *testing.B) {
	bt := topology.NewButterfly(128)
	ref := mustPlanB(b, 128).Build(bt)
	route.SimulateRandomDestinations(bt, ref, 0) // warm index cache + state pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := route.SimulateRandomDestinations(bt, ref, int64(i))
		if r.Steps < r.CongestionBound {
			b.Fatalf("steps %d below bound %d", r.Steps, r.CongestionBound)
		}
	}
}

// BenchmarkRoutingManyParallel{B7,B9} measure multi-trial Monte-Carlo
// throughput of the worker-pool runner in routed packets per second.
func benchRoutingMany(b *testing.B, n, trials int) {
	bt := topology.NewButterfly(n)
	ref := mustPlanB(b, n).Build(bt)
	b.ReportAllocs()
	b.ResetTimer()
	var packets int64
	for i := 0; i < b.N; i++ {
		stats := route.SimulateMany(bt, ref, route.RandomDestinations,
			route.ManyOptions{Trials: trials, Seed: int64(i)})
		if stats.MinRatio < 1 {
			b.Fatalf("a trial beat its certified bound: %+v", stats)
		}
		packets += stats.TotalPackets
	}
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "packets/s")
}

func BenchmarkRoutingManyParallelB7(b *testing.B) { benchRoutingMany(b, 128, 32) }

func BenchmarkRoutingManyParallelB9(b *testing.B) { benchRoutingMany(b, 512, 16) }

// --- E9: Beneš looping algorithm (Lemma 2.5 substrate) ---

func BenchmarkBenesLooping(b *testing.B) {
	routedAll := true
	for i := 0; i < b.N; i++ {
		routed, total := core.BenesRearrangeabilityCheck(64, 8, int64(i))
		routedAll = routedAll && routed == total
	}
	if !routedAll {
		b.Fatalf("some permutation failed to route")
	}
}

// --- E10: compactness / amenability (Lemmas 2.8, 2.9, 2.15) ---

func BenchmarkCompactness(b *testing.B) {
	bt := topology.NewButterfly(4)
	var u []int
	for i := 1; i <= bt.Dim(); i++ {
		u = append(u, bt.LevelNodes(i)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The full Lemma 2.8 verification over all 4096 cuts of B4.
		ok := true
		side := make([]bool, bt.N())
		for mask := 0; mask < 1<<bt.N(); mask++ {
			for v := 0; v < bt.N(); v++ {
				side[v] = mask>>v&1 == 1
			}
			base := cut.New(bt.Graph, side).Capacity()
			work := append([]bool(nil), side...)
			for _, v := range u {
				work[v] = true
			}
			inS := cut.New(bt.Graph, work).Capacity()
			for _, v := range u {
				work[v] = false
			}
			inSbar := cut.New(bt.Graph, work).Capacity()
			if inS > base && inSbar > base {
				ok = false
			}
		}
		if !ok {
			b.Fatalf("Lemma 2.8 violated")
		}
	}
}

// --- E11: embedding properties (Lemmas 2.10, 2.11) ---

func BenchmarkEmbeddings(b *testing.B) {
	host := topology.NewButterfly(16)
	for i := 0; i < b.N; i++ {
		e := embed.BkIntoBn(host, 2, 1)
		if c, uniform := e.UniformCongestion(); !uniform || c != 2 {
			b.Fatalf("Lemma 2.10 congestion wrong")
		}
		e2 := embed.ButterflyIntoMOS(host, 4, 4)
		if c, uniform := e2.UniformCongestion(); !uniform || c != 2 {
			b.Fatalf("Lemma 2.11 congestion wrong")
		}
	}
}

// --- Ablations ---

// BenchmarkAblationExactSeeded vs BenchmarkAblationExactUnseeded measure
// what seeding the branch-and-bound with the constructed cut is worth.
func BenchmarkAblationExactSeeded(b *testing.B) {
	bt := topology.NewButterfly(8)
	for i := 0; i < b.N; i++ {
		if _, w := exact.MinBisectionWithBound(bt.Graph, 8); w != 8 {
			b.Fatalf("BW = %d", w)
		}
	}
}

func BenchmarkAblationExactUnseeded(b *testing.B) {
	bt := topology.NewButterfly(8)
	for i := 0; i < b.N; i++ {
		if _, w := exact.MinBisection(bt.Graph); w != 8 {
			b.Fatalf("BW = %d", w)
		}
	}
}

// BenchmarkAblationGridJ2 pins the folklore baseline (coarsest class grid)
// against BenchmarkBisectionBnConstructed's refined grid.
func BenchmarkAblationGridJ2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, ok := construct.PlanButterflyBisection(1<<15, 2)
		if !ok || p.Capacity != 1<<15 {
			b.Fatalf("folklore plan wrong")
		}
	}
}

// BenchmarkAblationHeuristicVsConstruction measures the FM search cost on a
// size where it merely re-finds the construction's value.
func BenchmarkAblationHeuristicVsConstruction(b *testing.B) {
	bt := topology.NewButterfly(64)
	best := mustPlanB(b, 64).Capacity
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := heuristic.Bisect(bt.Graph, heuristic.BisectOptions{Starts: 4, Seed: int64(i)})
		if h.Capacity() < best {
			b.Fatalf("heuristic %d beat the construction %d", h.Capacity(), best)
		}
	}
}

// --- E12: §1.6 related bounds ---

func BenchmarkVariantsSnirExact(b *testing.B) {
	o := variants.NewOmega(8)
	for i := 0; i < b.N; i++ {
		_, c := o.MinPortedBoundary(4)
		if !variants.SnirInequalityHolds(c, 4) {
			b.Fatalf("Snir inequality failed")
		}
	}
}

func BenchmarkVariantsHongKung(b *testing.B) {
	f := variants.NewFFT(16)
	set := expansion.BnNodeWitness(f.Base, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if holds, _ := f.VerifyHongKung(set); !holds {
			b.Fatalf("Hong–Kung bound failed")
		}
	}
}

// --- E13: directed (Kruskal–Snir) bisection ---

func BenchmarkDirectedBisection(b *testing.B) {
	bt := topology.NewButterfly(8)
	for i := 0; i < b.N; i++ {
		if _, w := bandwidth.MinDirectedBisection(bt); w != 4 {
			b.Fatalf("directed width %d", w)
		}
	}
}

// --- E14: Lemma 3.2 transmutation pipeline ---

func BenchmarkTransmutation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.TransmutationExperiment(16, 0)
		if err != nil || !res.InputBisected {
			b.Fatalf("pipeline failed: %v", err)
		}
	}
}

// --- E15: dissemination (§1.3) ---

func BenchmarkDissemination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.Dissemination(32)
		if err != nil || r.Rounds > r.Diameter {
			b.Fatalf("dissemination failed")
		}
	}
}

// --- E16: emulation (§1.5) ---

func BenchmarkEmulation(b *testing.B) {
	host := topology.NewButterfly(16)
	e := embed.BenesIntoButterfly(host)
	budget := emulation.SlowdownBudget(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := emulation.EmulateStep(e); res.HostSteps > budget {
			b.Fatalf("slowdown over budget")
		}
	}
}

// --- Max-flow substrate (used by E12) ---

func BenchmarkVertexSeparator(b *testing.B) {
	bt := topology.NewButterfly(16)
	for i := 0; i < b.N; i++ {
		sep := flow.VertexSeparator(bt.N(), bt.Neighbors, bt.InputNodes(), bt.OutputNodes())
		if len(sep) != 16 {
			b.Fatalf("separator size %d", len(sep))
		}
	}
}

// --- E17: VLSI layout (§1.1/§1.2) ---

func BenchmarkLayout(b *testing.B) {
	bt := topology.NewButterfly(256)
	for i := 0; i < b.N; i++ {
		l := layout.New(bt, layout.Packed)
		if err := l.Validate(); err != nil {
			b.Fatal(err)
		}
		if l.AreaRatio() > 2.6 {
			b.Fatalf("area ratio %v", l.AreaRatio())
		}
	}
}

// BenchmarkAblationExactParallel measures the parallel branch-and-bound
// against BenchmarkAblationExactUnseeded's serial run on the same network.
func BenchmarkAblationExactParallel(b *testing.B) {
	bt := topology.NewButterfly(8)
	for i := 0; i < b.N; i++ {
		if _, w := exact.MinBisectionParallel(bt.Graph, 0); w != 8 {
			b.Fatalf("BW = %d", w)
		}
	}
}

// BenchmarkAblationVirtualParallel measures the parallel virtual evaluator
// against the serial one inside BenchmarkBisectionBnConstructed. Since the
// word-parallel kernel landed this routes through 64-column masks, not
// per-column InA calls.
func BenchmarkAblationVirtualParallel(b *testing.B) {
	p := mustPlanB(b, 1<<15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		capacity, _ := p.EvaluateVirtualParallel(0)
		if capacity >= 1<<15 {
			b.Fatalf("capacity %d", capacity)
		}
	}
}

// BenchmarkVirtualWordSerial isolates the single-threaded word kernel on
// the headline n=2^15 plan — the direct ablation against the scalar
// BenchmarkBisectionBnConstructed loop.
func BenchmarkVirtualWordSerial(b *testing.B) {
	p := mustPlanB(b, 1<<15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		capacity, _ := p.EvaluateVirtualWords()
		if capacity >= 1<<15 {
			b.Fatalf("capacity %d did not beat folklore", capacity)
		}
	}
}

// BenchmarkVirtualWordMillion evaluates the full 2^20-column butterfly
// (21.9M virtual nodes) per iteration: the ROADMAP's million-node target.
func BenchmarkVirtualWordMillion(b *testing.B) {
	p := mustPlanB(b, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		capacity, _ := p.EvaluateVirtualWords()
		if capacity >= 1<<20 {
			b.Fatalf("capacity %d did not beat folklore", capacity)
		}
	}
}

// --- Serving: cold start vs persistent-store warm start ---

// benchServeQuery drives one request through a server's handler and
// checks the X-Cache source.
func benchServeQuery(b *testing.B, s *serve.Server, path, wantSource string) {
	b.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != wantSource {
		b.Fatalf("GET %s: X-Cache %q, want %q", path, got, wantSource)
	}
}

// benchServePath is the restart-to-first-response workload both serving
// benchmarks measure: a 2^15-column butterfly bisection row (524k virtual
// nodes), the headline constructed-series size.
const benchServePath = "/v1/bisection?network=bn&n=32768"

// BenchmarkServeColdStart: every iteration is a fresh daemon answering
// its first query — the full solve (plan construction + virtual
// evaluation + rendering), nothing cached anywhere.
func BenchmarkServeColdStart(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchServeQuery(b, serve.New(serve.Config{}), benchServePath, "miss")
	}
}

// BenchmarkServeWarmStart: every iteration is a fresh daemon over a
// filled persistent store answering the same first query from disk — the
// -store warm start. The acceptance target is ≥100× under ColdStart.
func BenchmarkServeWarmStart(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	seeder := serve.New(serve.Config{Store: st})
	benchServeQuery(b, seeder, benchServePath, "miss")
	if n, err := seeder.FlushStore(); err != nil || n != 1 {
		b.Fatalf("flush: n=%d err=%v", n, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServeQuery(b, serve.New(serve.Config{Store: st}), benchServePath, "store-hit")
	}
}

// --- Port-level rearrangeability (Lemma 2.5, full form) ---

func BenchmarkPortRouting(b *testing.B) {
	bt := topology.NewButterfly(64)
	perm := make([]int, 64)
	for i := range perm {
		perm[i] = 63 - i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths, err := route.ButterflyPortPaths(bt, perm)
		if err != nil {
			b.Fatal(err)
		}
		if ok, _ := route.VerifyEdgeDisjoint(bt.Graph, paths); !ok {
			b.Fatalf("paths not edge-disjoint")
		}
	}
}
