// Package repro is a full reproduction of Bornstein, Litman, Maggs,
// Sitaraman and Yatzkar, "On the Bisection Width and Expansion of Butterfly
// Networks" (IPPS 1998; Theory of Computing Systems 34, 2001).
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory), the experiment executables under cmd/, runnable walkthroughs
// under examples/, and the per-table benchmarks in bench_test.go at this
// root. EXPERIMENTS.md records paper-vs-measured for every result.
package repro
