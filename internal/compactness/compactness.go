// Package compactness implements executable versions of the paper's
// "compact" and "amenable" set notions (§2): a set U is compact in G if any
// cut can be rearranged, touching only U, so that U lies entirely on one
// side without increasing capacity; U is amenable with respect to a cut if
// any number of its nodes (0..|U|) can be placed on the A side, again
// touching only U and never increasing capacity.
//
// Compactness powers the paper's cut surgery (Lemmas 2.8, 2.9, 2.13) and
// amenability its rebalancing step (Lemmas 2.15, 2.16); package construct
// relies on the same frontier shapes to balance the sub-n bisection of Bn.
package compactness

import (
	"math/rand"

	"repro/internal/cut"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/topology"
)

// MoveSetCapacities returns the capacities of the two cuts obtained from
// side by moving all of U into S and into S̄ respectively (the only two
// candidates permitted by the definition of compact).
func MoveSetCapacities(g *graph.Graph, u []int, side []bool) (allInS, allInSbar int) {
	work := make([]bool, len(side))

	copy(work, side)
	for _, v := range u {
		work[v] = true
	}
	allInS = cut.New(g, work).Capacity()

	copy(work, side)
	for _, v := range u {
		work[v] = false
	}
	allInSbar = cut.New(g, work).Capacity()
	return allInS, allInSbar
}

// IsCompactForCut reports whether U can be consolidated onto one side of the
// given cut without increasing its capacity.
func IsCompactForCut(g *graph.Graph, u []int, side []bool) bool {
	base := cut.New(g, append([]bool(nil), side...)).Capacity()
	inS, inSbar := MoveSetCapacities(g, u, side)
	return inS <= base || inSbar <= base
}

// VerifyCompactAllCuts checks compactness of U against every one of the 2^N
// cuts of g. Exponential; intended for networks of at most ~20 nodes.
func VerifyCompactAllCuts(g *graph.Graph, u []int) bool {
	n := g.N()
	if n > 24 {
		panic("compactness: exhaustive verification limited to 24 nodes")
	}
	side := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 0; v < n; v++ {
			side[v] = mask>>v&1 == 1
		}
		if !IsCompactForCut(g, u, side) {
			return false
		}
	}
	return true
}

// VerifyCompactRandomCuts checks compactness of U against trials random
// cuts, returning the first violating side assignment or nil.
func VerifyCompactRandomCuts(g *graph.Graph, u []int, trials int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		side := make([]bool, g.N())
		for v := range side {
			side[v] = rng.Intn(2) == 0
		}
		if !IsCompactForCut(g, u, side) {
			return side
		}
	}
	return nil
}

// IsAmenableForCut reports whether U is amenable with respect to the cut:
// for every k in 0..|U| some redistribution of U with exactly k nodes in S
// keeps the capacity at or below the original. It enumerates subsets of U
// and is intended for |U| ≤ ~20.
func IsAmenableForCut(g *graph.Graph, u []int, side []bool) bool {
	if len(u) > 24 {
		panic("compactness: amenability enumeration limited to |U| ≤ 24")
	}
	base := cut.New(g, append([]bool(nil), side...)).Capacity()
	bestPerK := make([]int, len(u)+1)
	for k := range bestPerK {
		bestPerK[k] = -1
	}
	work := make([]bool, len(side))
	for mask := 0; mask < 1<<len(u); mask++ {
		copy(work, side)
		k := 0
		for i, v := range u {
			in := mask>>i&1 == 1
			work[v] = in
			if in {
				k++
			}
		}
		c := cut.New(g, work).Capacity()
		if bestPerK[k] < 0 || c < bestPerK[k] {
			bestPerK[k] = c
		}
	}
	for _, c := range bestPerK {
		if c > base {
			return false
		}
	}
	return true
}

// Lemma28PathCertificate runs the Lemma 2.8 proof constructively on a
// concrete cut g = (A,Ā) of Bn: it picks a port bijection π sending the
// ports of Ā∩I into ports of A∩O (and the ports of Ā∩O receiving from
// A∩I), routes π through Bn along the edge-disjoint Lemma 2.5 paths, and
// counts the routed paths that join opposite sides of the cut — each such
// path must cross g at least once, and the paths are edge-disjoint, so
// their number (2·|minority side ∩ L0|) is a certified lower bound on
// C(g). The function returns that bound and whether the certificate's
// internal checks passed.
func Lemma28PathCertificate(b *topology.Butterfly, side []bool) (bound int, ok bool) {
	if b.Wraparound() {
		panic("compactness: Lemma 2.8 certificate targets Bn")
	}
	n := b.Inputs()
	ins, outs := embed.BenesIOPartition(b)

	// WLOG the minority side of L0 is Ā (swap otherwise).
	minority := make([]bool, b.N())
	inCount := 0
	for _, v := range b.LevelNodes(0) {
		if side[v] {
			inCount++
		}
	}
	for v := range minority {
		if inCount <= n/2 {
			minority[v] = side[v] // Ā role played by S
		} else {
			minority[v] = !side[v]
		}
	}

	// Port p (input) lives on I node ins[p/2]; output port q on outs[q/2].
	var minIn, majIn, minOut, majOut []int
	for p := 0; p < n; p++ {
		if minority[ins[p/2]] {
			minIn = append(minIn, p)
		} else {
			majIn = append(majIn, p)
		}
		if minority[outs[p/2]] {
			minOut = append(minOut, p)
		} else {
			majOut = append(majOut, p)
		}
	}
	// Lemma 2.8's counting guarantees |minIn| ≤ |majOut| and
	// |minOut| ≤ |majIn|.
	if len(minIn) > len(majOut) || len(minOut) > len(majIn) {
		return 0, false
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	usedOut := make([]bool, n)
	for i, p := range minIn { // minority inputs → majority outputs
		perm[p] = majOut[i]
		usedOut[majOut[i]] = true
	}
	mi := 0
	for _, q := range minOut { // minority outputs ← majority inputs
		for perm[majIn[mi]] != -1 {
			mi++
		}
		perm[majIn[mi]] = q
		usedOut[q] = true
	}
	free := 0
	for p := 0; p < n; p++ {
		if perm[p] != -1 {
			continue
		}
		for usedOut[free] {
			free++
		}
		perm[p] = free
		usedOut[free] = true
	}

	paths, err := route.ButterflyPortPaths(b, perm)
	if err != nil {
		return 0, false
	}
	if disjoint, _ := route.VerifyEdgeDisjoint(b.Graph, paths); !disjoint {
		return 0, false
	}
	crossing := 0
	for _, p := range paths {
		if minority[p[0]] != minority[p[len(p)-1]] {
			crossing++
			// The path must actually cross somewhere.
			crossed := false
			for i := 0; i+1 < len(p); i++ {
				if side[p[i]] != side[p[i+1]] {
					crossed = true
					break
				}
			}
			if !crossed {
				return 0, false
			}
		}
	}
	return crossing, true
}

// FrontierAssignment places exactly k nodes of the component comp of
// Bn[lo,hi] on the S side using the Lemma 2.15 frontier shape: if topInS,
// nodes fill level-major from the component's top level down; otherwise
// from its bottom level up. The assignment is written into side.
func FrontierAssignment(comp topology.LevelRangeComponent, k int, topInS bool, side []bool) {
	nodes := comp.Nodes() // level-major from the top
	if !topInS {
		for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		}
	}
	for i, v := range nodes {
		side[v] = i < k
	}
}

// VerifyFrontierAmenability checks the Lemma 2.15 conclusion for a concrete
// component U of Bn[1, log n − 1]-style level ranges: given a cut whose U
// top neighbors are in S and bottom neighbors in S̄ (or vice versa, with
// topInS=false), every k must be realizable by a frontier assignment at
// capacity ≤ the cut's. It returns the first failing k, or −1.
func VerifyFrontierAmenability(g *graph.Graph, comp topology.LevelRangeComponent, side []bool, topInS bool) int {
	base := cut.New(g, append([]bool(nil), side...)).Capacity()
	work := make([]bool, len(side))
	for k := 0; k <= comp.Size(); k++ {
		copy(work, side)
		FrontierAssignment(comp, k, topInS, work)
		if cut.New(g, work).Capacity() > base {
			return k
		}
	}
	return -1
}
