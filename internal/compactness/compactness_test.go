package compactness

import (
	"math/rand"
	"testing"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/topology"
)

func TestLemma28TailIsCompactExhaustive(t *testing.T) {
	// Lemma 2.8: U = L1 ∪ ... ∪ L_log n is compact in Bn. Exhaustive over
	// all 2^12 cuts of B4.
	b := topology.NewButterfly(4)
	var u []int
	for i := 1; i <= b.Dim(); i++ {
		u = append(u, b.LevelNodes(i)...)
	}
	if !VerifyCompactAllCuts(b.Graph, u) {
		t.Errorf("L1..Llogn of B4 is not compact (contradicts Lemma 2.8)")
	}
}

func TestLemma29ComponentsCompactRandom(t *testing.T) {
	// Lemma 2.9: each connected component of Bn[i, log n] is compact in Bn.
	// Random-cut verification on B8.
	b := topology.NewButterfly(8)
	for i := 1; i <= b.Dim(); i++ {
		for _, comp := range b.LevelRangeComponents(i, b.Dim()) {
			if bad := VerifyCompactRandomCuts(b.Graph, comp.Nodes(), 300, int64(i)); bad != nil {
				t.Fatalf("component of B8[%d,%d] not compact for some cut", i, b.Dim())
			}
		}
	}
}

func TestLemma29Exhaustive(t *testing.T) {
	// Exhaustive analogue on B4 (12 nodes).
	b := topology.NewButterfly(4)
	for i := 1; i <= b.Dim(); i++ {
		for _, comp := range b.LevelRangeComponents(i, b.Dim()) {
			if !VerifyCompactAllCuts(b.Graph, comp.Nodes()) {
				t.Fatalf("component of B4[%d,%d] not compact", i, b.Dim())
			}
		}
	}
}

func TestNotEverySetIsCompact(t *testing.T) {
	// Sanity: a single interior node of a path is NOT compact: the cut
	// isolating it gets strictly cheaper by consolidation... it does, so
	// pick a genuinely non-compact example: the two endpoints of P4 {0,3}
	// against the cut S={0,1}: moving both to S gives {0,1,3} capacity 2;
	// moving both out gives {1} capacity 2; original capacity 1.
	bld := graph.NewBuilder(4)
	bld.AddEdge(0, 1)
	bld.AddEdge(1, 2)
	bld.AddEdge(2, 3)
	g := bld.Build()
	side := []bool{true, true, false, false}
	if IsCompactForCut(g, []int{0, 3}, side) {
		t.Errorf("{0,3} should not be compact for S={0,1} in P4")
	}
	if VerifyCompactAllCuts(g, []int{0, 3}) {
		t.Errorf("exhaustive check should find the violation")
	}
}

func TestMoveSetCapacities(t *testing.T) {
	bld := graph.NewBuilder(3)
	bld.AddEdge(0, 1)
	bld.AddEdge(1, 2)
	g := bld.Build()
	inS, inSbar := MoveSetCapacities(g, []int{1}, []bool{true, false, false})
	// U={1} into S: S={0,1}, capacity 1. Into S̄: S={0}, capacity 1.
	if inS != 1 || inSbar != 1 {
		t.Errorf("capacities %d,%d, want 1,1", inS, inSbar)
	}
}

func TestIsAmenableForCutSimple(t *testing.T) {
	// On a path 0-1-2-3 with S = {0}: U = {1,2} is amenable: k=0 (S={0},
	// cap 1), k=1 ({0,1}, cap 1), k=2 ({0,1,2}, cap 1).
	bld := graph.NewBuilder(4)
	bld.AddEdge(0, 1)
	bld.AddEdge(1, 2)
	bld.AddEdge(2, 3)
	g := bld.Build()
	if !IsAmenableForCut(g, []int{1, 2}, []bool{true, false, false, false}) {
		t.Errorf("path interior should be amenable")
	}
	// U = {1,3} (skipping 2) is not: k=2 forces S ⊇ {0,1,3} with capacity 2
	// ... capacity({0,1,3}) = edges {1,2},{2,3} = 2 > 1.
	if IsAmenableForCut(g, []int{1, 3}, []bool{true, false, false, false}) {
		t.Errorf("{1,3} should not be amenable w.r.t. S={0}")
	}
}

func TestLemma215FrontierAmenability(t *testing.T) {
	// Lemma 2.15: a connected component U of Bn[1, log n − 1] is amenable
	// with respect to any cut placing N(U)∩L0 in S and N(U)∩Llogn in S̄.
	// Frontier assignments realize every k without exceeding the capacity.
	b := topology.NewButterfly(8)
	for _, comp := range b.LevelRangeComponents(1, b.Dim()-1) {
		// Build a cut satisfying the premise: top neighbors in S, bottom
		// neighbors in S̄, everything else random, component arbitrary.
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 25; trial++ {
			side := make([]bool, b.N())
			for v := range side {
				side[v] = rng.Intn(2) == 0
			}
			for _, v := range cut.NodeBoundary(b.Graph, comp.Nodes()) {
				side[v] = b.Level(v) == 0 // top neighbors in S, bottom in S̄
			}
			if k := VerifyFrontierAmenability(b.Graph, comp, side, true); k >= 0 {
				t.Fatalf("frontier amenability failed at k=%d", k)
			}
		}
	}
}

func TestLemma215FullEnumerationOnB4(t *testing.T) {
	// On B4, components of B4[1, 1] are tiny (2 nodes); check the full
	// amenability definition, not just frontier witnesses.
	b := topology.NewButterfly(4)
	for _, comp := range b.LevelRangeComponents(1, 1) {
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 50; trial++ {
			side := make([]bool, b.N())
			for v := range side {
				side[v] = rng.Intn(2) == 0
			}
			for _, v := range cut.NodeBoundary(b.Graph, comp.Nodes()) {
				side[v] = b.Level(v) < 1
			}
			if !IsAmenableForCut(b.Graph, comp.Nodes(), side) {
				t.Fatalf("B4[1,1] component not amenable under the premise")
			}
		}
	}
}

func TestFrontierAssignmentShape(t *testing.T) {
	b := topology.NewButterfly(8)
	comp := b.LevelRangeComponents(1, 2)[0]
	side := make([]bool, b.N())
	FrontierAssignment(comp, 3, true, side)
	// Exactly 3 nodes of the component in S, and they occupy the topmost
	// levels first.
	count := 0
	minLevelOut := 1 << 30
	maxLevelIn := -1
	for _, v := range comp.Nodes() {
		if side[v] {
			count++
			if b.Level(v) > maxLevelIn {
				maxLevelIn = b.Level(v)
			}
		} else if b.Level(v) < minLevelOut {
			minLevelOut = b.Level(v)
		}
	}
	if count != 3 {
		t.Fatalf("placed %d nodes, want 3", count)
	}
	if maxLevelIn > minLevelOut {
		t.Errorf("frontier not monotone: in up to level %d, out from level %d", maxLevelIn, minLevelOut)
	}
}

func TestVerifyCompactAllCutsSizeGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("oversized exhaustive check did not panic")
		}
	}()
	VerifyCompactAllCuts(topology.NewButterfly(8).Graph, []int{0})
}

func TestLemma28PathCertificate(t *testing.T) {
	// The constructive Lemma 2.8 argument: for random cuts of B8 and B16,
	// the routed-path certificate (2·|minority ∩ L0| edge-disjoint
	// crossing paths) is a sound lower bound on the cut capacity.
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{8, 16} {
		b := topology.NewButterfly(n)
		for trial := 0; trial < 30; trial++ {
			side := make([]bool, b.N())
			for v := range side {
				side[v] = rng.Intn(2) == 0
			}
			bound, ok := Lemma28PathCertificate(b, side)
			if !ok {
				t.Fatalf("B%d trial %d: certificate failed to build", n, trial)
			}
			capacity := cut.New(b.Graph, append([]bool(nil), side...)).Capacity()
			if bound > capacity {
				t.Fatalf("B%d: certified bound %d exceeds capacity %d", n, bound, capacity)
			}
		}
	}
}

func TestLemma28CertificateTightOnLevelCut(t *testing.T) {
	// For the cut S = L1..Llogn (Ā = L0 entirely on one side... take S =
	// everything except half of L0): with exactly n/2 of L0 in Ā the
	// certificate yields 2·(n/2) = n, and the column cut realizes exactly
	// that capacity... here check on the column bisection, where the bound
	// is n and the capacity is n: equality.
	b := topology.NewButterfly(8)
	side := make([]bool, b.N())
	for v := 0; v < b.N(); v++ {
		side[v] = b.Column(v) < 4
	}
	bound, ok := Lemma28PathCertificate(b, side)
	if !ok {
		t.Fatalf("certificate failed")
	}
	capacity := cut.New(b.Graph, append([]bool(nil), side...)).Capacity()
	if bound != 8 || capacity != 8 {
		t.Errorf("bound %d, capacity %d; want both 8 (tight)", bound, capacity)
	}
}
