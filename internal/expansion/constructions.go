// Package expansion implements both sides of the paper's §4 expansion
// bounds. The upper bounds are explicit sets — sub-butterflies and siblings
// of sub-butterflies (Lemmas 4.1, 4.4, 4.7, 4.10) — whose boundaries are
// measured exactly. The lower bounds are executable credit-distribution
// schemes (Lemmas 4.2, 4.5, 4.8, 4.11) that certify, for any concrete set
// A, a floor on C(A,Ā) or |N(A)|.
package expansion

import (
	"fmt"

	"repro/internal/topology"
)

// WnEdgeWitness returns the Lemma 4.1 witness set: a d-dimensional
// sub-butterfly of Wn with k = 2^d·(d+1) nodes and edge boundary exactly
// 4·2^d = (4+o(1))k/log k. Requires 1 ≤ d ≤ log n − 2 so that the
// sub-butterfly's inputs and outputs have all four outside edges.
func WnEdgeWitness(w *topology.Butterfly, d int) []int {
	if !w.Wraparound() {
		panic("expansion: WnEdgeWitness needs Wn")
	}
	if d < 1 || d > w.Dim()-2 {
		panic(fmt.Sprintf("expansion: witness dimension %d out of range for W%d", d, w.Inputs()))
	}
	return w.WrappedSubButterflyNodes(0, d, 0)
}

// WnNodeWitness returns the Lemma 4.4 witness set: the union of the two
// d-dimensional sub-butterflies B′ and B″ contained in a (d+1)-dimensional
// sub-butterfly B of Wn, i.e. B minus its input level. The set has
// k = 2·2^d·(d+1) nodes and neighbor set of size 3·2^(d+1): the inputs of B
// plus two outside neighbors per output.
func WnNodeWitness(w *topology.Butterfly, d int) []int {
	if !w.Wraparound() {
		panic("expansion: WnNodeWitness needs Wn")
	}
	if d < 1 || d+1 > w.Dim()-2 {
		panic(fmt.Sprintf("expansion: witness dimension %d out of range for W%d", d, w.Inputs()))
	}
	big := w.WrappedSubButterflyNodes(0, d+1, 0)
	// Drop local level 0 (the first 2^(d+1) entries: Nodes are level-major).
	return big[1<<(d+1):]
}

// BnEdgeWitness returns the Lemma 4.7 witness: a d-dimensional sub-butterfly
// of Bn whose level 0 lies on level 0 of Bn — a component of Bn[0,d]. Only
// its outputs have outside edges, so the boundary is 2·2^d =
// (2+o(1))k/log k.
func BnEdgeWitness(b *topology.Butterfly, d int) []int {
	if b.Wraparound() {
		panic("expansion: BnEdgeWitness needs Bn")
	}
	if d < 1 || d >= b.Dim() {
		panic(fmt.Sprintf("expansion: witness dimension %d out of range for B%d", d, b.Inputs()))
	}
	return b.LevelRangeComponents(0, d)[0].Nodes()
}

// BnNodeWitness returns the Lemma 4.10 witness: the two d-dimensional
// sub-butterflies contained in a (d+1)-dimensional sub-butterfly whose
// outputs lie on level log n of Bn. The neighbor set is just the inputs of
// the enclosing sub-butterfly, 2^(d+1) = (1+o(1))k/log k nodes.
func BnNodeWitness(b *topology.Butterfly, d int) []int {
	if b.Wraparound() {
		panic("expansion: BnNodeWitness needs Bn")
	}
	if d < 1 || d+1 > b.Dim() {
		panic(fmt.Sprintf("expansion: witness dimension %d out of range for B%d", d, b.Inputs()))
	}
	big := b.LevelRangeComponents(b.Dim()-d-1, b.Dim())[0].Nodes()
	return big[1<<(d+1):]
}

// WitnessSize returns the node count k = 2^d·(d+1) of a d-dimensional
// sub-butterfly, the k at which the §4 witnesses are evaluated.
func WitnessSize(d int) int { return (d + 1) << d }
