package expansion

import (
	"math/rand"
	"testing"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/topology"
)

func TestWnEdgeWitnessBoundary(t *testing.T) {
	// Lemma 4.1: boundary of a d-dimensional sub-butterfly is exactly
	// 4·2^d = (4+o(1))k/log k.
	for _, tc := range []struct{ n, d int }{{16, 1}, {16, 2}, {64, 2}, {64, 3}, {64, 4}, {256, 4}} {
		w := topology.NewWrappedButterfly(tc.n)
		set := WnEdgeWitness(w, tc.d)
		if len(set) != WitnessSize(tc.d) {
			t.Fatalf("W%d d=%d: size %d, want %d", tc.n, tc.d, len(set), WitnessSize(tc.d))
		}
		if got, want := cut.EdgeBoundary(w.Graph, set), 4<<tc.d; got != want {
			t.Errorf("W%d d=%d: boundary %d, want %d", tc.n, tc.d, got, want)
		}
	}
}

func TestWnNodeWitnessBoundary(t *testing.T) {
	// Lemma 4.4: |N(A)| = 3·2^(d+1) = (3+o(1))k/log k.
	for _, tc := range []struct{ n, d int }{{16, 1}, {64, 2}, {64, 3}, {256, 4}} {
		w := topology.NewWrappedButterfly(tc.n)
		set := WnNodeWitness(w, tc.d)
		if len(set) != 2*WitnessSize(tc.d) {
			t.Fatalf("W%d d=%d: size %d, want %d", tc.n, tc.d, len(set), 2*WitnessSize(tc.d))
		}
		if got, want := len(cut.NodeBoundary(w.Graph, set)), 3<<(tc.d+1); got != want {
			t.Errorf("W%d d=%d: |N(A)| = %d, want %d", tc.n, tc.d, got, want)
		}
	}
}

func TestBnEdgeWitnessBoundary(t *testing.T) {
	// Lemma 4.7: boundary 2·2^d = (2+o(1))k/log k.
	for _, tc := range []struct{ n, d int }{{8, 1}, {8, 2}, {64, 3}, {256, 5}} {
		b := topology.NewButterfly(tc.n)
		set := BnEdgeWitness(b, tc.d)
		if len(set) != WitnessSize(tc.d) {
			t.Fatalf("B%d d=%d: size %d", tc.n, tc.d, len(set))
		}
		if got, want := cut.EdgeBoundary(b.Graph, set), 2<<tc.d; got != want {
			t.Errorf("B%d d=%d: boundary %d, want %d", tc.n, tc.d, got, want)
		}
	}
}

func TestBnNodeWitnessBoundary(t *testing.T) {
	// Lemma 4.10: |N(A)| = 2^(d+1) = (1+o(1))k/log k.
	for _, tc := range []struct{ n, d int }{{8, 1}, {64, 2}, {64, 4}, {256, 5}} {
		b := topology.NewButterfly(tc.n)
		set := BnNodeWitness(b, tc.d)
		if len(set) != 2*WitnessSize(tc.d) {
			t.Fatalf("B%d d=%d: size %d", tc.n, tc.d, len(set))
		}
		if got, want := len(cut.NodeBoundary(b.Graph, set)), 2<<tc.d; got != want {
			t.Errorf("B%d d=%d: |N(A)| = %d, want %d", tc.n, tc.d, got, want)
		}
	}
}

func TestWitnessValidation(t *testing.T) {
	w := topology.NewWrappedButterfly(16)
	b := topology.NewButterfly(16)
	for name, f := range map[string]func(){
		"WnEdge too big": func() { WnEdgeWitness(w, 3) },
		"WnEdge on Bn":   func() { WnEdgeWitness(b, 1) },
		"WnNode too big": func() { WnNodeWitness(w, 2) },
		"BnEdge on Wn":   func() { BnEdgeWitness(w, 1) },
		"BnEdge too big": func() { BnEdgeWitness(b, 4) },
		"BnNode too big": func() { BnNodeWitness(b, 4) },
	} {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWitnessesAreExactMinimizersOnSmallNetworks(t *testing.T) {
	// On W16 at k = WitnessSize(1) = 4, the exact minimum should not beat
	// the witness by more than the o(1) slack — in fact the witness pattern
	// (a sub-butterfly) is the exact minimizer shape the lemmas predict.
	w := topology.NewWrappedButterfly(16)
	k := WitnessSize(1)
	_, ee := exact.MinEdgeExpansion(w.Graph, k)
	witness := cut.EdgeBoundary(w.Graph, WnEdgeWitness(w, 1))
	if ee > witness {
		t.Errorf("exact EE %d exceeds witness %d", ee, witness)
	}
	if witness > 2*ee {
		t.Errorf("witness %d is more than twice the optimum %d", witness, ee)
	}
}

func TestCreditConservation(t *testing.T) {
	// Every source distributes exactly one unit: retained + leaked = k.
	w := topology.NewWrappedButterfly(32)
	b := topology.NewButterfly(32)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(20)
		aW := randomSet(w.N(), k, rng)
		aB := randomSet(b.N(), k, rng)
		for name, r := range map[string]CreditResult{
			"WnEdge": WnEdgeCreditBound(w, aW),
			"WnNode": WnNodeCreditBound(w, aW),
			"BnEdge": BnEdgeCreditBound(b, aB),
			"BnNode": BnNodeCreditBound(b, aB),
		} {
			if got := r.CutRetained + r.LeakedToLeaves; got != float64(k) {
				t.Errorf("%s: retained %g + leaked %g ≠ k = %d",
					name, r.CutRetained, r.LeakedToLeaves, k)
			}
		}
	}
}

func TestCreditPerItemCaps(t *testing.T) {
	// Lemmas 4.2/4.5/4.8/4.11: no cut edge (or N(A) node) retains more than
	// the analytical cap — verified on random and adversarially clustered
	// sets.
	w := topology.NewWrappedButterfly(64)
	b := topology.NewButterfly(64)
	rng := rand.New(rand.NewSource(11))
	sets := [][]int{
		randomSet(w.N(), 10, rng),
		randomSet(w.N(), 40, rng),
		WnEdgeWitness(w, 2), // clustered set
	}
	for _, a := range sets {
		for name, r := range map[string]CreditResult{
			"WnEdge": WnEdgeCreditBound(w, a),
			"WnNode": WnNodeCreditBound(w, a),
		} {
			if r.MaxPerItem > r.PerItemCap+1e-12 {
				t.Errorf("%s: per-item retention %g exceeds cap %g (k=%d)",
					name, r.MaxPerItem, r.PerItemCap, r.K)
			}
		}
	}
	setsB := [][]int{
		randomSet(b.N(), 10, rng),
		BnEdgeWitness(b, 2),
	}
	for _, a := range setsB {
		for name, r := range map[string]CreditResult{
			"BnEdge": BnEdgeCreditBound(b, a),
			"BnNode": BnNodeCreditBound(b, a),
		} {
			if r.MaxPerItem > r.PerItemCap+1e-12 {
				t.Errorf("%s: per-item retention %g exceeds cap %g (k=%d)",
					name, r.MaxPerItem, r.PerItemCap, r.K)
			}
		}
	}
}

func TestCreditBoundsAreSound(t *testing.T) {
	// The certified lower bound never exceeds the true boundary.
	w := topology.NewWrappedButterfly(32)
	b := topology.NewButterfly(32)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		k := 2 + rng.Intn(30)
		aW := randomSet(w.N(), k, rng)
		if r := WnEdgeCreditBound(w, aW); r.LowerBound > cut.EdgeBoundary(w.Graph, aW) {
			t.Errorf("WnEdge bound %d exceeds true boundary %d", r.LowerBound, cut.EdgeBoundary(w.Graph, aW))
		}
		if r := WnNodeCreditBound(w, aW); r.LowerBound > len(cut.NodeBoundary(w.Graph, aW)) {
			t.Errorf("WnNode bound %d exceeds |N(A)| %d", r.LowerBound, len(cut.NodeBoundary(w.Graph, aW)))
		}
		aB := randomSet(b.N(), k, rng)
		if r := BnEdgeCreditBound(b, aB); r.LowerBound > cut.EdgeBoundary(b.Graph, aB) {
			t.Errorf("BnEdge bound %d exceeds true boundary %d", r.LowerBound, cut.EdgeBoundary(b.Graph, aB))
		}
		if r := BnNodeCreditBound(b, aB); r.LowerBound > len(cut.NodeBoundary(b.Graph, aB)) {
			t.Errorf("BnNode bound %d exceeds |N(A)| %d", r.LowerBound, len(cut.NodeBoundary(b.Graph, aB)))
		}
	}
}

func TestCreditRetentionFloor(t *testing.T) {
	// Lemma 4.2's equation (1): retained credit ≥ k(1−k/n), for k = o(n).
	w := topology.NewWrappedButterfly(64)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(16)
		a := randomSet(w.N(), k, rng)
		r := WnEdgeCreditBound(w, a)
		floor := float64(k) * (1 - float64(k)/64)
		if r.CutRetained < floor-1e-9 {
			t.Errorf("retained %g below the lemma floor %g (k=%d)", r.CutRetained, floor, k)
		}
	}
}

func TestCreditBoundTightOnWitness(t *testing.T) {
	// On the Lemma 4.1 witness — the near-minimizer — the certified bound
	// should be within a factor ~2 of the true boundary, showing the
	// 4k/log k shape from both sides.
	w := topology.NewWrappedButterfly(256)
	set := WnEdgeWitness(w, 4) // k = 80
	r := WnEdgeCreditBound(w, set)
	actual := cut.EdgeBoundary(w.Graph, set)
	if r.LowerBound > actual {
		t.Fatalf("bound %d exceeds actual %d", r.LowerBound, actual)
	}
	if float64(r.LowerBound) < float64(actual)/2.5 {
		t.Errorf("bound %d too loose against actual %d", r.LowerBound, actual)
	}
}

func TestCreditBoundsAgainstExactOptimum(t *testing.T) {
	// Certified lower bound ≤ exact EE/NE at the same k (on W8, where the
	// exact solver is fast), for the witness-like minimizing sets.
	w := topology.NewWrappedButterfly(8)
	for k := 2; k <= 8; k++ {
		set, ee := exact.MinEdgeExpansion(w.Graph, k)
		r := WnEdgeCreditBound(w, set)
		if r.LowerBound > ee {
			t.Errorf("k=%d: certified %d exceeds exact EE %d", k, r.LowerBound, ee)
		}
		setN, ne := exact.MinNodeExpansion(w.Graph, k)
		rn := WnNodeCreditBound(w, setN)
		if rn.LowerBound > ne {
			t.Errorf("k=%d: certified %d exceeds exact NE %d", k, rn.LowerBound, ne)
		}
	}
}

func TestCreditValidation(t *testing.T) {
	w := topology.NewWrappedButterfly(16)
	b := topology.NewButterfly(16)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("WnEdge on Bn", func() { WnEdgeCreditBound(b, []int{0, 1}) })
	mustPanic("BnEdge on Wn", func() { BnEdgeCreditBound(w, []int{0, 1}) })
	mustPanic("WnNode k=1", func() { WnNodeCreditBound(w, []int{0}) })
	mustPanic("BnNode k=1", func() { BnNodeCreditBound(b, []int{0}) })
}

func randomSet(n, k int, rng *rand.Rand) []int {
	return rng.Perm(n)[:k]
}
