package expansion_test

import (
	"fmt"

	"repro/internal/cut"
	"repro/internal/expansion"
	"repro/internal/topology"
)

func ExampleWnEdgeCreditBound() {
	// Lemma 4.2's credit scheme certifies a lower bound on the boundary of
	// any concrete set; here the Lemma 4.1 witness sub-butterfly.
	w := topology.NewWrappedButterfly(64)
	set := expansion.WnEdgeWitness(w, 3) // k = 32
	r := expansion.WnEdgeCreditBound(w, set)
	fmt.Println("k:", r.K)
	fmt.Println("certified lower bound:", r.LowerBound)
	fmt.Println("actual boundary:", cut.EdgeBoundary(w.Graph, set))
	// Output:
	// k: 32
	// certified lower bound: 22
	// actual boundary: 32
}
