package expansion

import (
	"repro/internal/bitutil"
	"repro/internal/topology"
)

// CreditResult reports one run of a credit-distribution scheme on a set A.
// All credit amounts are exact dyadic rationals, held as integers scaled by
// 2^(log n + 2), so the conservation and cap checks are exact.
type CreditResult struct {
	K int // |A|
	// CutRetained is the total credit (in units) retained by cut edges
	// (edge schemes) or by nodes of N(A) (node schemes).
	CutRetained float64
	// LeakedToLeaves is the credit that reached leaf edges/nodes inside A
	// and was lost to the bound; the lemmas show it is at most k²/n-ish.
	LeakedToLeaves float64
	// MaxPerItem is the largest credit retained by a single cut edge or
	// N(A) node; the lemmas cap it by PerItemCap.
	MaxPerItem float64
	// PerItemCap is the analytical cap from the corresponding lemma.
	PerItemCap float64
	// LowerBound is the certified floor ⌈CutRetained / PerItemCap⌉ on
	// C(A,Ā) (edge schemes) or |N(A)| (node schemes).
	LowerBound int
	// Items is the number of distinct cut edges / N(A) nodes that retained
	// any credit (it can be below the true boundary size).
	Items int
}

// scaled credit arithmetic: one unit = 1 << shift.
type creditState struct {
	b     *topology.Butterfly
	inA   []bool
	shift uint
	// retained credit per item; edge schemes key by canonical edge pair,
	// node schemes by node id.
	retained map[[2]int32]int64
	leaked   int64
}

func newCreditState(b *topology.Butterfly, a []int) *creditState {
	inA := make([]bool, b.N())
	for _, v := range a {
		inA[v] = true
	}
	return &creditState{
		b:        b,
		inA:      inA,
		shift:    uint(b.Dim() + 2),
		retained: make(map[[2]int32]int64),
	}
}

func edgeKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

func nodeKey(v int) [2]int32 { return [2]int32{int32(v), -1} }

// flowEdges runs the edge-retention scheme from source u: credit halves at
// every tree level; a tree edge retains its credit when it crosses the cut
// or when it reaches depth (a leaf edge), and passes it on otherwise.
// dir > 0 uses down-trees, dir < 0 up-trees.
func (st *creditState) flowEdges(u int, amount int64, dir, depth int) {
	type entry struct {
		v int
		c int64
	}
	frontier := []entry{{u, amount}}
	for step := 1; step <= depth; step++ {
		next := frontier[:0:0]
		for _, e := range frontier {
			var s, c int
			var ok bool
			if dir > 0 {
				s, c, ok = st.b.DownChildren(e.v)
			} else {
				s, c, ok = st.b.UpChildren(e.v)
			}
			if !ok {
				panic("expansion: credit tree ran off the network")
			}
			half := e.c / 2
			for _, child := range []int{s, c} {
				switch {
				case st.inA[e.v] != st.inA[child]: // cut edge retains
					st.retained[edgeKey(e.v, child)] += half
				case step == depth: // leaf edge retains (inside A)
					st.leaked += half
				default:
					next = append(next, entry{child, half})
				}
			}
		}
		frontier = next
	}
}

// flowNodes runs the node-retention scheme from source u: a node retains the
// credit it receives when it lies in N(A) (equivalently, outside A — flow
// only ever leaves A into N(A)) or when it is a leaf.
func (st *creditState) flowNodes(u int, amount int64, dir, depth int) {
	type entry struct {
		v int
		c int64
	}
	frontier := []entry{{u, amount}}
	for step := 1; step <= depth; step++ {
		next := frontier[:0:0]
		for _, e := range frontier {
			var s, c int
			var ok bool
			if dir > 0 {
				s, c, ok = st.b.DownChildren(e.v)
			} else {
				s, c, ok = st.b.UpChildren(e.v)
			}
			if !ok {
				panic("expansion: credit tree ran off the network")
			}
			half := e.c / 2
			for _, child := range []int{s, c} {
				switch {
				case !st.inA[child]: // child ∈ N(A): node retains
					st.retained[nodeKey(child)] += half
				case step == depth: // leaf inside A
					st.leaked += half
				default:
					next = append(next, entry{child, half})
				}
			}
		}
		frontier = next
	}
}

func (st *creditState) result(k int, capNum, capDen int64) CreditResult {
	unit := float64(int64(1) << st.shift)
	var total, max int64
	for _, c := range st.retained {
		total += c
		if c > max {
			max = c
		}
	}
	// LowerBound = ceil(total / (capNum/capDen · unit)), all integral.
	var lb int64
	num := total * capDen
	den := capNum * (int64(1) << st.shift)
	if den > 0 {
		lb = (num + den - 1) / den
	}
	return CreditResult{
		K:              k,
		CutRetained:    float64(total) / unit,
		LeakedToLeaves: float64(st.leaked) / unit,
		MaxPerItem:     float64(max) / unit,
		PerItemCap:     float64(capNum) / float64(capDen),
		LowerBound:     int(lb),
		Items:          len(st.retained),
	}
}

// WnEdgeCreditBound runs the Lemma 4.2 scheme on Wn: every node of A sends
// half a unit down its down-tree and half up its up-tree; cut edges retain
// at most (⌊log k⌋+1)/4 units each, so C(A,Ā) ≥ CutRetained·4/(⌊log k⌋+1) —
// the certified (4−o(1))k/log k lower bound for k = o(n).
func WnEdgeCreditBound(w *topology.Butterfly, a []int) CreditResult {
	if !w.Wraparound() {
		panic("expansion: WnEdgeCreditBound needs Wn")
	}
	st := newCreditState(w, a)
	half := int64(1) << (st.shift - 1)
	for _, u := range a {
		st.flowEdges(u, half, +1, w.Dim())
		st.flowEdges(u, half, -1, w.Dim())
	}
	k := len(a)
	capNum := int64(bitutil.FloorLog2(maxInt(k, 1)) + 1)
	return st.result(k, capNum, 4)
}

// WnNodeCreditBound runs the Lemma 4.5 scheme on Wn: nodes of N(A) retain at
// most ⌊log k⌋ units each, certifying |N(A)| ≥ CutRetained/⌊log k⌋, the
// (1−o(1))k/log k bound. Requires k ≥ 2 (the cap degenerates at k = 1).
func WnNodeCreditBound(w *topology.Butterfly, a []int) CreditResult {
	if !w.Wraparound() {
		panic("expansion: WnNodeCreditBound needs Wn")
	}
	if len(a) < 2 {
		panic("expansion: node credit bound needs |A| ≥ 2")
	}
	st := newCreditState(w, a)
	half := int64(1) << (st.shift - 1)
	for _, u := range a {
		st.flowNodes(u, half, +1, w.Dim())
		st.flowNodes(u, half, -1, w.Dim())
	}
	k := len(a)
	capNum := int64(bitutil.FloorLog2(k))
	return st.result(k, capNum, 1)
}

// BnEdgeCreditBound runs the Lemma 4.8 scheme on Bn: a node of A on level
// i < ⌊(log n+1)/2⌋ sends one unit down its down-tree (to level log n);
// other nodes send one unit up (to level 0). Cut edges retain at most
// (⌊log k⌋+1)/2 units, certifying the (2−o(1))k/log k bound for k = o(√n).
func BnEdgeCreditBound(b *topology.Butterfly, a []int) CreditResult {
	if b.Wraparound() {
		panic("expansion: BnEdgeCreditBound needs Bn")
	}
	st := newCreditState(b, a)
	unit := int64(1) << st.shift
	mid := (b.Dim() + 1) / 2
	for _, u := range a {
		if lvl := b.Level(u); lvl < mid {
			st.flowEdges(u, unit, +1, b.Dim()-lvl)
		} else {
			st.flowEdges(u, unit, -1, lvl)
		}
	}
	k := len(a)
	capNum := int64(bitutil.FloorLog2(maxInt(k, 1)) + 1)
	return st.result(k, capNum, 2)
}

// BnNodeCreditBound runs the Lemma 4.11 scheme on Bn: nodes of N(A) retain
// at most 2⌊log k⌋ units, certifying the (1/2−o(1))k/log k bound for
// k = o(√n). Requires k ≥ 2.
func BnNodeCreditBound(b *topology.Butterfly, a []int) CreditResult {
	if b.Wraparound() {
		panic("expansion: BnNodeCreditBound needs Bn")
	}
	if len(a) < 2 {
		panic("expansion: node credit bound needs |A| ≥ 2")
	}
	st := newCreditState(b, a)
	unit := int64(1) << st.shift
	mid := (b.Dim() + 1) / 2
	for _, u := range a {
		if lvl := b.Level(u); lvl < mid {
			st.flowNodes(u, unit, +1, b.Dim()-lvl)
		} else {
			st.flowNodes(u, unit, -1, lvl)
		}
	}
	k := len(a)
	capNum := int64(2 * bitutil.FloorLog2(k))
	return st.result(k, capNum, 1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
