package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/obs"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, payload []byte) {
	t.Helper()
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func mustGet(t *testing.T, s *Store, key string) []byte {
	t.Helper()
	p, ok, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if !ok {
		t.Fatalf("Get(%q): missing", key)
	}
	return p
}

func TestPutGetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	body := []byte(`{"schema":"repro/run-manifest","version":1}`)
	mustPut(t, s, "bisection?network=bn&n=8", body)
	mustPut(t, s, "bisection?network=wn&n=8", []byte("second"))
	// Overwrite: the latest record wins.
	mustPut(t, s, "bisection?network=bn&n=8", body)
	if got := mustGet(t, s, "bisection?network=bn&n=8"); !bytes.Equal(got, body) {
		t.Fatalf("Get = %q", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The warm-start property: a fresh process (a fresh Open) sees the
	// same bytes.
	s2 := mustOpen(t, dir, Options{})
	if got := mustGet(t, s2, "bisection?network=bn&n=8"); !bytes.Equal(got, body) {
		t.Fatalf("after reopen: %q", got)
	}
	if s2.Len() != 2 {
		t.Fatalf("after reopen Len = %d", s2.Len())
	}
	if _, ok, err := s2.Get("never-stored"); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	s := mustOpen(t, dir, Options{SegmentBytes: 256})
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("key-%02d", i), payload)
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", ids)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{SegmentBytes: 256})
	if s2.Len() != 20 {
		t.Fatalf("reopened Len = %d, want 20", s2.Len())
	}
	for i := 0; i < 20; i++ {
		if got := mustGet(t, s2, fmt.Sprintf("key-%02d", i)); !bytes.Equal(got, payload) {
			t.Fatalf("key-%02d corrupted after rotation+reopen", i)
		}
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256})
	big := bytes.Repeat([]byte("y"), 120)
	// Many overwrites of few keys: most records are dead.
	for i := 0; i < 30; i++ {
		mustPut(t, s, fmt.Sprintf("key-%d", i%3), append(big, byte('0'+i%10)))
	}
	compactionsBefore := metricCompactions.Value()
	bytesBefore := s.bytes
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if metricCompactions.Value() != compactionsBefore+1 {
		t.Fatal("compaction counter did not advance")
	}
	if s.bytes >= bytesBefore {
		t.Fatalf("compaction did not shrink the store: %d -> %d", bytesBefore, s.bytes)
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("segments after compaction: %v, want exactly one", ids)
	}
	// Live values survive, and the store still accepts appends.
	for i := 27; i < 30; i++ {
		want := append(bytes.Repeat([]byte("y"), 120), byte('0'+i%10))
		if got := mustGet(t, s, fmt.Sprintf("key-%d", i%3)); !bytes.Equal(got, want) {
			t.Fatalf("key-%d after compaction = %q", i%3, got[len(got)-1:])
		}
	}
	mustPut(t, s, "post-compaction", []byte("still writable"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	if got := mustGet(t, s2, "post-compaction"); string(got) != "still writable" {
		t.Fatalf("post-compaction append lost: %q", got)
	}
	if s2.Len() != 4 {
		t.Fatalf("Len after compaction+reopen = %d, want 4", s2.Len())
	}
}

// TestTornTailRecovers simulates an append crash: the newest segment ends
// mid-record. Open truncates back to the last whole record, keeps every
// earlier key, and the store accepts fresh appends.
func TestTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, "intact-1", []byte("aaa"))
	mustPut(t, s, "intact-2", []byte("bbb"))
	mustPut(t, s, "torn", []byte("this record will be half-written"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, 1)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	tornBefore := metricTornTails.Value()
	s2 := mustOpen(t, dir, Options{})
	if metricTornTails.Value() != tornBefore+1 {
		t.Fatal("torn-tail counter did not advance")
	}
	if s2.Len() != 2 {
		t.Fatalf("Len after torn-tail recovery = %d, want 2", s2.Len())
	}
	if got := mustGet(t, s2, "intact-2"); string(got) != "bbb" {
		t.Fatalf("intact-2 = %q", got)
	}
	if _, ok, _ := s2.Get("torn"); ok {
		t.Fatal("half-written record resurrected")
	}
	mustPut(t, s2, "after-recovery", []byte("ccc"))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	if got := mustGet(t, s3, "after-recovery"); string(got) != "ccc" {
		t.Fatalf("append after recovery lost: %q", got)
	}
}

// TestMidFileCorruptionFails: a flipped byte in a non-final segment is
// real corruption, not a torn tail — Open must refuse, not quietly drop
// records.
func TestMidFileCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 10; i++ {
		mustPut(t, s, fmt.Sprintf("key-%d", i), bytes.Repeat([]byte("z"), 64))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the FIRST segment (several exist).
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[codec.HeaderSize+20] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupted non-final segment")
	}
}

// TestForeignFileFails: a stray file matching the segment name pattern
// but holding non-codec bytes must fail Open (never be truncated away).
func TestForeignFileFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.bfc"),
		[]byte("{\"this\": \"is json, not a codec stream\"}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a foreign file as a segment")
	}
	// And the file must still be there, untouched.
	data, err := os.ReadFile(filepath.Join(dir, "seg-000001.bfc"))
	if err != nil || len(data) == 0 {
		t.Fatalf("foreign file was modified: %v (%d bytes)", err, len(data))
	}
}

// TestMetricsAndLoadSpan: hits/misses/writes count, store.bytes tracks
// disk size, and Open emits a store.load span with the index stats.
func TestMetricsAndLoadSpan(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	hits, misses, writes := metricHits.Value(), metricMisses.Value(), metricWrites.Value()
	mustPut(t, s, "a", []byte("1"))
	mustPut(t, s, "b", []byte("2"))
	mustGet(t, s, "a")
	s.Get("absent")
	if got := metricWrites.Value() - writes; got != 2 {
		t.Fatalf("writes delta = %d", got)
	}
	if got := metricHits.Value() - hits; got != 1 {
		t.Fatalf("hits delta = %d", got)
	}
	if got := metricMisses.Value() - misses; got != 1 {
		t.Fatalf("misses delta = %d", got)
	}
	if metricBytes.Value() <= 0 || metricRecords.Value() < 2 {
		t.Fatalf("gauges: bytes=%d records=%d", metricBytes.Value(), metricRecords.Value())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	tr := obs.NewTracer(&trace)
	s2 := mustOpen(t, dir, Options{Trace: tr})
	_ = s2
	for _, want := range []string{`"span_start"`, `"store.load"`, `"span_end"`, `"records"`, `"segments"`} {
		if !bytes.Contains(trace.Bytes(), []byte(want)) {
			t.Errorf("store.load trace missing %s:\n%s", want, trace.String())
		}
	}
}

// TestConcurrentGetPut exercises the RWMutex paths under the race
// detector: concurrent readers against a writer that forces rotation.
func TestConcurrentGetPut(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 512})
	mustPut(t, s, "hot", []byte("hot-value"))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if err := s.Put(fmt.Sprintf("w-%d", i), bytes.Repeat([]byte("p"), 50)); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if got := mustGet(t, s, "hot"); string(got) != "hot-value" {
			t.Fatalf("hot = %q", got)
		}
	}
	<-done
}
