// Package store is the append-only on-disk result store under butterflyd:
// canonical request key → rendered response body, durable across process
// restarts. The serve layer's LRU spills evictions here and falls back
// here on miss, and `butterflyd -precompute` batch-fills it ahead of
// traffic — so a restarted daemon answers previously solved queries with
// one disk read (microseconds) instead of one solve (seconds).
//
// On disk a store is a directory of numbered segment files
// (seg-000001.bfc, ...), each an internal/codec stream of KindManifest
// records. Writes append whole frames to the highest-numbered (active)
// segment; an in-memory map from key to (segment, offset) — rebuilt by
// scanning the segments at Open — is the only index, so there is no
// separate index file to corrupt. Within and across segments, the latest
// record for a key wins, which makes overwrites plain appends and lets
// compaction rewrite the live set into a fresh segment and drop the rest.
//
// Recovery policy: a decode error at the tail of the *newest* segment is
// a torn final append (the crash window of an append-only file) and is
// repaired by truncating to the last whole record; a decode error
// anywhere else is real corruption and fails Open with the codec error.
// Every read re-verifies its record's CRC, so bit rot surfaces as an
// error, never as a silently wrong response body.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/codec"
	"repro/internal/obs"
)

// Registry metrics of the store. The CI warm-start smoke asserts
// store.hits advances (and serve.solves does not) when a restarted daemon
// answers from disk.
var (
	metricHits        = obs.NewCounter("store.hits")
	metricMisses      = obs.NewCounter("store.misses")
	metricWrites      = obs.NewCounter("store.writes")
	metricCompactions = obs.NewCounter("store.compactions")
	metricReadErrors  = obs.NewCounter("store.read_errors")
	metricTornTails   = obs.NewCounter("store.torn_tails")
	metricBytes       = obs.NewGauge("store.bytes")
	metricRecords     = obs.NewGauge("store.records")
)

// Options tunes a Store.
type Options struct {
	// SegmentBytes rotates the active segment once its size exceeds this
	// (≤0: 64 MiB). Rotation bounds the rewrite unit of compaction and the
	// blast radius of a torn tail.
	SegmentBytes int64
	// Trace, when non-nil, receives a store.load span covering the startup
	// segment scan and index build — the warm-start cost, measured.
	Trace *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// ref locates one live record: which segment and at which byte offset
// its frame starts.
type ref struct {
	seg int
	off int64
}

// segment is one on-disk file: a read handle (ReadAt, shared by
// concurrent Gets) plus its id and size.
type segment struct {
	id   int
	r    *os.File
	size int64
}

// Store is the persistent result store. All methods are safe for
// concurrent use: reads share an RLock (os.File.ReadAt is itself
// concurrency-safe), writes and compaction take the write lock.
type Store struct {
	mu   sync.RWMutex
	dir  string
	opts Options

	segs   []*segment // ascending id order; last is the active segment
	active *os.File   // append handle of segs[len(segs)-1]
	w      *codec.Writer
	index  map[string]ref
	bytes  int64 // total segment bytes on disk
	closed bool
}

func segPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%06d.bfc", id))
}

// Open opens (creating if needed) the store rooted at dir, scanning every
// segment to rebuild the key index. A torn tail on the newest segment is
// truncated away; any other decode failure aborts with the codec error.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	span := opts.Trace.StartSpan("store.load", obs.Attrs{"dir": dir})
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, index: make(map[string]ref)}
	if len(ids) == 0 {
		if err := s.startSegment(1); err != nil {
			return nil, err
		}
	} else {
		for i, id := range ids {
			if err := s.loadSegment(id, i == len(ids)-1); err != nil {
				s.closeAll()
				return nil, err
			}
		}
		// A torn-whole-file recovery already started a fresh active
		// segment; otherwise reopen the newest one for appending.
		if s.active == nil {
			last := s.segs[len(s.segs)-1]
			active, err := os.OpenFile(segPath(dir, last.id), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				s.closeAll()
				return nil, fmt.Errorf("store: reopening active segment: %w", err)
			}
			s.active = active
			s.w = codec.Resume(active)
		}
	}
	s.publishGauges()
	span.End(obs.Attrs{
		"segments": len(s.segs),
		"records":  len(s.index),
		"bytes":    s.bytes,
	})
	return s, nil
}

// segmentIDs lists the segment numbers present in dir, ascending.
func segmentIDs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []int
	for _, e := range entries {
		var id int
		if _, err := fmt.Sscanf(e.Name(), "seg-%d.bfc", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// startSegment creates a fresh empty segment with the given id and makes
// it active.
func (s *Store) startSegment(id int) error {
	path := segPath(s.dir, id)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment: %w", err)
	}
	w, err := codec.NewWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	r, err := os.Open(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, &segment{id: id, r: r, size: codec.HeaderSize})
	s.active = f
	s.w = w
	s.bytes += codec.HeaderSize
	return nil
}

// loadSegment opens segment id read-only and indexes its records. For the
// newest segment (tail=true) a trailing decode error truncates the file
// back to the last whole record; elsewhere it is fatal.
func (s *Store) loadSegment(id int, tail bool) error {
	path := segPath(s.dir, id)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size, err := indexSegment(f, id, s.index)
	if err != nil {
		// Only a short or checksum-failed frame at the end of the NEWEST
		// segment is the append-crash window; anything else — including a
		// foreign or version-skewed file — is corruption and fails Open.
		if !tail || !(errors.Is(err, codec.ErrTruncated) || errors.Is(err, codec.ErrChecksum)) {
			f.Close()
			return fmt.Errorf("store: segment %s: %w", path, err)
		}
		// Torn tail: truncate to the last intact record (or restart the
		// file wholesale when even the header is short) and carry on.
		metricTornTails.Inc()
		if size < codec.HeaderSize {
			f.Close()
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("store: removing torn segment: %w", err)
			}
			return s.startSegment(id)
		}
		if err := os.Truncate(path, size); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	s.segs = append(s.segs, &segment{id: id, r: f, size: size})
	s.bytes += size
	return nil
}

// indexSegment scans one segment, recording each record's start offset
// into index (later records overwrite earlier ones). It returns the
// offset of the first undecodable byte — the segment's valid size — and
// the decode error, if any (io.EOF is a clean end, reported as nil).
func indexSegment(f *os.File, id int, index map[string]ref) (int64, error) {
	d, err := codec.NewReader(f)
	if err != nil {
		return 0, err
	}
	for {
		off := d.Offset()
		rec, err := d.Next()
		if err == io.EOF {
			return off, nil
		}
		if err != nil {
			return off, err
		}
		index[rec.Key] = ref{seg: id, off: off}
	}
}

// publishGauges refreshes the size gauges (caller holds the lock).
func (s *Store) publishGauges() {
	metricBytes.Set(s.bytes)
	metricRecords.Set(int64(len(s.index)))
}

// findSeg returns the open segment with the given id.
func (s *Store) findSeg(id int) *segment {
	for _, seg := range s.segs {
		if seg.id == id {
			return seg
		}
	}
	return nil
}

// Get returns the stored payload for key. The record's CRC is verified
// on every read; a failed read (bit rot, torn compaction) counts in
// store.read_errors and returns the error rather than a wrong body.
func (s *Store) Get(key string) ([]byte, bool, error) {
	// The read happens under the RLock: os.File.ReadAt is safe for
	// concurrent use, and holding the lock keeps Compact from closing the
	// segment handle mid-read.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, fmt.Errorf("store: closed")
	}
	r, ok := s.index[key]
	var seg *segment
	if ok {
		seg = s.findSeg(r.seg)
	}
	if !ok || seg == nil {
		metricMisses.Inc()
		return nil, false, nil
	}
	rec, err := codec.ReadRecordAt(seg.r, r.off)
	if err != nil {
		metricReadErrors.Inc()
		return nil, false, fmt.Errorf("store: reading %q: %w", key, err)
	}
	if rec.Key != key {
		metricReadErrors.Inc()
		return nil, false, fmt.Errorf("store: index points %q at a record keyed %q", key, rec.Key)
	}
	metricHits.Inc()
	return rec.Payload, true, nil
}

// Has reports whether key is present without touching the disk or the
// hit/miss counters (the precompute skip check).
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Put appends one record for key, superseding any previous one, and
// rotates the active segment past the size limit. Appends are buffered
// by the OS only — call Sync for durability points (drain, end of a
// precompute batch).
func (s *Store) Put(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	active := s.segs[len(s.segs)-1]
	off := active.size
	n, err := s.w.Write(codec.Record{Kind: codec.KindManifest, Key: key, Payload: payload})
	if err != nil {
		return fmt.Errorf("store: appending %q: %w", key, err)
	}
	active.size += n
	s.bytes += n
	s.index[key] = ref{seg: active.id, off: off}
	metricWrites.Inc()
	s.publishGauges()
	if active.size > s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (s *Store) rotateLocked() error {
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("store: sealing segment: %w", err)
	}
	return s.startSegment(s.segs[len(s.segs)-1].id + 1)
}

// Compact rewrites the live records (sorted by key, so a compacted store
// is byte-deterministic for a given content) into one fresh segment and
// deletes every older one. The new segment is built as a temp file,
// synced, then renamed into place before the old segments go — a crash
// at any point leaves either the old set or the complete new one.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	newID := s.segs[len(s.segs)-1].id + 1
	tmpPath := filepath.Join(s.dir, "compact.tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compaction temp: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds
	w, err := codec.NewWriter(tmp)
	if err != nil {
		tmp.Close()
		return err
	}
	newIndex := make(map[string]ref, len(keys))
	off := int64(codec.HeaderSize)
	for _, key := range keys {
		r := s.index[key]
		seg := s.findSeg(r.seg)
		rec, err := codec.ReadRecordAt(seg.r, r.off)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compacting %q: %w", key, err)
		}
		n, err := w.Write(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		newIndex[key] = ref{seg: newID, off: off}
		off += n
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing compaction: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	newPath := segPath(s.dir, newID)
	if err := os.Rename(tmpPath, newPath); err != nil {
		return fmt.Errorf("store: installing compacted segment: %w", err)
	}

	// The compacted segment is durable under its final name: retire the
	// old world. A failure from here on leaves handles in an undefined
	// mix of old and new, so it closes the store rather than limping.
	old := s.segs
	fail := func(err error) error {
		s.closeAll()
		s.closed = true
		return fmt.Errorf("store: after compaction rename: %w", err)
	}
	r, err := os.Open(newPath)
	if err != nil {
		return fail(err)
	}
	active, err := os.OpenFile(newPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		r.Close()
		return fail(err)
	}
	if err := s.active.Close(); err != nil {
		r.Close()
		active.Close()
		return fail(err)
	}
	s.segs = []*segment{{id: newID, r: r, size: off}}
	s.active = active
	s.w = codec.Resume(active)
	s.index = newIndex
	s.bytes = off
	for _, seg := range old {
		seg.r.Close()
		os.Remove(segPath(s.dir, seg.id))
	}
	metricCompactions.Inc()
	s.publishGauges()
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return nil
}

// Close syncs and closes every handle. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.active.Sync()
	s.closeAll()
	s.closed = true
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

// closeAll closes every open handle (caller holds the lock).
func (s *Store) closeAll() {
	if s.active != nil {
		s.active.Close()
	}
	for _, seg := range s.segs {
		seg.r.Close()
	}
}
