// Package graph provides the undirected-graph substrate used by every other
// package in this repository: a compact CSR (compressed sparse row)
// representation with a mutable builder, plus traversal, component,
// distance, and subgraph utilities.
//
// Graphs here are undirected and may contain parallel edges (the paper's
// lower-bound argument for BW(Bn) embeds the doubled complete graph 2K_N,
// and cut capacities count parallel edges separately). Self-loops are
// rejected: no network in the paper has them and allowing them would
// complicate cut accounting for no benefit.
package graph

import "fmt"

// Edge is an undirected edge between nodes U and V, stored with U ≤ V.
type Edge struct {
	U, V int32
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph on n nodes, numbered 0..n−1.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// AddEdge records an undirected edge {u,v}. Parallel edges are kept.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge endpoint out of range: {%d,%d} with n=%d", u, v, b.n))
	}
	if u == v {
		panic("graph: self-loops are not supported")
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{int32(u), int32(v)})
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the builder into an immutable Graph. The builder may be
// reused afterwards; further AddEdge calls do not affect the built graph.
func (b *Builder) Build() *Graph {
	g := &Graph{
		n:     b.n,
		edges: make([]Edge, len(b.edges)),
	}
	copy(g.edges, b.edges)

	deg := make([]int32, b.n+1)
	for _, e := range g.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < b.n; i++ {
		deg[i+1] += deg[i]
	}
	g.adjStart = deg
	g.adjNode = make([]int32, 2*len(g.edges))
	g.adjEdge = make([]int32, 2*len(g.edges))
	fill := make([]int32, b.n)
	for ei, e := range g.edges {
		pu := g.adjStart[e.U] + fill[e.U]
		g.adjNode[pu], g.adjEdge[pu] = e.V, int32(ei)
		fill[e.U]++
		pv := g.adjStart[e.V] + fill[e.V]
		g.adjNode[pv], g.adjEdge[pv] = e.U, int32(ei)
		fill[e.V]++
	}
	return g
}

// Graph is an immutable undirected multigraph in CSR form.
type Graph struct {
	n        int
	edges    []Edge
	adjStart []int32 // length n+1; adjacency of node v is indices adjStart[v]..adjStart[v+1]
	adjNode  []int32 // neighbor endpoint per adjacency slot
	adjEdge  []int32 // edge index per adjacency slot
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges (parallel edges counted separately).
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the endpoints of edge index ei.
func (g *Graph) Edge(ei int) Edge { return g.edges[ei] }

// Degree returns the degree of node v (parallel edges counted separately).
func (g *Graph) Degree(v int) int {
	return int(g.adjStart[v+1] - g.adjStart[v])
}

// Neighbors returns the neighbor endpoints of v (with multiplicity). The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adjNode[g.adjStart[v]:g.adjStart[v+1]]
}

// IncidentEdges returns the edge indices incident to v (with multiplicity).
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) IncidentEdges(v int) []int32 {
	return g.adjEdge[g.adjStart[v]:g.adjStart[v+1]]
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool {
	// Scan the smaller adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, w := range g.Neighbors(u) {
		if int(w) == v {
			return true
		}
	}
	return false
}

// EdgeMultiplicity returns the number of parallel edges joining u and v.
func (g *Graph) EdgeMultiplicity(u, v int) int {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	count := 0
	for _, w := range g.Neighbors(u) {
		if int(w) == v {
			count++
		}
	}
	return count
}

// MinDegree and MaxDegree return the extreme degrees, or 0 for empty graphs.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// BFS computes single-source shortest-path distances (in edges) from src.
// Unreachable nodes get distance −1.
func (g *Graph) BFS(src int) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, g.n)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum BFS distance from v to any node, or −1 if
// some node is unreachable from v.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter returns the maximum distance between any pair of nodes, or −1 if
// the graph is disconnected. It runs one BFS per node, which is adequate for
// the experiment sizes that need it.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return 0
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		ecc := g.Eccentricity(v)
		if ecc < 0 {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// Components returns a component id per node (ids are 0-based and dense) and
// the number of components.
func (g *Graph) Components() (comp []int32, count int) {
	comp = make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, g.n)
	for v := 0; v < g.n; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[v] = id
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, w := range g.Neighbors(int(x)) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return comp, count
}

// IsConnected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	_, count := g.Components()
	return count == 1
}

// Subgraph is an induced subgraph together with the mapping back to the
// parent graph.
type Subgraph struct {
	*Graph
	// ToParent[i] is the parent-graph node represented by subgraph node i.
	ToParent []int32
	// FromParent maps parent nodes to subgraph nodes, or −1 for nodes
	// outside the subgraph.
	FromParent []int32
}

// InducedSubgraph returns the subgraph induced by the given parent nodes.
// Duplicate node entries panic: they indicate a caller bug that would
// silently distort cut capacities.
func (g *Graph) InducedSubgraph(nodes []int) *Subgraph {
	fromParent := make([]int32, g.n)
	for i := range fromParent {
		fromParent[i] = -1
	}
	toParent := make([]int32, len(nodes))
	for i, v := range nodes {
		if fromParent[v] >= 0 {
			panic(fmt.Sprintf("graph: duplicate node %d in InducedSubgraph", v))
		}
		fromParent[v] = int32(i)
		toParent[i] = int32(v)
	}
	b := NewBuilder(len(nodes))
	for _, e := range g.edges {
		u, v := fromParent[e.U], fromParent[e.V]
		if u >= 0 && v >= 0 {
			b.AddEdge(int(u), int(v))
		}
	}
	sg := b.Build()
	return &Subgraph{Graph: sg, ToParent: toParent, FromParent: fromParent}
}

// DegreeHistogram returns a map from degree to the number of nodes with that
// degree.
func (g *Graph) DegreeHistogram() map[int]int {
	hist := make(map[int]int)
	for v := 0; v < g.n; v++ {
		hist[g.Degree(v)]++
	}
	return hist
}
