package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// path returns the path graph on n nodes.
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// cycle returns the cycle graph on n nodes (n ≥ 3).
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if g.Diameter() != 0 {
		t.Errorf("empty diameter = %d", g.Diameter())
	}
	if !g.IsConnected() {
		t.Errorf("empty graph should count as connected")
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	for _, e := range [][2]int{{-1, 0}, {0, 3}, {1, 1}} {
		e := e
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d) did not panic", e[0], e[1])
				}
			}()
			b.AddEdge(e[0], e[1])
		}()
	}
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := path(5)
	wantDeg := []int{1, 2, 2, 2, 1}
	for v, want := range wantDeg {
		if got := g.Degree(v); got != want {
			t.Errorf("deg(%d) = %d, want %d", v, got, want)
		}
	}
	if !g.HasEdge(2, 3) || g.HasEdge(0, 4) {
		t.Errorf("HasEdge wrong")
	}
	if g.MinDegree() != 1 || g.MaxDegree() != 2 {
		t.Errorf("min/max degree = %d/%d", g.MinDegree(), g.MaxDegree())
	}
}

func TestParallelEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if g.Degree(0) != 3 || g.Degree(1) != 3 {
		t.Errorf("degrees = %d,%d", g.Degree(0), g.Degree(1))
	}
	if got := g.EdgeMultiplicity(0, 1); got != 3 {
		t.Errorf("multiplicity = %d", got)
	}
}

func TestEdgesNormalized(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(3, 1)
	g := b.Build()
	e := g.Edge(0)
	if e.U != 1 || e.V != 3 {
		t.Errorf("edge stored as {%d,%d}, want {1,3}", e.U, e.V)
	}
}

func TestBuilderReuseDoesNotMutateBuilt(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g1 := b.Build()
	b.AddEdge(1, 2)
	g2 := b.Build()
	if g1.M() != 1 || g2.M() != 2 {
		t.Errorf("M: g1=%d g2=%d", g1.M(), g2.M())
	}
}

func TestBFSOnPath(t *testing.T) {
	g := path(6)
	dist := g.BFS(0)
	for v := 0; v < 6; v++ {
		if int(dist[v]) != v {
			t.Errorf("dist[%d] = %d", v, dist[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable distances = %d,%d, want -1", dist[2], dist[3])
	}
	if g.Eccentricity(0) != -1 {
		t.Errorf("eccentricity of disconnected = %d, want -1", g.Eccentricity(0))
	}
	if g.Diameter() != -1 {
		t.Errorf("diameter of disconnected = %d, want -1", g.Diameter())
	}
}

func TestDiameterKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path6", path(6), 5},
		{"cycle6", cycle(6), 3},
		{"cycle7", cycle(7), 3},
		{"K5", complete(5), 1},
		{"singleton", NewBuilder(1).Build(), 0},
	}
	for _, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Errorf("%s diameter = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, count := g.Components()
	if count != 4 {
		t.Fatalf("count = %d, want 4 (two nontrivial + two isolated)", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Errorf("3,4 should share a component")
	}
	if comp[5] == comp[6] || comp[5] == comp[0] {
		t.Errorf("isolated nodes must be their own components")
	}
	if g.IsConnected() {
		t.Errorf("graph should be disconnected")
	}
	if !cycle(5).IsConnected() {
		t.Errorf("cycle should be connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycle(6)
	sg := g.InducedSubgraph([]int{0, 1, 2, 4})
	// Edges within {0,1,2,4}: {0,1},{1,2}. Node 4 is isolated in the subgraph.
	if sg.N() != 4 || sg.M() != 2 {
		t.Fatalf("subgraph N=%d M=%d, want 4,2", sg.N(), sg.M())
	}
	if sg.FromParent[3] != -1 || sg.FromParent[5] != -1 {
		t.Errorf("FromParent should be -1 for excluded nodes")
	}
	if int(sg.ToParent[sg.FromParent[4]]) != 4 {
		t.Errorf("round-trip mapping broken")
	}
	if sg.Degree(int(sg.FromParent[4])) != 0 {
		t.Errorf("node 4 should be isolated in subgraph")
	}
}

func TestInducedSubgraphRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate nodes did not panic")
		}
	}()
	cycle(4).InducedSubgraph([]int{0, 1, 1})
}

func TestDegreeHistogram(t *testing.T) {
	g := path(5)
	hist := g.DegreeHistogram()
	if hist[1] != 2 || hist[2] != 3 {
		t.Errorf("hist = %v", hist)
	}
}

func TestHandshakeProperty(t *testing.T) {
	// Sum of degrees is twice the edge count, on random multigraphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := NewBuilder(n)
		m := rng.Intn(60)
		for i := 0; i < m; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				v = (v + 1) % n
			}
			b.AddEdge(u, v)
		}
		g := b.Build()
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighborsMatchEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 15
	b := NewBuilder(n)
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
	}
	g := b.Build()
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		ie := g.IncidentEdges(v)
		if len(nb) != len(ie) {
			t.Fatalf("adjacency slot mismatch at %d", v)
		}
		for i, w := range nb {
			e := g.Edge(int(ie[i]))
			if !(int(e.U) == v && e.V == w) && !(int(e.V) == v && e.U == w) {
				t.Fatalf("edge %v does not join %d and %d", e, v, w)
			}
		}
	}
}
