package graph

import (
	"math/rand"
	"testing"
)

// relabel returns g with nodes permuted by a random permutation.
func relabel(g *Graph, rng *rand.Rand) *Graph {
	n := g.N()
	perm := rng.Perm(n)
	b := NewBuilder(n)
	for _, e := range g.Edges() {
		b.AddEdge(perm[e.U], perm[e.V])
	}
	return b.Build()
}

func TestIsomorphicTrivial(t *testing.T) {
	if !Isomorphic(NewBuilder(0).Build(), NewBuilder(0).Build()) {
		t.Errorf("empty graphs should be isomorphic")
	}
	if !Isomorphic(NewBuilder(3).Build(), NewBuilder(3).Build()) {
		t.Errorf("edgeless graphs should be isomorphic")
	}
	if Isomorphic(NewBuilder(2).Build(), NewBuilder(3).Build()) {
		t.Errorf("different orders should not be isomorphic")
	}
}

func TestIsomorphicRelabel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, g := range []*Graph{path(7), cycle(8), complete(5)} {
		for trial := 0; trial < 5; trial++ {
			h := relabel(g, rng)
			if !Isomorphic(g, h) {
				t.Errorf("graph should be isomorphic to its relabeling")
			}
		}
	}
}

func TestIsomorphicNegative(t *testing.T) {
	if Isomorphic(path(6), cycle(6)) {
		t.Errorf("P6 vs C6")
	}
	// Same degree sequence, non-isomorphic: C6 vs two triangles.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	twoTriangles := b.Build()
	if Isomorphic(cycle(6), twoTriangles) {
		t.Errorf("C6 vs 2×C3 should not be isomorphic")
	}
}

func TestIsomorphicMultigraph(t *testing.T) {
	// Double edge {0,1} plus single {1,2} vs single {0,1} plus double {1,2}
	// are isomorphic (swap 0 and 2); vs all-single path with an extra
	// parallel on a different pair is not.
	b1 := NewBuilder(3)
	b1.AddEdge(0, 1)
	b1.AddEdge(0, 1)
	b1.AddEdge(1, 2)
	g1 := b1.Build()

	b2 := NewBuilder(3)
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 2)
	b2.AddEdge(1, 2)
	g2 := b2.Build()

	if !Isomorphic(g1, g2) {
		t.Errorf("mirror multigraphs should be isomorphic")
	}

	// Triangle vs double-edge+single-edge: same n and m, different structure.
	b3 := NewBuilder(3)
	b3.AddEdge(0, 1)
	b3.AddEdge(1, 2)
	b3.AddEdge(2, 0)
	g3 := b3.Build()
	if Isomorphic(g1, g3) {
		t.Errorf("multigraph vs triangle should not be isomorphic")
	}
}

func TestIsomorphicRandomRegularish(t *testing.T) {
	// Random graphs relabeled must stay isomorphic; adding one edge must
	// break it (edge counts differ).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(6)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		if !Isomorphic(g, relabel(g, rng)) {
			t.Fatalf("trial %d: relabeled graph not detected isomorphic", trial)
		}
	}
}

func TestIsomorphicDisconnected(t *testing.T) {
	// P3 + P1 vs P2 + P2: same node and edge counts, not isomorphic.
	b1 := NewBuilder(4)
	b1.AddEdge(0, 1)
	b1.AddEdge(1, 2)
	g1 := b1.Build()
	b2 := NewBuilder(4)
	b2.AddEdge(0, 1)
	b2.AddEdge(2, 3)
	g2 := b2.Build()
	if Isomorphic(g1, g2) {
		t.Errorf("P3+P1 vs P2+P2 should not be isomorphic")
	}
}
