// Arena-backed CSR construction: when a graph's edge count is known
// analytically (a butterfly has exactly 2n·log n edges), the whole
// representation — edge list, adjacency starts, neighbor and edge-index
// slots — can be carved out of two exactly-sized allocations and filled in
// two streaming passes, with no intermediate edge lists, no append growth,
// and no per-node fill array.
package graph

import (
	"fmt"

	"repro/internal/obs"
)

// metricArenaBytes accumulates the bytes handed out by arena CSR builds,
// keeping the million-node construct path observable.
var metricArenaBytes = obs.NewCounter("graph.arena_bytes")

// BuildStream constructs a Graph on n nodes and exactly m edges by running
// gen, which must call emit(u, v) once per edge. Edges keep their emission
// order (edge index = emission rank) and are normalized to U ≤ V like
// Builder.AddEdge. Endpoint validation matches Builder: out-of-range
// endpoints and self-loops panic, as does a generator that emits a number
// of edges different from m — the counts are analytic, so a mismatch is a
// construction bug, not an input error.
//
// The memory layout is two allocations regardless of size: the m-entry
// edge list and one int32 arena holding adjStart (n+1) followed by adjNode
// and adjEdge (2m each).
func BuildStream(n, m int, gen func(emit func(u, v int))) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	if m < 0 {
		panic("graph: negative edge count")
	}
	g := &Graph{n: n, edges: make([]Edge, m)}
	arena := make([]int32, (n+1)+4*m)
	g.adjStart = arena[: n+1 : n+1]
	g.adjNode = arena[n+1 : n+1+2*m : n+1+2*m]
	g.adjEdge = arena[n+1+2*m:]
	metricArenaBytes.Add(int64(len(arena))*4 + int64(m)*8)

	// Pass 1: stream the edges into place and count degrees into
	// adjStart[v+1], so the prefix sum below turns it into CSR offsets.
	count := 0
	gen(func(u, v int) {
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("graph: edge endpoint out of range: {%d,%d} with n=%d", u, v, n))
		}
		if u == v {
			panic("graph: self-loops are not supported")
		}
		if u > v {
			u, v = v, u
		}
		if count >= m {
			count++
			return // counted and reported below; don't write out of bounds
		}
		g.edges[count] = Edge{int32(u), int32(v)}
		count++
		g.adjStart[u+1]++
		g.adjStart[v+1]++
	})
	if count != m {
		panic(fmt.Sprintf("graph: BuildStream generator emitted %d edges, want %d", count, m))
	}
	for i := 0; i < n; i++ {
		g.adjStart[i+1] += g.adjStart[i]
	}

	// Pass 2: place adjacency slots using adjStart itself as the write
	// cursor — after the pass adjStart[v] holds the END of v's slots (the
	// value adjStart[v+1] should hold), so one overlapping copy un-shifts
	// it. No per-node fill array.
	for ei := range g.edges {
		e := g.edges[ei]
		pu := g.adjStart[e.U]
		g.adjNode[pu], g.adjEdge[pu] = e.V, int32(ei)
		g.adjStart[e.U]++
		pv := g.adjStart[e.V]
		g.adjNode[pv], g.adjEdge[pv] = e.U, int32(ei)
		g.adjStart[e.V]++
	}
	copy(g.adjStart[1:], g.adjStart[:n])
	g.adjStart[0] = 0
	return g
}
