package graph

import "sort"

// Isomorphic reports whether g and h are isomorphic as undirected
// multigraphs. It is a backtracking search with iterated degree-signature
// pruning, intended for the small graphs used in structural tests (a few
// dozen nodes, e.g. verifying that the components of Bn[i,j] are copies of
// B_{2^(j−i)} as Lemma 2.4 claims). It is exponential in the worst case and
// should not be fed large graphs.
func Isomorphic(g, h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	n := g.N()
	if n == 0 {
		return true
	}

	// Canonical iterated-degree colors: isomorphic graphs always produce
	// identical color multisets, so a mismatch rejects immediately and
	// equal colors gate the candidate pairs during backtracking. (A hash
	// collision can only merge color classes, which costs search time but
	// never wrongly rejects.)
	gc := refineColors(g)
	hc := refineColors(h)
	if !sameMultiset(gc, hc) {
		return false
	}

	// Order g's nodes so that each node (after the first of its component)
	// is adjacent to an earlier node; this makes the consistency check
	// prune early.
	order := searchOrder(g)

	hUsed := make([]bool, n)
	mapping := make([]int32, n) // g node -> h node
	for i := range mapping {
		mapping[i] = -1
	}

	var try func(idx int) bool
	try = func(idx int) bool {
		if idx == n {
			return true
		}
		v := order[idx]
		for u := 0; u < n; u++ {
			if hUsed[u] || gc[v] != hc[u] {
				continue
			}
			if !consistent(g, h, mapping, int(v), u) {
				continue
			}
			mapping[v] = int32(u)
			hUsed[u] = true
			if try(idx + 1) {
				return true
			}
			mapping[v] = -1
			hUsed[u] = false
		}
		return false
	}
	return try(0)
}

// consistent checks that mapping g-node v to h-node u preserves edge
// multiplicities to all previously mapped neighbors, in both directions.
func consistent(g, h *Graph, mapping []int32, v, u int) bool {
	for _, w := range g.Neighbors(v) {
		if mu := mapping[w]; mu >= 0 {
			if g.EdgeMultiplicity(v, int(w)) != h.EdgeMultiplicity(u, int(mu)) {
				return false
			}
		}
	}
	// Symmetric count: u must have exactly as many edges into the image of
	// the mapped set as v has into the mapped set, so u cannot hide extra
	// adjacencies to already-mapped nodes.
	gCount, hCount := 0, 0
	for _, w := range g.Neighbors(v) {
		if mapping[w] >= 0 {
			gCount++
		}
	}
	mappedH := make(map[int32]bool, len(mapping))
	for _, mu := range mapping {
		if mu >= 0 {
			mappedH[mu] = true
		}
	}
	for _, w := range h.Neighbors(u) {
		if mappedH[w] {
			hCount++
		}
	}
	return gCount == hCount
}

// refineColors computes a canonical iterated-degree coloring: node colors are
// FNV-style hashes of (own color, sorted neighbor colors), iterated to a
// fixed depth. Because the computation depends only on the isomorphism type
// of the node's neighborhood, corresponding nodes of isomorphic graphs get
// equal colors.
func refineColors(g *Graph) []int64 {
	n := g.N()
	colors := make([]int64, n)
	for v := 0; v < n; v++ {
		colors[v] = int64(g.Degree(v))
	}
	next := make([]int64, n)
	// n rounds always suffice for the refinement to stabilize; cap the
	// depth to keep the filter cheap on the larger test graphs.
	rounds := n
	if rounds > 32 {
		rounds = 32
	}
	buf := make([]int64, 0, g.MaxDegree())
	for round := 0; round < rounds; round++ {
		for v := 0; v < n; v++ {
			nb := g.Neighbors(v)
			buf = buf[:0]
			for _, w := range nb {
				buf = append(buf, colors[w])
			}
			sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
			h := int64(1469598103934665603) ^ colors[v]
			h *= 1099511628211
			for _, c := range buf {
				h = (h ^ c) * 1099511628211
			}
			next[v] = h
		}
		colors, next = next, colors
	}
	return colors
}

func sameMultiset(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[int64]int, len(a))
	for _, c := range a {
		counts[c]++
	}
	for _, c := range b {
		counts[c]--
		if counts[c] < 0 {
			return false
		}
	}
	return true
}

// searchOrder returns a node order in which each node after the first of its
// component is adjacent to some earlier node.
func searchOrder(g *Graph) []int32 {
	n := g.N()
	order := make([]int32, 0, n)
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		queue := []int32{int32(start)}
		seen[start] = true
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			for _, w := range g.Neighbors(int(v)) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return order
}
