package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestBuildStreamMatchesBuilder: the arena-backed streaming build must be
// observationally identical to the Builder path — same edge list, same
// adjacency order, same edge indices — on random multigraphs.
func TestBuildStreamMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		m := rng.Intn(4 * n)
		type pair struct{ u, v int }
		edges := make([]pair, m)
		for i := range edges {
			u := rng.Intn(n)
			v := rng.Intn(n - 1)
			if v >= u {
				v++ // uniform v ≠ u; parallel edges stay possible
			}
			edges[i] = pair{u, v}
		}

		b := NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(e.u, e.v)
		}
		want := b.Build()
		got := BuildStream(n, m, func(emit func(u, v int)) {
			for _, e := range edges {
				emit(e.u, e.v)
			}
		})

		if !reflect.DeepEqual(want.edges, got.edges) {
			t.Fatalf("trial %d: edge lists differ", trial)
		}
		if !reflect.DeepEqual(want.adjStart, got.adjStart) {
			t.Fatalf("trial %d: adjStart differs: %v vs %v", trial, want.adjStart, got.adjStart)
		}
		if !reflect.DeepEqual(want.adjNode, got.adjNode) {
			t.Fatalf("trial %d: adjNode differs: %v vs %v", trial, want.adjNode, got.adjNode)
		}
		if !reflect.DeepEqual(want.adjEdge, got.adjEdge) {
			t.Fatalf("trial %d: adjEdge differs: %v vs %v", trial, want.adjEdge, got.adjEdge)
		}
	}
}

// TestBuildStreamEmpty covers the degenerate sizes the arena arithmetic
// must not mangle.
func TestBuildStreamEmpty(t *testing.T) {
	g := BuildStream(0, 0, func(emit func(u, v int)) {})
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	g = BuildStream(5, 0, func(emit func(u, v int)) {})
	if g.N() != 5 || g.M() != 0 || g.Degree(4) != 0 {
		t.Fatalf("edgeless graph: N=%d M=%d", g.N(), g.M())
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestBuildStreamValidation: the analytic edge count and the Builder's
// endpoint rules are enforced, not assumed.
func TestBuildStreamValidation(t *testing.T) {
	mustPanic(t, "under-emission", func() {
		BuildStream(4, 3, func(emit func(u, v int)) { emit(0, 1) })
	})
	mustPanic(t, "over-emission", func() {
		BuildStream(4, 1, func(emit func(u, v int)) { emit(0, 1); emit(1, 2); emit(2, 3) })
	})
	mustPanic(t, "self-loop", func() {
		BuildStream(4, 1, func(emit func(u, v int)) { emit(2, 2) })
	})
	mustPanic(t, "out-of-range", func() {
		BuildStream(4, 1, func(emit func(u, v int)) { emit(0, 4) })
	})
	mustPanic(t, "negative-m", func() {
		BuildStream(4, -1, func(emit func(u, v int)) {})
	})
}

// BenchmarkBuildStreamVsBuilder pins the reason the arena path exists: the
// builder's append-and-fill construction against the two-allocation stream
// on a butterfly-sized edge set.
func benchEdges(n int) (int, func(emit func(u, v int))) {
	// A butterfly-shaped generator: 2n edges per "level" over 4 levels.
	m := 8 * n
	return m, func(emit func(u, v int)) {
		for l := 0; l < 4; l++ {
			for w := 0; w < n; w++ {
				u := l*n + w
				emit(u, (l+1)*n+w)
				emit(u, (l+1)*n+(w^(1<<uint(l))))
			}
		}
	}
}

func BenchmarkBuilderButterflyShaped(b *testing.B) {
	n := 1 << 12
	m, gen := benchEdges(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(5 * n)
		gen(bl.AddEdge)
		if g := bl.Build(); g.M() != m {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkBuildStreamButterflyShaped(b *testing.B) {
	n := 1 << 12
	m, gen := benchEdges(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if g := BuildStream(5*n, m, gen); g.M() != m {
			b.Fatal("bad build")
		}
	}
}
