// Package bandwidth implements the Kruskal–Snir flavored bisection of §1.2:
// every butterfly edge is directed from level i to level i+1, and the
// directed bisection width is the minimum, over all cuts (S,S̄) with at
// least n/2 inputs in S and at least n/2 outputs in S̄, of the number of
// directed edges from S to S̄.
//
// The paper recounts that the exact bandwidth of the n-input butterfly is
// 2n, that bandwidth is at most four times this directed bisection width
// (hence the width is at least n/2), and that the column-prefix cut
// achieves n/2 — "similar in spirit to our Lemma 3.1". This package
// reproduces all three facts.
package bandwidth

import (
	"repro/internal/topology"
)

// DirectedCapacity counts the directed edges (level i → level i+1) leading
// from S to S̄ under the side assignment (true = S).
func DirectedCapacity(b *topology.Butterfly, side []bool) int {
	if b.Wraparound() {
		panic("bandwidth: directed capacity is defined on Bn")
	}
	count := 0
	for _, e := range b.Edges() {
		u, v := int(e.U), int(e.V)
		if b.Level(u) > b.Level(v) {
			u, v = v, u
		}
		if side[u] && !side[v] {
			count++
		}
	}
	return count
}

// IsKSCut reports whether the side assignment satisfies the Kruskal–Snir
// constraint: |S ∩ inputs| ≥ n/2 and |S̄ ∩ outputs| ≥ n/2.
func IsKSCut(b *topology.Butterfly, side []bool) bool {
	inS, outSbar := 0, 0
	for _, v := range b.InputNodes() {
		if side[v] {
			inS++
		}
	}
	for _, v := range b.OutputNodes() {
		if !side[v] {
			outSbar++
		}
	}
	half := b.Inputs() / 2
	return inS >= half && outSbar >= half
}

// ColumnPrefixCut returns the side assignment of the cut achieving the n/2
// bound: S is the set of nodes whose column number begins with 0. Only the
// n/2 forward cross edges out of the level-0 prefix-0 nodes lead from S to
// S̄.
func ColumnPrefixCut(b *topology.Butterfly) []bool {
	side := make([]bool, b.N())
	half := b.Inputs() / 2
	for v := 0; v < b.N(); v++ {
		side[v] = b.Column(v) < half
	}
	return side
}

// MinDirectedBisection computes the exact directed bisection width by
// branch and bound, for small Bn. The admissible bound charges each
// unassigned node the cheaper of its forced forward cut edges to already
// assigned neighbors.
func MinDirectedBisection(b *topology.Butterfly) ([]bool, int) {
	if b.Wraparound() {
		panic("bandwidth: directed bisection is defined on Bn")
	}
	n := b.N()
	nIn := b.Inputs()
	half := nIn / 2

	// Seed with the column-prefix cut.
	seed := ColumnPrefixCut(b)
	best := DirectedCapacity(b, seed) + 1
	var bestSide []bool

	assign := make([]int8, n)
	for i := range assign {
		assign[i] = -1
	}
	// Per node: assigned successors in S̄ (cost if node ∈ S) and assigned
	// predecessors in S (cost if node ∈ S̄).
	succSbar := make([]int32, n)
	predS := make([]int32, n)
	cur, minSum := 0, 0
	inCount, outBarCount := 0, 0

	level := make([]int, n)
	for v := 0; v < n; v++ {
		level[v] = b.Level(v)
	}
	nodeMin := func(v int) int32 {
		if succSbar[v] < predS[v] {
			return succSbar[v]
		}
		return predS[v]
	}

	var place func(v int, s int8)
	var unplace func(v int, s int8)
	place = func(v int, s int8) {
		minSum -= int(nodeMin(v))
		assign[v] = s
		if s == 0 {
			cur += int(succSbar[v])
			if level[v] == 0 {
				inCount++
			}
		} else {
			cur += int(predS[v])
			if level[v] == b.Dim() {
				outBarCount++
			}
		}
		for _, u := range b.Neighbors(v) {
			if assign[u] != -1 {
				continue
			}
			old := nodeMin(int(u))
			if level[u] > level[v] && s == 0 {
				predS[u]++
			}
			if level[u] < level[v] && s == 1 {
				succSbar[u]++
			}
			minSum += int(nodeMin(int(u)) - old)
		}
	}
	unplace = func(v int, s int8) {
		for _, u := range b.Neighbors(v) {
			if assign[u] != -1 {
				continue
			}
			old := nodeMin(int(u))
			if level[u] > level[v] && s == 0 {
				predS[u]--
			}
			if level[u] < level[v] && s == 1 {
				succSbar[u]--
			}
			minSum += int(nodeMin(int(u)) - old)
		}
		assign[v] = -1
		if s == 0 {
			cur -= int(succSbar[v])
			if level[v] == 0 {
				inCount--
			}
		} else {
			cur -= int(predS[v])
			if level[v] == b.Dim() {
				outBarCount--
			}
		}
		minSum += int(nodeMin(v))
	}

	// Assign inputs and outputs first so the constraints prune early.
	order := make([]int, 0, n)
	order = append(order, b.InputNodes()...)
	order = append(order, b.OutputNodes()...)
	for v := 0; v < n; v++ {
		if level[v] != 0 && level[v] != b.Dim() {
			order = append(order, v)
		}
	}

	var dfs func(idx int)
	dfs = func(idx int) {
		if cur+minSum >= best {
			return
		}
		if idx == n {
			best = cur
			bestSide = make([]bool, n)
			for v, a := range assign {
				bestSide[v] = a == 0
			}
			return
		}
		v := order[idx]
		// Remaining feasibility for the input/output quotas.
		remIn, remOutBar := 0, 0
		for i := idx; i < n; i++ {
			u := order[i]
			if level[u] == 0 {
				remIn++
			}
			if level[u] == b.Dim() {
				remOutBar++
			}
		}
		for _, s := range []int8{0, 1} {
			if s == 1 && level[v] == 0 && inCount+remIn-1 < half {
				continue
			}
			if s == 0 && level[v] == b.Dim() && outBarCount+remOutBar-1 < half {
				continue
			}
			place(v, s)
			dfs(idx + 1)
			unplace(v, s)
		}
	}
	dfs(0)

	if bestSide == nil {
		return seed, DirectedCapacity(b, seed)
	}
	return bestSide, best
}

// BandwidthLowerBound returns the §1.2 relation: the network bandwidth 2n
// cannot exceed 4× the directed bisection width, so the width is at least
// ⌈2n/4⌉ = n/2.
func BandwidthLowerBound(n int) int { return n / 2 }
