package bandwidth

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestColumnPrefixCutAchievesHalfN(t *testing.T) {
	// §1.2: "the cut in which S is the set of nodes whose column numbers
	// begin with 0 achieves this bound" — exactly n/2 directed edges.
	for _, n := range []int{4, 8, 16, 64} {
		b := topology.NewButterfly(n)
		side := ColumnPrefixCut(b)
		if !IsKSCut(b, side) {
			t.Errorf("B%d: column-prefix cut violates the KS constraint", n)
		}
		if got := DirectedCapacity(b, side); got != n/2 {
			t.Errorf("B%d: directed capacity %d, want %d", n, got, n/2)
		}
	}
}

func TestMinDirectedBisectionExact(t *testing.T) {
	// The exact directed bisection width equals n/2 (lower bound from the
	// bandwidth relation, upper bound from the column-prefix cut).
	for _, n := range []int{4, 8} {
		b := topology.NewButterfly(n)
		side, w := MinDirectedBisection(b)
		if w != n/2 {
			t.Errorf("B%d: directed width %d, want %d", n, w, n/2)
		}
		if !IsKSCut(b, side) {
			t.Errorf("B%d: optimal cut violates the constraint", n)
		}
		if DirectedCapacity(b, side) != w {
			t.Errorf("B%d: reported width does not match the cut", n)
		}
		if w < BandwidthLowerBound(n) {
			t.Errorf("B%d: width %d below the bandwidth relation %d", n, w, BandwidthLowerBound(n))
		}
	}
}

func TestDirectedCapacityIsAsymmetric(t *testing.T) {
	// Reversing a cut changes which directed edges count: a cut with all
	// inputs in S and all outputs in S̄ pays for forward edges only.
	b := topology.NewButterfly(4)
	// S = level 0 only: all 2n forward edges out of level 0 are cut.
	side := make([]bool, b.N())
	for _, v := range b.InputNodes() {
		side[v] = true
	}
	if got := DirectedCapacity(b, side); got != 8 {
		t.Errorf("level-0 cut: %d directed edges, want 2n = 8", got)
	}
	// Complement: S = everything but level 0: only the last level's
	// boundary... no forward edges leave S downward into level 0, so the
	// only S→S̄ edges would go from levels ≥1 into level 0 — none exist
	// (edges are directed downward). Capacity 0.
	comp := make([]bool, b.N())
	for v := range comp {
		comp[v] = !side[v]
	}
	if got := DirectedCapacity(b, comp); got != 0 {
		t.Errorf("complement cut: %d directed edges, want 0", got)
	}
}

func TestIsKSCut(t *testing.T) {
	b := topology.NewButterfly(4)
	all := make([]bool, b.N())
	for i := range all {
		all[i] = true
	}
	// All nodes in S: outputs in S̄ count 0 < 2.
	if IsKSCut(b, all) {
		t.Errorf("all-S should violate the output quota")
	}
	if !IsKSCut(b, ColumnPrefixCut(b)) {
		t.Errorf("column cut should satisfy the constraint")
	}
}

func TestRandomKSCutsNeverBeatExact(t *testing.T) {
	b := topology.NewButterfly(8)
	_, w := MinDirectedBisection(b)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		side := make([]bool, b.N())
		for v := range side {
			side[v] = rng.Intn(2) == 0
		}
		if !IsKSCut(b, side) {
			continue
		}
		if c := DirectedCapacity(b, side); c < w {
			t.Fatalf("random KS cut %d beats exact %d", c, w)
		}
	}
}

func TestDirectedAtMostUndirected(t *testing.T) {
	// For any cut, the directed capacity is at most the undirected one.
	b := topology.NewButterfly(8)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		side := make([]bool, b.N())
		for v := range side {
			side[v] = rng.Intn(2) == 0
		}
		undirected := 0
		for _, e := range b.Edges() {
			if side[e.U] != side[e.V] {
				undirected++
			}
		}
		if d := DirectedCapacity(b, side); d > undirected {
			t.Fatalf("directed %d exceeds undirected %d", d, undirected)
		}
	}
}

func TestWrapPanics(t *testing.T) {
	w := topology.NewWrappedButterfly(4)
	defer func() {
		if recover() == nil {
			t.Errorf("Wn did not panic")
		}
	}()
	DirectedCapacity(w, make([]bool, w.N()))
}
