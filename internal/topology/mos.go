package topology

import (
	"fmt"

	"repro/internal/graph"
)

// MeshOfStars is the j×k mesh of stars MOS_{j,k} (§2.1): the complete
// bipartite graph K_{j,k} with every edge subdivided by a middle node. Its
// three levels are M1 (j nodes), M2 (j·k middle nodes) and M3 (k nodes);
// the middle node M2(a,b) is adjacent exactly to M1(a) and M3(b).
type MeshOfStars struct {
	*graph.Graph
	j, k int
}

// NewMeshOfStars constructs MOS_{j,k} for j, k ≥ 1.
func NewMeshOfStars(j, k int) *MeshOfStars {
	if j < 1 || k < 1 {
		panic(fmt.Sprintf("topology: mesh of stars dimensions %d×%d out of range", j, k))
	}
	m := &MeshOfStars{j: j, k: k}
	b := graph.NewBuilder(j + j*k + k)
	for a := 0; a < j; a++ {
		for c := 0; c < k; c++ {
			mid := m.M2Node(a, c)
			b.AddEdge(m.M1Node(a), mid)
			b.AddEdge(mid, m.M3Node(c))
		}
	}
	m.Graph = b.Build()
	return m
}

// J returns the size of M1.
func (m *MeshOfStars) J() int { return m.j }

// K returns the size of M3.
func (m *MeshOfStars) K() int { return m.k }

// M1Node returns the id of the a-th M1 node, 0 ≤ a < j.
func (m *MeshOfStars) M1Node(a int) int {
	if a < 0 || a >= m.j {
		panic("topology: M1 index out of range")
	}
	return a
}

// M2Node returns the id of the middle node on the path from M1(a) to M3(b).
func (m *MeshOfStars) M2Node(a, b int) int {
	if a < 0 || a >= m.j || b < 0 || b >= m.k {
		panic("topology: M2 index out of range")
	}
	return m.j + a*m.k + b
}

// M3Node returns the id of the b-th M3 node, 0 ≤ b < k.
func (m *MeshOfStars) M3Node(b int) int {
	if b < 0 || b >= m.k {
		panic("topology: M3 index out of range")
	}
	return m.j + m.j*m.k + b
}

// LevelOf returns 1, 2, or 3 according to which level node id v belongs to.
func (m *MeshOfStars) LevelOf(v int) int {
	switch {
	case v < m.j:
		return 1
	case v < m.j+m.j*m.k:
		return 2
	default:
		return 3
	}
}

// M2Endpoints returns (a,b) for a middle node id v, i.e. the M1 and M3
// indices it connects.
func (m *MeshOfStars) M2Endpoints(v int) (a, b int) {
	if m.LevelOf(v) != 2 {
		panic("topology: node is not an M2 node")
	}
	v -= m.j
	return v / m.k, v % m.k
}

// M2Nodes returns the ids of all middle nodes.
func (m *MeshOfStars) M2Nodes() []int {
	nodes := make([]int, m.j*m.k)
	for i := range nodes {
		nodes[i] = m.j + i
	}
	return nodes
}
