package topology

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/graph"
)

// NewComplete returns the complete graph K_N.
func NewComplete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// NewDoubledComplete returns 2K_N, the complete graph with every edge
// doubled — the guest graph of the classical BW(Bn) ≥ n/2 lower bound
// (§1.4).
func NewDoubledComplete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// NewCompleteBipartite returns K_{a,b} with left nodes 0..a−1 and right
// nodes a..a+b−1 — the guest graph of Lemma 3.1.
func NewCompleteBipartite(a, b int) *graph.Graph {
	builder := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			builder.AddEdge(u, a+v)
		}
	}
	return builder.Build()
}

// Hypercube is the d-dimensional hypercube Q_d on 2^d nodes; node labels are
// the d-bit numbers and edges join labels at Hamming distance 1. The
// butterfly embeds in the hypercube with constant load, congestion and
// dilation (§1.5), which package embed demonstrates.
type Hypercube struct {
	*graph.Graph
	dim int
}

// NewHypercube constructs Q_d for d ≥ 1.
func NewHypercube(d int) *Hypercube {
	if d < 1 {
		panic(fmt.Sprintf("topology: hypercube dimension %d out of range", d))
	}
	h := &Hypercube{dim: d}
	n := 1 << d
	b := graph.NewBuilder(n)
	for w := 0; w < n; w++ {
		for pos := 1; pos <= d; pos++ {
			if bitutil.Bit(w, d, pos) == 0 {
				b.AddEdge(w, bitutil.FlipBit(w, d, pos))
			}
		}
	}
	h.Graph = b.Build()
	return h
}

// Dim returns d.
func (h *Hypercube) Dim() int { return h.dim }

// DeBruijn is the d-dimensional de Bruijn graph on 2^d nodes, with edges
// {w, shift(w)} and {w, shift(w)+1} where shift drops the most significant
// bit and appends a 0 (undirected; self-loops and coincident pairs skipped).
// It is one of the bounded-degree hypercube relatives discussed in §1.5.
type DeBruijn struct {
	*graph.Graph
	dim int
}

// NewDeBruijn constructs the d-dimensional de Bruijn graph, d ≥ 2.
func NewDeBruijn(d int) *DeBruijn {
	if d < 2 {
		panic(fmt.Sprintf("topology: de Bruijn dimension %d out of range", d))
	}
	g := &DeBruijn{dim: d}
	n := 1 << d
	b := graph.NewBuilder(n)
	seen := make(map[[2]int]bool)
	add := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			return
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	for w := 0; w < n; w++ {
		s := (w << 1) & (n - 1)
		add(w, s)
		add(w, s|1)
	}
	g.Graph = b.Build()
	return g
}

// Dim returns d.
func (g *DeBruijn) Dim() int { return g.dim }

// ShuffleExchange is the d-dimensional shuffle-exchange graph on 2^d nodes:
// exchange edges {w, w⊕1} and shuffle edges {w, rotateLeft(w)} (undirected;
// fixed points skipped, duplicates kept out). Another §1.5 relative.
type ShuffleExchange struct {
	*graph.Graph
	dim int
}

// NewShuffleExchange constructs the d-dimensional shuffle-exchange graph,
// d ≥ 2.
func NewShuffleExchange(d int) *ShuffleExchange {
	if d < 2 {
		panic(fmt.Sprintf("topology: shuffle-exchange dimension %d out of range", d))
	}
	g := &ShuffleExchange{dim: d}
	n := 1 << d
	b := graph.NewBuilder(n)
	seen := make(map[[2]int]bool)
	add := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			return
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	for w := 0; w < n; w++ {
		add(w, w^1)
		rot := ((w << 1) | (w >> (d - 1))) & (n - 1)
		add(w, rot)
	}
	g.Graph = b.Build()
	return g
}

// Dim returns d.
func (g *ShuffleExchange) Dim() int { return g.dim }
