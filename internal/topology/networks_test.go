package topology

import (
	"testing"

	"repro/internal/bitutil"
)

func TestCCCCounts(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		c := NewCCC(n)
		d := bitutil.Log2(n)
		if c.N() != n*d {
			t.Errorf("CCC%d: N = %d, want %d", n, c.N(), n*d)
		}
		if c.M() != 3*n*d/2 {
			t.Errorf("CCC%d: M = %d, want %d", n, c.M(), 3*n*d/2)
		}
		if c.MinDegree() != 3 || c.MaxDegree() != 3 {
			t.Errorf("CCC%d should be 3-regular", n)
		}
		if !c.IsConnected() {
			t.Errorf("CCC%d should be connected", n)
		}
	}
}

func TestCCCEdgeSemantics(t *testing.T) {
	c := NewCCC(8)
	d := c.Dim()
	for v := 0; v < c.N(); v++ {
		w, i := c.CycleLabel(v), c.Position(v)
		// Cycle neighbors at positions i±1 (wrapping 1..log n), cube
		// neighbor across bit i.
		next := i%d + 1
		prev := (i-2+d)%d + 1
		for _, u := range []int{c.Node(w, next), c.Node(w, prev), c.Node(bitutil.FlipBit(w, d, i), i)} {
			if !c.HasEdge(v, u) {
				t.Fatalf("node (%d,%d) missing neighbor (%d,%d)", w, i, c.CycleLabel(u), c.Position(u))
			}
		}
	}
}

func TestCCCValidation(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCCC(%d) did not panic", n)
				}
			}()
			NewCCC(n)
		}()
	}
}

func TestBenesStructure(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		be := NewBenes(n)
		d := bitutil.Log2(n)
		if be.N() != n*(2*d+1) {
			t.Errorf("Benes%d: N = %d, want %d", n, be.N(), n*(2*d+1))
		}
		if be.M() != 4*n*d {
			t.Errorf("Benes%d: M = %d, want %d", n, be.M(), 4*n*d)
		}
		if !be.IsConnected() {
			t.Errorf("Benes%d should be connected", n)
		}
		hist := be.DegreeHistogram()
		if d > 0 && (hist[2] != 2*n || hist[4] != (2*d-1)*n) {
			t.Errorf("Benes%d degree histogram = %v", n, hist)
		}
	}
}

func TestBenesMirrorSymmetry(t *testing.T) {
	// The flip positions must be palindromic: 1,2,...,log n,log n,...,2,1.
	be := NewBenes(16)
	d := be.Dim()
	for l := 0; l < 2*d; l++ {
		if be.FlipPosition(l) != be.FlipPosition(2*d-1-l) {
			t.Errorf("flip positions not mirrored at %d", l)
		}
	}
	if be.FlipPosition(0) != 1 || be.FlipPosition(d-1) != d || be.FlipPosition(d) != d {
		t.Errorf("flip position sequence wrong")
	}
}

func TestMeshOfStars(t *testing.T) {
	for _, jk := range [][2]int{{1, 1}, {2, 3}, {4, 4}, {5, 2}} {
		j, k := jk[0], jk[1]
		m := NewMeshOfStars(j, k)
		if m.N() != j+j*k+k {
			t.Errorf("MOS%d,%d: N = %d", j, k, m.N())
		}
		if m.M() != 2*j*k {
			t.Errorf("MOS%d,%d: M = %d", j, k, m.M())
		}
		for a := 0; a < j; a++ {
			if m.Degree(m.M1Node(a)) != k {
				t.Errorf("M1 degree = %d, want %d", m.Degree(m.M1Node(a)), k)
			}
		}
		for b := 0; b < k; b++ {
			if m.Degree(m.M3Node(b)) != j {
				t.Errorf("M3 degree = %d, want %d", m.Degree(m.M3Node(b)), j)
			}
		}
		for a := 0; a < j; a++ {
			for b := 0; b < k; b++ {
				mid := m.M2Node(a, b)
				if m.Degree(mid) != 2 {
					t.Errorf("M2 degree = %d", m.Degree(mid))
				}
				if !m.HasEdge(mid, m.M1Node(a)) || !m.HasEdge(mid, m.M3Node(b)) {
					t.Errorf("M2(%d,%d) misconnected", a, b)
				}
				aa, bb := m.M2Endpoints(mid)
				if aa != a || bb != b {
					t.Errorf("M2Endpoints round trip failed")
				}
			}
		}
		if got := len(m.M2Nodes()); got != j*k {
			t.Errorf("M2Nodes has %d entries", got)
		}
		for _, v := range m.M2Nodes() {
			if m.LevelOf(v) != 2 {
				t.Errorf("M2 node classified as level %d", m.LevelOf(v))
			}
		}
		if m.LevelOf(m.M1Node(0)) != 1 || m.LevelOf(m.M3Node(0)) != 3 {
			t.Errorf("level classification wrong")
		}
	}
}

func TestMeshOfStarsDiameter(t *testing.T) {
	// For j,k ≥ 2 the diameter is 4 (M2 to M2 via M1/M3 hubs).
	m := NewMeshOfStars(3, 4)
	if got := m.Diameter(); got != 4 {
		t.Errorf("diameter = %d, want 4", got)
	}
}

func TestHypercube(t *testing.T) {
	for d := 1; d <= 6; d++ {
		h := NewHypercube(d)
		if h.N() != 1<<d {
			t.Errorf("Q%d: N = %d", d, h.N())
		}
		if h.M() != d<<(d-1) {
			t.Errorf("Q%d: M = %d, want %d", d, h.M(), d<<(d-1))
		}
		if h.MinDegree() != d || h.MaxDegree() != d {
			t.Errorf("Q%d should be %d-regular", d, d)
		}
		if h.Diameter() != d {
			t.Errorf("Q%d diameter = %d", d, h.Diameter())
		}
	}
}

func TestCompleteGraphs(t *testing.T) {
	k5 := NewComplete(5)
	if k5.N() != 5 || k5.M() != 10 {
		t.Errorf("K5: N=%d M=%d", k5.N(), k5.M())
	}
	dk4 := NewDoubledComplete(4)
	if dk4.M() != 12 {
		t.Errorf("2K4: M=%d, want 12", dk4.M())
	}
	if dk4.EdgeMultiplicity(0, 3) != 2 {
		t.Errorf("2K4 edges not doubled")
	}
	kb := NewCompleteBipartite(3, 4)
	if kb.N() != 7 || kb.M() != 12 {
		t.Errorf("K3,4: N=%d M=%d", kb.N(), kb.M())
	}
	if kb.HasEdge(0, 1) || !kb.HasEdge(0, 3) {
		t.Errorf("K3,4 sides wrong")
	}
}

func TestDeBruijnShuffleExchange(t *testing.T) {
	db := NewDeBruijn(4)
	if db.N() != 16 {
		t.Errorf("de Bruijn N = %d", db.N())
	}
	if !db.IsConnected() {
		t.Errorf("de Bruijn should be connected")
	}
	if db.MaxDegree() > 4 {
		t.Errorf("de Bruijn max degree = %d, want ≤ 4", db.MaxDegree())
	}
	se := NewShuffleExchange(4)
	if se.N() != 16 {
		t.Errorf("shuffle-exchange N = %d", se.N())
	}
	if !se.IsConnected() {
		t.Errorf("shuffle-exchange should be connected")
	}
	if se.MaxDegree() > 3 {
		t.Errorf("shuffle-exchange max degree = %d, want ≤ 3", se.MaxDegree())
	}
	// Every node has its exchange partner.
	for w := 0; w < 16; w++ {
		if !se.HasEdge(w, w^1) {
			t.Errorf("missing exchange edge at %d", w)
		}
	}
}
