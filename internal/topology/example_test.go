package topology_test

import (
	"fmt"

	"repro/internal/topology"
)

func ExampleNewButterfly() {
	// The 32-node butterfly of the paper's Figure 1.
	b := topology.NewButterfly(8)
	fmt.Println("nodes:", b.N())
	fmt.Println("edges:", b.M())
	fmt.Println("levels:", b.Levels())
	fmt.Println("diameter:", b.Diameter())
	// Output:
	// nodes: 32
	// edges: 48
	// levels: 4
	// diameter: 6
}

func ExampleButterfly_MonotonePath() {
	// Lemma 2.3: the unique monotone path from input 0b000 to output 0b101.
	b := topology.NewButterfly(8)
	for _, v := range b.MonotonePath(0b000, 0b101) {
		fmt.Printf("<%03b,%d> ", b.Column(v), b.Level(v))
	}
	fmt.Println()
	// Output:
	// <000,0> <100,1> <100,2> <101,3>
}
