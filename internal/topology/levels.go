package topology

import (
	"fmt"

	"repro/internal/bitutil"
)

// LevelRangeComponent is one connected component of Bn[lo,hi], the subgraph
// of Bn induced by levels lo..hi (Lemma 2.4). A component is determined by
// the column bits outside positions lo+1..hi: the lo-bit prefix (positions
// 1..lo) and the (log n − hi)-bit suffix (positions hi+1..log n). The
// component is isomorphic to B_{2^(hi−lo)} and its level-k nodes sit on
// level lo+k of Bn.
type LevelRangeComponent struct {
	b      *Butterfly
	Lo, Hi int
	Prefix int // value of bit positions 1..lo
	Suffix int // value of bit positions hi+1..log n
}

// LevelRangeComponents enumerates the connected components of Bn[lo,hi].
// Per Lemma 2.4 there are n/2^(hi−lo) of them.
func (b *Butterfly) LevelRangeComponents(lo, hi int) []LevelRangeComponent {
	if b.wrap {
		panic("topology: LevelRangeComponents is defined on Bn")
	}
	if lo < 0 || hi > b.dim || lo > hi {
		panic(fmt.Sprintf("topology: bad level range [%d,%d]", lo, hi))
	}
	prefixes := 1 << lo
	suffixes := 1 << (b.dim - hi)
	comps := make([]LevelRangeComponent, 0, prefixes*suffixes)
	for p := 0; p < prefixes; p++ {
		for s := 0; s < suffixes; s++ {
			comps = append(comps, LevelRangeComponent{b: b, Lo: lo, Hi: hi, Prefix: p, Suffix: s})
		}
	}
	return comps
}

// LevelRangeComponentOf returns the component of Bn[lo,hi] containing column
// w (any level in the range).
func (b *Butterfly) LevelRangeComponentOf(lo, hi, w int) LevelRangeComponent {
	if b.wrap {
		panic("topology: LevelRangeComponentOf is defined on Bn")
	}
	return LevelRangeComponent{
		b:      b,
		Lo:     lo,
		Hi:     hi,
		Prefix: bitutil.Prefix(w, b.dim, lo),
		Suffix: bitutil.Suffix(w, b.dim, b.dim-hi),
	}
}

// Dim returns the dimension hi−lo of the component (it is a copy of
// B_{2^(hi−lo)}).
func (c LevelRangeComponent) Dim() int { return c.Hi - c.Lo }

// NumColumns returns 2^(hi−lo), the number of Bn columns in the component.
func (c LevelRangeComponent) NumColumns() int { return 1 << (c.Hi - c.Lo) }

// Size returns the number of nodes, 2^(hi−lo)·(hi−lo+1).
func (c LevelRangeComponent) Size() int { return c.NumColumns() * (c.Hi - c.Lo + 1) }

// Column returns the Bn column label of the component's local column m,
// 0 ≤ m < 2^(hi−lo): the prefix and suffix bits come from the component id
// and the free bits (positions lo+1..hi) take the value m.
func (c LevelRangeComponent) Column(m int) int {
	free := c.Hi - c.Lo
	return bitutil.Compose(c.Prefix, c.Lo, m, free, c.Suffix, c.b.dim-c.Hi)
}

// Node returns the Bn node id of the component node at local column m and
// local level k (which sits on level lo+k of Bn).
func (c LevelRangeComponent) Node(m, k int) int {
	if k < 0 || k > c.Hi-c.Lo {
		panic("topology: component level out of range")
	}
	return c.b.Node(c.Column(m), c.Lo+k)
}

// Nodes returns all node ids of the component, level-major.
func (c LevelRangeComponent) Nodes() []int {
	cols := c.NumColumns()
	nodes := make([]int, 0, c.Size())
	for k := 0; k <= c.Hi-c.Lo; k++ {
		for m := 0; m < cols; m++ {
			nodes = append(nodes, c.Node(m, k))
		}
	}
	return nodes
}

// Contains reports whether Bn node v belongs to the component.
func (c LevelRangeComponent) Contains(v int) bool {
	lvl := c.b.Level(v)
	if lvl < c.Lo || lvl > c.Hi {
		return false
	}
	w := c.b.Column(v)
	return bitutil.Prefix(w, c.b.dim, c.Lo) == c.Prefix &&
		bitutil.Suffix(w, c.b.dim, c.b.dim-c.Hi) == c.Suffix
}

// WrappedSubButterflyNodes returns the nodes of the d-dimensional
// sub-butterfly of Wn whose levels are start..start+d (mod log n) and whose
// columns fix every bit position outside (start+1..start+d, wrapped) to the
// bits of fix (listed most significant first among the fixed positions in
// increasing position order). Requires 1 ≤ d < log n. The result has
// 2^d·(d+1) nodes; its level-0 nodes are the sub-butterfly's inputs and its
// level-d nodes its outputs (§4.1 definitions).
func (b *Butterfly) WrappedSubButterflyNodes(start, d, fix int) []int {
	if !b.wrap {
		panic("topology: WrappedSubButterflyNodes is defined on Wn")
	}
	if d < 1 || d >= b.dim {
		panic("topology: sub-butterfly dimension out of range")
	}
	if start < 0 || start >= b.dim {
		panic("topology: sub-butterfly start level out of range")
	}
	nFixed := b.dim - d
	if fix < 0 || fix >= 1<<nFixed {
		panic("topology: fixed-bit value out of range")
	}
	// Free bit positions are (start+s) mod dim + 1 for s = 0..d−1; every
	// other position is fixed, taking its bit from fix in increasing
	// position order.
	free := make([]bool, b.dim+1) // indexed by paper position 1..dim
	for s := 0; s < d; s++ {
		free[(start+s)%b.dim+1] = true
	}
	fixedPos := make([]int, 0, nFixed)
	for p := 1; p <= b.dim; p++ {
		if !free[p] {
			fixedPos = append(fixedPos, p)
		}
	}
	base := 0
	for idx, p := range fixedPos {
		bit := (fix >> (nFixed - 1 - idx)) & 1
		if bit == 1 {
			base = bitutil.FlipBit(base, b.dim, p)
		}
	}
	freePos := make([]int, 0, d)
	for s := 0; s < d; s++ {
		freePos = append(freePos, (start+s)%b.dim+1)
	}
	nodes := make([]int, 0, (d+1)<<d)
	for k := 0; k <= d; k++ {
		lvl := (start + k) % b.dim
		for m := 0; m < 1<<d; m++ {
			w := base
			for s := 0; s < d; s++ {
				if (m>>(d-1-s))&1 == 1 {
					w = bitutil.FlipBit(w, b.dim, freePos[s])
				}
			}
			nodes = append(nodes, b.Node(w, lvl))
		}
	}
	return nodes
}

// DownChildren returns the two children of node v in the down-tree T_v' of
// whatever node roots the tree (§4 definitions): the level-(i+1) neighbors
// of ⟨w,i⟩. For Bn, ok is false when v is on the last level. For Wn the
// level wraps and ok is always true.
func (b *Butterfly) DownChildren(v int) (straight, cross int, ok bool) {
	w, i := b.Column(v), b.Level(v)
	if !b.wrap && i == b.dim {
		return 0, 0, false
	}
	next := i + 1
	if b.wrap {
		next = (i + 1) % b.dim
	}
	return b.Node(w, next), b.Node(bitutil.FlipBit(w, b.dim, i+1), next), true
}

// UpChildren returns the two level-(i−1) neighbors of ⟨w,i⟩ (the children of
// v in an up-tree). For Bn, ok is false when v is on level 0. For Wn the
// level wraps and ok is always true.
func (b *Butterfly) UpChildren(v int) (straight, cross int, ok bool) {
	w, i := b.Column(v), b.Level(v)
	if !b.wrap && i == 0 {
		return 0, 0, false
	}
	prev := i - 1
	if b.wrap {
		prev = (i - 1 + b.dim) % b.dim
	}
	// The edge between levels prev and prev+1 flips bit position prev+1.
	return b.Node(w, prev), b.Node(bitutil.FlipBit(w, b.dim, prev+1), prev), true
}
