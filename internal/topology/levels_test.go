package topology

import (
	"testing"

	"repro/internal/bitutil"
	"repro/internal/graph"
)

func TestLemma24ComponentCount(t *testing.T) {
	// Lemma 2.4: Bn[i,j] has n/2^(j−i) connected components.
	b := NewButterfly(16)
	for lo := 0; lo <= b.Dim(); lo++ {
		for hi := lo; hi <= b.Dim(); hi++ {
			comps := b.LevelRangeComponents(lo, hi)
			want := 16 >> (hi - lo)
			if len(comps) != want {
				t.Errorf("Bn[%d,%d]: %d components, want %d", lo, hi, len(comps), want)
			}
			// The components must partition the level range.
			seen := make(map[int]bool)
			for _, c := range comps {
				for _, v := range c.Nodes() {
					if seen[v] {
						t.Fatalf("node %d in two components", v)
					}
					seen[v] = true
					if lvl := b.Level(v); lvl < lo || lvl > hi {
						t.Fatalf("node %d outside level range", v)
					}
				}
			}
			if len(seen) != 16*(hi-lo+1) {
				t.Errorf("components cover %d nodes, want %d", len(seen), 16*(hi-lo+1))
			}
		}
	}
}

func TestLemma24ComponentsAreConnectedAndIsomorphic(t *testing.T) {
	// Lemma 2.4: each component of Bn[i,j] is isomorphic to B_{2^(j−i)},
	// and its kth level lies inside level i+k of Bn.
	b := NewButterfly(16)
	cases := [][2]int{{0, 2}, {1, 3}, {2, 4}, {1, 2}, {0, 4}}
	for _, c := range cases {
		lo, hi := c[0], c[1]
		ref := NewButterfly(1 << (hi - lo))
		for _, comp := range b.LevelRangeComponents(lo, hi) {
			sg := b.InducedSubgraph(comp.Nodes())
			if !sg.IsConnected() {
				t.Fatalf("component of Bn[%d,%d] not connected", lo, hi)
			}
			if !graph.Isomorphic(sg.Graph, ref.Graph) {
				t.Fatalf("component of Bn[%d,%d] not isomorphic to B_%d", lo, hi, 1<<(hi-lo))
			}
			for k := 0; k <= comp.Dim(); k++ {
				for m := 0; m < comp.NumColumns(); m++ {
					if b.Level(comp.Node(m, k)) != lo+k {
						t.Fatalf("component level %d not on Bn level %d", k, lo+k)
					}
				}
			}
		}
	}
}

func TestLevelRangeComponentOf(t *testing.T) {
	b := NewButterfly(16)
	for _, rng := range [][2]int{{1, 3}, {0, 2}, {2, 4}} {
		lo, hi := rng[0], rng[1]
		for w := 0; w < 16; w++ {
			comp := b.LevelRangeComponentOf(lo, hi, w)
			v := b.Node(w, lo)
			if !comp.Contains(v) {
				t.Fatalf("component of column %d does not contain its node", w)
			}
			// Membership must agree with actual graph connectivity inside
			// the level range.
			all := make([]int, 0, 16*(hi-lo+1))
			for i := lo; i <= hi; i++ {
				all = append(all, b.LevelNodes(i)...)
			}
			sg := b.InducedSubgraph(all)
			dist := sg.BFS(int(sg.FromParent[v]))
			for _, u := range all {
				reachable := dist[sg.FromParent[u]] >= 0
				if reachable != comp.Contains(u) {
					t.Fatalf("connectivity disagrees with component id for node %d", u)
				}
			}
		}
	}
}

func TestComponentSizeAndColumns(t *testing.T) {
	b := NewButterfly(32)
	comp := b.LevelRangeComponentOf(1, 3, 0b01010)
	if comp.Dim() != 2 || comp.NumColumns() != 4 || comp.Size() != 12 {
		t.Errorf("dim/cols/size = %d/%d/%d", comp.Dim(), comp.NumColumns(), comp.Size())
	}
	// All columns share prefix bits 1..1 and suffix bits 4..5 with 0b01010.
	for m := 0; m < comp.NumColumns(); m++ {
		w := comp.Column(m)
		if bitutil.Prefix(w, 5, 1) != bitutil.Prefix(0b01010, 5, 1) {
			t.Errorf("column %05b has wrong prefix", w)
		}
		if bitutil.Suffix(w, 5, 2) != bitutil.Suffix(0b01010, 5, 2) {
			t.Errorf("column %05b has wrong suffix", w)
		}
	}
}

func TestWrappedSubButterfly(t *testing.T) {
	w := NewWrappedButterfly(16)
	for start := 0; start < w.Dim(); start++ {
		for d := 1; d <= 2; d++ {
			for fix := 0; fix < 1<<(w.Dim()-d); fix++ {
				nodes := w.WrappedSubButterflyNodes(start, d, fix)
				if len(nodes) != (d+1)<<d {
					t.Fatalf("sub-butterfly size %d, want %d", len(nodes), (d+1)<<d)
				}
				sg := w.InducedSubgraph(nodes)
				ref := NewButterfly(1 << d)
				if !graph.Isomorphic(sg.Graph, ref.Graph) {
					t.Fatalf("sub-butterfly (start=%d,d=%d,fix=%d) not a copy of B_%d",
						start, d, fix, 1<<d)
				}
			}
		}
	}
}

func TestWrappedSubButterfliesDisjoint(t *testing.T) {
	// Different fix values give node-disjoint sub-butterflies.
	w := NewWrappedButterfly(16)
	seen := make(map[int]int)
	for fix := 0; fix < 1<<(w.Dim()-2); fix++ {
		for _, v := range w.WrappedSubButterflyNodes(1, 2, fix) {
			if prev, ok := seen[v]; ok {
				t.Fatalf("node %d in sub-butterflies %d and %d", v, prev, fix)
			}
			seen[v] = fix
		}
	}
}

func TestDownUpChildren(t *testing.T) {
	b := NewButterfly(8)
	for v := 0; v < b.N(); v++ {
		s, c, ok := b.DownChildren(v)
		if b.Level(v) == b.Dim() {
			if ok {
				t.Fatalf("bottom level should have no down children")
			}
		} else {
			if !ok || !b.HasEdge(v, s) || !b.HasEdge(v, c) || s == c {
				t.Fatalf("bad down children of %d", v)
			}
			if b.Level(s) != b.Level(v)+1 || b.Level(c) != b.Level(v)+1 {
				t.Fatalf("down children on wrong level")
			}
		}
		s, c, ok = b.UpChildren(v)
		if b.Level(v) == 0 {
			if ok {
				t.Fatalf("top level should have no up children")
			}
		} else {
			if !ok || !b.HasEdge(v, s) || !b.HasEdge(v, c) || s == c {
				t.Fatalf("bad up children of %d", v)
			}
		}
	}

	w := NewWrappedButterfly(8)
	for v := 0; v < w.N(); v++ {
		s, c, ok := w.DownChildren(v)
		if !ok || !w.HasEdge(v, s) || !w.HasEdge(v, c) {
			t.Fatalf("bad wrapped down children of %d", v)
		}
		if w.Level(s) != (w.Level(v)+1)%w.Dim() {
			t.Fatalf("wrapped down child level wrong")
		}
		s, c, ok = w.UpChildren(v)
		if !ok || !w.HasEdge(v, s) || !w.HasEdge(v, c) {
			t.Fatalf("bad wrapped up children of %d", v)
		}
		if w.Level(s) != (w.Level(v)-1+w.Dim())%w.Dim() {
			t.Fatalf("wrapped up child level wrong")
		}
	}
}

func TestDownTreeIsCompleteBinaryTree(t *testing.T) {
	// §4.1 definitions: the down-tree T_u of Wn rooted at u is an n-leaf
	// complete binary tree whose jth level sits on Wn level (i+j) mod log n.
	w := NewWrappedButterfly(16)
	root := w.Node(9, 1)
	frontier := []int{root}
	for j := 1; j <= w.Dim(); j++ {
		var next []int
		seen := make(map[int]bool)
		for _, v := range frontier {
			s, c, _ := w.DownChildren(v)
			for _, u := range []int{s, c} {
				if seen[u] {
					t.Fatalf("down-tree level %d has duplicate node", j)
				}
				seen[u] = true
				next = append(next, u)
			}
		}
		if len(next) != 1<<j {
			t.Fatalf("down-tree level %d has %d nodes, want %d", j, len(next), 1<<j)
		}
		for _, u := range next {
			if w.Level(u) != (1+j)%w.Dim() {
				t.Fatalf("down-tree level %d node on Wn level %d", j, w.Level(u))
			}
		}
		frontier = next
	}
	// Leaves are back on the root's level, one per column.
	cols := make(map[int]bool)
	for _, v := range frontier {
		cols[w.Column(v)] = true
	}
	if len(cols) != 16 {
		t.Fatalf("down-tree leaves cover %d columns, want 16", len(cols))
	}
}
