package topology

import (
	"testing"

	"repro/internal/bitutil"
	"repro/internal/graph"
)

// TestFigure1Structure checks the 32-node butterfly B8 of Figure 1.
func TestFigure1Structure(t *testing.T) {
	b := NewButterfly(8)
	if b.N() != 32 {
		t.Errorf("B8 has %d nodes, want 32", b.N())
	}
	if b.M() != 48 { // 2n·log n = 2·8·3
		t.Errorf("B8 has %d edges, want 48", b.M())
	}
	if b.Levels() != 4 || b.Dim() != 3 {
		t.Errorf("levels/dim = %d/%d", b.Levels(), b.Dim())
	}
	// Inputs and outputs have degree 2; interior nodes degree 4.
	hist := b.DegreeHistogram()
	if hist[2] != 16 || hist[4] != 16 {
		t.Errorf("degree histogram = %v, want 16×2, 16×4", hist)
	}
	if !b.IsConnected() {
		t.Errorf("B8 should be connected")
	}
}

func TestButterflyCounts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		b := NewButterfly(n)
		d := bitutil.Log2(n)
		if b.N() != n*(d+1) {
			t.Errorf("B%d: N = %d, want n(log n+1) = %d", n, b.N(), n*(d+1))
		}
		if b.M() != 2*n*d {
			t.Errorf("B%d: M = %d, want 2n·log n = %d", n, b.M(), 2*n*d)
		}
	}
}

func TestButterflyDiameter(t *testing.T) {
	// Diameter of Bn is 2·log n (§1.1).
	for _, n := range []int{2, 4, 8, 16, 32} {
		b := NewButterfly(n)
		if got, want := b.Diameter(), 2*b.Dim(); got != want {
			t.Errorf("diam(B%d) = %d, want %d", n, got, want)
		}
	}
}

func TestWrappedButterflyCounts(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		w := NewWrappedButterfly(n)
		d := bitutil.Log2(n)
		if w.N() != n*d {
			t.Errorf("W%d: N = %d, want n·log n = %d", n, w.N(), n*d)
		}
		if w.M() != 2*n*d {
			t.Errorf("W%d: M = %d, want 2n·log n = %d", n, w.M(), 2*n*d)
		}
		// Wn is 4-regular (§1.4).
		if w.MinDegree() != 4 || w.MaxDegree() != 4 {
			t.Errorf("W%d degrees = [%d,%d], want 4-regular", n, w.MinDegree(), w.MaxDegree())
		}
	}
}

func TestWrappedButterflyDiameter(t *testing.T) {
	// Diameter of Wn is ⌊3·log n/2⌋ (§1.1).
	for _, n := range []int{4, 8, 16, 32} {
		w := NewWrappedButterfly(n)
		want := 3 * w.Dim() / 2
		if got := w.Diameter(); got != want {
			t.Errorf("diam(W%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNodeColumnLevelRoundTrip(t *testing.T) {
	b := NewButterfly(16)
	for i := 0; i <= b.Dim(); i++ {
		for w := 0; w < 16; w++ {
			v := b.Node(w, i)
			if b.Column(v) != w || b.Level(v) != i {
				t.Fatalf("round trip failed for (%d,%d)", w, i)
			}
		}
	}
	wb := NewWrappedButterfly(16)
	for i := 0; i < wb.Dim(); i++ {
		for w := 0; w < 16; w++ {
			v := wb.Node(w, i)
			if wb.Column(v) != w || wb.Level(v) != i {
				t.Fatalf("wrapped round trip failed for (%d,%d)", w, i)
			}
		}
	}
	// Wrap identification: level log n is level 0.
	if wb.Node(5, wb.Dim()) != wb.Node(5, 0) {
		t.Errorf("level log n should wrap to level 0")
	}
}

func TestButterflyEdgeSemantics(t *testing.T) {
	// Nodes <w,i> and <w',i'> adjacent iff i' = i+1 and w' = w or w' = w
	// with bit i+1 flipped (checked in both directions by symmetry of the
	// adjacency structure).
	b := NewButterfly(8)
	d := b.Dim()
	for v := 0; v < b.N(); v++ {
		w, i := b.Column(v), b.Level(v)
		want := make(map[int]bool)
		if i < d {
			want[b.Node(w, i+1)] = true
			want[b.Node(bitutil.FlipBit(w, d, i+1), i+1)] = true
		}
		if i > 0 {
			want[b.Node(w, i-1)] = true
			want[b.Node(bitutil.FlipBit(w, d, i), i-1)] = true
		}
		got := make(map[int]bool)
		for _, u := range b.Neighbors(v) {
			got[int(u)] = true
		}
		if len(got) != len(want) {
			t.Fatalf("node (%d,%d): %d neighbors, want %d", w, i, len(got), len(want))
		}
		for u := range want {
			if !got[u] {
				t.Fatalf("node (%d,%d): missing neighbor %d", w, i, u)
			}
		}
	}
}

// checkAutomorphism verifies that perm maps edges of g onto edges of g
// bijectively.
func checkAutomorphism(t *testing.T, g *graph.Graph, perm []int) {
	t.Helper()
	seen := make([]bool, g.N())
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("permutation is not a bijection")
		}
		seen[p] = true
	}
	for _, e := range g.Edges() {
		if !g.HasEdge(perm[e.U], perm[e.V]) {
			t.Fatalf("edge {%d,%d} not preserved", e.U, e.V)
		}
	}
}

func TestLevelReversalAutomorphism(t *testing.T) {
	// Lemma 2.1: an automorphism of Bn mapping L_i onto L_{log n − i}.
	b := NewButterfly(16)
	perm := b.LevelReversalAutomorphism()
	checkAutomorphism(t, b.Graph, perm)
	for v := 0; v < b.N(); v++ {
		if b.Level(perm[v]) != b.Dim()-b.Level(v) {
			t.Fatalf("node on level %d mapped to level %d", b.Level(v), b.Level(perm[v]))
		}
	}
}

func TestColumnXorAutomorphism(t *testing.T) {
	// Lemma 2.2: level-preserving automorphisms carrying any node to any
	// other node on the same level.
	b := NewButterfly(8)
	for mask := 0; mask < 8; mask++ {
		perm := b.ColumnXorAutomorphism(mask)
		checkAutomorphism(t, b.Graph, perm)
		for v := 0; v < b.N(); v++ {
			if b.Level(perm[v]) != b.Level(v) {
				t.Fatalf("xor automorphism moved levels")
			}
			if b.Column(perm[v]) != b.Column(v)^mask {
				t.Fatalf("xor automorphism wrong column")
			}
		}
	}
	w := NewWrappedButterfly(8)
	checkAutomorphism(t, w.Graph, w.ColumnXorAutomorphism(5))
}

func TestLevelRotationAutomorphism(t *testing.T) {
	// The symmetry of Wn used in Lemma 3.2 to renumber levels.
	for _, n := range []int{4, 8, 16} {
		w := NewWrappedButterfly(n)
		perm := w.LevelRotationAutomorphism()
		checkAutomorphism(t, w.Graph, perm)
		for v := 0; v < w.N(); v++ {
			if w.Level(perm[v]) != (w.Level(v)+1)%w.Dim() {
				t.Fatalf("rotation automorphism wrong level")
			}
		}
	}
}

func TestMonotonePath(t *testing.T) {
	// Lemma 2.3: exactly one monotone path links any input to any output.
	b := NewButterfly(16)
	d := b.Dim()
	for w0 := 0; w0 < 16; w0++ {
		for w1 := 0; w1 < 16; w1++ {
			p := b.MonotonePath(w0, w1)
			if len(p) != d+1 {
				t.Fatalf("path length %d, want %d", len(p), d+1)
			}
			if p[0] != b.Node(w0, 0) || p[d] != b.Node(w1, d) {
				t.Fatalf("path endpoints wrong")
			}
			for i := 0; i < d; i++ {
				if b.Level(p[i]) != i {
					t.Fatalf("path not monotone at step %d", i)
				}
				if !b.HasEdge(p[i], p[i+1]) {
					t.Fatalf("path step %d is not an edge", i)
				}
			}
		}
	}
}

func TestMonotonePathUniqueness(t *testing.T) {
	// Count all monotone input→output paths by dynamic programming over
	// levels; every pair must have exactly one.
	b := NewButterfly(8)
	d := b.Dim()
	for w0 := 0; w0 < 8; w0++ {
		counts := make([]int, b.N())
		counts[b.Node(w0, 0)] = 1
		for i := 0; i < d; i++ {
			for w := 0; w < 8; w++ {
				v := b.Node(w, i)
				if counts[v] == 0 {
					continue
				}
				counts[b.Node(w, i+1)] += counts[v]
				counts[b.Node(bitutil.FlipBit(w, d, i+1), i+1)] += counts[v]
			}
		}
		for w1 := 0; w1 < 8; w1++ {
			if got := counts[b.Node(w1, d)]; got != 1 {
				t.Fatalf("%d monotone paths from %d to %d, want 1", got, w0, w1)
			}
		}
	}
}

func TestRotatedMonotonePath(t *testing.T) {
	w := NewWrappedButterfly(16)
	d := w.Dim()
	for start := 0; start < d; start++ {
		for w0 := 0; w0 < 16; w0 += 3 {
			for w1 := 0; w1 < 16; w1 += 5 {
				p := w.RotatedMonotonePath(w0, w1, start)
				if len(p) != d+1 {
					t.Fatalf("path length %d", len(p))
				}
				if p[0] != w.Node(w0, start) || p[d] != w.Node(w1, start) {
					t.Fatalf("endpoints wrong: start %d cols %d,%d", start, w0, w1)
				}
				for s := 0; s < d; s++ {
					if !w.HasEdge(p[s], p[s+1]) {
						t.Fatalf("step %d not an edge", s)
					}
				}
			}
		}
	}
}

func TestInputOutputNodes(t *testing.T) {
	b := NewButterfly(8)
	in, out := b.InputNodes(), b.OutputNodes()
	if len(in) != 8 || len(out) != 8 {
		t.Fatalf("inputs/outputs sized %d/%d", len(in), len(out))
	}
	for _, v := range in {
		if b.Level(v) != 0 {
			t.Errorf("input on level %d", b.Level(v))
		}
	}
	for _, v := range out {
		if b.Level(v) != b.Dim() {
			t.Errorf("output on level %d", b.Level(v))
		}
	}
	w := NewWrappedButterfly(8)
	if len(w.OutputNodes()) != 8 || w.OutputNodes()[3] != w.Node(3, 0) {
		t.Errorf("wrapped outputs should coincide with inputs")
	}
	col := b.ColumnNodes(5)
	if len(col) != b.Levels() {
		t.Errorf("column has %d nodes", len(col))
	}
	for i, v := range col {
		if b.Column(v) != 5 || b.Level(v) != i {
			t.Errorf("column node %d wrong", i)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("B3", func() { NewButterfly(3) })
	mustPanic("B0", func() { NewButterfly(0) })
	mustPanic("B1", func() { NewButterfly(1) })
	mustPanic("W2", func() { NewWrappedButterfly(2) })
	mustPanic("W6", func() { NewWrappedButterfly(6) })
	mustPanic("bad node", func() { NewButterfly(4).Node(4, 0) })
	mustPanic("bad level", func() { NewButterfly(4).Node(0, 3) })
	mustPanic("Bn rotation", func() { NewButterfly(4).LevelRotationAutomorphism() })
	mustPanic("Wn reversal", func() { NewWrappedButterfly(4).LevelReversalAutomorphism() })
	mustPanic("Wn monotone", func() { NewWrappedButterfly(4).MonotonePath(0, 1) })
	mustPanic("Bn rotated", func() { NewButterfly(4).RotatedMonotonePath(0, 1, 0) })
}
