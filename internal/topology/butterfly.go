// Package topology constructs the networks studied in the paper — the
// butterfly Bn with and without wraparound, the cube-connected cycles CCCn,
// the Beneš network, the mesh of stars MOS_{j,k} — together with the
// reference networks used by its embedding arguments (hypercube, complete
// and complete bipartite graphs, the doubled complete graph 2K_N, shuffle-
// exchange and de Bruijn graphs).
//
// Terminology follows Section 1.1 of the paper: the (log n)-dimensional
// butterfly Bn has N = n(log n + 1) nodes in log n + 1 levels of n nodes
// each; node ⟨w,i⟩ lives on level i in column w; bit positions are numbered
// 1..log n from the most significant bit; and nodes ⟨w,i⟩ and ⟨w′,i+1⟩ are
// adjacent iff w = w′ or w and w′ differ exactly in bit position i+1.
package topology

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/graph"
)

// Butterfly is the (log n)-dimensional butterfly network, with or without
// wraparound. Node ids are level-major: id = i·n + w for level i, column w.
type Butterfly struct {
	*graph.Graph
	n    int  // number of columns (inputs); a power of two ≥ 2
	dim  int  // log n
	wrap bool // true for Wn (levels 0 and log n identified)
}

// NewButterfly constructs Bn, the n-input butterfly without wraparound.
// n must be a power of two, n ≥ 2.
func NewButterfly(n int) *Butterfly {
	if !bitutil.IsPow2(n) || n < 2 {
		panic(fmt.Sprintf("topology: butterfly size %d is not a power of two ≥ 2", n))
	}
	dim := bitutil.Log2(n)
	b := &Butterfly{n: n, dim: dim, wrap: false}
	// Bn has exactly 2n·log n edges, so the CSR is built arena-backed from
	// a streaming generator — no intermediate edge list, two allocations
	// total even at millions of nodes.
	b.Graph = graph.BuildStream(n*(dim+1), 2*n*dim, func(emit func(u, v int)) {
		for i := 0; i < dim; i++ {
			for w := 0; w < n; w++ {
				u := b.Node(w, i)
				emit(u, b.Node(w, i+1))                            // straight edge
				emit(u, b.Node(bitutil.FlipBit(w, dim, i+1), i+1)) // cross edge flips bit i+1
			}
		}
	})
	return b
}

// NewWrappedButterfly constructs Wn, the butterfly with wraparound: the
// level-0 and level-(log n) nodes of each column are identified, giving
// n·log n nodes. n must be a power of two with log n ≥ 2 (W2 degenerates to
// self-loops and is rejected).
func NewWrappedButterfly(n int) *Butterfly {
	if !bitutil.IsPow2(n) || n < 4 {
		panic(fmt.Sprintf("topology: wrapped butterfly size %d is not a power of two ≥ 4", n))
	}
	dim := bitutil.Log2(n)
	b := &Butterfly{n: n, dim: dim, wrap: true}
	b.Graph = graph.BuildStream(n*dim, 2*n*dim, func(emit func(u, v int)) {
		for i := 0; i < dim; i++ {
			next := (i + 1) % dim
			for w := 0; w < n; w++ {
				u := b.Node(w, i)
				emit(u, b.Node(w, next))
				emit(u, b.Node(bitutil.FlipBit(w, dim, i+1), next))
			}
		}
	})
	return b
}

// Inputs returns n, the number of columns.
func (b *Butterfly) Inputs() int { return b.n }

// Dim returns log n, the dimension.
func (b *Butterfly) Dim() int { return b.dim }

// Wraparound reports whether the network is Wn rather than Bn.
func (b *Butterfly) Wraparound() bool { return b.wrap }

// Levels returns the number of levels: log n + 1 for Bn, log n for Wn.
func (b *Butterfly) Levels() int {
	if b.wrap {
		return b.dim
	}
	return b.dim + 1
}

// Node returns the id of node ⟨w,i⟩. For Wn, i is taken mod log n, so that
// level log n denotes level 0 as the identification requires.
func (b *Butterfly) Node(w, i int) int {
	if w < 0 || w >= b.n {
		panic(fmt.Sprintf("topology: column %d out of range", w))
	}
	if b.wrap {
		i = ((i % b.dim) + b.dim) % b.dim
	} else if i < 0 || i > b.dim {
		panic(fmt.Sprintf("topology: level %d out of range", i))
	}
	return i*b.n + w
}

// Column returns the column w of node id v.
func (b *Butterfly) Column(v int) int { return v % b.n }

// Level returns the level i of node id v.
func (b *Butterfly) Level(v int) int { return v / b.n }

// LevelNodes returns the ids of all nodes on level i.
func (b *Butterfly) LevelNodes(i int) []int {
	nodes := make([]int, b.n)
	for w := 0; w < b.n; w++ {
		nodes[w] = b.Node(w, i)
	}
	return nodes
}

// InputNodes returns the level-0 nodes (the inputs).
func (b *Butterfly) InputNodes() []int { return b.LevelNodes(0) }

// OutputNodes returns the level-(log n) nodes of Bn (the outputs). For Wn the
// outputs coincide with the inputs by identification.
func (b *Butterfly) OutputNodes() []int {
	if b.wrap {
		return b.LevelNodes(0)
	}
	return b.LevelNodes(b.dim)
}

// ColumnNodes returns the nodes of column w, level by level.
func (b *Butterfly) ColumnNodes(w int) []int {
	nodes := make([]int, b.Levels())
	for i := range nodes {
		nodes[i] = b.Node(w, i)
	}
	return nodes
}

// LevelReversalAutomorphism returns the node permutation of Lemma 2.1 for Bn:
// ⟨w,i⟩ ↦ ⟨reverse(w), log n − i⟩, an automorphism that maps each level L_i
// onto L_{log n − i}. It panics for Wn, where the corresponding symmetry is
// level rotation instead.
func (b *Butterfly) LevelReversalAutomorphism() []int {
	if b.wrap {
		panic("topology: level reversal automorphism is defined for Bn only")
	}
	perm := make([]int, b.N())
	for v := 0; v < b.N(); v++ {
		w, i := b.Column(v), b.Level(v)
		perm[v] = b.Node(bitutil.Reverse(w, b.dim), b.dim-i)
	}
	return perm
}

// ColumnXorAutomorphism returns the level-preserving automorphism
// ⟨w,i⟩ ↦ ⟨w⊕mask,i⟩ (the symmetry behind Lemma 2.2). It applies to both Bn
// and Wn.
func (b *Butterfly) ColumnXorAutomorphism(mask int) []int {
	if mask < 0 || mask >= b.n {
		panic("topology: xor mask out of range")
	}
	perm := make([]int, b.N())
	for v := 0; v < b.N(); v++ {
		w, i := b.Column(v), b.Level(v)
		perm[v] = b.Node(w^mask, i)
	}
	return perm
}

// LevelRotationAutomorphism returns the automorphism of Wn that advances all
// levels by one: ⟨w,i⟩ ↦ ⟨σ(w), i+1 mod log n⟩ where σ cyclically shifts
// every column bit from paper position p to position p+1 (mod log n), so the
// bit flipped between consecutive levels stays aligned. It panics for Bn.
func (b *Butterfly) LevelRotationAutomorphism() []int {
	if !b.wrap {
		panic("topology: level rotation automorphism is defined for Wn only")
	}
	perm := make([]int, b.N())
	for v := 0; v < b.N(); v++ {
		w, i := b.Column(v), b.Level(v)
		// Position p is bit index log n − p, so moving position p to p+1
		// shifts every bit one index down: a right rotation.
		rot := (w >> 1) | ((w & 1) << (b.dim - 1))
		perm[v] = b.Node(rot, (i+1)%b.dim)
	}
	return perm
}

// MonotonePath returns the unique monotone (level-increasing) path of
// Lemma 2.3 from input ⟨w0,0⟩ to output ⟨w1,log n⟩ of Bn, as a slice of
// log n + 1 node ids. At step i the path moves from level i to level i+1,
// choosing the cross edge exactly when w0 and w1 differ in bit i+1.
func (b *Butterfly) MonotonePath(w0, w1 int) []int {
	if b.wrap {
		panic("topology: MonotonePath is defined on Bn; use RotatedMonotonePath for Wn")
	}
	path := make([]int, b.dim+1)
	w := w0
	path[0] = b.Node(w, 0)
	for i := 0; i < b.dim; i++ {
		if bitutil.Bit(w, b.dim, i+1) != bitutil.Bit(w1, b.dim, i+1) {
			w = bitutil.FlipBit(w, b.dim, i+1)
		}
		path[i+1] = b.Node(w, i+1)
	}
	return path
}

// RotatedMonotonePath returns, for Wn, the length-(log n) path that starts at
// ⟨w0,start⟩, advances one level per step (mod log n), and ends at
// ⟨w1,start⟩, fixing bit i+1 when crossing from level i to level i+1. This is
// the "middle leg" used by the K_N-into-Wn embedding of Theorem 4.3.
func (b *Butterfly) RotatedMonotonePath(w0, w1, start int) []int {
	if !b.wrap {
		panic("topology: RotatedMonotonePath is defined for Wn only")
	}
	path := make([]int, b.dim+1)
	w := w0
	path[0] = b.Node(w, start)
	for s := 0; s < b.dim; s++ {
		i := (start + s) % b.dim
		if bitutil.Bit(w, b.dim, i+1) != bitutil.Bit(w1, b.dim, i+1) {
			w = bitutil.FlipBit(w, b.dim, i+1)
		}
		path[s+1] = b.Node(w, i+1)
	}
	return path
}
