package topology

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/graph"
)

// CCC is the (log n)-dimensional cube-connected cycles network (§1.1): n
// cycles of log n nodes each. Node ⟨w,i⟩ has cycle label w ∈ {0,1}^log n and
// position i ∈ 1..log n within its cycle. Cycle edges join consecutive
// positions; cube edges join ⟨w,i⟩ and ⟨w′,i⟩ when w and w′ differ exactly
// in bit position i.
type CCC struct {
	*graph.Graph
	n   int // number of cycles; a power of two with log n ≥ 3
	dim int // log n, the cycle length
}

// NewCCC constructs CCCn. n must be a power of two with log n ≥ 3 (shorter
// cycles would degenerate into parallel edges).
func NewCCC(n int) *CCC {
	if !bitutil.IsPow2(n) || n < 8 {
		panic(fmt.Sprintf("topology: CCC size %d is not a power of two ≥ 8", n))
	}
	dim := bitutil.Log2(n)
	c := &CCC{n: n, dim: dim}
	// n·log n cycle edges plus n·log n / 2 cube edges, known up front.
	c.Graph = graph.BuildStream(n*dim, 3*n*dim/2, func(emit func(u, v int)) {
		for w := 0; w < n; w++ {
			for i := 1; i <= dim; i++ {
				// Cycle edge from position i to position i mod dim + 1.
				emit(c.Node(w, i), c.Node(w, i%dim+1))
				// Cube edge in dimension i, added once per pair.
				if bitutil.Bit(w, dim, i) == 0 {
					emit(c.Node(w, i), c.Node(bitutil.FlipBit(w, dim, i), i))
				}
			}
		}
	})
	return c
}

// Cycles returns n, the number of cycles.
func (c *CCC) Cycles() int { return c.n }

// Dim returns log n, the cycle length.
func (c *CCC) Dim() int { return c.dim }

// Node returns the id of node ⟨w,i⟩, 1 ≤ i ≤ log n.
func (c *CCC) Node(w, i int) int {
	if w < 0 || w >= c.n || i < 1 || i > c.dim {
		panic(fmt.Sprintf("topology: CCC node (%d,%d) out of range", w, i))
	}
	return (i-1)*c.n + w
}

// CycleLabel returns the cycle label w of node id v.
func (c *CCC) CycleLabel(v int) int { return v % c.n }

// Position returns the in-cycle position i ∈ 1..log n of node id v.
func (c *CCC) Position(v int) int { return v/c.n + 1 }
