package topology

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/graph"
)

// Benes is the (log n)-dimensional Beneš network (§1.5): two back-to-back
// (log n)-dimensional butterflies sharing their level-(log n) nodes. It has
// 2·log n + 1 levels of n nodes each. Levels 0..log n form a copy of Bn;
// levels log n..2·log n form the mirror copy. The level-0 nodes are the
// inputs and the level-(2 log n) nodes are the outputs. The Beneš network is
// rearrangeable: any permutation of inputs to outputs can be routed along
// edge-disjoint paths (see package route for the looping algorithm).
type Benes struct {
	*graph.Graph
	n   int
	dim int // log n
}

// NewBenes constructs the n-input Beneš network. n must be a power of two,
// n ≥ 2.
func NewBenes(n int) *Benes {
	if !bitutil.IsPow2(n) || n < 2 {
		panic(fmt.Sprintf("topology: Benes size %d is not a power of two ≥ 2", n))
	}
	dim := bitutil.Log2(n)
	be := &Benes{n: n, dim: dim}
	b := graph.NewBuilder(n * (2*dim + 1))
	for l := 0; l < 2*dim; l++ {
		pos := be.FlipPosition(l)
		for w := 0; w < n; w++ {
			u := be.Node(w, l)
			b.AddEdge(u, be.Node(w, l+1))
			b.AddEdge(u, be.Node(bitutil.FlipBit(w, dim, pos), l+1))
		}
	}
	be.Graph = b.Build()
	return be
}

// Inputs returns n.
func (be *Benes) Inputs() int { return be.n }

// Dim returns log n.
func (be *Benes) Dim() int { return be.dim }

// Levels returns 2·log n + 1.
func (be *Benes) Levels() int { return 2*be.dim + 1 }

// FlipPosition returns the bit position (1-based) flipped by cross edges
// between levels l and l+1: position l+1 in the first (forward) half and
// position 2·log n − l in the second (mirror) half.
func (be *Benes) FlipPosition(l int) int {
	if l < 0 || l >= 2*be.dim {
		panic(fmt.Sprintf("topology: Benes inter-level index %d out of range", l))
	}
	if l < be.dim {
		return l + 1
	}
	return 2*be.dim - l
}

// Node returns the id of the node in column w on level l, 0 ≤ l ≤ 2·log n.
func (be *Benes) Node(w, l int) int {
	if w < 0 || w >= be.n || l < 0 || l > 2*be.dim {
		panic(fmt.Sprintf("topology: Benes node (%d,%d) out of range", w, l))
	}
	return l*be.n + w
}

// Column returns the column of node id v.
func (be *Benes) Column(v int) int { return v % be.n }

// Level returns the level of node id v.
func (be *Benes) Level(v int) int { return v / be.n }

// InputNodes returns the level-0 nodes.
func (be *Benes) InputNodes() []int {
	nodes := make([]int, be.n)
	for w := range nodes {
		nodes[w] = be.Node(w, 0)
	}
	return nodes
}

// OutputNodes returns the level-(2 log n) nodes.
func (be *Benes) OutputNodes() []int {
	nodes := make([]int, be.n)
	for w := range nodes {
		nodes[w] = be.Node(w, 2*be.dim)
	}
	return nodes
}
