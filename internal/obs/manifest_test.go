package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	type row struct {
		Network string `json:"network"`
		Width   int    `json:"width"`
	}
	m := NewManifest("bwtable")
	m.Seed = 7
	m.Flags = map[string]string{"exact-nodes": "32"}
	env := CaptureEnvironment()
	m.Env = &env
	m.AddTable("bisection.bn", "BW(Bn)", []row{{"B8", 8}, {"B16", 14}})
	m.Metrics = map[string]interface{}{"solve.explored": int64(123)}

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("encoded manifest missing trailing newline")
	}

	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema || got.Version != ManifestVersion {
		t.Fatalf("schema stamp %q/%d", got.Schema, got.Version)
	}
	if got.Command != "bwtable" || got.Seed != 7 {
		t.Fatalf("envelope = %+v", got)
	}
	tab := got.Table("bisection.bn")
	if tab == nil {
		t.Fatal("table lost in round trip")
	}
	rows, ok := tab.Rows.([]interface{})
	if !ok || len(rows) != 2 {
		t.Fatalf("rows = %#v", tab.Rows)
	}
	first := rows[0].(map[string]interface{})
	if first["network"] != "B8" || first["width"].(float64) != 8 {
		t.Fatalf("row = %#v", first)
	}
	if got.Env == nil || got.Env.GOOS == "" || got.Env.GOMAXPROCS < 1 {
		t.Fatalf("environment lost: %+v", got.Env)
	}
}

func TestDecodeManifestChecksSchemaVersion(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"wrong schema", `{"schema":"other/thing","version":1,"command":"x","tables":[]}`},
		{"missing schema", `{"version":1,"command":"x","tables":[]}`},
		{"future version", `{"schema":"repro/run-manifest","version":99,"command":"x","tables":[]}`},
		{"zero version", `{"schema":"repro/run-manifest","command":"x","tables":[]}`},
		{"not json", `not json at all`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecodeManifest(strings.NewReader(c.doc)); err == nil {
				t.Fatalf("decoded %s without error", c.name)
			}
		})
	}
}

func TestManifestTableLookup(t *testing.T) {
	m := NewManifest("x")
	if m.Table("missing") != nil {
		t.Fatal("lookup on empty manifest")
	}
	m.AddTable("a", "", nil).AddTable("b", "title", nil)
	if m.Table("b") == nil || m.Table("b").Title != "title" {
		t.Fatal("AddTable chaining broken")
	}
}

func TestCaptureEnvironment(t *testing.T) {
	env := CaptureEnvironment()
	if env.GOOS == "" || env.GOARCH == "" || env.GoVersion == "" {
		t.Fatalf("environment incomplete: %+v", env)
	}
	if env.NumCPU < 1 || env.GOMAXPROCS < 1 {
		t.Fatalf("cpu counts: %+v", env)
	}
}
