package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) not nil")
	}
	var tr *Tracer
	tr.Event("x", Attrs{"a": 1})
	sp := tr.StartSpan("y", nil)
	if sp != nil {
		t.Fatal("nil tracer span not nil")
	}
	sp.Event("z", nil)
	sp.End(nil)
	if tr.Err() != nil {
		t.Fatal("nil tracer error")
	}
}

func TestTracerEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.StartSpan("solve", Attrs{"name": "B8"})
	sp.Event("incumbent", Attrs{"value": 12})
	sp.End(Attrs{"explored": 100})
	tr.Event("done", nil)

	var events []traceEvent
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev traceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q not JSON: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	if events[0].Type != "span_start" || events[0].Name != "solve" || events[0].Span == 0 {
		t.Fatalf("span_start = %+v", events[0])
	}
	if events[1].Type != "event" || events[1].Span != events[0].Span {
		t.Fatalf("span event not correlated: %+v", events[1])
	}
	if events[2].Type != "span_end" {
		t.Fatalf("span_end = %+v", events[2])
	}
	if _, ok := events[2].Attrs["elapsed_ms"]; !ok {
		t.Fatal("span_end missing elapsed_ms")
	}
	if events[3].Span != 0 {
		t.Fatalf("tracer-level event carries span id: %+v", events[3])
	}
}

func TestTracerConcurrentLinesIntact(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := tr.StartSpan("worker", Attrs{"w": w})
			for i := 0; i < 50; i++ {
				sp.Event("tick", Attrs{"i": i})
			}
			sp.End(nil)
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 8*52 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*52)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errSink
}

var errSink = bytes.ErrTooLarge

func TestTracerSinkErrorSticky(t *testing.T) {
	fw := &failWriter{}
	tr := NewTracer(fw)
	tr.Event("a", nil)
	tr.Event("b", nil)
	if tr.Err() == nil {
		t.Fatal("sink error not surfaced")
	}
	if fw.n != 1 {
		t.Fatalf("emission continued after sink error (%d writes)", fw.n)
	}
}
