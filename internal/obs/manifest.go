package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
)

// ManifestSchema identifies the run-manifest document family; Decode
// rejects documents carrying any other schema string.
const ManifestSchema = "repro/run-manifest"

// ManifestVersion is the current schema version. Bump it whenever a field
// changes meaning or moves; Decode rejects mismatches so downstream
// tooling (the bench-trajectory differ, CI artifact checks) fails loudly
// instead of silently misreading old documents.
const ManifestVersion = 1

// Environment records where a manifest was produced — enough to explain a
// perf delta between two documents before reading a single table.
type Environment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Revision is the VCS revision baked into the binary (vcs.revision
	// from the build info — the `git describe` of a module build); empty
	// for plain `go test` binaries.
	Revision string `json:"revision,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
}

// CaptureEnvironment snapshots the current process environment.
func CaptureEnvironment() Environment {
	env := Environment{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				env.Revision = s.Value
			case "vcs.modified":
				env.Dirty = s.Value == "true"
			}
		}
	}
	return env
}

// Table is one named table of a manifest: the machine-readable twin of a
// rendered text table. Rows is a slice of row structs on the encoding
// side and decodes generically (a []interface{} of maps), which is what
// the diffing and golden-test tooling wants.
type Table struct {
	Name  string      `json:"name"`
	Title string      `json:"title,omitempty"`
	Rows  interface{} `json:"rows"`
}

// Manifest is the versioned machine-readable record of one command run:
// every table the command printed, the flag values and seeds that
// produced them, the environment, and the end-of-run metrics snapshot
// (solver telemetry included). `paperrepro -json` writes one per run; the
// BENCH_*.json trajectory files are these documents.
type Manifest struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Command string `json:"command"`

	Args  []string          `json:"args,omitempty"`
	Flags map[string]string `json:"flags,omitempty"`
	Seed  int64             `json:"seed,omitempty"`

	// GeneratedAt is RFC3339; ElapsedMS the run wall time. Both are
	// omitted from golden-test documents, which must be byte-stable.
	GeneratedAt string       `json:"generated_at,omitempty"`
	ElapsedMS   float64      `json:"elapsed_ms,omitempty"`
	Env         *Environment `json:"env,omitempty"`

	Tables []Table `json:"tables"`

	// Metrics is the Default-registry snapshot at write time: counters
	// and gauges as numbers, histograms as HistogramSnapshot documents.
	Metrics map[string]interface{} `json:"metrics,omitempty"`
}

// NewManifest starts a manifest for the named command with the current
// schema stamp.
func NewManifest(command string) *Manifest {
	return &Manifest{Schema: ManifestSchema, Version: ManifestVersion, Command: command}
}

// AddTable appends one table; rows should be a slice of JSON-tagged row
// structs. Returns the manifest for chaining.
func (m *Manifest) AddTable(name, title string, rows interface{}) *Manifest {
	m.Tables = append(m.Tables, Table{Name: name, Title: title, Rows: rows})
	return m
}

// Table returns the named table, or nil.
func (m *Manifest) Table(name string) *Table {
	for i := range m.Tables {
		if m.Tables[i].Name == name {
			return &m.Tables[i]
		}
	}
	return nil
}

// Encode writes the manifest as indented JSON with a trailing newline —
// stable, line-diffable output.
func (m *Manifest) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the manifest to path (0644, truncating).
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing manifest to %s: %w", path, err)
	}
	return f.Close()
}

// DecodeManifest parses a manifest and verifies its schema stamp: a
// missing or foreign schema string, or a version other than
// ManifestVersion, is an error — never a silently misread document.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: decoding manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("obs: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("obs: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	return &m, nil
}
