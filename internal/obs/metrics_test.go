package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter non-zero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge non-zero")
	}
	var h *Histogram
	h.Observe(7) // must not panic
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("solve.explored")
	c.Add(100)
	c.Inc()
	if c.Value() != 101 {
		t.Fatalf("counter = %d, want 101", c.Value())
	}
	if r.Counter("solve.explored") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Add(-3)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("steps")
	for _, v := range []int64{0, 1, 1, 3, 4, 100, -2} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Max != 100 {
		t.Fatalf("max = %d, want 100", s.Max)
	}
	// The -2 observation clamps to 0 everywhere: bucket, sum and max.
	if s.Sum != 0+1+1+3+4+100 {
		t.Fatalf("sum = %d", s.Sum)
	}
	want := map[int64]int64{1: 2, 2: 2, 4: 1, 8: 1, 128: 1} // lt → count
	for _, b := range s.Buckets {
		if want[b.Lt] != b.Count {
			t.Errorf("bucket lt=%d count=%d, want %d", b.Lt, b.Count, want[b.Lt])
		}
		delete(want, b.Lt)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
}

// TestHistogramNegativeClamp is the regression test for the sum/bucket
// disagreement: Observe documented that negatives clamp into bucket 0,
// but the sum still subtracted them, so a negative-heavy histogram could
// report Sum < 0 against nonzero bucket counts.
func TestHistogramNegativeClamp(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("neg")
	h.Observe(-5)
	h.Observe(-1)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 2/0/0", s.Count, s.Sum, s.Max)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Lt != 1 || s.Buckets[0].Count != 2 {
		t.Fatalf("buckets = %+v, want one bucket lt=1 count=2", s.Buckets)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestSnapshotAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(2)
	r.Gauge("b.gauge").Set(-7)
	r.Histogram("c.hist").Observe(5)

	snap := r.Snapshot()
	if snap["a.count"].(int64) != 2 || snap["b.gauge"].(int64) != -7 {
		t.Fatalf("snapshot = %v", snap)
	}

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("handler output not JSON: %v", err)
	}
	if decoded["a.count"].(float64) != 2 {
		t.Fatalf("handler snapshot = %v", decoded)
	}
	hist := decoded["c.hist"].(map[string]interface{})
	if hist["count"].(float64) != 1 || hist["max"].(float64) != 5 {
		t.Fatalf("histogram document = %v", hist)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	c := NewCounter("obs_test.helper_counter")
	c.Inc()
	if Default.Counter("obs_test.helper_counter").Value() < 1 {
		t.Fatal("helper did not register on Default")
	}
	NewGauge("obs_test.helper_gauge").Set(1)
	NewHistogram("obs_test.helper_hist").Observe(1)
	snap := Default.Snapshot()
	for _, name := range []string{"obs_test.helper_counter", "obs_test.helper_gauge", "obs_test.helper_hist"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("Default snapshot missing %s", name)
		}
	}
}

// Observe and Add must stay allocation-free: they run on warm engine
// paths (per trial, per solve tick).
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.counter")
	h := r.Histogram("hot.hist")
	if n := testing.AllocsPerRun(100, func() {
		c.Add(3)
		h.Observe(17)
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op", n)
	}
}
