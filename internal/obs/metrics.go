// Package obs is the observability substrate of the reproduction: an
// allocation-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms), a span-based JSONL tracer with a pluggable
// sink, and the versioned run-manifest document that turns every table the
// commands print into a machine-readable, diffable artifact.
//
// The design constraint mirrors internal/solve: the engines' hot loops are
// 0-alloc, so every instrument usable from a hot path is a plain atomic
// operation on a pre-registered metric. Registration (the only map access)
// happens once, in package var initializers; Observe/Add/Set never
// allocate and never lock.
package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"net/http"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// usable; all methods are nil-safe so conditionally-wired metrics cost one
// branch when absent.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, worker count).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by delta (e.g. +1/-1 around a critical section).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds v ≤ 0,
// bucket i (i ≥ 1) holds 2^(i-1) ≤ v < 2^i. 64 buckets cover all of int64.
const histBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram for latencies and
// queue depths. Observe is two atomic adds and one atomic max — no locks,
// no allocation — so it is safe on warm paths (per-trial, per-solve; not
// per-search-node, where even an atomic would be measurable).
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value. Negative values clamp to 0 — bucket,
// sum and max all see the clamped value, so Snapshot().Sum can never
// disagree with (or run negative against) the bucket counts.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// HistogramBucket is one non-empty bucket of a snapshot: Count
// observations with value < Lt (and ≥ Lt/2, for Lt > 1).
type HistogramBucket struct {
	Lt    int64 `json:"lt"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a Histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the non-empty buckets. Counters may straddle a
// concurrent Observe; the snapshot is for telemetry, not accounting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			lt := int64(1)
			if i > 0 {
				lt = 1 << i
			}
			s.Buckets = append(s.Buckets, HistogramBucket{Lt: lt, Count: c})
		}
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution. Within the bucket holding the target rank the estimate
// interpolates linearly across the bucket's [2^(i-1), 2^i) range, then
// clamps to the exact observed Max — so p99 of a histogram whose largest
// value was 37 is never "64". When every observation landed in a single
// bucket the mean Sum/Count is the best (and, for constant data, exact)
// estimate, so all quantiles of single-bucket data return it. An empty
// histogram answers 0 for every quantile.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if len(s.Buckets) == 1 {
		mean := float64(s.Sum) / float64(s.Count)
		if mean > float64(s.Max) {
			mean = float64(s.Max)
		}
		return mean
	}
	rank := q * float64(s.Count)
	cum := float64(0)
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if rank <= next || b == s.Buckets[len(s.Buckets)-1] {
			// Bucket bounds: Lt==1 holds only v==0, Lt≥2 holds [Lt/2, Lt).
			lo, hi := float64(0), float64(0)
			if b.Lt > 1 {
				lo, hi = float64(b.Lt)/2, float64(b.Lt)
			}
			v := lo
			if b.Count > 0 {
				frac := (rank - cum) / float64(b.Count)
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
				v = lo + frac*(hi-lo)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		cum = next
	}
	return float64(s.Max)
}

// Registry is a named collection of metrics. Lookup is mutex-guarded and
// intended for registration time only; the returned metric pointers are
// the hot-path handles.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	refreshers map[string]func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		refreshers: make(map[string]func()),
	}
}

// Default is the process-wide registry the engines publish into and the
// /debug/metrics handler serves.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// NewCounter registers (or finds) a counter on the Default registry —
// the idiom for package-level metric vars.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers (or finds) a gauge on the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers (or finds) a histogram on the Default registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// RegisterRefresher installs a named callback run at the start of every
// Snapshot, before any value is read — the hook lazy gauges (runtime
// stats, occupancy mirrors) use to be fresh exactly when observed.
// Re-registering a name replaces its callback, so package-level wiring
// that runs more than once (a test building several servers) stays
// single-shot.
func (r *Registry) RegisterRefresher(name string, f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshers[name] = f
}

// Snapshot returns every metric's current value keyed by name: int64 for
// counters and gauges, HistogramSnapshot for histograms. The map
// marshals with sorted keys, so two snapshots diff cleanly. Registered
// refreshers run first (outside the lock — they may create metrics).
func (r *Registry) Snapshot() map[string]interface{} {
	r.mu.Lock()
	fs := make([]func(), 0, len(r.refreshers))
	for _, f := range r.refreshers {
		fs = append(fs, f)
	}
	r.mu.Unlock()
	for _, f := range fs {
		f()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]interface{}, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with sorted keys (the
// /debug/vars convention — encoding/json sorts map keys), one trailing
// newline.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ServeHTTP serves the snapshot — mount the registry on the -pprof mux
// (/debug/metrics) for live inspection of a long solve.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = r.WriteJSON(w)
}
