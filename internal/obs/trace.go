package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attrs are the key/value payload of one trace event. Maps allocate, so
// callers on warm paths guard emission with Tracer/Span nil checks (or
// Monitor.Tracing in package solve) before building one.
type Attrs map[string]interface{}

// Tracer emits JSONL trace events — solver spans, incumbent improvements,
// cancellations, per-trial routing stats — to a pluggable sink. One event
// per line, each a self-contained JSON object, so the stream is tail-able
// and greppable while a long solve runs. All methods are safe on a nil
// receiver: tracing disabled is a nil *Tracer, not a branch at every call
// site.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	ids   atomic.Int64
	err   error
}

// NewTracer wraps sink as a tracer. A nil sink returns a nil tracer
// (tracing disabled).
func NewTracer(sink io.Writer) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{w: sink, start: time.Now()}
}

// traceEvent is the wire form of one line.
type traceEvent struct {
	// MS is milliseconds since the tracer was created.
	MS   float64 `json:"ms"`
	Type string  `json:"type"` // "span_start", "span_end", "event"
	Name string  `json:"name"`
	// Span correlates events of one span; 0 for tracer-level events.
	Span  int64 `json:"span,omitempty"`
	Attrs Attrs `json:"attrs,omitempty"`
}

// emit serializes one event under the sink mutex. Sink errors are sticky
// and silently stop emission: tracing is an aid, never a reason to fail
// the computation.
func (t *Tracer) emit(typ, name string, span int64, attrs Attrs) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	data, err := json.Marshal(traceEvent{
		MS:    float64(time.Since(t.start)) / float64(time.Millisecond),
		Type:  typ,
		Name:  name,
		Span:  span,
		Attrs: attrs,
	})
	if err != nil {
		t.err = err
		return
	}
	data = append(data, '\n')
	if _, err := t.w.Write(data); err != nil {
		t.err = err
	}
}

// Err returns the sticky sink error, if any (for end-of-run reporting).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Event emits a tracer-level event outside any span.
func (t *Tracer) Event(name string, attrs Attrs) {
	t.emit("event", name, 0, attrs)
}

// StartSpan opens a span and emits its span_start event. On a nil tracer
// it returns a nil span, whose methods no-op.
func (t *Tracer) StartSpan(name string, attrs Attrs) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, id: t.ids.Add(1), name: name, start: time.Now()}
	t.emit("span_start", name, s.id, attrs)
	return s
}

// Span is one traced operation (a solve, a simulation batch). Events
// emitted through it carry its id, so a multi-solver run's interleaved
// lines reassemble per solver.
type Span struct {
	t     *Tracer
	id    int64
	name  string
	start time.Time
}

// Event emits an event inside the span.
func (s *Span) Event(name string, attrs Attrs) {
	if s == nil {
		return
	}
	s.t.emit("event", name, s.id, attrs)
}

// End closes the span, stamping elapsed_ms into the attrs (a nil attrs is
// promoted to a fresh map).
func (s *Span) End(attrs Attrs) {
	if s == nil {
		return
	}
	if attrs == nil {
		attrs = Attrs{}
	}
	attrs["elapsed_ms"] = float64(time.Since(s.start)) / float64(time.Millisecond)
	s.t.emit("span_end", s.name, s.id, attrs)
}
