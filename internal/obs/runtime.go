package obs

import "runtime"

// RegisterRuntimeGauges wires Go runtime health gauges into r, refreshed
// on every Snapshot (and therefore on every /debug/metrics scrape and
// every manifest metrics block):
//
//	runtime.goroutines      live goroutine count
//	runtime.heap_bytes      bytes of live heap objects (MemStats.HeapAlloc)
//	runtime.gc_pauses_total completed GC cycles since process start
//
// A serving benchmark scrapes these before and after a run, so a latency
// spike in the client-side histograms can be read against "the heap grew
// 400 MB and the collector ran 12 times" instead of guessed at.
// Registration is idempotent per registry (the refresher is named).
func RegisterRuntimeGauges(r *Registry) {
	goroutines := r.Gauge("runtime.goroutines")
	heap := r.Gauge("runtime.heap_bytes")
	gcCycles := r.Gauge("runtime.gc_pauses_total")
	r.RegisterRefresher("runtime", func() {
		goroutines.Set(int64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(int64(ms.HeapAlloc))
		gcCycles.Set(int64(ms.NumGC))
	})
}
