package obs

import (
	"math"
	"testing"
)

// TestQuantileEmpty: an empty histogram answers 0 for every quantile
// instead of NaN-ing or panicking — bench reports on a mix that produced
// no observations of some outcome class must still render.
func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
}

// TestQuantileSingleBucketExact: constant observations land in one bucket
// and every quantile must return the exact observed value, not a bucket
// bound — the "~24µs responses collapsing into a bucket" failure mode,
// inverted.
func TestQuantileSingleBucketExact(t *testing.T) {
	for _, v := range []int64{0, 1, 3, 24, 777, 1 << 40} {
		var h Histogram
		for i := 0; i < 100; i++ {
			h.Observe(v)
		}
		s := h.Snapshot()
		if len(s.Buckets) != 1 {
			t.Fatalf("v=%d: %d buckets, want 1", v, len(s.Buckets))
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if got := s.Quantile(q); got != float64(v) {
				t.Fatalf("v=%d: Quantile(%g) = %g, want exactly %d", v, q, got, v)
			}
		}
	}
}

// TestQuantileTwoPointMass: with observations in two known buckets the
// quantiles must fall inside the correct bucket's range and stay clamped
// to the observed max.
func TestQuantileTwoPointMass(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket [8,16)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket [512,1024)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	if p50 < 8 || p50 >= 16 {
		t.Fatalf("p50 = %g, want within [8,16)", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 512 || p99 > 1000 {
		t.Fatalf("p99 = %g, want within [512,1000] (clamped to max)", p99)
	}
	if got := s.Quantile(1); got != 1000 {
		t.Fatalf("p100 = %g, want the exact max 1000", got)
	}
}

// TestQuantileMonotoneFuzz: for seeded pseudo-random observation sets,
// p50 ≤ p95 ≤ p99 ≤ max must hold — the property the bench report's
// latency tables depend on.
func TestQuantileMonotoneFuzz(t *testing.T) {
	x := uint64(12345)
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for trial := 0; trial < 200; trial++ {
		var h Histogram
		n := int(next()%500) + 1
		shift := next() % 40
		for i := 0; i < n; i++ {
			h.Observe(int64(next() >> (24 + shift%40)))
		}
		s := h.Snapshot()
		prev := -1.0
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
			v := s.Quantile(q)
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("trial %d: Quantile(%g) = %g", trial, q, v)
			}
			if v < prev {
				t.Fatalf("trial %d: Quantile(%g) = %g < previous %g (not monotone)", trial, q, v, prev)
			}
			if v > float64(s.Max) {
				t.Fatalf("trial %d: Quantile(%g) = %g beyond max %d", trial, q, v, s.Max)
			}
			prev = v
		}
	}
}

// TestRuntimeGaugesRefreshOnSnapshot: registering the runtime gauges
// makes every Snapshot carry fresh goroutine/heap/GC values.
func TestRuntimeGaugesRefreshOnSnapshot(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	snap := r.Snapshot()
	for _, name := range []string{"runtime.goroutines", "runtime.heap_bytes", "runtime.gc_pauses_total"} {
		v, ok := snap[name].(int64)
		if !ok {
			t.Fatalf("snapshot missing %s: %v", name, snap[name])
		}
		if name != "runtime.gc_pauses_total" && v <= 0 {
			t.Fatalf("%s = %d, want > 0", name, v)
		}
	}
	// Re-registering must not duplicate the refresher (idempotent wiring).
	RegisterRuntimeGauges(r)
	r.mu.Lock()
	n := len(r.refreshers)
	r.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d refreshers after double registration, want 1", n)
	}
}
