package variants

import (
	"math/rand"
	"testing"

	"repro/internal/expansion"
)

func TestOmegaPorts(t *testing.T) {
	o := NewOmega(16) // base B8
	countPorted := 0
	for v := 0; v < o.Base.N(); v++ {
		switch p := o.Ports(v); p {
		case 0, 2:
			if p == 2 {
				countPorted++
			}
		default:
			t.Fatalf("unexpected port weight %d", p)
		}
	}
	// All inputs and outputs of B8: 16 nodes.
	if countPorted != 16 {
		t.Errorf("%d ported nodes, want 16", countPorted)
	}
}

func TestOmegaWholeNetworkBoundary(t *testing.T) {
	// With S = all nodes, C(S,S̄) = 0 and the boundary is the total port
	// count 2·(n/2) + 2·(n/2) = 2n.
	o := NewOmega(16)
	all := make([]int, o.Base.N())
	for v := range all {
		all[v] = v
	}
	if got := o.PortedBoundary(all); got != 32 {
		t.Errorf("whole-network ported boundary %d, want 2n = 32", got)
	}
}

func TestOmegaMinPortedBoundaryAgainstBruteForce(t *testing.T) {
	o := NewOmega(8) // base B4: 12 nodes, exhaustively enumerable
	n := o.Base.N()
	for k := 1; k <= 6; k++ {
		_, got := o.MinPortedBoundary(k)
		want := 1 << 30
		var set []int
		for mask := 0; mask < 1<<n; mask++ {
			if popcount(mask) != k {
				continue
			}
			set = set[:0]
			for v := 0; v < n; v++ {
				if mask>>v&1 == 1 {
					set = append(set, v)
				}
			}
			if b := o.PortedBoundary(set); b < want {
				want = b
			}
		}
		if got != want {
			t.Errorf("k=%d: B&B %d, brute force %d", k, got, want)
		}
	}
}

func TestSnirInequalityOnExactMinima(t *testing.T) {
	// §1.6: C log C ≥ 4k must hold at the exact minimum for every k.
	o := NewOmega(8)
	for k := 1; k <= 10; k++ {
		_, c := o.MinPortedBoundary(k)
		if !SnirInequalityHolds(c, k) {
			t.Errorf("k=%d: Snir inequality fails at C=%d", k, c)
		}
	}
}

func TestSnirInequalityOnWitnesses(t *testing.T) {
	// On larger Ω_n, sub-butterfly-like sets (interior components) are the
	// cheap sets; the inequality must survive them too.
	o := NewOmega(32) // base B16
	for d := 1; d <= 3; d++ {
		set := expansion.BnEdgeWitness(o.Base, d)
		c := o.PortedBoundary(set)
		if !SnirInequalityHolds(c, len(set)) {
			t.Errorf("d=%d: Snir inequality fails at C=%d, k=%d", d, c, len(set))
		}
	}
}

func TestSnirInequalityRandomSets(t *testing.T) {
	o := NewOmega(16)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(o.Base.N())
		set := rng.Perm(o.Base.N())[:k]
		if !SnirInequalityHolds(o.PortedBoundary(set), k) {
			t.Fatalf("Snir inequality fails on a random set (k=%d)", k)
		}
	}
}

func TestSnirInequalityEdgeCases(t *testing.T) {
	if !SnirInequalityHolds(0, 0) {
		t.Errorf("C=0,k=0 should hold")
	}
	if SnirInequalityHolds(0, 1) {
		t.Errorf("C=0,k=1 should fail")
	}
	if SnirInequalityHolds(2, 10) {
		t.Errorf("2·log2 = 2 < 40 should fail")
	}
}

func TestHongKungOnWitnessSets(t *testing.T) {
	// Lemma 4.10's witness sets are the hardest case: few input-side
	// separators guard many nodes. The bound k ≤ 2|D|log|D| must hold.
	f := NewFFT(16)
	for d := 1; d <= 3; d++ {
		set := expansion.BnNodeWitness(f.Base, d)
		holds, sep := f.VerifyHongKung(set)
		if !holds {
			t.Errorf("d=%d: Hong–Kung bound fails: k=%d, |D|=%d", d, len(set), len(sep))
		}
		// The separator can be at most k + inputs but should be far
		// smaller for these clustered sets.
		if len(sep) > len(set) {
			t.Errorf("d=%d: separator larger than the set itself", d)
		}
	}
}

func TestHongKungRandomSets(t *testing.T) {
	f := NewFFT(8)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(f.Base.N()-1)
		set := rng.Perm(f.Base.N())[:k]
		if holds, sep := f.VerifyHongKung(set); !holds {
			t.Fatalf("Hong–Kung fails: k=%d |D|=%d", k, len(sep))
		}
	}
}

func TestHongKungSeparatorIsMinimal(t *testing.T) {
	// For S = all outputs of Bn, the separator is a full level: |D| = n.
	f := NewFFT(8)
	sep := f.MinInputSeparator(f.Base.OutputNodes())
	if len(sep) != 8 {
		t.Errorf("separator for outputs has %d nodes, want 8", len(sep))
	}
	if !HongKungBoundHolds(8, len(sep)) {
		t.Errorf("k=8 ≤ 2·8·3 must hold")
	}
}

func TestHongKungBoundEdgeCases(t *testing.T) {
	if !HongKungBoundHolds(0, 0) || !HongKungBoundHolds(0, 1) {
		t.Errorf("k=0 should always hold")
	}
	if HongKungBoundHolds(1, 1) {
		t.Errorf("k=1, |D|=1 gives 2·1·0 = 0 < 1: must fail")
	}
	if !HongKungBoundHolds(4, 2) {
		t.Errorf("4 ≤ 2·2·1 should hold")
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
