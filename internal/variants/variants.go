// Package variants implements the two port-augmented butterfly variants the
// paper compares its expansion results against in §1.6:
//
//   - Snir's Ω_n, derived from B_{n/2} by giving every input node a pair of
//     input ports and every output node a pair of output ports. Its edge
//     expansion counts ports as cut edges: EE(Ω_n,k) = min over |S| = k of
//     C(S,S̄) + 2|L0∩S| + 2|L_{last}∩S|, and Snir proved C·log C ≥ 4k,
//     i.e. EE(Ω_n,k) ≥ (4−o(1))k/log k — the all-k analogue of the paper's
//     Lemma 4.2.
//
//   - Hong and Kung's FFT_n, derived from Bn by adding one input port per
//     input and one output port per output. Their red–blue pebble bound:
//     if every path from an input port to a set S of k nodes passes through
//     a node of the (not necessarily disjoint) set D, then k ≤ 2|D|·log|D|
//     — the §1.6 counterpart of NE(Bn,k) ≥ (1/2−o(1))k/log k.
//
// Both are implemented exactly: the ported boundary by a branch-and-bound
// mirroring package exact, and the Hong–Kung separator by minimum vertex
// cuts (package flow).
package variants

import (
	"math"

	"repro/internal/flow"
	"repro/internal/topology"
)

// Omega is Snir's Ω_n: structurally B_{n/2} plus port weights on its first
// and last levels.
type Omega struct {
	// Base is the underlying butterfly B_{n/2}.
	Base *topology.Butterfly
	n    int
}

// NewOmega builds Ω_n for n a power of two, n ≥ 4 (so the base butterfly
// B_{n/2} exists).
func NewOmega(n int) *Omega {
	return &Omega{Base: topology.NewButterfly(n / 2), n: n}
}

// Ports returns the port weight of node v: 2 for input and output nodes of
// the base butterfly, 0 otherwise.
func (o *Omega) Ports(v int) int {
	lvl := o.Base.Level(v)
	if lvl == 0 || lvl == o.Base.Dim() {
		return 2
	}
	return 0
}

// PortedBoundary returns C(S,S̄) + Σ_{v∈S} Ports(v), the Ω_n boundary of a
// concrete set.
func (o *Omega) PortedBoundary(set []int) int {
	inS := make([]bool, o.Base.N())
	for _, v := range set {
		inS[v] = true
	}
	c := 0
	for _, e := range o.Base.Edges() {
		if inS[e.U] != inS[e.V] {
			c++
		}
	}
	for _, v := range set {
		c += o.Ports(v)
	}
	return c
}

// MinPortedBoundary computes EE(Ω_n,k) exactly by branch and bound: edges
// between decided-in and decided-out nodes plus the ports of decided-in
// nodes are permanently paid, giving the admissible bound. Intended for
// enumerable sizes (base networks of a few dozen nodes).
func (o *Omega) MinPortedBoundary(k int) ([]int, int) {
	g := o.Base.Graph
	n := g.N()
	if k < 0 || k > n {
		panic("variants: set size out of range")
	}
	if k == 0 {
		return nil, 0
	}
	assign := make([]int8, n) // -1 undecided, 0 in, 1 out
	for i := range assign {
		assign[i] = -1
	}
	best := 1 << 30
	var bestSet []int
	chosen, perm := 0, 0

	var dfs func(idx int)
	dfs = func(idx int) {
		if perm >= best {
			return
		}
		if chosen+n-idx < k {
			return
		}
		if chosen == k {
			total := perm
			for v := 0; v < n; v++ {
				if assign[v] != 0 {
					continue
				}
				for _, u := range g.Neighbors(v) {
					if assign[u] == -1 {
						total++
					}
				}
			}
			if total < best {
				best = total
				bestSet = bestSet[:0]
				for v := 0; v < n; v++ {
					if assign[v] == 0 {
						bestSet = append(bestSet, v)
					}
				}
			}
			return
		}
		if idx == n {
			return
		}
		v := idx

		// Include v: pay its ports and edges to decided-out neighbors.
		delta := o.Ports(v)
		for _, u := range g.Neighbors(v) {
			if assign[u] == 1 {
				delta++
			}
		}
		assign[v] = 0
		chosen++
		perm += delta
		dfs(idx + 1)
		perm -= delta
		chosen--

		// Exclude v: pay edges to decided-in neighbors.
		delta = 0
		for _, u := range g.Neighbors(v) {
			if assign[u] == 0 {
				delta++
			}
		}
		assign[v] = 1
		perm += delta
		dfs(idx + 1)
		perm -= delta
		assign[v] = -1
	}
	dfs(0)
	out := make([]int, len(bestSet))
	copy(out, bestSet)
	return out, best
}

// SnirInequalityHolds checks Snir's bound C·log₂C ≥ 4k for a measured
// ported boundary C at set size k (trivially true for C ≥ 2^...; false
// would falsify §1.6).
func SnirInequalityHolds(c, k int) bool {
	if c <= 0 {
		return k == 0
	}
	return float64(c)*math.Log2(float64(c)) >= 4*float64(k)-1e-9
}

// FFT is Hong and Kung's FFT_n: Bn plus one input port per input node and
// one output port per output node.
type FFT struct {
	Base *topology.Butterfly
}

// NewFFT builds FFT_n over Bn.
func NewFFT(n int) *FFT {
	return &FFT{Base: topology.NewButterfly(n)}
}

// MinInputSeparator returns a minimum set D of nodes (possibly intersecting
// set) such that every path from an input to a node of set passes through
// D, computed by minimum vertex cut.
func (f *FFT) MinInputSeparator(set []int) []int {
	return flow.VertexSeparator(f.Base.N(), f.Base.Neighbors, f.Base.InputNodes(), set)
}

// HongKungBoundHolds checks k ≤ 2|D|·log₂|D| for the given separator size.
// For |D| ≤ 1 the bound degenerates (log 1 = 0) and only k = 0 satisfies
// it; the paper's regime has |D| ≥ 2.
func HongKungBoundHolds(k, d int) bool {
	if d <= 1 {
		return k == 0
	}
	return float64(k) <= 2*float64(d)*math.Log2(float64(d))+1e-9
}

// VerifyHongKung computes the minimum input separator of set and reports
// whether the §1.6 bound k ≤ 2|D|log|D| holds, returning the separator for
// inspection.
func (f *FFT) VerifyHongKung(set []int) (holds bool, separator []int) {
	sep := f.MinInputSeparator(set)
	return HongKungBoundHolds(len(set), len(sep)), sep
}
