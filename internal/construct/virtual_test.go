package construct

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestEvaluateVirtualParallelCtxMatchesSerial(t *testing.T) {
	p := mustBestPlan(t, 1<<10)
	wantCap, wantA := p.EvaluateVirtual()
	for _, workers := range []int{1, 3, 0} {
		gotCap, gotA, err := p.EvaluateVirtualParallelCtx(context.Background(), workers)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if gotCap != wantCap || gotA != wantA {
			t.Fatalf("workers=%d: got (%d,%d), want (%d,%d)", workers, gotCap, gotA, wantCap, wantA)
		}
	}
}

func TestEvaluateVirtualParallelCtxCancelled(t *testing.T) {
	// A 2^20-column plan streams ~44M InA pairs; a pre-cancelled context
	// must abort it promptly with an error wrapping the cause.
	p := mustBestPlan(t, 1<<20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := p.EvaluateVirtualParallelCtx(ctx, 0)
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("cancelled evaluation took %v", took)
	}
	if err == nil {
		t.Fatal("cancelled evaluation returned nil error")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("error %q does not name the interruption", err)
	}
}

func TestVirtualBisectionCapacityBalanced(t *testing.T) {
	p := mustBestPlan(t, 1<<12)
	capacity, err := p.VirtualBisectionCapacity(context.Background(), 0)
	if err != nil {
		t.Fatalf("balanced plan rejected: %v", err)
	}
	if capacity != p.Capacity {
		t.Fatalf("measured capacity %d != predicted %d", capacity, p.Capacity)
	}
}

func TestVirtualBisectionCapacityUnbalancedPlanErrors(t *testing.T) {
	// Regression for the old panic("core: virtual plan is not balanced"):
	// corrupt one component quota so |A| misses N/2 by one node, and
	// check the error names n, |A|, and N/2 instead of panicking.
	p := mustBestPlan(t, 1<<12)
	corrupted := false
	for i := range p.quotas {
		if p.quotas[i].KA > 0 {
			p.quotas[i].KA--
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no component quota to corrupt")
	}
	_, err := p.VirtualBisectionCapacity(context.Background(), 0)
	if err == nil {
		t.Fatal("unbalanced plan accepted")
	}
	msg := err.Error()
	for _, want := range []string{"n=4096", "|A|=", "N/2="} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
