package construct

import (
	"testing"

	"repro/internal/heuristic"
	"repro/internal/topology"
)

func TestColumnBisection(t *testing.T) {
	// Folklore: capacity exactly n, exact bisection (§1.4).
	for _, n := range []int{4, 8, 16, 32} {
		b := topology.NewButterfly(n)
		c := ColumnBisection(b)
		if !c.IsBisection() {
			t.Errorf("B%d: column cut is not a bisection", n)
		}
		if got := c.Capacity(); got != n {
			t.Errorf("B%d: column cut capacity %d, want %d", n, got, n)
		}
		w := topology.NewWrappedButterfly(n)
		cw := ColumnBisection(w)
		if !cw.IsBisection() || cw.Capacity() != n {
			t.Errorf("W%d: column cut capacity %d, want %d", n, cw.Capacity(), n)
		}
	}
}

func TestCCCDimensionCut(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		c := topology.NewCCC(n)
		bis := CCCDimensionCut(c)
		if !bis.IsBisection() {
			t.Errorf("CCC%d: not a bisection", n)
		}
		if got := bis.Capacity(); got != n/2 {
			t.Errorf("CCC%d: capacity %d, want %d", n, got, n/2)
		}
	}
}

func TestPlanMatchesMaterializedCut(t *testing.T) {
	// The predicted capacity and exact balance must match the real cut for
	// every valid (n, j).
	for _, n := range []int{16, 64, 256, 1024} {
		b := topology.NewButterfly(n)
		for j := 2; j*j <= n; j *= 2 {
			p, ok := PlanButterflyBisection(n, j)
			if !ok {
				continue
			}
			c := p.Build(b)
			if !c.IsBisection() {
				t.Errorf("n=%d j=%d: not a bisection (%d/%d)", n, j, c.SizeS(), c.SizeSbar())
			}
			if c.Imbalance() != 0 {
				t.Errorf("n=%d j=%d: imbalance %d, want exact bisection", n, j, c.Imbalance())
			}
			if got := c.Capacity(); got != p.Capacity {
				t.Errorf("n=%d j=%d: measured capacity %d, predicted %d", n, j, got, p.Capacity)
			}
		}
	}
}

func TestVirtualMatchesMaterialized(t *testing.T) {
	for _, n := range []int{64, 256} {
		b := topology.NewButterfly(n)
		p := mustBestPlan(t, n)
		c := p.Build(b)
		vcap, vsize := p.EvaluateVirtual()
		if vcap != c.Capacity() {
			t.Errorf("n=%d: virtual capacity %d, materialized %d", n, vcap, c.Capacity())
		}
		if vsize != c.SizeS() {
			t.Errorf("n=%d: virtual |A| %d, materialized %d", n, vsize, c.SizeS())
		}
	}
}

func TestFolkloreRecoveredAtJ2(t *testing.T) {
	// j = 2 with (a,b) = (1,1) reproduces the folklore column-cut capacity.
	p, ok := PlanButterflyBisection(64, 2)
	if !ok {
		t.Fatalf("plan failed")
	}
	if p.Capacity != 64 {
		t.Errorf("j=2 capacity %d, want n = 64", p.Capacity)
	}
}

func TestSubFolkloreBeatsN(t *testing.T) {
	// The headline: for large n the best plan's capacity is strictly below
	// n, refuting the folklore BW(Bn) = n. At n = 2^15 the ratio should be
	// within ~15% of 2(√2−1) ≈ 0.828.
	cases := []struct {
		n        int
		maxRatio float64
	}{
		{1 << 12, 1.0}, // first sub-n sizes
		{1 << 15, 0.95},
		{1 << 25, 0.92},
	}
	for _, tc := range cases {
		p := mustBestPlan(t, tc.n)
		if p.Ratio >= tc.maxRatio {
			t.Errorf("n=2^%d: best ratio %.4f, want < %.2f (plan j=%d a=%d b=%d)",
				p.Dim, p.Ratio, tc.maxRatio, p.J, p.A, p.B)
		}
		if p.Ratio <= TheoreticalRatio {
			t.Errorf("n=2^%d: ratio %.4f at or below the theoretical limit %.4f — impossible",
				p.Dim, p.Ratio, TheoreticalRatio)
		}
	}
}

func TestSubFolkloreVirtualBalanceLarge(t *testing.T) {
	// Stream-verify an actual sub-n bisection on a large virtual butterfly.
	n := 1 << 15
	p := mustBestPlan(t, n)
	capacity, sizeA := p.EvaluateVirtual()
	if capacity != p.Capacity {
		t.Errorf("virtual capacity %d, predicted %d", capacity, p.Capacity)
	}
	N := n * (p.Dim + 1)
	if sizeA != N/2 {
		t.Errorf("|A| = %d, want exact half %d", sizeA, N/2)
	}
	if capacity >= n {
		t.Errorf("capacity %d did not beat folklore n = %d", capacity, n)
	}
}

func TestHeuristicCannotBeatConstruction(t *testing.T) {
	// On a size where the heuristic is strong (B64), FM multi-start must
	// not find a bisection cheaper than the best plan (which here is the
	// folklore n, since 64 columns are too few for the sub-n effect).
	b := topology.NewButterfly(64)
	p := mustBestPlan(t, 64)
	h := heuristic.Bisect(b.Graph, heuristic.BisectOptions{Starts: 12, Seed: 3})
	if h.Capacity() < p.Capacity-8 {
		t.Errorf("heuristic %d is far below construction %d: construction is not near-optimal",
			h.Capacity(), p.Capacity)
	}
}

func TestRatioMonotoneImprovement(t *testing.T) {
	// As n grows the best achievable ratio must not get worse.
	prev := 2.0
	for d := 6; d <= 20; d += 2 {
		p := mustBestPlan(t, 1<<d)
		if p.Ratio > prev+1e-9 {
			t.Errorf("ratio worsened at n=2^%d: %.4f after %.4f", d, p.Ratio, prev)
		}
		prev = p.Ratio
	}
}

func TestLemma216Route(t *testing.T) {
	// The paper's own chain: with BW(MOS_{2,2},M2) = 2 the j = 2 bound is
	// 2·2/4 + 4/2 = 3 (worse than folklore!), and beating 1.0 needs j ≥ 8
	// with log n ≥ j³+2j−1 = 527 — far beyond materializable sizes. This
	// is DESIGN.md §2's substitution rationale, pinned as a test.
	if got := Lemma216Ratio(2, 2); got != 3.0 {
		t.Errorf("j=2 ratio %v, want 3.0", got)
	}
	if got := Lemma216MinLogN(2); got != 11 {
		t.Errorf("j=2 min log n %d, want 11", got)
	}
	if got := Lemma216MinLogN(4); got != 71 {
		t.Errorf("j=4 min log n %d, want 71", got)
	}
	// With the true M2 capacities the lemma bound crosses below 1.0 at
	// some j (capacity ratio → √2−1, so bound → 2(√2−1) + 4/j): j = 8
	// gives 2·(28/64) + 0.5 = 1.375, j = 16 gives 2·(110/256) + 0.25 ≈
	// 1.109, j = 32 gives ≈ 0.961 < 1 — at log n ≥ 32831.
	if got := Lemma216Ratio(32, 428); got >= 1.0 {
		t.Errorf("j=32 lemma ratio %v, want < 1", got)
	}
	if got := Lemma216Ratio(16, 110); got < 1.0 {
		t.Errorf("j=16 lemma ratio %v, want ≥ 1", got)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, ok := PlanButterflyBisection(16, 8); ok {
		t.Errorf("j²>n should be rejected")
	}
	if _, ok := PlanButterflyBisection(15, 2); ok {
		t.Errorf("non-power-of-two n should be rejected")
	}
	if _, ok := PlanButterflyBisection(64, 3); ok {
		t.Errorf("non-power-of-two j should be rejected")
	}
	p, _ := PlanButterflyBisection(16, 2)
	defer func() {
		if recover() == nil {
			t.Errorf("mismatched Build did not panic")
		}
	}()
	p.Build(topology.NewButterfly(32))
}
