// Package construct builds the explicit cuts the paper's upper bounds rest
// on: the folklore column bisections of Bn and Wn, the dimension cut of
// CCCn, and — the headline — a bisection of Bn with capacity strictly below
// n, realizing the Theorem 2.20 upper bound BW(Bn) ≤ 2(√2−1)n + o(n).
//
// The sub-n bisection follows the paper's §2 construction, applied directly
// on Bn rather than through the B_{n²} detour of Lemma 2.16 (see DESIGN.md):
// columns are classified by their first log j bits (class p) and last log j
// bits (class s); the top log j levels go to side A when s < a, the bottom
// log j levels when p < b, and each middle component — a connected component
// of Bn[log j, log n − log j], compact by Lemma 2.9 — is placed according to
// its (s,p) type. Mixed components cost one edge group (2n/j² edges) on
// either side, and by the Lemma 2.15 frontier argument any prefix of a mixed
// component can sit in A at the same cost, which is how the cut is balanced
// into an exact bisection. Choosing the class counts (a,b) near √(1/2)·j
// makes the group count approach f(x,y)·j² = (√2−1)j², so the capacity
// approaches 2(√2−1)n as j and log n grow.
package construct

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/bitutil"
	"repro/internal/cut"
	"repro/internal/obs"
	"repro/internal/topology"
)

// Registry metrics of the virtual plan evaluator: whole-plan counts only
// (the per-column loop is the hot path and stays untouched).
var (
	metricVirtualEvals     = obs.NewCounter("construct.virtual_evals")
	metricVirtualCancelled = obs.NewCounter("construct.virtual_evals_cancelled")
	metricVirtualColumns   = obs.NewCounter("construct.virtual_columns")
)

// ColumnBisection returns the folklore bisection of Bn or Wn: S is the set
// of nodes whose column number starts with 0. Its capacity is exactly n
// (the cross edges between levels 0 and 1), which is why BW ≤ n was the
// folklore belief for Bn and is the true value for Wn.
func ColumnBisection(b *topology.Butterfly) *cut.Cut {
	side := make([]bool, b.N())
	half := b.Inputs() / 2
	for v := 0; v < b.N(); v++ {
		side[v] = b.Column(v) < half
	}
	return cut.New(b.Graph, side)
}

// CCCDimensionCut returns the bisection of CCCn cutting cube dimension 1:
// S is the set of nodes whose cycle label starts with 0. Its capacity is
// n/2, matching BW(CCCn) = n/2 (Lemma 3.3).
func CCCDimensionCut(c *topology.CCC) *cut.Cut {
	side := make([]bool, c.N())
	half := c.Cycles() / 2
	for v := 0; v < c.N(); v++ {
		side[v] = c.CycleLabel(v) < half
	}
	return cut.New(c.Graph, side)
}

// compQuota records how one middle component is split: KA of its nodes go to
// side A, filled from its top level when TopInA and from its bottom level
// otherwise (the Lemma 2.15 frontier shape).
type compQuota struct {
	KA     int
	TopInA bool
}

// Plan is a fully determined sub-n bisection of Bn: the class counts (A,B),
// the per-component quotas, and the predicted capacity. Build materializes
// it; InA evaluates it virtually for networks too large to materialize.
type Plan struct {
	N    int `json:"n"`   // columns
	Dim  int `json:"dim"` // log n
	J    int `json:"j"`   // classes per side (power of two)
	LogJ int `json:"log_j"`
	// A and B are |X| and |Y|: side-A class counts for suffix and prefix
	// classes.
	A int `json:"a"`
	B int `json:"b"`

	Groups     int     `json:"groups"`      // capacity in units of edge groups
	GroupEdges int     `json:"group_edges"` // edges per group: 2n/j²
	Capacity   int     `json:"capacity"`    // Groups · GroupEdges
	Ratio      float64 `json:"ratio"`

	quotas []compQuota // indexed by comp id p*J + s
}

// CompSize returns the node count of one middle component:
// (n/j²)·(log n − 2 log j + 1).
func (p *Plan) CompSize() int {
	return p.cols() * (p.Dim - 2*p.LogJ + 1)
}

func (p *Plan) cols() int { return p.N / (p.J * p.J) }

// PlanButterflyBisection computes, for the given n and j, the cheapest plan
// over all class counts (a,b): base cost a(j−b)+(j−a)b groups for the mixed
// components plus 2 groups per both-type component that must be flipped
// (wholly or partially) to reach exact balance. It returns false when the
// parameters are structurally invalid (j² > n or 2·log j > log n).
func PlanButterflyBisection(n, j int) (*Plan, bool) {
	if !bitutil.IsPow2(n) || !bitutil.IsPow2(j) || j < 2 {
		return nil, false
	}
	d := bitutil.Log2(n)
	if d > 48 { // n·(log n + 1) must stay well inside int64
		return nil, false
	}
	lj := bitutil.Log2(j)
	if j*j > n || 2*lj > d {
		return nil, false
	}
	cols := n / (j * j)
	compSize := cols * (d - 2*lj + 1)
	half := n * (d + 1) / 2
	regionA := n * lj / j // side-A nodes contributed per class chosen in the top (or bottom) region

	best := -1
	bestA, bestB := 0, 0
	for a := 0; a <= j; a++ {
		for b := 0; b <= j; b++ {
			bothA := a * b
			bothBar := (j - a) * (j - b)
			mixed := j*j - bothA - bothBar
			targetM := half - (a+b)*regionA
			if targetM < 0 || targetM > j*j*compSize {
				continue
			}
			low := bothA * compSize
			high := low + mixed*compSize
			groups := mixed
			switch {
			case targetM < low:
				flips := ceilDiv(low-targetM, compSize)
				if flips > bothA {
					continue
				}
				groups += 2 * flips
			case targetM > high:
				flips := ceilDiv(targetM-high, compSize)
				if flips > bothBar {
					continue
				}
				groups += 2 * flips
			}
			if best < 0 || groups < best {
				best, bestA, bestB = groups, a, b
			}
		}
	}
	if best < 0 {
		return nil, false
	}
	p := &Plan{
		N: n, Dim: d, J: j, LogJ: lj, A: bestA, B: bestB,
		Groups: best, GroupEdges: 2 * cols, Capacity: best * 2 * cols,
		Ratio: float64(best*2*cols) / float64(n),
	}
	p.assignQuotas()
	return p, true
}

// assignQuotas distributes the side-A middle nodes over the components so
// that the plan is an exact bisection at the predicted capacity.
func (p *Plan) assignQuotas() {
	j := p.J
	compSize := p.CompSize()
	half := p.N * (p.Dim + 1) / 2
	regionA := p.N * p.LogJ / p.J
	targetM := half - (p.A+p.B)*regionA

	p.quotas = make([]compQuota, j*j)
	type compRef struct{ pCls, sCls int }
	var bothA, bothBar, mixed []compRef
	for pc := 0; pc < j; pc++ {
		for sc := 0; sc < j; sc++ {
			ref := compRef{pc, sc}
			switch {
			case sc < p.A && pc < p.B:
				bothA = append(bothA, ref)
			case sc >= p.A && pc >= p.B:
				bothBar = append(bothBar, ref)
			default:
				mixed = append(mixed, ref)
			}
		}
	}
	idx := func(r compRef) int { return r.pCls*j + r.sCls }

	// Canonical placement: both-A components fully in A.
	for _, r := range bothA {
		p.quotas[idx(r)] = compQuota{KA: compSize, TopInA: true}
	}
	rem := targetM - len(bothA)*compSize
	if rem >= 0 {
		// Fill mixed components (A-adjacent end first), then flip both-Ā
		// components if the mixed pool is not enough.
		for _, r := range mixed {
			take := min(rem, compSize)
			p.quotas[idx(r)] = compQuota{KA: take, TopInA: r.sCls < p.A}
			rem -= take
		}
		for _, r := range bothBar {
			if rem == 0 {
				break
			}
			take := min(rem, compSize)
			p.quotas[idx(r)] = compQuota{KA: take, TopInA: true}
			rem -= take
		}
	} else {
		// Too many side-A nodes already: drain both-A components.
		deficit := -rem
		for _, r := range mixed {
			p.quotas[idx(r)] = compQuota{KA: 0, TopInA: r.sCls < p.A}
		}
		for _, r := range bothA {
			if deficit == 0 {
				break
			}
			take := min(deficit, compSize)
			p.quotas[idx(r)] = compQuota{KA: compSize - take, TopInA: true}
			deficit -= take
		}
		rem = 0
	}
	if rem != 0 {
		panic(fmt.Sprintf("construct: plan balance infeasible (rem=%d); PlanButterflyBisection should have rejected it", rem))
	}
}

// InA reports whether node ⟨w,i⟩ of Bn belongs to side A of the plan.
func (p *Plan) InA(w, i int) bool {
	d, lj := p.Dim, p.LogJ
	switch {
	case i <= lj-1:
		return bitutil.Suffix(w, d, lj) < p.A
	case i >= d-lj+1:
		return bitutil.Prefix(w, d, lj) < p.B
	default:
		s := bitutil.Suffix(w, d, lj)
		pc := bitutil.Prefix(w, d, lj)
		q := p.quotas[pc*p.J+s]
		cols := p.cols()
		m := bitutil.Mid(w, d, lj+1, d-lj)
		pos := (i-lj)*cols + m
		if q.TopInA {
			return pos < q.KA
		}
		return pos >= p.CompSize()-q.KA
	}
}

// Build materializes the plan as a cut of the given Bn, which must match the
// plan's n.
func (p *Plan) Build(b *topology.Butterfly) *cut.Cut {
	if b.Wraparound() || b.Inputs() != p.N {
		panic("construct: butterfly does not match plan")
	}
	side := make([]bool, b.N())
	for v := 0; v < b.N(); v++ {
		side[v] = p.InA(b.Column(v), b.Level(v))
	}
	return cut.New(b.Graph, side)
}

// EvaluateVirtual measures the plan on a virtual Bn without materializing
// the graph: it streams over all 2n·log n edges and N nodes, returning the
// measured capacity and the size of side A. It lets the experiments verify
// sub-n bisections on butterflies with tens of millions of edges.
func (p *Plan) EvaluateVirtual() (capacity, sizeA int) {
	n, d := p.N, p.Dim
	for i := 0; i < d; i++ {
		for w := 0; w < n; w++ {
			a := p.InA(w, i)
			if a != p.InA(w, i+1) {
				capacity++
			}
			if a != p.InA(bitutil.FlipBit(w, d, i+1), i+1) {
				capacity++
			}
			if a {
				sizeA++
			}
		}
	}
	// The loop above counts side-A nodes on levels 0..d−1; add level d.
	for w := 0; w < n; w++ {
		if p.InA(w, d) {
			sizeA++
		}
	}
	return capacity, sizeA
}

// maxPlanJ caps the class-grid sweep: the optimizer is O(j²) per candidate
// and plans with log j anywhere near log n / 2 have no middle region to
// balance through, so they are never optimal.
const maxPlanJ = 4096

// EvaluateVirtualParallel is EvaluateVirtual with the edge stream
// partitioned into column ranges across worker goroutines — the evaluation
// is embarrassingly parallel because InA is a pure function of (w,i). It
// returns exactly the same counts.
func (p *Plan) EvaluateVirtualParallel(workers int) (capacity, sizeA int) {
	capacity, sizeA, _ = p.EvaluateVirtualParallelCtx(context.Background(), workers)
	return capacity, sizeA
}

// evalCheckStride is how many columns each evaluation worker processes
// between context polls: a column is log n InA pairs, so the poll cost is
// amortized to nothing while cancellation still lands within milliseconds
// even on multi-million-column plans.
const evalCheckStride = 2048

// EvaluateVirtualParallelCtx is EvaluateVirtualParallel with cooperative
// cancellation: workers poll ctx every evalCheckStride columns (word
// kernel: every block). On cancellation the partial counts are
// meaningless, so it returns zeros and a non-nil error wrapping ctx.Err().
//
// Plans with at least one full word of columns run the word-parallel
// kernel (see word.go): membership masks for 64 columns at a time,
// popcount edge accounting, cache-resident blocks fanned over workers.
// Smaller or degenerate plans keep the per-column scalar loop.
func (p *Plan) EvaluateVirtualParallelCtx(ctx context.Context, workers int) (capacity, sizeA int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if p.wordEligible() {
		capacity, sizeA, err = p.evaluateWords(ctx, workers)
		metricVirtualEvals.Inc()
		if err != nil {
			metricVirtualCancelled.Inc()
			return 0, 0, err
		}
		metricVirtualColumns.Add(int64(p.N))
		return capacity, sizeA, nil
	}
	n, d := p.N, p.Dim
	if workers > n {
		workers = n
	}
	type partial struct{ capacity, sizeA int }
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		// Balanced ranges: ⌈n/workers⌉ vs ⌊n/workers⌋ columns per worker,
		// not n/workers with the whole remainder dumped on the last one.
		lo := n * wk / workers
		hi := n * (wk + 1) / workers
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			var cp, sz int
			untilPoll := evalCheckStride
			for w := lo; w < hi; w++ {
				untilPoll--
				if untilPoll <= 0 {
					if ctx.Err() != nil {
						return
					}
					untilPoll = evalCheckStride
				}
				for i := 0; i < d; i++ {
					a := p.InA(w, i)
					if a != p.InA(w, i+1) {
						cp++
					}
					if a != p.InA(bitutil.FlipBit(w, d, i+1), i+1) {
						cp++
					}
					if a {
						sz++
					}
				}
				if p.InA(w, d) {
					sz++
				}
			}
			parts[wk] = partial{cp, sz}
		}(wk, lo, hi)
	}
	wg.Wait()
	metricVirtualEvals.Inc()
	if cerr := ctx.Err(); cerr != nil {
		metricVirtualCancelled.Inc()
		return 0, 0, fmt.Errorf("construct: virtual evaluation of n=%d plan interrupted: %w", n, cerr)
	}
	metricVirtualColumns.Add(int64(n))
	for _, pt := range parts {
		capacity += pt.capacity
		sizeA += pt.sizeA
	}
	return capacity, sizeA, nil
}

// VirtualBisectionCapacity evaluates the plan virtually under ctx and
// certifies it is an exact bisection, returning the measured capacity. An
// unbalanced plan — a construction bug — yields an error naming the
// plan's n, the measured |A|, and the required N/2, instead of the panic
// this path used to take.
func (p *Plan) VirtualBisectionCapacity(ctx context.Context, workers int) (int, error) {
	capacity, sizeA, err := p.EvaluateVirtualParallelCtx(ctx, workers)
	if err != nil {
		return 0, err
	}
	nodes := p.N * (p.Dim + 1)
	if sizeA != nodes/2 {
		return 0, fmt.Errorf("construct: virtual plan for n=%d is not a bisection: |A|=%d, want N/2=%d",
			p.N, sizeA, nodes/2)
	}
	return capacity, nil
}

// BestPlan sweeps j over the valid powers of two and returns the cheapest
// plan for an n-column butterfly. For small n it returns the folklore
// column cut expressed as a plan (j = 2); the capacity drops below n once
// log n is large enough for a finer class grid. When no class grid fits —
// n below 4, not a power of two, or beyond the log n ≤ 48 plan range — it
// returns an error instead of the panic this path used to take.
func BestPlan(n int) (*Plan, error) {
	var best *Plan
	for j := 2; j*j <= n && j <= maxPlanJ; j *= 2 {
		p, ok := PlanButterflyBisection(n, j)
		if !ok {
			continue
		}
		if best == nil || p.Capacity < best.Capacity {
			best = p
		}
	}
	if best == nil {
		return nil, fmt.Errorf("construct: no valid bisection plan for n=%d (need a power of two with 4 ≤ n ≤ 2^48)", n)
	}
	return best, nil
}

// TheoreticalRatio is the Theorem 2.20 limit 2(√2−1) ≈ 0.828 that the plan
// ratios approach from above.
var TheoreticalRatio = 2 * (math.Sqrt2 - 1)

// Lemma216Ratio returns the capacity/n bound the paper's own Lemma 2.16
// route guarantees with class grid j: 2·BW(MOS_{j,j},M2)/j² + 4/j, where
// the M2-bisection capacity is supplied by the caller (package mos computes
// it; construct does not import mos to keep the dependency one-way).
func Lemma216Ratio(j, mosCapacity int) float64 {
	return 2*float64(mosCapacity)/float64(j*j) + 4/float64(j)
}

// Lemma216MinLogN returns the smallest log n at which Lemma 2.16's
// balancing precondition j³ + 2j − 1 ≤ log n holds — the reason the
// paper's route needs astronomically large butterflies before its bound
// beats the folklore n (j = 4 already demands log n ≥ 71), and the reason
// this reproduction balances the same cut directly on Bn instead (see
// DESIGN.md §2).
func Lemma216MinLogN(j int) int { return j*j*j + 2*j - 1 }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
