// Word-parallel virtual plan evaluation: the side-A membership of 64
// consecutive columns is computed as one uint64 mask per level, and the
// cut's edge groups are counted with popcounts on XORs of adjacent-level
// masks. This is what lets the constructed-bisection measurement (R1, the
// folklore refutation) run at memory bandwidth on 2^18–2^20-column
// butterflies instead of paying one InA call per node.
//
// The decomposition mirrors InA exactly:
//
//   - On the top log j levels, membership is the suffix threshold
//     Suffix(w) < a. Within a 64-aligned word the suffix either increases
//     linearly (j ≥ 64: the whole mask is a single contiguous window,
//     windowMask(a − s0)) or repeats with period j (j < 64: one
//     plan-constant pattern serves every word).
//   - On the bottom log j levels, membership is the prefix threshold
//     Prefix(w) < b — constant across a word when n/j ≥ 64, a window
//     otherwise.
//   - On the middle levels, the per-component quota comparison
//     pos = (i − log j)·cols + m  vs  KA reduces, for a fixed column, to a
//     *level threshold*: TopInA components are member on level offsets
//     [0, t), the rest on [t, midLevels). One 64-iteration pass per word
//     buckets those thresholds, after which every level's mask is one
//     AND-NOT/OR away from the previous level's.
//
// Cross edges flip column bit position i+1 (bit index d−i−1 from the LSB).
// Three cases, all resolved inside one aligned block of 2n/j columns:
//
//   - target level in the top (resp. bottom) region: the flipped bit lies
//     outside the suffix (resp. prefix) field, so the partner's membership
//     equals the straight neighbour's and the cross count equals the
//     straight count — no lookup at all;
//   - flipped bit index ≥ 6: the partner word is another word of the same
//     block (the block size is chosen as max(64, 2n/j) exactly so that
//     every middle-level partner stays in-block);
//   - flipped bit index < 6: the partner is in the same word, reached by
//     the butterfly permutation k ↦ k xor 2^idx of the mask bits.
package construct

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/obs"
)

// Registry metrics of the word evaluator: one uint64 membership mask
// computed = one word evaluated.
var (
	metricWordsEvaluated = obs.NewCounter("construct.words_evaluated")
	metricWordBlocks     = obs.NewCounter("construct.word_blocks")
)

// xorShuffleMask[b] selects the bits of a 64-bit mask whose in-word index
// has bit b clear; xorShuffle uses it to permute mask bits by k ↦ k xor 2^b.
var xorShuffleMask = [6]uint64{
	0x5555555555555555,
	0x3333333333333333,
	0x0f0f0f0f0f0f0f0f,
	0x00ff00ff00ff00ff,
	0x0000ffff0000ffff,
	0x00000000ffffffff,
}

// xorShuffle returns m with bit k moved to position k xor 2^b, for b < 6 —
// the in-word form of the butterfly's cross-edge column permutation.
func xorShuffle(m uint64, b int) uint64 {
	sh := uint(1) << uint(b)
	sel := xorShuffleMask[b]
	return (m&sel)<<sh | (m>>sh)&sel
}

// windowMask returns a mask of the c lowest bits, clamped to [0, 64].
func windowMask(c int) uint64 {
	if c <= 0 {
		return 0
	}
	if c >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(c) - 1
}

// maxWordScratchWords bounds the per-worker mask buffer: (log n + 1) level
// rows of blockWords uint64s each. Plans from BestPlan keep blocks at
// 2n/j ≤ 2√n columns, well under this; only hand-built degenerate plans
// (tiny j on a huge n) exceed it and fall back to the scalar path.
const maxWordScratchWords = 1 << 23

// wordEvaluator holds the plan-derived constants of the word kernel.
type wordEvaluator struct {
	p                       *Plan
	d, lj, j, a, b          int
	cols, midLevels, compSz int
	blockCols, blockWords   int
	sufPattern              uint64 // suffix-threshold pattern, valid when log j < 6
}

// wordEligible reports whether the plan can run the word kernel: at least
// one full word of columns and a cache-bounded scratch.
func (p *Plan) wordEligible() bool {
	if p.N < 64 {
		return false
	}
	blockCols := 1 << uint(p.Dim-p.LogJ+1)
	if blockCols < 64 {
		blockCols = 64
	}
	return (p.Dim+1)*(blockCols/64) <= maxWordScratchWords
}

func newWordEvaluator(p *Plan) *wordEvaluator {
	d, lj := p.Dim, p.LogJ
	e := &wordEvaluator{
		p: p, d: d, lj: lj, j: p.J, a: p.A, b: p.B,
		cols:      p.cols(),
		midLevels: d - 2*lj + 1,
		compSz:    p.CompSize(),
	}
	// Blocks of max(64, 2n/j) columns: large enough that every cross-edge
	// partner needed for a middle target level is inside the block.
	e.blockCols = 1 << uint(d-lj+1)
	if e.blockCols < 64 {
		e.blockCols = 64
	}
	e.blockWords = e.blockCols / 64
	if lj < 6 {
		// j divides 64, so the suffix pattern is identical in every
		// 64-aligned word: bit k set iff (k mod j) < a.
		for k := 0; k < 64; k++ {
			if k&(e.j-1) < e.a {
				e.sufPattern |= 1 << uint(k)
			}
		}
	}
	return e
}

// wordScratch is one worker's reusable buffers: the level-major mask rows
// of the current block and the middle-level threshold buckets. All hot-loop
// state lives here, so block evaluation allocates nothing.
type wordScratch struct {
	masks          []uint64 // (d+1) rows of blockWords masks
	clearAt, setAt []uint64 // indexed by middle-level offset
}

func (e *wordEvaluator) newScratch() *wordScratch {
	return &wordScratch{
		masks:   make([]uint64, (e.d+1)*e.blockWords),
		clearAt: make([]uint64, e.midLevels+1),
		setAt:   make([]uint64, e.midLevels+1),
	}
}

// fillWord computes the membership masks of columns [w0, w0+64) on every
// level, where w0 = blockBase + 64·wi, and stores them into the block's
// level rows at word index wi.
func (e *wordEvaluator) fillWord(s *wordScratch, blockBase, wi int) {
	d, lj, j := e.d, e.lj, e.j
	w0 := blockBase + wi*64
	bw := e.blockWords

	// Top region (levels 0..log j − 1): suffix threshold.
	var sufA uint64
	if lj >= 6 {
		sufA = windowMask(e.a - w0&(j-1))
	} else {
		sufA = e.sufPattern
	}

	// Bottom region (levels d − log j + 1..d): prefix threshold.
	var preB uint64
	if d-lj >= 6 {
		if w0>>uint(d-lj) < e.b {
			preB = ^uint64(0)
		}
	} else {
		sh := uint(d - lj)
		preB = windowMask((e.b - w0>>sh) << sh)
	}

	// Middle region: bucket each column's quota comparison as a level
	// threshold (see the package comment above).
	cols, midLevels, compSz := e.cols, e.midLevels, e.compSz
	for li := 0; li <= midLevels; li++ {
		s.clearAt[li] = 0
		s.setAt[li] = 0
	}
	var mid0 uint64
	for k := 0; k < 64; k++ {
		w := w0 + k
		q := e.p.quotas[w>>uint(d-lj)*j+w&(j-1)]
		m := w >> uint(lj) & (cols - 1)
		if q.TopInA {
			// Member iff li·cols + m < KA ⟺ li < ⌈(KA − m)/cols⌉.
			t := (q.KA - m + cols - 1) / cols
			if t > midLevels {
				t = midLevels
			}
			if t > 0 {
				mid0 |= 1 << uint(k)
				if t < midLevels {
					s.clearAt[t] |= 1 << uint(k)
				}
			}
		} else {
			// Member iff li·cols + m ≥ compSz − KA ⟺ li ≥ ⌈(compSz − KA − m)/cols⌉.
			num := compSz - q.KA - m
			t := 0
			if num > 0 {
				t = (num + cols - 1) / cols
			}
			if t <= 0 {
				mid0 |= 1 << uint(k)
			} else if t < midLevels {
				s.setAt[t] |= 1 << uint(k)
			}
		}
	}

	cur := mid0
	for i := 0; i <= d; i++ {
		var mask uint64
		switch {
		case i <= lj-1:
			mask = sufA
		case i >= d-lj+1:
			mask = preB
		default:
			if li := i - lj; li > 0 {
				cur = cur&^s.clearAt[li] | s.setAt[li]
			}
			mask = cur
		}
		s.masks[i*bw+wi] = mask
	}
}

// evalBlock evaluates one aligned block of blockCols columns: fills the
// per-level masks and counts side-A nodes plus straight and cross cut
// edges with popcounts. It allocates nothing.
func (e *wordEvaluator) evalBlock(s *wordScratch, blockBase int) (capacity, sizeA int) {
	d, lj, bw := e.d, e.lj, e.blockWords
	for wi := 0; wi < bw; wi++ {
		e.fillWord(s, blockBase, wi)
	}
	for _, m := range s.masks {
		sizeA += bits.OnesCount64(m)
	}
	for i := 0; i < d; i++ {
		rowI := s.masks[i*bw : (i+1)*bw]
		rowN := s.masks[(i+1)*bw : (i+2)*bw]
		straight := 0
		for wi := 0; wi < bw; wi++ {
			straight += bits.OnesCount64(rowI[wi] ^ rowN[wi])
		}
		capacity += straight
		tgt := i + 1
		idx := d - tgt // LSB bit index flipped by cross edges into level tgt
		switch {
		case tgt <= lj-1 || tgt >= d-lj+1:
			// The flipped bit is outside the suffix (resp. prefix) field
			// that decides membership on the target level, so every cross
			// partner matches its straight neighbour: same count.
			capacity += straight
		case idx >= 6:
			flip := 1 << uint(idx-6)
			for wi := 0; wi < bw; wi++ {
				capacity += bits.OnesCount64(rowI[wi] ^ rowN[wi^flip])
			}
		default:
			for wi := 0; wi < bw; wi++ {
				capacity += bits.OnesCount64(rowI[wi] ^ xorShuffle(rowN[wi], idx))
			}
		}
	}
	return capacity, sizeA
}

// EvaluateVirtualWords is EvaluateVirtual computed 64 columns at a time on
// one goroutine: identical counts, roughly an order of magnitude faster.
// The scalar EvaluateVirtual stays as the reference oracle; the property
// tests hold the two bit-for-bit equal across the whole (n, j) plan grid.
// Plans narrower than one word fall back to the scalar oracle.
func (p *Plan) EvaluateVirtualWords() (capacity, sizeA int) {
	if !p.wordEligible() {
		return p.EvaluateVirtual()
	}
	capacity, sizeA, _ = p.evaluateWords(context.Background(), 1)
	return capacity, sizeA
}

// evaluateWords fans aligned blocks over workers with balanced ranges.
// Cancellation is polled between blocks; on cancellation the partial
// counts are meaningless, so it returns zeros and ctx's error.
func (p *Plan) evaluateWords(ctx context.Context, workers int) (capacity, sizeA int, err error) {
	e := newWordEvaluator(p)
	numBlocks := p.N / e.blockCols
	if workers <= 0 {
		workers = 1
	}
	if workers > numBlocks {
		workers = numBlocks
	}
	type partial struct{ capacity, sizeA, words, blocks int }
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := numBlocks * wk / workers
		hi := numBlocks * (wk + 1) / workers
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			s := e.newScratch()
			var pt partial
			for blk := lo; blk < hi; blk++ {
				if ctx.Err() != nil {
					return
				}
				c, a := e.evalBlock(s, blk*e.blockCols)
				pt.capacity += c
				pt.sizeA += a
				pt.words += (e.d + 1) * e.blockWords
				pt.blocks++
			}
			parts[wk] = pt
		}(wk, lo, hi)
	}
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return 0, 0, fmt.Errorf("construct: virtual evaluation of n=%d plan interrupted: %w", p.N, cerr)
	}
	var words, blocks int
	for _, pt := range parts {
		capacity += pt.capacity
		sizeA += pt.sizeA
		words += pt.words
		blocks += pt.blocks
	}
	metricWordsEvaluated.Add(int64(words))
	metricWordBlocks.Add(int64(blocks))
	return capacity, sizeA, nil
}
