package construct

import (
	"testing"
)

func TestEvaluateVirtualParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{64, 1024, 1 << 14} {
		p := mustBestPlan(t, n)
		sc, ss := p.EvaluateVirtual()
		for _, workers := range []int{1, 2, 3, 7, 16} {
			pc, ps := p.EvaluateVirtualParallel(workers)
			if pc != sc || ps != ss {
				t.Errorf("n=%d workers=%d: parallel (%d,%d) ≠ serial (%d,%d)",
					n, workers, pc, ps, sc, ss)
			}
		}
		// Default worker count.
		pc, ps := p.EvaluateVirtualParallel(0)
		if pc != sc || ps != ss {
			t.Errorf("n=%d default workers: mismatch", n)
		}
	}
}

func TestEvaluateVirtualParallelMoreWorkersThanColumns(t *testing.T) {
	p := mustBestPlan(t, 16)
	sc, ss := p.EvaluateVirtual()
	pc, ps := p.EvaluateVirtualParallel(64)
	if pc != sc || ps != ss {
		t.Errorf("oversubscribed workers gave (%d,%d), want (%d,%d)", pc, ps, sc, ss)
	}
}

func TestLargeScaleVirtualParallel(t *testing.T) {
	// The headline artifact at scale: a million-column butterfly
	// (N = 22M nodes, 42M edges) evaluated virtually in parallel — the
	// constructed bisection is exactly balanced and strictly below the
	// folklore n.
	if testing.Short() {
		t.Skip("large-scale virtual evaluation")
	}
	n := 1 << 20
	p := mustBestPlan(t, n)
	capacity, sizeA := p.EvaluateVirtualParallel(0)
	if capacity != p.Capacity {
		t.Errorf("measured %d, predicted %d", capacity, p.Capacity)
	}
	if sizeA != n*(p.Dim+1)/2 {
		t.Errorf("|A| = %d, want exact half", sizeA)
	}
	if capacity >= n {
		t.Errorf("capacity %d did not beat folklore %d", capacity, n)
	}
}
