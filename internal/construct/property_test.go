package construct

import (
	"testing"
	"testing/quick"

	"repro/internal/cut"
	"repro/internal/heuristic"
	"repro/internal/topology"
)

// TestPlanPropertyPredictionMatchesMeasurement is the package's central
// property: for every valid (n, j) drawn at random, the plan's predicted
// capacity equals the materialized cut's measured capacity and the cut is
// an exact bisection.
func TestPlanPropertyPredictionMatchesMeasurement(t *testing.T) {
	f := func(dRaw, ljRaw uint8) bool {
		d := 4 + int(dRaw)%7   // log n in 4..10
		lj := 1 + int(ljRaw)%3 // log j in 1..3
		n := 1 << d
		j := 1 << lj
		p, ok := PlanButterflyBisection(n, j)
		if !ok {
			return true // invalid combination, nothing to check
		}
		b := topology.NewButterfly(n)
		c := p.Build(b)
		return c.Imbalance() == 0 && c.Capacity() == p.Capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPlanPropertyVirtualAgreesWithBuild checks InA-based streaming
// evaluation against materialization for random valid parameters.
func TestPlanPropertyVirtualAgreesWithBuild(t *testing.T) {
	f := func(dRaw, ljRaw uint8) bool {
		d := 4 + int(dRaw)%5
		lj := 1 + int(ljRaw)%2
		n := 1 << d
		p, ok := PlanButterflyBisection(n, 1<<lj)
		if !ok {
			return true
		}
		b := topology.NewButterfly(n)
		c := p.Build(b)
		vcap, vsize := p.EvaluateVirtual()
		return vcap == c.Capacity() && vsize == c.SizeS()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestColumnBisectionInvariantUnderXor verifies that the folklore cut's
// capacity is invariant under the Lemma 2.2 column-xor automorphisms that
// fix bit 1 — a symmetry property of the cut family.
func TestColumnBisectionInvariantUnderXor(t *testing.T) {
	b := topology.NewButterfly(16)
	base := ColumnBisection(b).Capacity()
	for mask := 0; mask < 8; mask++ { // masks with bit 1 (MSB) clear
		perm := b.ColumnXorAutomorphism(mask)
		side := make([]bool, b.N())
		orig := ColumnBisection(b)
		for v := 0; v < b.N(); v++ {
			side[perm[v]] = orig.InS(v)
		}
		if got := cut.New(b.Graph, side).Capacity(); got != base {
			t.Errorf("mask %d: capacity %d, want %d", mask, got, base)
		}
	}
}

// TestAnnealCannotBeatConstruction adds the second adversary from
// DESIGN.md's ablation list: simulated annealing also fails to beat the
// plan.
func TestAnnealCannotBeatConstruction(t *testing.T) {
	b := topology.NewButterfly(64)
	best := mustBestPlan(t, 64).Capacity
	a := heuristic.Anneal(b.Graph, heuristic.AnnealOptions{Seed: 7, Sweeps: 24})
	if a.Capacity() < best-8 {
		t.Errorf("annealing %d far below construction %d", a.Capacity(), best)
	}
}

// TestPlanGroupEdgesDivisibility: every plan's capacity is a multiple of
// its group size 2n/j², because all cut edges come in component groups.
func TestPlanGroupEdgesDivisibility(t *testing.T) {
	for d := 4; d <= 14; d++ {
		n := 1 << d
		for j := 2; j*j <= n; j *= 2 {
			p, ok := PlanButterflyBisection(n, j)
			if !ok {
				continue
			}
			if p.Capacity%p.GroupEdges != 0 {
				t.Errorf("n=%d j=%d: capacity %d not divisible by group size %d",
					n, j, p.Capacity, p.GroupEdges)
			}
			if p.Capacity != p.Groups*p.GroupEdges {
				t.Errorf("n=%d j=%d: capacity accounting inconsistent", n, j)
			}
		}
	}
}
