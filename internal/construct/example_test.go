package construct_test

import (
	"fmt"

	"repro/internal/construct"
)

func ExampleBestPlan() {
	// The Theorem 2.20 headline: an explicit bisection of B_{2^15} with
	// capacity strictly below the folklore value n, verified virtually.
	p, err := construct.BestPlan(1 << 15)
	if err != nil {
		fmt.Println(err)
		return
	}
	capacity, sizeA := p.EvaluateVirtualWords()
	fmt.Println("capacity:", capacity)
	fmt.Println("folklore:", 1<<15)
	fmt.Println("balanced:", sizeA == (1<<15)*(p.Dim+1)/2)
	// Output:
	// capacity: 30720
	// folklore: 32768
	// balanced: true
}
