package construct_test

import (
	"fmt"

	"repro/internal/construct"
)

func ExampleBestPlan() {
	// The Theorem 2.20 headline: an explicit bisection of B_{2^15} with
	// capacity strictly below the folklore value n, verified virtually.
	p := construct.BestPlan(1 << 15)
	capacity, sizeA := p.EvaluateVirtual()
	fmt.Println("capacity:", capacity)
	fmt.Println("folklore:", 1<<15)
	fmt.Println("balanced:", sizeA == (1<<15)*(p.Dim+1)/2)
	// Output:
	// capacity: 30720
	// folklore: 32768
	// balanced: true
}
