package construct

import (
	"context"
	"math/rand"
	"testing"
)

// mustBestPlan unwraps BestPlan for the many tests that use statically
// valid sizes.
func mustBestPlan(tb testing.TB, n int) *Plan {
	tb.Helper()
	p, err := BestPlan(n)
	if err != nil {
		tb.Fatalf("BestPlan(%d): %v", n, err)
	}
	return p
}

// TestBestPlanRejectsInvalidSizes pins the satellite fix: sizes with no
// valid class grid return an error instead of panicking.
func TestBestPlanRejectsInvalidSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 6, 100} {
		if p, err := BestPlan(n); err == nil {
			t.Errorf("BestPlan(%d) = %+v, want error", n, p)
		}
	}
	if _, err := BestPlan(4); err != nil {
		t.Errorf("BestPlan(4): %v", err)
	}
}

// TestWordEvaluatorMatchesScalarGrid is the central word-kernel property:
// for every valid (n, j) plan with n ≤ 2^12, the word evaluator's capacity
// and |A| are identical to the scalar oracle EvaluateVirtual's.
func TestWordEvaluatorMatchesScalarGrid(t *testing.T) {
	for d := 2; d <= 12; d++ {
		n := 1 << d
		for j := 2; j*j <= n; j *= 2 {
			p, ok := PlanButterflyBisection(n, j)
			if !ok {
				continue
			}
			wantCap, wantA := p.EvaluateVirtual()
			gotCap, gotA := p.EvaluateVirtualWords()
			if gotCap != wantCap || gotA != wantA {
				t.Errorf("n=%d j=%d: words (%d,%d) ≠ scalar (%d,%d)",
					n, j, gotCap, gotA, wantCap, wantA)
			}
		}
	}
}

// TestWordEvaluatorMatchesScalarBestPlans covers the plans the experiments
// actually run, including sizes where j ≥ 64 exercises the linear-suffix
// window path.
func TestWordEvaluatorMatchesScalarBestPlans(t *testing.T) {
	for _, d := range []int{6, 8, 10, 12, 13, 14} {
		p := mustBestPlan(t, 1<<d)
		wantCap, wantA := p.EvaluateVirtual()
		gotCap, gotA := p.EvaluateVirtualWords()
		if gotCap != wantCap || gotA != wantA {
			t.Errorf("n=2^%d (j=%d): words (%d,%d) ≠ scalar (%d,%d)",
				d, p.J, gotCap, gotA, wantCap, wantA)
		}
	}
}

// TestWordEvaluatorRandomQuotasFuzz randomizes the per-component quotas —
// including unbalanced, non-bisection assignments the planner would never
// emit — and checks the word kernel still agrees with the scalar oracle,
// serial and parallel (the parallel runs put the block workers under the
// race detector).
func TestWordEvaluatorRandomQuotasFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		d := 6 + rng.Intn(6) // log n in 6..11
		n := 1 << d
		var js []int
		for j := 2; j*j <= n; j *= 2 {
			js = append(js, j)
		}
		j := js[rng.Intn(len(js))]
		p, ok := PlanButterflyBisection(n, j)
		if !ok {
			continue
		}
		compSize := p.CompSize()
		for i := range p.quotas {
			p.quotas[i] = compQuota{
				KA:     rng.Intn(compSize + 1),
				TopInA: rng.Intn(2) == 0,
			}
		}
		wantCap, wantA := p.EvaluateVirtual()
		gotCap, gotA := p.EvaluateVirtualWords()
		if gotCap != wantCap || gotA != wantA {
			t.Fatalf("trial %d (n=%d j=%d): words (%d,%d) ≠ scalar (%d,%d)",
				trial, n, j, gotCap, gotA, wantCap, wantA)
		}
		parCap, parA, err := p.EvaluateVirtualParallelCtx(context.Background(), 4)
		if err != nil {
			t.Fatalf("trial %d: parallel error %v", trial, err)
		}
		if parCap != wantCap || parA != wantA {
			t.Fatalf("trial %d (n=%d j=%d): parallel words (%d,%d) ≠ scalar (%d,%d)",
				trial, n, j, parCap, parA, wantCap, wantA)
		}
	}
}

// TestWordEvaluatorWorkerCounts sweeps worker counts over a plan whose
// block count does not divide them evenly, pinning the balanced-range
// partitioning.
func TestWordEvaluatorWorkerCounts(t *testing.T) {
	p := mustBestPlan(t, 1<<12)
	wantCap, wantA := p.EvaluateVirtual()
	for _, workers := range []int{1, 2, 3, 5, 7, 16, 1024} {
		gotCap, gotA, err := p.EvaluateVirtualParallelCtx(context.Background(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gotCap != wantCap || gotA != wantA {
			t.Errorf("workers=%d: (%d,%d) ≠ (%d,%d)", workers, gotCap, gotA, wantCap, wantA)
		}
	}
}

// TestScalarFallbackBelowWordWidth: plans narrower than one word must keep
// working through the scalar path inside the parallel evaluator.
func TestScalarFallbackBelowWordWidth(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		p := mustBestPlan(t, n)
		if p.wordEligible() {
			t.Fatalf("n=%d unexpectedly word-eligible", n)
		}
		wantCap, wantA := p.EvaluateVirtual()
		gotCap, gotA, err := p.EvaluateVirtualParallelCtx(context.Background(), 3)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if gotCap != wantCap || gotA != wantA {
			t.Errorf("n=%d: scalar-fallback (%d,%d) ≠ oracle (%d,%d)", n, gotCap, gotA, wantCap, wantA)
		}
	}
}

func TestXorShuffle(t *testing.T) {
	for b := 0; b < 6; b++ {
		for _, m := range []uint64{0, ^uint64(0), 0xdeadbeefcafebabe, 1, 1 << 63} {
			got := xorShuffle(m, b)
			var want uint64
			for k := 0; k < 64; k++ {
				if m>>uint(k)&1 == 1 {
					want |= 1 << uint(k^(1<<uint(b)))
				}
			}
			if got != want {
				t.Fatalf("xorShuffle(%#x, %d) = %#x, want %#x", m, b, got, want)
			}
		}
	}
}

func TestWindowMask(t *testing.T) {
	cases := map[int]uint64{-3: 0, 0: 0, 1: 1, 7: 0x7f, 64: ^uint64(0), 90: ^uint64(0)}
	for c, want := range cases {
		if got := windowMask(c); got != want {
			t.Errorf("windowMask(%d) = %#x, want %#x", c, got, want)
		}
	}
}
