// Package flow implements maximum flow (Dinic's algorithm) on unit- and
// integer-capacity networks, plus the node-splitting reduction for vertex
// connectivity. The §1.6 Hong–Kung separator bound and the Menger-style
// disjoint-path checks of the experiments are built on it.
package flow

import "fmt"

// Network is a directed flow network under construction.
type Network struct {
	n     int
	heads []int32 // per arc: head node
	caps  []int32 // per arc: remaining capacity (paired with reverse arc)
	adj   [][]int32
}

// NewNetwork creates a flow network with n nodes and no arcs.
func NewNetwork(n int) *Network {
	return &Network{n: n, adj: make([][]int32, n)}
}

// N returns the node count.
func (f *Network) N() int { return f.n }

// AddArc adds a directed arc u→v with the given capacity (and its residual
// reverse arc with capacity 0). It returns the arc id.
func (f *Network) AddArc(u, v, capacity int) int {
	if u < 0 || u >= f.n || v < 0 || v >= f.n || capacity < 0 {
		panic(fmt.Sprintf("flow: bad arc %d→%d cap %d", u, v, capacity))
	}
	id := len(f.heads)
	f.heads = append(f.heads, int32(v), int32(u))
	f.caps = append(f.caps, int32(capacity), 0)
	f.adj[u] = append(f.adj[u], int32(id))
	f.adj[v] = append(f.adj[v], int32(id+1))
	return id
}

// AddEdge adds an undirected unit edge as a pair of unit arcs.
func (f *Network) AddEdge(u, v, capacity int) {
	f.AddArc(u, v, capacity)
	f.AddArc(v, u, capacity)
}

// MaxFlow computes the maximum s→t flow with Dinic's algorithm, mutating
// the residual capacities.
func (f *Network) MaxFlow(s, t int) int {
	if s == t {
		panic("flow: source equals sink")
	}
	total := 0
	level := make([]int32, f.n)
	iter := make([]int, f.n)
	queue := make([]int32, 0, f.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, aid := range f.adj[u] {
				v := f.heads[aid]
				if f.caps[aid] > 0 && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, limit int32) int32
	dfs = func(u int, limit int32) int32 {
		if u == t {
			return limit
		}
		for ; iter[u] < len(f.adj[u]); iter[u]++ {
			aid := f.adj[u][iter[u]]
			v := f.heads[aid]
			if f.caps[aid] <= 0 || level[v] != level[u]+1 {
				continue
			}
			pushed := dfs(int(v), min32(limit, f.caps[aid]))
			if pushed > 0 {
				f.caps[aid] -= pushed
				f.caps[aid^1] += pushed
				return pushed
			}
		}
		return 0
	}

	const inf = int32(1) << 30
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := dfs(s, inf)
			if pushed == 0 {
				break
			}
			total += int(pushed)
		}
	}
	return total
}

// MinCutSide returns, after MaxFlow, the set of nodes reachable from s in
// the residual network (the source side of a minimum cut).
func (f *Network) MinCutSide(s int) []bool {
	side := make([]bool, f.n)
	side[s] = true
	queue := []int32{int32(s)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, aid := range f.adj[u] {
			v := f.heads[aid]
			if f.caps[aid] > 0 && !side[v] {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// VertexSeparator computes a minimum set of nodes whose removal cuts every
// path from any source to any target in the undirected graph given by the
// adjacency function. Nodes listed in sources/targets may themselves be
// chosen (matching the Hong–Kung formulation, where D may intersect S).
// It uses the standard node-splitting reduction: node v becomes v_in→v_out
// with capacity 1; edges get infinite capacity in both directions; a super
// source feeds each source's in-node and each target's out-node drains to a
// super sink.
//
// adjacency: neighbors(v) lists the neighbors of v, 0 ≤ v < n.
func VertexSeparator(n int, neighbors func(v int) []int32, sources, targets []int) []int {
	const inf = 1 << 20
	// Node ids: v_in = 2v, v_out = 2v+1; super source 2n, super sink 2n+1.
	f := NewNetwork(2*n + 2)
	s, t := 2*n, 2*n+1
	splitArc := make([]int, n)
	for v := 0; v < n; v++ {
		splitArc[v] = f.AddArc(2*v, 2*v+1, 1)
		for _, u := range neighbors(v) {
			f.AddArc(2*v+1, 2*int(u), inf)
		}
	}
	for _, v := range sources {
		f.AddArc(s, 2*v, inf)
	}
	for _, v := range targets {
		f.AddArc(2*v+1, t, inf)
	}
	f.MaxFlow(s, t)
	side := f.MinCutSide(s)
	var sep []int
	for v := 0; v < n; v++ {
		// v is in the separator iff its split arc crosses the cut.
		if side[2*v] && !side[2*v+1] {
			sep = append(sep, v)
		}
	}
	return sep
}

// EdgeConnectivity computes the minimum number of edges separating the
// source set from the target set in an undirected unit-capacity graph.
func EdgeConnectivity(n int, neighbors func(v int) []int32, sources, targets []int) int {
	const inf = 1 << 20
	f := NewNetwork(n + 2)
	s, t := n, n+1
	for v := 0; v < n; v++ {
		for _, u := range neighbors(v) {
			// Each undirected edge (including parallels) appears once with
			// v < u across the adjacency lists.
			if v < int(u) {
				f.AddEdge(v, int(u), 1)
			}
		}
	}
	for _, v := range sources {
		f.AddArc(s, v, inf)
	}
	for _, v := range targets {
		f.AddArc(v, t, inf)
	}
	return f.MaxFlow(s, t)
}
