package flow

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestMaxFlowTiny(t *testing.T) {
	// s→a→t and s→b→t, unit capacities: flow 2.
	f := NewNetwork(4)
	f.AddArc(0, 1, 1)
	f.AddArc(1, 3, 1)
	f.AddArc(0, 2, 1)
	f.AddArc(2, 3, 1)
	if got := f.MaxFlow(0, 3); got != 2 {
		t.Errorf("flow = %d, want 2", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// s→a (cap 5), a→t (cap 3): flow 3.
	f := NewNetwork(3)
	f.AddArc(0, 1, 5)
	f.AddArc(1, 2, 3)
	if got := f.MaxFlow(0, 2); got != 3 {
		t.Errorf("flow = %d, want 3", got)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// The classic CLRS example: max flow 23.
	f := NewNetwork(6)
	f.AddArc(0, 1, 16)
	f.AddArc(0, 2, 13)
	f.AddArc(1, 2, 10)
	f.AddArc(2, 1, 4)
	f.AddArc(1, 3, 12)
	f.AddArc(3, 2, 9)
	f.AddArc(2, 4, 14)
	f.AddArc(4, 3, 7)
	f.AddArc(3, 5, 20)
	f.AddArc(4, 5, 4)
	if got := f.MaxFlow(0, 5); got != 23 {
		t.Errorf("flow = %d, want 23", got)
	}
}

func TestMinCutSideMatchesFlow(t *testing.T) {
	f := NewNetwork(4)
	f.AddArc(0, 1, 2)
	f.AddArc(1, 2, 1)
	f.AddArc(2, 3, 2)
	fl := f.MaxFlow(0, 3)
	if fl != 1 {
		t.Fatalf("flow = %d", fl)
	}
	side := f.MinCutSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Errorf("cut side wrong: %v", side)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	f := NewNetwork(3)
	f.AddArc(0, 1, 7)
	if got := f.MaxFlow(0, 2); got != 0 {
		t.Errorf("flow = %d, want 0", got)
	}
}

func TestMengerOnButterfly(t *testing.T) {
	// Menger/rearrangeability flavor: the minimum edge cut separating all
	// inputs of Bn from all outputs is 2n — every input has two
	// edge-disjoint escape routes and level 0→1 has 2n edges total.
	for _, n := range []int{4, 8, 16} {
		b := topology.NewButterfly(n)
		got := EdgeConnectivity(b.N(), b.Neighbors, b.InputNodes(), b.OutputNodes())
		if got != 2*n {
			t.Errorf("B%d: input/output edge connectivity %d, want %d", n, got, 2*n)
		}
	}
}

func TestVertexSeparatorInputsToOutputs(t *testing.T) {
	// The minimum vertex separator between the inputs and outputs of Bn is
	// n: any full level is a separator, and n node-disjoint input→output
	// paths exist (the column paths).
	for _, n := range []int{4, 8, 16} {
		b := topology.NewButterfly(n)
		sep := VertexSeparator(b.N(), b.Neighbors, b.InputNodes(), b.OutputNodes())
		if len(sep) != n {
			t.Errorf("B%d: separator size %d, want %d", n, len(sep), n)
		}
		// Removing the separator must disconnect inputs from outputs.
		if stillConnected(b, sep) {
			t.Errorf("B%d: separator does not separate", n)
		}
	}
}

func stillConnected(b *topology.Butterfly, sep []int) bool {
	blocked := make([]bool, b.N())
	for _, v := range sep {
		blocked[v] = true
	}
	seen := make([]bool, b.N())
	var queue []int
	for _, v := range b.InputNodes() {
		if !blocked[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range b.Neighbors(v) {
			if !seen[u] && !blocked[u] {
				seen[u] = true
				queue = append(queue, int(u))
			}
		}
	}
	for _, v := range b.OutputNodes() {
		if seen[v] {
			return true
		}
	}
	return false
}

func TestVertexSeparatorMayIncludeTargets(t *testing.T) {
	// Separating a single node from everything costs exactly min(degree, 1
	// via itself): the separator {v} itself is valid (Hong–Kung allows
	// D ∩ S ≠ ∅), so the answer is 1.
	b := topology.NewButterfly(4)
	v := b.Node(0, 1)
	sep := VertexSeparator(b.N(), b.Neighbors, b.InputNodes(), []int{v})
	if len(sep) != 1 {
		t.Errorf("separator size %d, want 1", len(sep))
	}
}

func TestEdgeConnectivityRandomAgainstCutEnum(t *testing.T) {
	// Cross-check max-flow min-cut against explicit cut enumeration on
	// small random graphs.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(4)
		type edge struct{ u, v int }
		var edges []edge
		adj := make([][]int32, n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, edge{u, v})
			adj[u] = append(adj[u], int32(v))
			adj[v] = append(adj[v], int32(u))
		}
		src, dst := 0, n-1
		got := EdgeConnectivity(n, func(v int) []int32 { return adj[v] }, []int{src}, []int{dst})
		// Enumerate all cuts with src on one side, dst on the other.
		want := 1 << 30
		for mask := 0; mask < 1<<n; mask++ {
			if mask>>src&1 != 1 || mask>>dst&1 != 0 {
				continue
			}
			capc := 0
			for _, e := range edges {
				if mask>>e.u&1 != mask>>e.v&1 {
					capc++
				}
			}
			if capc < want {
				want = capc
			}
		}
		if got != want {
			t.Fatalf("trial %d: flow %d, enumeration %d", trial, got, want)
		}
	}
}

func TestAddArcValidation(t *testing.T) {
	f := NewNetwork(2)
	for _, bad := range [][3]int{{-1, 0, 1}, {0, 2, 1}, {0, 1, -1}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddArc%v did not panic", bad)
				}
			}()
			f.AddArc(bad[0], bad[1], bad[2])
		}()
	}
	defer func() {
		if recover() == nil {
			t.Errorf("s==t did not panic")
		}
	}()
	f.MaxFlow(1, 1)
}
