// Package mos analyzes the M2-bisection width of the mesh of stars,
// following §2.2 of the paper: the function f(x,y) = x + y − min(1,2xy) on
// the domain D = {0 ≤ x,y ≤ 1, x+y ≥ 1} governs the capacity of cuts of
// MOS_{j,j} that bisect the middle level M2, its global minimum √2 − 1 is
// attained at x = y = √(1/2) (Lemma 2.18), and therefore
// BW(MOS_{j,j},M2)/j² → √2 − 1 (Lemma 2.19). This limit is the constant in
// the paper's headline result BW(Bn) = 2(√2−1)n + o(n).
package mos

import (
	"math"

	"repro/internal/cut"
	"repro/internal/topology"
)

// Limit is √2 − 1, the limit of BW(MOS_{j,j},M2)/j² (Lemma 2.19) and half
// the leading constant of BW(Bn)/n (Theorem 2.20).
var Limit = math.Sqrt2 - 1

// F is the paper's f(x,y) = x + y − min(1, 2xy) (Lemma 2.17). It equals
// C(g)/j² for the cheapest cut g of MOS_{j,j} that bisects M2 with
// |A∩M1| = xj and |A∩M3| = yj, for ⟨x,y⟩ in the domain D.
func F(x, y float64) float64 {
	return x + y - math.Min(1, 2*x*y)
}

// InDomain reports whether ⟨x,y⟩ lies in D = {0 ≤ x,y ≤ 1 and x+y ≥ 1}.
func InDomain(x, y float64) bool {
	return x >= 0 && x <= 1 && y >= 0 && y <= 1 && x+y >= 1
}

// SideCost returns the minimum capacity over cuts (A,Ā) of MOS_{j,k} with
// |A∩M1| = a, |A∩M3| = b and |A∩M2| = t. Middle nodes are independent: a
// middle node with both endpoints in A costs 0 in A and 2 in Ā, one with
// both in Ā costs 2 in A and 0 in Ā, and a mixed one costs 1 on either
// side; the cheapest placement fills A with both-A middles first, then
// mixed, then both-Ā.
func SideCost(j, k, a, b, t int) int {
	if a < 0 || a > j || b < 0 || b > k || t < 0 || t > j*k {
		panic("mos: side counts out of range")
	}
	bothA := a * b
	bothABar := (j - a) * (k - b)
	mixed := j*k - bothA - bothABar
	cost := mixed
	if t < bothA {
		cost += 2 * (bothA - t) // both-A middles forced into Ā
	}
	if t > bothA+mixed {
		cost += 2 * (t - bothA - mixed) // both-Ā middles forced into A
	}
	return cost
}

// Result describes an optimal M2-bisecting cut of MOS_{j,j}.
type Result struct {
	J        int `json:"j"`
	Capacity int `json:"capacity"` // BW(MOS_{j,j}, M2)
	// A and B are the optimal |A∩M1| and |A∩M3|; T the optimal |A∩M2|.
	A     int     `json:"a"`
	B     int     `json:"b"`
	T     int     `json:"t"`
	Ratio float64 `json:"ratio"` // Capacity / j²
}

// M2BisectionWidth computes BW(MOS_{j,j},M2) exactly by minimizing SideCost
// over all (a, b) and both admissible middle counts t ∈ {⌊j²/2⌋, ⌈j²/2⌉}.
// This is the closed-form counterpart of the paper's Lemma 2.17 argument,
// valid for every j ≥ 1 (the paper restricts to even j to keep j²/2
// integral; the floor/ceil handles odd j).
func M2BisectionWidth(j int) Result {
	if j < 1 {
		panic("mos: j must be positive")
	}
	m2 := j * j
	ts := []int{m2 / 2}
	if m2%2 == 1 {
		ts = append(ts, m2/2+1)
	}
	best := Result{J: j, Capacity: -1}
	for a := 0; a <= j; a++ {
		for b := 0; b <= j; b++ {
			for _, t := range ts {
				c := SideCost(j, j, a, b, t)
				if best.Capacity < 0 || c < best.Capacity {
					best = Result{J: j, Capacity: c, A: a, B: b, T: t}
				}
			}
		}
	}
	// Costs are symmetric under complementing A, so both (a,b) and
	// (j−a,j−b) are optimal; canonicalize as the paper does in Lemma 2.19,
	// assuming WLOG j ≤ |A∩(M1∪M3)|.
	if best.A+best.B < j {
		best.A, best.B, best.T = j-best.A, j-best.B, m2-best.T
	}
	best.Ratio = float64(best.Capacity) / float64(m2)
	return best
}

// M2BisectionWidthRect generalizes M2BisectionWidth to rectangular meshes
// MOS_{j,k} (the shape Lemma 2.11 embeds into): the exact minimum capacity
// over cuts bisecting the j·k middle nodes.
func M2BisectionWidthRect(j, k int) (capacity, a, b, t int) {
	if j < 1 || k < 1 {
		panic("mos: dimensions must be positive")
	}
	m2 := j * k
	ts := []int{m2 / 2}
	if m2%2 == 1 {
		ts = append(ts, m2/2+1)
	}
	capacity = -1
	for aa := 0; aa <= j; aa++ {
		for bb := 0; bb <= k; bb++ {
			for _, tt := range ts {
				c := SideCost(j, k, aa, bb, tt)
				if capacity < 0 || c < capacity {
					capacity, a, b, t = c, aa, bb, tt
				}
			}
		}
	}
	return capacity, a, b, t
}

// BuildCut materializes a concrete cut of MOS_{j,j} realizing the values in
// r: a of the M1 nodes and b of the M3 nodes go to A, and the t middle
// nodes placed in A are chosen cheapest-first (both-A, then mixed, then
// both-Ā). The returned cut bisects M2 and has capacity r.Capacity.
func BuildCut(m *topology.MeshOfStars, r Result) *cut.Cut {
	if m.J() != r.J || m.K() != r.J {
		panic("mos: mesh does not match result")
	}
	side := make([]bool, m.N())
	for a := 0; a < r.A; a++ {
		side[m.M1Node(a)] = true
	}
	for b := 0; b < r.B; b++ {
		side[m.M3Node(b)] = true
	}
	type mid struct {
		v    int
		cost int // cost of placing in A minus cost of placing in Ā
	}
	mids := make([]mid, 0, r.J*r.J)
	for a := 0; a < r.J; a++ {
		for b := 0; b < r.J; b++ {
			v := m.M2Node(a, b)
			inA := boolToInt(a >= r.A) + boolToInt(b >= r.B) // cut edges if v ∈ A
			inABar := boolToInt(a < r.A) + boolToInt(b < r.B)
			mids = append(mids, mid{v, inA - inABar})
		}
	}
	// Stable three-way selection: all cost −2 (both-A) first, then 0
	// (mixed), then +2 (both-Ā).
	placed := 0
	for _, want := range []int{-2, 0, 2} {
		for _, md := range mids {
			if placed == r.T {
				break
			}
			if md.cost == want {
				side[md.v] = true
				placed++
			}
		}
	}
	return cut.New(m.Graph, side)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Minimizer returns the optimal fractions (x,y) = (a/j, b/j) of an exact
// M2-bisection of MOS_{j,j}; Lemma 2.19 shows they converge to
// (√(1/2), √(1/2)) as j → ∞.
func Minimizer(j int) (x, y float64) {
	r := M2BisectionWidth(j)
	return float64(r.A) / float64(j), float64(r.B) / float64(j)
}
