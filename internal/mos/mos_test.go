package mos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cut"
	"repro/internal/topology"
)

func TestFKnownValues(t *testing.T) {
	cases := []struct{ x, y, want float64 }{
		{1, 1, 1},       // 1+1−min(1,2) = 1
		{0.5, 0.5, 0.5}, // 1−min(1,0.5) = 0.5
		{1, 0, 1},       // 1−0
		{0.5, 1, 0.5},   // 1.5−1
	}
	for _, c := range cases {
		if got := F(c.x, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("F(%g,%g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
	r := math.Sqrt(0.5)
	if got := F(r, r); math.Abs(got-Limit) > 1e-12 {
		t.Errorf("F(√½,√½) = %g, want √2−1 = %g", got, Limit)
	}
}

func TestLemma218Minimum(t *testing.T) {
	// f ≥ √2−1 everywhere on the domain D (Lemma 2.18), checked on a grid
	// and with random probes.
	for i := 0; i <= 200; i++ {
		for j := 0; j <= 200; j++ {
			x := float64(i) / 200
			y := float64(j) / 200
			if !InDomain(x, y) {
				continue
			}
			if F(x, y) < Limit-1e-12 {
				t.Fatalf("F(%g,%g) = %g below the proven minimum", x, y, F(x, y))
			}
		}
	}
	f := func(a, b uint16) bool {
		x := float64(a) / 65535
		y := float64(b) / 65535
		if !InDomain(x, y) {
			return true
		}
		return F(x, y) >= Limit-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSideCostAgainstBruteForceMiddles(t *testing.T) {
	// For fixed (a,b,t), SideCost must equal the true optimum over all
	// placements of t middles; verified by enumerating middle subsets.
	for _, jk := range [][2]int{{2, 2}, {2, 3}, {3, 3}} {
		j, k := jk[0], jk[1]
		m := topology.NewMeshOfStars(j, k)
		mids := m.M2Nodes()
		for a := 0; a <= j; a++ {
			for b := 0; b <= k; b++ {
				for t0 := 0; t0 <= j*k; t0++ {
					want := 1 << 30
					for mask := 0; mask < 1<<len(mids); mask++ {
						if popcount(mask) != t0 {
							continue
						}
						side := make([]bool, m.N())
						for aa := 0; aa < a; aa++ {
							side[m.M1Node(aa)] = true
						}
						for bb := 0; bb < b; bb++ {
							side[m.M3Node(bb)] = true
						}
						for i, v := range mids {
							if mask>>i&1 == 1 {
								side[v] = true
							}
						}
						if c := cut.New(m.Graph, side).Capacity(); c < want {
							want = c
						}
					}
					if got := SideCost(j, k, a, b, t0); got != want {
						t.Fatalf("SideCost(%d,%d,%d,%d,%d) = %d, brute force %d",
							j, k, a, b, t0, got, want)
					}
				}
			}
		}
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestM2BisectionWidthSmall(t *testing.T) {
	// j=1: one middle node, bisection puts it alone on one side; both its
	// edges may avoid the cut only if M1 and M3 join it... M2 = {single
	// node}, |A∩M2| must be 0 or 1 with difference ≤1 — any split works,
	// cheapest is everything on one side: capacity 0.
	if got := M2BisectionWidth(1).Capacity; got != 0 {
		t.Errorf("BW(MOS1,1,M2) = %d, want 0", got)
	}
	// j=2 (computed by hand from the cost formula): 2.
	if got := M2BisectionWidth(2).Capacity; got != 2 {
		t.Errorf("BW(MOS2,2,M2) = %d, want 2", got)
	}
}

func TestM2BisectionWidthAgainstFullEnumeration(t *testing.T) {
	// Enumerate every cut (all side assignments of M1 and M3, all middle
	// subsets that bisect M2) for j = 2 and 3.
	for _, j := range []int{2, 3} {
		m := topology.NewMeshOfStars(j, j)
		mids := m.M2Nodes()
		m2 := j * j
		want := 1 << 30
		for aMask := 0; aMask < 1<<j; aMask++ {
			for bMask := 0; bMask < 1<<j; bMask++ {
				for mMask := 0; mMask < 1<<m2; mMask++ {
					tc := popcount(mMask)
					if d := 2*tc - m2; d < -1 || d > 1 {
						continue
					}
					side := make([]bool, m.N())
					for a := 0; a < j; a++ {
						side[m.M1Node(a)] = aMask>>a&1 == 1
					}
					for b := 0; b < j; b++ {
						side[m.M3Node(b)] = bMask>>b&1 == 1
					}
					for i, v := range mids {
						side[v] = mMask>>i&1 == 1
					}
					if c := cut.New(m.Graph, side).Capacity(); c < want {
						want = c
					}
				}
			}
		}
		if got := M2BisectionWidth(j).Capacity; got != want {
			t.Errorf("BW(MOS%d,%d,M2) = %d, enumeration gives %d", j, j, got, want)
		}
	}
}

func TestLemma219Convergence(t *testing.T) {
	// √2−1 < BW(MOS_{j,j},M2)/j² (strict), decreasing toward the limit.
	prevRatio := math.Inf(1)
	for _, j := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		r := M2BisectionWidth(j)
		if r.Ratio <= Limit {
			t.Errorf("j=%d: ratio %g not strictly above √2−1", j, r.Ratio)
		}
		if r.Ratio > prevRatio+1e-12 {
			t.Errorf("j=%d: ratio %g increased from %g", j, r.Ratio, prevRatio)
		}
		prevRatio = r.Ratio
	}
	if final := M2BisectionWidth(1024).Ratio; final > Limit+0.002 {
		t.Errorf("ratio at j=1024 is %g, not within 0.002 of √2−1 = %g", final, Limit)
	}
}

func TestMinimizerConvergesToSqrtHalf(t *testing.T) {
	x, y := Minimizer(512)
	r := math.Sqrt(0.5)
	if math.Abs(x-r) > 0.01 || math.Abs(y-r) > 0.01 {
		t.Errorf("minimizer (%g,%g), want ≈ (√½,√½) = (%g,%g)", x, y, r, r)
	}
}

func TestBuildCutRealizesCapacity(t *testing.T) {
	for _, j := range []int{2, 3, 4, 6, 8, 12} {
		r := M2BisectionWidth(j)
		m := topology.NewMeshOfStars(j, j)
		c := BuildCut(m, r)
		if got := c.Capacity(); got != r.Capacity {
			t.Errorf("j=%d: built cut capacity %d, want %d", j, got, r.Capacity)
		}
		if !c.BisectsSubset(m.M2Nodes()) {
			t.Errorf("j=%d: built cut does not bisect M2", j)
		}
		if c.CountIn([]int{m.M1Node(0)}) == 1 != (r.A > 0) {
			t.Errorf("j=%d: M1 side counts inconsistent", j)
		}
	}
}

func TestSideCostSymmetry(t *testing.T) {
	// Complementing (a,b,t) preserves the cost: C(A,Ā) = C(Ā,A).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		j := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		a := rng.Intn(j + 1)
		b := rng.Intn(k + 1)
		tc := rng.Intn(j*k + 1)
		if SideCost(j, k, a, b, tc) != SideCost(j, k, j-a, k-b, j*k-tc) {
			t.Fatalf("cost not symmetric at j=%d k=%d a=%d b=%d t=%d", j, k, a, b, tc)
		}
	}
}

func TestM2BisectionWidthRect(t *testing.T) {
	// The square case must agree with M2BisectionWidth.
	for _, j := range []int{2, 3, 4, 8} {
		c, _, _, _ := M2BisectionWidthRect(j, j)
		if want := M2BisectionWidth(j).Capacity; c != want {
			t.Errorf("rect(%d,%d) = %d, square %d", j, j, c, want)
		}
	}
	// Rectangular cross-check against full enumeration for MOS_{2,3}.
	m := topology.NewMeshOfStars(2, 3)
	mids := m.M2Nodes()
	want := 1 << 30
	for aMask := 0; aMask < 4; aMask++ {
		for bMask := 0; bMask < 8; bMask++ {
			for mMask := 0; mMask < 1<<6; mMask++ {
				tc := popcount(mMask)
				if d := 2*tc - 6; d < -1 || d > 1 {
					continue
				}
				side := make([]bool, m.N())
				for a := 0; a < 2; a++ {
					side[m.M1Node(a)] = aMask>>a&1 == 1
				}
				for b := 0; b < 3; b++ {
					side[m.M3Node(b)] = bMask>>b&1 == 1
				}
				for i, v := range mids {
					side[v] = mMask>>i&1 == 1
				}
				if c := cut.New(m.Graph, side).Capacity(); c < want {
					want = c
				}
			}
		}
	}
	c, _, _, _ := M2BisectionWidthRect(2, 3)
	if c != want {
		t.Errorf("rect(2,3) = %d, enumeration %d", c, want)
	}
}

func TestSideCostValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range SideCost did not panic")
		}
	}()
	SideCost(2, 2, 3, 0, 0)
}
