package mos_test

import (
	"fmt"

	"repro/internal/mos"
)

func ExampleM2BisectionWidth() {
	// Lemma 2.19: BW(MOS_{j,j},M2)/j² approaches √2−1 ≈ 0.4142.
	for _, j := range []int{8, 64, 512} {
		r := mos.M2BisectionWidth(j)
		fmt.Printf("j=%-3d capacity=%-6d ratio=%.4f\n", j, r.Capacity, r.Ratio)
	}
	// Output:
	// j=8   capacity=28     ratio=0.4375
	// j=64  capacity=1710   ratio=0.4175
	// j=512 capacity=108600 ratio=0.4143
}
