package mos

import (
	"testing"

	"repro/internal/cut"
	"repro/internal/topology"
)

// FuzzSideCost cross-checks the closed-form middle-placement cost against a
// direct greedy construction for arbitrary (j,k,a,b,t).
func FuzzSideCost(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(1), uint8(1), uint8(2))
	f.Add(uint8(4), uint8(3), uint8(2), uint8(3), uint8(6))
	f.Add(uint8(5), uint8(5), uint8(0), uint8(5), uint8(12))
	f.Fuzz(func(t *testing.T, jr, kr, ar, br, tr uint8) {
		j := 1 + int(jr)%5
		k := 1 + int(kr)%5
		a := int(ar) % (j + 1)
		b := int(br) % (k + 1)
		tc := int(tr) % (j*k + 1)
		got := SideCost(j, k, a, b, tc)

		// Rebuild the optimal middle placement explicitly and measure it.
		m := topology.NewMeshOfStars(j, k)
		side := make([]bool, m.N())
		for aa := 0; aa < a; aa++ {
			side[m.M1Node(aa)] = true
		}
		for bb := 0; bb < b; bb++ {
			side[m.M3Node(bb)] = true
		}
		type mid struct{ v, cost int }
		var mids []mid
		for aa := 0; aa < j; aa++ {
			for bb := 0; bb < k; bb++ {
				inA := 0
				if aa >= a {
					inA++
				}
				if bb >= b {
					inA++
				}
				mids = append(mids, mid{m.M2Node(aa, bb), inA})
			}
		}
		placed := 0
		for _, want := range []int{0, 1, 2} {
			for _, md := range mids {
				if placed == tc {
					break
				}
				if md.cost == want {
					side[md.v] = true
					placed++
				}
			}
		}
		measured := cut.New(m.Graph, side).Capacity()
		if measured != got {
			t.Fatalf("SideCost(%d,%d,%d,%d,%d) = %d, greedy construction measures %d",
				j, k, a, b, tc, got, measured)
		}
	})
}
