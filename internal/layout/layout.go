// Package layout produces concrete VLSI-style grid layouts of the
// butterfly, making §1.1's claims measurable: the layout area of Bn is
// (1±o(1))n² [3], and Thompson's bound (§1.2) forces A ≥ BW(G)² for every
// network, so the measured area of any valid layout must sit above the
// square of the measured bisection width.
//
// The model is the standard Thompson grid: nodes occupy grid points, wires
// run along grid lines (one horizontal track segment and the two vertical
// drops per routed edge here), and no two wires share a track segment.
//
// Two strategies are implemented. The naive one gives every cross edge its
// own horizontal track, costing Θ(n²·log n) area. The packed one observes
// that between levels i and i+1 the 2·span cross wires of a block (span =
// 2^(log n − i − 1); each column pair {w, w⊕span} carries two wires, one in
// each direction) overlap only within their block, so 2·span tracks
// suffice; total height Σ(2·2^(log n−i−1) + 2) = 2n + O(log n), for area
// (2+o(1))n². The paper's cited tight bound is (1±o(1))n² [3], achieved by
// a considerably more intricate layout; this simple router demonstrates
// the Θ(n²) shape and the Thompson relation A ≥ BW² with an explicit,
// validated artifact.
package layout

import (
	"fmt"

	"repro/internal/topology"
)

// Strategy selects the wire-packing discipline.
type Strategy int

// The two layout strategies.
const (
	// Naive gives every cross edge its own horizontal track.
	Naive Strategy = iota
	// Packed colors overlapping cross intervals: span tracks per gap.
	Packed
)

// Wire is one routed edge: it drops from the upper node at column FromCol
// to track row Track, runs horizontally to ToCol, and drops to the lower
// node. Straight edges have FromCol == ToCol and Track < 0 (a pure vertical
// segment).
type Wire struct {
	Gap     int // between levels Gap and Gap+1
	FromCol int
	ToCol   int
	Track   int // horizontal track index within the gap; −1 = straight
}

// Layout is a concrete grid layout of Bn.
type Layout struct {
	N        int
	Dim      int
	Strategy Strategy
	// NodeRow[i] is the grid row of level i's nodes; nodes of level i sit
	// at (column·1, NodeRow[i]).
	NodeRow []int
	// TracksPerGap[i] is the number of horizontal tracks between levels i
	// and i+1.
	TracksPerGap []int
	Wires        []Wire
	Width        int // grid columns
	Height       int // grid rows
}

// Area returns Width × Height.
func (l *Layout) Area() int { return l.Width * l.Height }

// New lays out Bn with the chosen strategy.
func New(b *topology.Butterfly, s Strategy) *Layout {
	if b.Wraparound() {
		panic("layout: the grid layout is built for Bn")
	}
	n := b.Inputs()
	d := b.Dim()
	l := &Layout{N: n, Dim: d, Strategy: s, Width: n}

	row := 0
	for i := 0; i <= d; i++ {
		l.NodeRow = append(l.NodeRow, row)
		if i == d {
			break
		}
		span := 1 << (d - i - 1)
		var tracks int
		if s == Naive {
			tracks = n // one track per cross edge
		} else {
			tracks = 2 * span // interval coloring within blocks, 2 per pair
		}
		l.TracksPerGap = append(l.TracksPerGap, tracks)

		// Route the wires of this gap.
		for w := 0; w < n; w++ {
			// Straight edge: vertical drop, no track.
			l.Wires = append(l.Wires, Wire{Gap: i, FromCol: w, ToCol: w, Track: -1})
		}
		for w := 0; w < n; w++ {
			// Cross edge from ⟨w,i⟩ down to ⟨w⊕span,i+1⟩. Each column pair
			// carries two such wires (one per direction); both span the
			// same columns, so the pair consumes two adjacent tracks.
			var track int
			if s == Naive {
				track = w
			} else {
				low := w &^ span // clear the crossing bit: block-local id
				track = (low%span)*2 + (w&span)>>uint(d-i-1)
			}
			l.Wires = append(l.Wires, Wire{Gap: i, FromCol: w, ToCol: w ^ span, Track: track})
		}
		row += tracks + 1
	}
	l.Height = row + 1
	return l
}

// Validate checks the layout: every butterfly edge is routed, every track
// index is within its gap's budget, and no two wires of the same gap and
// track overlap horizontally (sharing a track segment).
func (l *Layout) Validate() error {
	wantWires := 2 * l.N * l.Dim
	if len(l.Wires) != wantWires {
		return fmt.Errorf("layout: %d wires routed, want %d", len(l.Wires), wantWires)
	}
	type key struct{ gap, track int }
	intervals := make(map[key][][2]int)
	for _, w := range l.Wires {
		if w.Track < 0 {
			continue
		}
		if w.Gap < 0 || w.Gap >= len(l.TracksPerGap) {
			return fmt.Errorf("layout: wire in invalid gap %d", w.Gap)
		}
		if w.Track >= l.TracksPerGap[w.Gap] {
			return fmt.Errorf("layout: track %d exceeds budget %d in gap %d",
				w.Track, l.TracksPerGap[w.Gap], w.Gap)
		}
		lo, hi := w.FromCol, w.ToCol
		if lo > hi {
			lo, hi = hi, lo
		}
		k := key{w.Gap, w.Track}
		for _, iv := range intervals[k] {
			if lo < iv[1] && iv[0] < hi { // strict overlap of open intervals
				return fmt.Errorf("layout: wires overlap on gap %d track %d: [%d,%d] vs [%d,%d]",
					w.Gap, w.Track, lo, hi, iv[0], iv[1])
			}
		}
		intervals[k] = append(intervals[k], [2]int{lo, hi})
	}
	return nil
}

// AreaRatio returns Area / n², the figure §1.1 pins at 1±o(1) for the
// optimal layout (our packed strategy achieves 2+o(1)).
func (l *Layout) AreaRatio() float64 {
	return float64(l.Area()) / float64(l.N*l.N)
}

// ThompsonConsistent reports whether the layout respects A ≥ bw² for the
// given bisection width — a sanity check tying §1.1 to §1.2: a valid
// layout smaller than BW² would disprove Thompson (or our BW).
func (l *Layout) ThompsonConsistent(bw int) bool {
	return l.Area() >= bw*bw
}
