package layout

import (
	"testing"

	"repro/internal/construct"
	"repro/internal/topology"
)

func TestPackedLayoutValid(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		b := topology.NewButterfly(n)
		l := New(b, Packed)
		if err := l.Validate(); err != nil {
			t.Errorf("B%d packed: %v", n, err)
		}
	}
}

func TestNaiveLayoutValid(t *testing.T) {
	for _, n := range []int{4, 8, 32} {
		b := topology.NewButterfly(n)
		l := New(b, Naive)
		if err := l.Validate(); err != nil {
			t.Errorf("B%d naive: %v", n, err)
		}
	}
}

func TestPackedAreaIsQuadratic(t *testing.T) {
	// §1.1: layout area of Bn is (1±o(1))n². The packed strategy's
	// Area/n² must approach a small constant (≈1) as n grows, while the
	// naive strategy diverges like log n.
	prevPacked := 0.0
	for _, n := range []int{16, 64, 256, 1024} {
		b := topology.NewButterfly(n)
		packed := New(b, Packed)
		ratio := packed.AreaRatio()
		if ratio > 2.6 {
			t.Errorf("B%d: packed area ratio %.3f, want ≈ 2", n, ratio)
		}
		if prevPacked > 0 && ratio > prevPacked+1e-9 {
			t.Errorf("B%d: packed ratio %.3f increased from %.3f", n, ratio, prevPacked)
		}
		prevPacked = ratio

		naive := New(b, Naive)
		if naive.Area() <= packed.Area() {
			t.Errorf("B%d: naive area %d not larger than packed %d", n, naive.Area(), packed.Area())
		}
	}
	// At n=1024 the packed ratio should be close to 2 (n(2n+log n)/n²).
	b := topology.NewButterfly(1024)
	if r := New(b, Packed).AreaRatio(); r > 2.05 {
		t.Errorf("packed ratio at n=1024 is %.4f, want ≤ 2.05", r)
	}
}

func TestNaiveAreaGrowsWithLog(t *testing.T) {
	// Naive area ≈ n²·log n /2: the ratio to n² grows with log n.
	r16 := New(topology.NewButterfly(16), Naive).AreaRatio()
	r256 := New(topology.NewButterfly(256), Naive).AreaRatio()
	if r256 <= r16 {
		t.Errorf("naive ratio did not grow: %.3f vs %.3f", r16, r256)
	}
}

func TestThompsonConsistency(t *testing.T) {
	// A ≥ BW²: the packed layout's area must dominate the square of the
	// constructed bisection width (§1.2's Thompson bound, with our
	// measured BW upper bound standing in for BW).
	for _, n := range []int{16, 64, 256, 1024} {
		b := topology.NewButterfly(n)
		l := New(b, Packed)
		plan, err := construct.BestPlan(n)
		if err != nil {
			t.Fatalf("BestPlan(%d): %v", n, err)
		}
		bw := plan.Capacity
		if !l.ThompsonConsistent(bw) {
			t.Errorf("B%d: area %d below BW² = %d — impossible", n, l.Area(), bw*bw)
		}
		// And the bound is not vacuous: area is within a small factor of
		// BW² (both are Θ(n²)).
		if l.Area() > 8*bw*bw {
			t.Errorf("B%d: area %d more than 8×BW² = %d — layout too loose", n, l.Area(), 8*bw*bw)
		}
	}
}

func TestWireEndpointsMatchEdges(t *testing.T) {
	// Every wire corresponds to a real butterfly edge.
	b := topology.NewButterfly(8)
	l := New(b, Packed)
	for _, w := range l.Wires {
		u := b.Node(w.FromCol, w.Gap)
		v := b.Node(w.ToCol, w.Gap+1)
		if !b.HasEdge(u, v) {
			t.Fatalf("wire %+v does not correspond to an edge", w)
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	b := topology.NewButterfly(8)
	l := New(b, Packed)
	// Force two overlapping cross wires onto the same track.
	for i := range l.Wires {
		if l.Wires[i].Track >= 0 {
			l.Wires[i].Track = 0
		}
	}
	if l.Validate() == nil {
		t.Errorf("overlap not caught")
	}
}

func TestValidateCatchesMissingWires(t *testing.T) {
	b := topology.NewButterfly(4)
	l := New(b, Packed)
	l.Wires = l.Wires[:len(l.Wires)-1]
	if l.Validate() == nil {
		t.Errorf("missing wire not caught")
	}
}

func TestLayoutRejectsWn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Wn did not panic")
		}
	}()
	New(topology.NewWrappedButterfly(8), Packed)
}
