// Package solve provides the shared cancellation and telemetry machinery
// for the repo's long-running search engines (exact branch-and-bound,
// heuristic multi-start refinement, Monte-Carlo routing, virtual plan
// evaluation).
//
// The design constraint is that the engines' hot loops are 0-alloc and run
// hundreds of millions of nodes: they cannot afford a ctx.Err() call (let
// alone a select) per node. A Monitor converts a context.Context into one
// shared atomic stop flag, and engines poll it amortized — a local
// countdown is flushed via Tick every TickStride nodes, so the per-node
// cost is one branch and one increment. The same flushes feed the
// telemetry counters (nodes explored, pruned by bound) that OnProgress
// callbacks and result rows report.
//
// A cancelled engine returns its best incumbent so far flagged non-exact
// (Exact=false / Cancelled=true); partial results are never presented as
// certified optima.
package solve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Registry metrics every Monitor publishes into: the explored/pruned
// flushes land here at Tick cadence (one atomic add per TickStride nodes),
// durations and cancellations at Close. /debug/metrics and the run
// manifest read these.
var (
	metricStarted    = obs.NewCounter("solve.monitors_started")
	metricCancelled  = obs.NewCounter("solve.monitors_cancelled")
	metricExplored   = obs.NewCounter("solve.nodes_explored")
	metricPruned     = obs.NewCounter("solve.nodes_pruned")
	metricDurationMS = obs.NewHistogram("solve.duration_ms")
)

// TickStride is how many search nodes an engine should explore between
// Tick flushes. 4096 keeps the amortized cancellation latency well under
// a millisecond on the measured engines while making the per-node
// overhead unmeasurable (<1%).
const TickStride = 4096

// Progress is a point-in-time snapshot of a running (or finished) solve.
type Progress struct {
	// Solver labels the solve (Options.Name), so progress lines from
	// concurrent solvers are attributable.
	Solver string
	// Explored is the number of search-tree nodes (or trials, for the
	// Monte-Carlo engine) processed so far.
	Explored int64
	// Pruned is the number of subtrees cut off by the admissible bound.
	Pruned int64
	// Incumbent is the best objective value found so far; only meaningful
	// when HasIncumbent is true.
	Incumbent    int64
	HasIncumbent bool
	// SinceImproved is how long ago the incumbent last improved.
	SinceImproved time.Duration
	// Elapsed is the wall time since the solve started.
	Elapsed time.Duration
	// Cancelled reports whether the stop flag was raised (context
	// cancelled or deadline exceeded).
	Cancelled bool
}

// String renders a one-line human-readable progress report, used by the
// -progress flag of the commands.
func (p Progress) String() string {
	inc := "incumbent=?"
	if p.HasIncumbent {
		inc = fmt.Sprintf("incumbent=%d (improved %s ago)",
			p.Incumbent, p.SinceImproved.Round(time.Millisecond))
	}
	return fmt.Sprintf("explored=%d pruned=%d %s elapsed=%s",
		p.Explored, p.Pruned, inc, p.Elapsed.Round(time.Millisecond))
}

// Options configure a Monitor.
type Options struct {
	// Ctx carries the cancellation signal and deadline; nil means
	// context.Background() (never cancelled).
	Ctx context.Context
	// OnProgress, when non-nil, is called with a Progress snapshot every
	// Interval from a dedicated goroutine until the Monitor is closed.
	OnProgress func(Progress)
	// Interval between OnProgress calls; ≤ 0 means 1s.
	Interval time.Duration
	// Name labels the solve in progress lines and trace spans (e.g.
	// "bisection B16", "EE(W16,k) survey").
	Name string
	// Trace, when non-nil, receives span_start/incumbent/cancelled/
	// span_end events for this solve. nil disables tracing with zero
	// hot-path cost.
	Trace *obs.Tracer
}

// Monitor is the shared stop flag + telemetry counters of one solve. All
// methods are safe on a nil receiver (a nil Monitor is "never stopped,
// counters discarded"), so engines take *Monitor unconditionally and the
// legacy context-free entry points just pass nil.
type Monitor struct {
	start time.Time
	stop  atomic.Bool
	name  string
	span  *obs.Span

	explored     atomic.Int64
	pruned       atomic.Int64
	incumbent    atomic.Int64
	hasIncumbent atomic.Bool
	improvedAt   atomic.Int64 // nanoseconds after start

	quit chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// Start builds a Monitor watching opts.Ctx. If the context is already
// expired (deadline zero, pre-cancelled) the stop flag is raised
// synchronously, so engines checking Stopped before their first node
// return immediately. Callers must Close the Monitor to release its
// watcher goroutines.
func Start(opts Options) *Monitor {
	m := &Monitor{start: time.Now(), quit: make(chan struct{}), name: opts.Name}
	metricStarted.Inc()
	m.span = opts.Trace.StartSpan("solve", obs.Attrs{"name": opts.Name})
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		m.stop.Store(true)
		m.span.Event("cancelled", obs.Attrs{"reason": "context expired before start"})
	} else if done := ctx.Done(); done != nil {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			select {
			case <-done:
				m.stop.Store(true)
				m.span.Event("cancelled", obs.Attrs{"reason": "context done"})
			case <-m.quit:
			}
		}()
	}
	if opts.OnProgress != nil {
		interval := opts.Interval
		if interval <= 0 {
			interval = time.Second
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					opts.OnProgress(m.Snapshot())
				case <-m.quit:
					return
				}
			}
		}()
	}
	return m
}

// Close releases the watcher goroutines and publishes the end-of-solve
// telemetry (duration histogram, cancellation counter, span_end).
// Idempotent and nil-safe.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.once.Do(func() {
		close(m.quit)
		cancelled := m.stop.Load()
		metricDurationMS.Observe(int64(time.Since(m.start) / time.Millisecond))
		if cancelled {
			metricCancelled.Inc()
		}
		m.span.End(obs.Attrs{
			"explored":  m.explored.Load(),
			"pruned":    m.pruned.Load(),
			"cancelled": cancelled,
		})
	})
	m.wg.Wait()
}

// Stop raises the stop flag directly (in addition to any context signal).
func (m *Monitor) Stop() {
	if m == nil {
		return
	}
	m.stop.Store(true)
}

// Stopped reports whether the solve should wind down.
func (m *Monitor) Stopped() bool {
	return m != nil && m.stop.Load()
}

// Tick flushes locally-batched counters into the shared totals and
// reports the stop flag, so engines pay one atomic read per TickStride
// nodes instead of per node.
func (m *Monitor) Tick(explored, pruned int64) bool {
	if m == nil {
		return false
	}
	if explored != 0 {
		m.explored.Add(explored)
		metricExplored.Add(explored)
	}
	if pruned != 0 {
		m.pruned.Add(pruned)
		metricPruned.Add(pruned)
	}
	return m.stop.Load()
}

// SetIncumbent records a new best objective value for telemetry. Engines
// call it from their (already mutex-serialized) incumbent-record paths.
func (m *Monitor) SetIncumbent(v int64) {
	if m == nil {
		return
	}
	m.incumbent.Store(v)
	m.hasIncumbent.Store(true)
	m.improvedAt.Store(int64(time.Since(m.start)))
	if m.span != nil {
		m.span.Event("incumbent", obs.Attrs{"value": v, "explored": m.explored.Load()})
	}
}

// Tracing reports whether this solve has a trace span, so callers can
// skip building the Attrs map (which allocates) when tracing is off.
func (m *Monitor) Tracing() bool {
	return m != nil && m.span != nil
}

// TraceEvent emits an event on the solve's span (engine-specific detail
// like per-trial routing stats). No-op without a span; guard with Tracing
// to avoid constructing attrs needlessly.
func (m *Monitor) TraceEvent(name string, attrs obs.Attrs) {
	if m == nil {
		return
	}
	m.span.Event(name, attrs)
}

// Explored returns the flushed explored-node total.
func (m *Monitor) Explored() int64 {
	if m == nil {
		return 0
	}
	return m.explored.Load()
}

// Pruned returns the flushed pruned-subtree total.
func (m *Monitor) Pruned() int64 {
	if m == nil {
		return 0
	}
	return m.pruned.Load()
}

// Elapsed returns the wall time since Start.
func (m *Monitor) Elapsed() time.Duration {
	if m == nil {
		return 0
	}
	return time.Since(m.start)
}

// Snapshot returns a consistent-enough Progress for display (counters are
// read individually; they may straddle a concurrent flush, which is fine
// for telemetry).
func (m *Monitor) Snapshot() Progress {
	if m == nil {
		return Progress{}
	}
	p := Progress{
		Solver:       m.name,
		Explored:     m.explored.Load(),
		Pruned:       m.pruned.Load(),
		Incumbent:    m.incumbent.Load(),
		HasIncumbent: m.hasIncumbent.Load(),
		Elapsed:      time.Since(m.start),
		Cancelled:    m.stop.Load(),
	}
	if p.HasIncumbent {
		if since := p.Elapsed - time.Duration(m.improvedAt.Load()); since > 0 {
			p.SinceImproved = since
		}
	}
	return p
}
