package solve

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilMonitorIsInert(t *testing.T) {
	var m *Monitor
	if m.Stopped() {
		t.Fatal("nil monitor reports stopped")
	}
	if m.Tick(100, 5) {
		t.Fatal("nil monitor Tick reports stop")
	}
	m.SetIncumbent(3)
	m.Stop()
	m.Close()
	if got := m.Snapshot(); got != (Progress{}) {
		t.Fatalf("nil monitor snapshot = %+v, want zero", got)
	}
	if m.Explored() != 0 || m.Pruned() != 0 || m.Elapsed() != 0 {
		t.Fatal("nil monitor counters non-zero")
	}
}

func TestExpiredContextStopsSynchronously(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := Start(Options{Ctx: ctx})
	defer m.Close()
	if !m.Stopped() {
		t.Fatal("monitor on pre-cancelled context not stopped at Start")
	}
}

func TestDeadlineZeroStopsSynchronously(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	m := Start(Options{Ctx: ctx})
	defer m.Close()
	if !m.Stopped() {
		t.Fatal("monitor with zero deadline not stopped at Start")
	}
}

func TestCancelRaisesStopFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := Start(Options{Ctx: ctx})
	defer m.Close()
	if m.Stopped() {
		t.Fatal("stopped before cancel")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !m.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("stop flag not raised within 2s of cancel")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTickAccumulatesAndSnapshot(t *testing.T) {
	m := Start(Options{})
	defer m.Close()
	if m.Tick(1000, 30) {
		t.Fatal("uncancelled Tick reports stop")
	}
	m.Tick(24, 2)
	m.SetIncumbent(17)
	p := m.Snapshot()
	if p.Explored != 1024 || p.Pruned != 32 {
		t.Fatalf("counters = %d/%d, want 1024/32", p.Explored, p.Pruned)
	}
	if !p.HasIncumbent || p.Incumbent != 17 {
		t.Fatalf("incumbent = %+v, want 17", p)
	}
	if p.Cancelled {
		t.Fatal("uncancelled snapshot marked cancelled")
	}
	if m.Explored() != 1024 || m.Pruned() != 32 {
		t.Fatal("accessor totals disagree with snapshot")
	}
}

func TestStopMethod(t *testing.T) {
	m := Start(Options{})
	defer m.Close()
	m.Stop()
	if !m.Stopped() {
		t.Fatal("Stop did not raise flag")
	}
	if !m.Tick(1, 0) {
		t.Fatal("Tick after Stop did not report stop")
	}
}

func TestOnProgressFires(t *testing.T) {
	var calls atomic.Int64
	m := Start(Options{
		OnProgress: func(Progress) { calls.Add(1) },
		Interval:   5 * time.Millisecond,
	})
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("OnProgress not called twice within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	m.Close()
	after := calls.Load()
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != after {
		t.Fatal("OnProgress still firing after Close")
	}
}

func TestProgressString(t *testing.T) {
	p := Progress{Explored: 10, Pruned: 3}
	if s := p.String(); !strings.Contains(s, "explored=10") || !strings.Contains(s, "incumbent=?") {
		t.Fatalf("no-incumbent string = %q", s)
	}
	p = Progress{Explored: 10, Pruned: 3, Incumbent: 7, HasIncumbent: true}
	if s := p.String(); !strings.Contains(s, "incumbent=7") {
		t.Fatalf("incumbent string = %q", s)
	}
}

func TestCloseIdempotent(t *testing.T) {
	m := Start(Options{Ctx: context.Background()})
	m.Close()
	m.Close()
}
