package route

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cut"
	"repro/internal/topology"
)

// TestFlatMatchesReferenceRandomBn cross-checks the flat engine against
// the map-based reference on B3–B5: every field of SimResult must agree
// per seed.
func TestFlatMatchesReferenceRandomBn(t *testing.T) {
	for d := 3; d <= 5; d++ {
		b := topology.NewButterfly(1 << d)
		ref := columnCut(b)
		for seed := int64(0); seed < 10; seed++ {
			want := SimulateRandomDestinationsReference(b, ref, seed)
			got := SimulateRandomDestinations(b, ref, seed)
			if got != want {
				t.Errorf("B%d seed %d: flat %+v, reference %+v", d, seed, got, want)
			}
		}
		// The nil-cut path must agree too.
		if got, want := SimulateRandomDestinations(b, nil, 3), SimulateRandomDestinationsReference(b, nil, 3); got != want {
			t.Errorf("B%d nil cut: flat %+v, reference %+v", d, got, want)
		}
	}
}

func TestFlatMatchesReferenceRandomWn(t *testing.T) {
	for d := 3; d <= 4; d++ {
		w := topology.NewWrappedButterfly(1 << d)
		ref := columnCut(w)
		for seed := int64(0); seed < 10; seed++ {
			want := SimulateRandomDestinationsWrappedReference(w, ref, seed)
			got := SimulateRandomDestinationsWrapped(w, ref, seed)
			if got != want {
				t.Errorf("W%d seed %d: flat %+v, reference %+v", d, seed, got, want)
			}
		}
	}
}

func TestFlatMatchesReferencePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for d := 3; d <= 5; d++ {
		n := 1 << d
		b := topology.NewButterfly(n)
		ref := columnCut(b)
		for trial := 0; trial < 10; trial++ {
			perm := rng.Perm(n)
			want, err := SimulatePermutationReference(b, ref, perm)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SimulatePermutation(b, ref, perm)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("B%d perm %v: flat %+v, reference %+v", d, perm, got, want)
			}
		}
	}
}

func TestSimulatePermutationRejectsBadInput(t *testing.T) {
	b := topology.NewButterfly(8)
	if _, err := SimulatePermutation(b, nil, []int{0, 1, 2}); err == nil {
		t.Errorf("short permutation accepted")
	}
	if _, err := SimulatePermutation(b, nil, []int{0, 1, 2, 3, 4, 5, 6, 6}); err == nil {
		t.Errorf("repeated value accepted")
	}
}

// TestSimulateManyDeterministicAcrossWorkers pins the multi-trial
// aggregate: fixed seed and trial count must reproduce byte-identical
// statistics at any worker count, for every trial kind.
func TestSimulateManyDeterministicAcrossWorkers(t *testing.T) {
	b := topology.NewButterfly(16)
	w := topology.NewWrappedButterfly(16)
	cases := []struct {
		name string
		net  *topology.Butterfly
		kind TrialKind
	}{
		{"random/Bn", b, RandomDestinations},
		{"random/Wn", w, WrappedRandomDestinations},
		{"perm/Bn", b, RandomPermutations},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := columnCut(tc.net)
			var base TrialStats
			for i, workers := range []int{1, 2, 3, 8} {
				s := SimulateMany(tc.net, ref, tc.kind, ManyOptions{Trials: 16, Workers: workers, Seed: 5})
				if i == 0 {
					base = s
					continue
				}
				if !trialStatsEqual(s, base) {
					t.Errorf("workers=%d: %+v\nworkers=1: %+v", workers, s, base)
				}
			}
		})
	}
}

func trialStatsEqual(a, b TrialStats) bool {
	return reflect.DeepEqual(a, b)
}

// TestSimulateManyTrialsMatchSingleRuns checks that each trial of the
// aggregate is exactly the single-trial simulation on its derived seed.
func TestSimulateManyTrialsMatchSingleRuns(t *testing.T) {
	b := topology.NewButterfly(16)
	ref := columnCut(b)
	const trials = 8
	stats := SimulateMany(b, ref, RandomDestinations, ManyOptions{Trials: trials, Seed: 9})
	var sumSteps, sumPackets int
	minSteps, maxSteps := int(^uint(0)>>1), 0
	for tr := 0; tr < trials; tr++ {
		r := SimulateRandomDestinations(b, ref, TrialSeed(9, tr))
		sumSteps += r.Steps
		sumPackets += r.Packets
		if r.Steps < minSteps {
			minSteps = r.Steps
		}
		if r.Steps > maxSteps {
			maxSteps = r.Steps
		}
		if r.Steps < r.CongestionBound {
			t.Errorf("trial %d: steps %d below certified bound %d", tr, r.Steps, r.CongestionBound)
		}
	}
	if stats.TotalPackets != int64(sumPackets) {
		t.Errorf("aggregate packets %d, replayed %d", stats.TotalPackets, sumPackets)
	}
	if stats.MinSteps != minSteps || stats.MaxSteps != maxSteps {
		t.Errorf("aggregate steps [%d,%d], replayed [%d,%d]",
			stats.MinSteps, stats.MaxSteps, minSteps, maxSteps)
	}
	if want := float64(sumSteps) / trials; stats.MeanSteps != want {
		t.Errorf("mean steps %v, want %v", stats.MeanSteps, want)
	}
	if stats.MinRatio < 1 {
		t.Errorf("a trial beat its certified bound: min ratio %v", stats.MinRatio)
	}
	if stats.TightTrials < 0 || stats.TightTrials > trials {
		t.Errorf("tight trials %d out of range", stats.TightTrials)
	}
	hist := 0
	for _, c := range stats.MaxQueueHist {
		hist += c
	}
	if hist != trials {
		t.Errorf("max-queue histogram covers %d trials, want %d", hist, trials)
	}
}

func TestSimulateManyPermutationPacketCount(t *testing.T) {
	b := topology.NewButterfly(32)
	stats := SimulateMany(b, nil, RandomPermutations, ManyOptions{Trials: 5, Seed: 1})
	if stats.TotalPackets != 5*32 {
		t.Errorf("permutation trials routed %d packets, want %d", stats.TotalPackets, 5*32)
	}
	if stats.MeanRatio != 0 || stats.TightTrials != 0 {
		t.Errorf("nil cut produced bound statistics: %+v", stats)
	}
}

func TestSimulateManyKindValidation(t *testing.T) {
	b := topology.NewButterfly(8)
	w := topology.NewWrappedButterfly(8)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("wrapped kind on Bn", func() {
		SimulateMany(b, nil, WrappedRandomDestinations, ManyOptions{})
	})
	mustPanic("Bn kind on Wn", func() {
		SimulateMany(w, nil, RandomDestinations, ManyOptions{})
	})
	mustPanic("unknown kind", func() {
		SimulateMany(b, nil, TrialKind(42), ManyOptions{})
	})
}

// TestMaxStepsExhaustion forces non-convergence via an absurdly low step
// limit and checks the trials come back flagged Exhausted — never a panic
// — excluded from the aggregates, and that the worker states survive to
// run a healthy aggregate afterwards.
func TestMaxStepsExhaustion(t *testing.T) {
	b := topology.NewButterfly(16)
	s := SimulateMany(b, nil, RandomDestinations, ManyOptions{Trials: 2, Workers: 2, MaxSteps: 1})
	if s.ExhaustedTrials != 2 {
		t.Fatalf("ExhaustedTrials = %d, want 2", s.ExhaustedTrials)
	}
	if s.Trials != 0 {
		t.Fatalf("Trials = %d, want 0 (exhausted trials are excluded)", s.Trials)
	}
	if s.TotalPackets != 0 || s.MeanSteps != 0 {
		t.Fatalf("exhausted trials leaked into the aggregates: %+v", s)
	}
	// The pooled states cleared their queues: a follow-up healthy run on
	// the same shape must agree with a fresh single-trial simulation.
	after := SimulateMany(b, nil, RandomDestinations, ManyOptions{Trials: 1, Seed: 7})
	want := SimulateRandomDestinations(b, nil, TrialSeed(7, 0))
	if after.ExhaustedTrials != 0 || after.Trials != 1 || after.MeanSteps != float64(want.Steps) {
		t.Fatalf("post-exhaustion run disagrees: %+v, want steps %d", after, want.Steps)
	}
}

// TestSimulateScenarioExhausted checks the single-trial scenario entry
// reports exhaustion through the result, with partial counters intact.
func TestSimulateScenarioExhausted(t *testing.T) {
	b := topology.NewButterfly(16)
	f := FaultOptions{DropProb: 0.999}
	res, err := SimulateScenario(b, nil, RandomDestinations, 1, f, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("DropProb=0.999 with unbounded retransmission converged: %+v", res)
	}
	if res.Steps != defaultMaxSteps(b) {
		t.Fatalf("Steps = %d, want the %d-step limit", res.Steps, defaultMaxSteps(b))
	}
	if res.Retransmits == 0 {
		t.Fatalf("exhausted run reports no retransmissions: %+v", res)
	}
}

func TestTrialKindString(t *testing.T) {
	for _, tc := range []struct {
		kind TrialKind
		want string
		slug string
	}{
		{RandomDestinations, "random destinations", "random"},
		{WrappedRandomDestinations, "wrapped random destinations", "wrapped"},
		{RandomPermutations, "random permutations", "permutation"},
		{HotSpotDestinations, "hot-spot destinations", "hotspot"},
		{BitReversalDestinations, "bit-reversal destinations", "bitreversal"},
		{TrialKind(9), "TrialKind(9)", "kind9"},
	} {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("TrialKind %d: %q, want %q", int(tc.kind), got, tc.want)
		}
		if got := tc.kind.Slug(); got != tc.slug {
			t.Errorf("TrialKind %d slug: %q, want %q", int(tc.kind), got, tc.slug)
		}
		if tc.slug != "kind9" {
			back, err := ParseTrialKind(tc.slug)
			if err != nil || back != tc.kind {
				t.Errorf("ParseTrialKind(%q) = %v, %v; want %v", tc.slug, back, err, tc.kind)
			}
		}
	}
	if _, err := ParseTrialKind("bogus"); err == nil {
		t.Error("ParseTrialKind accepted a bogus slug")
	}
}

// TestSteadyStateAllocations verifies the tentpole's allocation claim: a
// warmed state pool runs single trials without per-trial allocations.
func TestSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	b := topology.NewButterfly(64)
	ref := columnCut(b)
	SimulateRandomDestinations(b, ref, 1) // warm the pool and index cache
	seed := int64(0)
	allocs := testing.AllocsPerRun(20, func() {
		seed++
		SimulateRandomDestinations(b, ref, seed)
	})
	if allocs > 1 {
		t.Errorf("steady-state trial allocates %.1f objects, want ≤1", allocs)
	}
}

func TestDirIndexMatchesGraph(t *testing.T) {
	for _, b := range []*topology.Butterfly{
		topology.NewButterfly(8),
		topology.NewWrappedButterfly(4), // dim 2: parallel edges must collapse
	} {
		ix := buildDirIndex(b)
		for v := 0; v < b.N(); v++ {
			seen := make(map[int32]bool)
			for _, w := range b.Neighbors(v) {
				seen[w] = true
			}
			got := ix.to[ix.start[v]:ix.start[v+1]]
			if len(got) != len(seen) {
				t.Fatalf("node %d: %d directed edges for %d distinct neighbors", v, len(got), len(seen))
			}
			for i, w := range got {
				if !seen[w] {
					t.Fatalf("node %d: directed edge to non-neighbor %d", v, w)
				}
				if i > 0 && got[i-1] >= w {
					t.Fatalf("node %d: targets not strictly increasing: %v", v, got)
				}
			}
		}
	}
}

func TestIndexCacheSharesBuilds(t *testing.T) {
	a := indexFor(topology.NewButterfly(8))
	b := indexFor(topology.NewButterfly(8))
	if a != b {
		t.Errorf("same-shape butterflies got distinct index builds")
	}
	if w := indexFor(topology.NewWrappedButterfly(8)); w == a {
		t.Errorf("Bn and Wn of one size share an index")
	}
}

func TestTrialSeedDistinct(t *testing.T) {
	seen := make(map[int64]int)
	for tr := 0; tr < 1000; tr++ {
		s := TrialSeed(7, tr)
		if prev, dup := seen[s]; dup {
			t.Fatalf("trials %d and %d share seed %d", prev, tr, s)
		}
		seen[s] = tr
	}
	if TrialSeed(7, 0) == TrialSeed(8, 0) {
		t.Errorf("base seeds 7 and 8 collide at trial 0")
	}
}

func ExampleSimulateMany() {
	b := topology.NewButterfly(16)
	side := make([]bool, b.N())
	for v := 0; v < b.N(); v++ {
		side[v] = b.Column(v) < b.Inputs()/2
	}
	ref := cut.New(b.Graph, side)
	stats := SimulateMany(b, ref, RandomDestinations, ManyOptions{Trials: 100, Seed: 1})
	fmt.Println("trials:", stats.Trials)
	fmt.Println("bound respected in all trials:", stats.MinRatio >= 1)
	// Output:
	// trials: 100
	// bound respected in all trials: true
}
