package route

import (
	"math/rand"
	"testing"

	"repro/internal/embed"
	"repro/internal/topology"
)

func checkPortPaths(t *testing.T, be *topology.Benes, perm []int, paths [][]int) {
	t.Helper()
	n := be.Inputs()
	if len(paths) != 2*n {
		t.Fatalf("%d paths for %d ports", len(paths), 2*n)
	}
	for p, path := range paths {
		if len(path) != be.Levels() {
			t.Fatalf("port %d: path length %d, want %d", p, len(path), be.Levels())
		}
		if path[0] != be.Node(p/2, 0) {
			t.Fatalf("port %d starts at the wrong input node", p)
		}
		if path[len(path)-1] != be.Node(perm[p]/2, 2*be.Dim()) {
			t.Fatalf("port %d ends at the wrong output node", p)
		}
		for i := 0; i+1 < len(path); i++ {
			if !be.HasEdge(path[i], path[i+1]) {
				t.Fatalf("port %d hop %d is not an edge", p, i)
			}
		}
	}
	if ok, reused := VerifyEdgeDisjoint(be.Graph, paths); !ok {
		t.Fatalf("port paths reuse edge %v", reused)
	}
}

func TestRoutePortPermutationAllPermsTiny(t *testing.T) {
	// Full rearrangeability at the port level: all 24 permutations of the
	// 4 ports of a 2-input Beneš.
	be := topology.NewBenes(2)
	for _, perm := range allPermutations(4) {
		paths, err := RoutePortPermutation(be, perm)
		if err != nil {
			t.Fatalf("perm %v: %v", perm, err)
		}
		checkPortPaths(t, be, perm, paths)
	}
}

func TestRoutePortPermutationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 300; trial++ {
		n := 1 << (1 + rng.Intn(5)) // 2..32
		be := topology.NewBenes(n)
		perm := rng.Perm(2 * n)
		paths, err := RoutePortPermutation(be, perm)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkPortPaths(t, be, perm, paths)
	}
}

func TestRoutePortPermutationRejectsBad(t *testing.T) {
	be := topology.NewBenes(4)
	if _, err := RoutePortPermutation(be, []int{0, 1, 2}); err == nil {
		t.Errorf("short port permutation accepted")
	}
}

func TestButterflyPortPathsLemma25(t *testing.T) {
	// The literal Lemma 2.5: n edge-disjoint paths in Bn realizing any
	// bijection of the n input ports onto the n output ports, with I and O
	// the embedding's partition of L0.
	rng := rand.New(rand.NewSource(66))
	for _, n := range []int{4, 8, 16, 32} {
		b := topology.NewButterfly(n)
		ins, outs := embed.BenesIOPartition(b)
		for trial := 0; trial < 10; trial++ {
			perm := rng.Perm(n)
			paths, err := ButterflyPortPaths(b, perm)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if len(paths) != n {
				t.Fatalf("n=%d: %d paths", n, len(paths))
			}
			for p, path := range paths {
				if path[0] != ins[p/2] {
					t.Fatalf("n=%d: port %d starts at %d, want I node %d", n, p, path[0], ins[p/2])
				}
				if path[len(path)-1] != outs[perm[p]/2] {
					t.Fatalf("n=%d: port %d ends at the wrong O node", n, p)
				}
				for i := 0; i+1 < len(path); i++ {
					if !b.HasEdge(path[i], path[i+1]) {
						t.Fatalf("n=%d: port %d hop %d not an edge", n, p, i)
					}
				}
			}
			if ok, reused := VerifyEdgeDisjoint(b.Graph, paths); !ok {
				t.Fatalf("n=%d: butterfly port paths reuse edge %v", n, reused)
			}
		}
	}
}

func TestButterflyPortPathsValidation(t *testing.T) {
	b := topology.NewButterfly(8)
	if _, err := ButterflyPortPaths(b, []int{0, 1, 2}); err == nil {
		t.Errorf("short permutation accepted")
	}
	small := topology.NewButterfly(2)
	if _, err := ButterflyPortPaths(small, []int{0, 1}); err == nil {
		t.Errorf("n=2 should be rejected")
	}
}
