package route

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"

	"repro/internal/bitutil"
	"repro/internal/cut"
	"repro/internal/solve"
	"repro/internal/topology"
)

// simState is the reusable scratch of the flat routing engine. Paths are
// compiled into flat directed-edge-id sequences, per-edge FIFO queues are
// intrusive linked lists over a single qNext array, and the set of busy
// edges is a bitset iterated in id order — so one state, once warmed,
// runs any number of trials on the same butterfly without allocating.
type simState struct {
	b  *topology.Butterfly
	ix *dirIndex

	// Cut accounting, set per call by setCut.
	crossing []bool // per directed edge: endpoints on opposite sides
	capacity int
	haveCut  bool

	// Compiled paths: packet p follows pathEdges[pathStart[p]:pathStart[p+1]].
	pathStart []int32
	pathEdges []int32
	npaths    int
	prev      int // last node seen by hop, -1 at a path start

	// Per-packet state.
	pos   []int32 // index of the packet's current edge within its sequence
	qNext []int32 // next packet in the same FIFO queue

	// Per-directed-edge FIFO queues plus the busy-edge bitset.
	qHead, qTail []int32
	qLen         []int32
	active       []uint64
	moves        []int32 // per-step snapshot of busy edge ids, reused

	src  rand.Source64
	rng  *rand.Rand
	perm []int

	// Fault-injection state, set per call by setScenario/seedFaults. The
	// fault RNG is separate from the destination RNG, so enabling faults
	// never perturbs which destinations a seed draws — and the zero-value
	// scenario consumes no fault randomness at all.
	fault     FaultOptions
	sw        Switching
	haveDead  bool
	dead      []bool  // per directed edge: permanently failed this trial
	deadCount int     // dead entries set by the last seedFaults
	retry     []int32 // per packet: failed transmission attempts so far
	stamp     []int64 // per directed edge: clock of its last traversal
	clock     int64   // monotone step counter across runs (never reset)
	faultSrc  rand.Source64
	faultRng  *rand.Rand

	// dirty marks a state whose queues may be non-empty (a run panicked
	// mid-flight); such states are not returned to the pool.
	dirty bool
}

// bind points the state at a butterfly, growing (never shrinking the
// capacity of) its arrays and clearing the queue state.
func (st *simState) bind(b *topology.Butterfly) {
	ix := indexFor(b)
	st.b, st.ix = b, ix
	e := ix.numDir()
	if cap(st.qHead) < e {
		st.qHead = make([]int32, e)
		st.qTail = make([]int32, e)
		st.qLen = make([]int32, e)
		st.crossing = make([]bool, e)
		st.active = make([]uint64, (e+63)/64)
		st.moves = make([]int32, 0, e)
	}
	st.qHead = st.qHead[:e]
	st.qTail = st.qTail[:e]
	st.qLen = st.qLen[:e]
	st.crossing = st.crossing[:e]
	st.active = st.active[:(e+63)/64]
	for i := range st.qLen {
		st.qLen[i] = 0
	}
	for i := range st.active {
		st.active[i] = 0
	}
	// The fault arrays grow on their own cap check: states pooled before
	// the fault model existed (or grown for a smaller butterfly) reuse
	// their queue arrays but may still need these.
	if cap(st.dead) < e {
		st.dead = make([]bool, e)
		st.stamp = make([]int64, e)
	}
	st.dead = st.dead[:e]
	st.stamp = st.stamp[:e]
	maxP := b.N()
	if cap(st.pos) < maxP {
		st.pos = make([]int32, maxP)
		st.qNext = make([]int32, maxP)
	}
	st.pos = st.pos[:maxP]
	st.qNext = st.qNext[:maxP]
	if cap(st.retry) < maxP {
		st.retry = make([]int32, maxP)
	}
	st.retry = st.retry[:maxP]
	if st.rng == nil {
		st.src = rand.NewSource(1).(rand.Source64)
		st.rng = rand.New(st.src)
	}
	// Reset to the healthy scenario; setScenario re-arms faults per call.
	st.fault = FaultOptions{}
	st.sw = StoreAndForward
	st.haveDead = false
	st.deadCount = 0
	st.dirty = false
}

// setScenario installs the fault model and switching discipline for the
// trials that follow. Callers must seed the fault plan per trial with
// seedFaults after compiling each trial's paths.
func (st *simState) setScenario(f FaultOptions, sw Switching) {
	if err := f.Validate(); err != nil {
		panic("route: " + err.Error())
	}
	st.fault = f
	st.sw = sw
}

// seedFaults re-seeds the fault RNG for one trial and samples that
// trial's dead-link plan (one Float64 per directed edge, in edge-id
// order — the same enumeration the reference engine uses). A disabled
// fault model consumes nothing.
func (st *simState) seedFaults(seed int64) {
	st.haveDead = false
	st.deadCount = 0
	if !st.fault.Enabled() {
		return
	}
	if st.faultRng == nil {
		st.faultSrc = rand.NewSource(1).(rand.Source64)
		st.faultRng = rand.New(st.faultSrc)
	}
	st.faultSrc.Seed(faultSeed(seed))
	if st.fault.DeadLinkProb > 0 {
		st.haveDead = true
		for e := range st.dead {
			d := st.faultRng.Float64() < st.fault.DeadLinkProb
			st.dead[e] = d
			if d {
				st.deadCount++
			}
		}
	}
}

// setCut installs the reference cut for §1.2 accounting (nil disables it).
func (st *simState) setCut(ref *cut.Cut) {
	if ref == nil {
		st.haveCut = false
		return
	}
	st.haveCut = true
	st.capacity = ref.Capacity()
	for v := 0; v < st.ix.nodes; v++ {
		inS := ref.InS(v)
		for e := st.ix.start[v]; e < st.ix.start[v+1]; e++ {
			st.crossing[e] = inS != ref.InS(int(st.ix.to[e]))
		}
	}
}

func (st *simState) resetPaths() {
	st.pathStart = append(st.pathStart[:0], 0)
	st.pathEdges = st.pathEdges[:0]
	st.npaths = 0
}

func (st *simState) beginPath() { st.prev = -1 }

// hop extends the current path to node, compressing zero-length legs
// (consecutive duplicate nodes) exactly like the reference engine.
func (st *simState) hop(node int) {
	if node == st.prev {
		return
	}
	if st.prev >= 0 {
		st.pathEdges = append(st.pathEdges, st.ix.edgeID(int32(st.prev), int32(node)))
	}
	st.prev = node
}

func (st *simState) endPath() {
	st.pathStart = append(st.pathStart, int32(len(st.pathEdges)))
	st.npaths++
}

// compileRandomDestinations draws one uniform destination per node of Bn
// (self-messages use no edges and are skipped) and compiles the three-leg
// up/across/down routes. The RNG consumption matches the reference engine
// draw for draw, so equal seeds give identical trials.
func (st *simState) compileRandomDestinations(seed int64) {
	if st.b.Wraparound() {
		panic("route: simulator targets Bn")
	}
	st.src.Seed(seed)
	st.resetPaths()
	n := st.b.N()
	for v := 0; v < n; v++ {
		dst := st.rng.Intn(n)
		if dst == v {
			continue
		}
		st.beginPath()
		st.threeLeg(v, dst)
		st.endPath()
	}
}

// compileRandomDestinationsWrapped is the Wn analogue, following the
// Theorem 4.3 three-leg shape.
func (st *simState) compileRandomDestinationsWrapped(seed int64) {
	if !st.b.Wraparound() {
		panic("route: wrapped simulator targets Wn")
	}
	st.src.Seed(seed)
	st.resetPaths()
	n := st.b.N()
	for v := 0; v < n; v++ {
		dst := st.rng.Intn(n)
		if dst == v {
			continue
		}
		st.beginPath()
		st.threeLeg(v, dst)
		st.endPath()
	}
}

// compilePermutation compiles the monotone Lemma 2.3 routes of an
// input→output permutation on Bn.
func (st *simState) compilePermutation(perm []int) error {
	if st.b.Wraparound() {
		panic("route: simulator targets Bn")
	}
	if err := checkPermutation(perm, st.b.Inputs()); err != nil {
		return err
	}
	st.resetPaths()
	for w, q := range perm {
		st.beginPath()
		st.monotone(w, q)
		st.endPath()
	}
	return nil
}

// compileRandomPermutation draws a uniform permutation with the same
// Fisher–Yates sequence as rand.Perm (so seeds reproduce the experiments'
// draws) into a reusable buffer, then compiles its monotone routes.
func (st *simState) compileRandomPermutation(seed int64) {
	if st.b.Wraparound() {
		panic("route: simulator targets Bn")
	}
	st.src.Seed(seed)
	n := st.b.Inputs()
	if cap(st.perm) < n {
		st.perm = make([]int, n)
	}
	p := st.perm[:n]
	for i := 0; i < n; i++ {
		j := st.rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	if err := st.compilePermutation(p); err != nil {
		panic(err) // the buffer is a valid permutation by construction
	}
}

// compileHotSpot draws one uniform hot node per trial and routes a packet
// from every other node of Bn to it — the adversarial all-to-one pattern
// that serializes on the hot node's in-edges regardless of bisection.
func (st *simState) compileHotSpot(seed int64) {
	if st.b.Wraparound() {
		panic("route: simulator targets Bn")
	}
	st.src.Seed(seed)
	st.resetPaths()
	n := st.b.N()
	hot := st.rng.Intn(n)
	for v := 0; v < n; v++ {
		if v == hot {
			continue
		}
		st.beginPath()
		st.threeLeg(v, hot)
		st.endPath()
	}
}

// compileBitReversal routes node ⟨w,l⟩ of Bn to ⟨reverse(w),l⟩ — the
// classic adversarial permutation for greedy column routing (every packet
// flips all differing bits, concentrating traffic mid-network). It is
// deterministic: seeds only vary the fault plan, not the traffic.
func (st *simState) compileBitReversal() {
	if st.b.Wraparound() {
		panic("route: simulator targets Bn")
	}
	st.resetPaths()
	b, d := st.b, st.b.Dim()
	for v := 0; v < b.N(); v++ {
		w, l := b.Column(v), b.Level(v)
		rw := bitutil.Reverse(w, d)
		if rw == w {
			continue // a fixed column maps to itself: no packet
		}
		st.beginPath()
		st.threeLeg(v, b.Node(rw, l))
		st.endPath()
	}
}

// compileKind compiles one trial of kind from seed. The topology has been
// validated by the caller (checkKindTopology).
func (st *simState) compileKind(kind TrialKind, seed int64) {
	switch kind {
	case RandomDestinations:
		st.compileRandomDestinations(seed)
	case WrappedRandomDestinations:
		st.compileRandomDestinationsWrapped(seed)
	case RandomPermutations:
		st.compileRandomPermutation(seed)
	case HotSpotDestinations:
		st.compileHotSpot(seed)
	case BitReversalDestinations:
		st.compileBitReversal()
	default:
		panic(fmt.Sprintf("route: unknown trial kind %d", int(kind)))
	}
}

// threeLeg walks the three-leg route: up the source column to level 0,
// across the (rotated, for Wn) monotone path, down the destination column.
// b.Node's level wraparound makes the same walk serve Bn (threeLegPath)
// and Wn (the Theorem 4.3 shape with start level 0).
func (st *simState) threeLeg(u, v int) {
	b, d := st.b, st.b.Dim()
	wu, iu := b.Column(u), b.Level(u)
	wv, iv := b.Column(v), b.Level(v)
	for l := iu; l >= 0; l-- {
		st.hop(b.Node(wu, l))
	}
	w := wu
	for i := 0; i < d; i++ {
		if bitutil.Bit(w, d, i+1) != bitutil.Bit(wv, d, i+1) {
			w = bitutil.FlipBit(w, d, i+1)
		}
		st.hop(b.Node(w, i+1))
	}
	for l := d - 1; l >= iv; l-- {
		st.hop(b.Node(wv, l))
	}
}

// monotone walks the unique level-increasing path from input w0 to output w1.
func (st *simState) monotone(w0, w1 int) {
	b, d := st.b, st.b.Dim()
	w := w0
	st.hop(b.Node(w, 0))
	for i := 0; i < d; i++ {
		if bitutil.Bit(w, d, i+1) != bitutil.Bit(w1, d, i+1) {
			w = bitutil.FlipBit(w, d, i+1)
		}
		st.hop(b.Node(w, i+1))
	}
}

// push appends packet pk to edge e's FIFO queue.
func (st *simState) push(e, pk int32) {
	if st.qLen[e] == 0 {
		st.qHead[e] = pk
		st.active[e>>6] |= 1 << uint(e&63)
	} else {
		st.qNext[st.qTail[e]] = pk
	}
	st.qTail[e] = pk
	st.qNext[pk] = -1
	st.qLen[e]++
}

// popHead removes and returns the head packet of edge e's FIFO queue,
// clearing the busy bit when the queue drains.
func (st *simState) popHead(e int32) int32 {
	pk := st.qHead[e]
	st.qHead[e] = st.qNext[pk]
	st.qLen[e]--
	if st.qLen[e] == 0 {
		st.active[e>>6] &^= 1 << uint(e&63)
	}
	return pk
}

// clearQueues empties every FIFO queue and the busy bitset, returning an
// exhausted (step-limited) state to a pool-safe condition.
func (st *simState) clearQueues() {
	for i := range st.qLen {
		st.qLen[i] = 0
	}
	for i := range st.active {
		st.active[i] = 0
	}
}

// run executes the synchronous store-and-forward model on the compiled
// paths until every packet arrives. Each step snapshots the busy edges in
// increasing id order, then forwards one packet per edge in that same
// order — the deterministic schedule the reference engine sorts for.
func (st *simState) run(maxSteps int) SimResult {
	res, _ := st.runMonitored(maxSteps, nil)
	return res
}

// stepPollStride is how many simulated steps pass between stop-flag
// polls in runMonitored: frequent enough that cancellation lands within
// a few thousand packet moves, sparse enough that the branch stays out
// of the per-step cost (the single-trial benchmark is alloc-free and
// runs within noise of the unmonitored engine).
const stepPollStride = 32

// runMonitored is run with cooperative cancellation: the monitor's stop
// flag is polled every stepPollStride simulated steps (a step forwards
// up to one packet per busy edge, so each poll is amortized over many
// thousands of packet moves). An interrupted trial returns ok=false and
// leaves the state dirty — its queues still hold packets — so putState
// drops it instead of pooling it.
func (st *simState) runMonitored(maxSteps int, mon *solve.Monitor) (res SimResult, ok bool) {
	res = SimResult{Packets: st.npaths, DeadLinks: st.deadCount}
	if st.haveCut {
		for p := 0; p < st.npaths; p++ {
			for e := st.pathStart[p]; e < st.pathStart[p+1]; e++ {
				if st.crossing[st.pathEdges[e]] {
					res.CutCrossings++
					break
				}
			}
		}
		if c := st.capacity; c > 0 {
			res.CongestionBound = (res.CutCrossings + c - 1) / c
		}
	}

	st.dirty = true
	drops := st.fault.DropProb > 0
	remaining := 0
	for p := 0; p < st.npaths; p++ {
		st.pos[p] = 0
		if drops {
			st.retry[p] = 0
		}
		first := st.pathStart[p]
		if first == st.pathStart[p+1] {
			res.Delivered++ // zero-edge route: already home
			continue
		}
		e := st.pathEdges[first]
		if st.haveDead && st.dead[e] {
			res.Dropped++ // injected straight into a dead link
			continue
		}
		st.push(e, int32(p))
		remaining++
	}
	pollIn := stepPollStride
	for remaining > 0 {
		pollIn--
		if pollIn <= 0 {
			pollIn = stepPollStride
			if mon.Stopped() {
				return res, false
			}
		}
		res.Steps++
		if res.Steps > maxSteps {
			// Non-convergence is a reportable outcome, not a crash: heavy
			// drop rates with unbounded retransmission legitimately exceed
			// any step limit, and the daemon must answer such requests with
			// an error, not a panic. The queues are cleared so the state
			// stays pool-safe.
			res.Steps = maxSteps
			res.Exhausted = true
			st.clearQueues()
			st.dirty = false
			return res, true
		}
		st.clock++
		moves := st.moves[:0]
		for wi, word := range st.active {
			base := int32(wi) << 6
			for word != 0 {
				e := base + int32(bits.TrailingZeros64(word))
				word &= word - 1
				if int(st.qLen[e]) > res.MaxQueue {
					res.MaxQueue = int(st.qLen[e])
				}
				moves = append(moves, e)
			}
		}
		st.moves = moves
		for _, e := range moves {
			pk := st.qHead[e]
			if drops && st.faultRng.Float64() < st.fault.DropProb {
				res.Retransmits++
				st.retry[pk]++
				if st.fault.MaxRetransmits > 0 && int(st.retry[pk]) >= st.fault.MaxRetransmits {
					st.popHead(e)
					remaining--
					res.Dropped++
				}
				continue
			}
			st.popHead(e)
			remaining--
			if st.sw == CutThrough {
				st.stamp[e] = st.clock
			}
			st.pos[pk]++
			next := st.pathStart[pk] + st.pos[pk]
			if next >= st.pathStart[pk+1] {
				res.Delivered++
				continue
			}
			ne := st.pathEdges[next]
			if st.haveDead && st.dead[ne] {
				res.Dropped++
				continue
			}
			if st.sw == CutThrough {
				var consumed bool
				ne, consumed = st.cutThrough(pk, ne, &res)
				if consumed {
					continue
				}
			}
			st.push(ne, pk)
			remaining++
		}
	}
	st.dirty = false
	return res, true
}

// cutThrough advances packet pk through consecutive idle edges (empty
// queue, not yet traversed this step) within the current step, starting
// from candidate edge ne — which the caller has already checked is alive.
// It returns the edge the packet stalls on (consumed=false → the caller
// enqueues it there) or consumed=true when the walk delivered or dropped
// the packet. Each hop of the walk is one transmission attempt and draws
// its own drop decision, in the same order the reference engine draws.
func (st *simState) cutThrough(pk, ne int32, res *SimResult) (int32, bool) {
	drops := st.fault.DropProb > 0
	for st.qLen[ne] == 0 && st.stamp[ne] != st.clock {
		if drops && st.faultRng.Float64() < st.fault.DropProb {
			res.Retransmits++
			st.retry[pk]++
			if st.fault.MaxRetransmits > 0 && int(st.retry[pk]) >= st.fault.MaxRetransmits {
				res.Dropped++
				return ne, true
			}
			return ne, false // stall here; retransmit from this queue next step
		}
		st.stamp[ne] = st.clock
		st.pos[pk]++
		next := st.pathStart[pk] + st.pos[pk]
		if next >= st.pathStart[pk+1] {
			res.Delivered++
			return ne, true
		}
		nxt := st.pathEdges[next]
		if st.haveDead && st.dead[nxt] {
			res.Dropped++
			return ne, true
		}
		ne = nxt
	}
	return ne, false
}

// defaultMaxSteps is the non-convergence guard limit: any correct
// synchronous schedule on N packets of ≤3·log n hops finishes far below it.
func defaultMaxSteps(b *topology.Butterfly) int { return 64 * b.N() }

// statePool recycles simulation states across calls and trials; a warmed
// state runs a trial with zero allocations.
var statePool sync.Pool

func getState(b *topology.Butterfly) *simState {
	st, _ := statePool.Get().(*simState)
	if st == nil {
		st = new(simState)
	}
	st.bind(b)
	return st
}

func putState(st *simState) {
	if !st.dirty {
		statePool.Put(st)
	}
}

// SimulateRandomDestinations routes one packet from every node of Bn to an
// independently chosen uniform random node, along three-leg up/across/down
// routes, under synchronous store-and-forward switching (one packet per
// directed edge per step, FIFO queues). The reference cut supplies the
// §1.2 accounting: the routing time is at least CutCrossings / C(S,S̄).
// It runs on the flat engine and agrees with
// SimulateRandomDestinationsReference result for result.
func SimulateRandomDestinations(b *topology.Butterfly, ref *cut.Cut, seed int64) SimResult {
	st := getState(b)
	defer putState(st)
	st.setCut(ref)
	st.compileRandomDestinations(seed)
	return st.run(defaultMaxSteps(b))
}

// SimulateRandomDestinationsWrapped is the Wn analogue of
// SimulateRandomDestinations: routes follow the Theorem 4.3 three-leg shape
// (up the source column to level 0, the rotated monotone path into the
// destination column, then down to the destination).
func SimulateRandomDestinationsWrapped(w *topology.Butterfly, ref *cut.Cut, seed int64) SimResult {
	st := getState(w)
	defer putState(st)
	st.setCut(ref)
	st.compileRandomDestinationsWrapped(seed)
	return st.run(defaultMaxSteps(w))
}

// SimulatePermutation routes one packet from every input of Bn to output
// perm[input] along the monotone paths of Lemma 2.3.
func SimulatePermutation(b *topology.Butterfly, ref *cut.Cut, perm []int) (SimResult, error) {
	st := getState(b)
	defer putState(st)
	st.setCut(ref)
	if err := st.compilePermutation(perm); err != nil {
		return SimResult{}, err
	}
	return st.run(defaultMaxSteps(b)), nil
}

// checkKindTopology verifies that kind can run on b, surfacing the
// compile-time panics as a returned error for request-level validation.
func checkKindTopology(kind TrialKind, b *topology.Butterfly) error {
	switch kind {
	case RandomDestinations, RandomPermutations, HotSpotDestinations, BitReversalDestinations:
		if b.Wraparound() {
			return fmt.Errorf("route: %s targets Bn, got a wraparound butterfly", kind)
		}
	case WrappedRandomDestinations:
		if !b.Wraparound() {
			return fmt.Errorf("route: %s targets Wn, got an ordinary butterfly", kind)
		}
	default:
		return fmt.Errorf("route: unknown trial kind %d", int(kind))
	}
	return nil
}

// SimulateScenario runs one trial of kind on b under the given fault model
// and switching discipline on the flat engine. Seed drives both the
// traffic draw and (through a separate RNG stream) the fault plan; with
// the zero FaultOptions and StoreAndForward it is byte-identical to the
// healthy single-trial entry points. A trial that exceeds the step limit
// returns with Exhausted set — never a panic.
func SimulateScenario(b *topology.Butterfly, ref *cut.Cut, kind TrialKind, seed int64, f FaultOptions, sw Switching) (SimResult, error) {
	if err := checkKindTopology(kind, b); err != nil {
		return SimResult{}, err
	}
	if err := f.Validate(); err != nil {
		return SimResult{}, err
	}
	st := getState(b)
	defer putState(st)
	st.setCut(ref)
	st.setScenario(f, sw)
	st.compileKind(kind, seed)
	st.seedFaults(seed)
	return st.run(defaultMaxSteps(b)), nil
}
