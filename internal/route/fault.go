package route

import "fmt"

// This file defines the fault model of the routing simulator: lossy links
// with deterministic seeded retransmission, permanently dead links sampled
// per trial, and the switching discipline. The §1.2 bound
// time ≥ N/(4·BW) certifies routing time on a healthy network; these
// knobs measure how far greedy routing degrades from that floor as links
// die and traffic turns adversarial. Every fault decision is drawn from a
// dedicated per-trial RNG (derived from the trial seed by faultSeed), so
// lossy runs reproduce byte-identically at any worker count and the
// zero-value FaultOptions consumes no randomness at all — fault-free
// simulations are bit-for-bit the healthy engine.

// Switching selects the switch discipline of the simulator.
type Switching int

const (
	// StoreAndForward is the classic synchronous model: a packet advances
	// at most one edge per step and waits in the FIFO queue of each edge.
	StoreAndForward Switching = iota
	// CutThrough lets a packet that wins its edge keep advancing through
	// consecutive idle edges (empty queue, not yet used this step) within
	// the same step — the wormhole/cut-through latency collapse. Edge
	// capacity still holds: every edge carries at most one packet per step.
	CutThrough
)

func (s Switching) String() string {
	switch s {
	case StoreAndForward:
		return "store-and-forward"
	case CutThrough:
		return "cut-through"
	}
	return fmt.Sprintf("Switching(%d)", int(s))
}

// Slug is the short machine-readable name used in manifests, cache keys
// and query parameters.
func (s Switching) Slug() string {
	if s == CutThrough {
		return "ct"
	}
	return "sf"
}

// ParseSwitching resolves a slug or full name to a Switching mode.
func ParseSwitching(s string) (Switching, error) {
	switch s {
	case "sf", "store-and-forward":
		return StoreAndForward, nil
	case "ct", "cut-through", "wormhole":
		return CutThrough, nil
	}
	return StoreAndForward, fmt.Errorf("switching: want sf or ct (got %q)", s)
}

// FaultOptions injects link faults into a simulation. The zero value is
// the healthy network: no drops, no dead links, and — by construction —
// byte-identical behavior to a simulation run without any fault model.
type FaultOptions struct {
	// DropProb is the probability that one transmission attempt across a
	// link loses the packet, in [0, 1). A lost packet stays at the head of
	// its queue and retransmits on the next step.
	DropProb float64
	// MaxRetransmits bounds the failed transmission attempts of one
	// packet: the MaxRetransmits-th loss drops the packet permanently.
	// 0 means retry forever (the link layer never gives up).
	MaxRetransmits int
	// DeadLinkProb is the probability that a directed link is permanently
	// dead for the whole trial, in [0, 1). Dead links are sampled once per
	// trial from the trial's fault seed; a packet whose next hop is dead
	// is dropped at that point (greedy routes carry no detours).
	DeadLinkProb float64
}

// Enabled reports whether any fault is configured.
func (f FaultOptions) Enabled() bool {
	return f.DropProb > 0 || f.DeadLinkProb > 0
}

// Validate rejects probabilities outside [0, 1) and negative budgets.
func (f FaultOptions) Validate() error {
	if f.DropProb < 0 || f.DropProb >= 1 {
		return fmt.Errorf("drop probability must be in [0, 1) (got %g)", f.DropProb)
	}
	if f.DeadLinkProb < 0 || f.DeadLinkProb >= 1 {
		return fmt.Errorf("dead-link probability must be in [0, 1) (got %g)", f.DeadLinkProb)
	}
	if f.MaxRetransmits < 0 {
		return fmt.Errorf("retransmission budget must be ≥ 0 (got %d)", f.MaxRetransmits)
	}
	return nil
}

// faultSeed derives the fault-RNG seed of a trial from the trial's own
// seed (one more splitmix64 step, offset so it never collides with the
// destination stream). Both engines — flat and reference — seed their
// fault RNG with it and draw in the same order: dead links first, in
// directed-edge id order, then one draw per transmission attempt in move
// order, so lossy cross-checks agree draw for draw.
func faultSeed(seed int64) int64 { return TrialSeed(^seed, 0x0fa17) }
