package route

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/construct"
	"repro/internal/solve"
	"repro/internal/topology"
)

func mustPlan(tb testing.TB, n int) *construct.Plan {
	tb.Helper()
	p, err := construct.BestPlan(n)
	if err != nil {
		tb.Fatalf("BestPlan(%d): %v", n, err)
	}
	return p
}

func TestSimulateManyDeadlineZero(t *testing.T) {
	b := topology.NewButterfly(128)
	ref := mustPlan(t, 128).Build(b)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	start := time.Now()
	stats := SimulateMany(b, ref, RandomDestinations, ManyOptions{
		Trials: 50, Seed: 3, Ctx: ctx,
	})
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("deadline-zero run took %v", took)
	}
	if !stats.Cancelled {
		t.Fatal("deadline-zero run not marked cancelled")
	}
	if stats.Requested != 50 {
		t.Fatalf("Requested=%d, want 50", stats.Requested)
	}
	if stats.Trials != 0 {
		t.Fatalf("Trials=%d completed under an expired deadline, want 0", stats.Trials)
	}
	if stats.MeanSteps != 0 || stats.TotalPackets != 0 {
		t.Fatal("empty aggregate has non-zero sums")
	}
}

func TestSimulateManyCancelledAggregatesCompletedOnly(t *testing.T) {
	b := topology.NewButterfly(512)
	ref := mustPlan(t, 512).Build(b)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	stats := SimulateMany(b, ref, RandomDestinations, ManyOptions{
		Trials: 100000, Seed: 3, Ctx: ctx,
	})
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled run took %v", took)
	}
	if !stats.Cancelled {
		t.Fatal("cancelled run not marked")
	}
	if stats.Trials >= stats.Requested {
		t.Fatalf("Trials=%d not below Requested=%d despite cancellation", stats.Trials, stats.Requested)
	}
	if stats.Trials > 0 {
		// The completed trials must aggregate like a plain run of those
		// trials: close to N packets each (self-destined packets are
		// dropped), sane step statistics.
		if stats.MeanPackets <= float64(b.N())/2 || stats.MeanPackets > float64(b.N()) {
			t.Fatalf("MeanPackets=%v out of range for N=%d", stats.MeanPackets, b.N())
		}
		if stats.MinSteps <= 0 || stats.MeanSteps <= 0 {
			t.Fatal("completed trials have non-positive step stats")
		}
	}
}

func TestSimulateManyUncancelledUnaffected(t *testing.T) {
	// With a live (never-cancelled) context the aggregate must be
	// byte-identical to the context-free run at any worker count.
	b := topology.NewButterfly(16)
	ref := mustPlan(t, 16).Build(b)
	want := SimulateMany(b, ref, RandomDestinations, ManyOptions{Trials: 8, Seed: 11, Workers: 1})
	if want.Cancelled || want.Trials != want.Requested {
		t.Fatalf("uncancelled run flagged: %+v", want)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 5, 8} {
		got := SimulateMany(b, ref, RandomDestinations, ManyOptions{
			Trials: 8, Seed: 11, Workers: workers, Ctx: ctx,
		})
		if got.MeanSteps != want.MeanSteps || got.MaxSteps != want.MaxSteps ||
			got.TotalPackets != want.TotalPackets || got.MeanRatio != want.MeanRatio {
			t.Fatalf("workers=%d: aggregate differs from serial: %+v vs %+v", workers, got, want)
		}
	}
}

func TestSimulateManyProgressReportsTrials(t *testing.T) {
	b := topology.NewButterfly(64)
	ref := mustPlan(t, 64).Build(b)
	var last atomic.Int64
	stats := SimulateMany(b, ref, RandomDestinations, ManyOptions{
		Trials: 200, Seed: 1,
		OnProgress:       func(p solve.Progress) { last.Store(p.Explored) },
		ProgressInterval: time.Millisecond,
	})
	if stats.Trials != 200 {
		t.Fatalf("Trials=%d, want 200", stats.Trials)
	}
	if last.Load() == 0 {
		t.Skip("run finished before the first progress tick on this machine")
	}
	if last.Load() > 200 {
		t.Fatalf("progress reported %d trials, more than requested", last.Load())
	}
}
