// Index persistence: the compiled directed-edge CSR indices are pure
// functions of butterfly shape, so a daemon can snapshot its index cache
// at drain and reload it at startup — the routing engine's warm start,
// skipping the build (and its allocation burst) for every shape served
// before the restart.
package route

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"

	"repro/internal/codec"
)

// encodeDirIndex renders one compiled index as a KindRouteIndex payload:
// little-endian u32 node count, u32 directed-edge count, then the start
// and to arrays as i32s. Everything needed to rebuild the dirIndex, and
// nothing that is not checkable on load.
func encodeDirIndex(ix *dirIndex) []byte {
	buf := make([]byte, 8+4*len(ix.start)+4*len(ix.to))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(ix.nodes))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(ix.to)))
	off := 8
	for _, v := range ix.start {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		off += 4
	}
	for _, v := range ix.to {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		off += 4
	}
	return buf
}

// decodeDirIndex parses and structurally validates a KindRouteIndex
// payload. The CRC layer below already caught bit rot; this layer rejects
// well-framed nonsense (wrong lengths, non-monotone offsets, targets out
// of range) so a bad snapshot can never become an index that panics
// mid-simulation.
func decodeDirIndex(payload []byte) (*dirIndex, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("route: index payload too short (%d bytes)", len(payload))
	}
	nodes := int(binary.LittleEndian.Uint32(payload[0:4]))
	numTo := int(binary.LittleEndian.Uint32(payload[4:8]))
	if nodes < 0 || numTo < 0 || nodes > 1<<28 || numTo > 4*nodes {
		return nil, fmt.Errorf("route: implausible index shape (nodes=%d, edges=%d)", nodes, numTo)
	}
	want := 8 + 4*(nodes+1) + 4*numTo
	if len(payload) != want {
		return nil, fmt.Errorf("route: index payload is %d bytes, want %d for nodes=%d edges=%d",
			len(payload), want, nodes, numTo)
	}
	ix := &dirIndex{
		nodes: nodes,
		start: make([]int32, nodes+1),
		to:    make([]int32, numTo),
	}
	off := 8
	for i := range ix.start {
		ix.start[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	for i := range ix.to {
		ix.to[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	if ix.start[0] != 0 || ix.start[nodes] != int32(numTo) {
		return nil, fmt.Errorf("route: index offsets do not span the edge array")
	}
	for u := 0; u < nodes; u++ {
		if ix.start[u] > ix.start[u+1] {
			return nil, fmt.Errorf("route: index offsets not monotone at node %d", u)
		}
		for e := ix.start[u]; e < ix.start[u+1]; e++ {
			if ix.to[e] < 0 || ix.to[e] >= int32(nodes) {
				return nil, fmt.Errorf("route: edge %d targets node %d outside [0,%d)", e, ix.to[e], nodes)
			}
			if e > ix.start[u] && ix.to[e] <= ix.to[e-1] {
				return nil, fmt.Errorf("route: out-edges of node %d not strictly sorted", u)
			}
		}
	}
	return ix, nil
}

// indexRecordKey is the snapshot record key of one butterfly shape.
func indexRecordKey(k indexKey) string {
	return fmt.Sprintf("n=%d&wrap=%t", k.n, k.wrap)
}

// checkShape cross-checks a decoded index against its record key: a
// butterfly on n inputs has n·(log2 n + 1) nodes, n·log2 n wrapped.
func checkShape(k indexKey, ix *dirIndex) error {
	if k.n < 2 || k.n&(k.n-1) != 0 {
		return fmt.Errorf("route: snapshot key n=%d is not a power of two", k.n)
	}
	dim := bits.Len(uint(k.n)) - 1
	wantNodes := k.n * (dim + 1)
	if k.wrap {
		wantNodes = k.n * dim
	}
	if ix.nodes != wantNodes {
		return fmt.Errorf("route: snapshot for n=%d wrap=%t has %d nodes, want %d",
			k.n, k.wrap, ix.nodes, wantNodes)
	}
	return nil
}

// SaveIndexCache snapshots every compiled index currently cached to path
// as a codec stream of KindRouteIndex records (least recently used
// first, so reloading preserves the eviction order). The file is built
// beside path and renamed into place; a crash leaves the old snapshot.
// It returns the number of indices written.
func SaveIndexCache(path string) (int, error) {
	indexCache.Lock()
	keys := append([]indexKey(nil), indexCache.order...)
	indices := make([]*dirIndex, len(keys))
	for i, k := range keys {
		indices[i] = indexCache.m[k]
	}
	indexCache.Unlock()

	tmp := filepath.Join(filepath.Dir(path), ".routeindex.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("route: snapshot: %w", err)
	}
	defer os.Remove(tmp) // no-op once the rename lands
	w, err := codec.NewWriter(f)
	if err != nil {
		f.Close()
		return 0, err
	}
	for i, k := range keys {
		rec := codec.Record{
			Kind:    codec.KindRouteIndex,
			Key:     indexRecordKey(k),
			Payload: encodeDirIndex(indices[i]),
		}
		if _, err := w.Write(rec); err != nil {
			f.Close()
			return 0, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("route: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("route: snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("route: snapshot: %w", err)
	}
	return len(keys), nil
}

// LoadIndexCache seeds the index cache from a SaveIndexCache snapshot,
// validating every record before it is trusted. Missing file is a clean
// zero (first start); any decode or validation failure is an error — the
// caller decides whether a stale snapshot is fatal (butterflyd warns and
// rebuilds lazily). It returns the number of indices loaded.
func LoadIndexCache(path string) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("route: snapshot: %w", err)
	}
	defer f.Close()
	d, err := codec.NewReader(f)
	if err != nil {
		return 0, fmt.Errorf("route: snapshot %s: %w", path, err)
	}
	loaded := 0
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return loaded, nil
		}
		if err != nil {
			return loaded, fmt.Errorf("route: snapshot %s: %w", path, err)
		}
		if rec.Kind != codec.KindRouteIndex {
			return loaded, fmt.Errorf("route: snapshot %s: record %q has kind %d, want route index", path, rec.Key, rec.Kind)
		}
		var k indexKey
		if _, err := fmt.Sscanf(rec.Key, "n=%d&wrap=%t", &k.n, &k.wrap); err != nil {
			return loaded, fmt.Errorf("route: snapshot %s: unparseable key %q", path, rec.Key)
		}
		ix, err := decodeDirIndex(rec.Payload)
		if err != nil {
			return loaded, fmt.Errorf("route: snapshot %s: record %q: %w", path, rec.Key, err)
		}
		if err := checkShape(k, ix); err != nil {
			return loaded, fmt.Errorf("route: snapshot %s: %w", path, err)
		}
		seedIndex(k, ix)
		loaded++
	}
}

// seedIndex inserts a prebuilt index into the cache with the same
// bounded-LRU behavior as a live build.
func seedIndex(key indexKey, ix *dirIndex) {
	indexCache.Lock()
	defer indexCache.Unlock()
	if _, ok := indexCache.m[key]; ok {
		indexCache.m[key] = ix
		promoteLocked(key)
		return
	}
	if indexCache.m == nil {
		indexCache.m = make(map[indexKey]*dirIndex)
	}
	indexCache.m[key] = ix
	indexCache.order = append(indexCache.order, key)
	if len(indexCache.order) > indexCacheLimit {
		delete(indexCache.m, indexCache.order[0])
		indexCache.order = indexCache.order[1:]
	}
}
