package route

import (
	"sync"
	"testing"

	"repro/internal/topology"
)

// resetIndexCache empties the shape-keyed index cache so LRU tests start
// from a known state.
func resetIndexCache() {
	indexCache.Lock()
	defer indexCache.Unlock()
	indexCache.m = nil
	indexCache.order = nil
}

// TestIndexCacheLRUPromotesHotShape is the regression test for the FIFO
// eviction bug: a shape touched on every cycle of a sweep over more than
// indexCacheLimit shapes must keep its prebuilt index (pointer identity),
// instead of being evicted in insertion order and rebuilt every cycle.
func TestIndexCacheLRUPromotesHotShape(t *testing.T) {
	resetIndexCache()
	defer resetIndexCache()

	hot := topology.NewButterfly(4)
	hotIx := indexFor(hot)

	// Sweep indexCacheLimit cold shapes, re-touching the hot shape between
	// insertions. Under FIFO the hot shape (oldest insertion) dies as soon
	// as the cache overflows; under LRU every re-touch keeps it newest.
	cold := []*topology.Butterfly{
		topology.NewButterfly(2),
		topology.NewButterfly(8),
		topology.NewButterfly(16),
		topology.NewButterfly(32),
		topology.NewWrappedButterfly(4),
		topology.NewWrappedButterfly(8),
		topology.NewWrappedButterfly(16),
		topology.NewWrappedButterfly(32),
	}
	if len(cold) != indexCacheLimit {
		t.Fatalf("test wants %d cold shapes, has %d", indexCacheLimit, len(cold))
	}
	for _, b := range cold {
		indexFor(b)
		if got := indexFor(hot); got != hotIx {
			t.Fatalf("hot shape rebuilt mid-sweep: %p != %p", got, hotIx)
		}
	}
	if got := indexFor(hot); got != hotIx {
		t.Fatalf("hot shape evicted by cold sweep: %p != %p", got, hotIx)
	}

	// The first cold shape is the one that should have been evicted.
	indexCache.Lock()
	_, aliveFirstCold := indexCache.m[indexKey{cold[0].Inputs(), cold[0].Wraparound()}]
	size := len(indexCache.m)
	indexCache.Unlock()
	if aliveFirstCold {
		t.Fatal("least-recently-used cold shape was not evicted")
	}
	if size != indexCacheLimit {
		t.Fatalf("cache holds %d entries, want %d", size, indexCacheLimit)
	}
}

// TestSimulateManyConcurrentShapes runs SimulateMany across more distinct
// shapes than the index cache holds, concurrently, so cache eviction,
// rebuild, and LRU promotion race against each other. The assertions are
// per-shape determinism (same seed → same aggregate, whatever the cache
// did); the race detector covers the locking.
func TestSimulateManyConcurrentShapes(t *testing.T) {
	resetIndexCache()
	defer resetIndexCache()

	type shape struct {
		n    int
		wrap bool
	}
	shapes := []shape{
		{2, false}, {4, false}, {8, false}, {16, false}, {32, false},
		{4, true}, {8, true}, {16, true}, {32, true}, {64, true},
	}
	if len(shapes) <= indexCacheLimit {
		t.Fatalf("test wants more than %d shapes, has %d", indexCacheLimit, len(shapes))
	}

	// Reference aggregates, computed serially.
	want := make([]TrialStats, len(shapes))
	for i, s := range shapes {
		want[i] = runShape(s.n, s.wrap)
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan string, rounds*len(shapes))
	for r := 0; r < rounds; r++ {
		for i, s := range shapes {
			wg.Add(1)
			go func(i int, s shape) {
				defer wg.Done()
				got := runShape(s.n, s.wrap)
				if got.Trials != want[i].Trials || got.MeanSteps != want[i].MeanSteps ||
					got.TotalPackets != want[i].TotalPackets || got.MaxQueuePeak != want[i].MaxQueuePeak {
					errs <- "shape diverged under concurrency"
				}
			}(i, s)
		}
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func runShape(n int, wrap bool) TrialStats {
	if wrap {
		w := topology.NewWrappedButterfly(n)
		return SimulateMany(w, nil, WrappedRandomDestinations, ManyOptions{Trials: 3, Workers: 2, Seed: 7})
	}
	b := topology.NewButterfly(n)
	return SimulateMany(b, nil, RandomDestinations, ManyOptions{Trials: 3, Workers: 2, Seed: 7})
}
