// Package route implements the routing substrate the paper leans on: the
// unique monotone (bit-fixing) paths of Bn (Lemma 2.3), the looping
// algorithm that routes any permutation through a Beneš network along
// edge-disjoint paths (the rearrangeability underlying Lemma 2.5), and a
// synchronous store-and-forward simulator for the §1.2 relation between
// routing time and bisection width.
package route

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/topology"
)

// RoutePermutation routes the permutation perm (inputs to outputs, as column
// indices) through the Beneš network along pairwise edge-disjoint paths,
// using the classical looping algorithm. It returns one node path per
// input, from level 0 to level 2·log n.
func RoutePermutation(be *topology.Benes, perm []int) ([][]int, error) {
	n := be.Inputs()
	if err := checkPermutation(perm, n); err != nil {
		return nil, err
	}
	colSeqs := routeColumns(n, perm)
	paths := make([][]int, n)
	for w, cols := range colSeqs {
		path := make([]int, len(cols))
		for l, c := range cols {
			path[l] = be.Node(c, l)
		}
		paths[w] = path
	}
	return paths, nil
}

func checkPermutation(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("route: permutation has %d entries for %d inputs", len(perm), n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("route: not a permutation of 0..%d", n-1)
		}
		seen[v] = true
	}
	return nil
}

// routeColumns returns, for each input x of an m-column Beneš network, the
// sequence of columns its path occupies on levels 0..2·log m.
func routeColumns(m int, pi []int) [][]int {
	if m == 1 {
		return [][]int{{0}}
	}
	if m == 2 {
		if pi[0] == 0 {
			return [][]int{{0, 0, 0}, {1, 1, 1}}
		}
		// Swap: cross on the first layer, straight on the second.
		return [][]int{{0, 1, 1}, {1, 0, 0}}
	}

	half := m / 2
	// Loop coloring: c[x] is the subnetwork (0 = upper, 1 = lower) carrying
	// input x. Two "must differ" constraints pair the inputs: x with x⊕half
	// (they share first-layer switches) and inv[y] with inv[y⊕half] for
	// every output y (they share last-layer switches). Each constraint set
	// is a perfect matching, so their union is a disjoint set of even
	// cycles — the "loops" — and alternating colors along them always
	// succeeds.
	c := make([]int8, m)
	for i := range c {
		c[i] = -1
	}
	inv := make([]int, m)
	for x, y := range pi {
		inv[y] = x
	}
	type frame struct {
		x   int
		col int8
	}
	var stack []frame
	for start := 0; start < m; start++ {
		if c[start] >= 0 {
			continue
		}
		stack = append(stack[:0], frame{start, 0})
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c[f.x] >= 0 {
				continue
			}
			c[f.x] = f.col
			stack = append(stack,
				frame{f.x ^ half, 1 - f.col},
				frame{inv[pi[f.x]^half], 1 - f.col})
		}
	}

	// Build the two sub-permutations and recurse.
	subPi := [2][]int{make([]int, half), make([]int, half)}
	for x, y := range pi {
		subPi[c[x]][x&(half-1)] = y & (half - 1)
	}
	subPaths := [2][][]int{routeColumns(half, subPi[0]), routeColumns(half, subPi[1])}

	out := make([][]int, m)
	for x, y := range pi {
		color := int(c[x])
		sub := subPaths[color][x&(half-1)]
		cols := make([]int, 0, len(sub)+2)
		cols = append(cols, x)
		for _, sc := range sub {
			cols = append(cols, color*half+sc)
		}
		cols = append(cols, y)
		out[x] = cols
	}
	return out
}

// VerifyEdgeDisjoint reports whether the given node paths use every edge of
// g at most once (in either direction), returning the first reused edge
// pair if not.
func VerifyEdgeDisjoint(g *graph.Graph, paths [][]int) (ok bool, reused [2]int) {
	used := make(map[[2]int]bool)
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			u, v := p[i], p[i+1]
			if u > v {
				u, v = v, u
			}
			key := [2]int{u, v}
			if used[key] {
				return false, key
			}
			used[key] = true
		}
	}
	return true, [2]int{}
}
