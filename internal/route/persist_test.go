package route

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/topology"
)

func TestIndexSnapshotRoundTrip(t *testing.T) {
	resetIndexCache()
	defer resetIndexCache()
	fresh := map[indexKey]*dirIndex{
		{8, false}:  indexFor(topology.NewButterfly(8)),
		{8, true}:   indexFor(topology.NewWrappedButterfly(8)),
		{16, false}: indexFor(topology.NewButterfly(16)),
	}

	path := filepath.Join(t.TempDir(), "routeindex.bfc")
	saved, err := SaveIndexCache(path)
	if err != nil || saved != len(fresh) {
		t.Fatalf("saved %d, err=%v, want %d", saved, err, len(fresh))
	}

	resetIndexCache()
	loaded, err := LoadIndexCache(path)
	if err != nil || loaded != len(fresh) {
		t.Fatalf("loaded %d, err=%v, want %d", loaded, err, len(fresh))
	}
	for key, want := range fresh {
		indexCache.Lock()
		got, ok := indexCache.m[key]
		indexCache.Unlock()
		if !ok {
			t.Fatalf("key %+v missing after load", key)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("loaded index for %+v differs from the live build", key)
		}
	}

	// The seeded indices serve: a routing run on a loaded shape matches a
	// cold one.
	warm := SimulateRandomDestinations(topology.NewButterfly(8), nil, 42)
	resetIndexCache()
	cold := SimulateRandomDestinations(topology.NewButterfly(8), nil, 42)
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("routing on a snapshot-loaded index diverges: %+v vs %+v", warm, cold)
	}
}

func TestLoadMissingSnapshotIsCleanZero(t *testing.T) {
	n, err := LoadIndexCache(filepath.Join(t.TempDir(), "absent.bfc"))
	if n != 0 || err != nil {
		t.Fatalf("missing snapshot: n=%d err=%v, want 0, nil", n, err)
	}
}

func TestLoadRejectsCorruptSnapshot(t *testing.T) {
	resetIndexCache()
	defer resetIndexCache()
	indexFor(topology.NewButterfly(8))
	dir := t.TempDir()
	path := filepath.Join(dir, "routeindex.bfc")
	if _, err := SaveIndexCache(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte(nil), good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		resetIndexCache()
		if _, err := LoadIndexCache(p); err == nil {
			t.Errorf("%s: corrupted snapshot loaded without error", name)
		}
	}
	corrupt("flipped.bfc", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })
	corrupt("truncated.bfc", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("foreign.bfc", func(b []byte) []byte { return []byte("{\"not\": \"a snapshot\"}") })
}

// TestLoadRejectsWellFramedNonsense: a record that passes the CRC but
// encodes an impossible index (wrong kind, bad key, shape mismatch,
// non-monotone offsets) is rejected by the validation layer.
func TestLoadRejectsWellFramedNonsense(t *testing.T) {
	defer resetIndexCache()
	write := func(name string, rec codec.Record) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		w, err := codec.NewWriter(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return p
	}

	resetIndexCache()
	payload := encodeDirIndex(indexFor(topology.NewButterfly(8)))

	cases := []codec.Record{
		{Kind: codec.KindManifest, Key: "n=8&wrap=false", Payload: payload},                    // wrong kind
		{Kind: codec.KindRouteIndex, Key: "gibberish", Payload: payload},                       // unparseable key
		{Kind: codec.KindRouteIndex, Key: "n=6&wrap=false", Payload: payload},                  // n not a power of two
		{Kind: codec.KindRouteIndex, Key: "n=16&wrap=false", Payload: payload},                 // shape mismatch
		{Kind: codec.KindRouteIndex, Key: "n=8&wrap=false", Payload: payload[:len(payload)-4]}, // short payload
	}
	for i, rec := range cases {
		p := write("bad.bfc", rec)
		resetIndexCache()
		if _, err := LoadIndexCache(p); err == nil {
			t.Errorf("case %d (%s): invalid record loaded without error", i, rec.Key)
		}
	}
}
