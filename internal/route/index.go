package route

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/topology"
)

// dirIndex is the precompiled directed-edge view of a butterfly that the
// flat simulation engine runs on. Every ordered node pair (u,v) joined by
// at least one edge gets one directed-edge id; ids are assigned in
// lexicographic (u,v) order, so iterating ids in increasing order is
// exactly the deterministic move order the map-based reference engine
// obtains by sorting — no per-step sort needed. Parallel edges collapse
// onto one id, matching the reference engine's node-pair queue keys.
type dirIndex struct {
	nodes int
	start []int32 // len nodes+1; out-edges of u are ids start[u]..start[u+1]
	to    []int32 // target node per directed-edge id, sorted within each u
}

// numDir returns the number of directed-edge ids.
func (ix *dirIndex) numDir() int { return len(ix.to) }

// edgeID returns the directed-edge id of u→v. The out-degree of a
// butterfly node is at most 4, so a linear scan beats a binary search.
func (ix *dirIndex) edgeID(u, v int32) int32 {
	for e := ix.start[u]; e < ix.start[u+1]; e++ {
		if ix.to[e] == v {
			return e
		}
	}
	panic(fmt.Sprintf("route: %d→%d is not an edge", u, v))
}

func buildDirIndex(b *topology.Butterfly) *dirIndex {
	g := b.Graph
	n := g.N()
	ix := &dirIndex{
		nodes: n,
		start: make([]int32, n+1),
		to:    make([]int32, 0, 2*g.M()),
	}
	buf := make([]int32, 0, 8)
	for v := 0; v < n; v++ {
		ix.start[v] = int32(len(ix.to))
		buf = append(buf[:0], g.Neighbors(v)...)
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		for i, w := range buf {
			if i > 0 && w == buf[i-1] {
				continue // parallel edge: one queue per node pair
			}
			ix.to = append(ix.to, w)
		}
	}
	ix.start[n] = int32(len(ix.to))
	return ix
}

// indexCache keys prebuilt indices by butterfly shape: same (n, wrap)
// means an identical graph, so repeated trials, both experiment kinds,
// and freshly constructed butterflies of the same size all share one
// build. The cache is bounded with LRU eviction: hits promote their key
// to the back of the order, so a hot shape survives a sweep over many
// cold ones (a long-lived server process makes that the common access
// pattern).
var indexCache struct {
	sync.Mutex
	m     map[indexKey]*dirIndex
	order []indexKey
}

type indexKey struct {
	n    int
	wrap bool
}

const indexCacheLimit = 8

func indexFor(b *topology.Butterfly) *dirIndex {
	key := indexKey{b.Inputs(), b.Wraparound()}
	indexCache.Lock()
	defer indexCache.Unlock()
	if ix, ok := indexCache.m[key]; ok {
		promoteLocked(key)
		return ix
	}
	ix := buildDirIndex(b)
	if indexCache.m == nil {
		indexCache.m = make(map[indexKey]*dirIndex)
	}
	indexCache.m[key] = ix
	indexCache.order = append(indexCache.order, key)
	if len(indexCache.order) > indexCacheLimit {
		delete(indexCache.m, indexCache.order[0])
		indexCache.order = indexCache.order[1:]
	}
	return ix
}

// promoteLocked moves key to the back of the eviction order (most
// recently used). Caller holds indexCache.Mutex; the order slice is at
// most indexCacheLimit long, so the linear scan is trivial.
func promoteLocked(key indexKey) {
	order := indexCache.order
	for i, k := range order {
		if k == key {
			copy(order[i:], order[i+1:])
			order[len(order)-1] = key
			return
		}
	}
}
