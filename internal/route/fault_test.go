package route

import (
	"testing"

	"repro/internal/bitutil"
	"repro/internal/topology"
)

// faultKinds are the Bn trial kinds exercised by the fault cross-checks;
// the wrapped kind gets its own loop on Wn.
var faultKinds = []TrialKind{
	RandomDestinations,
	RandomPermutations,
	HotSpotDestinations,
	BitReversalDestinations,
}

// TestFaultFreeByteIdentical is the property test of the fault model's
// zero value: SimulateScenario with zero FaultOptions must be
// byte-identical to the pre-fault single-trial entry points (the fault
// RNG is a separate stream and a disabled model draws nothing from it),
// and the SimulateMany aggregate must stay byte-identical at any worker
// count.
func TestFaultFreeByteIdentical(t *testing.T) {
	b := topology.NewButterfly(16)
	ref := columnCut(b)
	for seed := int64(0); seed < 8; seed++ {
		want := SimulateRandomDestinations(b, ref, seed)
		got, err := SimulateScenario(b, ref, RandomDestinations, seed, FaultOptions{}, StoreAndForward)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("seed %d: scenario %+v, plain %+v", seed, got, want)
		}
		if got.Delivered != got.Packets || got.Dropped != 0 || got.Retransmits != 0 || got.DeadLinks != 0 {
			t.Errorf("seed %d: healthy run reports faults: %+v", seed, got)
		}
	}
	w := topology.NewWrappedButterfly(16)
	wantW := SimulateRandomDestinationsWrapped(w, nil, 3)
	gotW, err := SimulateScenario(w, nil, WrappedRandomDestinations, 3, FaultOptions{}, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if gotW != wantW {
		t.Errorf("Wn: scenario %+v, plain %+v", gotW, wantW)
	}
	var base TrialStats
	for i, workers := range []int{1, 2, 3, 8} {
		s := SimulateMany(b, ref, RandomDestinations, ManyOptions{
			Trials: 12, Workers: workers, Seed: 5,
		})
		if i == 0 {
			base = s
			continue
		}
		if !trialStatsEqual(s, base) {
			t.Errorf("workers=%d: %+v\nworkers=1: %+v", workers, s, base)
		}
	}
	if base.DeliveredRate != 1 {
		t.Errorf("healthy delivered rate %v, want 1", base.DeliveredRate)
	}
}

// faultScenarios spans the fault space the cross-checks cover: pure
// drops (bounded and unbounded retransmission), pure dead links, and
// both at once.
var faultScenarios = []FaultOptions{
	{DropProb: 0.1},
	{DropProb: 0.3, MaxRetransmits: 4},
	{DropProb: 0.5, MaxRetransmits: 1},
	{DeadLinkProb: 0.05},
	{DeadLinkProb: 0.2},
	{DropProb: 0.2, MaxRetransmits: 3, DeadLinkProb: 0.1},
}

// TestScenarioCrossCheck pins the flat engine to the map-based oracle on
// B3–B5 under every fault scenario, both switching disciplines, and all
// Bn trial kinds: every field of SimResult must agree per seed.
func TestScenarioCrossCheck(t *testing.T) {
	for d := 3; d <= 5; d++ {
		b := topology.NewButterfly(1 << d)
		ref := columnCut(b)
		for _, kind := range faultKinds {
			for _, f := range faultScenarios {
				for _, sw := range []Switching{StoreAndForward, CutThrough} {
					for seed := int64(0); seed < 3; seed++ {
						want, err := SimulateScenarioReference(b, ref, kind, seed, f, sw)
						if err != nil {
							t.Fatal(err)
						}
						got, err := SimulateScenario(b, ref, kind, seed, f, sw)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Errorf("B%d %s %s %+v seed %d:\nflat %+v\nref  %+v",
								d, kind.Slug(), sw.Slug(), f, seed, got, want)
						}
						if !got.Exhausted && got.Delivered+got.Dropped != got.Packets {
							t.Errorf("B%d %s %s %+v seed %d: delivered %d + dropped %d != packets %d",
								d, kind.Slug(), sw.Slug(), f, seed, got.Delivered, got.Dropped, got.Packets)
						}
					}
				}
			}
		}
	}
}

// TestScenarioCrossCheckWrapped is the Wn arm of the cross-check.
func TestScenarioCrossCheckWrapped(t *testing.T) {
	for d := 3; d <= 4; d++ {
		w := topology.NewWrappedButterfly(1 << d)
		ref := columnCut(w)
		for _, f := range faultScenarios {
			for _, sw := range []Switching{StoreAndForward, CutThrough} {
				for seed := int64(0); seed < 3; seed++ {
					want, err := SimulateScenarioReference(w, ref, WrappedRandomDestinations, seed, f, sw)
					if err != nil {
						t.Fatal(err)
					}
					got, err := SimulateScenario(w, ref, WrappedRandomDestinations, seed, f, sw)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("W%d %s %+v seed %d:\nflat %+v\nref  %+v", d, sw.Slug(), f, seed, got, want)
					}
				}
			}
		}
	}
}

// TestFaultManyDeterministicAcrossWorkers pins the lossy multi-trial
// aggregate: a fixed seed must reproduce byte-identical statistics at
// any worker count, for drops, dead links, and cut-through.
func TestFaultManyDeterministicAcrossWorkers(t *testing.T) {
	b := topology.NewButterfly(16)
	ref := columnCut(b)
	for _, tc := range []struct {
		name string
		kind TrialKind
		opt  ManyOptions
	}{
		{"drops/sf", RandomDestinations, ManyOptions{Fault: FaultOptions{DropProb: 0.2, MaxRetransmits: 8}}},
		{"dead/sf", RandomPermutations, ManyOptions{Fault: FaultOptions{DeadLinkProb: 0.1}}},
		{"both/ct", HotSpotDestinations, ManyOptions{
			Fault:     FaultOptions{DropProb: 0.15, MaxRetransmits: 4, DeadLinkProb: 0.05},
			Switching: CutThrough,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var base TrialStats
			for i, workers := range []int{1, 2, 3, 8} {
				opt := tc.opt
				opt.Trials, opt.Workers, opt.Seed = 16, workers, 11
				s := SimulateMany(b, ref, tc.kind, opt)
				if i == 0 {
					base = s
					if s.TotalDropped == 0 && s.TotalRetransmits == 0 {
						t.Fatalf("fault scenario produced no faults: %+v", s)
					}
					if s.DeliveredRate >= 1 {
						t.Fatalf("lossy delivered rate %v, want < 1", s.DeliveredRate)
					}
					continue
				}
				if !trialStatsEqual(s, base) {
					t.Errorf("workers=%d: %+v\nworkers=1: %+v", workers, s, base)
				}
			}
		})
	}
}

// TestFaultManyTrialsMatchSingleRuns checks each lossy aggregate trial
// replays exactly through the single-trial scenario entry on its derived
// seed.
func TestFaultManyTrialsMatchSingleRuns(t *testing.T) {
	b := topology.NewButterfly(16)
	ref := columnCut(b)
	f := FaultOptions{DropProb: 0.25, MaxRetransmits: 6, DeadLinkProb: 0.05}
	const trials, seed = 6, 17
	stats := SimulateMany(b, ref, RandomDestinations, ManyOptions{
		Trials: trials, Seed: seed, Fault: f, Switching: CutThrough,
	})
	var delivered, dropped, retx int64
	for tr := 0; tr < trials; tr++ {
		r, err := SimulateScenario(b, ref, RandomDestinations, TrialSeed(seed, tr), f, CutThrough)
		if err != nil {
			t.Fatal(err)
		}
		if r.Exhausted {
			t.Fatalf("trial %d exhausted under a bounded retransmission budget", tr)
		}
		delivered += int64(r.Delivered)
		dropped += int64(r.Dropped)
		retx += int64(r.Retransmits)
	}
	if stats.TotalDelivered != delivered || stats.TotalDropped != dropped || stats.TotalRetransmits != retx {
		t.Errorf("aggregate (%d,%d,%d), replayed (%d,%d,%d)",
			stats.TotalDelivered, stats.TotalDropped, stats.TotalRetransmits, delivered, dropped, retx)
	}
}

// TestDeadLinksDropAtInjection: with nearly every link dead, packets die
// at their first hop and the accounting still balances.
func TestDeadLinksDropAtInjection(t *testing.T) {
	b := topology.NewButterfly(16)
	res, err := SimulateScenario(b, nil, RandomDestinations, 2, FaultOptions{DeadLinkProb: 0.999}, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadLinks == 0 {
		t.Fatalf("DeadLinkProb=0.999 sampled no dead links: %+v", res)
	}
	if res.Delivered+res.Dropped != res.Packets {
		t.Errorf("delivered %d + dropped %d != packets %d", res.Delivered, res.Dropped, res.Packets)
	}
	if res.Dropped == 0 {
		t.Errorf("no packet hit a dead link: %+v", res)
	}
}

// TestRetransmissionBudgetDropsPackets: a tight budget under heavy loss
// drops packets instead of retrying forever — the run converges.
func TestRetransmissionBudgetDropsPackets(t *testing.T) {
	b := topology.NewButterfly(16)
	res, err := SimulateScenario(b, nil, RandomDestinations, 4, FaultOptions{DropProb: 0.9, MaxRetransmits: 1}, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Fatalf("budget 1 still exhausted the step limit: %+v", res)
	}
	if res.Dropped == 0 || res.Retransmits == 0 {
		t.Errorf("DropProb=0.9 budget=1 dropped nothing: %+v", res)
	}
	if res.Retransmits < res.Dropped {
		t.Errorf("every drop costs one failed attempt: retransmits %d < dropped %d", res.Retransmits, res.Dropped)
	}
}

// TestCutThroughNeverSlower: on a healthy network, cut-through finishes
// in at most the store-and-forward step count (it only ever advances
// packets further within a step).
func TestCutThroughNeverSlower(t *testing.T) {
	b := topology.NewButterfly(32)
	for seed := int64(0); seed < 5; seed++ {
		sf, err := SimulateScenario(b, nil, RandomDestinations, seed, FaultOptions{}, StoreAndForward)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := SimulateScenario(b, nil, RandomDestinations, seed, FaultOptions{}, CutThrough)
		if err != nil {
			t.Fatal(err)
		}
		if ct.Steps > sf.Steps {
			t.Errorf("seed %d: cut-through %d steps > store-and-forward %d", seed, ct.Steps, sf.Steps)
		}
		if ct.Delivered != ct.Packets {
			t.Errorf("seed %d: healthy cut-through lost packets: %+v", seed, ct)
		}
	}
}

// TestHotSpotInvariants: n-1 packets, all ending at one node; the hot
// node only depends on the seed.
func TestHotSpotInvariants(t *testing.T) {
	b := topology.NewButterfly(16)
	res, err := SimulateScenario(b, nil, HotSpotDestinations, 3, FaultOptions{}, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != b.N()-1 {
		t.Errorf("hot-spot packets %d, want %d", res.Packets, b.N()-1)
	}
	again, err := SimulateScenario(b, nil, HotSpotDestinations, 3, FaultOptions{}, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if res != again {
		t.Errorf("hot-spot trial not reproducible: %+v vs %+v", res, again)
	}
}

// TestBitReversalInvariants: the traffic is deterministic (any seed gives
// the same trial) and routes exactly the non-palindromic columns.
func TestBitReversalInvariants(t *testing.T) {
	b := topology.NewButterfly(16)
	d := b.Dim()
	fixed := 0
	for w := 0; w < b.Inputs(); w++ {
		if bitutil.Reverse(w, d) == w {
			fixed++
		}
	}
	want := b.N() - fixed*(d+1)
	res, err := SimulateScenario(b, nil, BitReversalDestinations, 1, FaultOptions{}, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != want {
		t.Errorf("bit-reversal packets %d, want %d (%d fixed columns)", res.Packets, want, fixed)
	}
	other, err := SimulateScenario(b, nil, BitReversalDestinations, 99, FaultOptions{}, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if res != other {
		t.Errorf("fault-free bit-reversal depends on the seed: %+v vs %+v", res, other)
	}
}

// TestScenarioValidation: topology/fault mistakes surface as errors from
// the exported scenario entry points, not panics.
func TestScenarioValidation(t *testing.T) {
	b := topology.NewButterfly(8)
	w := topology.NewWrappedButterfly(8)
	if _, err := SimulateScenario(w, nil, RandomDestinations, 0, FaultOptions{}, StoreAndForward); err == nil {
		t.Error("Bn kind accepted on Wn")
	}
	if _, err := SimulateScenario(b, nil, WrappedRandomDestinations, 0, FaultOptions{}, StoreAndForward); err == nil {
		t.Error("Wn kind accepted on Bn")
	}
	if _, err := SimulateScenario(b, nil, TrialKind(42), 0, FaultOptions{}, StoreAndForward); err == nil {
		t.Error("unknown kind accepted")
	}
	for _, f := range []FaultOptions{
		{DropProb: 1},
		{DropProb: -0.1},
		{DeadLinkProb: 1.5},
		{MaxRetransmits: -1},
	} {
		if _, err := SimulateScenario(b, nil, RandomDestinations, 0, f, StoreAndForward); err == nil {
			t.Errorf("invalid %+v accepted", f)
		}
		if err := f.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", f)
		}
	}
}

// TestSwitchingParse round-trips slugs and names.
func TestSwitchingParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Switching
	}{
		{"sf", StoreAndForward},
		{"store-and-forward", StoreAndForward},
		{"ct", CutThrough},
		{"cut-through", CutThrough},
		{"wormhole", CutThrough},
	} {
		got, err := ParseSwitching(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSwitching(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseSwitching("bogus"); err == nil {
		t.Error("ParseSwitching accepted a bogus mode")
	}
	if StoreAndForward.String() != "store-and-forward" || CutThrough.Slug() != "ct" {
		t.Error("Switching name/slug mismatch")
	}
}
