package route

import (
	"math/rand"
	"testing"

	"repro/internal/cut"
	"repro/internal/topology"
)

func TestRoutePermutationIdentity(t *testing.T) {
	be := topology.NewBenes(8)
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	paths, err := RoutePermutation(be, perm)
	if err != nil {
		t.Fatal(err)
	}
	checkBenesPaths(t, be, perm, paths)
}

func TestRoutePermutationReversal(t *testing.T) {
	be := topology.NewBenes(16)
	perm := make([]int, 16)
	for i := range perm {
		perm[i] = 15 - i
	}
	paths, err := RoutePermutation(be, perm)
	if err != nil {
		t.Fatal(err)
	}
	checkBenesPaths(t, be, perm, paths)
}

func TestRoutePermutationAllPermsN4(t *testing.T) {
	// Rearrangeability (§1.5): every one of the 24 permutations of a
	// 4-input Beneš routes edge-disjointly.
	be := topology.NewBenes(4)
	perms := allPermutations(4)
	if len(perms) != 24 {
		t.Fatalf("generated %d permutations", len(perms))
	}
	for _, perm := range perms {
		paths, err := RoutePermutation(be, perm)
		if err != nil {
			t.Fatalf("perm %v: %v", perm, err)
		}
		checkBenesPaths(t, be, perm, paths)
	}
}

func TestRoutePermutationRandomLarge(t *testing.T) {
	// 1000 random permutations across sizes, all edge-disjoint — the
	// E9 experiment's core claim.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 1000; trial++ {
		n := 1 << (1 + rng.Intn(6)) // 2..64
		be := topology.NewBenes(n)
		perm := rng.Perm(n)
		paths, err := RoutePermutation(be, perm)
		if err != nil {
			t.Fatalf("n=%d perm=%v: %v", n, perm, err)
		}
		checkBenesPaths(t, be, perm, paths)
	}
}

func TestRoutePermutationBig(t *testing.T) {
	be := topology.NewBenes(256)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(256)
		paths, err := RoutePermutation(be, perm)
		if err != nil {
			t.Fatal(err)
		}
		checkBenesPaths(t, be, perm, paths)
	}
}

func TestRoutePermutationRejectsBadInput(t *testing.T) {
	be := topology.NewBenes(4)
	if _, err := RoutePermutation(be, []int{0, 1, 2}); err == nil {
		t.Errorf("short permutation accepted")
	}
	if _, err := RoutePermutation(be, []int{0, 1, 2, 2}); err == nil {
		t.Errorf("repeated value accepted")
	}
	if _, err := RoutePermutation(be, []int{0, 1, 2, 4}); err == nil {
		t.Errorf("out-of-range value accepted")
	}
}

func checkBenesPaths(t *testing.T, be *topology.Benes, perm []int, paths [][]int) {
	t.Helper()
	n := be.Inputs()
	if len(paths) != n {
		t.Fatalf("%d paths for %d inputs", len(paths), n)
	}
	for w, p := range paths {
		if len(p) != be.Levels() {
			t.Fatalf("path %d has %d nodes, want %d", w, len(p), be.Levels())
		}
		if p[0] != be.Node(w, 0) {
			t.Fatalf("path %d starts at the wrong input", w)
		}
		if p[len(p)-1] != be.Node(perm[w], 2*be.Dim()) {
			t.Fatalf("path %d ends at output %d, want %d", w, be.Column(p[len(p)-1]), perm[w])
		}
		for i := 0; i+1 < len(p); i++ {
			if !be.HasEdge(p[i], p[i+1]) {
				t.Fatalf("path %d hop %d is not an edge", w, i)
			}
		}
	}
	if ok, reused := VerifyEdgeDisjoint(be.Graph, paths); !ok {
		t.Fatalf("paths reuse edge %v", reused)
	}
}

func allPermutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var gen func(k int)
	gen = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, perm)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			gen(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	gen(0)
	return out
}

func TestVerifyEdgeDisjointDetectsReuse(t *testing.T) {
	b := topology.NewButterfly(4)
	p := b.MonotonePath(0, 3)
	if ok, _ := VerifyEdgeDisjoint(b.Graph, [][]int{p, p}); ok {
		t.Errorf("duplicate path not detected")
	}
	if ok, _ := VerifyEdgeDisjoint(b.Graph, [][]int{p}); !ok {
		t.Errorf("single path flagged")
	}
}

func TestSimulatePermutationIdentityIsFast(t *testing.T) {
	// The identity permutation has congestion 1 on every edge: it must
	// finish in exactly log n steps (pipeline of length log n, one packet
	// per path, no queueing).
	b := topology.NewButterfly(16)
	perm := make([]int, 16)
	for i := range perm {
		perm[i] = i
	}
	res, err := SimulatePermutation(b, nil, perm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != b.Dim() {
		t.Errorf("identity routed in %d steps, want %d", res.Steps, b.Dim())
	}
	if res.MaxQueue != 1 {
		t.Errorf("identity saw queue %d, want 1", res.MaxQueue)
	}
}

func TestSimulatePermutationDelivery(t *testing.T) {
	b := topology.NewButterfly(32)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(32)
		res, err := SimulatePermutation(b, nil, perm)
		if err != nil {
			t.Fatal(err)
		}
		if res.Packets != 32 {
			t.Errorf("routed %d packets", res.Packets)
		}
		if res.Steps < b.Dim() {
			t.Errorf("finished faster than the path length: %d < %d", res.Steps, b.Dim())
		}
	}
}

func TestSimulateRandomDestinationsBisectionBound(t *testing.T) {
	// §1.2: with each node sending to a random destination, about N/4
	// messages cross any bisection in each direction, so time ≥ N/(4·BW).
	// The simulator must respect its own certified congestion bound.
	b := topology.NewButterfly(16)
	ref := columnCut(b)
	res := SimulateRandomDestinations(b, ref, 99)
	if res.Steps < res.CongestionBound {
		t.Errorf("steps %d below the certified bound %d", res.Steps, res.CongestionBound)
	}
	// Crossings concentrate near half the packets (destination on the
	// other side with probability ~1/2 under a column-split cut).
	if res.CutCrossings < res.Packets/4 || res.CutCrossings > 3*res.Packets/4 {
		t.Errorf("crossings %d out of line for %d packets", res.CutCrossings, res.Packets)
	}
}

func TestSimulateDeterministicWithSeed(t *testing.T) {
	b := topology.NewButterfly(8)
	ref := columnCut(b)
	a := SimulateRandomDestinations(b, ref, 7)
	c := SimulateRandomDestinations(b, ref, 7)
	if a != c {
		t.Errorf("same seed gave different results: %+v vs %+v", a, c)
	}
}

func TestSimulateRandomDestinationsWrapped(t *testing.T) {
	w := topology.NewWrappedButterfly(16)
	ref := columnCut(w)
	res := SimulateRandomDestinationsWrapped(w, ref, 21)
	if res.Packets == 0 {
		t.Fatalf("no packets routed")
	}
	if res.Steps < res.CongestionBound {
		t.Errorf("steps %d below certified bound %d", res.Steps, res.CongestionBound)
	}
	// Determinism.
	if res != SimulateRandomDestinationsWrapped(w, ref, 21) {
		t.Errorf("same seed, different results")
	}
	// Wrong network type panics.
	defer func() {
		if recover() == nil {
			t.Errorf("Bn did not panic")
		}
	}()
	SimulateRandomDestinationsWrapped(topology.NewButterfly(8), nil, 1)
}

func TestCompressPath(t *testing.T) {
	got := compressPath([]int{1, 1, 2, 2, 2, 3, 1})
	want := []int{1, 2, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("compressed to %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compressed to %v, want %v", got, want)
		}
	}
}

func columnCut(b *topology.Butterfly) *cut.Cut {
	side := make([]bool, b.N())
	for v := 0; v < b.N(); v++ {
		side[v] = b.Column(v) < b.Inputs()/2
	}
	return cut.New(b.Graph, side)
}
