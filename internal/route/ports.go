package route

import (
	"fmt"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/topology"
)

// RoutePortPermutation routes a permutation of 2n ports through the n-input
// Beneš network along pairwise edge-disjoint paths: input node c carries
// input ports 2c and 2c+1, output node c carries output ports 2c and 2c+1,
// and perm[p] is the output port reached from input port p. This is the
// full rearrangeability statement behind Lemma 2.5 (each level-0 node of
// the Beneš terminates two paths, one per incident first-layer edge).
func RoutePortPermutation(be *topology.Benes, perm []int) ([][]int, error) {
	n := be.Inputs()
	if err := checkPermutation(perm, 2*n); err != nil {
		return nil, err
	}
	colSeqs := routePortColumns(n, perm)
	paths := make([][]int, 2*n)
	for p, cols := range colSeqs {
		path := make([]int, len(cols))
		for l, c := range cols {
			path[l] = be.Node(c, l)
		}
		paths[p] = path
	}
	return paths, nil
}

// routePortColumns returns, per port, the column occupied on each level
// 0..2·log m of an m-column Beneš network.
func routePortColumns(m int, pi []int) [][]int {
	if m == 1 {
		// A single node; both port paths sit on it.
		return [][]int{{0}, {0}}
	}
	half := m / 2

	// Color ports by subnetwork. Constraints ("must differ"): the two
	// ports of an input node, and the two ports of an output node.
	c := make([]int8, 2*m)
	for i := range c {
		c[i] = -1
	}
	inv := make([]int, 2*m)
	for p, q := range pi {
		inv[q] = p
	}
	type frame struct {
		p   int
		col int8
	}
	var stack []frame
	for start := 0; start < 2*m; start++ {
		if c[start] >= 0 {
			continue
		}
		stack = append(stack[:0], frame{start, 0})
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c[f.p] >= 0 {
				continue
			}
			c[f.p] = f.col
			stack = append(stack,
				frame{f.p ^ 1, 1 - f.col},        // input-node partner
				frame{inv[pi[f.p]^1], 1 - f.col}) // output-node partner
		}
	}

	// Build the sub-permutations. The path of port p (input node a) enters
	// subnetwork s at sub-column a mod half; two paths share that
	// sub-column (from input nodes low and low+half), distinguished by the
	// top bit of a. Outputs symmetric.
	subPi := [2][]int{make([]int, 2*half), make([]int, 2*half)}
	for p, q := range pi {
		s := c[p]
		a := p / 2
		b := q / 2
		subIn := 2*(a%half) + a/half
		subOut := 2*(b%half) + b/half
		subPi[s][subIn] = subOut
	}
	subPaths := [2][][]int{routePortColumns(half, subPi[0]), routePortColumns(half, subPi[1])}

	out := make([][]int, 2*m)
	for p, q := range pi {
		s := int(c[p])
		a := p / 2
		b := q / 2
		sub := subPaths[s][2*(a%half)+a/half]
		cols := make([]int, 0, len(sub)+2)
		cols = append(cols, a)
		for _, sc := range sub {
			cols = append(cols, s*half+sc)
		}
		cols = append(cols, b)
		out[p] = cols
	}
	return out
}

// ButterflyPortPaths realizes Lemma 2.5 literally: given the (I,O)
// partition of L0 induced by the Beneš embedding (package embed) and a
// bijection perm of the n input ports (two per I node) onto the n output
// ports (two per O node), it returns n pairwise edge-disjoint paths in Bn
// linking each input port's node to its output port's node.
func ButterflyPortPaths(b *topology.Butterfly, perm []int) ([][]int, error) {
	if b.Wraparound() {
		panic("route: ButterflyPortPaths targets Bn")
	}
	n := b.Inputs()
	if n < 4 {
		return nil, fmt.Errorf("route: port routing needs n ≥ 4")
	}
	if err := checkPermutation(perm, n); err != nil {
		return nil, err
	}
	be := topology.NewBenes(n / 2)
	benesPaths, err := RoutePortPermutation(be, perm)
	if err != nil {
		return nil, err
	}
	emb := embed.BenesIntoButterfly(b)
	// Translate each Beneš path through the embedding: consecutive guest
	// nodes become the host path of the guest edge between them. Because
	// the embedding has congestion 1, edge-disjointness is preserved.
	edgeIdx := guestEdgeIndex(emb.Guest)
	paths := make([][]int, len(benesPaths))
	for p, gp := range benesPaths {
		host := []int{emb.NodeMap[gp[0]]}
		for i := 0; i+1 < len(gp); i++ {
			ei, ok := edgeIdx[edgeKeyPair(gp[i], gp[i+1])]
			if !ok {
				return nil, fmt.Errorf("route: Beneš path uses a non-edge")
			}
			seg := emb.Paths[ei]
			if seg[0] != host[len(host)-1] {
				seg = reversedInts(seg)
			}
			host = append(host, seg[1:]...)
		}
		paths[p] = host
	}
	return paths, nil
}

func edgeKeyPair(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

func guestEdgeIndex(g *graph.Graph) map[[2]int32]int {
	idx := make(map[[2]int32]int, g.M())
	for ei, e := range g.Edges() {
		idx[[2]int32{e.U, e.V}] = ei
	}
	return idx
}

func reversedInts(p []int) []int {
	out := make([]int, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}
