package route

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cut"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/topology"
)

// Registry metrics of the Monte-Carlo engine: observed once per trial
// (never inside the per-step simulation loop, which stays 0-alloc and
// atomic-free).
var (
	metricTrialsCompleted = obs.NewCounter("route.trials_completed")
	metricTrialsDiscarded = obs.NewCounter("route.trials_discarded")
	metricTrialsExhausted = obs.NewCounter("route.trials_exhausted")
	metricTrialSteps      = obs.NewHistogram("route.trial_steps")
	metricTrialMaxQueue   = obs.NewHistogram("route.trial_max_queue")
)

// TrialKind selects the workload SimulateMany draws each trial from.
type TrialKind int

const (
	// RandomDestinations routes one packet from every node of Bn to a
	// uniform random node along three-leg up/across/down routes.
	RandomDestinations TrialKind = iota
	// WrappedRandomDestinations is the Wn analogue (Theorem 4.3 routes).
	WrappedRandomDestinations
	// RandomPermutations routes a uniform random input→output permutation
	// of Bn along the monotone paths of Lemma 2.3.
	RandomPermutations
	// HotSpotDestinations routes a packet from every node of Bn to one
	// uniform random hot node — the adversarial all-to-one pattern that
	// serializes on the hot node's in-edges regardless of bisection.
	HotSpotDestinations
	// BitReversalDestinations routes node ⟨w,l⟩ of Bn to ⟨reverse(w),l⟩,
	// the classic adversarial permutation for greedy column routing. The
	// traffic is deterministic; seeds only vary the fault plan.
	BitReversalDestinations
)

func (k TrialKind) String() string {
	switch k {
	case RandomDestinations:
		return "random destinations"
	case WrappedRandomDestinations:
		return "wrapped random destinations"
	case RandomPermutations:
		return "random permutations"
	case HotSpotDestinations:
		return "hot-spot destinations"
	case BitReversalDestinations:
		return "bit-reversal destinations"
	}
	return fmt.Sprintf("TrialKind(%d)", int(k))
}

// Slug is the short machine-readable name used in manifests, cache keys
// and query parameters.
func (k TrialKind) Slug() string {
	switch k {
	case RandomDestinations:
		return "random"
	case WrappedRandomDestinations:
		return "wrapped"
	case RandomPermutations:
		return "permutation"
	case HotSpotDestinations:
		return "hotspot"
	case BitReversalDestinations:
		return "bitreversal"
	}
	return fmt.Sprintf("kind%d", int(k))
}

// ParseTrialKind resolves a slug (as produced by Slug) to a TrialKind.
func ParseTrialKind(s string) (TrialKind, error) {
	switch s {
	case "random":
		return RandomDestinations, nil
	case "wrapped":
		return WrappedRandomDestinations, nil
	case "permutation":
		return RandomPermutations, nil
	case "hotspot":
		return HotSpotDestinations, nil
	case "bitreversal":
		return BitReversalDestinations, nil
	}
	return RandomDestinations, fmt.Errorf("trial kind: want random, wrapped, permutation, hotspot or bitreversal (got %q)", s)
}

// ManyOptions configures SimulateMany. The zero value runs one trial on
// all available cores with the default step limit and tightness factor 2.
type ManyOptions struct {
	// Trials is the number of independently seeded trials (≤0: 1).
	Trials int
	// Workers is the number of worker goroutines (≤0: GOMAXPROCS).
	Workers int
	// Seed is the base seed; trial t runs on TrialSeed(Seed, t), so the
	// aggregate is reproducible at any worker count.
	Seed int64
	// MaxSteps bounds each trial's simulated time (≤0: 64·N, far above
	// any convergent schedule on a healthy network). A trial that exceeds
	// it completes with Exhausted set and is counted in
	// TrialStats.ExhaustedTrials — never a panic: heavy drop rates with
	// unbounded retransmission make non-convergence a legitimate outcome.
	MaxSteps int
	// TightFactor is the §1.2 tightness threshold: a trial is counted
	// tight when Steps ≤ TightFactor · CongestionBound (≤0: 2).
	TightFactor float64

	// Fault injects link faults into every trial; the zero value is the
	// healthy network and leaves the trial byte-identical to a run
	// without any fault model. Fault must validate (see
	// FaultOptions.Validate) — surface layers reject bad values first, so
	// an invalid value here panics.
	Fault FaultOptions
	// Switching selects the switch discipline (default store-and-forward).
	Switching Switching

	// Ctx cancels the run: in-flight trials stop mid-simulation and are
	// discarded; the aggregate covers only the trials that completed
	// (TrialStats.Cancelled is set, Trials < Requested). nil means never
	// cancelled.
	Ctx context.Context
	// OnProgress, when non-nil, receives progress snapshots (Explored =
	// completed trials) every ProgressInterval (≤ 0: 1s).
	OnProgress       func(solve.Progress)
	ProgressInterval time.Duration
	// Label names the simulation in progress lines and trace spans.
	Label string
	// Trace, when non-nil, receives one "trial" event per completed trial
	// (seed, steps, bound, max queue) on the simulation's span.
	Trace *obs.Tracer
}

// TrialStats aggregates the Monte-Carlo trials of one SimulateMany call.
// Ratios compare simulated Steps against the certified congestion bound
// ⌈crossings/capacity⌉, the per-trial form of the §1.2 lower bound
// time ≥ N/(4·BW); ratio fields stay zero when no trial had a positive
// bound (e.g. with a nil reference cut).
// The JSON tags make TrialStats the machine-readable §1.2 record of the
// run manifests: the steps/bound ratios and the max-queue histogram are
// regression-checkable fields, not just printed columns.
type TrialStats struct {
	// Trials counts the trials the aggregate actually covers; Requested
	// is what the caller asked for. They differ only when the run was
	// cancelled (Cancelled true), in which case the aggregate is over the
	// completed prefix of trials only — valid statistics, smaller sample.
	Trials    int  `json:"trials"`
	Requested int  `json:"requested"`
	Cancelled bool `json:"cancelled,omitempty"`

	// ExhaustedTrials counts trials that hit the step limit without
	// finishing. They are excluded from every other aggregate (their
	// steps and counters are partial), so Trials covers only trials that
	// ran to completion: Trials + ExhaustedTrials ≤ Requested.
	ExhaustedTrials int `json:"exhausted_trials,omitempty"`

	TotalPackets int64   `json:"total_packets"`
	MeanPackets  float64 `json:"mean_packets"`

	// Fault-model aggregates over the completed trials. DeliveredRate is
	// TotalDelivered/TotalPackets — 1 on a healthy network; the
	// degradation a fault scenario buys is read directly off it.
	TotalDelivered   int64   `json:"total_delivered"`
	TotalDropped     int64   `json:"total_dropped,omitempty"`
	TotalRetransmits int64   `json:"total_retransmits,omitempty"`
	DeliveredRate    float64 `json:"delivered_rate"`
	MeanDropped      float64 `json:"mean_dropped,omitempty"`
	MeanRetransmits  float64 `json:"mean_retransmits,omitempty"`
	MeanDeadLinks    float64 `json:"mean_dead_links,omitempty"`

	MinSteps  int     `json:"min_steps"`
	MaxSteps  int     `json:"max_steps"`
	MeanSteps float64 `json:"mean_steps"`

	MeanCrossings float64 `json:"mean_crossings"`

	MinBound  int     `json:"min_bound"`
	MaxBound  int     `json:"max_bound"`
	MeanBound float64 `json:"mean_bound"`

	// MinRatio/MeanRatio/MaxRatio summarize Steps/CongestionBound over
	// the trials with a positive bound.
	MinRatio  float64 `json:"min_ratio"`
	MeanRatio float64 `json:"mean_ratio"`
	MaxRatio  float64 `json:"max_ratio"`

	// TightTrials counts trials with Steps ≤ TightFactor·CongestionBound:
	// runs where greedy store-and-forward sits within TightFactor of the
	// bisection bound.
	TightFactor float64 `json:"tight_factor"`
	TightTrials int     `json:"tight_trials"`

	// MaxQueuePeak/MeanMaxQueue/MaxQueueHist describe the distribution of
	// the per-trial worst queue length. The histogram marshals with
	// numerically sorted keys, so two manifests diff cleanly.
	MaxQueuePeak int         `json:"max_queue_peak"`
	MeanMaxQueue float64     `json:"mean_max_queue"`
	MaxQueueHist map[int]int `json:"max_queue_hist"`
}

// TrialSeed derives the seed of trial t from a base seed (a splitmix64
// step), so individual trials of a SimulateMany aggregate can be replayed
// through the single-trial entry points.
func TrialSeed(base int64, trial int) int64 {
	x := uint64(base) + 0x9e3779b97f4a7c15*uint64(trial+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// SimulateMany fans opt.Trials independently seeded trials of kind over a
// worker pool. Each worker owns one reusable simState, so the steady state
// allocates nothing per trial; results land in a per-trial slice indexed
// by trial number, so the aggregate is byte-identical at any worker count.
func SimulateMany(b *topology.Butterfly, ref *cut.Cut, kind TrialKind, opt ManyOptions) TrialStats {
	if err := checkKindTopology(kind, b); err != nil {
		panic(err.Error())
	}
	trials := opt.Trials
	if trials <= 0 {
		trials = 1
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps(b)
	}
	tight := opt.TightFactor
	if tight <= 0 {
		tight = 2
	}

	mon := solve.Start(solve.Options{
		Ctx:        opt.Ctx,
		OnProgress: opt.OnProgress,
		Interval:   opt.ProgressInterval,
		Name:       opt.Label,
		Trace:      opt.Trace,
	})
	defer mon.Close()

	results := make([]SimResult, trials)
	completed := make([]bool, trials)
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			st := getState(b)
			defer putState(st)
			st.setCut(ref)
			st.setScenario(opt.Fault, opt.Switching)
			for {
				if mon.Stopped() {
					return
				}
				t := int(next.Add(1)) - 1
				if t >= trials {
					return
				}
				seed := TrialSeed(opt.Seed, t)
				st.compileKind(kind, seed)
				st.seedFaults(seed)
				res, ok := st.runMonitored(maxSteps, mon)
				if !ok {
					metricTrialsDiscarded.Inc()
					return // interrupted mid-trial; discard the partial run
				}
				results[t] = res
				completed[t] = true
				if res.Exhausted {
					metricTrialsExhausted.Inc()
				} else {
					metricTrialsCompleted.Inc()
					metricTrialSteps.Observe(int64(res.Steps))
					metricTrialMaxQueue.Observe(int64(res.MaxQueue))
				}
				if mon.Tracing() {
					mon.TraceEvent("trial", obs.Attrs{
						"trial":     t,
						"seed":      seed,
						"steps":     res.Steps,
						"bound":     res.CongestionBound,
						"max_queue": res.MaxQueue,
						"crossings": res.CutCrossings,
						"delivered": res.Delivered,
						"dropped":   res.Dropped,
						"exhausted": res.Exhausted,
					})
				}
				mon.Tick(1, 0)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return aggregateTrials(results, completed, tight, trials, mon.Stopped())
}

// aggregateTrials folds the completed trials into a TrialStats. Cancelled
// runs aggregate only the trials that finished; a run cancelled before
// any trial completed returns an empty (but well-formed) aggregate.
func aggregateTrials(results []SimResult, completed []bool, tight float64, requested int, cancelled bool) TrialStats {
	s := TrialStats{
		Requested:    requested,
		Cancelled:    cancelled,
		TightFactor:  tight,
		MaxQueueHist: make(map[int]int),
	}
	var sumSteps, sumCross, sumBound, sumQueue int64
	var sumDead int64
	var sumRatio float64
	ratios := 0
	for i, r := range results {
		if !completed[i] {
			continue
		}
		if r.Exhausted {
			// Step-limited trials carry partial counters; counting them
			// into the aggregates would skew every mean, so they are only
			// tallied here.
			s.ExhaustedTrials++
			continue
		}
		if s.Trials == 0 {
			s.MinSteps = r.Steps
			s.MinBound = r.CongestionBound
		}
		s.Trials++
		s.TotalPackets += int64(r.Packets)
		s.TotalDelivered += int64(r.Delivered)
		s.TotalDropped += int64(r.Dropped)
		s.TotalRetransmits += int64(r.Retransmits)
		sumDead += int64(r.DeadLinks)
		sumSteps += int64(r.Steps)
		sumCross += int64(r.CutCrossings)
		sumBound += int64(r.CongestionBound)
		sumQueue += int64(r.MaxQueue)
		if r.Steps < s.MinSteps {
			s.MinSteps = r.Steps
		}
		if r.Steps > s.MaxSteps {
			s.MaxSteps = r.Steps
		}
		if r.CongestionBound < s.MinBound {
			s.MinBound = r.CongestionBound
		}
		if r.CongestionBound > s.MaxBound {
			s.MaxBound = r.CongestionBound
		}
		if r.MaxQueue > s.MaxQueuePeak {
			s.MaxQueuePeak = r.MaxQueue
		}
		s.MaxQueueHist[r.MaxQueue]++
		if r.CongestionBound > 0 {
			ratio := float64(r.Steps) / float64(r.CongestionBound)
			if ratios == 0 || ratio < s.MinRatio {
				s.MinRatio = ratio
			}
			if ratio > s.MaxRatio {
				s.MaxRatio = ratio
			}
			sumRatio += ratio
			ratios++
			if float64(r.Steps) <= tight*float64(r.CongestionBound) {
				s.TightTrials++
			}
		}
	}
	if s.Trials > 0 {
		n := float64(s.Trials)
		s.MeanPackets = float64(s.TotalPackets) / n
		s.MeanSteps = float64(sumSteps) / n
		s.MeanCrossings = float64(sumCross) / n
		s.MeanBound = float64(sumBound) / n
		s.MeanMaxQueue = float64(sumQueue) / n
		s.MeanDropped = float64(s.TotalDropped) / n
		s.MeanRetransmits = float64(s.TotalRetransmits) / n
		s.MeanDeadLinks = float64(sumDead) / n
	}
	if s.TotalPackets > 0 {
		s.DeliveredRate = float64(s.TotalDelivered) / float64(s.TotalPackets)
	}
	if ratios > 0 {
		s.MeanRatio = sumRatio / float64(ratios)
	}
	return s
}
