package route

// This file keeps the original map-based store-and-forward simulator as a
// reference implementation. The flat engine in engine.go is the production
// path; the functions here exist so tests and benchmarks can cross-check
// the two result for result and measure the speedup.

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cut"
	"repro/internal/topology"
)

// SimResult summarizes one synchronous store-and-forward routing run.
type SimResult struct {
	// Packets is the number of packets routed (one per network node).
	Packets int
	// Steps is the simulated completion time: each directed edge forwards
	// at most one packet per step.
	Steps int
	// CutCrossings counts packets whose route crosses the reference cut —
	// the quantity whose expectation is N/4 per direction in §1.2.
	CutCrossings int
	// CongestionBound is ⌈CutCrossings / cut capacity⌉, a certified lower
	// bound on Steps for these routes: every crossing packet consumes one
	// cut-edge slot per step.
	CongestionBound int
	// MaxQueue is the largest per-edge queue observed.
	MaxQueue int
}

// SimulateRandomDestinationsReference is the map-based reference
// implementation of SimulateRandomDestinations, kept for cross-checking
// and old-vs-new benchmarks.
func SimulateRandomDestinationsReference(b *topology.Butterfly, ref *cut.Cut, seed int64) SimResult {
	if b.Wraparound() {
		panic("route: simulator targets Bn")
	}
	rng := rand.New(rand.NewSource(seed))
	n := b.N()
	paths := make([][]int, 0, n)
	for v := 0; v < n; v++ {
		dst := rng.Intn(n)
		if dst == v {
			continue // a self-message uses no edges
		}
		paths = append(paths, threeLegPath(b, v, dst))
	}
	return simulateReference(b, ref, paths)
}

// SimulateRandomDestinationsWrappedReference is the Wn analogue of
// SimulateRandomDestinationsReference: routes follow the Theorem 4.3
// three-leg shape (up the source column to level 0, the rotated monotone
// path into the destination column, then down to the destination).
func SimulateRandomDestinationsWrappedReference(w *topology.Butterfly, ref *cut.Cut, seed int64) SimResult {
	if !w.Wraparound() {
		panic("route: wrapped simulator targets Wn")
	}
	rng := rand.New(rand.NewSource(seed))
	n := w.N()
	d := w.Dim()
	paths := make([][]int, 0, n)
	for v := 0; v < n; v++ {
		dst := rng.Intn(n)
		if dst == v {
			continue
		}
		wu, iu := w.Column(v), w.Level(v)
		wv, iv := w.Column(dst), w.Level(dst)
		path := make([]int, 0, iu+d+(d-iv)+1)
		for l := iu; l >= 0; l-- {
			path = append(path, w.Node(wu, l))
		}
		mono := w.RotatedMonotonePath(wu, wv, 0)
		path = append(path, mono[1:]...)
		for l := d - 1; l >= iv; l-- {
			path = append(path, w.Node(wv, l))
		}
		paths = append(paths, compressPath(path))
	}
	return simulateReference(w, ref, paths)
}

// compressPath removes consecutive duplicate nodes (legs of length 0).
func compressPath(p []int) []int {
	out := p[:1]
	for _, v := range p[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// SimulatePermutationReference is the map-based reference implementation
// of SimulatePermutation.
func SimulatePermutationReference(b *topology.Butterfly, ref *cut.Cut, perm []int) (SimResult, error) {
	if b.Wraparound() {
		panic("route: simulator targets Bn")
	}
	if err := checkPermutation(perm, b.Inputs()); err != nil {
		return SimResult{}, err
	}
	paths := make([][]int, b.Inputs())
	for w := range paths {
		paths[w] = b.MonotonePath(w, perm[w])
	}
	return simulateReference(b, ref, paths), nil
}

// threeLegPath routes from u up its column to level 0, across the monotone
// path, and up the destination column from level log n to the destination.
func threeLegPath(b *topology.Butterfly, u, v int) []int {
	wu, iu := b.Column(u), b.Level(u)
	wv, iv := b.Column(v), b.Level(v)
	path := make([]int, 0, iu+b.Dim()+(b.Dim()-iv)+1)
	for l := iu; l >= 0; l-- {
		path = append(path, b.Node(wu, l))
	}
	mono := b.MonotonePath(wu, wv)
	path = append(path, mono[1:]...)
	for l := b.Dim() - 1; l >= iv; l-- {
		path = append(path, b.Node(wv, l))
	}
	return path
}

// simulateReference runs the synchronous switch model until every packet
// arrives, with per-edge queues keyed on a node-pair map and the busy
// edges re-sorted every step. It is the semantic specification the flat
// engine is cross-checked against.
func simulateReference(b *topology.Butterfly, ref *cut.Cut, paths [][]int) SimResult {
	res := SimResult{Packets: len(paths)}
	if ref != nil {
		for _, p := range paths {
			for i := 0; i+1 < len(p); i++ {
				if ref.InS(p[i]) != ref.InS(p[i+1]) {
					res.CutCrossings++
					break
				}
			}
		}
		if capacity := ref.Capacity(); capacity > 0 {
			res.CongestionBound = (res.CutCrossings + capacity - 1) / capacity
		}
	}

	// Directed edge id: node-pair key. Queues hold packet indices.
	type dedge struct{ u, v int32 }
	queues := make(map[dedge][]int32)
	pos := make([]int, len(paths)) // index into each path
	remaining := 0
	enqueue := func(pk int) {
		p := paths[pk]
		i := pos[pk]
		if i+1 < len(p) {
			key := dedge{int32(p[i]), int32(p[i+1])}
			queues[key] = append(queues[key], int32(pk))
			remaining++
		}
	}
	for pk := range paths {
		enqueue(pk)
	}

	maxSteps := defaultMaxSteps(b)
	for step := 0; remaining > 0; {
		step++
		res.Steps = step
		if step > maxSteps {
			panic(fmt.Sprintf("route: simulation did not converge within the %d-step limit", maxSteps))
		}
		type move struct {
			pk  int32
			key dedge
		}
		var moves []move
		for key, q := range queues {
			if len(q) == 0 {
				continue
			}
			if len(q) > res.MaxQueue {
				res.MaxQueue = len(q)
			}
			moves = append(moves, move{q[0], key})
		}
		// Maps iterate in random order; apply moves in a fixed order so
		// downstream FIFO queues fill deterministically.
		sort.Slice(moves, func(i, j int) bool {
			if moves[i].key.u != moves[j].key.u {
				return moves[i].key.u < moves[j].key.u
			}
			return moves[i].key.v < moves[j].key.v
		})
		for _, mv := range moves {
			q := queues[mv.key]
			queues[mv.key] = q[1:]
			if len(q) == 1 {
				delete(queues, mv.key)
			}
			remaining--
			pos[mv.pk]++
			enqueue(int(mv.pk))
		}
	}
	return res
}
