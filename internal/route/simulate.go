package route

// This file keeps the original map-based store-and-forward simulator as a
// reference implementation. The flat engine in engine.go is the production
// path; the functions here exist so tests and benchmarks can cross-check
// the two result for result and measure the speedup.

import (
	"math/rand"
	"sort"

	"repro/internal/bitutil"
	"repro/internal/cut"
	"repro/internal/topology"
)

// SimResult summarizes one synchronous store-and-forward routing run.
type SimResult struct {
	// Packets is the number of packets routed (one per network node).
	Packets int
	// Steps is the simulated completion time: each directed edge forwards
	// at most one packet per step. For an Exhausted run it is the step
	// limit the run hit.
	Steps int
	// CutCrossings counts packets whose route crosses the reference cut —
	// the quantity whose expectation is N/4 per direction in §1.2.
	CutCrossings int
	// CongestionBound is ⌈CutCrossings / cut capacity⌉, a certified lower
	// bound on Steps for these routes: every crossing packet consumes one
	// cut-edge slot per step.
	CongestionBound int
	// MaxQueue is the largest per-edge queue observed.
	MaxQueue int
	// Delivered counts packets that reached their destination; on a
	// healthy network Delivered == Packets.
	Delivered int
	// Dropped counts packets lost to a dead link or an exhausted
	// retransmission budget. Delivered + Dropped == Packets unless the
	// run was Exhausted (some packets then remain in flight).
	Dropped int
	// Retransmits counts failed transmission attempts across all packets.
	Retransmits int
	// DeadLinks is the number of directed links the trial's fault plan
	// declared permanently dead.
	DeadLinks int
	// Exhausted marks a run that hit the step limit without finishing —
	// reachable under heavy drop rates with an unbounded retransmission
	// budget. Exhausted runs report the partial counters observed so far.
	Exhausted bool
}

// SimulateRandomDestinationsReference is the map-based reference
// implementation of SimulateRandomDestinations, kept for cross-checking
// and old-vs-new benchmarks.
func SimulateRandomDestinationsReference(b *topology.Butterfly, ref *cut.Cut, seed int64) SimResult {
	if b.Wraparound() {
		panic("route: simulator targets Bn")
	}
	rng := rand.New(rand.NewSource(seed))
	n := b.N()
	paths := make([][]int, 0, n)
	for v := 0; v < n; v++ {
		dst := rng.Intn(n)
		if dst == v {
			continue // a self-message uses no edges
		}
		paths = append(paths, threeLegPath(b, v, dst))
	}
	return simulateReference(b, ref, paths)
}

// SimulateRandomDestinationsWrappedReference is the Wn analogue of
// SimulateRandomDestinationsReference: routes follow the Theorem 4.3
// three-leg shape (up the source column to level 0, the rotated monotone
// path into the destination column, then down to the destination).
func SimulateRandomDestinationsWrappedReference(w *topology.Butterfly, ref *cut.Cut, seed int64) SimResult {
	if !w.Wraparound() {
		panic("route: wrapped simulator targets Wn")
	}
	rng := rand.New(rand.NewSource(seed))
	n := w.N()
	paths := make([][]int, 0, n)
	for v := 0; v < n; v++ {
		dst := rng.Intn(n)
		if dst == v {
			continue
		}
		paths = append(paths, wrappedThreeLegPath(w, v, dst))
	}
	return simulateReference(w, ref, paths)
}

// compressPath removes consecutive duplicate nodes (legs of length 0).
func compressPath(p []int) []int {
	out := p[:1]
	for _, v := range p[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// SimulatePermutationReference is the map-based reference implementation
// of SimulatePermutation.
func SimulatePermutationReference(b *topology.Butterfly, ref *cut.Cut, perm []int) (SimResult, error) {
	if b.Wraparound() {
		panic("route: simulator targets Bn")
	}
	if err := checkPermutation(perm, b.Inputs()); err != nil {
		return SimResult{}, err
	}
	paths := make([][]int, b.Inputs())
	for w := range paths {
		paths[w] = b.MonotonePath(w, perm[w])
	}
	return simulateReference(b, ref, paths), nil
}

// threeLegPath routes from u up its column to level 0, across the monotone
// path, and up the destination column from level log n to the destination.
func threeLegPath(b *topology.Butterfly, u, v int) []int {
	wu, iu := b.Column(u), b.Level(u)
	wv, iv := b.Column(v), b.Level(v)
	path := make([]int, 0, iu+b.Dim()+(b.Dim()-iv)+1)
	for l := iu; l >= 0; l-- {
		path = append(path, b.Node(wu, l))
	}
	mono := b.MonotonePath(wu, wv)
	path = append(path, mono[1:]...)
	for l := b.Dim() - 1; l >= iv; l-- {
		path = append(path, b.Node(wv, l))
	}
	return path
}

// dedge is the reference engine's directed-edge key: an ordered node
// pair. Lexicographic (u,v) order over these keys is exactly the edge-id
// order of the flat engine's dirIndex.
type dedge struct{ u, v int32 }

// popQueue removes the head of key's queue, deleting drained queues so
// map emptiness keeps meaning "edge idle".
func popQueue(queues map[dedge][]int32, key dedge) {
	q := queues[key]
	queues[key] = q[1:]
	if len(q) == 1 {
		delete(queues, key)
	}
}

// simulateReference runs the synchronous switch model until every packet
// arrives, with per-edge queues keyed on a node-pair map and the busy
// edges re-sorted every step. It is the semantic specification the flat
// engine is cross-checked against.
func simulateReference(b *topology.Butterfly, ref *cut.Cut, paths [][]int) SimResult {
	return simulateReferenceScenario(b, ref, paths, 0, FaultOptions{}, StoreAndForward)
}

// simulateReferenceScenario is simulateReference with the full fault
// model: lossy links with bounded retransmission, per-trial dead links,
// and cut-through switching. It consumes the fault RNG in exactly the
// order the flat engine does — dead links first in (u,v) lex order, then
// one draw per transmission attempt in sorted move order — so lossy
// cross-checks agree draw for draw.
func simulateReferenceScenario(b *topology.Butterfly, ref *cut.Cut, paths [][]int, seed int64, f FaultOptions, sw Switching) SimResult {
	res := SimResult{Packets: len(paths)}
	if ref != nil {
		for _, p := range paths {
			for i := 0; i+1 < len(p); i++ {
				if ref.InS(p[i]) != ref.InS(p[i+1]) {
					res.CutCrossings++
					break
				}
			}
		}
		if capacity := ref.Capacity(); capacity > 0 {
			res.CongestionBound = (res.CutCrossings + capacity - 1) / capacity
		}
	}

	var faultRng *rand.Rand
	dead := map[dedge]bool{}
	if f.Enabled() {
		faultRng = rand.New(rand.NewSource(faultSeed(seed)))
		if f.DeadLinkProb > 0 {
			// Enumerate distinct directed edges in (u,v) lex order — the
			// same enumeration buildDirIndex assigns ids in — drawing one
			// decision per edge, so both engines consume identical streams.
			g := b.Graph
			nbr := make([]int32, 0, 8)
			for u := 0; u < g.N(); u++ {
				nbr = append(nbr[:0], g.Neighbors(u)...)
				sort.Slice(nbr, func(i, j int) bool { return nbr[i] < nbr[j] })
				for i, v := range nbr {
					if i > 0 && v == nbr[i-1] {
						continue // parallel edge: one id per node pair
					}
					if faultRng.Float64() < f.DeadLinkProb {
						dead[dedge{int32(u), v}] = true
						res.DeadLinks++
					}
				}
			}
		}
	}
	drops := f.DropProb > 0

	queues := make(map[dedge][]int32)
	pos := make([]int, len(paths))   // index into each path
	retry := make([]int, len(paths)) // failed attempts per packet
	stamp := make(map[dedge]int)     // step of an edge's last traversal
	remaining := 0
	// edgeAt returns the edge packet pk is about to traverse, or ok=false
	// when the packet is at its destination.
	edgeAt := func(pk int32) (dedge, bool) {
		p := paths[pk]
		i := pos[pk]
		if i+1 < len(p) {
			return dedge{int32(p[i]), int32(p[i+1])}, true
		}
		return dedge{}, false
	}
	for pk := range paths {
		key, ok := edgeAt(int32(pk))
		if !ok {
			res.Delivered++ // zero-edge route: already home
			continue
		}
		if dead[key] {
			res.Dropped++ // injected straight into a dead link
			continue
		}
		queues[key] = append(queues[key], int32(pk))
		remaining++
	}

	maxSteps := defaultMaxSteps(b)
	for step := 0; remaining > 0; {
		step++
		res.Steps = step
		if step > maxSteps {
			res.Steps = maxSteps
			res.Exhausted = true
			return res
		}
		type move struct {
			pk  int32
			key dedge
		}
		var moves []move
		for key, q := range queues {
			if len(q) == 0 {
				continue
			}
			if len(q) > res.MaxQueue {
				res.MaxQueue = len(q)
			}
			moves = append(moves, move{q[0], key})
		}
		// Maps iterate in random order; apply moves in a fixed order so
		// downstream FIFO queues fill deterministically.
		sort.Slice(moves, func(i, j int) bool {
			if moves[i].key.u != moves[j].key.u {
				return moves[i].key.u < moves[j].key.u
			}
			return moves[i].key.v < moves[j].key.v
		})
		for _, mv := range moves {
			if drops && faultRng.Float64() < f.DropProb {
				res.Retransmits++
				retry[mv.pk]++
				if f.MaxRetransmits > 0 && retry[mv.pk] >= f.MaxRetransmits {
					popQueue(queues, mv.key)
					remaining--
					res.Dropped++
				}
				continue
			}
			popQueue(queues, mv.key)
			remaining--
			if sw == CutThrough {
				stamp[mv.key] = step
			}
			pos[mv.pk]++
			key, more := edgeAt(mv.pk)
			if !more {
				res.Delivered++
				continue
			}
			if dead[key] {
				res.Dropped++
				continue
			}
			if sw == CutThrough {
				consumed := false
				for len(queues[key]) == 0 && stamp[key] != step {
					if drops && faultRng.Float64() < f.DropProb {
						res.Retransmits++
						retry[mv.pk]++
						if f.MaxRetransmits > 0 && retry[mv.pk] >= f.MaxRetransmits {
							res.Dropped++
							consumed = true
						}
						break // stall (or die) on this edge
					}
					stamp[key] = step
					pos[mv.pk]++
					next, ok := edgeAt(mv.pk)
					if !ok {
						res.Delivered++
						consumed = true
						break
					}
					if dead[next] {
						res.Dropped++
						consumed = true
						break
					}
					key = next
				}
				if consumed {
					continue
				}
			}
			queues[key] = append(queues[key], mv.pk)
			remaining++
		}
	}
	return res
}

// referencePaths compiles one trial's routes of kind on the reference
// slice-of-nodes representation, consuming the destination RNG in the
// same order as the flat engine's compileKind — equal seeds give the
// same traffic in both engines.
func referencePaths(b *topology.Butterfly, kind TrialKind, seed int64) [][]int {
	switch kind {
	case RandomDestinations:
		rng := rand.New(rand.NewSource(seed))
		n := b.N()
		paths := make([][]int, 0, n)
		for v := 0; v < n; v++ {
			dst := rng.Intn(n)
			if dst == v {
				continue
			}
			paths = append(paths, threeLegPath(b, v, dst))
		}
		return paths
	case WrappedRandomDestinations:
		rng := rand.New(rand.NewSource(seed))
		n := b.N()
		paths := make([][]int, 0, n)
		for v := 0; v < n; v++ {
			dst := rng.Intn(n)
			if dst == v {
				continue
			}
			paths = append(paths, wrappedThreeLegPath(b, v, dst))
		}
		return paths
	case RandomPermutations:
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(b.Inputs())
		paths := make([][]int, len(perm))
		for w := range paths {
			paths[w] = b.MonotonePath(w, perm[w])
		}
		return paths
	case HotSpotDestinations:
		rng := rand.New(rand.NewSource(seed))
		n := b.N()
		hot := rng.Intn(n)
		paths := make([][]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v == hot {
				continue
			}
			paths = append(paths, threeLegPath(b, v, hot))
		}
		return paths
	case BitReversalDestinations:
		d := b.Dim()
		paths := make([][]int, 0, b.N())
		for v := 0; v < b.N(); v++ {
			w, l := b.Column(v), b.Level(v)
			rw := bitutil.Reverse(w, d)
			if rw == w {
				continue // a fixed column maps to itself: no packet
			}
			paths = append(paths, threeLegPath(b, v, b.Node(rw, l)))
		}
		return paths
	}
	panic("route: unknown trial kind")
}

// wrappedThreeLegPath is the Wn route of the Theorem 4.3 shape: up the
// source column to level 0, the rotated monotone path, down to the
// destination.
func wrappedThreeLegPath(w *topology.Butterfly, v, dst int) []int {
	d := w.Dim()
	wu, iu := w.Column(v), w.Level(v)
	wv, iv := w.Column(dst), w.Level(dst)
	path := make([]int, 0, iu+d+(d-iv)+1)
	for l := iu; l >= 0; l-- {
		path = append(path, w.Node(wu, l))
	}
	mono := w.RotatedMonotonePath(wu, wv, 0)
	path = append(path, mono[1:]...)
	for l := d - 1; l >= iv; l-- {
		path = append(path, w.Node(wv, l))
	}
	return compressPath(path)
}

// SimulateScenarioReference is the map-based oracle for SimulateScenario:
// same traffic kinds, same fault model, same switching disciplines, same
// RNG streams — field-for-field equal results on every seed.
func SimulateScenarioReference(b *topology.Butterfly, ref *cut.Cut, kind TrialKind, seed int64, f FaultOptions, sw Switching) (SimResult, error) {
	if err := checkKindTopology(kind, b); err != nil {
		return SimResult{}, err
	}
	if err := f.Validate(); err != nil {
		return SimResult{}, err
	}
	return simulateReferenceScenario(b, ref, referencePaths(b, kind, seed), seed, f, sw), nil
}
