package route_test

import (
	"fmt"

	"repro/internal/route"
	"repro/internal/topology"
)

func ExampleRoutePermutation() {
	// Rearrangeability: the bit-reversal permutation routes edge-disjointly
	// through an 8-input Beneš network.
	be := topology.NewBenes(8)
	perm := []int{0, 4, 2, 6, 1, 5, 3, 7} // 3-bit reversal
	paths, err := route.RoutePermutation(be, perm)
	if err != nil {
		panic(err)
	}
	disjoint, _ := route.VerifyEdgeDisjoint(be.Graph, paths)
	fmt.Println("paths:", len(paths))
	fmt.Println("edge-disjoint:", disjoint)
	// Output:
	// paths: 8
	// edge-disjoint: true
}
