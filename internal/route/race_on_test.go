//go:build race

package route

// raceEnabled lets allocation-count tests skip themselves: the race
// detector's instrumentation allocates on its own.
const raceEnabled = true
