package loadgen

import (
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// configRow pins what was asked for — the workload half of the report.
type configRow struct {
	BaseURL    string  `json:"base_url"`
	Mix        string  `json:"mix"`
	Seed       int64   `json:"seed"`
	OfferedQPS float64 `json:"offered_qps"`
	DurationMS float64 `json:"duration_ms"`
	Planned    int     `json:"planned_requests"`
	TimeoutMS  float64 `json:"timeout_ms"`
}

// qpsRow is the schedule outcome: what rate was actually sustained and
// whether the generator itself kept up (a bench whose own dispatch lagged
// is reporting client saturation, not server latency — BehindSchedule
// makes that explicit instead of silently blaming the server).
type qpsRow struct {
	OfferedQPS     float64 `json:"offered_qps"`
	AchievedQPS    float64 `json:"achieved_qps"`
	Planned        int     `json:"planned"`
	Completed      int     `json:"completed"`
	BehindSchedule int     `json:"behind_schedule"`
	MaxLagUS       int64   `json:"max_lag_us"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	ErrorRate      float64 `json:"error_rate"`
}

// latencyRow is one latency distribution (overall or one outcome class),
// quantiles interpolated from the µs histogram and clamped to the exact
// observed max.
type latencyRow struct {
	Class  string  `json:"class"`
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  int64   `json:"max_us"`
}

func latencyRowFrom(class string, snap obs.HistogramSnapshot) latencyRow {
	mean := 0.0
	if snap.Count > 0 {
		mean = float64(snap.Sum) / float64(snap.Count)
	}
	return latencyRow{
		Class:  class,
		Count:  snap.Count,
		MeanUS: mean,
		P50US:  snap.Quantile(0.50),
		P95US:  snap.Quantile(0.95),
		P99US:  snap.Quantile(0.99),
		MaxUS:  snap.Max,
	}
}

// outcomeRow is one outcome class count — the X-Cache hit/coalesced/
// store-hit breakdown plus 429/503/422 rates the tentpole asks for.
type outcomeRow struct {
	Outcome string  `json:"outcome"`
	Count   int64   `json:"count"`
	Rate    float64 `json:"rate"`
}

// serverRow is one server-side metric bracketing the run. Delta is
// after−before — meaningful for counters, a drift indicator for gauges.
type serverRow struct {
	Name   string  `json:"name"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
	Delta  float64 `json:"delta"`
}

// serverMetricPrefixes picks which scraped series enter the report: the
// serving layer, the persistent store, the solver counters and the
// runtime gauges (GC correlation).
var serverMetricPrefixes = []string{"serve.", "store.", "solve.", "runtime."}

func serverRows(before, after map[string]interface{}) []serverRow {
	if after == nil {
		return nil
	}
	num := func(m map[string]interface{}, k string) (float64, bool) {
		if m == nil {
			return 0, false
		}
		v, ok := m[k].(float64) // encoding/json decodes numbers as float64
		return v, ok
	}
	names := make([]string, 0, len(after))
	for name := range after {
		for _, p := range serverMetricPrefixes {
			if strings.HasPrefix(name, p) {
				names = append(names, name)
				break
			}
		}
	}
	sort.Strings(names)
	rows := make([]serverRow, 0, len(names))
	for _, name := range names {
		a, ok := num(after, name)
		if !ok {
			continue // histograms: their snapshot objects don't delta
		}
		b, _ := num(before, name)
		rows = append(rows, serverRow{Name: name, Before: b, After: a, Delta: a - b})
	}
	return rows
}

// BuildReport assembles the versioned run-manifest document for one
// finished bench: config, schedule, latency distributions (overall +
// per outcome class), outcome counts, SLO verdicts, and the server-side
// metric deltas. The caller stamps GeneratedAt/Env (golden tests want
// the byte-stable core).
func BuildReport(opt Options, res *Result, slos []SLOResult) *obs.Manifest {
	opt = opt.withDefaults()
	m := obs.NewManifest("butterflybench")
	m.Seed = opt.Seed
	m.AddTable("bench.config", "load harness configuration", []configRow{{
		BaseURL:    opt.BaseURL,
		Mix:        string(opt.Profile),
		Seed:       opt.Seed,
		OfferedQPS: opt.QPS,
		DurationMS: float64(opt.Duration) / float64(time.Millisecond),
		Planned:    res.Planned,
		TimeoutMS:  float64(opt.Timeout) / float64(time.Millisecond),
	}})
	m.AddTable("bench.qps", "offered vs achieved schedule", []qpsRow{{
		OfferedQPS:     res.OfferedQPS,
		AchievedQPS:    res.AchievedQPS,
		Planned:        res.Planned,
		Completed:      res.Completed,
		BehindSchedule: res.BehindSchedule,
		MaxLagUS:       res.MaxLagUS,
		ElapsedMS:      float64(res.Elapsed) / float64(time.Millisecond),
		ErrorRate:      res.ErrorRate(),
	}})
	lat := []latencyRow{latencyRowFrom("overall", res.Overall)}
	for _, class := range res.OutcomeClassesPresent() {
		if snap, ok := res.PerOutcome[class]; ok {
			lat = append(lat, latencyRowFrom(class, snap))
		}
	}
	m.AddTable("bench.latency", "client-side latency (µs)", lat)
	outs := make([]outcomeRow, 0, len(res.Outcomes))
	for _, class := range res.OutcomeClassesPresent() {
		rate := 0.0
		if res.Completed > 0 {
			rate = float64(res.Outcomes[class]) / float64(res.Completed)
		}
		outs = append(outs, outcomeRow{Outcome: class, Count: res.Outcomes[class], Rate: rate})
	}
	m.AddTable("bench.outcomes", "X-Cache / status breakdown", outs)
	if slos == nil {
		slos = []SLOResult{}
	}
	m.AddTable("bench.slo", "SLO evaluation", slos)
	if rows := serverRows(res.MetricsBefore, res.MetricsAfter); rows != nil {
		m.AddTable("bench.server", "server-side metric deltas over the run", rows)
	}
	return m
}
