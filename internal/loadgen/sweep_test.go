package loadgen_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
)

func TestParseSweep(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want []float64
	}{
		{"100:300:100", []float64{100, 200, 300}},
		{"50:50:10", []float64{50}},
		{"10:25:10", []float64{10, 20}},
		{"0.5:2:0.5", []float64{0.5, 1, 1.5, 2}},
	} {
		got, err := loadgen.ParseSweep(tc.spec)
		if err != nil {
			t.Fatalf("ParseSweep(%q): %v", tc.spec, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("ParseSweep(%q) = %v, want %v", tc.spec, got, tc.want)
		}
		for i := range got {
			if diff := got[i] - tc.want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("ParseSweep(%q)[%d] = %g, want %g", tc.spec, i, got[i], tc.want[i])
			}
		}
	}
	for _, bad := range []string{
		"", "100", "100:200", "a:b:c", "0:100:10", "-5:100:10",
		"100:50:10", "100:200:0", "100:200:-10", "1:100000:1", "1:2:3:4",
	} {
		if _, err := loadgen.ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) accepted", bad)
		}
	}
}

// TestRunSweepEndToEnd drives a two-point sweep against a live daemon and
// checks the per-point results, per-point SLO evaluation, and the
// bench.sweep manifest table (one row per offered rate, in order).
func TestRunSweepEndToEnd(t *testing.T) {
	base := startDaemon(t)
	slos, err := loadgen.ParseSLOs("p99=30s,errors=0%")
	if err != nil {
		t.Fatal(err)
	}
	opt := loadgen.Options{
		BaseURL:  base,
		Profile:  loadgen.HitHeavy,
		Seed:     1,
		Duration: 250 * time.Millisecond,
		Timeout:  10 * time.Second,
		SLOs:     slos,
	}
	points, err := loadgen.RunSweep(context.Background(), opt, []float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	for i, want := range []float64{100, 200} {
		p := points[i]
		if p.QPS != want {
			t.Fatalf("point %d offered %g, want %g", i, p.QPS, want)
		}
		if p.Result.Completed != p.Result.Planned || p.Result.Planned < 1 {
			t.Fatalf("point %d: completed %d of %d", i, p.Result.Completed, p.Result.Planned)
		}
		if len(p.SLOs) != len(slos) {
			t.Fatalf("point %d: %d SLO results, want %d", i, len(p.SLOs), len(slos))
		}
	}
	if points[1].Result.Planned <= points[0].Result.Planned {
		t.Fatalf("higher rate planned fewer requests: %d vs %d",
			points[1].Result.Planned, points[0].Result.Planned)
	}
	if !loadgen.SweepAllPass(points) {
		t.Fatalf("loose SLOs failed somewhere: %+v", points)
	}

	m := loadgen.BuildSweepReport(opt, points)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := obs.DecodeManifest(&buf)
	if err != nil {
		t.Fatalf("sweep report is not a valid run manifest: %v", err)
	}
	sweepTable := dec.Table("bench.sweep")
	if sweepTable == nil {
		t.Fatal("report missing bench.sweep")
	}
	rows, ok := sweepTable.Rows.([]interface{})
	if !ok || len(rows) != 2 {
		t.Fatalf("bench.sweep rows = %#v, want 2 rows", sweepTable.Rows)
	}
	for i, want := range []float64{100, 200} {
		row, ok := rows[i].(map[string]interface{})
		if !ok {
			t.Fatalf("sweep row %d = %#v", i, rows[i])
		}
		if got := row["offered_qps"].(float64); got != want {
			t.Fatalf("sweep row %d offered_qps = %v, want %g", i, got, want)
		}
		if row["p99_us"].(float64) < row["p50_us"].(float64) {
			t.Fatalf("sweep row %d: p99 < p50: %v", i, row)
		}
		if pass, ok := row["slo_pass"].(bool); !ok || !pass {
			t.Fatalf("sweep row %d: slo_pass = %v", i, row["slo_pass"])
		}
	}
	if dec.Table("bench.config") == nil || dec.Table("bench.slo") == nil {
		t.Fatal("report missing bench.config or bench.slo")
	}

	// Cancellation mid-sweep keeps the finished points.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done, err := loadgen.RunSweep(ctx, opt, []float64{100, 200})
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	if len(done) != 0 {
		// ctx was dead before the first point; nothing should have run.
		t.Fatalf("cancelled-before-start sweep ran %d points", len(done))
	}
}
