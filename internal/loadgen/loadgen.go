// Package loadgen is the serving-side benchmark harness behind
// cmd/butterflybench: an open-loop constant-QPS generator that drives a
// live butterflyd over HTTP with deterministic request-mix profiles,
// records client-side latency into µs-resolution histograms, scrapes the
// daemon's /debug/metrics before and after, and evaluates the run
// against declared latency/error SLOs.
//
// Open loop matters: requests fire on the offered schedule regardless of
// how fast earlier ones complete, so a slow server accumulates in-flight
// work and its queueing behavior (429/503, coordinated omission) is
// measured instead of hidden. The request sequence is a pure function of
// (profile, seed), so two runs differ only by the server under test.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Outcome classes the harness distinguishes, mirroring the server's
// serve.requests.* labels plus the client-only transport class. Fixed
// and pre-registered so the hot recording path is map-lookup + atomics.
var outcomeClasses = []string{
	"ok", "cache_hit", "store_hit", "coalesced",
	"400", "405", "422", "429", "500", "503", "other", "transport",
}

// classify maps one completed request onto its outcome class from the
// client-visible evidence: HTTP status and the X-Cache header.
func classify(status int, xcache string) string {
	if status == http.StatusOK {
		switch xcache {
		case "hit":
			return "cache_hit"
		case "store-hit":
			return "store_hit"
		case "coalesced":
			return "coalesced"
		}
		return "ok"
	}
	s := fmt.Sprintf("%d", status)
	for _, c := range outcomeClasses {
		if c == s {
			return s
		}
	}
	return "other"
}

// errorClass reports whether an outcome counts against the errors SLO:
// every rejection, failure and transport error; served answers (cache,
// store, coalesced, fresh) do not.
func errorClass(class string) bool {
	switch class {
	case "ok", "cache_hit", "store_hit", "coalesced":
		return false
	}
	return true
}

// Options configures one bench run.
type Options struct {
	// BaseURL roots every request, e.g. "http://localhost:8080".
	BaseURL string
	// Profile picks the request mix; Seed pins its sequence.
	Profile Profile
	Seed    int64
	// QPS is the offered open-loop rate; Duration the run length. The
	// request count is floor(QPS · Duration).
	QPS      float64
	Duration time.Duration
	// Timeout bounds each request client-side (≤0: 10s).
	Timeout time.Duration
	// SLOs are evaluated against the finished run (may be empty).
	SLOs []SLO
	// Client overrides the HTTP client (tests); nil builds one with
	// Timeout and enough idle connections for the offered concurrency.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	return o
}

// Result is one finished run: schedule accounting, outcome counts and
// µs latency distributions, overall and per outcome class.
type Result struct {
	Planned   int
	Completed int
	Elapsed   time.Duration
	// OfferedQPS is the configured rate; AchievedQPS what actually
	// completed per second of run wall time.
	OfferedQPS  float64
	AchievedQPS float64
	// BehindSchedule counts requests dispatched more than one interval
	// after their slot (the generator itself lagging — on a saturated
	// client box the offered rate is not credible and the report says so);
	// MaxLagUS is the worst dispatch lag observed.
	BehindSchedule int
	MaxLagUS       int64

	Outcomes   map[string]int64
	Overall    obs.HistogramSnapshot
	PerOutcome map[string]obs.HistogramSnapshot

	// MetricsBefore/After are the daemon's /debug/metrics snapshots
	// bracketing the run (nil when the scrape failed — a non-butterflyd
	// target is still benchable).
	MetricsBefore map[string]interface{}
	MetricsAfter  map[string]interface{}
}

// ErrorRate is the fraction of completed requests whose outcome counts
// as an error (rejections, failures, transport errors).
func (r *Result) ErrorRate() float64 {
	if r.Completed == 0 {
		return 0
	}
	errs := int64(0)
	for class, n := range r.Outcomes {
		if errorClass(class) {
			errs += n
		}
	}
	return float64(errs) / float64(r.Completed)
}

// recorder accumulates per-request observations from the firing
// goroutines: allocation-free histograms plus one small mutex-guarded
// counter map.
type recorder struct {
	overall obs.Histogram
	mu      sync.Mutex
	counts  map[string]int64
	hists   map[string]*obs.Histogram
}

func newRecorder() *recorder {
	r := &recorder{counts: make(map[string]int64), hists: make(map[string]*obs.Histogram)}
	for _, c := range outcomeClasses {
		r.hists[c] = &obs.Histogram{}
	}
	return r
}

func (r *recorder) observe(class string, us int64) {
	r.overall.Observe(us)
	r.hists[class].Observe(us)
	r.mu.Lock()
	r.counts[class]++
	r.mu.Unlock()
}

// ScrapeMetrics fetches and decodes a /debug/metrics snapshot.
func ScrapeMetrics(client *http.Client, baseURL string) (map[string]interface{}, error) {
	resp, err := client.Get(baseURL + "/debug/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics scrape: status %d", resp.StatusCode)
	}
	var m map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

// Run drives one open-loop bench: requests fire at their scheduled
// instants (i·interval past start) in their own goroutines, every
// response is drained, classified and timed, and the daemon's metrics
// registry is scraped before and after. Cancelling ctx stops dispatch;
// already-fired requests still complete and are counted.
func Run(ctx context.Context, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	total := int(opt.QPS * opt.Duration.Seconds())
	if total < 1 || opt.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: qps %g over %s plans no requests", opt.QPS, opt.Duration)
	}
	paths := Requests(opt.Profile, opt.Seed, total)
	interval := time.Duration(float64(time.Second) / opt.QPS)

	client := opt.Client
	if client == nil {
		client = &http.Client{
			Timeout: opt.Timeout,
			Transport: &http.Transport{
				// The open loop can legitimately hold hundreds of requests
				// in flight against a slow server; don't strangle it on
				// two idle conns per host (the net/http default).
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		}
	}

	before, _ := ScrapeMetrics(client, opt.BaseURL)

	rec := newRecorder()
	res := &Result{
		Planned:    total,
		OfferedQPS: opt.QPS,
	}
	var lagMu sync.Mutex

	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C
dispatch:
	for i := 0; i < total; i++ {
		slot := start.Add(time.Duration(i) * interval)
		if wait := time.Until(slot); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		if lag := time.Since(slot); lag > interval {
			lagMu.Lock()
			res.BehindSchedule++
			if us := int64(lag / time.Microsecond); us > res.MaxLagUS {
				res.MaxLagUS = us
			}
			lagMu.Unlock()
		}
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			fired := time.Now()
			class := "transport"
			resp, err := client.Get(opt.BaseURL + path)
			if err == nil {
				// Drain so the connection is reusable; the body content is
				// the server's business, the latency to the last byte ours.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				class = classify(resp.StatusCode, resp.Header.Get("X-Cache"))
			}
			rec.observe(class, int64(time.Since(fired)/time.Microsecond))
		}(paths[i])
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	after, _ := ScrapeMetrics(client, opt.BaseURL)

	res.MetricsBefore, res.MetricsAfter = before, after
	res.Overall = rec.overall.Snapshot()
	res.Outcomes = make(map[string]int64)
	res.PerOutcome = make(map[string]obs.HistogramSnapshot)
	rec.mu.Lock()
	for class, n := range rec.counts {
		res.Outcomes[class] = n
		res.Completed += int(n)
	}
	rec.mu.Unlock()
	for _, class := range outcomeClasses {
		if snap := rec.hists[class].Snapshot(); snap.Count > 0 {
			res.PerOutcome[class] = snap
		}
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.AchievedQPS = float64(res.Completed) / secs
	}
	return res, nil
}

// OutcomeClassesPresent lists the result's outcome classes in canonical
// order (report rendering wants stable row order).
func (r *Result) OutcomeClassesPresent() []string {
	present := make([]string, 0, len(r.Outcomes))
	for _, c := range outcomeClasses {
		if r.Outcomes[c] > 0 {
			present = append(present, c)
		}
	}
	// Anything unexpected still renders, last, sorted.
	extra := make([]string, 0)
	for c := range r.Outcomes {
		known := false
		for _, k := range outcomeClasses {
			if c == k {
				known = true
				break
			}
		}
		if !known {
			extra = append(extra, c)
		}
	}
	sort.Strings(extra)
	return append(present, extra...)
}
