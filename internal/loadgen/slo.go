package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLO is one declared service-level objective the finished run is
// judged against. Latency objectives (p50/p90/p95/p99/max/mean) carry a
// µs bound; rate objectives carry a percentage — errors is a maximum
// (error outcomes / completed), achieved a minimum (achieved/offered
// QPS).
type SLO struct {
	Name      string
	LatencyUS int64
	Percent   float64
}

// latencySLOs maps objective name → quantile (mean and max are special-
// cased in Evaluate).
var latencySLOs = map[string]float64{
	"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99,
}

// ParseSLOs parses a -slo declaration: comma-separated name=value pairs,
// latency values in Go duration syntax, rates as percentages.
//
//	p99=50ms,errors=1%
//	p50=2ms,p99=80ms,errors=0.5%,achieved=90%
func ParseSLOs(spec string) ([]SLO, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []SLO
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("slo: %q is not name=value", part)
		}
		name, raw := strings.ToLower(kv[0]), kv[1]
		switch {
		case name == "errors" || name == "achieved":
			if !strings.HasSuffix(raw, "%") {
				return nil, fmt.Errorf("slo: %s wants a percentage (got %q)", name, raw)
			}
			pct, err := strconv.ParseFloat(strings.TrimSuffix(raw, "%"), 64)
			if err != nil || pct < 0 || pct > 100 {
				return nil, fmt.Errorf("slo: %s: %q is not a percentage in [0,100]", name, raw)
			}
			out = append(out, SLO{Name: name, Percent: pct})
		case name == "max" || name == "mean" || latencySLOs[name] != 0:
			d, err := time.ParseDuration(raw)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo: %s: %q is not a positive duration (want e.g. 50ms)", name, raw)
			}
			out = append(out, SLO{Name: name, LatencyUS: int64(d / time.Microsecond)})
		default:
			return nil, fmt.Errorf("slo: unknown objective %q (want p50/p90/p95/p99/max/mean/errors/achieved)", name)
		}
	}
	return out, nil
}

// SLOResult is one evaluated objective — a row of the report's bench.slo
// table. Threshold and Actual are human-formatted; the numeric fields
// keep the table machine-checkable.
type SLOResult struct {
	Name      string  `json:"name"`
	Threshold string  `json:"threshold"`
	Actual    string  `json:"actual"`
	Value     float64 `json:"value"`
	Bound     float64 `json:"bound"`
	Pass      bool    `json:"pass"`
}

// Evaluate judges the run against each objective. An empty SLO list
// evaluates to an empty (vacuously passing) result set.
func (r *Result) Evaluate(slos []SLO) []SLOResult {
	out := make([]SLOResult, 0, len(slos))
	for _, s := range slos {
		res := SLOResult{Name: s.Name}
		switch {
		case s.Name == "errors":
			rate := r.ErrorRate() * 100
			res.Threshold = fmt.Sprintf("≤ %g%%", s.Percent)
			res.Actual = fmt.Sprintf("%.3g%%", rate)
			res.Value, res.Bound = rate, s.Percent
			res.Pass = rate <= s.Percent
		case s.Name == "achieved":
			ratio := 0.0
			if r.OfferedQPS > 0 {
				ratio = r.AchievedQPS / r.OfferedQPS * 100
			}
			res.Threshold = fmt.Sprintf("≥ %g%%", s.Percent)
			res.Actual = fmt.Sprintf("%.3g%%", ratio)
			res.Value, res.Bound = ratio, s.Percent
			res.Pass = ratio >= s.Percent
		default:
			var us float64
			switch s.Name {
			case "max":
				us = float64(r.Overall.Max)
			case "mean":
				if r.Overall.Count > 0 {
					us = float64(r.Overall.Sum) / float64(r.Overall.Count)
				}
			default:
				us = r.Overall.Quantile(latencySLOs[s.Name])
			}
			res.Threshold = fmt.Sprintf("≤ %s", time.Duration(s.LatencyUS)*time.Microsecond)
			res.Actual = (time.Duration(us) * time.Microsecond).Round(time.Microsecond).String()
			res.Value, res.Bound = us, float64(s.LatencyUS)
			res.Pass = us <= float64(s.LatencyUS)
		}
		out = append(out, res)
	}
	return out
}

// AllPass reports whether every evaluated objective held.
func AllPass(results []SLOResult) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}
