package loadgen

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// maxSweepPoints bounds a sweep: a typo like "1:100000:1" must fail fast
// instead of scheduling a week of bench runs.
const maxSweepPoints = 64

// ParseSweep parses a "lo:hi:step" QPS sweep spec into its offered-rate
// points, inclusive of hi when the step lands on it exactly.
func ParseSweep(spec string) ([]float64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("loadgen: sweep %q: want lo:hi:step", spec)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep %q: %q is not a number", spec, p)
		}
		vals[i] = v
	}
	lo, hi, step := vals[0], vals[1], vals[2]
	if lo <= 0 || hi < lo || step <= 0 {
		return nil, fmt.Errorf("loadgen: sweep %q: need 0 < lo ≤ hi and step > 0", spec)
	}
	if n := (hi-lo)/step + 1; n > maxSweepPoints {
		return nil, fmt.Errorf("loadgen: sweep %q plans %.0f points, max %d", spec, n, maxSweepPoints)
	}
	var points []float64
	// Index-based stepping avoids accumulating float error across points;
	// the epsilon admits hi itself when step divides the range exactly.
	for i := 0; ; i++ {
		q := lo + float64(i)*step
		if q > hi*(1+1e-9) {
			break
		}
		points = append(points, q)
	}
	return points, nil
}

// SweepPoint is one offered-load point of a finished sweep.
type SweepPoint struct {
	QPS    float64
	Result *Result
	SLOs   []SLOResult
}

// RunSweep benches each offered rate in sequence, one full Options run
// per point (same mix, seed and duration — only the rate varies), and
// evaluates opt.SLOs against every point separately. Cancelling ctx ends
// the sweep after the in-flight point; the completed points are returned
// alongside the context error.
func RunSweep(ctx context.Context, opt Options, points []float64) ([]SweepPoint, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("loadgen: sweep has no points")
	}
	out := make([]SweepPoint, 0, len(points))
	for _, qps := range points {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		po := opt
		po.QPS = qps
		res, err := Run(ctx, po)
		if err != nil {
			return out, fmt.Errorf("loadgen: sweep point %g qps: %w", qps, err)
		}
		out = append(out, SweepPoint{QPS: qps, Result: res, SLOs: res.Evaluate(opt.SLOs)})
	}
	return out, nil
}

// SweepAllPass reports whether every point of the sweep met every SLO.
func SweepAllPass(points []SweepPoint) bool {
	for _, p := range points {
		if !AllPass(p.SLOs) {
			return false
		}
	}
	return true
}

// sweepRow is one line of the latency-vs-offered-load table: the curve a
// capacity plan reads off — where achieved rate stops tracking offered
// rate, and what the tail does on the way there.
type sweepRow struct {
	OfferedQPS     float64 `json:"offered_qps"`
	AchievedQPS    float64 `json:"achieved_qps"`
	Planned        int     `json:"planned"`
	Completed      int     `json:"completed"`
	ErrorRate      float64 `json:"error_rate"`
	BehindSchedule int     `json:"behind_schedule"`
	MeanUS         float64 `json:"mean_us"`
	P50US          float64 `json:"p50_us"`
	P95US          float64 `json:"p95_us"`
	P99US          float64 `json:"p99_us"`
	MaxUS          int64   `json:"max_us"`
	SLOPass        bool    `json:"slo_pass"`
}

func sweepRowFrom(p SweepPoint) sweepRow {
	lat := latencyRowFrom("overall", p.Result.Overall)
	return sweepRow{
		OfferedQPS:     p.QPS,
		AchievedQPS:    p.Result.AchievedQPS,
		Planned:        p.Result.Planned,
		Completed:      p.Result.Completed,
		ErrorRate:      p.Result.ErrorRate(),
		BehindSchedule: p.Result.BehindSchedule,
		MeanUS:         lat.MeanUS,
		P50US:          lat.P50US,
		P95US:          lat.P95US,
		P99US:          lat.P99US,
		MaxUS:          lat.MaxUS,
		SLOPass:        AllPass(p.SLOs),
	}
}

// BuildSweepReport assembles the sweep manifest: the shared config, the
// bench.sweep latency-vs-offered-load table, and per-point SLO verdicts
// (point column = offered QPS). Single-point detail tables are deliberately
// omitted — a sweep answers "where does it saturate", not "what happened
// at 500 qps"; rerun the single-point mode for that.
func BuildSweepReport(opt Options, points []SweepPoint) *obs.Manifest {
	opt = opt.withDefaults()
	m := obs.NewManifest("butterflybench")
	m.Seed = opt.Seed
	planned := 0
	if len(points) > 0 {
		planned = points[0].Result.Planned
	}
	m.AddTable("bench.config", "load harness configuration (per sweep point)", []configRow{{
		BaseURL:    opt.BaseURL,
		Mix:        string(opt.Profile),
		Seed:       opt.Seed,
		OfferedQPS: 0, // varies: see bench.sweep
		DurationMS: float64(opt.Duration) / float64(time.Millisecond),
		Planned:    planned,
		TimeoutMS:  float64(opt.Timeout) / float64(time.Millisecond),
	}})
	rows := make([]sweepRow, 0, len(points))
	for _, p := range points {
		rows = append(rows, sweepRowFrom(p))
	}
	m.AddTable("bench.sweep", "latency vs offered load", rows)
	type sloPointRow struct {
		OfferedQPS float64 `json:"offered_qps"`
		SLOResult
	}
	var sloRows []sloPointRow
	for _, p := range points {
		for _, s := range p.SLOs {
			sloRows = append(sloRows, sloPointRow{OfferedQPS: p.QPS, SLOResult: s})
		}
	}
	if sloRows == nil {
		sloRows = []sloPointRow{}
	}
	m.AddTable("bench.slo", "SLO evaluation per sweep point", sloRows)
	return m
}
