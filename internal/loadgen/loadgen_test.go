package loadgen_test

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/serve"
)

// TestRequestSequenceDeterministic: identical (profile, seed) must
// produce identical request sequences — the property that makes two
// bench reports comparable — and different seeds must diverge on the
// stochastic profiles.
func TestRequestSequenceDeterministic(t *testing.T) {
	for _, p := range loadgen.Profiles() {
		a := loadgen.Requests(p, 42, 500)
		b := loadgen.Requests(p, 42, 500)
		if len(a) != 500 {
			t.Fatalf("%s: %d requests, want 500", p, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: sequence diverges at %d: %q vs %q", p, i, a[i], b[i])
			}
			if !strings.HasPrefix(a[i], "/v1/") {
				t.Fatalf("%s: request %q is not a /v1 path", p, a[i])
			}
		}
	}
	// Seeds shuffle the hit-heavy ordering and relabel the miss keys.
	for _, p := range []loadgen.Profile{loadgen.HitHeavy, loadgen.MissHeavy, loadgen.ZipfShapes} {
		a, b := loadgen.Requests(p, 1, 200), loadgen.Requests(p, 2, 200)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 1 and 2 produced identical sequences", p)
		}
	}
}

// TestProfileShapes: each mix produces the structure its name promises.
func TestProfileShapes(t *testing.T) {
	// Miss-heavy: every request unique.
	miss := loadgen.Requests(loadgen.MissHeavy, 7, 1000)
	seen := make(map[string]bool, len(miss))
	for _, p := range miss {
		if seen[p] {
			t.Fatalf("miss-heavy repeats %q", p)
		}
		seen[p] = true
	}
	// Hit-heavy: a small pool, each element repeated many times.
	hit := loadgen.Requests(loadgen.HitHeavy, 7, 1000)
	pool := make(map[string]int)
	for _, p := range hit {
		pool[p]++
	}
	if len(pool) > 16 {
		t.Fatalf("hit-heavy pool has %d distinct queries, want a small pool", len(pool))
	}
	// Storm: runs of identical queries, distinct across bursts.
	storm := loadgen.Requests(loadgen.Storm, 7, 128)
	if storm[0] != storm[31] || storm[0] == storm[32] {
		t.Fatalf("storm bursts malformed: [0]=%q [31]=%q [32]=%q", storm[0], storm[31], storm[32])
	}
	// Zipf: the hottest shape dominates the tail shapes.
	zipf := loadgen.Requests(loadgen.ZipfShapes, 7, 2000)
	counts := make(map[string]int)
	for _, p := range zipf {
		counts[p]++
	}
	hot := counts["/v1/bisection?network=bn&n=8"]
	cold := counts["/v1/bisection?network=bn&n=2048"]
	if hot <= cold || hot < len(zipf)/10 {
		t.Fatalf("zipf skew missing: hot=%d cold=%d of %d", hot, cold, len(zipf))
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := loadgen.ParseSLOs("p99=50ms,errors=1%,p50=900us,achieved=90%,max=2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 5 {
		t.Fatalf("%d SLOs, want 5", len(slos))
	}
	if slos[0].Name != "p99" || slos[0].LatencyUS != 50000 {
		t.Fatalf("p99 = %+v", slos[0])
	}
	if slos[1].Name != "errors" || slos[1].Percent != 1 {
		t.Fatalf("errors = %+v", slos[1])
	}
	if slos[2].LatencyUS != 900 {
		t.Fatalf("p50 = %+v", slos[2])
	}
	for _, bad := range []string{"p99", "p99=", "p98=5ms", "errors=1", "p99=-3ms", "errors=200%"} {
		if _, err := loadgen.ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted", bad)
		}
	}
	if slos, err := loadgen.ParseSLOs(""); err != nil || slos != nil {
		t.Fatalf("empty spec: %v %v", slos, err)
	}
}

// startDaemon runs a real serve.Server on loopback for the end-to-end
// harness tests.
func startDaemon(t *testing.T) string {
	t.Helper()
	s := serve.New(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return "http://" + ln.Addr().String()
}

// TestRunHitHeavyEndToEnd: a short hit-heavy run against a live server
// completes every planned request, records µs latencies with sane
// quantiles, sees cache hits, brackets the run with server metrics, and
// passes a loose SLO while failing an impossible one.
func TestRunHitHeavyEndToEnd(t *testing.T) {
	base := startDaemon(t)
	opt := loadgen.Options{
		BaseURL:  base,
		Profile:  loadgen.HitHeavy,
		Seed:     1,
		QPS:      200,
		Duration: 500 * time.Millisecond,
		Timeout:  10 * time.Second,
	}
	res, err := loadgen.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Planned != 100 || res.Completed != res.Planned {
		t.Fatalf("planned %d completed %d", res.Planned, res.Completed)
	}
	if res.AchievedQPS <= 0 {
		t.Fatalf("achieved qps = %g", res.AchievedQPS)
	}
	if res.Outcomes["cache_hit"] == 0 {
		t.Fatalf("hit-heavy run saw no cache hits: %v", res.Outcomes)
	}
	if res.ErrorRate() != 0 {
		t.Fatalf("error rate %g on a healthy run: %v", res.ErrorRate(), res.Outcomes)
	}
	if res.Overall.Count != int64(res.Completed) || res.Overall.Max <= 0 {
		t.Fatalf("overall histogram: %+v", res.Overall)
	}
	p50, p99 := res.Overall.Quantile(0.5), res.Overall.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles p50=%g p99=%g", p50, p99)
	}
	if res.MetricsAfter == nil {
		t.Fatal("no server metrics scraped")
	}

	loose, _ := loadgen.ParseSLOs("p99=30s,errors=0%")
	if results := res.Evaluate(loose); !loadgen.AllPass(results) {
		t.Fatalf("loose SLOs failed: %+v", results)
	}
	impossible, _ := loadgen.ParseSLOs("max=1us")
	if results := res.Evaluate(impossible); loadgen.AllPass(results) {
		t.Fatalf("impossible SLO passed: %+v", results)
	}

	m := loadgen.BuildReport(opt, res, res.Evaluate(loose))
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := obs.DecodeManifest(&buf)
	if err != nil {
		t.Fatalf("report is not a valid run manifest: %v", err)
	}
	for _, table := range []string{"bench.config", "bench.qps", "bench.latency", "bench.outcomes", "bench.slo", "bench.server"} {
		if dec.Table(table) == nil {
			t.Errorf("report missing table %s", table)
		}
	}
	if dec.Command != "butterflybench" || dec.Seed != 1 {
		t.Fatalf("command=%q seed=%d", dec.Command, dec.Seed)
	}
}

// TestRunStormCoalesces: storm bursts fired open-loop against a slow
// path should produce coalesced outcomes — the singleflight behavior
// the profile exists to measure. (Each burst's queries are identical and
// the burst outruns its solve.)
func TestRunStormCoalesces(t *testing.T) {
	base := startDaemon(t)
	res, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:  base,
		Profile:  loadgen.Storm,
		Seed:     3,
		QPS:      400,
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Planned {
		t.Fatalf("completed %d of %d", res.Completed, res.Planned)
	}
	coalesced := res.Outcomes["coalesced"] + res.Outcomes["cache_hit"]
	if coalesced == 0 {
		t.Fatalf("storm run produced no coalesced/hit outcomes: %v", res.Outcomes)
	}
}

// TestRunCancellation: cancelling mid-run stops dispatch but still
// returns a consistent result for what fired.
func TestRunCancellation(t *testing.T) {
	base := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	res, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:  base,
		Profile:  loadgen.HitHeavy,
		Seed:     1,
		QPS:      50,
		Duration: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed >= res.Planned {
		t.Fatalf("cancellation did not stop dispatch: %d of %d", res.Completed, res.Planned)
	}
	if int64(res.Completed) != res.Overall.Count {
		t.Fatalf("count mismatch: %d completed, %d observed", res.Completed, res.Overall.Count)
	}
}
