package loadgen

import (
	"fmt"
	"math"
	"strings"
)

// Profile names one request-mix: which query paths the generator fires,
// in which proportions and order. The sequence a profile produces is a
// pure function of (profile, seed, n) — two runs with the same triple
// drive the daemon with byte-identical request streams, so a perf delta
// between two reports is the server's, never the workload's.
type Profile string

const (
	// HitHeavy cycles pseudo-randomly over a small pool of cheap
	// distinct queries: after one cold pass everything is an LRU hit —
	// the cache fast path under sustained load.
	HitHeavy Profile = "hit-heavy"
	// MissHeavy makes every request unique (a fresh routing seed each
	// time), so every request is a cache miss and a real (cheap) solve —
	// the admission-control and solver path under sustained load.
	MissHeavy Profile = "miss-heavy"
	// ZipfShapes draws bisection queries from a zipfian distribution
	// over butterfly sizes: a few hot shapes dominate, a long tail of
	// rarer shapes keeps missing — the realistic skew cache sizing is
	// tuned against.
	ZipfShapes Profile = "zipf-shapes"
	// Storm fires consecutive bursts of byte-identical queries, each
	// burst under a fresh key: at open-loop rates the burst outruns its
	// own first solve, so the followers must coalesce — the singleflight
	// path under load.
	Storm Profile = "storm"
)

// Profiles lists every mix in presentation order.
func Profiles() []Profile { return []Profile{HitHeavy, MissHeavy, ZipfShapes, Storm} }

// ParseProfile resolves a -mix flag value.
func ParseProfile(s string) (Profile, error) {
	for _, p := range Profiles() {
		if string(p) == strings.ToLower(strings.TrimSpace(s)) {
			return p, nil
		}
	}
	names := make([]string, 0, 4)
	for _, p := range Profiles() {
		names = append(names, string(p))
	}
	return "", fmt.Errorf("mix: want %s (got %q)", strings.Join(names, ", "), s)
}

// mix64 is the splitmix64 finalizer — the same mixing discipline
// route.TrialSeed and heuristic start seeds use, so nearby (seed, i)
// pairs share no streams.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stormBurst is how many byte-identical requests each Storm burst holds.
const stormBurst = 32

// hitPool is the HitHeavy query pool: distinct, individually cheap, all
// resident in a default-sized LRU at once.
var hitPool = []string{
	"/v1/bisection?network=bn&n=4",
	"/v1/bisection?network=bn&n=8",
	"/v1/bisection?network=bn&n=16",
	"/v1/bisection?network=bn&n=32",
	"/v1/bisection?network=wn&n=4",
	"/v1/bisection?network=wn&n=8",
	"/v1/routing?n=8&trials=3&seed=1",
	"/v1/routing?n=16&trials=3&seed=1",
}

// zipfShapes are the ZipfShapes butterfly sizes, rank-ordered hottest
// first; zipfCDF is the cumulative rank-probability table for exponent
// 1.2, built once.
var zipfShapes = []int{8, 16, 32, 4, 64, 128, 256, 512, 1024, 2048}

var zipfCDF = func() []float64 {
	weights := make([]float64, len(zipfShapes))
	total := 0.0
	for r := range zipfShapes {
		weights[r] = 1 / math.Pow(float64(r+1), 1.2)
		total += weights[r]
	}
	cdf := make([]float64, len(weights))
	cum := 0.0
	for r, w := range weights {
		cum += w / total
		cdf[r] = cum
	}
	cdf[len(cdf)-1] = 1
	return cdf
}()

// u01 maps a mixed 64-bit word onto [0, 1).
func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Requests returns the profile's deterministic request sequence: n
// server-relative query paths. The i-th element depends only on
// (profile, seed, i), so a re-run replays the identical stream and a
// report can name the request sequence by (mix, seed, n) alone.
func Requests(p Profile, seed int64, n int) []string {
	out := make([]string, n)
	base := uint64(seed)
	for i := 0; i < n; i++ {
		r := mix64(base + uint64(i)*0x9e3779b97f4a7c15)
		switch p {
		case HitHeavy:
			out[i] = hitPool[r%uint64(len(hitPool))]
		case MissHeavy:
			// Unique seed per request: the high bits carry the run seed,
			// the low bits the index, so two runs with different -seed
			// values also miss each other's stored results.
			out[i] = fmt.Sprintf("/v1/routing?n=8&trials=2&seed=%d", (uint64(seed)&0x3ff)<<32|uint64(i)+1)
		case ZipfShapes:
			u := u01(r)
			shape := zipfShapes[len(zipfShapes)-1]
			for rank, c := range zipfCDF {
				if u < c {
					shape = zipfShapes[rank]
					break
				}
			}
			out[i] = fmt.Sprintf("/v1/bisection?network=bn&n=%d", shape)
		case Storm:
			// One fresh key per burst, repeated stormBurst times in a
			// row: fired faster than one solve completes, the repeats
			// coalesce onto the burst leader.
			burst := i / stormBurst
			out[i] = fmt.Sprintf("/v1/routing?n=16&trials=4&seed=%d", (uint64(seed)&0x3ff)<<32|uint64(burst)+1)
		default:
			out[i] = hitPool[0]
		}
	}
	return out
}
