// Package exact computes exact optima for the quantities the paper bounds:
// minimum bisections (BW, §1.2), minimum cuts bisecting a node subset
// (U-bisection width, §2.1), and minimum edge/node expansion over sets of a
// given size (EE and NE, §1.3).
//
// All solvers are branch-and-bound searches with admissible lower bounds.
// They are exponential in the worst case and intended for the small networks
// on which the experiments pin exact values (a few dozen nodes); larger
// networks are handled by package heuristic (upper bounds) and by the
// paper's constructions and certified lower bounds.
//
// The bisection and expansion solvers both have parallel variants that fan
// the assignments of a BFS prefix out over a worker pool sharing an atomic
// incumbent, and the expansion solvers additionally accept achievable
// upper-bound seeds (witness or greedy sets) and batch whole k-sweeps
// (ExpansionSurvey) over one pool.
package exact

import (
	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/solve"
)

const (
	unassigned = int8(-1)
	sideS      = int8(0)
	sideSbar   = int8(1)
)

// bbState is the shared machinery of the bisection branch-and-bound: nodes
// are assigned to sides in a fixed order, and the admissible bound
//
//	currentCut + Σ_{v unassigned} min(assignedNbrs_S(v), assignedNbrs_S̄(v))
//
// never overestimates the final capacity, because each unassigned node must
// eventually cut at least that many of its edges to already-assigned nodes,
// and those edge sets are disjoint across unassigned nodes.
type bbState struct {
	g       *graph.Graph
	order   []int32 // assignment order (BFS order keeps edges local)
	pos     []int32 // position of node in order
	assign  []int8
	cntS    []int32 // per node: assigned neighbors in S
	cntSbar []int32 // per node: assigned neighbors in S̄
	curCut  int
	minSum  int // Σ over unassigned of min(cntS, cntSbar)
	sizeS   int
	sizeT   int

	best     int
	bestSide []bool

	// Cooperative cancellation + telemetry: explored/pruned counts are
	// batched locally and flushed to mon every solve.TickStride nodes.
	// tickBudget counts DOWN from solve.TickStride so the per-node fast
	// path is one decrement and one branch; after a stop it stays pinned
	// at zero, steering every later tick into the latched slow path.
	mon        *solve.Monitor
	tickBudget int32
	prunedTick int32
	stopped    bool
}

// tickNode counts one explored search node and reports whether the search
// should stop. The monitor's atomic stop flag is only polled when the
// stride budget runs out (every solve.TickStride nodes); once seen,
// stopped latches so the remaining unwind is pure returns.
func (st *bbState) tickNode() bool {
	st.tickBudget--
	if st.tickBudget <= 0 {
		st.flushTicks()
		return st.stopped
	}
	return false
}

// flushTicks drains the local counters into the monitor and samples the
// stop flag. After a stop it only re-pins the budget: the drained totals
// were flushed when the stop was first seen and no nodes are explored
// past it.
func (st *bbState) flushTicks() {
	if st.stopped {
		st.tickBudget = 0
		return
	}
	e, p := int64(solve.TickStride-st.tickBudget), int64(st.prunedTick)
	st.tickBudget, st.prunedTick = solve.TickStride, 0
	if st.mon.Tick(e, p) {
		st.stopped = true
		st.tickBudget = 0
	}
}

func newBBState(g *graph.Graph) *bbState {
	st := &bbState{
		g:       g,
		assign:  make([]int8, g.N()),
		cntS:    make([]int32, g.N()),
		cntSbar: make([]int32, g.N()),
		pos:     make([]int32, g.N()),

		tickBudget: solve.TickStride,
	}
	for i := range st.assign {
		st.assign[i] = unassigned
	}
	st.order = bfsOrder(g)
	for i, v := range st.order {
		st.pos[v] = int32(i)
	}
	return st
}

// bfsOrder returns a BFS order of all nodes, sweeping components in node-id
// order.
func bfsOrder(g *graph.Graph) []int32 {
	if g.N() == 0 {
		return nil
	}
	return bfsOrderFrom(g, 0)
}

// bfsOrderFrom returns a BFS order starting at root, covering remaining
// components afterwards in node-id order.
func bfsOrderFrom(g *graph.Graph, root int) []int32 {
	n := g.N()
	order := make([]int32, 0, n)
	seen := make([]bool, n)
	seen[root] = true
	queue := []int32{int32(root)}
	for start := 0; ; start++ {
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			for _, w := range g.Neighbors(int(v)) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		for ; start < n && seen[start]; start++ {
		}
		if start == n {
			return order
		}
		seen[start] = true
		queue = append(queue[:0], int32(start))
	}
}

func minInt32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// place assigns node v to side s and updates the incremental quantities.
func (st *bbState) place(v int, s int8) {
	// v stops contributing to minSum.
	st.minSum -= int(minInt32(st.cntS[v], st.cntSbar[v]))
	st.assign[v] = s
	if s == sideS {
		st.sizeS++
		st.curCut += int(st.cntSbar[v])
	} else {
		st.sizeT++
		st.curCut += int(st.cntS[v])
	}
	for _, u := range st.g.Neighbors(v) {
		if st.assign[u] != unassigned {
			continue
		}
		old := minInt32(st.cntS[u], st.cntSbar[u])
		if s == sideS {
			st.cntS[u]++
		} else {
			st.cntSbar[u]++
		}
		st.minSum += int(minInt32(st.cntS[u], st.cntSbar[u]) - old)
	}
}

// unplace reverses place.
func (st *bbState) unplace(v int, s int8) {
	for _, u := range st.g.Neighbors(v) {
		if st.assign[u] != unassigned {
			continue
		}
		old := minInt32(st.cntS[u], st.cntSbar[u])
		if s == sideS {
			st.cntS[u]--
		} else {
			st.cntSbar[u]--
		}
		st.minSum += int(minInt32(st.cntS[u], st.cntSbar[u]) - old)
	}
	st.assign[v] = unassigned
	if s == sideS {
		st.sizeS--
		st.curCut -= int(st.cntSbar[v])
	} else {
		st.sizeT--
		st.curCut -= int(st.cntS[v])
	}
	st.minSum += int(minInt32(st.cntS[v], st.cntSbar[v]))
}

func (st *bbState) record() {
	side := make([]bool, st.g.N())
	for v, a := range st.assign {
		side[v] = a == sideS
	}
	st.best = st.curCut
	st.bestSide = side
	st.mon.SetIncumbent(int64(st.curCut))
}

// MinBisection returns a minimum bisection of g and its capacity BW(g). The
// initial incumbent is the balanced prefix/suffix split in BFS order, which
// is already a decent cut on layered networks.
func MinBisection(g *graph.Graph) (*cut.Cut, int) {
	return MinBisectionWithBound(g, initialBisectionBound(g))
}

// MinBisectionWithBound is MinBisection seeded with a known achievable upper
// bound (the capacity of some bisection, e.g. from package heuristic). A
// tighter seed prunes more. If bound is not achievable the function falls
// back to an unseeded search, so the result is the true optimum either way.
func MinBisectionWithBound(g *graph.Graph, bound int) (*cut.Cut, int) {
	c, w, _ := minBisectionSearch(g, bound, nil)
	return c, w
}

// minBisectionSearch is the serial engine behind MinBisection and
// SolveBisection: one bbState, one DFS, incumbent seeded from bound. The
// returned flag reports whether the search ran to completion; when the
// monitor stops it early the result is the best incumbent so far (or the
// BFS-prefix seed if none was found), which is a valid bisection but not
// a certified optimum.
func minBisectionSearch(g *graph.Graph, bound int, mon *solve.Monitor) (*cut.Cut, int, bool) {
	n := g.N()
	if n == 0 {
		return cut.FromSet(g, nil), 0, true
	}
	st := newBBState(g)
	st.mon = mon
	st.stopped = mon.Stopped()
	st.best = bound + 1
	half := (n + 1) / 2

	var dfs func(idx int)
	dfs = func(idx int) {
		if st.tickNode() {
			return
		}
		if st.curCut+st.minSum >= st.best {
			st.prunedTick++
			return
		}
		if idx == n {
			st.record()
			return
		}
		v := int(st.order[idx])
		// Try the side with fewer cut edges first for faster incumbents.
		first, second := sideS, sideSbar
		if st.cntSbar[v] < st.cntS[v] {
			first, second = sideSbar, sideS
		}
		for _, s := range []int8{first, second} {
			if s == sideS && st.sizeS >= half {
				continue
			}
			if s == sideSbar && st.sizeT >= half {
				continue
			}
			// Symmetry: the first node is fixed in S.
			if idx == 0 && s != sideS {
				continue
			}
			st.place(v, s)
			dfs(idx + 1)
			st.unplace(v, s)
		}
	}
	if !st.stopped {
		dfs(0)
	}
	st.flushTicks()

	if st.bestSide == nil {
		if st.stopped {
			// Cancelled before any bisection beat the seed: return the
			// always-feasible BFS-prefix cut, flagged non-exact.
			c := initialBisection(g)
			return c, c.Capacity(), false
		}
		// bound was below BW(g), so nothing was found: rerun with the
		// always-achievable internal seed.
		return minBisectionSearch(g, initialBisectionBound(g), mon)
	}
	return cut.New(g, st.bestSide), st.best, !st.stopped
}

// initialBisection returns the balanced BFS prefix cut used to seed the
// search.
func initialBisection(g *graph.Graph) *cut.Cut {
	order := bfsOrder(g)
	side := make([]bool, g.N())
	for i := 0; i < g.N()/2; i++ {
		side[order[i]] = true
	}
	return cut.New(g, side)
}

func initialBisectionBound(g *graph.Graph) int {
	return initialBisection(g).Capacity()
}

// MinSubsetBisection returns a cut of minimum capacity among those that
// bisect the node set u (the U-bisection width BW(g, U) of §2.1), together
// with that capacity. Nodes outside u are unconstrained.
func MinSubsetBisection(g *graph.Graph, u []int) (*cut.Cut, int) {
	c, w, _ := minSubsetBisectionSearch(g, u, nil)
	return c, w
}

// minSubsetBisectionSearch is MinSubsetBisection with cooperative
// cancellation; the flag reports completion (see minBisectionSearch).
func minSubsetBisectionSearch(g *graph.Graph, u []int, mon *solve.Monitor) (*cut.Cut, int, bool) {
	n := g.N()
	inU := make([]bool, n)
	for _, v := range u {
		inU[v] = true
	}
	st := newBBState(g)
	st.mon = mon
	st.stopped = mon.Stopped()

	// Seed: alternate u between sides in BFS order, everything else in S̄.
	seedSide := make([]bool, n)
	uSeen := 0
	for _, v := range st.order {
		if inU[v] {
			seedSide[v] = uSeen%2 == 0
			uSeen++
		}
	}
	seed := cut.New(g, seedSide)
	st.best = seed.Capacity() + 1

	uHalf := (len(u) + 1) / 2
	uInS, uInSbar := 0, 0
	firstU := -1
	for _, v := range st.order {
		if inU[int(v)] {
			firstU = int(v)
			break
		}
	}

	var dfs func(idx int)
	dfs = func(idx int) {
		if st.tickNode() {
			return
		}
		if st.curCut+st.minSum >= st.best {
			st.prunedTick++
			return
		}
		if idx == n {
			st.record()
			return
		}
		v := int(st.order[idx])
		first, second := sideS, sideSbar
		if st.cntSbar[v] < st.cntS[v] {
			first, second = sideSbar, sideS
		}
		for _, s := range []int8{first, second} {
			if inU[v] {
				if s == sideS && uInS >= uHalf {
					continue
				}
				if s == sideSbar && uInSbar >= uHalf {
					continue
				}
				// Symmetry: the first u node in order is fixed in S.
				if v == firstU && s != sideS {
					continue
				}
			}
			if inU[v] {
				if s == sideS {
					uInS++
				} else {
					uInSbar++
				}
			}
			st.place(v, s)
			dfs(idx + 1)
			st.unplace(v, s)
			if inU[v] {
				if s == sideS {
					uInS--
				} else {
					uInSbar--
				}
			}
		}
	}
	if !st.stopped {
		dfs(0)
	}
	st.flushTicks()

	if st.bestSide == nil {
		// Either the alternating seed is optimal (complete search) or the
		// search was cancelled before beating it; the seed is feasible
		// either way.
		return seed, seed.Capacity(), !st.stopped
	}
	return cut.New(g, st.bestSide), st.best, !st.stopped
}
