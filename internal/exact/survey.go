package exact

import (
	"context"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/solve"
)

// NotComputed marks a SurveyResult quantity that was not requested.
const NotComputed = -1

// SurveyResult holds the exact expansion values certified for one set
// size. Quantities not requested by the survey options are NotComputed.
// The *Exact flags report certification: a false flag means the survey
// was cancelled before that search completed, and the value/set pair is
// the best feasible incumbent found (an upper bound, not the optimum).
type SurveyResult struct {
	K     int
	EE    int   // exact min edge boundary over k-sets (NotComputed if skipped)
	EESet []int // a minimizing set for EE
	NE    int   // exact min neighbor count over k-sets (NotComputed if skipped)
	NESet []int // a minimizing set for NE

	EEExact bool // EE certified optimal (always true when uncancelled)
	NEExact bool // NE certified optimal
	// EEExplored/NEExplored and EEPruned/NEPruned count the
	// branch-and-bound nodes the corresponding search explored and the
	// subtrees its bound cut off (telemetry for tables and manifests).
	EEExplored int64
	NEExplored int64
	EEPruned   int64
	NEPruned   int64
}

// SurveyOptions tune ExpansionSurveyWithOptions.
type SurveyOptions struct {
	// EdgeOnly/NodeOnly restrict the survey to one quantity; with neither
	// (or both) set, both EE and NE are computed.
	EdgeOnly bool
	NodeOnly bool
	// EdgeSeed/NodeSeed return an achievable upper bound on EE(g,k) /
	// NE(g,k) used to seed that k's incumbent — typically a §4 witness
	// boundary or a greedy set from package heuristic. nil functions or
	// negative returns leave the search unseeded.
	EdgeSeed func(k int) int
	NodeSeed func(k int) int

	// Ctx cancels the survey: searches not yet complete return their
	// incumbents with the *Exact flags false. nil means never cancelled.
	Ctx context.Context
	// OnProgress, when non-nil, receives solve-wide Progress snapshots
	// every ProgressInterval (≤ 0: 1s).
	OnProgress       func(solve.Progress)
	ProgressInterval time.Duration
	// Label names the survey in progress lines and trace spans.
	Label string
	// Trace, when non-nil, receives the survey's span events.
	Trace *obs.Tracer
}

// ExpansionSurvey computes EE(g,k) and NE(g,k) exactly for every k in ks,
// batched: the BFS order is computed once, and one worker pool with
// per-worker scratch state drains the subproblems of all k jointly. root ≥ 0
// forces that node into every set (exact on vertex-transitive networks, an
// upper bound elsewhere); root < 0 searches unrestricted. workers ≤ 0 means
// GOMAXPROCS.
func ExpansionSurvey(g *graph.Graph, ks []int, root, workers int) []SurveyResult {
	return ExpansionSurveyWithOptions(g, ks, root, workers, SurveyOptions{})
}

// ExpansionSurveyWithOptions is ExpansionSurvey with quantity selection,
// incumbent seeding, cancellation, and progress reporting.
func ExpansionSurveyWithOptions(g *graph.Graph, ks []int, root, workers int, opts SurveyOptions) []SurveyResult {
	if root >= g.N() {
		panic("exact: root out of range")
	}
	if root < 0 {
		root = -1
	}
	doEdge := !opts.NodeOnly || opts.EdgeOnly
	doNode := !opts.EdgeOnly || opts.NodeOnly

	mon := solve.Start(solve.Options{
		Ctx:        opts.Ctx,
		OnProgress: opts.OnProgress,
		Interval:   opts.ProgressInterval,
		Name:       opts.Label,
		Trace:      opts.Trace,
	})
	defer mon.Close()

	seedFor := func(f func(int) int, k int) int {
		if f == nil {
			return noBound
		}
		if b := f(k); b >= 0 {
			return b
		}
		return noBound
	}

	results := make([]SurveyResult, len(ks))
	order := expansionOrder(g, root)
	var searches []*expSearch
	// target[i] points each search back at its result slot.
	var target []*SurveyResult
	for i, k := range ks {
		checkSetSize(g, k)
		r := &results[i]
		r.K, r.EE, r.NE = k, NotComputed, NotComputed
		if k == 0 || k == g.N() {
			if doEdge {
				r.EE, r.EESet, r.EEExact = 0, prefixSet(k), true
			}
			if doNode {
				r.NE, r.NESet, r.NEExact = 0, prefixSet(k), true
			}
			continue
		}
		if doEdge {
			s := &expSearch{k: k, edge: edgeExpansion}
			s.sb.mon = mon
			s.sb.best.Store(initialExpBest(g, edgeExpansion, seedFor(opts.EdgeSeed, k)))
			searches = append(searches, s)
			target = append(target, r)
		}
		if doNode {
			s := &expSearch{k: k, edge: nodeExpansion}
			s.sb.mon = mon
			s.sb.best.Store(initialExpBest(g, nodeExpansion, seedFor(opts.NodeSeed, k)))
			searches = append(searches, s)
			target = append(target, r)
		}
	}
	if len(searches) > 0 {
		if g.N() < 16 {
			// Tiny instances: the fan-out costs more than the search.
			st := newExpState(g, order)
			st.mon = mon
			for _, s := range searches {
				if mon.Stopped() {
					s.sb.incomplete.Store(true)
					continue
				}
				st.sb = &s.sb
				st.restartTicks()
				dfsExpansion(st, 0, s.k, s.edge, root >= 0, &s.sb)
				st.flushTicks()
				if st.stopped {
					s.sb.incomplete.Store(true)
				}
			}
		} else {
			runExpansionSearches(g, order, searches, root >= 0, workers, mon)
		}
	}
	for i, s := range searches {
		set, val, exact := s.sb.set, int(s.sb.best.Load()), !s.sb.incomplete.Load()
		if set == nil {
			if exact {
				// The seed undercut the optimum (caller error, but stay
				// exact): redo this one search unseeded.
				set, val, exact = minExpansionParallel(g, s.k, root, workers, s.edge, noBound, mon)
			} else {
				// Cancelled before any set was recorded: feasible
				// BFS-prefix fallback.
				set, val = fallbackExpansionSet(g, order, s.k, s.edge)
			}
		}
		explored, pruned := s.sb.explored.Load(), s.sb.pruned.Load()
		if s.edge {
			target[i].EE, target[i].EESet = val, set
			target[i].EEExact, target[i].EEExplored = exact, explored
			target[i].EEPruned = pruned
		} else {
			target[i].NE, target[i].NESet = val, set
			target[i].NEExact, target[i].NEExplored = exact, explored
			target[i].NEPruned = pruned
		}
	}
	return results
}
