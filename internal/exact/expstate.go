package exact

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/solve"
)

// expState is the incremental machinery shared by the serial and parallel
// expansion branch-and-bound searches (EE and NE, §1.3). Nodes are decided
// in a fixed order — into S or out of it — and boundary counters are kept
// current under place/unplace:
//
//	permCut   edges between an S-node and a decided-out node
//	inUnd     edges between an S-node and an undecided node
//	permNbrs  decided-out nodes adjacent to S
//	undWithIn undecided nodes adjacent to S
//
// At a completed leaf (|S| = k) every undecided node is implicitly out, so
// the edge boundary is permCut + inUnd and the node boundary is
// permNbrs + undWithIn — O(1) per leaf, where the previous engine rescanned
// all n nodes and their edges. The two quantities have disjoint hot paths:
// an edge search uses placeEdge/unplaceEdge and never touches inNbrs, a
// node search uses placeNode/unplaceNode and never touches the edge
// counters, so one state serves jobs of either kind back to back.
type expState struct {
	g      *graph.Graph
	order  []int32
	assign []int8
	inNbrs []int32 // per node: number of incident edges whose other end is in S
	maxDeg int

	chosen    int
	permCut   int
	inUnd     int
	permNbrs  int
	undWithIn int

	// Cooperative cancellation + telemetry (see bbState.tickNode): local
	// counters flushed every solve.TickStride explored nodes into mon
	// (the solve-wide totals) and sb (the per-search totals a survey
	// reports per row). sb is repointed per job when one state serves
	// several searches back to back. tickBudget counts DOWN from
	// solve.TickStride so the per-node fast path is one decrement and one
	// branch; after a stop it stays pinned at zero, steering every later
	// tick into the latched slow path.
	mon        *solve.Monitor
	sb         *sharedExpBound
	tickBudget int32
	prunedTick int32
	stopped    bool
}

// tickNode counts one explored node; the stop flag is polled only when the
// stride budget runs out and then latches.
func (st *expState) tickNode() bool {
	st.tickBudget--
	if st.tickBudget <= 0 {
		st.flushTicks()
		return st.stopped
	}
	return false
}

// flushTicks drains the local counters into the current search and the
// monitor, sampling the stop flag. After a stop it only re-pins the
// budget: the drained totals were flushed when the stop was first seen and
// no nodes are explored past it.
func (st *expState) flushTicks() {
	if st.stopped {
		st.tickBudget = 0
		return
	}
	e, p := int64(solve.TickStride-st.tickBudget), int64(st.prunedTick)
	st.tickBudget, st.prunedTick = solve.TickStride, 0
	if st.sb != nil && (e != 0 || p != 0) {
		st.sb.explored.Add(e)
		st.sb.pruned.Add(p)
	}
	if st.mon.Tick(e, p) {
		st.stopped = true
		st.tickBudget = 0
	}
}

// restartTicks re-arms a state for the next search after a stop (the batch
// engines reuse one state across jobs).
func (st *expState) restartTicks() {
	st.stopped = false
	st.tickBudget, st.prunedTick = solve.TickStride, 0
}

func newExpState(g *graph.Graph, order []int32) *expState {
	st := &expState{
		g:      g,
		order:  order,
		assign: make([]int8, g.N()),
		inNbrs: make([]int32, g.N()),
		maxDeg: g.MaxDegree(),

		tickBudget: solve.TickStride,
	}
	for i := range st.assign {
		st.assign[i] = unassigned
	}
	return st
}

func (st *expState) place(v int, s int8, edge bool) {
	if edge {
		st.placeEdge(v, s)
	} else {
		st.placeNode(v, s)
	}
}

func (st *expState) unplace(v int, edge bool) {
	if edge {
		st.unplaceEdge(v)
	} else {
		st.unplaceNode(v)
	}
}

// placeEdge decides the currently undecided node v for an edge-boundary
// search. Placements must be undone in LIFO order (see unplaceEdge): the
// counter updates assume the rest of the decided set is exactly as it was
// at place time.
func (st *expState) placeEdge(v int, s int8) {
	if s == sideS {
		for _, u := range st.g.Neighbors(v) {
			switch st.assign[u] {
			case unassigned:
				st.inUnd++
			case sideS:
				st.inUnd-- // the edge was S(u)–undecided(v); now internal
			default:
				st.permCut++
			}
		}
		st.chosen++
	} else {
		for _, u := range st.g.Neighbors(v) {
			if st.assign[u] == sideS {
				st.inUnd--
				st.permCut++
			}
		}
	}
	st.assign[v] = s
}

// unplaceEdge reverses the most recent placeEdge of v.
func (st *expState) unplaceEdge(v int) {
	s := st.assign[v]
	st.assign[v] = unassigned
	if s == sideS {
		st.chosen--
		for _, u := range st.g.Neighbors(v) {
			switch st.assign[u] {
			case unassigned:
				st.inUnd--
			case sideS:
				st.inUnd++
			default:
				st.permCut--
			}
		}
	} else {
		for _, u := range st.g.Neighbors(v) {
			if st.assign[u] == sideS {
				st.inUnd++
				st.permCut--
			}
		}
	}
}

// placeNode decides the currently undecided node v for a neighbor-set
// search. Out-placements are O(1): only v's own membership in the
// neighbor-set counters changes.
func (st *expState) placeNode(v int, s int8) {
	if s == sideS {
		if st.inNbrs[v] > 0 {
			st.undWithIn--
		}
		for _, u := range st.g.Neighbors(v) {
			st.inNbrs[u]++
			if st.inNbrs[u] == 1 {
				switch st.assign[u] {
				case unassigned:
					st.undWithIn++
				case sideSbar:
					st.permNbrs++
				}
			}
		}
		st.chosen++
	} else if st.inNbrs[v] > 0 {
		st.undWithIn--
		st.permNbrs++
	}
	st.assign[v] = s
}

// unplaceNode reverses the most recent placeNode of v.
func (st *expState) unplaceNode(v int) {
	s := st.assign[v]
	st.assign[v] = unassigned
	if s == sideS {
		st.chosen--
		for _, u := range st.g.Neighbors(v) {
			st.inNbrs[u]--
			if st.inNbrs[u] == 0 {
				switch st.assign[u] {
				case unassigned:
					st.undWithIn--
				case sideSbar:
					st.permNbrs--
				}
			}
		}
		if st.inNbrs[v] > 0 {
			st.undWithIn++
		}
	} else if st.inNbrs[v] > 0 {
		st.undWithIn++
		st.permNbrs--
	}
}

// edgeLB is an admissible lower bound on the final edge boundary: permCut
// never decreases, and each of the k−chosen future S-placements removes at
// most maxDeg edges from permCut+inUnd (out-placements only move edges
// from inUnd to permCut).
func (st *expState) edgeLB(k int) int {
	lb := st.permCut + st.inUnd - (k-st.chosen)*st.maxDeg
	if lb < st.permCut {
		lb = st.permCut
	}
	return lb
}

// nodeLB is the node-boundary analogue: placing a future node into S
// removes at most that node itself from permNbrs+undWithIn, and
// out-placements only move nodes from undWithIn to permNbrs.
func (st *expState) nodeLB(k int) int {
	lb := st.permNbrs + st.undWithIn - (k - st.chosen)
	if lb < st.permNbrs {
		lb = st.permNbrs
	}
	return lb
}

// sharedExpBound is the incumbent of one expansion search. best is read
// lock-free on every prune check; improvements take the mutex so the bound
// and the witness set stay consistent. The same structure serves the serial
// searches (where the atomics are uncontended) and the parallel workers.
// explored/pruned accumulate this search's telemetry (a survey reports
// them per row); incomplete is raised when any of the search's subtrees
// was abandoned on cancellation, i.e. the result is not a certified
// optimum.
type sharedExpBound struct {
	best atomic.Int64
	mu   sync.Mutex
	set  []int

	// onRecord, when non-nil, receives every locally recorded improvement
	// (value plus a private copy of the witness) under mu — the shard-level
	// cluster search hooks it to gossip incumbents to remote peers. Bounds
	// injected from outside via offer do not echo through it.
	onRecord func(val int, set []int)

	mon        *solve.Monitor
	explored   atomic.Int64
	pruned     atomic.Int64
	incomplete atomic.Bool
}

func (sb *sharedExpBound) record(val int, assign []int8) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if int64(val) >= sb.best.Load() {
		return // someone else got there first
	}
	sb.best.Store(int64(val))
	set := sb.set[:0]
	for v, a := range assign {
		if a == sideS {
			set = append(set, v)
		}
	}
	sb.set = set
	sb.mon.SetIncumbent(int64(val))
	if sb.onRecord != nil {
		cp := make([]int, len(set))
		copy(cp, set)
		sb.onRecord(val, cp)
	}
}

// offer injects an incumbent achieved elsewhere (a remote peer's witness):
// the bound tightens if it improves on the current best, and the witness
// replaces the local set so the search always holds a set achieving its
// bound. Unlike record it never fires onRecord — gossip must not echo.
func (sb *sharedExpBound) offer(val int, set []int) bool {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if int64(val) >= sb.best.Load() {
		return false
	}
	sb.best.Store(int64(val))
	sb.set = append(sb.set[:0], set...)
	sb.mon.SetIncumbent(int64(val))
	return true
}

// dfsEdgeExpansion explores all decisions for order[idx:] given the prefix
// already placed in st, recording edge-boundary improvements over sb.best.
// rootForced skips the exclude branch at idx 0 (the Containing variants).
func dfsEdgeExpansion(st *expState, idx, k int, rootForced bool, sb *sharedExpBound) {
	if st.tickNode() {
		return
	}
	if st.edgeLB(k) >= int(sb.best.Load()) {
		st.prunedTick++
		return
	}
	if st.chosen == k {
		sb.record(st.permCut+st.inUnd, st.assign)
		return
	}
	n := st.g.N()
	if idx == n || st.chosen+(n-idx) < k {
		return
	}
	v := int(st.order[idx])

	st.placeEdge(v, sideS)
	dfsEdgeExpansion(st, idx+1, k, rootForced, sb)
	st.unplaceEdge(v)

	if rootForced && idx == 0 {
		return
	}
	st.placeEdge(v, sideSbar)
	dfsEdgeExpansion(st, idx+1, k, rootForced, sb)
	st.unplaceEdge(v)
}

// dfsNodeExpansion is the neighbor-set analogue of dfsEdgeExpansion.
func dfsNodeExpansion(st *expState, idx, k int, rootForced bool, sb *sharedExpBound) {
	if st.tickNode() {
		return
	}
	if st.nodeLB(k) >= int(sb.best.Load()) {
		st.prunedTick++
		return
	}
	if st.chosen == k {
		sb.record(st.permNbrs+st.undWithIn, st.assign)
		return
	}
	n := st.g.N()
	if idx == n || st.chosen+(n-idx) < k {
		return
	}
	v := int(st.order[idx])

	st.placeNode(v, sideS)
	dfsNodeExpansion(st, idx+1, k, rootForced, sb)
	st.unplaceNode(v)

	if rootForced && idx == 0 {
		return
	}
	st.placeNode(v, sideSbar)
	dfsNodeExpansion(st, idx+1, k, rootForced, sb)
	st.unplaceNode(v)
}

func dfsExpansion(st *expState, idx, k int, edge, rootForced bool, sb *sharedExpBound) {
	if edge {
		dfsEdgeExpansion(st, idx, k, rootForced, sb)
	} else {
		dfsNodeExpansion(st, idx, k, rootForced, sb)
	}
}
