package exact

import (
	"repro/internal/graph"
)

// MinEdgeExpansion computes EE(g,k) = min_{|S|=k} C(S,S̄) (§1.3), returning
// a minimizing set and its edge boundary. It is a branch-and-bound over the
// nodes in BFS order: edges between a chosen in-node and a decided out-node
// are permanently cut, so the count of such edges is an admissible bound.
func MinEdgeExpansion(g *graph.Graph, k int) ([]int, int) {
	return minEdgeExpansion(g, k, -1)
}

// MinEdgeExpansionContaining computes min C(S,S̄) over sets of size k that
// contain the node root. On a vertex-transitive network (Wn, CCCn, the
// hypercube — every node looks alike under the Lemma 2.2/3.2 automorphisms)
// this equals EE(g,k) while shrinking the search by a factor of N; on other
// networks it is an upper bound on EE(g,k).
func MinEdgeExpansionContaining(g *graph.Graph, k, root int) ([]int, int) {
	if root < 0 || root >= g.N() {
		panic("exact: root out of range")
	}
	return minEdgeExpansion(g, k, root)
}

func minEdgeExpansion(g *graph.Graph, k, root int) ([]int, int) {
	if k < 0 || k > g.N() {
		panic("exact: expansion set size out of range")
	}
	if k == 0 || k == g.N() {
		return prefixSet(g, k), 0
	}
	n := g.N()
	var order []int32
	if root >= 0 {
		order = bfsOrderFrom(g, root)
	} else {
		order = bfsOrder(g)
	}

	assign := make([]int8, n) // -1 undecided, 0 in S, 1 out
	for i := range assign {
		assign[i] = unassigned
	}

	best := g.M() + 1
	var bestSet []int
	chosen := 0
	permCut := 0 // edges between in-nodes and out-nodes

	// suffixCount[i] = number of nodes in order[i:], used to prune when the
	// remaining nodes cannot complete the set.
	var dfs func(idx int)
	dfs = func(idx int) {
		if permCut >= best {
			return
		}
		remaining := n - idx
		if chosen+remaining < k {
			return
		}
		if chosen == k {
			// All undecided nodes are out: boundary = permCut + edges from
			// in-nodes to undecided nodes.
			total := permCut
			for v := 0; v < n; v++ {
				if assign[v] != sideS {
					continue
				}
				for _, u := range g.Neighbors(v) {
					if assign[u] == unassigned {
						total++
					}
				}
			}
			if total < best {
				best = total
				bestSet = bestSet[:0]
				for v := 0; v < n; v++ {
					if assign[v] == sideS {
						bestSet = append(bestSet, v)
					}
				}
			}
			return
		}
		if idx == n {
			return
		}
		v := int(order[idx])

		// Include v.
		delta := 0
		for _, u := range g.Neighbors(v) {
			if assign[u] == sideSbar {
				delta++
			}
		}
		assign[v] = sideS
		chosen++
		permCut += delta
		dfs(idx + 1)
		permCut -= delta
		chosen--

		if root >= 0 && idx == 0 {
			// The root is forced into S.
			assign[v] = unassigned
			return
		}

		// Exclude v.
		delta = 0
		for _, u := range g.Neighbors(v) {
			if assign[u] == sideS {
				delta++
			}
		}
		assign[v] = sideSbar
		permCut += delta
		dfs(idx + 1)
		permCut -= delta
		assign[v] = unassigned
	}
	dfs(0)

	out := make([]int, len(bestSet))
	copy(out, bestSet)
	return out, best
}

// MinNodeExpansion computes NE(g,k) = min_{|S|=k} |N(S)| (§1.3), returning a
// minimizing set and its neighbor count. Out-nodes adjacent to an in-node
// are permanently in N(S), giving the admissible bound.
func MinNodeExpansion(g *graph.Graph, k int) ([]int, int) {
	return minNodeExpansion(g, k, -1)
}

// MinNodeExpansionContaining is the root-forced analogue of
// MinEdgeExpansionContaining for NE(g,k): exact on vertex-transitive
// networks, an upper bound elsewhere.
func MinNodeExpansionContaining(g *graph.Graph, k, root int) ([]int, int) {
	if root < 0 || root >= g.N() {
		panic("exact: root out of range")
	}
	return minNodeExpansion(g, k, root)
}

func minNodeExpansion(g *graph.Graph, k, root int) ([]int, int) {
	if k < 0 || k > g.N() {
		panic("exact: expansion set size out of range")
	}
	if k == 0 || k == g.N() {
		return prefixSet(g, k), 0
	}
	n := g.N()
	var order []int32
	if root >= 0 {
		order = bfsOrderFrom(g, root)
	} else {
		order = bfsOrder(g)
	}

	assign := make([]int8, n)
	for i := range assign {
		assign[i] = unassigned
	}
	// inNbrs[v] = number of in-node neighbors of v; a decided-out node with
	// inNbrs > 0 is permanently a neighbor of S.
	inNbrs := make([]int32, n)

	best := n + 1
	var bestSet []int
	chosen := 0
	permNbrs := 0

	var dfs func(idx int)
	dfs = func(idx int) {
		if permNbrs >= best {
			return
		}
		remaining := n - idx
		if chosen+remaining < k {
			return
		}
		if chosen == k {
			// All undecided nodes become out: N(S) = permanently marked
			// out-nodes + undecided nodes with an in-neighbor.
			total := permNbrs
			for v := 0; v < n; v++ {
				if assign[v] == unassigned && inNbrs[v] > 0 {
					total++
				}
			}
			if total < best {
				best = total
				bestSet = bestSet[:0]
				for v := 0; v < n; v++ {
					if assign[v] == sideS {
						bestSet = append(bestSet, v)
					}
				}
			}
			return
		}
		if idx == n {
			return
		}
		v := int(order[idx])

		// Include v: decided-out neighbors with inNbrs == 0 become new
		// permanent neighbors.
		delta := 0
		for _, u := range g.Neighbors(v) {
			if assign[u] == sideSbar && inNbrs[u] == 0 {
				delta++
			}
			inNbrs[u]++
		}
		assign[v] = sideS
		chosen++
		permNbrs += delta
		dfs(idx + 1)
		permNbrs -= delta
		chosen--
		for _, u := range g.Neighbors(v) {
			inNbrs[u]--
		}

		if root >= 0 && idx == 0 {
			// The root is forced into S.
			assign[v] = unassigned
			return
		}

		// Exclude v: if it already has an in-neighbor it becomes a
		// permanent member of N(S).
		delta = 0
		if inNbrs[v] > 0 {
			delta = 1
		}
		assign[v] = sideSbar
		permNbrs += delta
		dfs(idx + 1)
		permNbrs -= delta
		assign[v] = unassigned
	}
	dfs(0)

	out := make([]int, len(bestSet))
	copy(out, bestSet)
	return out, best
}

// bfsOrderFrom returns a BFS order rooted at the given node, covering
// remaining components afterwards.
func bfsOrderFrom(g *graph.Graph, root int) []int32 {
	n := g.N()
	order := make([]int32, 0, n)
	seen := make([]bool, n)
	queue := []int32{int32(root)}
	seen[root] = true
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		order = append(order, v)
		for _, w := range g.Neighbors(int(v)) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			seen[v] = true
			queue = append(queue[:0], int32(v))
			for head := 0; head < len(queue); head++ {
				x := queue[head]
				order = append(order, x)
				for _, w := range g.Neighbors(int(x)) {
					if !seen[w] {
						seen[w] = true
						queue = append(queue, w)
					}
				}
			}
		}
	}
	return order
}

// prefixSet returns the first k node ids, used for the trivial k ∈ {0, N}
// cases where the boundary is empty.
func prefixSet(g *graph.Graph, k int) []int {
	s := make([]int, k)
	for i := range s {
		s[i] = i
	}
	return s
}
