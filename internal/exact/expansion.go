package exact

import (
	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/solve"
)

// MinEdgeExpansion computes EE(g,k) = min_{|S|=k} C(S,S̄) (§1.3), returning
// a minimizing set and its edge boundary. It is a branch-and-bound over the
// nodes in BFS order with incrementally maintained boundary counters (see
// expState), so completed sets are evaluated in O(1).
func MinEdgeExpansion(g *graph.Graph, k int) ([]int, int) {
	set, val, _ := minExpansion(g, k, -1, edgeExpansion, noBound, nil)
	return set, val
}

// MinEdgeExpansionWithBound is MinEdgeExpansion seeded with a known
// achievable upper bound on EE(g,k) — the measured boundary of some k-set,
// e.g. a §4 witness or a greedy set from package heuristic. A tight seed
// prunes from the first branch instead of discovering an incumbent the slow
// way. If bound is below the true optimum the search falls back to an
// unseeded run, so the result is exact either way.
func MinEdgeExpansionWithBound(g *graph.Graph, k, bound int) ([]int, int) {
	set, val, _ := minExpansion(g, k, -1, edgeExpansion, bound, nil)
	return set, val
}

// MinEdgeExpansionContaining computes min C(S,S̄) over sets of size k that
// contain the node root. On a vertex-transitive network (Wn, CCCn, the
// hypercube — every node looks alike under the Lemma 2.2/3.2 automorphisms)
// this equals EE(g,k) while shrinking the search by a factor of N; on other
// networks it is an upper bound on EE(g,k).
func MinEdgeExpansionContaining(g *graph.Graph, k, root int) ([]int, int) {
	checkRoot(g, root)
	set, val, _ := minExpansion(g, k, root, edgeExpansion, noBound, nil)
	return set, val
}

// MinNodeExpansion computes NE(g,k) = min_{|S|=k} |N(S)| (§1.3), returning a
// minimizing set and its neighbor count.
func MinNodeExpansion(g *graph.Graph, k int) ([]int, int) {
	set, val, _ := minExpansion(g, k, -1, nodeExpansion, noBound, nil)
	return set, val
}

// MinNodeExpansionWithBound is the NE analogue of
// MinEdgeExpansionWithBound.
func MinNodeExpansionWithBound(g *graph.Graph, k, bound int) ([]int, int) {
	set, val, _ := minExpansion(g, k, -1, nodeExpansion, bound, nil)
	return set, val
}

// MinNodeExpansionContaining is the root-forced analogue of
// MinEdgeExpansionContaining for NE(g,k): exact on vertex-transitive
// networks, an upper bound elsewhere.
func MinNodeExpansionContaining(g *graph.Graph, k, root int) ([]int, int) {
	checkRoot(g, root)
	set, val, _ := minExpansion(g, k, root, nodeExpansion, noBound, nil)
	return set, val
}

const (
	edgeExpansion = true
	nodeExpansion = false

	// noBound requests an unseeded search; any non-negative bound is taken
	// as an achievable boundary value.
	noBound = -1
)

func checkRoot(g *graph.Graph, root int) {
	if root < 0 || root >= g.N() {
		panic("exact: root out of range")
	}
}

func checkSetSize(g *graph.Graph, k int) {
	if k < 0 || k > g.N() {
		panic("exact: expansion set size out of range")
	}
}

// initialExpBest is the starting incumbent: one past the seed bound when
// one is given, otherwise one past the trivial maximum of the quantity.
func initialExpBest(g *graph.Graph, edge bool, bound int) int64 {
	if bound >= 0 {
		return int64(bound) + 1
	}
	if edge {
		return int64(g.M()) + 1
	}
	return int64(g.N()) + 1
}

// expansionOrder is the decision order shared by the serial and parallel
// searches: BFS from the forced root when there is one (so the exclude
// branch cut at depth 0 applies to it), plain BFS otherwise.
func expansionOrder(g *graph.Graph, root int) []int32 {
	if root >= 0 {
		return bfsOrderFrom(g, root)
	}
	return bfsOrder(g)
}

// minExpansion is the serial engine behind the exported Min*Expansion
// functions: one expState, one DFS, incumbent seeded from bound. The flag
// reports whether the search ran to completion; a stopped search returns
// its best incumbent (or the BFS-prefix fallback), which is a feasible
// k-set but not a certified optimum.
func minExpansion(g *graph.Graph, k, root int, edge bool, bound int, mon *solve.Monitor) ([]int, int, bool) {
	checkSetSize(g, k)
	if k == 0 || k == g.N() {
		return prefixSet(k), 0, true
	}
	order := expansionOrder(g, root)
	st := newExpState(g, order)
	st.mon = mon
	st.stopped = mon.Stopped()
	sb := &sharedExpBound{mon: mon}
	st.sb = sb
	sb.best.Store(initialExpBest(g, edge, bound))
	if !st.stopped {
		dfsExpansion(st, 0, k, edge, root >= 0, sb)
	}
	st.flushTicks()
	if sb.set == nil {
		if st.stopped {
			set, val := fallbackExpansionSet(g, order, k, edge)
			return set, val, false
		}
		// bound was below the optimum, so nothing was found: rerun without
		// the seed. The result is the true optimum either way.
		return minExpansion(g, k, root, edge, noBound, mon)
	}
	out := make([]int, len(sb.set))
	copy(out, sb.set)
	return out, int(sb.best.Load()), !st.stopped
}

// fallbackExpansionSet is the feasible incumbent returned when a search is
// cancelled before recording any set: the first k nodes of the decision
// order (a BFS-connected prefix, so already a reasonable set) with its
// measured boundary.
func fallbackExpansionSet(g *graph.Graph, order []int32, k int, edge bool) ([]int, int) {
	set := make([]int, k)
	for i := range set {
		set[i] = int(order[i])
	}
	if edge {
		return set, cut.EdgeBoundary(g, set)
	}
	return set, len(cut.NodeBoundary(g, set))
}

// prefixSet returns the first k node ids, used for the trivial k ∈ {0, N}
// cases where the boundary is empty.
func prefixSet(k int) []int {
	s := make([]int, k)
	for i := range s {
		s[i] = i
	}
	return s
}
