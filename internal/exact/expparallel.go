package exact

import (
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/solve"
)

// The parallel expansion engine mirrors MinBisectionParallel: the decisions
// on the first prefixDepth nodes of the BFS order become independent
// subproblems distributed over a worker pool, all pruning against a shared
// atomic incumbent. Each worker owns one expState, reused across every
// subproblem (and, in ExpansionSurvey, across every k) — a prefix is placed,
// searched, and unplaced, so no per-job allocation or re-initialisation
// happens on the hot path.

// MinEdgeExpansionParallel computes EE(g,k) exactly on workers goroutines
// (workers ≤ 0 means GOMAXPROCS). The optimum always equals
// MinEdgeExpansion's; the witness set may differ when several are optimal.
func MinEdgeExpansionParallel(g *graph.Graph, k, workers int) ([]int, int) {
	set, val, _ := minExpansionParallel(g, k, -1, workers, edgeExpansion, noBound, nil)
	return set, val
}

// MinEdgeExpansionParallelWithBound seeds the parallel search with a known
// achievable upper bound on EE(g,k) (a witness or greedy boundary), so
// pruning starts tight instead of from M+1. An unachievable bound falls
// back to an unseeded run; the result is exact either way.
func MinEdgeExpansionParallelWithBound(g *graph.Graph, k, workers, bound int) ([]int, int) {
	set, val, _ := minExpansionParallel(g, k, -1, workers, edgeExpansion, bound, nil)
	return set, val
}

// MinEdgeExpansionParallelContaining is the parallel form of
// MinEdgeExpansionContaining: exact on vertex-transitive networks, an upper
// bound elsewhere.
func MinEdgeExpansionParallelContaining(g *graph.Graph, k, root, workers int) ([]int, int) {
	checkRoot(g, root)
	set, val, _ := minExpansionParallel(g, k, root, workers, edgeExpansion, noBound, nil)
	return set, val
}

// MinNodeExpansionParallel computes NE(g,k) exactly on workers goroutines.
func MinNodeExpansionParallel(g *graph.Graph, k, workers int) ([]int, int) {
	set, val, _ := minExpansionParallel(g, k, -1, workers, nodeExpansion, noBound, nil)
	return set, val
}

// MinNodeExpansionParallelWithBound is the NE analogue of
// MinEdgeExpansionParallelWithBound.
func MinNodeExpansionParallelWithBound(g *graph.Graph, k, workers, bound int) ([]int, int) {
	set, val, _ := minExpansionParallel(g, k, -1, workers, nodeExpansion, bound, nil)
	return set, val
}

// MinNodeExpansionParallelContaining is the parallel form of
// MinNodeExpansionContaining.
func MinNodeExpansionParallelContaining(g *graph.Graph, k, root, workers int) ([]int, int) {
	checkRoot(g, root)
	set, val, _ := minExpansionParallel(g, k, root, workers, nodeExpansion, noBound, nil)
	return set, val
}

// expSearch is one (quantity, k) search sharing the worker pool with the
// other searches of a survey. rootForced and the BFS order are common to
// the whole pool.
type expSearch struct {
	k    int
	edge bool
	sb   sharedExpBound
}

// expJob is one prefix subproblem of one search.
type expJob struct {
	search *expSearch
	prefix []int8
}

func minExpansionParallel(g *graph.Graph, k, root, workers int, edge bool, bound int, mon *solve.Monitor) ([]int, int, bool) {
	checkSetSize(g, k)
	if k == 0 || k == g.N() {
		return prefixSet(k), 0, true
	}
	if g.N() < 16 {
		return minExpansion(g, k, root, edge, bound, mon) // not worth the fan-out
	}
	s := &expSearch{k: k, edge: edge}
	s.sb.mon = mon
	s.sb.best.Store(initialExpBest(g, edge, bound))
	order := expansionOrder(g, root)
	runExpansionSearches(g, order, []*expSearch{s}, root >= 0, workers, mon)
	if s.sb.set == nil {
		if s.sb.incomplete.Load() {
			set, val := fallbackExpansionSet(g, order, k, edge)
			return set, val, false
		}
		// bound was below the optimum: rerun unseeded.
		return minExpansionParallel(g, k, root, workers, edge, noBound, mon)
	}
	return s.sb.set, int(s.sb.best.Load()), !s.sb.incomplete.Load()
}

// runExpansionSearches drains every prefix subproblem of every search
// through one pool of workers. Searches are independent (each has its own
// incumbent), so all jobs are enqueued at once and the pool load-balances
// across them. On cancellation, jobs not run to completion mark their
// search incomplete; the pool always drains, so the call returns promptly
// with whatever incumbents were found.
func runExpansionSearches(g *graph.Graph, order []int32, searches []*expSearch, rootForced bool, workers int, mon *solve.Monitor) {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Depth 8 gives up to 256 subproblems per search — plenty of slack for
	// load balancing without flooding memory with prefixes.
	prefixDepth := 8
	if prefixDepth > n/2 {
		prefixDepth = n / 2
	}

	var jobs []expJob
	for _, s := range searches {
		for _, p := range expansionPrefixes(n, prefixDepth, s.k, rootForced) {
			jobs = append(jobs, expJob{search: s, prefix: p})
		}
	}

	ch := make(chan expJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newExpState(g, order)
			st.mon = mon
			for job := range ch {
				s := job.search
				if mon.Stopped() {
					s.sb.incomplete.Store(true)
					continue
				}
				st.sb = &s.sb
				st.restartTicks()
				for i, side := range job.prefix {
					st.place(int(order[i]), side, s.edge)
				}
				// dfsExpansion re-checks the bound first thing, so prefixes
				// that are already prunable cost only the placements.
				dfsExpansion(st, len(job.prefix), s.k, s.edge, rootForced, &s.sb)
				for i := len(job.prefix) - 1; i >= 0; i-- {
					st.unplace(int(order[i]), s.edge)
				}
				st.flushTicks()
				if st.stopped {
					s.sb.incomplete.Store(true)
				}
			}
		}()
	}
	for _, j := range jobs {
		if mon.Stopped() {
			j.search.sb.incomplete.Store(true)
			continue
		}
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// expansionPrefixes enumerates the decisions for the first depth nodes of
// the order that can still complete to a k-set: at most k inclusions, and
// enough nodes left after each exclusion. rootForced pins the first node
// into S.
func expansionPrefixes(n, depth, k int, rootForced bool) [][]int8 {
	var out [][]int8
	prefix := make([]int8, depth)
	var gen func(idx, inS int)
	gen = func(idx, inS int) {
		if idx == depth {
			cp := make([]int8, depth)
			copy(cp, prefix)
			out = append(out, cp)
			return
		}
		if inS < k {
			prefix[idx] = sideS
			gen(idx+1, inS+1)
		}
		if !(rootForced && idx == 0) && inS+(n-idx-1) >= k {
			prefix[idx] = sideSbar
			gen(idx+1, inS)
		}
	}
	gen(0, 0)
	return out
}
