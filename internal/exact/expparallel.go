package exact

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// The parallel expansion engine mirrors MinBisectionParallel: the decisions
// on the first prefixDepth nodes of the BFS order become independent
// subproblems distributed over a worker pool, all pruning against a shared
// atomic incumbent. Each worker owns one expState, reused across every
// subproblem (and, in ExpansionSurvey, across every k) — a prefix is placed,
// searched, and unplaced, so no per-job allocation or re-initialisation
// happens on the hot path.

// MinEdgeExpansionParallel computes EE(g,k) exactly on workers goroutines
// (workers ≤ 0 means GOMAXPROCS). The optimum always equals
// MinEdgeExpansion's; the witness set may differ when several are optimal.
func MinEdgeExpansionParallel(g *graph.Graph, k, workers int) ([]int, int) {
	return minExpansionParallel(g, k, -1, workers, edgeExpansion, noBound)
}

// MinEdgeExpansionParallelWithBound seeds the parallel search with a known
// achievable upper bound on EE(g,k) (a witness or greedy boundary), so
// pruning starts tight instead of from M+1. An unachievable bound falls
// back to an unseeded run; the result is exact either way.
func MinEdgeExpansionParallelWithBound(g *graph.Graph, k, workers, bound int) ([]int, int) {
	return minExpansionParallel(g, k, -1, workers, edgeExpansion, bound)
}

// MinEdgeExpansionParallelContaining is the parallel form of
// MinEdgeExpansionContaining: exact on vertex-transitive networks, an upper
// bound elsewhere.
func MinEdgeExpansionParallelContaining(g *graph.Graph, k, root, workers int) ([]int, int) {
	checkRoot(g, root)
	return minExpansionParallel(g, k, root, workers, edgeExpansion, noBound)
}

// MinNodeExpansionParallel computes NE(g,k) exactly on workers goroutines.
func MinNodeExpansionParallel(g *graph.Graph, k, workers int) ([]int, int) {
	return minExpansionParallel(g, k, -1, workers, nodeExpansion, noBound)
}

// MinNodeExpansionParallelWithBound is the NE analogue of
// MinEdgeExpansionParallelWithBound.
func MinNodeExpansionParallelWithBound(g *graph.Graph, k, workers, bound int) ([]int, int) {
	return minExpansionParallel(g, k, -1, workers, nodeExpansion, bound)
}

// MinNodeExpansionParallelContaining is the parallel form of
// MinNodeExpansionContaining.
func MinNodeExpansionParallelContaining(g *graph.Graph, k, root, workers int) ([]int, int) {
	checkRoot(g, root)
	return minExpansionParallel(g, k, root, workers, nodeExpansion, noBound)
}

// expSearch is one (quantity, k) search sharing the worker pool with the
// other searches of a survey. rootForced and the BFS order are common to
// the whole pool.
type expSearch struct {
	k    int
	edge bool
	sb   sharedExpBound
}

// expJob is one prefix subproblem of one search.
type expJob struct {
	search *expSearch
	prefix []int8
}

func minExpansionParallel(g *graph.Graph, k, root, workers int, edge bool, bound int) ([]int, int) {
	checkSetSize(g, k)
	if k == 0 || k == g.N() {
		return prefixSet(k), 0
	}
	if g.N() < 16 {
		return minExpansion(g, k, root, edge, bound) // not worth the fan-out
	}
	s := &expSearch{k: k, edge: edge}
	s.sb.best.Store(initialExpBest(g, edge, bound))
	runExpansionSearches(g, expansionOrder(g, root), []*expSearch{s}, root >= 0, workers)
	if s.sb.set == nil {
		// bound was below the optimum: rerun unseeded.
		return minExpansionParallel(g, k, root, workers, edge, noBound)
	}
	return s.sb.set, int(s.sb.best.Load())
}

// runExpansionSearches drains every prefix subproblem of every search
// through one pool of workers. Searches are independent (each has its own
// incumbent), so all jobs are enqueued at once and the pool load-balances
// across them.
func runExpansionSearches(g *graph.Graph, order []int32, searches []*expSearch, rootForced bool, workers int) {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Depth 8 gives up to 256 subproblems per search — plenty of slack for
	// load balancing without flooding memory with prefixes.
	prefixDepth := 8
	if prefixDepth > n/2 {
		prefixDepth = n / 2
	}

	var jobs []expJob
	for _, s := range searches {
		for _, p := range expansionPrefixes(n, prefixDepth, s.k, rootForced) {
			jobs = append(jobs, expJob{search: s, prefix: p})
		}
	}

	ch := make(chan expJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newExpState(g, order)
			for job := range ch {
				s := job.search
				for i, side := range job.prefix {
					st.place(int(order[i]), side, s.edge)
				}
				// dfsExpansion re-checks the bound first thing, so prefixes
				// that are already prunable cost only the placements.
				dfsExpansion(st, len(job.prefix), s.k, s.edge, rootForced, &s.sb)
				for i := len(job.prefix) - 1; i >= 0; i-- {
					st.unplace(int(order[i]), s.edge)
				}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// expansionPrefixes enumerates the decisions for the first depth nodes of
// the order that can still complete to a k-set: at most k inclusions, and
// enough nodes left after each exclusion. rootForced pins the first node
// into S.
func expansionPrefixes(n, depth, k int, rootForced bool) [][]int8 {
	var out [][]int8
	prefix := make([]int8, depth)
	var gen func(idx, inS int)
	gen = func(idx, inS int) {
		if idx == depth {
			cp := make([]int8, depth)
			copy(cp, prefix)
			out = append(out, cp)
			return
		}
		if inS < k {
			prefix[idx] = sideS
			gen(idx+1, inS+1)
		}
		if !(rootForced && idx == 0) && inS+(n-idx-1) >= k {
			prefix[idx] = sideSbar
			gen(idx+1, inS)
		}
	}
	gen(0, 0)
	return out
}

// NotComputed marks a SurveyResult quantity that was not requested.
const NotComputed = -1

// SurveyResult holds the exact expansion values certified for one set
// size. Quantities not requested by the survey options are NotComputed.
type SurveyResult struct {
	K     int
	EE    int   // exact min edge boundary over k-sets (NotComputed if skipped)
	EESet []int // a minimizing set for EE
	NE    int   // exact min neighbor count over k-sets (NotComputed if skipped)
	NESet []int // a minimizing set for NE
}

// SurveyOptions tune ExpansionSurveyWithOptions.
type SurveyOptions struct {
	// EdgeOnly/NodeOnly restrict the survey to one quantity; with neither
	// (or both) set, both EE and NE are computed.
	EdgeOnly bool
	NodeOnly bool
	// EdgeSeed/NodeSeed return an achievable upper bound on EE(g,k) /
	// NE(g,k) used to seed that k's incumbent — typically a §4 witness
	// boundary or a greedy set from package heuristic. nil functions or
	// negative returns leave the search unseeded.
	EdgeSeed func(k int) int
	NodeSeed func(k int) int
}

// ExpansionSurvey computes EE(g,k) and NE(g,k) exactly for every k in ks,
// batched: the BFS order is computed once, and one worker pool with
// per-worker scratch state drains the subproblems of all k jointly. root ≥ 0
// forces that node into every set (exact on vertex-transitive networks, an
// upper bound elsewhere); root < 0 searches unrestricted. workers ≤ 0 means
// GOMAXPROCS.
func ExpansionSurvey(g *graph.Graph, ks []int, root, workers int) []SurveyResult {
	return ExpansionSurveyWithOptions(g, ks, root, workers, SurveyOptions{})
}

// ExpansionSurveyWithOptions is ExpansionSurvey with quantity selection and
// incumbent seeding.
func ExpansionSurveyWithOptions(g *graph.Graph, ks []int, root, workers int, opts SurveyOptions) []SurveyResult {
	if root >= g.N() {
		panic("exact: root out of range")
	}
	if root < 0 {
		root = -1
	}
	doEdge := !opts.NodeOnly || opts.EdgeOnly
	doNode := !opts.EdgeOnly || opts.NodeOnly

	seedFor := func(f func(int) int, k int) int {
		if f == nil {
			return noBound
		}
		if b := f(k); b >= 0 {
			return b
		}
		return noBound
	}

	results := make([]SurveyResult, len(ks))
	order := expansionOrder(g, root)
	var searches []*expSearch
	// target[i] points each search back at its result slot.
	var target []*SurveyResult
	for i, k := range ks {
		checkSetSize(g, k)
		r := &results[i]
		r.K, r.EE, r.NE = k, NotComputed, NotComputed
		if k == 0 || k == g.N() {
			if doEdge {
				r.EE, r.EESet = 0, prefixSet(k)
			}
			if doNode {
				r.NE, r.NESet = 0, prefixSet(k)
			}
			continue
		}
		if doEdge {
			s := &expSearch{k: k, edge: edgeExpansion}
			s.sb.best.Store(initialExpBest(g, edgeExpansion, seedFor(opts.EdgeSeed, k)))
			searches = append(searches, s)
			target = append(target, r)
		}
		if doNode {
			s := &expSearch{k: k, edge: nodeExpansion}
			s.sb.best.Store(initialExpBest(g, nodeExpansion, seedFor(opts.NodeSeed, k)))
			searches = append(searches, s)
			target = append(target, r)
		}
	}
	if len(searches) > 0 {
		if g.N() < 16 {
			// Tiny instances: the fan-out costs more than the search.
			st := newExpState(g, order)
			sb := &sharedExpBound{}
			for _, s := range searches {
				sb.best.Store(s.sb.best.Load())
				sb.set = nil
				dfsExpansion(st, 0, s.k, s.edge, root >= 0, sb)
				s.sb.best.Store(sb.best.Load())
				s.sb.set = append([]int(nil), sb.set...)
				if sb.set == nil {
					s.sb.set = nil
				}
			}
		} else {
			runExpansionSearches(g, order, searches, root >= 0, workers)
		}
	}
	for i, s := range searches {
		set, val := s.sb.set, int(s.sb.best.Load())
		if set == nil {
			// The seed undercut the optimum (caller error, but stay exact):
			// redo this one search unseeded.
			set, val = minExpansionParallel(g, s.k, root, workers, s.edge, noBound)
		}
		if s.edge {
			target[i].EE, target[i].EESet = val, set
		} else {
			target[i].NE, target[i].NESet = val, set
		}
	}
	return results
}
