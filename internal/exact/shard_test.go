package exact

import (
	"sync"
	"testing"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/solve"
	"repro/internal/topology"
)

// runAllShards runs every shard of (g, spec) through the shard API and
// returns the final incumbent.
func runAllShards(t *testing.T, g *graph.Graph, spec ExpansionShardSpec, batch int) (int, []int) {
	t.Helper()
	count := ExpansionShardCount(g, spec)
	if count < 1 {
		t.Fatalf("ExpansionShardCount = %d, want ≥ 1", count)
	}
	si := NewShardIncumbent(g, spec, nil)
	for lo := 0; lo < count; lo += batch {
		hi := lo + batch
		if hi > count {
			hi = count
		}
		ids := make([]int, 0, hi-lo)
		for id := lo; id < hi; id++ {
			ids = append(ids, id)
		}
		out := SearchExpansionShards(g, spec, ids, 2, si, nil)
		if !out.Complete {
			t.Fatalf("shards %v incomplete without cancellation", ids)
		}
	}
	return si.Best()
}

// The union of all shards must certify exactly what the single-process
// parallel engine certifies — same value, and a witness achieving it.
func TestShardUnionMatchesParallelEngine(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
		edge bool
		root int
	}{
		{"EE-B8-k4", 4, true, -1},
		{"EE-B8-k7", 7, true, -1},
		{"NE-B8-k5", 5, false, -1},
		{"EE-B8-k6-rooted", 6, true, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := topology.NewButterfly(8).Graph
			spec := ExpansionShardSpec{K: tc.k, Edge: tc.edge, Root: tc.root}
			val, set := runAllShards(t, g, spec, 3)

			var wantSet []int
			var want int
			switch {
			case tc.root >= 0 && tc.edge:
				wantSet, want = MinEdgeExpansionParallelContaining(g, tc.k, tc.root, 2)
			case tc.edge:
				wantSet, want = MinEdgeExpansionParallel(g, tc.k, 2)
			default:
				wantSet, want = MinNodeExpansionParallel(g, tc.k, 2)
			}
			if val != want {
				t.Fatalf("shard union found %d, engine found %d", val, want)
			}
			if len(set) != tc.k {
				t.Fatalf("witness has %d nodes, want %d", len(set), tc.k)
			}
			if tc.root >= 0 {
				found := false
				for _, v := range set {
					if v == tc.root {
						found = true
					}
				}
				if !found {
					t.Fatalf("witness %v misses forced root %d", set, tc.root)
				}
			}
			var got int
			if tc.edge {
				got = cut.EdgeBoundary(g, set)
			} else {
				got = len(cut.NodeBoundary(g, set))
			}
			if got != val {
				t.Fatalf("witness %v achieves %d, incumbent claims %d", set, got, val)
			}
			_ = wantSet
		})
	}
}

// A tight bound offered from outside before the search starts must not
// change the certified optimum — remote pruning is sound.
func TestShardSearchWithOfferedBound(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	spec := ExpansionShardSpec{K: 6, Edge: true, Root: -1}

	wantSet, want := MinEdgeExpansionParallel(g, 6, 2)

	si := NewShardIncumbent(g, spec, nil)
	// Seed the exact optimum with its witness, as a remote peer would.
	if !si.Offer(want, wantSet) {
		t.Fatalf("Offer(%d) rejected against fresh incumbent", want)
	}
	count := ExpansionShardCount(g, spec)
	ids := make([]int, count)
	for i := range ids {
		ids[i] = i
	}
	out := SearchExpansionShards(g, spec, ids, 2, si, nil)
	if !out.Complete {
		t.Fatal("search incomplete without cancellation")
	}
	val, set := si.Best()
	if val != want {
		t.Fatalf("seeded search ended at %d, want %d", val, want)
	}
	if got := cut.EdgeBoundary(g, set); got != want {
		t.Fatalf("final witness achieves %d, want %d", got, want)
	}
	if out.Explored >= 0 && out.Pruned < 0 {
		t.Fatalf("telemetry went negative: %+v", out)
	}
}

// Offer must be monotone: stale and duplicate values never loosen the
// incumbent, improvements always tighten it, concurrently.
func TestShardIncumbentOfferMonotone(t *testing.T) {
	g := topology.NewButterfly(4).Graph
	si := NewShardIncumbent(g, ExpansionShardSpec{K: 3, Edge: true, Root: -1}, nil)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := 3 + (seed+i*7)%10 // values 3..12, replayed out of order
				si.Offer(v, []int{0, 1, v})
			}
		}(w)
	}
	wg.Wait()
	val, set := si.Best()
	if val != 3 {
		t.Fatalf("incumbent = %d after replayed offers, want 3", val)
	}
	if len(set) != 3 || set[2] != 3 {
		t.Fatalf("witness %v does not match best offer", set)
	}
	if si.Offer(3, []int{9, 9, 9}) {
		t.Fatal("Offer accepted a non-improving duplicate")
	}
}

// Cancellation mid-batch must surface as Complete=false, never as a
// silently partial "certificate".
func TestShardSearchCancellation(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	spec := ExpansionShardSpec{K: 8, Edge: true, Root: -1}
	si := NewShardIncumbent(g, spec, nil)
	mon := solve.Start(solve.Options{})
	defer mon.Close()
	mon.Stop()

	count := ExpansionShardCount(g, spec)
	ids := make([]int, count)
	for i := range ids {
		ids[i] = i
	}
	out := SearchExpansionShards(g, spec, ids, 2, si, mon)
	if out.Complete {
		t.Fatal("stopped search reported Complete=true")
	}
}

// Shard ids outside the enumeration mean the parties disagree about the
// search geometry; that must fail loudly.
func TestShardSearchRejectsBadIDs(t *testing.T) {
	g := topology.NewButterfly(4).Graph
	spec := ExpansionShardSpec{K: 3, Edge: true, Root: -1}
	si := NewShardIncumbent(g, spec, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range shard id did not panic")
		}
	}()
	SearchExpansionShards(g, spec, []int{ExpansionShardCount(g, spec)}, 1, si, nil)
}

// The local-improvement hook must fire with private witness copies and
// never echo offered bounds.
func TestShardIncumbentOnImprove(t *testing.T) {
	g := topology.NewButterfly(8).Graph
	spec := ExpansionShardSpec{K: 4, Edge: true, Root: -1}

	var mu sync.Mutex
	var gossip [][]int
	si := NewShardIncumbent(g, spec, func(val int, set []int) {
		mu.Lock()
		defer mu.Unlock()
		gossip = append(gossip, append([]int{val}, set...))
	})
	count := ExpansionShardCount(g, spec)
	ids := make([]int, count)
	for i := range ids {
		ids[i] = i
	}
	SearchExpansionShards(g, spec, ids, 2, si, nil)

	mu.Lock()
	defer mu.Unlock()
	if len(gossip) == 0 {
		t.Fatal("no improvements gossiped from a fresh search")
	}
	last := gossip[len(gossip)-1]
	val, _ := si.Best()
	if last[0] != val {
		t.Fatalf("last gossiped value %d != final incumbent %d", last[0], val)
	}
	n := len(gossip)
	if si.Offer(0, []int{0, 1, 2, 3}) && len(gossip) != n {
		t.Fatal("Offer echoed through the onImprove hook")
	}
}
