package exact

import (
	"math/rand"
	"testing"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func TestMinBisectionKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path8", pathGraph(8), 1},
		{"path9", pathGraph(9), 1},
		{"cycle8", cycleGraph(8), 2},
		{"cycle9", cycleGraph(9), 2},
		{"K4", topology.NewComplete(4), 4},
		{"K6", topology.NewComplete(6), 9},
		{"star5", topology.NewCompleteBipartite(1, 4), 2},
		{"B2=C4", topology.NewButterfly(2).Graph, 2},
		{"Q3", topology.NewHypercube(3).Graph, 4},
		{"Q4", topology.NewHypercube(4).Graph, 8},
	}
	for _, c := range cases {
		bis, width := MinBisection(c.g)
		if width != c.want {
			t.Errorf("%s: BW = %d, want %d", c.name, width, c.want)
		}
		if !bis.IsBisection() {
			t.Errorf("%s: returned cut is not a bisection", c.name)
		}
		if bis.Capacity() != width {
			t.Errorf("%s: reported width %d but cut capacity %d", c.name, width, bis.Capacity())
		}
	}
}

func TestMinBisectionEmptyAndTiny(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	_, w := MinBisection(g)
	if w != 0 {
		t.Errorf("empty BW = %d", w)
	}
	one := graph.NewBuilder(1).Build()
	bis, w := MinBisection(one)
	if w != 0 || !bis.IsBisection() {
		t.Errorf("singleton BW = %d", w)
	}
	two := pathGraph(2)
	_, w = MinBisection(two)
	if w != 1 {
		t.Errorf("P2 BW = %d, want 1", w)
	}
}

func TestMinBisectionDisconnected(t *testing.T) {
	// Two disjoint K3s bisect for free.
	b := graph.NewBuilder(6)
	for _, tri := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		b.AddEdge(tri[0], tri[1])
		b.AddEdge(tri[1], tri[2])
		b.AddEdge(tri[2], tri[0])
	}
	_, w := MinBisection(b.Build())
	if w != 0 {
		t.Errorf("two triangles BW = %d, want 0", w)
	}
}

func TestMinBisectionNotBeatenByRandomCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 6 + 2*rng.Intn(4)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		_, w := MinBisection(g)
		// Every random balanced cut must be at least as large.
		for probe := 0; probe < 50; probe++ {
			perm := rng.Perm(n)
			side := make([]bool, n)
			for i := 0; i < n/2; i++ {
				side[perm[i]] = true
			}
			if c := cut.New(g, side).Capacity(); c < w {
				t.Fatalf("random bisection %d beats exact %d", c, w)
			}
		}
	}
}

func TestMinBisectionWraparoundButterfly(t *testing.T) {
	// Lemma 3.2: BW(Wn) = n. Exact for W4 (8 nodes) and W8 (24 nodes).
	for _, n := range []int{4, 8} {
		w := topology.NewWrappedButterfly(n)
		_, width := MinBisection(w.Graph)
		if width != n {
			t.Errorf("BW(W%d) = %d, want %d", n, width, n)
		}
	}
}

func TestMinBisectionCCC(t *testing.T) {
	// Lemma 3.3: BW(CCCn) = n/2. Exact for CCC8 (24 nodes).
	c := topology.NewCCC(8)
	_, width := MinBisection(c.Graph)
	if width != 4 {
		t.Errorf("BW(CCC8) = %d, want 4", width)
	}
}

func TestMinBisectionButterflySmall(t *testing.T) {
	// B4 (12 nodes): the bisection width must lie in the paper's proven
	// window n/2 ≤ BW(B4) ≤ n, and at n = 4 the folklore value is in fact
	// achieved (the asymptotic 0.83n construction needs large n).
	b := topology.NewButterfly(4)
	bis, width := MinBisection(b.Graph)
	if width < 2 || width > 4 {
		t.Errorf("BW(B4) = %d outside [2,4]", width)
	}
	if !bis.IsBisection() || bis.Capacity() != width {
		t.Errorf("invalid optimal cut")
	}
}

func TestMinBisectionWithBadBoundRecovers(t *testing.T) {
	g := cycleGraph(8)
	_, w := MinBisectionWithBound(g, 0) // unachievable: BW = 2
	if w != 2 {
		t.Errorf("recovered BW = %d, want 2", w)
	}
	_, w = MinBisectionWithBound(g, 100)
	if w != 2 {
		t.Errorf("loose bound BW = %d, want 2", w)
	}
}

func TestMinSubsetBisectionPath(t *testing.T) {
	// Path 0-1-2-3: bisecting {0,3} needs 1 edge; bisecting {0,1} needs 1.
	g := pathGraph(4)
	_, w := MinSubsetBisection(g, []int{0, 3})
	if w != 1 {
		t.Errorf("subset bisection = %d, want 1", w)
	}
	_, w = MinSubsetBisection(g, []int{0, 1})
	if w != 1 {
		t.Errorf("adjacent subset bisection = %d, want 1", w)
	}
}

func TestMinSubsetBisectionValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(5)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		u := rng.Perm(n)[:2+rng.Intn(n-2)]
		c, w := MinSubsetBisection(g, u)
		if !c.BisectsSubset(u) {
			t.Fatalf("cut does not bisect the subset")
		}
		if c.Capacity() != w {
			t.Fatalf("capacity mismatch")
		}
		// A full bisection that bisects U cannot be cheaper than the
		// U-bisection width.
		full, fw := MinBisection(g)
		if full.BisectsSubset(u) && fw < w {
			t.Fatalf("global bisection %d beats subset optimum %d", fw, w)
		}
	}
}

func TestLemma31InputBisection(t *testing.T) {
	// Lemma 3.1: any cut of Bn bisecting its inputs has capacity ≥ n.
	// Exact check on B4: BW(B4, L0) must be exactly 4 (the column cut
	// achieves it).
	b := topology.NewButterfly(4)
	c, w := MinSubsetBisection(b.Graph, b.InputNodes())
	if w != 4 {
		t.Errorf("BW(B4, L0) = %d, want 4", w)
	}
	if !c.BisectsSubset(b.InputNodes()) {
		t.Errorf("cut does not bisect inputs")
	}
	// Same for inputs∪outputs.
	io := append(append([]int{}, b.InputNodes()...), b.OutputNodes()...)
	_, w = MinSubsetBisection(b.Graph, io)
	if w < 4 {
		t.Errorf("BW(B4, L0∪Llogn) = %d, want ≥ 4", w)
	}
}

func TestLemma212LevelBisection(t *testing.T) {
	// Lemma 2.12(1): some level i has BW(Bn, L_i) ≤ BW(Bn).
	b := topology.NewButterfly(4)
	_, bw := MinBisection(b.Graph)
	minLevel := -1
	for i := 0; i <= b.Dim(); i++ {
		_, w := MinSubsetBisection(b.Graph, b.LevelNodes(i))
		if minLevel < 0 || w < minLevel {
			minLevel = w
		}
	}
	if minLevel > bw {
		t.Errorf("min level-bisection %d exceeds BW %d", minLevel, bw)
	}
}
