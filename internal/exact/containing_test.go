package exact

import (
	"testing"

	"repro/internal/topology"
)

func TestContainingMatchesGlobalOnVertexTransitive(t *testing.T) {
	// Wn, CCCn and the hypercube are vertex-transitive: forcing a root
	// loses nothing.
	for name, g := range map[string]*topology.Butterfly{
		"W8": topology.NewWrappedButterfly(8),
	} {
		for k := 1; k <= 6; k++ {
			_, global := MinEdgeExpansion(g.Graph, k)
			_, rooted := MinEdgeExpansionContaining(g.Graph, k, 0)
			if rooted != global {
				t.Errorf("%s EE k=%d: rooted %d, global %d", name, k, rooted, global)
			}
			_, globalN := MinNodeExpansion(g.Graph, k)
			_, rootedN := MinNodeExpansionContaining(g.Graph, k, 0)
			if rootedN != globalN {
				t.Errorf("%s NE k=%d: rooted %d, global %d", name, k, rootedN, globalN)
			}
		}
	}

	q := topology.NewHypercube(4)
	for k := 2; k <= 5; k++ {
		_, global := MinEdgeExpansion(q.Graph, k)
		_, rooted := MinEdgeExpansionContaining(q.Graph, k, 3)
		if rooted != global {
			t.Errorf("Q4 EE k=%d: rooted %d, global %d", k, rooted, global)
		}
	}
}

func TestContainingIsUpperBoundOnBn(t *testing.T) {
	// Bn is NOT vertex-transitive (inputs have degree 2, the interior 4):
	// rooting at an interior node can only give ≥ the global optimum.
	b := topology.NewButterfly(4)
	interior := b.Node(0, 1)
	for k := 1; k <= 4; k++ {
		_, global := MinEdgeExpansion(b.Graph, k)
		set, rooted := MinEdgeExpansionContaining(b.Graph, k, interior)
		if rooted < global {
			t.Errorf("k=%d: rooted %d below global %d — impossible", k, rooted, global)
		}
		if !contains(set, interior) {
			t.Errorf("k=%d: root not in the returned set", k)
		}
	}
}

func TestContainingRootInSet(t *testing.T) {
	w := topology.NewWrappedButterfly(8)
	for _, root := range []int{0, 5, 17} {
		set, _ := MinEdgeExpansionContaining(w.Graph, 4, root)
		if !contains(set, root) {
			t.Errorf("root %d missing from set %v", root, set)
		}
		setN, _ := MinNodeExpansionContaining(w.Graph, 4, root)
		if !contains(setN, root) {
			t.Errorf("root %d missing from NE set %v", root, setN)
		}
	}
}

func TestContainingValidation(t *testing.T) {
	w := topology.NewWrappedButterfly(8)
	defer func() {
		if recover() == nil {
			t.Errorf("bad root did not panic")
		}
	}()
	MinEdgeExpansionContaining(w.Graph, 2, -1)
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
