package exact

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/solve"
)

// The shard-level entry points below expose the BFS-prefix fan-out of the
// parallel expansion engine as an externally schedulable unit of work:
// expansionPrefixes splits one EE/NE search into up to 2^prefixDepth
// independent subproblems, and SearchExpansionShards runs any subset of
// them against a ShardIncumbent that can be tightened from outside while
// the search runs. internal/cluster uses this to distribute one search
// across peers — every peer prunes against the globally best witness seen
// so far (gossiped bound tightening), and a shard that a straggler never
// finishes can be re-run elsewhere, since shards are pure functions of
// (graph, spec, shard id).

// ExpansionShardSpec identifies one distributable expansion search: which
// quantity (edge or node boundary), the set size k, an optional forced
// root (Root ≥ 0: the Containing variants — exact on vertex-transitive
// networks, an upper bound elsewhere), and the prefix fan-out depth.
type ExpansionShardSpec struct {
	K    int
	Edge bool
	// Root < 0 searches all k-sets; Root ≥ 0 forces that node into S.
	Root int
	// PrefixDepth is the BFS-prefix depth of the fan-out (≤0: the engine
	// default of 8, clamped to n/2). All parties of one distributed search
	// must agree on it — shard ids index the prefix enumeration.
	PrefixDepth int
}

func (s ExpansionShardSpec) depth(n int) int {
	d := s.PrefixDepth
	if d <= 0 {
		d = 8
	}
	if d > n/2 {
		d = n / 2
	}
	return d
}

// Validate rejects specs no shard search can run.
func (s ExpansionShardSpec) Validate(g *graph.Graph) error {
	if s.K < 1 || s.K > g.N()-1 {
		return fmt.Errorf("exact: shard spec k=%d out of range [1, %d]", s.K, g.N()-1)
	}
	if s.Root >= g.N() {
		return fmt.Errorf("exact: shard spec root %d out of range (n=%d)", s.Root, g.N())
	}
	return nil
}

// ExpansionShardCount returns how many prefix shards spec fans out into on
// g. Shard ids 0..count-1 index the same deterministic enumeration on
// every party that agrees on (g, spec).
func ExpansionShardCount(g *graph.Graph, spec ExpansionShardSpec) int {
	return len(expansionPrefixes(g.N(), spec.depth(g.N()), spec.K, spec.Root >= 0))
}

// ShardIncumbent is the shared incumbent of one distributed expansion
// search: the best (value, witness) pair seen so far, tightened both by
// local leaf improvements and by Offer calls carrying remote witnesses.
// All methods are safe for concurrent use; one incumbent serves every
// SearchExpansionShards call of the same logical search on this process.
type ShardIncumbent struct {
	sb sharedExpBound
}

// NewShardIncumbent builds the incumbent of one (g, spec) search, starting
// one past the trivial maximum of the quantity (so the first feasible leaf
// always records). onImprove, when non-nil, receives every *locally* found
// improvement — value plus a private copy of the witness — and is the
// cluster's gossip hook; bounds injected via Offer do not echo through it.
func NewShardIncumbent(g *graph.Graph, spec ExpansionShardSpec, onImprove func(val int, set []int)) *ShardIncumbent {
	si := &ShardIncumbent{}
	si.sb.best.Store(initialExpBest(g, spec.Edge, noBound))
	si.sb.onRecord = onImprove
	return si
}

// Offer injects an incumbent achieved elsewhere. It tightens the bound
// (and adopts the witness) only if val strictly improves on the current
// best, so a stale or duplicated gossip message can never loosen the
// search — incumbent monotonicity holds under arbitrary message loss,
// reordering and replay. It reports whether the bound moved.
func (si *ShardIncumbent) Offer(val int, set []int) bool {
	return si.sb.offer(val, set)
}

// Best returns the current incumbent value and a copy of its witness (nil
// when nothing feasible has been seen yet).
func (si *ShardIncumbent) Best() (int, []int) {
	si.sb.mu.Lock()
	defer si.sb.mu.Unlock()
	if si.sb.set == nil {
		return int(si.sb.best.Load()), nil
	}
	set := make([]int, len(si.sb.set))
	copy(set, si.sb.set)
	return int(si.sb.best.Load()), set
}

// ShardOutcome reports one SearchExpansionShards call. Complete means
// every requested shard ran to exhaustion (nothing was abandoned on
// cancellation); only complete outcomes may count toward a certificate.
// Explored/Pruned are read from the monitor when one is supplied.
type ShardOutcome struct {
	Complete bool
	Explored int64
	Pruned   int64
}

// SearchExpansionShards runs the prefix shards named by ids (indices into
// the (g, spec) enumeration) on workers goroutines (≤0: GOMAXPROCS),
// pruning against and recording into si. Out-of-range ids panic — they
// mean the parties disagree about the search geometry, which would
// silently miscertify. The search tree of each shard is explored exactly
// as the single-process parallel engine would explore it, so the union of
// all shards over any number of calls and processes covers the same
// leaves as one MinEdge/NodeExpansionParallel run.
func SearchExpansionShards(g *graph.Graph, spec ExpansionShardSpec, ids []int, workers int, si *ShardIncumbent, mon *solve.Monitor) ShardOutcome {
	if err := spec.Validate(g); err != nil {
		panic(err.Error())
	}
	n := g.N()
	rootForced := spec.Root >= 0
	prefixes := expansionPrefixes(n, spec.depth(n), spec.K, rootForced)
	for _, id := range ids {
		if id < 0 || id >= len(prefixes) {
			panic(fmt.Sprintf("exact: shard id %d out of range [0, %d)", id, len(prefixes)))
		}
	}
	order := expansionOrder(g, spec.Root)

	// The jobs share the caller's incumbent — that is the whole point of
	// the shard API — but completeness is tracked per call: a peer running
	// two batches concurrently must not let one batch's cancellation
	// uncertify the other.
	exploredBefore, prunedBefore := mon.Explored(), mon.Pruned()
	complete := runShardJobs(g, order, spec, prefixes, ids, rootForced, workers, si, mon)
	return ShardOutcome{
		Complete: complete,
		Explored: mon.Explored() - exploredBefore,
		Pruned:   mon.Pruned() - prunedBefore,
	}
}

// runShardJobs is runExpansionSearches specialized to one search and an
// explicit shard subset. It reports whether every shard ran to exhaustion.
func runShardJobs(g *graph.Graph, order []int32, spec ExpansionShardSpec, prefixes [][]int8, ids []int, rootForced bool, workers int, si *ShardIncumbent, mon *solve.Monitor) bool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) && len(ids) > 0 {
		workers = len(ids)
	}
	var incomplete atomic.Bool
	ch := make(chan []int8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newExpState(g, order)
			st.mon = mon
			st.sb = &si.sb
			for prefix := range ch {
				if mon.Stopped() {
					incomplete.Store(true)
					continue
				}
				st.restartTicks()
				for i, side := range prefix {
					st.place(int(order[i]), side, spec.Edge)
				}
				dfsExpansion(st, len(prefix), spec.K, spec.Edge, rootForced, &si.sb)
				for i := len(prefix) - 1; i >= 0; i-- {
					st.unplace(int(order[i]), spec.Edge)
				}
				st.flushTicks()
				if st.stopped {
					incomplete.Store(true)
				}
			}
		}()
	}
	for _, id := range ids {
		if mon.Stopped() {
			incomplete.Store(true)
			continue
		}
		ch <- prefixes[id]
	}
	close(ch)
	wg.Wait()
	return !incomplete.Load()
}
