package exact

import (
	"math/rand"
	"testing"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/topology"
)

func TestMinEdgeExpansionCycle(t *testing.T) {
	// On a cycle, every contiguous arc of 1 ≤ k < n nodes has boundary 2,
	// and nothing beats it.
	g := cycleGraph(10)
	for k := 1; k < 10; k++ {
		set, v := MinEdgeExpansion(g, k)
		if v != 2 {
			t.Errorf("EE(C10,%d) = %d, want 2", k, v)
		}
		if len(set) != k {
			t.Errorf("set size %d, want %d", len(set), k)
		}
		if cut.EdgeBoundary(g, set) != v {
			t.Errorf("reported value does not match set boundary")
		}
	}
}

func TestMinEdgeExpansionComplete(t *testing.T) {
	// EE(K_N, k) = k(N−k) (§1.4).
	g := topology.NewComplete(7)
	for k := 0; k <= 7; k++ {
		_, v := MinEdgeExpansion(g, k)
		if want := k * (7 - k); v != want {
			t.Errorf("EE(K7,%d) = %d, want %d", k, v, want)
		}
	}
}

func TestMinNodeExpansionCycle(t *testing.T) {
	g := cycleGraph(10)
	for k := 1; k <= 8; k++ {
		set, v := MinNodeExpansion(g, k)
		if v != 2 {
			t.Errorf("NE(C10,%d) = %d, want 2", k, v)
		}
		if got := len(cut.NodeBoundary(g, set)); got != v {
			t.Errorf("reported %d but set has %d neighbors", v, got)
		}
	}
	// k = 9: only one node remains outside and it is adjacent to the arc.
	_, v := MinNodeExpansion(g, 9)
	if v != 1 {
		t.Errorf("NE(C10,9) = %d, want 1", v)
	}
}

func TestMinNodeExpansionStar(t *testing.T) {
	// Star K_{1,5}: any k ≤ 5 leaves have exactly one neighbor (the hub).
	g := topology.NewCompleteBipartite(1, 5)
	for k := 1; k <= 4; k++ {
		_, v := MinNodeExpansion(g, k)
		if v != 1 {
			t.Errorf("NE(star,%d) = %d, want 1", k, v)
		}
	}
}

func TestExpansionTrivialSizes(t *testing.T) {
	g := cycleGraph(6)
	if _, v := MinEdgeExpansion(g, 0); v != 0 {
		t.Errorf("EE(·,0) = %d", v)
	}
	if _, v := MinEdgeExpansion(g, 6); v != 0 {
		t.Errorf("EE(·,N) = %d", v)
	}
	if _, v := MinNodeExpansion(g, 0); v != 0 {
		t.Errorf("NE(·,0) = %d", v)
	}
}

func TestExpansionAgainstBruteForce(t *testing.T) {
	// Compare the branch-and-bound against plain enumeration on random
	// graphs small enough to enumerate.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(4)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		for k := 1; k <= n/2; k++ {
			_, gotEE := MinEdgeExpansion(g, k)
			_, gotNE := MinNodeExpansion(g, k)
			wantEE, wantNE := bruteForceExpansion(g, k)
			if gotEE != wantEE {
				t.Errorf("n=%d k=%d: EE = %d, brute force %d", n, k, gotEE, wantEE)
			}
			if gotNE != wantNE {
				t.Errorf("n=%d k=%d: NE = %d, brute force %d", n, k, gotNE, wantNE)
			}
		}
	}
}

// bruteForceExpansion enumerates all k-subsets via bitmasks.
func bruteForceExpansion(g *graph.Graph, k int) (ee, ne int) {
	n := g.N()
	ee, ne = 1<<30, 1<<30
	var set []int
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) != k {
			continue
		}
		set = set[:0]
		for v := 0; v < n; v++ {
			if mask>>v&1 == 1 {
				set = append(set, v)
			}
		}
		if b := cut.EdgeBoundary(g, set); b < ee {
			ee = b
		}
		if b := len(cut.NodeBoundary(g, set)); b < ne {
			ne = b
		}
	}
	return ee, ne
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestExpansionButterflySanity(t *testing.T) {
	// On B4 the single cheapest node to isolate is an input/output (degree
	// 2), so EE(B4,1) = 2; a 2-node set can share one edge: EE(B4,2) = 2·2−...
	// an input plus its level-1 neighbor has boundary 2+4−2 = 4, two inputs
	// have boundary 4, so EE(B4,2) = 4.
	b := topology.NewButterfly(4)
	if _, v := MinEdgeExpansion(b.Graph, 1); v != 2 {
		t.Errorf("EE(B4,1) = %d, want 2", v)
	}
	if _, v := MinEdgeExpansion(b.Graph, 2); v != 4 {
		t.Errorf("EE(B4,2) = %d, want 4", v)
	}
	if _, v := MinNodeExpansion(b.Graph, 1); v != 2 {
		t.Errorf("NE(B4,1) = %d, want 2", v)
	}
}

func TestExpansionSizeValidation(t *testing.T) {
	g := cycleGraph(4)
	for _, bad := range []int{-1, 5} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", bad)
				}
			}()
			MinEdgeExpansion(g, bad)
		}()
	}
}
