package exact

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/solve"
	"repro/internal/topology"
)

// checkFeasibleSet asserts that set is a valid k-subset of g's nodes and
// that val is exactly its measured boundary.
func checkFeasibleSet(t *testing.T, g *graph.Graph, set []int, k, val int, edge bool) {
	t.Helper()
	if len(set) != k {
		t.Fatalf("incumbent set has %d nodes, want %d", len(set), k)
	}
	seen := make(map[int]bool)
	for _, v := range set {
		if v < 0 || v >= g.N() {
			t.Fatalf("set node %d out of range [0,%d)", v, g.N())
		}
		if seen[v] {
			t.Fatalf("set node %d duplicated", v)
		}
		seen[v] = true
	}
	measured := cut.EdgeBoundary(g, set)
	if !edge {
		measured = len(cut.NodeBoundary(g, set))
	}
	if val != measured {
		t.Fatalf("reported value %d != measured boundary %d", val, measured)
	}
}

func TestSolveEdgeExpansionCancelledMidSearch(t *testing.T) {
	// W16 with a large unseeded k runs for many seconds uncancelled
	// (EE(W16,10) alone takes ~4s serial); cancelling after 30ms must
	// return promptly with a feasible non-exact incumbent.
	g := topology.NewWrappedButterfly(16).Graph
	k := 16
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	startWait := time.Now()
	res := SolveEdgeExpansion(ctx, g, k, SolveOptions{})
	took := time.Since(startWait)
	if took > 2*time.Second {
		t.Fatalf("cancelled solve took %v, want prompt return", took)
	}
	if res.Exact {
		t.Fatal("cancelled solve claims Exact")
	}
	checkFeasibleSet(t, g, res.Set, k, res.Value, true)
	if res.Explored == 0 {
		t.Fatal("no explored nodes recorded before cancellation")
	}
}

func TestSolveNodeExpansionCancelledSerial(t *testing.T) {
	g := topology.NewWrappedButterfly(16).Graph
	k := 14
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res := SolveNodeExpansion(ctx, g, k, SolveOptions{Workers: 1})
	if res.Exact {
		t.Fatal("cancelled serial solve claims Exact")
	}
	checkFeasibleSet(t, g, res.Set, k, res.Value, false)
}

func TestSolveExpansionDeadlineZero(t *testing.T) {
	// An instance far beyond exact reach must still return immediately
	// under an already-expired deadline, with the feasible fallback.
	g := topology.NewWrappedButterfly(64).Graph
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	start := time.Now()
	res := SolveEdgeExpansion(ctx, g, 100, SolveOptions{})
	if took := time.Since(start); took > time.Second {
		t.Fatalf("deadline-zero solve took %v, want immediate return", took)
	}
	if res.Exact {
		t.Fatal("deadline-zero solve claims Exact")
	}
	checkFeasibleSet(t, g, res.Set, 100, res.Value, true)
}

func TestSolveExpansionSeededCancelledFallsBack(t *testing.T) {
	// A pre-cancelled seeded search finds nothing (the seed incumbent has
	// no witness set); it must return the feasible fallback rather than
	// rerunning unseeded.
	g := topology.NewWrappedButterfly(16).Graph
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := SolveEdgeExpansion(ctx, g, 8, SolveOptions{Bound: 1})
	if res.Exact {
		t.Fatal("cancelled seeded solve claims Exact")
	}
	checkFeasibleSet(t, g, res.Set, 8, res.Value, true)
}

func TestSolveExpansionUncancelledMatchesMin(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	for _, k := range []int{3, 4, 6} {
		_, wantEE := MinEdgeExpansion(g, k)
		res := SolveEdgeExpansion(context.Background(), g, k, SolveOptions{})
		if !res.Exact {
			t.Fatalf("uncancelled solve k=%d not Exact", k)
		}
		if res.Value != wantEE {
			t.Fatalf("EE k=%d: solve=%d min=%d", k, res.Value, wantEE)
		}
		checkFeasibleSet(t, g, res.Set, k, res.Value, true)
		if res.Explored <= 0 {
			t.Fatalf("EE k=%d: explored=%d, want > 0", k, res.Explored)
		}

		_, wantNE := MinNodeExpansion(g, k)
		nres := SolveNodeExpansion(context.Background(), g, k, SolveOptions{Workers: 1})
		if !nres.Exact || nres.Value != wantNE {
			t.Fatalf("NE k=%d: solve=(%d,%v) min=%d", k, nres.Value, nres.Exact, wantNE)
		}
	}
}

func TestSolveExpansionContainingAndBound(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	_, want := MinEdgeExpansionContaining(g, 5, 0)
	res := SolveEdgeExpansion(context.Background(), g, 5, SolveOptions{
		Containing: true, Root: 0, Bound: want,
	})
	if !res.Exact || res.Value != want {
		t.Fatalf("containing+bound solve = (%d,%v), want (%d,true)", res.Value, res.Exact, want)
	}
	for _, v := range res.Set {
		if v == 0 {
			return
		}
	}
	t.Fatal("root 0 missing from containing solve witness")
}

func TestSolveBisectionCancelledMidSearch(t *testing.T) {
	// Q7 bisection (128 nodes) is far beyond the exact engine in seconds.
	g := topology.NewHypercube(7).Graph
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := SolveBisection(ctx, g, SolveOptions{})
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("cancelled bisection took %v, want prompt return", took)
	}
	if res.Exact {
		t.Fatal("cancelled bisection claims Exact")
	}
	if !res.Cut.IsBisection() {
		t.Fatal("cancelled bisection incumbent is not a bisection")
	}
	if res.Width != res.Cut.Capacity() {
		t.Fatalf("reported width %d != cut capacity %d", res.Width, res.Cut.Capacity())
	}
}

func TestSolveBisectionSerialDeadlineZero(t *testing.T) {
	g := topology.NewHypercube(7).Graph
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	res := SolveBisection(ctx, g, SolveOptions{Workers: 1})
	if res.Exact {
		t.Fatal("deadline-zero bisection claims Exact")
	}
	if !res.Cut.IsBisection() || res.Width != res.Cut.Capacity() {
		t.Fatal("deadline-zero bisection incumbent invalid")
	}
}

func TestSolveBisectionUncancelledMatchesMin(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"Q4": topology.NewHypercube(4).Graph,
		"B8": topology.NewButterfly(8).Graph,
	} {
		_, want := MinBisection(g)
		for _, workers := range []int{1, 0} {
			res := SolveBisection(context.Background(), g, SolveOptions{Workers: workers})
			if !res.Exact || res.Width != want {
				t.Fatalf("%s workers=%d: solve=(%d,%v), want (%d,true)",
					name, workers, res.Width, res.Exact, want)
			}
			if !res.Cut.IsBisection() {
				t.Fatalf("%s: witness not a bisection", name)
			}
		}
	}
}

func TestSolveSubsetBisection(t *testing.T) {
	b := topology.NewButterfly(4)
	g := b.Graph
	u := b.InputNodes()
	_, want := MinSubsetBisection(g, u)
	res := SolveSubsetBisection(context.Background(), g, u, SolveOptions{})
	if !res.Exact || res.Width != want {
		t.Fatalf("subset solve = (%d,%v), want (%d,true)", res.Width, res.Exact, want)
	}
	if !res.Cut.BisectsSubset(u) {
		t.Fatal("subset solve witness does not bisect u")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cres := SolveSubsetBisection(ctx, g, u, SolveOptions{})
	if cres.Exact {
		t.Fatal("pre-cancelled subset solve claims Exact")
	}
	if !cres.Cut.BisectsSubset(u) {
		t.Fatal("pre-cancelled subset incumbent does not bisect u")
	}
}

func TestSolveProgressCallbackFires(t *testing.T) {
	g := topology.NewWrappedButterfly(16).Graph
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	done := make(chan Result, 1)
	go func() {
		done <- SolveEdgeExpansion(ctx, g, 16, SolveOptions{
			OnProgress: func(p solve.Progress) {
				if calls.Add(1) >= 3 {
					cancel()
				}
			},
			ProgressInterval: 5 * time.Millisecond,
		})
	}()
	select {
	case res := <-done:
		if calls.Load() < 3 {
			t.Fatalf("solve finished with only %d progress calls", calls.Load())
		}
		if res.Exact {
			t.Fatal("progress-cancelled solve claims Exact")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled solve did not return")
	}
}

func TestSurveyCancelledReportsNonExact(t *testing.T) {
	g := topology.NewWrappedButterfly(16).Graph
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results := ExpansionSurveyWithOptions(g, []int{2, 14, 15, 16}, 0, 0, SurveyOptions{Ctx: ctx})
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled survey took %v", took)
	}
	sawNonExact := false
	for _, r := range results {
		checkFeasibleSet(t, g, r.EESet, r.K, r.EE, true)
		checkFeasibleSet(t, g, r.NESet, r.K, r.NE, false)
		if !r.EEExact || !r.NEExact {
			sawNonExact = true
		}
	}
	if !sawNonExact {
		t.Skip("survey finished before cancellation on this machine")
	}
}

func TestSurveyUncancelledStaysExact(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	results := ExpansionSurveyWithOptions(g, []int{0, 2, 4}, 0, 0, SurveyOptions{})
	for _, r := range results {
		if !r.EEExact || !r.NEExact {
			t.Fatalf("uncancelled survey row k=%d not exact", r.K)
		}
	}
	// Cross-check against the one-shot solver.
	_, want := MinEdgeExpansionContaining(g, 4, 0)
	if results[2].EE != want {
		t.Fatalf("survey EE(8,4)=%d, want %d", results[2].EE, want)
	}
	if results[2].EEExplored <= 0 {
		t.Fatalf("survey explored=%d for a real search, want > 0", results[2].EEExplored)
	}
}
