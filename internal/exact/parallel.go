package exact

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/solve"
)

// MinBisectionParallel computes the same optimum as MinBisection using a
// parallel branch and bound: the assignments of the first prefixDepth nodes
// become independent subproblems distributed over worker goroutines, all
// pruning against a shared atomic incumbent. The returned width is always
// the exact BW; the witness cut is one optimal bisection (which one may
// vary between runs when several are optimal).
func MinBisectionParallel(g *graph.Graph, workers int) (*cut.Cut, int) {
	c, w, _ := minBisectionParallelSearch(g, workers, 0, nil)
	return c, w
}

// minBisectionParallelSearch is the engine behind MinBisectionParallel and
// SolveBisection. bound > 0 additionally seeds the incumbent with a known
// achievable capacity (tighter than the internal BFS-prefix seed or not —
// the tighter of the two wins). The flag reports whether the search ran to
// completion; a stopped search returns the best incumbent so far (or the
// BFS-prefix seed), which is a valid bisection but not a certified
// optimum.
func minBisectionParallelSearch(g *graph.Graph, workers, bound int, mon *solve.Monitor) (*cut.Cut, int, bool) {
	n := g.N()
	if n < 16 {
		if bound <= 0 {
			bound = initialBisectionBound(g)
		}
		return minBisectionSearch(g, bound, mon) // not worth the fan-out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Depth 8 gives up to 256 subproblems — plenty of slack for load
	// balancing without flooding memory with prefixes.
	prefixDepth := 8
	if prefixDepth > n/2 {
		prefixDepth = n / 2
	}

	seedCut := initialBisection(g)
	start := seedCut.Capacity()
	seeded := bound > 0 && bound < start
	if seeded {
		start = bound
	}
	shared := sharedBound{mon: mon}
	shared.best.Store(int64(start + 1))

	// Enumerate prefix assignments with the same constraints as the serial
	// search (balance caps and the first-node symmetry fix).
	half := (n + 1) / 2
	var prefixes [][]int8
	var gen func(idx int, assign []int8, sizeS, sizeT int)
	gen = func(idx int, assign []int8, sizeS, sizeT int) {
		if idx == prefixDepth {
			cp := make([]int8, idx)
			copy(cp, assign[:idx])
			prefixes = append(prefixes, cp)
			return
		}
		for _, s := range []int8{sideS, sideSbar} {
			if idx == 0 && s != sideS {
				continue
			}
			if s == sideS && sizeS >= half {
				continue
			}
			if s == sideSbar && sizeT >= half {
				continue
			}
			assign[idx] = s
			if s == sideS {
				gen(idx+1, assign, sizeS+1, sizeT)
			} else {
				gen(idx+1, assign, sizeS, sizeT+1)
			}
		}
	}
	gen(0, make([]int8, prefixDepth), 0, 0)

	jobs := make(chan []int8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for prefix := range jobs {
				if mon.Stopped() {
					continue // drain; remaining subtrees stay unexplored
				}
				st := newBBState(g)
				st.mon = mon
				for i, s := range prefix {
					st.place(int(st.order[i]), s)
				}
				// Prefixes can already be prunable.
				if st.curCut+st.minSum >= int(shared.best.Load()) {
					st.prunedTick++
					st.flushTicks()
					continue
				}
				parallelDFS(st, len(prefix), half, &shared)
				st.flushTicks()
			}
		}()
	}
	for _, p := range prefixes {
		jobs <- p
	}
	close(jobs)
	wg.Wait()

	stopped := mon.Stopped()
	if shared.side == nil {
		switch {
		case stopped:
			// Cancelled before anything beat the seed: the BFS-prefix
			// seed is feasible but not certified.
			return seedCut, seedCut.Capacity(), false
		case seeded:
			// The external bound undercut BW(g) (or equals it without a
			// witness): rerun with the internal seed only.
			return minBisectionParallelSearch(g, workers, 0, mon)
		default:
			// Nothing beat the seed: the seed is optimal.
			return seedCut, seedCut.Capacity(), true
		}
	}
	return cut.New(g, shared.side), int(shared.best.Load()), !stopped
}

// sharedBound is the incumbent shared across workers: best is read
// lock-free on every prune check; improvements take the mutex to update
// both the bound and the witness side consistently.
type sharedBound struct {
	best atomic.Int64
	mu   sync.Mutex
	side []bool
	mon  *solve.Monitor
}

func (sb *sharedBound) record(cur int, assign []int8) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if int64(cur) >= sb.best.Load() {
		return // someone else got there first
	}
	sb.best.Store(int64(cur))
	side := make([]bool, len(assign))
	for v, a := range assign {
		side[v] = a == sideS
	}
	sb.side = side
	sb.mon.SetIncumbent(int64(cur))
}

func parallelDFS(st *bbState, idx, half int, sb *sharedBound) {
	if st.tickNode() {
		return
	}
	if st.curCut+st.minSum >= int(sb.best.Load()) {
		st.prunedTick++
		return
	}
	if idx == st.g.N() {
		sb.record(st.curCut, st.assign)
		return
	}
	v := int(st.order[idx])
	first, second := sideS, sideSbar
	if st.cntSbar[v] < st.cntS[v] {
		first, second = sideSbar, sideS
	}
	for _, s := range []int8{first, second} {
		if s == sideS && st.sizeS >= half {
			continue
		}
		if s == sideSbar && st.sizeT >= half {
			continue
		}
		st.place(v, s)
		parallelDFS(st, idx+1, half, sb)
		st.unplace(v, s)
	}
}
