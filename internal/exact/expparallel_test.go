package exact

import (
	"math/rand"
	"testing"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/topology"
)

func randomExpansionGraph(rng *rand.Rand, minN int) *graph.Graph {
	n := minN + rng.Intn(6)
	b := graph.NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestParallelExpansionMatchesSerialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		g := randomExpansionGraph(rng, 16) // above the fan-out threshold
		for k := 1; k <= 6; k++ {
			_, ee := MinEdgeExpansion(g, k)
			eeSet, eePar := MinEdgeExpansionParallel(g, k, 3)
			if eePar != ee {
				t.Errorf("trial %d k=%d: parallel EE %d, serial %d", trial, k, eePar, ee)
			}
			if len(eeSet) != k || cut.EdgeBoundary(g, eeSet) != eePar {
				t.Errorf("trial %d k=%d: invalid parallel EE witness", trial, k)
			}
			_, ne := MinNodeExpansion(g, k)
			neSet, nePar := MinNodeExpansionParallel(g, k, 3)
			if nePar != ne {
				t.Errorf("trial %d k=%d: parallel NE %d, serial %d", trial, k, nePar, ne)
			}
			if len(neSet) != k || len(cut.NodeBoundary(g, neSet)) != nePar {
				t.Errorf("trial %d k=%d: invalid parallel NE witness", trial, k)
			}
		}
	}
}

func TestParallelExpansionMatchesSerialButterflies(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"W8": topology.NewWrappedButterfly(8).Graph,
		"B4": topology.NewButterfly(4).Graph,
	} {
		for k := 1; k <= 5; k++ {
			_, ee := MinEdgeExpansion(g, k)
			if _, eePar := MinEdgeExpansionParallel(g, k, 4); eePar != ee {
				t.Errorf("%s k=%d: parallel EE %d, serial %d", name, k, eePar, ee)
			}
			_, ne := MinNodeExpansion(g, k)
			if _, nePar := MinNodeExpansionParallel(g, k, 4); nePar != ne {
				t.Errorf("%s k=%d: parallel NE %d, serial %d", name, k, nePar, ne)
			}
		}
	}
}

func TestParallelContainingMatchesUnrestrictedOnVertexTransitive(t *testing.T) {
	// Wn and CCCn are vertex-transitive (the Lemma 2.2/3.2 automorphisms
	// carry any node to any other), so forcing a root loses nothing.
	for name, g := range map[string]*graph.Graph{
		"W8":   topology.NewWrappedButterfly(8).Graph,
		"CCC8": topology.NewCCC(8).Graph,
	} {
		for k := 1; k <= 5; k++ {
			_, ee := MinEdgeExpansionParallel(g, k, 2)
			set, eeRoot := MinEdgeExpansionParallelContaining(g, k, 0, 2)
			if eeRoot != ee {
				t.Errorf("%s EE k=%d: rooted %d, unrestricted %d", name, k, eeRoot, ee)
			}
			if !contains(set, 0) {
				t.Errorf("%s EE k=%d: root not in returned set", name, k)
			}
			_, ne := MinNodeExpansionParallel(g, k, 2)
			setN, neRoot := MinNodeExpansionParallelContaining(g, k, 0, 2)
			if neRoot != ne {
				t.Errorf("%s NE k=%d: rooted %d, unrestricted %d", name, k, neRoot, ne)
			}
			if !contains(setN, 0) {
				t.Errorf("%s NE k=%d: root not in returned set", name, k)
			}
		}
	}
}

func TestParallelExpansionWorkerCounts(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	_, want := MinEdgeExpansion(g, 4)
	for _, workers := range []int{0, 1, 2, 8} {
		if _, got := MinEdgeExpansionParallel(g, 4, workers); got != want {
			t.Errorf("workers=%d: %d, want %d", workers, got, want)
		}
	}
}

func TestParallelExpansionSeeding(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	_, ee := MinEdgeExpansion(g, 4)
	_, ne := MinNodeExpansion(g, 4)

	// An exact seed (the optimum itself) must still be found and returned.
	if _, got := MinEdgeExpansionParallelWithBound(g, 4, 2, ee); got != ee {
		t.Errorf("exact seed: EE %d, want %d", got, ee)
	}
	// A loose seed prunes less but changes nothing.
	if _, got := MinEdgeExpansionParallelWithBound(g, 4, 2, ee+10); got != ee {
		t.Errorf("loose seed: EE %d, want %d", got, ee)
	}
	// A seed below the optimum (caller error) triggers the unseeded
	// fallback and stays exact.
	if _, got := MinEdgeExpansionParallelWithBound(g, 4, 2, ee-1); got != ee {
		t.Errorf("undercut seed: EE %d, want %d", got, ee)
	}
	if _, got := MinNodeExpansionParallelWithBound(g, 4, 2, ne-1); got != ne {
		t.Errorf("undercut seed: NE %d, want %d", got, ne)
	}

	// Serial seeded variants agree too.
	if _, got := MinEdgeExpansionWithBound(g, 4, ee); got != ee {
		t.Errorf("serial seeded: EE %d, want %d", got, ee)
	}
	if _, got := MinNodeExpansionWithBound(g, 4, ne-1); got != ne {
		t.Errorf("serial undercut seed: NE %d, want %d", got, ne)
	}
}

func TestExpansionSurveyMatchesIndividual(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	ks := []int{0, 1, 2, 3, 4, 5, g.N()}
	res := ExpansionSurvey(g, ks, -1, 3)
	if len(res) != len(ks) {
		t.Fatalf("%d results for %d ks", len(res), len(ks))
	}
	for i, k := range ks {
		r := res[i]
		if r.K != k {
			t.Fatalf("result %d has K=%d, want %d", i, r.K, k)
		}
		_, ee := MinEdgeExpansion(g, k)
		_, ne := MinNodeExpansion(g, k)
		if r.EE != ee || r.NE != ne {
			t.Errorf("k=%d: survey EE/NE %d/%d, serial %d/%d", k, r.EE, r.NE, ee, ne)
		}
		if k > 0 && k < g.N() {
			if cut.EdgeBoundary(g, r.EESet) != r.EE {
				t.Errorf("k=%d: EE witness boundary mismatch", k)
			}
			if len(cut.NodeBoundary(g, r.NESet)) != r.NE {
				t.Errorf("k=%d: NE witness boundary mismatch", k)
			}
		}
	}
}

func TestExpansionSurveyRootedSeeded(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	ks := []int{2, 4, 6}
	// Seeds straddle the optima: exact for one k, undercut for another,
	// absent for the third — every row must still come out exact.
	seeds := map[int]int{2: 6, 4: 7}
	res := ExpansionSurveyWithOptions(g, ks, 0, 2, SurveyOptions{
		EdgeSeed: func(k int) int {
			if s, ok := seeds[k]; ok {
				return s
			}
			return -1
		},
	})
	for i, k := range ks {
		_, ee := MinEdgeExpansionContaining(g, k, 0)
		_, ne := MinNodeExpansionContaining(g, k, 0)
		if res[i].EE != ee || res[i].NE != ne {
			t.Errorf("k=%d: survey EE/NE %d/%d, rooted serial %d/%d",
				k, res[i].EE, res[i].NE, ee, ne)
		}
		if !contains(res[i].EESet, 0) || !contains(res[i].NESet, 0) {
			t.Errorf("k=%d: root missing from survey witness", k)
		}
	}
}

func TestExpansionSurveyQuantitySelection(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	edgeOnly := ExpansionSurveyWithOptions(g, []int{3}, -1, 2, SurveyOptions{EdgeOnly: true})
	if edgeOnly[0].NE != NotComputed || edgeOnly[0].NESet != nil {
		t.Errorf("EdgeOnly computed NE: %+v", edgeOnly[0])
	}
	if _, ee := MinEdgeExpansion(g, 3); edgeOnly[0].EE != ee {
		t.Errorf("EdgeOnly EE %d, want %d", edgeOnly[0].EE, ee)
	}
	nodeOnly := ExpansionSurveyWithOptions(g, []int{3}, -1, 2, SurveyOptions{NodeOnly: true})
	if nodeOnly[0].EE != NotComputed || nodeOnly[0].EESet != nil {
		t.Errorf("NodeOnly computed EE: %+v", nodeOnly[0])
	}
}

func TestExpansionSurveyTinyGraph(t *testing.T) {
	// Below the fan-out threshold the survey runs serially; results must
	// still match the individual solvers.
	g := cycleGraph(10)
	res := ExpansionSurvey(g, []int{1, 3, 5}, -1, 4)
	for i, k := range []int{1, 3, 5} {
		if res[i].EE != 2 || res[i].NE != 2 {
			t.Errorf("k=%d: EE/NE %d/%d, want 2/2", k, res[i].EE, res[i].NE)
		}
	}
}

func TestExpansionSurveyValidation(t *testing.T) {
	g := cycleGraph(6)
	for _, bad := range [][]int{{-1}, {7}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ks=%v did not panic", bad)
				}
			}()
			ExpansionSurvey(g, bad, -1, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("oversized root did not panic")
			}
		}()
		ExpansionSurvey(g, []int{2}, 6, 1)
	}()
}

// TestIncrementalLeafAccounting pins the O(1) leaf counters against the
// direct cut computations on a graph with parallel edges, which the CSR
// substrate supports and the counters must handle per-edge.
func TestIncrementalLeafAccounting(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // parallel
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 0)
	g := b.Build()
	st := newExpState(g, bfsOrder(g))
	rng := rand.New(rand.NewSource(7))
	for _, edge := range []bool{true, false} {
		for trial := 0; trial < 50; trial++ {
			var placed []int
			for v := 0; v < g.N(); v++ {
				switch rng.Intn(3) {
				case 0:
					st.place(v, sideS, edge)
					placed = append(placed, v)
				case 1:
					st.place(v, sideSbar, edge)
					placed = append(placed, v)
				}
			}
			// Treating undecided as out: compare counters with cut package.
			var sOnly []int
			for v := 0; v < g.N(); v++ {
				if st.assign[v] == sideS {
					sOnly = append(sOnly, v)
				}
			}
			if edge {
				if got, want := st.permCut+st.inUnd, cut.EdgeBoundary(g, sOnly); got != want {
					t.Fatalf("trial %d: edge counters %d, boundary %d", trial, got, want)
				}
			} else if got, want := st.permNbrs+st.undWithIn, len(cut.NodeBoundary(g, sOnly)); got != want {
				t.Fatalf("trial %d: node counters %d, boundary %d", trial, got, want)
			}
			for i := len(placed) - 1; i >= 0; i-- {
				st.unplace(placed[i], edge)
			}
			if st.permCut != 0 || st.inUnd != 0 || st.permNbrs != 0 || st.undWithIn != 0 || st.chosen != 0 {
				t.Fatalf("trial %d: counters not restored: %+v", trial, st)
			}
			for v := 0; v < g.N(); v++ {
				if st.inNbrs[v] != 0 {
					t.Fatalf("trial %d: inNbrs[%d] = %d after full unplace", trial, v, st.inNbrs[v])
				}
			}
		}
	}
}
