package exact

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func TestMinBisectionParallelMatchesSerial(t *testing.T) {
	cases := []*graph.Graph{
		topology.NewWrappedButterfly(8).Graph,
		topology.NewCCC(8).Graph,
		topology.NewHypercube(4).Graph,
		topology.NewButterfly(4).Graph, // below the fan-out threshold
	}
	for i, g := range cases {
		_, serial := MinBisection(g)
		cPar, par := MinBisectionParallel(g, 4)
		if par != serial {
			t.Errorf("case %d: parallel %d, serial %d", i, par, serial)
		}
		if !cPar.IsBisection() || cPar.Capacity() != par {
			t.Errorf("case %d: invalid parallel witness", i)
		}
	}
}

func TestMinBisectionParallelRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 16 + 2*rng.Intn(4)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		_, serial := MinBisection(g)
		_, par := MinBisectionParallel(g, 3)
		if par != serial {
			t.Fatalf("trial %d: parallel %d ≠ serial %d", trial, par, serial)
		}
	}
}

func TestMinBisectionParallelWorkerCounts(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	_, want := MinBisection(g)
	for _, workers := range []int{0, 1, 2, 8} {
		if _, got := MinBisectionParallel(g, workers); got != want {
			t.Errorf("workers=%d: %d, want %d", workers, got, want)
		}
	}
}

func TestMinBisectionParallelSeedOptimal(t *testing.T) {
	// Disconnected components: the BFS-prefix seed is already optimal
	// (capacity 0), so the shared bound never improves and the seed path
	// must be returned.
	b := graph.NewBuilder(20)
	for i := 0; i < 10; i += 2 {
		b.AddEdge(i, i+1)
	}
	for i := 10; i < 20; i += 2 {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	c, w := MinBisectionParallel(g, 4)
	if w != 0 {
		t.Errorf("width %d, want 0", w)
	}
	if !c.IsBisection() {
		t.Errorf("witness not a bisection")
	}
}
