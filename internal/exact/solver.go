package exact

import (
	"context"
	"time"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/solve"
)

// This file is the context-aware entry point to the exact engines. The
// legacy Min* functions remain as uncancellable conveniences; Solve*
// accept a context.Context (deadline or cancellation), report telemetry,
// and — the key contract — mark results from an interrupted search
// Exact=false instead of silently presenting incumbents as optima.

// SolveOptions tune the context-aware solvers. The zero value runs an
// unseeded parallel search on GOMAXPROCS workers.
type SolveOptions struct {
	// Workers: 1 forces the serial engine, 0 (or <0) means GOMAXPROCS,
	// anything else sets the pool size.
	Workers int
	// Bound > 0 seeds the incumbent with a known achievable value (a
	// witness or heuristic boundary); ≤ 0 searches unseeded. A bound
	// below the optimum falls back to an unseeded rerun, so a completed
	// solve is exact either way.
	Bound int
	// Containing forces Root into every candidate set (expansion solvers
	// only): exact on vertex-transitive networks, an upper bound
	// elsewhere.
	Containing bool
	Root       int
	// OnProgress, when non-nil, receives Progress snapshots every
	// ProgressInterval (≤ 0: 1s) from a dedicated goroutine.
	OnProgress       func(solve.Progress)
	ProgressInterval time.Duration
	// Label names the solve in progress lines and trace spans.
	Label string
	// Trace, when non-nil, receives the solve's span events.
	Trace *obs.Tracer
}

func (o SolveOptions) monitor(ctx context.Context) *solve.Monitor {
	return solve.Start(solve.Options{
		Ctx:        ctx,
		OnProgress: o.OnProgress,
		Interval:   o.ProgressInterval,
		Name:       o.Label,
		Trace:      o.Trace,
	})
}

// Result is the outcome of a context-aware expansion solve.
type Result struct {
	// Set is a feasible k-set; Value its measured boundary. When Exact,
	// Value is the certified optimum and Set a witness.
	Set   []int
	Value int
	// Exact reports whether the search ran to completion. False means
	// the solve was cancelled and Value is only an upper bound.
	Exact bool
	// Explored/Pruned count branch-and-bound nodes processed / subtrees
	// cut off by the admissible bound; Elapsed is the solve wall time.
	Explored int64
	Pruned   int64
	Elapsed  time.Duration
}

// BisectionResult is the outcome of a context-aware bisection solve.
type BisectionResult struct {
	Cut   *cut.Cut
	Width int
	// Exact reports completion; false means Width is the capacity of the
	// best bisection found before cancellation (an upper bound on BW).
	Exact    bool
	Explored int64
	Pruned   int64
	Elapsed  time.Duration
}

// SolveBisection computes BW(g) under ctx. On cancellation it returns the
// best bisection found so far with Exact=false; the cut is always a valid
// bisection.
func SolveBisection(ctx context.Context, g *graph.Graph, opts SolveOptions) BisectionResult {
	mon := opts.monitor(ctx)
	defer mon.Close()
	var (
		c     *cut.Cut
		w     int
		exact bool
	)
	if opts.Workers == 1 {
		bound := opts.Bound
		if bound <= 0 {
			bound = initialBisectionBound(g)
		}
		c, w, exact = minBisectionSearch(g, bound, mon)
	} else {
		c, w, exact = minBisectionParallelSearch(g, opts.Workers, opts.Bound, mon)
	}
	return BisectionResult{
		Cut: c, Width: w, Exact: exact,
		Explored: mon.Explored(), Pruned: mon.Pruned(), Elapsed: mon.Elapsed(),
	}
}

// SolveSubsetBisection computes BW(g, u) (§2.1) under ctx; serial (the
// subset solver has no parallel variant). Workers is ignored.
func SolveSubsetBisection(ctx context.Context, g *graph.Graph, u []int, opts SolveOptions) BisectionResult {
	mon := opts.monitor(ctx)
	defer mon.Close()
	c, w, exact := minSubsetBisectionSearch(g, u, mon)
	return BisectionResult{
		Cut: c, Width: w, Exact: exact,
		Explored: mon.Explored(), Pruned: mon.Pruned(), Elapsed: mon.Elapsed(),
	}
}

// SolveEdgeExpansion computes EE(g,k) under ctx. On cancellation it
// returns a feasible k-set (best incumbent, or the BFS-prefix fallback if
// none was found) with Exact=false.
func SolveEdgeExpansion(ctx context.Context, g *graph.Graph, k int, opts SolveOptions) Result {
	return solveExpansion(ctx, g, k, edgeExpansion, opts)
}

// SolveNodeExpansion is the NE(g,k) analogue of SolveEdgeExpansion.
func SolveNodeExpansion(ctx context.Context, g *graph.Graph, k int, opts SolveOptions) Result {
	return solveExpansion(ctx, g, k, nodeExpansion, opts)
}

func solveExpansion(ctx context.Context, g *graph.Graph, k int, edge bool, opts SolveOptions) Result {
	mon := opts.monitor(ctx)
	defer mon.Close()
	root := -1
	if opts.Containing {
		checkRoot(g, opts.Root)
		root = opts.Root
	}
	bound := noBound
	if opts.Bound > 0 {
		bound = opts.Bound
	}
	var (
		set   []int
		val   int
		exact bool
	)
	if opts.Workers == 1 {
		set, val, exact = minExpansion(g, k, root, edge, bound, mon)
	} else {
		set, val, exact = minExpansionParallel(g, k, root, opts.Workers, edge, bound, mon)
	}
	return Result{
		Set: set, Value: val, Exact: exact,
		Explored: mon.Explored(), Pruned: mon.Pruned(), Elapsed: mon.Elapsed(),
	}
}
