package transmute

import (
	"math/rand"
	"testing"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/topology"
)

// randomBisection returns a random exact bisection of g-sized networks.
func randomBisection(n int, rng *rand.Rand) []bool {
	side := make([]bool, n)
	perm := rng.Perm(n)
	for i := 0; i < n/2; i++ {
		side[perm[i]] = true
	}
	return side
}

func TestFindSplitLevelExistsForBisections(t *testing.T) {
	// The paper's pigeonhole: every bisection of Wn has a split level.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8, 16} {
		w := topology.NewWrappedButterfly(n)
		for trial := 0; trial < 50; trial++ {
			side := randomBisection(w.N(), rng)
			lvl, ok := FindSplitLevel(w, side)
			if !ok {
				t.Fatalf("W%d: no split level for a bisection", n)
			}
			// Validate the property claimed.
			counts := make([]int, w.Dim())
			for v := 0; v < w.N(); v++ {
				if side[v] {
					counts[w.Level(v)]++
				}
			}
			if counts[lvl] != n/2 &&
				!(counts[lvl] > n/2 && counts[(lvl+1)%w.Dim()] < n/2) {
				t.Fatalf("W%d: level %d does not satisfy the split property", n, lvl)
			}
		}
	}
}

func TestRotateCutPreservesCapacity(t *testing.T) {
	w := topology.NewWrappedButterfly(8)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		side := randomBisection(w.N(), rng)
		before := cut.New(w.Graph, append([]bool(nil), side...)).Capacity()
		for r := 0; r <= w.Dim(); r++ {
			rotated := RotateCut(w, side, r)
			after := cut.New(w.Graph, rotated).Capacity()
			if after != before {
				t.Fatalf("rotation by %d changed capacity %d → %d", r, before, after)
			}
		}
	}
}

func TestRotateCutMovesLevels(t *testing.T) {
	// Rotating by log n − i moves level i's pattern to level 0.
	w := topology.NewWrappedButterfly(8)
	side := make([]bool, w.N())
	// Mark a distinctive pattern on level 2.
	for _, v := range w.LevelNodes(2) {
		if w.Column(v)%3 == 0 {
			side[v] = true
		}
	}
	rotated := RotateCut(w, side, w.Dim()-2)
	count0 := 0
	for _, v := range w.LevelNodes(0) {
		if rotated[v] {
			count0++
		}
	}
	want := 0
	for _, v := range w.LevelNodes(2) {
		if side[v] {
			want++
		}
	}
	if count0 != want {
		t.Errorf("level-0 count after rotation %d, want %d", count0, want)
	}
}

func TestSplitPreservesCapacity(t *testing.T) {
	w := topology.NewWrappedButterfly(16)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		side := randomBisection(w.N(), rng)
		before := cut.New(w.Graph, append([]bool(nil), side...)).Capacity()
		b, bSide := SplitToButterfly(w, side)
		after := cut.New(b.Graph, bSide).Capacity()
		if after != before {
			t.Fatalf("transmutation changed capacity %d → %d", before, after)
		}
	}
}

func TestPipelineOnExactMinimumCuts(t *testing.T) {
	// The executable Lemma 3.2 proof: the exact minimum bisection of Wn
	// transmutes into a Bn cut bisecting the inputs without capacity
	// increase, and Lemma 3.1's exact check then certifies ≥ n.
	for _, n := range []int{4, 8} {
		w := topology.NewWrappedButterfly(n)
		bis, width := exact.MinBisectionWithBound(w.Graph, n)
		if width != n {
			t.Fatalf("W%d: BW = %d", n, width)
		}
		side := make([]bool, w.N())
		for v := 0; v < w.N(); v++ {
			side[v] = bis.InS(v)
		}
		res, err := Run(w, side)
		if err != nil {
			t.Fatalf("W%d: %v", n, err)
		}
		if res.BnCapacity != res.WnCapacity {
			t.Errorf("W%d: transmutation changed capacity", n)
		}
		if res.FinalCapacity > res.WnCapacity {
			t.Errorf("W%d: rebalancing increased capacity %d → %d", n, res.WnCapacity, res.FinalCapacity)
		}
		if !res.InputBisected {
			t.Errorf("W%d: pipeline did not bisect the inputs", n)
		}
		// Lemma 3.1 then forces FinalCapacity ≥ n; combined with
		// WnCapacity = n this closes BW(Wn) = n.
		if res.FinalCapacity < n {
			t.Errorf("W%d: final capacity %d below n — contradicts Lemma 3.1", n, res.FinalCapacity)
		}
	}
}

func TestPipelineOnRandomBisections(t *testing.T) {
	// The pipeline must succeed on arbitrary bisections, not just minima.
	rng := rand.New(rand.NewSource(5))
	w := topology.NewWrappedButterfly(8)
	for trial := 0; trial < 50; trial++ {
		side := randomBisection(w.N(), rng)
		res, err := Run(w, side)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.FinalCapacity > res.WnCapacity {
			t.Fatalf("trial %d: capacity increased", trial)
		}
		if !res.InputBisected {
			t.Fatalf("trial %d: inputs not bisected", trial)
		}
		if res.FinalCapacity < 8 {
			t.Fatalf("trial %d: final capacity %d below n = 8 (Lemma 3.1 violated)", trial, res.FinalCapacity)
		}
	}
}

func TestFindSplitLevelFailsGracefully(t *testing.T) {
	// An extreme non-bisection (everything in S) has no split level.
	w := topology.NewWrappedButterfly(4)
	side := make([]bool, w.N())
	for i := range side {
		side[i] = true
	}
	if _, ok := FindSplitLevel(w, side); ok {
		t.Errorf("all-S cut should have no split level")
	}
}

func TestSplitRejectsBn(t *testing.T) {
	b := topology.NewButterfly(4)
	defer func() {
		if recover() == nil {
			t.Errorf("Bn input did not panic")
		}
	}()
	SplitToButterfly(b, make([]bool, b.N()))
}
