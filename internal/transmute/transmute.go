// Package transmute implements the cut surgery in the proof of Lemma 3.2
// (BW(Wn) = n) as an executable pipeline: given any bisection of Wn, it
//
//  1. finds a split level i such that either exactly n/2 of level i is in
//     S, or level i has an S-majority while level i+1 has an S̄-majority
//     (such a level always exists for a bisection — the paper's pigeonhole);
//  2. rotates the cut by the Wn level automorphism so the split level
//     becomes level 0;
//  3. transmutes Wn into Bn "in the standard fashion": each level-0 node
//     splits into a level-0 node (keeping its level-1 edges) and a new
//     level-(log n) node (keeping its level-(log n −1) edges), both
//     inheriting the node's side — the cut edges are preserved exactly;
//  4. rebalances level 0 of the Bn cut by repeatedly moving a majority-side
//     level-0 node that has a minority-side neighbor on level 1 (such moves
//     never increase capacity, and such a node always exists while level 0
//     is unbalanced, because any k level-0 nodes have at least k level-1
//     neighbors).
//
// The result is a cut of Bn that bisects the inputs without exceeding the
// original capacity, at which point Lemma 3.1 applies: capacity ≥ n.
// Running this pipeline on exact minimum bisections of Wn is a computed
// proof of BW(Wn) ≥ n on those instances.
package transmute

import (
	"fmt"

	"repro/internal/cut"
	"repro/internal/topology"
)

// FindSplitLevel returns a level i of Wn such that the side assignment has
// either exactly n/2 S-nodes on level i, or more than n/2 on level i and
// more than n/2 S̄-nodes on level (i+1) mod log n. For a bisection of Wn
// one always exists; ok is false otherwise.
func FindSplitLevel(w *topology.Butterfly, side []bool) (level int, ok bool) {
	if !w.Wraparound() {
		panic("transmute: split level is a Wn notion")
	}
	n := w.Inputs()
	d := w.Dim()
	counts := make([]int, d)
	for v := 0; v < w.N(); v++ {
		if side[v] {
			counts[w.Level(v)]++
		}
	}
	for i := 0; i < d; i++ {
		if counts[i] == n/2 {
			return i, true
		}
	}
	for i := 0; i < d; i++ {
		if counts[i] > n/2 && counts[(i+1)%d] < n/2 {
			return i, true
		}
	}
	return 0, false
}

// RotateCut returns the side assignment transported by r applications of
// the Wn level-rotation automorphism, so that what was level r becomes
// level 0 when r is the split level... precisely: the returned side²
// satisfies side²[σ^r(v)] = side[v] with σ the rotation sending level i to
// i+1; choosing r = log n − i moves level i to level 0.
func RotateCut(w *topology.Butterfly, side []bool, r int) []bool {
	perm := w.LevelRotationAutomorphism()
	cur := append([]bool(nil), side...)
	for step := 0; step < r; step++ {
		next := make([]bool, len(cur))
		for v, s := range cur {
			next[perm[v]] = s
		}
		cur = next
	}
	return cur
}

// SplitToButterfly transmutes a Wn side assignment into a Bn side
// assignment by splitting level 0: the Bn node ⟨w,i⟩ inherits the side of
// the Wn node ⟨w,i mod log n⟩. The Bn cut has exactly the same capacity as
// the Wn cut, because the edge sets correspond bijectively.
func SplitToButterfly(w *topology.Butterfly, side []bool) (*topology.Butterfly, []bool) {
	if !w.Wraparound() {
		panic("transmute: split expects Wn")
	}
	b := topology.NewButterfly(w.Inputs())
	bSide := make([]bool, b.N())
	for v := 0; v < b.N(); v++ {
		bSide[v] = side[w.Node(b.Column(v), b.Level(v)%w.Dim())]
	}
	return b, bSide
}

// RebalanceInputs performs the proof's final step on a Bn side assignment:
// while level 0 is unbalanced, it moves a majority-side level-0 node with a
// minority-side level-1 neighbor across, which never increases capacity.
// It returns the number of moves, or an error if no eligible node exists
// while unbalanced (which would contradict the expansion argument in the
// proof).
func RebalanceInputs(b *topology.Butterfly, side []bool) (moves int, err error) {
	n := b.Inputs()
	count := func() int {
		c := 0
		for _, v := range b.InputNodes() {
			if side[v] {
				c++
			}
		}
		return c
	}
	for {
		c := count()
		if c == n/2 {
			return moves, nil
		}
		majority := c > n/2 // move nodes out of S if S has the majority
		moved := false
		for _, v := range b.InputNodes() {
			if side[v] != majority {
				continue
			}
			// Look for a level-1 neighbor on the other side.
			hasOpposite := false
			for _, u := range b.Neighbors(v) {
				if side[u] != majority {
					hasOpposite = true
					break
				}
			}
			if !hasOpposite {
				continue
			}
			before := cut.New(b.Graph, side).Capacity()
			side[v] = !side[v]
			after := cut.New(b.Graph, side).Capacity()
			if after > before {
				// The proof only guarantees non-increase for nodes with an
				// opposite-side neighbor; this move had one, so this
				// cannot happen — but keep the check honest.
				side[v] = !side[v]
				continue
			}
			moves++
			moved = true
			break
		}
		if !moved {
			return moves, fmt.Errorf("transmute: no capacity-safe move while level 0 is unbalanced (%d of %d)", c, n)
		}
	}
}

// Result records one run of the full Lemma 3.2 pipeline.
type Result struct {
	SplitLevel    int  `json:"split_level"`
	WnCapacity    int  `json:"wn_capacity"`
	BnCapacity    int  `json:"bn_capacity"`    // after transmutation (must equal WnCapacity)
	FinalCapacity int  `json:"final_capacity"` // after rebalancing (must be ≤ WnCapacity)
	Moves         int  `json:"moves"`
	InputBisected bool `json:"input_bisected"`
}

// Run executes the whole pipeline on a bisection of Wn.
func Run(w *topology.Butterfly, side []bool) (Result, error) {
	var res Result
	res.WnCapacity = cut.New(w.Graph, append([]bool(nil), side...)).Capacity()

	lvl, ok := FindSplitLevel(w, side)
	if !ok {
		return res, fmt.Errorf("transmute: no split level (cut is not a bisection?)")
	}
	res.SplitLevel = lvl
	rotated := RotateCut(w, side, (w.Dim()-lvl)%w.Dim())

	b, bSide := SplitToButterfly(w, rotated)
	res.BnCapacity = cut.New(b.Graph, append([]bool(nil), bSide...)).Capacity()

	moves, err := RebalanceInputs(b, bSide)
	if err != nil {
		return res, err
	}
	res.Moves = moves
	res.FinalCapacity = cut.New(b.Graph, bSide).Capacity()
	res.InputBisected = cut.New(b.Graph, bSide).BisectsSubset(b.InputNodes())
	return res, nil
}
