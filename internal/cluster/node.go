package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/solve"
)

var (
	metricShardBatches = obs.NewCounter("cluster.shard_batches")
	metricOffersIn     = obs.NewCounter("cluster.offers_in")
	metricOffersOut    = obs.NewCounter("cluster.offers_out")
	metricPeerQueries  = obs.NewCounter("cluster.peer_queries")
)

// InternalHeader marks a request that arrived over the cluster transport.
// The serve-layer router answers such requests locally unconditionally —
// a peer must never bounce a forwarded query back out, or two nodes
// disagreeing about ownership would loop it forever.
const InternalHeader = "X-Cluster-Internal"

// maxNodeSearches bounds the per-node live-search table. Searches are
// coordinator-scoped and short; evicting the oldest merely turns late
// gossip for it into a no-op.
const maxNodeSearches = 16

// Node is one cluster peer's RPC surface: it executes shard batches of
// distributed expansion searches against a per-search incumbent, absorbs
// and answers incumbent gossip, and dispatches forwarded serve queries
// into the local serve mux. Wire it to a listener with ServeTransport
// (TCP) or SimNet.Register (tests).
type Node struct {
	addr    string
	workers int
	local   http.Handler
	tr      Transport

	mu       sync.Mutex
	searches map[uint64]*nodeSearch
	order    []uint64
}

type nodeSearch struct {
	g      *graph.Graph
	spec   exact.ExpansionShardSpec
	si     *exact.ShardIncumbent
	id     uint64
	origin string
	mu     sync.Mutex // guards origin
}

// NewNode builds a peer. local is the node's serve mux for forwarded
// queries (nil rejects them); tr, when non-nil, carries push-gossip of
// local incumbent improvements back to each search's coordinator;
// workers bounds one shard batch's search goroutines (≤0: GOMAXPROCS).
func NewNode(addr string, local http.Handler, tr Transport, workers int) *Node {
	return &Node{
		addr:     addr,
		workers:  workers,
		local:    local,
		tr:       tr,
		searches: make(map[uint64]*nodeSearch),
	}
}

// Addr returns the node's cluster address.
func (n *Node) Addr() string { return n.addr }

// Handle is the node's transport handler.
func (n *Node) Handle(ctx context.Context, t MsgType, body []byte) (MsgType, []byte, error) {
	switch t {
	case msgShards:
		return n.handleShards(ctx, body)
	case msgOffer:
		return n.handleOffer(body)
	case msgQuery:
		return n.handleQuery(ctx, body)
	}
	return "", nil, fmt.Errorf("cluster: node %s: unknown message type %q", n.addr, t)
}

// search returns the live state of searchID, creating it on first
// contact. The incumbent's improvement hook push-gossips to the search's
// origin, so the coordinator hears mid-batch improvements without
// waiting for the batch reply.
func (n *Node) search(m shardsMsg, g *graph.Graph, spec exact.ExpansionShardSpec) *nodeSearch {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ns, ok := n.searches[m.SearchID]; ok {
		if m.Origin != "" {
			ns.mu.Lock()
			ns.origin = m.Origin
			ns.mu.Unlock()
		}
		return ns
	}
	ns := &nodeSearch{g: g, spec: spec, id: m.SearchID, origin: m.Origin}
	ns.si = exact.NewShardIncumbent(g, spec, func(val int, set []int) {
		n.gossip(ns, val, set)
	})
	n.searches[m.SearchID] = ns
	n.order = append(n.order, m.SearchID)
	if len(n.order) > maxNodeSearches {
		delete(n.searches, n.order[0])
		n.order = n.order[1:]
	}
	return ns
}

// gossip pushes one locally found improvement to the search's origin,
// best-effort: a lost offer only costs pruning power, never correctness,
// so there are no retries and failures are silent.
func (n *Node) gossip(ns *nodeSearch, val int, set []int) {
	if n.tr == nil {
		return
	}
	ns.mu.Lock()
	origin := ns.origin
	ns.mu.Unlock()
	if origin == "" || origin == n.addr {
		return
	}
	body := offerMsg{SearchID: ns.id, Best: int64(val), Witness: set}.encode()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		metricOffersOut.Inc()
		_, _, _ = call(ctx, n.tr, origin, msgOffer, body)
	}()
}

func (n *Node) handleShards(ctx context.Context, body []byte) (MsgType, []byte, error) {
	m, err := decodeShardsMsg(body)
	if err != nil {
		return "", nil, err
	}
	g, err := ParseGraphSpec(m.Graph)
	if err != nil {
		return "", nil, err
	}
	spec := exact.ExpansionShardSpec{K: m.K, Edge: m.Edge, Root: m.Root, PrefixDepth: m.PrefixDepth}
	if err := spec.Validate(g); err != nil {
		return "", nil, err
	}
	count := exact.ExpansionShardCount(g, spec)
	for _, id := range m.IDs {
		if id < 0 || id >= count {
			return "", nil, fmt.Errorf("cluster: node %s: shard id %d out of range [0, %d)", n.addr, id, count)
		}
	}
	metricShardBatches.Inc()
	ns := n.search(m, g, spec)
	if m.Witness != nil {
		ns.si.Offer(int(m.Best), m.Witness)
	}
	mon := solve.Start(solve.Options{Ctx: ctx, Name: "cluster.shards"})
	out := exact.SearchExpansionShards(g, spec, m.IDs, n.workers, ns.si, mon)
	mon.Close()
	best, wit := ns.si.Best()
	return msgShardsOK, shardsOK{
		Complete: out.Complete,
		Best:     int64(best),
		Witness:  wit,
		Explored: out.Explored,
		Pruned:   out.Pruned,
	}.encode(), nil
}

func (n *Node) handleOffer(body []byte) (MsgType, []byte, error) {
	m, err := decodeOfferMsg(body)
	if err != nil {
		return "", nil, err
	}
	metricOffersIn.Inc()
	n.mu.Lock()
	ns, ok := n.searches[m.SearchID]
	n.mu.Unlock()
	if !ok {
		return msgOfferOK, offerOK{Known: false}.encode(), nil
	}
	if m.Witness != nil {
		ns.si.Offer(int(m.Best), m.Witness)
	}
	best, wit := ns.si.Best()
	return msgOfferOK, offerOK{Known: true, Best: int64(best), Witness: wit}.encode(), nil
}

// handleQuery answers a forwarded serve query through the node's own
// mux: the same parse → cache → coalesce → solve path a direct request
// takes, so the relayed body is byte-identical to asking this node
// directly. The internal marker stops the local router from forwarding
// it again.
func (n *Node) handleQuery(ctx context.Context, body []byte) (MsgType, []byte, error) {
	m, err := decodeQueryMsg(body)
	if err != nil {
		return "", nil, err
	}
	if n.local == nil {
		return "", nil, fmt.Errorf("cluster: node %s serves no queries", n.addr)
	}
	metricPeerQueries.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.Path+"?"+m.RawQuery, nil)
	if err != nil {
		return "", nil, fmt.Errorf("cluster: rebuilding forwarded query: %w", err)
	}
	req.Header.Set(InternalHeader, "1")
	rec := &responseRecorder{status: http.StatusOK, header: make(http.Header)}
	n.local.ServeHTTP(rec, req)
	return msgQueryOK, queryOK{
		Status: uint32(rec.status),
		Source: rec.header.Get("X-Cache"),
		Body:   rec.body.Bytes(),
	}.encode(), nil
}

// responseRecorder captures one in-process dispatch into the serve mux.
type responseRecorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(status int) { r.status = status }

func (r *responseRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }
