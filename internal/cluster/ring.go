package cluster

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/topology"
)

// NodeID derives a peer's 64-bit identity from its address — fnv64a, so
// every party computes the same ID table from the same -peers list with
// no join protocol.
func NodeID(addr string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: the per-(node, key) score function
// of the rendezvous hash and the simnet's drop stream generator.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Ring is a rendezvous (highest-random-weight) hash over a fixed peer
// list: each key belongs to the alive peer with the maximal mixed
// (nodeID, keyHash) score. Unlike a mod-N ring, removing a dead peer
// reassigns only that peer's keys — every other key keeps its owner, so
// peer caches stay warm through failures.
type Ring struct {
	addrs []string
	ids   []uint64
}

// NewRing builds a ring over addrs (duplicates dropped, order kept).
func NewRing(addrs []string) *Ring {
	r := &Ring{}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		r.addrs = append(r.addrs, a)
		r.ids = append(r.ids, NodeID(a))
	}
	return r
}

// Addrs returns the ring membership in construction order.
func (r *Ring) Addrs() []string {
	out := make([]string, len(r.addrs))
	copy(out, r.addrs)
	return out
}

// Owner returns the alive peer owning key. alive == nil means all peers
// are alive; ok is false when no alive peer exists.
func (r *Ring) Owner(key string, alive func(addr string) bool) (string, bool) {
	kh := NodeID(key)
	best, bestScore, ok := "", uint64(0), false
	for i, addr := range r.addrs {
		if alive != nil && !alive(addr) {
			continue
		}
		score := mix64(r.ids[i] ^ kh)
		if !ok || score > bestScore || (score == bestScore && addr < best) {
			best, bestScore, ok = addr, score, true
		}
	}
	return best, ok
}

// GraphSpec names the instance of a distributed search so every peer
// reconstructs the identical graph: "wn:N" (wrapped butterfly WN) or
// "bn:N" (ordinary butterfly BN).
func GraphSpec(wrapped bool, n int) string {
	if wrapped {
		return "wn:" + strconv.Itoa(n)
	}
	return "bn:" + strconv.Itoa(n)
}

// ParseGraphSpec rebuilds the graph a spec names. Sizes are strictly
// validated before construction — a corrupted or hostile spec must cost
// an error, not an arbitrary allocation.
func ParseGraphSpec(spec string) (*graph.Graph, error) {
	fam, num, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("cluster: graph spec %q: want family:n", spec)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 2 || n > 1<<14 || n&(n-1) != 0 {
		return nil, fmt.Errorf("cluster: graph spec %q: n must be a power of two in [2, %d]", spec, 1<<14)
	}
	switch fam {
	case "wn":
		if n < 4 {
			return nil, fmt.Errorf("cluster: graph spec %q: wrapped butterfly needs n ≥ 4", spec)
		}
		return topology.NewWrappedButterfly(n).Graph, nil
	case "bn":
		return topology.NewButterfly(n).Graph, nil
	}
	return nil, fmt.Errorf("cluster: graph spec %q: unknown family %q", spec, fam)
}
