package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/obs"
)

var (
	metricBatchesDone   = obs.NewCounter("cluster.batches_done")
	metricBatchesStolen = obs.NewCounter("cluster.batches_stolen")
	metricPeersDeclared = obs.NewCounter("cluster.peers_declared_dead")
	metricGossipRelayed = obs.NewCounter("cluster.gossip_relayed")
)

// CoordinatorConfig tunes the distributed search scheduler.
type CoordinatorConfig struct {
	// Self is this coordinator's own transport address: the Origin peers
	// push mid-batch incumbent improvements to. Register Handle at this
	// address; "" disables push gossip (bounds still flow via batch
	// replies).
	Self string
	// Peers are the worker node addresses.
	Peers []string
	// Transport carries every exchange.
	Transport Transport
	// CallTimeout bounds one shard-batch RPC; a batch not answered in
	// time is requeued to another peer — the work-steal (≤0: 60s).
	CallTimeout time.Duration
	// Retries is how many consecutive failures a peer gets before it is
	// declared dead and its worker loop exits (≤0: 3). Each batch attempt
	// already retries transport drops internally.
	Retries int
	// BatchShards is the steal granularity: shards per batch (≤0: spread
	// the shard count over 4 batches per peer).
	BatchShards int
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.CallTimeout <= 0 {
		c.CallTimeout = 60 * time.Second
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	return c
}

// Coordinator distributes exact expansion searches: it partitions the
// BFS-prefix shard enumeration into batches, feeds them to per-peer
// dispatch loops over a shared queue (fast peers drain what stragglers
// never pull — the scheduling half of work stealing), requeues batches
// whose peer timed out or died (the recovery half), and maintains the
// global incumbent — every improvement heard from any peer is relayed to
// all others, so each peer prunes against the cluster-wide best witness.
type Coordinator struct {
	cfg CoordinatorConfig
	seq atomic.Uint64

	mu   sync.Mutex
	runs map[uint64]*searchRun
}

type searchRun struct {
	si    *exact.ShardIncumbent
	coord *Coordinator
	id    uint64
	peers []string
}

// NewCoordinator builds a coordinator over cfg's peer set.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{cfg: cfg.withDefaults(), runs: make(map[uint64]*searchRun)}
}

// Handle is the coordinator's transport handler: it absorbs pushed
// incumbent offers into the matching live search and relays improvements
// onward. Register it at cfg.Self on the shared transport.
func (c *Coordinator) Handle(ctx context.Context, t MsgType, body []byte) (MsgType, []byte, error) {
	if t != msgOffer {
		return "", nil, fmt.Errorf("cluster: coordinator handles only offers, got %q", t)
	}
	m, err := decodeOfferMsg(body)
	if err != nil {
		return "", nil, err
	}
	metricOffersIn.Inc()
	c.mu.Lock()
	run, ok := c.runs[m.SearchID]
	c.mu.Unlock()
	if !ok {
		return msgOfferOK, offerOK{Known: false}.encode(), nil
	}
	if m.Witness != nil && run.si.Offer(int(m.Best), m.Witness) {
		run.relay(ctx, int(m.Best), m.Witness, "")
	}
	best, wit := run.si.Best()
	return msgOfferOK, offerOK{Known: true, Best: int64(best), Witness: wit}.encode(), nil
}

// relay broadcasts an incumbent to every peer except skip, best-effort
// and asynchronously — a lost relay costs pruning power, not
// correctness.
func (r *searchRun) relay(ctx context.Context, best int, wit []int, skip string) {
	body := offerMsg{SearchID: r.id, Best: int64(best), Witness: wit}.encode()
	for _, addr := range r.peers {
		if addr == skip || addr == r.coord.cfg.Self {
			continue
		}
		go func(addr string) {
			octx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
			defer cancel()
			metricGossipRelayed.Inc()
			_, _, _ = call(octx, r.coord.cfg.Transport, addr, msgOffer, body)
		}(addr)
	}
}

// SearchStats reports how a distributed search went.
type SearchStats struct {
	Shards   int
	Batches  int
	Stolen   int            // batches requeued off a failed/late peer
	PerPeer  map[string]int // batches completed per peer
	Dead     []string       // peers declared dead during the search
	Explored int64
	Pruned   int64
}

// SearchResult is a certified distributed optimum: Value is exact, and
// Witness achieves it (validated against the graph before returning).
type SearchResult struct {
	Value   int
	Witness []int
	Stats   SearchStats
}

// batch is one stealable unit of work.
type batch struct {
	ids  []int
	done atomic.Bool
}

// SearchExpansion runs one exact expansion search distributed over the
// coordinator's peers. graphSpec must name g (see GraphSpec); the solve
// is exact iff every shard batch ran to exhaustion somewhere, which this
// method guarantees or fails: it returns an error when the remaining
// work outlives every peer, never a silently partial optimum.
func (c *Coordinator) SearchExpansion(ctx context.Context, g *graph.Graph, graphSpec string, spec exact.ExpansionShardSpec) (*SearchResult, error) {
	if err := spec.Validate(g); err != nil {
		return nil, err
	}
	if len(c.cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	count := exact.ExpansionShardCount(g, spec)

	run := &searchRun{
		coord: c,
		id:    mix64(NodeID(c.cfg.Self) ^ mix64(c.seq.Add(1))),
		peers: c.cfg.Peers,
	}
	// The coordinator's incumbent never records locally (it only absorbs
	// Offers), so improvements are relayed at the call sites where Offer
	// reports movement — no hook needed.
	run.si = exact.NewShardIncumbent(g, spec, nil)
	c.mu.Lock()
	c.runs[run.id] = run
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.runs, run.id)
		c.mu.Unlock()
	}()

	batchSize := c.cfg.BatchShards
	if batchSize <= 0 {
		batchSize = (count + 4*len(c.cfg.Peers) - 1) / (4 * len(c.cfg.Peers))
		if batchSize < 1 {
			batchSize = 1
		}
	}
	var batches []*batch
	for lo := 0; lo < count; lo += batchSize {
		hi := lo + batchSize
		if hi > count {
			hi = count
		}
		ids := make([]int, 0, hi-lo)
		for id := lo; id < hi; id++ {
			ids = append(ids, id)
		}
		batches = append(batches, &batch{ids: ids})
	}

	// The queue holds every undone batch exactly once; its capacity means
	// a requeue can never block a dispatch loop.
	queue := make(chan *batch, len(batches))
	for _, b := range batches {
		queue <- b
	}
	var (
		remaining   = int64(len(batches))
		allDone     = make(chan struct{})
		workersLive = int64(len(c.cfg.Peers))
		workersGone = make(chan struct{})
		statsMu     sync.Mutex
		stats       = SearchStats{Shards: count, Batches: len(batches), PerPeer: make(map[string]int)}
	)

	sctx, cancelSearch := context.WithCancel(ctx)
	defer cancelSearch()

	var wg sync.WaitGroup
	for _, addr := range c.cfg.Peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			defer func() {
				if atomic.AddInt64(&workersLive, -1) == 0 {
					close(workersGone)
				}
			}()
			failures := 0
			for {
				var b *batch
				select {
				case b = <-queue:
				case <-allDone:
					return
				case <-sctx.Done():
					return
				}
				if b.done.Load() {
					continue
				}
				best, wit := run.si.Best()
				msg := shardsMsg{
					SearchID:    run.id,
					Graph:       graphSpec,
					K:           spec.K,
					Root:        spec.Root,
					PrefixDepth: spec.PrefixDepth,
					Edge:        spec.Edge,
					Origin:      c.cfg.Self,
					Best:        int64(best),
					Witness:     wit,
					IDs:         b.ids,
				}
				_, rb, err := callRetry(sctx, c.cfg.Transport, addr, msgShards, msg.encode(), 2, c.cfg.CallTimeout)
				var reply shardsOK
				if err == nil {
					reply, err = decodeShardsOK(rb)
				}
				if err == nil && !reply.Complete {
					err = fmt.Errorf("cluster: peer %s abandoned batch", addr)
				}
				if err != nil {
					// Give the batch back: whichever peer pulls it next
					// has stolen it. The RPC may still be running on a
					// merely slow peer — duplicate execution is safe, the
					// incumbent is monotone and completion is CAS-guarded.
					queue <- b
					if sctx.Err() != nil {
						return
					}
					metricBatchesStolen.Inc()
					statsMu.Lock()
					stats.Stolen++
					statsMu.Unlock()
					failures++
					if failures >= c.cfg.Retries {
						metricPeersDeclared.Inc()
						statsMu.Lock()
						stats.Dead = append(stats.Dead, addr)
						statsMu.Unlock()
						return
					}
					continue
				}
				failures = 0
				if reply.Witness != nil && run.si.Offer(int(reply.Best), reply.Witness) {
					run.relay(sctx, int(reply.Best), reply.Witness, addr)
				}
				statsMu.Lock()
				stats.Explored += reply.Explored
				stats.Pruned += reply.Pruned
				statsMu.Unlock()
				if b.done.CompareAndSwap(false, true) {
					metricBatchesDone.Inc()
					statsMu.Lock()
					stats.PerPeer[addr]++
					statsMu.Unlock()
					if atomic.AddInt64(&remaining, -1) == 0 {
						close(allDone)
					}
				}
			}
		}(addr)
	}

	var err error
	select {
	case <-allDone:
	case <-workersGone:
		if atomic.LoadInt64(&remaining) > 0 {
			err = fmt.Errorf("cluster: %d of %d batches unfinished: every peer dead or exhausted",
				atomic.LoadInt64(&remaining), len(batches))
		}
	case <-ctx.Done():
		err = ctx.Err()
	}
	cancelSearch()
	wg.Wait()
	if err != nil {
		return nil, err
	}

	best, wit := run.si.Best()
	if wit == nil || len(wit) != spec.K {
		return nil, fmt.Errorf("cluster: search finished without a %d-node witness", spec.K)
	}
	var achieved int
	if spec.Edge {
		achieved = cut.EdgeBoundary(g, wit)
	} else {
		achieved = len(cut.NodeBoundary(g, wit))
	}
	if achieved != best {
		return nil, fmt.Errorf("cluster: witness achieves %d but incumbent claims %d — wire corruption", achieved, best)
	}
	sort.Ints(wit)
	stats.Dead = dedupeStrings(stats.Dead)
	return &SearchResult{Value: best, Witness: wit, Stats: stats}, nil
}

func dedupeStrings(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	sort.Strings(in)
	out := in[:1]
	for _, s := range in[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
