package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrSimDropped is a simulated lost message. When the request direction
// drops, the handler never ran; when the reply direction drops, the
// handler DID run and its side effects stand — exactly the asymmetry
// that makes retried RPCs demand idempotent handlers, which the seeded
// sim tests exercise on purpose.
var ErrSimDropped = errors.New("cluster: sim: message dropped")

// SimNet is the deterministic in-process network harness: every peer is
// a registered handler, every call round-trips through the real wire
// codec (encode → decode both directions, so framing bugs surface in sim
// tests too), and message loss comes from one seeded splitmix64 stream.
// Peers can be killed and revived to model crashes. Safe for concurrent
// use; the drop stream is serialized under the lock, so a fixed seed
// yields a reproducible loss *rate* while concurrency decides which
// particular calls lose the draw.
type SimNet struct {
	mu       sync.Mutex
	handlers map[string]Handler
	down     map[string]bool
	drop     float64
	rng      uint64
}

// NewSimNet builds a harness dropping each message direction
// independently with probability drop, from the stream seeded by seed.
func NewSimNet(seed uint64, drop float64) *SimNet {
	return &SimNet{
		handlers: make(map[string]Handler),
		down:     make(map[string]bool),
		drop:     drop,
		rng:      seed,
	}
}

// Register attaches addr's handler (a peer joining the simulated net).
func (s *SimNet) Register(addr string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[addr] = h
}

// SetDown kills or revives a peer. Calls to a down peer fail with
// ErrPeerDown — a refused connection, not a timeout.
func (s *SimNet) SetDown(addr string, down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down[addr] = down
}

// coin advances the seeded stream one step under the lock.
func (s *SimNet) coin() bool {
	s.rng = mix64(s.rng + 0x9e3779b97f4a7c15)
	return s.drop > 0 && float64(s.rng>>11)/float64(1<<53) < s.drop
}

func (s *SimNet) Call(ctx context.Context, addr string, t MsgType, body []byte) (MsgType, []byte, error) {
	if ctx.Err() != nil {
		return "", nil, ctx.Err()
	}
	// Round-trip the request through the real frame codec: the sim must
	// not be able to pass bytes the socket transport would reject.
	rt, rb, err := decodeFrame(encodeFrame(t, body))
	if err != nil {
		return "", nil, err
	}
	s.mu.Lock()
	h, ok := s.handlers[addr]
	down := s.down[addr]
	dropReq := s.coin()
	dropReply := s.coin()
	s.mu.Unlock()
	if !ok || down {
		return "", nil, fmt.Errorf("%w: %s (sim)", ErrPeerDown, addr)
	}
	if dropReq {
		metricDropped.Inc()
		return "", nil, fmt.Errorf("%w (request to %s)", ErrSimDropped, addr)
	}
	ht, hb, herr := h(ctx, rt, rb)
	if herr != nil {
		ht, hb = msgErr, errMsg{Msg: herr.Error()}.encode()
	}
	if dropReply {
		metricDropped.Inc()
		return "", nil, fmt.Errorf("%w (reply from %s)", ErrSimDropped, addr)
	}
	return decodeFrame(encodeFrame(ht, hb))
}
