package cluster

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/codec"
)

func sampleShardsMsg() shardsMsg {
	return shardsMsg{
		SearchID:    0xdeadbeefcafe,
		Graph:       "wn:16",
		K:           12,
		Root:        3,
		PrefixDepth: 8,
		Edge:        true,
		Origin:      "127.0.0.1:7001",
		Best:        17,
		Witness:     []int{0, 4, 9, 12},
		IDs:         []int{0, 1, 2, 5, 8, 13, 21, 34},
	}
}

// TestWireRoundTrip drives every message type through the full frame
// pipeline: encode body → frame → decode frame → decode body, asserting
// field-exact recovery (including nil-witness and negative sentinels).
func TestWireRoundTrip(t *testing.T) {
	check := func(name string, typ MsgType, body []byte, decode func([]byte) (any, error), want any) {
		t.Helper()
		frame := encodeFrame(typ, body)
		gotType, gotBody, err := decodeFrame(frame)
		if err != nil {
			t.Fatalf("%s: decodeFrame: %v", name, err)
		}
		if gotType != typ {
			t.Fatalf("%s: type %q, want %q", name, gotType, typ)
		}
		got, err := decode(gotBody)
		if err != nil {
			t.Fatalf("%s: decode body: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: round-trip\n got %#v\nwant %#v", name, got, want)
		}
	}

	q := queryMsg{Path: "/v1/expansion", RawQuery: "kind=wn&n=16&d=edge&kmax=12"}
	check("query", msgQuery, q.encode(),
		func(b []byte) (any, error) { return decodeQueryMsg(b) }, q)

	qok := queryOK{Status: 200, Source: "hit", Body: []byte(`{"results":[]}`)}
	check("query.ok", msgQueryOK, qok.encode(),
		func(b []byte) (any, error) { return decodeQueryOK(b) }, qok)

	sm := sampleShardsMsg()
	check("shards", msgShards, sm.encode(),
		func(b []byte) (any, error) { return decodeShardsMsg(b) }, sm)

	smNil := sampleShardsMsg()
	smNil.Witness = nil // no incumbent yet: witness must survive as nil, not []int{}
	smNil.Best = -1
	check("shards/nil-witness", msgShards, smNil.encode(),
		func(b []byte) (any, error) { return decodeShardsMsg(b) }, smNil)

	sok := shardsOK{Complete: true, Best: 9, Witness: []int{1, 2, 3}, Explored: 123456, Pruned: 99}
	check("shards.ok", msgShardsOK, sok.encode(),
		func(b []byte) (any, error) { return decodeShardsOK(b) }, sok)

	om := offerMsg{SearchID: 7, Best: 11, Witness: []int{8, 16, 24}}
	check("offer", msgOffer, om.encode(),
		func(b []byte) (any, error) { return decodeOfferMsg(b) }, om)

	ook := offerOK{Known: true, Best: 11, Witness: []int{8, 16, 24}}
	check("offer.ok", msgOfferOK, ook.encode(),
		func(b []byte) (any, error) { return decodeOfferOK(b) }, ook)

	em := errMsg{Msg: "graph spec \"wn:3\" rejected"}
	check("err", msgErr, em.encode(),
		func(b []byte) (any, error) { return decodeErrMsg(b) }, em)
}

// TestWireFrameTruncation cuts a frame at every byte length. A frame is
// exactly one record, so unlike a multi-record stream there is no valid
// shorter prefix: every truncation must be an ErrWire, never a panic and
// never a silently shorter message.
func TestWireFrameTruncation(t *testing.T) {
	frame := encodeFrame(msgShards, sampleShardsMsg().encode())
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := decodeFrame(frame[:cut])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", cut, len(frame))
		}
		if !errors.Is(err, ErrWire) {
			t.Fatalf("truncation to %d bytes: error %v is not ErrWire", cut, err)
		}
	}
}

// TestWireFrameByteFlips corrupts every byte of a frame with two flip
// patterns and demands the full decode pipeline (frame + body) reject it.
// The only exemption is the codec stream header's two reserved bytes
// (offsets 6 and 7): they are not CRC-covered and carry no meaning, so a
// flip there must still decode — to exactly the original message.
func TestWireFrameByteFlips(t *testing.T) {
	orig := sampleShardsMsg()
	frame := encodeFrame(msgShards, orig.encode())
	reserved := map[int]bool{6: true, 7: true}
	for i := 0; i < len(frame); i++ {
		for _, mask := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= mask
			typ, body, err := decodeFrame(mut)
			var got shardsMsg
			if err == nil {
				got, err = decodeShardsMsg(body)
			}
			if reserved[i] {
				if err != nil {
					t.Fatalf("flip 0x%02x at reserved byte %d: %v", mask, i, err)
				}
				if typ != msgShards || !reflect.DeepEqual(got, orig) {
					t.Fatalf("flip 0x%02x at reserved byte %d altered the message", mask, i)
				}
				continue
			}
			if err == nil {
				// The flip decoded: silent corruption unless it is a
				// perfect reconstruction, which a single flip cannot be.
				t.Fatalf("flip 0x%02x at byte %d/%d went undetected (decoded %#v)",
					mask, i, len(frame), got)
			}
			if !errors.Is(err, ErrWire) {
				t.Fatalf("flip 0x%02x at byte %d: error %v is not ErrWire", mask, i, err)
			}
		}
	}
}

// TestWireBodyDecodersRejectMutations attacks the body decoders below the
// frame CRC (as a handler would see bodies if framing were ever bypassed):
// every strict prefix of a valid body and every single-byte flip must
// produce an error or a decode — never a panic — and truncations in
// particular must always error, because every message ends in
// length-prefixed fields that demand their declared bytes.
func TestWireBodyDecodersRejectMutations(t *testing.T) {
	cases := []struct {
		name   string
		body   []byte
		decode func([]byte) error
	}{
		{"query", queryMsg{Path: "/v1/bisection", RawQuery: "network=wn&n=16"}.encode(),
			func(b []byte) error { _, err := decodeQueryMsg(b); return err }},
		{"query.ok", queryOK{Status: 200, Source: "miss", Body: []byte("{}")}.encode(),
			func(b []byte) error { _, err := decodeQueryOK(b); return err }},
		{"shards", sampleShardsMsg().encode(),
			func(b []byte) error { _, err := decodeShardsMsg(b); return err }},
		{"shards.ok", shardsOK{Complete: true, Best: 4, Witness: []int{1}, Explored: 10, Pruned: 2}.encode(),
			func(b []byte) error { _, err := decodeShardsOK(b); return err }},
		{"offer", offerMsg{SearchID: 1, Best: 3, Witness: []int{0, 1}}.encode(),
			func(b []byte) error { _, err := decodeOfferMsg(b); return err }},
		{"offer.ok", offerOK{Known: false, Best: -1}.encode(),
			func(b []byte) error { _, err := decodeOfferOK(b); return err }},
		{"err", errMsg{Msg: "boom"}.encode(),
			func(b []byte) error { _, err := decodeErrMsg(b); return err }},
	}
	for _, tc := range cases {
		if err := tc.decode(tc.body); err != nil {
			t.Fatalf("%s: pristine body rejected: %v", tc.name, err)
		}
		for cut := 0; cut < len(tc.body); cut++ {
			if err := tc.decode(tc.body[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes decoded", tc.name, cut, len(tc.body))
			}
		}
		for i := 0; i < len(tc.body); i++ {
			for _, mask := range []byte{0x01, 0x80, 0xff} {
				mut := append([]byte(nil), tc.body...)
				mut[i] ^= mask
				_ = tc.decode(mut) // must not panic; error or benign decode both fine
			}
		}
		// Trailing garbage is a framing disagreement, not padding.
		if err := tc.decode(append(append([]byte(nil), tc.body...), 0)); err == nil {
			t.Fatalf("%s: trailing byte accepted", tc.name)
		}
	}
}

// TestWireHostileLengthPrefixes plants maximal length prefixes and checks
// they cost an error, not a giant allocation or a panic.
func TestWireHostileLengthPrefixes(t *testing.T) {
	var w wbuf
	w.u32(0xffffffff) // string "length" far beyond maxWireString
	if _, err := decodeQueryMsg(w.b); !errors.Is(err, ErrWire) {
		t.Fatalf("hostile string length: %v", err)
	}
	var w2 wbuf
	w2.u64(1)
	w2.i64(0)
	w2.u32(0xffffffff) // witness count far beyond maxWireInts
	if _, err := decodeOfferMsg(w2.b); !errors.Is(err, ErrWire) {
		t.Fatalf("hostile int-list length: %v", err)
	}
	var w3 wbuf
	w3.u8(7) // not a boolean
	w3.i64(0)
	w3.ints(nil)
	w3.i64(0)
	w3.i64(0)
	if _, err := decodeShardsOK(w3.b); !errors.Is(err, ErrWire) {
		t.Fatalf("non-boolean byte: %v", err)
	}
}

// TestWireFrameStrictness pins frame-level invariants: two records in one
// frame, a foreign record kind, and an empty frame are all rejected.
func TestWireFrameStrictness(t *testing.T) {
	if _, _, err := decodeFrame(nil); !errors.Is(err, ErrWire) {
		t.Fatalf("empty frame: %v", err)
	}

	// Two records: valid codec stream, invalid cluster frame.
	var buf frameBuilder
	buf.add(codec.Record{Kind: codec.KindClusterMsg, Key: string(msgErr), Payload: errMsg{Msg: "a"}.encode()})
	buf.add(codec.Record{Kind: codec.KindClusterMsg, Key: string(msgErr), Payload: errMsg{Msg: "b"}.encode()})
	if _, _, err := decodeFrame(buf.bytes()); !errors.Is(err, ErrWire) {
		t.Fatalf("two-record frame: %v", err)
	}

	// Foreign record kind inside a structurally valid stream.
	var buf2 frameBuilder
	buf2.add(codec.Record{Kind: codec.KindManifest, Key: "x", Payload: []byte("y")})
	if _, _, err := decodeFrame(buf2.bytes()); !errors.Is(err, ErrWire) {
		t.Fatalf("foreign record kind: %v", err)
	}
}

// frameBuilder assembles multi-record codec streams for strictness tests.
type frameBuilder struct {
	started bool
	w       *codec.Writer
	buf     *writerBuf
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (f *frameBuilder) add(rec codec.Record) {
	if !f.started {
		f.buf = &writerBuf{}
		w, err := codec.NewWriter(f.buf)
		if err != nil {
			panic(err)
		}
		f.w = w
		f.started = true
	}
	if _, err := f.w.Write(rec); err != nil {
		panic(err)
	}
}

func (f *frameBuilder) bytes() []byte { return f.buf.b }
