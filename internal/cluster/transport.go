package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/obs"
)

var (
	metricCalls      = obs.NewCounter("cluster.calls")
	metricCallErrors = obs.NewCounter("cluster.call_errors")
	metricDropped    = obs.NewCounter("cluster.sim_dropped")
)

// ErrPeerDown is a connection-level refusal: the peer is not listening
// (dead, or simnet-killed). Distinct from a timeout so callers can mark
// peers dead faster on refusal than on silence.
var ErrPeerDown = errors.New("cluster: peer down")

// Handler serves one inbound message and returns the reply. A returned
// error travels to the caller as a RemoteError.
type Handler func(ctx context.Context, t MsgType, body []byte) (MsgType, []byte, error)

// Transport calls a peer: one request message, one reply message. The
// TCP implementation backs real deployments; SimNet backs deterministic
// lossy-cluster tests. Implementations must be safe for concurrent use.
type Transport interface {
	Call(ctx context.Context, addr string, t MsgType, body []byte) (MsgType, []byte, error)
}

// call performs one transport exchange with the shared bookkeeping:
// metrics, msgErr unwrapping.
func call(ctx context.Context, tr Transport, addr string, t MsgType, body []byte) (MsgType, []byte, error) {
	metricCalls.Inc()
	rt, rb, err := tr.Call(ctx, addr, t, body)
	if err != nil {
		metricCallErrors.Inc()
		return "", nil, err
	}
	if rt == msgErr {
		metricCallErrors.Inc()
		em, derr := decodeErrMsg(rb)
		if derr != nil {
			return "", nil, derr
		}
		return "", nil, &RemoteError{Msg: em.Msg}
	}
	return rt, rb, nil
}

// callRetry retries a call up to attempts times under a per-attempt
// timeout — the unit of fault tolerance every cluster exchange goes
// through. Context cancellation is terminal; transport failures (drops,
// timeouts, refusals) are retried.
func callRetry(ctx context.Context, tr Transport, addr string, t MsgType, body []byte, attempts int, timeout time.Duration) (MsgType, []byte, error) {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if ctx.Err() != nil {
			return "", nil, ctx.Err()
		}
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, timeout)
		}
		var rt MsgType
		var rb []byte
		rt, rb, err = call(actx, tr, addr, t, body)
		cancel()
		if err == nil {
			return rt, rb, nil
		}
		var rerr *RemoteError
		if errors.As(err, &rerr) {
			// The peer handled the message and rejected it; retrying the
			// same bytes cannot succeed.
			return "", nil, err
		}
	}
	return "", nil, fmt.Errorf("cluster: %s to %s failed after %d attempts: %w", t, addr, attempts, err)
}

// TCPTransport is the socket transport: one connection per call, the
// frame written whole, the write side closed, the reply read to EOF.
// Per-call connections keep the protocol trivially correct under peer
// restarts — there is no stream state to resynchronize.
type TCPTransport struct {
	// DialTimeout bounds connection establishment (≤0: 2s). The overall
	// exchange is bounded by the caller's context.
	DialTimeout time.Duration
}

func (t *TCPTransport) Call(ctx context.Context, addr string, mt MsgType, body []byte) (MsgType, []byte, error) {
	dt := t.DialTimeout
	if dt <= 0 {
		dt = 2 * time.Second
	}
	dctx, cancel := context.WithTimeout(ctx, dt)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrPeerDown, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	if _, err := conn.Write(encodeFrame(mt, body)); err != nil {
		return "", nil, fmt.Errorf("cluster: writing to %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	reply, err := io.ReadAll(io.LimitReader(conn, maxFrameBytes+1))
	if err != nil {
		return "", nil, fmt.Errorf("cluster: reading from %s: %w", addr, err)
	}
	if len(reply) > maxFrameBytes {
		return "", nil, fmt.Errorf("%w: reply exceeds %d bytes", ErrWire, maxFrameBytes)
	}
	return decodeFrame(reply)
}

// ServeTransport answers cluster calls on ln with h until ln closes.
// Each connection is one exchange: read the request frame to EOF, run
// the handler, write the reply frame, close.
func ServeTransport(ln net.Listener, h Handler) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, h)
	}
}

func serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Minute))
	req, err := io.ReadAll(io.LimitReader(conn, maxFrameBytes+1))
	if err != nil || len(req) > maxFrameBytes {
		return
	}
	t, body, err := decodeFrame(req)
	var rt MsgType
	var rb []byte
	if err == nil {
		rt, rb, err = h(context.Background(), t, body)
	}
	if err != nil {
		rt, rb = msgErr, errMsg{Msg: err.Error()}.encode()
	}
	_, _ = conn.Write(encodeFrame(rt, rb))
}
