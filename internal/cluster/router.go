package cluster

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

var (
	metricForwarded     = obs.NewCounter("cluster.forwarded")
	metricForwardErrors = obs.NewCounter("cluster.forward_errors")
)

// Router consistent-hashes canonical serve keys across the peer ring and
// proxies each query to its owner. It implements serve.PeerRouter.
//
// Failure policy: a peer that stays unreachable through the retry budget
// is benched for a cooldown — its keys rendezvous-reassign to the
// remaining peers — and the triggering request falls back to a local
// solve, trading strict ownership for availability.
type Router struct {
	self    string
	ring    *Ring
	tr      Transport
	timeout time.Duration
	retries int

	mu        sync.Mutex
	deadUntil map[string]time.Time
}

// deadPeerCooldown is how long a failed peer stays out of the ring
// before forwarding is attempted again.
const deadPeerCooldown = 5 * time.Second

// NewRouter builds the router for one node. self must appear in peers
// for this node to own any keys; timeout bounds each forwarding attempt
// (≤0: 10s); retries is the per-request attempt budget (≤0: 2).
func NewRouter(self string, peers []string, tr Transport, timeout time.Duration, retries int) *Router {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if retries <= 0 {
		retries = 2
	}
	return &Router{
		self:      self,
		ring:      NewRing(peers),
		tr:        tr,
		timeout:   timeout,
		retries:   retries,
		deadUntil: make(map[string]time.Time),
	}
}

// Self returns this node's cluster address.
func (rt *Router) Self() string { return rt.self }

func (rt *Router) alive(addr string) bool {
	if addr == rt.self {
		return true
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return time.Now().After(rt.deadUntil[addr])
}

func (rt *Router) bench(addr string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.deadUntil[addr] = time.Now().Add(deadPeerCooldown)
}

// Owner exposes the ring decision for key among currently alive peers
// (tests and status surfaces).
func (rt *Router) Owner(key string) (string, bool) {
	return rt.ring.Owner(key, rt.alive)
}

// Route implements serve.PeerRouter.
func (rt *Router) Route(r *http.Request, key string) (*serve.PeerResponse, bool, error) {
	if r.Header.Get(InternalHeader) != "" {
		// Already forwarded once: answer here no matter what the ring
		// says, or ownership skew between peers would loop the request.
		return nil, false, nil
	}
	owner, ok := rt.ring.Owner(key, rt.alive)
	if !ok || owner == rt.self {
		return nil, false, nil
	}
	body := queryMsg{Path: r.URL.Path, RawQuery: r.URL.RawQuery}.encode()
	_, rb, err := callRetry(r.Context(), rt.tr, owner, msgQuery, body, rt.retries, rt.timeout)
	if err != nil {
		metricForwardErrors.Inc()
		rt.bench(owner)
		return nil, false, nil
	}
	reply, err := decodeQueryOK(rb)
	if err != nil {
		metricForwardErrors.Inc()
		return nil, false, err
	}
	metricForwarded.Inc()
	return &serve.PeerResponse{
		Status: int(reply.Status),
		Body:   reply.Body,
		Source: reply.Source,
		Peer:   owner,
	}, true, nil
}
