// Package cluster shards butterflyd across peers: a rendezvous-hashed
// key router forwards serve queries to their owning node, and a
// coordinator distributes one exact expansion search's BFS-prefix shards
// (internal/exact.SearchExpansionShards) over the same peers — gossiping
// the shared incumbent so every peer prunes against the globally best
// witness, and re-queueing unfinished shard batches from stragglers or
// dead peers so the solve stays exact as long as any peer survives.
//
// Every cross-node byte rides one internal/codec CRC-framed record of
// KindClusterMsg: the record key names the message type, the payload is a
// fixed little-endian body. The decoder is strict — truncation, flipped
// bytes and oversized length prefixes are errors, never panics — because
// a corrupted incumbent value would silently destroy the exactness
// guarantee the searches exist to certify.
package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/codec"
)

// MsgType names one wire message; it travels as the codec record key.
type MsgType string

const (
	// msgQuery forwards one serve API query to the peer owning its key;
	// msgQueryOK carries back the owner's verbatim response body.
	msgQuery   MsgType = "query"
	msgQueryOK MsgType = "query.ok"
	// msgShards assigns a batch of expansion prefix shards; msgShardsOK
	// reports the batch outcome and the peer's incumbent afterwards.
	msgShards   MsgType = "shards"
	msgShardsOK MsgType = "shards.ok"
	// msgOffer gossips an incumbent (value + witness); msgOfferOK answers
	// with the receiver's own current incumbent, so gossip tightens both
	// directions of every exchange.
	msgOffer   MsgType = "offer"
	msgOfferOK MsgType = "offer.ok"
	// msgErr carries a handler failure back to the caller.
	msgErr MsgType = "err"
)

// maxFrameBytes bounds one wire frame (transport read limit). Shard
// batches and manifests are far smaller; anything bigger is corruption.
const maxFrameBytes = 1 << 26

// Decode limits: a hostile or corrupted length prefix must cost an error,
// not an allocation.
const (
	maxWireString = 1 << 16
	maxWireInts   = 1 << 20
	maxWireBytes  = maxFrameBytes
)

// ErrWire classifies every malformed-message decode failure; test with
// errors.Is.
var ErrWire = errors.New("cluster: malformed wire message")

// RemoteError is a failure reported by the remote handler (as opposed to
// a transport failure reaching it).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "cluster: remote: " + e.Msg }

// encodeFrame wraps one message into a self-contained codec stream:
// header plus exactly one KindClusterMsg record.
func encodeFrame(t MsgType, body []byte) []byte {
	var buf bytes.Buffer
	w, err := codec.NewWriter(&buf)
	if err == nil {
		_, err = w.Write(codec.Record{Kind: codec.KindClusterMsg, Key: string(t), Payload: body})
	}
	if err != nil {
		// bytes.Buffer writes cannot fail; a failure here is a programming
		// error (oversized frame), which no caller constructs.
		panic("cluster: encoding frame: " + err.Error())
	}
	return buf.Bytes()
}

// decodeFrame strictly decodes one frame: exactly one KindClusterMsg
// record, nothing trailing. All codec failures surface wrapped in ErrWire.
func decodeFrame(b []byte) (MsgType, []byte, error) {
	r, err := codec.NewReader(bytes.NewReader(b))
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	rec, err := r.Next()
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	if rec.Kind != codec.KindClusterMsg {
		return "", nil, fmt.Errorf("%w: record kind %d is not a cluster message", ErrWire, rec.Kind)
	}
	if _, err := r.Next(); err != io.EOF {
		return "", nil, fmt.Errorf("%w: trailing data after message", ErrWire)
	}
	return MsgType(rec.Key), rec.Payload, nil
}

// wbuf builds message bodies: fixed-width little-endian fields, strings
// and slices length-prefixed with uint32.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)  { w.u64(uint64(v)) }
func (w *wbuf) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) raw(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}
func (w *wbuf) ints(vs []int) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.i64(int64(v))
	}
}

// rbuf decodes message bodies. The first failure latches: every later
// accessor returns zero values, and err() reports what went wrong, so
// decoders read fields unconditionally and check once.
type rbuf struct {
	b    []byte
	off  int
	fail error
}

func (r *rbuf) bad(format string, args ...any) {
	if r.fail == nil {
		r.fail = fmt.Errorf("%w: %s", ErrWire, fmt.Sprintf(format, args...))
	}
}

func (r *rbuf) take(n int) []byte {
	if r.fail != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.bad("need %d bytes at offset %d, have %d", n, r.off, len(r.b)-r.off)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *rbuf) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *rbuf) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *rbuf) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *rbuf) i64() int64 { return int64(r.u64()) }

func (r *rbuf) boolean() bool {
	switch v := r.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.bad("boolean byte %d", v)
		return false
	}
}

func (r *rbuf) str() string {
	n := r.u32()
	if n > maxWireString {
		r.bad("string length %d exceeds %d", n, maxWireString)
		return ""
	}
	return string(r.take(int(n)))
}

func (r *rbuf) raw() []byte {
	n := r.u32()
	if n > maxWireBytes {
		r.bad("byte field length %d exceeds %d", n, maxWireBytes)
		return nil
	}
	p := r.take(int(n))
	if p == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

func (r *rbuf) ints() []int {
	n := r.u32()
	if n > maxWireInts {
		r.bad("int list length %d exceeds %d", n, maxWireInts)
		return nil
	}
	if r.fail != nil || n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, int(r.i64()))
	}
	if r.fail != nil {
		return nil
	}
	return out
}

// done verifies the body was consumed exactly — trailing garbage means a
// framing disagreement, which must fail loudly.
func (r *rbuf) done() error {
	if r.fail != nil {
		return r.fail
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing body bytes", ErrWire, len(r.b)-r.off)
	}
	return nil
}

// queryMsg forwards one serve query: the endpoint path and the raw query
// string of the original request. The receiving peer answers it through
// its own serve mux, so a forwarded request and a direct one take the
// same parse → cache → solve path.
type queryMsg struct {
	Path     string
	RawQuery string
}

func (m queryMsg) encode() []byte {
	var w wbuf
	w.str(m.Path)
	w.str(m.RawQuery)
	return w.b
}

func decodeQueryMsg(b []byte) (queryMsg, error) {
	r := rbuf{b: b}
	m := queryMsg{Path: r.str(), RawQuery: r.str()}
	return m, r.done()
}

// queryOK is the owner's response, relayed verbatim: HTTP status, its
// X-Cache disposition, and the exact body bytes — so a forwarded answer
// is byte-identical to asking the owner directly.
type queryOK struct {
	Status uint32
	Source string
	Body   []byte
}

func (m queryOK) encode() []byte {
	var w wbuf
	w.u32(m.Status)
	w.str(m.Source)
	w.raw(m.Body)
	return w.b
}

func decodeQueryOK(b []byte) (queryOK, error) {
	r := rbuf{b: b}
	m := queryOK{Status: r.u32(), Source: r.str(), Body: r.raw()}
	return m, r.done()
}

// shardsMsg assigns prefix shard IDs of one distributed expansion search.
// Graph is a graph spec ("wn:16", "bn:8") every party reconstructs
// identically; SearchID scopes the peer-side incumbent; Origin, when
// non-empty, is the coordinator address the peer push-gossips local
// improvements to; Best/Witness seed the peer's bound with the
// coordinator's incumbent at dispatch time.
type shardsMsg struct {
	SearchID    uint64
	Graph       string
	K           int
	Root        int
	PrefixDepth int
	Edge        bool
	Origin      string
	Best        int64
	Witness     []int
	IDs         []int
}

func (m shardsMsg) encode() []byte {
	var w wbuf
	w.u64(m.SearchID)
	w.str(m.Graph)
	w.i64(int64(m.K))
	w.i64(int64(m.Root))
	w.i64(int64(m.PrefixDepth))
	w.boolean(m.Edge)
	w.str(m.Origin)
	w.i64(m.Best)
	w.ints(m.Witness)
	w.ints(m.IDs)
	return w.b
}

func decodeShardsMsg(b []byte) (shardsMsg, error) {
	r := rbuf{b: b}
	m := shardsMsg{
		SearchID:    r.u64(),
		Graph:       r.str(),
		K:           int(r.i64()),
		Root:        int(r.i64()),
		PrefixDepth: int(r.i64()),
		Edge:        r.boolean(),
		Origin:      r.str(),
		Best:        r.i64(),
		Witness:     r.ints(),
		IDs:         r.ints(),
	}
	return m, r.done()
}

// shardsOK reports one batch: whether every shard ran to exhaustion (only
// complete batches count toward the exactness certificate), the peer's
// incumbent after the batch, and the explored/pruned node telemetry.
type shardsOK struct {
	Complete bool
	Best     int64
	Witness  []int
	Explored int64
	Pruned   int64
}

func (m shardsOK) encode() []byte {
	var w wbuf
	w.boolean(m.Complete)
	w.i64(m.Best)
	w.ints(m.Witness)
	w.i64(m.Explored)
	w.i64(m.Pruned)
	return w.b
}

func decodeShardsOK(b []byte) (shardsOK, error) {
	r := rbuf{b: b}
	m := shardsOK{
		Complete: r.boolean(),
		Best:     r.i64(),
		Witness:  r.ints(),
		Explored: r.i64(),
		Pruned:   r.i64(),
	}
	return m, r.done()
}

// offerMsg gossips an incumbent. The witness always rides along: a bound
// without its certifying set would evaporate if the discovering peer died
// before the coordinator collected it.
type offerMsg struct {
	SearchID uint64
	Best     int64
	Witness  []int
}

func (m offerMsg) encode() []byte {
	var w wbuf
	w.u64(m.SearchID)
	w.i64(m.Best)
	w.ints(m.Witness)
	return w.b
}

func decodeOfferMsg(b []byte) (offerMsg, error) {
	r := rbuf{b: b}
	m := offerMsg{SearchID: r.u64(), Best: r.i64(), Witness: r.ints()}
	return m, r.done()
}

// offerOK answers gossip with the receiver's own incumbent. Known is
// false when the receiver holds no state for the search (already evicted,
// or never assigned a batch); the values are then meaningless.
type offerOK struct {
	Known   bool
	Best    int64
	Witness []int
}

func (m offerOK) encode() []byte {
	var w wbuf
	w.boolean(m.Known)
	w.i64(m.Best)
	w.ints(m.Witness)
	return w.b
}

func decodeOfferOK(b []byte) (offerOK, error) {
	r := rbuf{b: b}
	m := offerOK{Known: r.boolean(), Best: r.i64(), Witness: r.ints()}
	return m, r.done()
}

// errMsg carries a remote handler failure.
type errMsg struct{ Msg string }

func (m errMsg) encode() []byte {
	var w wbuf
	w.str(m.Msg)
	return w.b
}

func decodeErrMsg(b []byte) (errMsg, error) {
	r := rbuf{b: b}
	m := errMsg{Msg: r.str()}
	return m, r.done()
}
