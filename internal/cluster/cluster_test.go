package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/topology"
)

// testInstance picks the distributed-search instance: the full acceptance
// case EE(W16, 12) root-forced normally, a small cousin under the race
// detector (same machinery, an order of magnitude less search tree).
func testInstance() (*graph.Graph, string, int) {
	if raceEnabled {
		return topology.NewWrappedButterfly(8).Graph, GraphSpec(true, 8), 6
	}
	return topology.NewWrappedButterfly(16).Graph, GraphSpec(true, 16), 12
}

// simCluster wires nPeers worker nodes and one coordinator onto a fresh
// SimNet and returns both.
func simCluster(t *testing.T, sim *SimNet, nPeers int, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	for i := 0; i < nPeers; i++ {
		addr := fmt.Sprintf("peer%d:7000", i)
		cfg.Peers = append(cfg.Peers, addr)
		sim.Register(addr, NewNode(addr, nil, sim, 0).Handle)
	}
	cfg.Self = "coord:7000"
	cfg.Transport = sim
	c := NewCoordinator(cfg)
	sim.Register(cfg.Self, c.Handle)
	return c
}

// TestDistributedSearchMatchesSingleNode is the acceptance case: the same
// exact expansion search, run once in-process and once sharded over three
// simulated peers, must certify the identical optimum — equal value, and
// a witness the graph itself validates.
func TestDistributedSearchMatchesSingleNode(t *testing.T) {
	g, gspec, k := testInstance()
	wantSet, want := exact.MinEdgeExpansionParallelContaining(g, k, 0, 0)
	if len(wantSet) != k {
		t.Fatalf("single-node reference returned a %d-set, want %d", len(wantSet), k)
	}

	c := simCluster(t, NewSimNet(1, 0), 3, CoordinatorConfig{})
	spec := exact.ExpansionShardSpec{K: k, Edge: true, Root: 0}
	res, err := c.SearchExpansion(context.Background(), g, gspec, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("distributed EE = %d, single-node = %d", res.Value, want)
	}
	if len(res.Witness) != k {
		t.Fatalf("witness has %d nodes, want %d", len(res.Witness), k)
	}
	if got := cut.EdgeBoundary(g, res.Witness); got != want {
		t.Fatalf("witness achieves boundary %d, claimed optimum %d", got, want)
	}
	if res.Stats.Shards <= 1 || res.Stats.Batches <= 1 {
		t.Fatalf("search did not actually shard: %+v", res.Stats)
	}
	doneBatches := 0
	for _, n := range res.Stats.PerPeer {
		doneBatches += n
	}
	if doneBatches != res.Stats.Batches {
		t.Fatalf("per-peer batch counts sum to %d, want %d", doneBatches, res.Stats.Batches)
	}
	if len(res.Stats.Dead) != 0 || res.Stats.Stolen != 0 {
		t.Fatalf("clean network reported failures: %+v", res.Stats)
	}
	if res.Stats.Explored == 0 {
		t.Fatal("no nodes explored")
	}
}

// TestDistributedSearchLossyWithDeadPeer is the degraded acceptance case:
// 15% message loss in both directions plus one peer dead the whole run.
// The dead peer's batches must be stolen by the survivors, the peer must
// be declared dead, and the solve must still certify the exact optimum.
func TestDistributedSearchLossyWithDeadPeer(t *testing.T) {
	g, gspec, k := testInstance()
	wantSet, want := exact.MinEdgeExpansionParallelContaining(g, k, 0, 0)
	_ = wantSet

	sim := NewSimNet(42, 0.15)
	// Generous retry budget: with seeded 15% loss a *live* peer can lose
	// several consecutive coin flips; only the truly dead peer should
	// plausibly exhaust it (every call refused instantly).
	c := simCluster(t, sim, 3, CoordinatorConfig{Retries: 25, CallTimeout: 2 * time.Minute})
	dead := c.cfg.Peers[1]
	sim.SetDown(dead, true)

	spec := exact.ExpansionShardSpec{K: k, Edge: true, Root: 0}
	res, err := c.SearchExpansion(context.Background(), g, gspec, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("lossy distributed EE = %d, single-node = %d", res.Value, want)
	}
	if got := cut.EdgeBoundary(g, res.Witness); got != want {
		t.Fatalf("witness achieves boundary %d, claimed optimum %d", got, want)
	}
	if res.Stats.Stolen == 0 {
		t.Fatalf("dead peer's batches were never stolen: %+v", res.Stats)
	}
	foundDead := false
	for _, d := range res.Stats.Dead {
		if d == dead {
			foundDead = true
		}
	}
	if !foundDead {
		t.Fatalf("peer %s was down throughout but not declared dead: %+v", dead, res.Stats)
	}
	if n := res.Stats.PerPeer[dead]; n != 0 {
		t.Fatalf("dead peer credited with %d completed batches", n)
	}
}

// TestNodeOfferMonotonicityUnderLossyReplay pins the gossip safety
// property end-to-end through a lossy transport: stale, duplicated,
// reordered and worse offers — some arriving, some dropped, some retried
// after a dropped reply already applied them — can never loosen a node's
// incumbent. The incumbent is monotone non-increasing, period.
func TestNodeOfferMonotonicityUnderLossyReplay(t *testing.T) {
	sim := NewSimNet(7, 0.3)
	node := NewNode("peer0:7000", nil, sim, 0)
	sim.Register("peer0:7000", node.Handle)

	// Seed the search state with one real (tiny) batch.
	spec := exact.ExpansionShardSpec{K: 4, Edge: true, Root: 0}
	const searchID = 99
	seed := shardsMsg{
		SearchID: searchID, Graph: GraphSpec(true, 8),
		K: spec.K, Root: spec.Root, Edge: spec.Edge, Best: -1,
		IDs: []int{0},
	}
	ctx := context.Background()
	if _, _, err := callRetry(ctx, sim, "peer0:7000", msgShards, seed.encode(), 50, time.Second); err != nil {
		t.Fatal(err)
	}

	readBest := func() int {
		// An offer with no witness is a pure read: it cannot move the bound.
		probe := offerMsg{SearchID: searchID, Best: 0, Witness: nil}.encode()
		_, rb, err := callRetry(ctx, sim, "peer0:7000", msgOffer, probe, 50, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := decodeOfferOK(rb)
		if err != nil {
			t.Fatal(err)
		}
		if !ok.Known {
			t.Fatal("node forgot the search")
		}
		return int(ok.Best)
	}

	floor := readBest()
	// A witness whose boundary we can claim arbitrary values for: the
	// node trusts offers (they are validated at the coordinator before
	// certification), so any 4-set works to exercise ordering.
	wit := []int{0, 1, 2, 3}
	offers := []int{floor + 10, floor - 1, floor + 3, floor - 1, floor - 2, floor + 100, floor - 2, floor - 3, floor - 3, floor + 1}
	low := floor
	for i, v := range offers {
		msg := offerMsg{SearchID: searchID, Best: int64(v), Witness: wit}.encode()
		// Fire each offer several times through the lossy net — replay on
		// purpose; a dropped reply means the offer applied invisibly.
		for rep := 0; rep < 3; rep++ {
			_, _, _ = sim.Call(ctx, "peer0:7000", msgOffer, msg)
		}
		if v < low {
			low = v
		}
		got := readBest()
		if got > low {
			t.Fatalf("after offer #%d (%d): incumbent %d rose above running minimum %d", i, v, got, low)
		}
	}
	if got := readBest(); got != low {
		t.Fatalf("final incumbent %d, want the minimum ever offered %d", got, low)
	}
}

// TestRouterForwardingIntegration runs two full serve servers joined by a
// SimNet cluster and checks the routing contract end to end: a key owned
// by the other peer is forwarded and answered byte-identically to asking
// the owner directly, a forwarded-in request is never bounced back out,
// and a dead owner degrades to a local solve instead of an error.
func TestRouterForwardingIntegration(t *testing.T) {
	sim := NewSimNet(3, 0)
	peers := []string{"a:7000", "b:7000"}

	mkServer := func(self string) (*serve.Server, *Router) {
		rt := NewRouter(self, peers, sim, 2*time.Second, 2)
		srv := serve.New(serve.Config{Peers: rt})
		sim.Register(self, NewNode(self, srv.Handler(), sim, 0).Handle)
		return srv, rt
	}
	srvA, rtA := mkServer("a:7000")
	srvB, _ := mkServer("b:7000")
	htA := httptest.NewServer(srvA.Handler())
	htB := httptest.NewServer(srvB.Handler())
	t.Cleanup(func() {
		htA.Close()
		htB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srvA.Shutdown(ctx)
		_ = srvB.Shutdown(ctx)
	})

	fetch := func(base, query string, hdr map[string]string) (int, http.Header, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, base+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, body
	}

	// Split the candidate queries by ring ownership, computed exactly the
	// way the server does (canonical key = endpoint + "?" + request key).
	type cand struct{ query, key string }
	var ownedByA, ownedByB []cand
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		c := cand{
			query: fmt.Sprintf("/v1/bisection?network=bn&n=%d", n),
			key:   fmt.Sprintf("bisection?network=bn&n=%d&exact-nodes=32", n),
		}
		if owner, ok := rtA.Owner(c.key); !ok {
			t.Fatalf("no owner for %s", c.key)
		} else if owner == "a:7000" {
			ownedByA = append(ownedByA, c)
		} else {
			ownedByB = append(ownedByB, c)
		}
	}
	if len(ownedByA) == 0 || len(ownedByB) == 0 {
		t.Fatalf("ring put all keys on one peer: A=%v B=%v", ownedByA, ownedByB)
	}

	// A B-owned key asked of A: forwarded, attributed, byte-identical.
	q := ownedByB[0].query
	status, hdr, viaA := fetch(htA.URL, q, nil)
	if status != http.StatusOK {
		t.Fatalf("forwarded query: status %d: %s", status, viaA)
	}
	if got := hdr.Get("X-Cluster-Peer"); got != "b:7000" {
		t.Fatalf("X-Cluster-Peer = %q, want b:7000", got)
	}
	if got := hdr.Get("X-Cache"); got != "peer" {
		t.Fatalf("X-Cache = %q, want peer", got)
	}
	status, hdr, direct := fetch(htB.URL, q, nil)
	if status != http.StatusOK {
		t.Fatalf("direct query to owner: status %d", status)
	}
	// The owner solved this key when A forwarded it, so asking it
	// directly is a plain cache hit — answered before the cluster layer
	// is ever consulted, hence no peer attribution.
	if got := hdr.Get("X-Cache"); got != "hit" {
		t.Fatalf("owner's direct answer X-Cache = %q, want hit", got)
	}
	if string(viaA) != string(direct) {
		t.Fatalf("forwarded body differs from owner's:\n via A: %s\ndirect: %s", viaA, direct)
	}

	// An A-owned key asked of A: answered locally, still attributed.
	status, hdr, _ = fetch(htA.URL, ownedByA[0].query, nil)
	if status != http.StatusOK {
		t.Fatalf("local query: status %d", status)
	}
	if got := hdr.Get("X-Cluster-Peer"); got != "a:7000" {
		t.Fatalf("local key attributed to %q", got)
	}

	// Loop prevention: a request carrying the internal marker is answered
	// where it lands, even for a key the ring assigns elsewhere.
	status, hdr, _ = fetch(htA.URL, ownedByB[0].query, map[string]string{InternalHeader: "1"})
	if status != http.StatusOK {
		t.Fatalf("internal-marked query: status %d", status)
	}
	if got := hdr.Get("X-Cluster-Peer"); got != "a:7000" {
		t.Fatalf("internal-marked query was bounced to %q", got)
	}

	// Dead owner: forwarding fails, the request falls back to a local
	// solve, and the benched peer's keys reassign for the cooldown.
	if len(ownedByB) < 2 {
		t.Skip("need a second B-owned key for the dead-owner case")
	}
	sim.SetDown("b:7000", true)
	status, hdr, _ = fetch(htA.URL, ownedByB[1].query, nil)
	if status != http.StatusOK {
		t.Fatalf("query with dead owner: status %d", status)
	}
	if got := hdr.Get("X-Cluster-Peer"); got != "a:7000" {
		t.Fatalf("dead-owner fallback attributed to %q", got)
	}
	if owner, ok := rtA.Owner(ownedByB[1].key); ok && owner == "b:7000" {
		t.Fatalf("benched peer still owns its keys")
	}
}
