package cluster

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestTCPTransportLoopback drives the real socket transport against a
// real listener: a well-formed call round-trips, a handler failure comes
// back as a RemoteError (terminal — callRetry must not burn attempts on
// it), and a dead address is an immediate transport error.
func TestTCPTransportLoopback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(ln.Addr().String(), nil, nil, 0)
	serveErr := make(chan error, 1)
	go func() { serveErr <- ServeTransport(ln, node.Handle) }()
	t.Cleanup(func() {
		ln.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("ServeTransport: %v", err)
		}
	})

	tr := &TCPTransport{DialTimeout: time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Offer for an unknown search: valid exchange, Known=false.
	body := offerMsg{SearchID: 1, Best: 3, Witness: []int{0}}.encode()
	rt, rb, err := tr.Call(ctx, ln.Addr().String(), msgOffer, body)
	if err != nil {
		t.Fatalf("offer over TCP: %v", err)
	}
	if rt != msgOfferOK {
		t.Fatalf("reply type %q, want %q", rt, msgOfferOK)
	}
	ok, err := decodeOfferOK(rb)
	if err != nil || ok.Known {
		t.Fatalf("reply = %+v, %v; want Known=false", ok, err)
	}

	// A handler error surfaces as RemoteError through call().
	_, _, err = call(ctx, tr, ln.Addr().String(), MsgType("no-such-type"), nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("handler failure came back as %v, want RemoteError", err)
	}

	// A query against a node with no serve mux is a remote error too.
	_, _, err = call(ctx, tr, ln.Addr().String(), msgQuery,
		queryMsg{Path: "/v1/bisection", RawQuery: "network=wn&n=4"}.encode())
	if !errors.As(err, &remote) {
		t.Fatalf("mux-less query came back as %v, want RemoteError", err)
	}

	// Nobody listening: transport error, not a hang.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if _, _, err := tr.Call(ctx, deadAddr, msgOffer, body); err == nil {
		t.Fatal("call to closed port succeeded")
	}
}
