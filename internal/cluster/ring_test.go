package cluster

import (
	"fmt"
	"testing"
)

func allAlive(string) bool { return true }

// TestRingOwnershipStability is the rendezvous-hashing contract: killing
// one peer reassigns ONLY that peer's keys — every key owned by a
// survivor keeps its owner, so a peer failure invalidates exactly the
// dead peer's share of the cache, not the whole ring.
func TestRingOwnershipStability(t *testing.T) {
	peers := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000", "10.0.0.4:7000"}
	r := NewRing(peers)

	keys := make([]string, 0, 200)
	for n := 0; n < 200; n++ {
		keys = append(keys, fmt.Sprintf("expansion?kind=wn&n=16&d=edge&exact-nodes=64&kmax=%d", n))
	}

	before := make(map[string]string, len(keys))
	perPeer := make(map[string]int)
	for _, k := range keys {
		owner, ok := r.Owner(k, allAlive)
		if !ok {
			t.Fatalf("no owner for %q with all peers alive", k)
		}
		before[k] = owner
		perPeer[owner]++
	}
	for _, p := range peers {
		if perPeer[p] == 0 {
			t.Fatalf("peer %s owns no keys out of %d — hash badly skewed: %v", p, len(keys), perPeer)
		}
	}

	// Determinism: a second ring over the same peers agrees on every key.
	r2 := NewRing([]string{peers[3], peers[1], peers[0], peers[2]}) // order must not matter
	for _, k := range keys {
		owner, _ := r2.Owner(k, allAlive)
		if owner != before[k] {
			t.Fatalf("ring built in a different order moved %q: %s → %s", k, before[k], owner)
		}
	}

	// Kill one peer: its keys reassign, everyone else's stay put.
	dead := peers[2]
	alive := func(addr string) bool { return addr != dead }
	moved := 0
	for _, k := range keys {
		owner, ok := r.Owner(k, alive)
		if !ok {
			t.Fatalf("no owner for %q with 3 peers alive", k)
		}
		if owner == dead {
			t.Fatalf("dead peer %s still owns %q", dead, k)
		}
		if before[k] == dead {
			moved++
			continue
		}
		if owner != before[k] {
			t.Fatalf("killing %s moved %q from survivor %s to %s", dead, k, before[k], owner)
		}
	}
	if moved != perPeer[dead] {
		t.Fatalf("moved %d keys, but dead peer owned %d", moved, perPeer[dead])
	}

	// All dead: no owner, not a panic.
	if owner, ok := r.Owner(keys[0], func(string) bool { return false }); ok {
		t.Fatalf("ownerless ring returned %q", owner)
	}

	// Duplicate peers collapse.
	if got := len(NewRing([]string{"a:1", "a:1", "b:2"}).Addrs()); got != 2 {
		t.Fatalf("duplicate peers not collapsed: %d addrs", got)
	}
}

// TestGraphSpecRoundTrip pins the wire graph naming: every party must
// reconstruct the identical topology from the spec string, and anything
// unparseable or out of range is an error, not a guess.
func TestGraphSpecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		wrapped bool
		n       int
		want    string
	}{
		{false, 8, "bn:8"},
		{true, 16, "wn:16"},
	} {
		spec := GraphSpec(tc.wrapped, tc.n)
		if spec != tc.want {
			t.Fatalf("GraphSpec(%v, %d) = %q, want %q", tc.wrapped, tc.n, spec, tc.want)
		}
		g, err := ParseGraphSpec(spec)
		if err != nil {
			t.Fatalf("ParseGraphSpec(%q): %v", spec, err)
		}
		if g == nil || g.N() == 0 {
			t.Fatalf("ParseGraphSpec(%q) returned an empty graph", spec)
		}
	}

	for _, bad := range []string{
		"", "wn", "wn:", "wn:3", "wn:0", "wn:-8", "wn:2", "bn:1", "bn:3",
		"xx:8", "wn:32768", "bn:abc", "wn:8:extra", "WN:8",
	} {
		if _, err := ParseGraphSpec(bad); err == nil {
			t.Fatalf("ParseGraphSpec(%q) accepted", bad)
		}
	}
}
