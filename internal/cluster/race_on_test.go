//go:build race

package cluster

// raceEnabled shrinks the distributed-search instances: the race
// detector multiplies branch-and-bound wall clock by an order of
// magnitude, and the cluster machinery is exercised identically on the
// small graphs.
const raceEnabled = true
