// Package bitutil provides bit-manipulation helpers for butterfly column
// labels.
//
// Throughout this repository, a column of a (log n)-dimensional butterfly is
// a (log n)-bit binary number w ∈ {0,1}^log n. Following the paper, bit
// positions are numbered 1 through log n with position 1 being the most
// significant bit. An edge between level i and level i+1 either keeps the
// column fixed or flips the bit in position i+1.
package bitutil

import "math/bits"

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x int) bool {
	return x > 0 && x&(x-1) == 0
}

// Log2 returns log₂(x) for a positive power of two x. It panics otherwise,
// because callers pass network sizes that are validated at construction time
// and a non-power-of-two here indicates a programming error.
func Log2(x int) int {
	if !IsPow2(x) {
		panic("bitutil: Log2 of non-power-of-two")
	}
	return bits.TrailingZeros(uint(x))
}

// CeilLog2 returns ⌈log₂(x)⌉ for x ≥ 1.
func CeilLog2(x int) int {
	if x <= 0 {
		panic("bitutil: CeilLog2 of non-positive value")
	}
	return bits.Len(uint(x - 1))
}

// FloorLog2 returns ⌊log₂(x)⌋ for x ≥ 1.
func FloorLog2(x int) int {
	if x <= 0 {
		panic("bitutil: FloorLog2 of non-positive value")
	}
	return bits.Len(uint(x)) - 1
}

// Bit returns the bit of w in paper position pos (1-based, MSB first) when w
// is treated as a d-bit column label. Positions outside [1,d] panic.
func Bit(w, d, pos int) int {
	if pos < 1 || pos > d {
		panic("bitutil: bit position out of range")
	}
	return (w >> (d - pos)) & 1
}

// FlipBit returns w with the bit in paper position pos (1-based, MSB first)
// flipped, treating w as a d-bit label.
func FlipBit(w, d, pos int) int {
	if pos < 1 || pos > d {
		panic("bitutil: bit position out of range")
	}
	return w ^ (1 << (d - pos))
}

// Prefix returns the value of the first (most significant) p bits of the
// d-bit label w, i.e. paper positions 1..p.
func Prefix(w, d, p int) int {
	if p < 0 || p > d {
		panic("bitutil: prefix length out of range")
	}
	return w >> (d - p)
}

// Suffix returns the value of the last (least significant) s bits of the
// d-bit label w, i.e. paper positions d−s+1..d.
func Suffix(w, d, s int) int {
	if s < 0 || s > d {
		panic("bitutil: suffix length out of range")
	}
	if s == 0 {
		return 0
	}
	return w & ((1 << s) - 1)
}

// Mid returns the value of bits in paper positions lo..hi (inclusive,
// 1-based) of the d-bit label w.
func Mid(w, d, lo, hi int) int {
	if lo < 1 || hi > d || lo > hi+1 {
		panic("bitutil: mid range out of range")
	}
	if lo > hi {
		return 0
	}
	return (w >> (d - hi)) & ((1 << (hi - lo + 1)) - 1)
}

// Compose builds a d-bit label from a p-bit prefix, an m-bit middle and an
// s-bit suffix with p+m+s = d.
func Compose(prefix, p, mid, m, suffix, s int) int {
	if prefix < 0 || prefix >= 1<<p || mid < 0 || mid >= 1<<m || suffix < 0 || suffix >= 1<<s {
		panic("bitutil: compose parts out of range")
	}
	return prefix<<(m+s) | mid<<s | suffix
}

// Reverse returns the d-bit label w with its bits reversed (position 1 swaps
// with position d, and so on). Bit reversal realizes the level-reversing
// automorphism of the butterfly (Lemma 2.1).
func Reverse(w, d int) int {
	return int(bits.Reverse64(uint64(w)) >> (64 - d))
}

// BitString renders w as a d-character binary string, MSB first, matching the
// column labels of Figure 1 in the paper.
func BitString(w, d int) string {
	buf := make([]byte, d)
	for i := 0; i < d; i++ {
		buf[i] = byte('0' + Bit(w, d, i+1))
	}
	return string(buf)
}

// OnesCount returns the number of set bits in w.
func OnesCount(w int) int {
	return bits.OnesCount(uint(w))
}
