package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	truths := map[int]bool{
		-4: false, -1: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 6: false, 8: true, 1024: true, 1023: false, 1 << 30: true,
	}
	for x, want := range truths {
		if got := IsPow2(x); got != want {
			t.Errorf("IsPow2(%d) = %v, want %v", x, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	for d := 0; d < 30; d++ {
		if got := Log2(1 << d); got != d {
			t.Errorf("Log2(2^%d) = %d", d, got)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	for _, x := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Log2(%d) did not panic", x)
				}
			}()
			Log2(x)
		}()
	}
}

func TestCeilFloorLog2(t *testing.T) {
	cases := []struct{ x, ceil, floor int }{
		{1, 0, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2},
		{7, 3, 2}, {8, 3, 3}, {9, 4, 3}, {1023, 10, 9}, {1024, 10, 10},
	}
	for _, c := range cases {
		if got := CeilLog2(c.x); got != c.ceil {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.x, got, c.ceil)
		}
		if got := FloorLog2(c.x); got != c.floor {
			t.Errorf("FloorLog2(%d) = %d, want %d", c.x, got, c.floor)
		}
	}
}

func TestBitMatchesBitString(t *testing.T) {
	const d = 7
	for w := 0; w < 1<<d; w++ {
		s := BitString(w, d)
		for pos := 1; pos <= d; pos++ {
			want := int(s[pos-1] - '0')
			if got := Bit(w, d, pos); got != want {
				t.Fatalf("Bit(%d,%d,%d) = %d, want %d (string %q)", w, d, pos, got, want, s)
			}
		}
	}
}

func TestFlipBitInvolution(t *testing.T) {
	f := func(w uint16, pos uint8) bool {
		d := 16
		p := int(pos)%d + 1
		x := int(w)
		return FlipBit(FlipBit(x, d, p), d, p) == x && FlipBit(x, d, p) != x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdgeBitSemantics(t *testing.T) {
	// Paper: nodes <w,i> and <w',i+1> are linked iff w = w' or w,w' differ
	// exactly in bit position i+1. Check FlipBit produces exactly one
	// differing bit in that position.
	d := 5
	for w := 0; w < 1<<d; w++ {
		for i := 0; i < d; i++ {
			w2 := FlipBit(w, d, i+1)
			diff := w ^ w2
			if OnesCount(diff) != 1 {
				t.Fatalf("flip changed %d bits", OnesCount(diff))
			}
			if Bit(w, d, i+1) == Bit(w2, d, i+1) {
				t.Fatalf("bit %d not flipped", i+1)
			}
		}
	}
}

func TestPrefixSuffixMidCompose(t *testing.T) {
	const d = 12
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		w := rng.Intn(1 << d)
		p := rng.Intn(d + 1)
		s := rng.Intn(d - p + 1)
		m := d - p - s
		pre := Prefix(w, d, p)
		suf := Suffix(w, d, s)
		mid := Mid(w, d, p+1, d-s)
		if got := Compose(pre, p, mid, m, suf, s); got != w {
			t.Fatalf("decompose/compose mismatch: w=%d p=%d s=%d got=%d", w, p, s, got)
		}
	}
}

func TestMidFullRange(t *testing.T) {
	const d = 8
	for w := 0; w < 1<<d; w++ {
		if got := Mid(w, d, 1, d); got != w {
			t.Fatalf("Mid(%d,1,%d) = %d", w, d, got)
		}
		if got := Mid(w, d, 3, 2); got != 0 {
			t.Fatalf("empty Mid = %d, want 0", got)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	f := func(w uint16) bool {
		d := 16
		x := int(w)
		return Reverse(Reverse(x, d), d) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseKnown(t *testing.T) {
	cases := []struct{ w, d, want int }{
		{0b001, 3, 0b100},
		{0b110, 3, 0b011},
		{0b1011, 4, 0b1101},
		{0, 10, 0},
		{1<<10 - 1, 10, 1<<10 - 1},
	}
	for _, c := range cases {
		if got := Reverse(c.w, c.d); got != c.want {
			t.Errorf("Reverse(%b,%d) = %b, want %b", c.w, c.d, got, c.want)
		}
	}
}

func TestReverseSwapsPrefixSuffix(t *testing.T) {
	// Reversal must map the p-bit prefix onto the reversed p-bit suffix —
	// the property that exchanges the roles of M1 and M3 classes (Lemma 2.1).
	const d = 9
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		w := rng.Intn(1 << d)
		p := rng.Intn(d + 1)
		r := Reverse(w, d)
		if Suffix(r, d, p) != Reverse(Prefix(w, d, p), p) {
			t.Fatalf("prefix/suffix reversal mismatch for w=%09b p=%d", w, p)
		}
	}
}

func TestBitString(t *testing.T) {
	if got := BitString(0b101, 3); got != "101" {
		t.Errorf("BitString = %q", got)
	}
	if got := BitString(1, 5); got != "00001" {
		t.Errorf("BitString = %q", got)
	}
}

func TestPanicsOnBadRanges(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Bit low", func() { Bit(0, 4, 0) })
	mustPanic("Bit high", func() { Bit(0, 4, 5) })
	mustPanic("FlipBit", func() { FlipBit(0, 4, 5) })
	mustPanic("Prefix", func() { Prefix(0, 4, 5) })
	mustPanic("Suffix", func() { Suffix(0, 4, -1) })
	mustPanic("Compose", func() { Compose(2, 1, 0, 0, 0, 0) })
	mustPanic("CeilLog2", func() { CeilLog2(0) })
	mustPanic("FloorLog2", func() { FloorLog2(0) })
}
