// Package cut represents cuts of a network and the quantities the paper
// defines over them: capacity, bisection, U-bisection (§1.2 and §2.1), edge
// boundaries and node boundaries (neighborhoods, §1.3).
package cut

import (
	"fmt"

	"repro/internal/graph"
)

// Cut is a 2-partition (S, S̄) of the nodes of a graph. Following the paper,
// the cut is a partition of nodes; its cut edges are the edges with one
// endpoint on each side.
type Cut struct {
	g    *graph.Graph
	side []bool // side[v] == true ⇔ v ∈ S
	inS  int
}

// New wraps a side assignment as a Cut. The slice is used directly (not
// copied); callers who mutate it afterwards must go through Move.
func New(g *graph.Graph, side []bool) *Cut {
	if len(side) != g.N() {
		panic(fmt.Sprintf("cut: side slice has %d entries for %d nodes", len(side), g.N()))
	}
	inS := 0
	for _, s := range side {
		if s {
			inS++
		}
	}
	return &Cut{g: g, side: side, inS: inS}
}

// FromSet builds the cut (S, S̄) with S given as a node list.
func FromSet(g *graph.Graph, s []int) *Cut {
	side := make([]bool, g.N())
	for _, v := range s {
		if side[v] {
			panic(fmt.Sprintf("cut: node %d listed twice", v))
		}
		side[v] = true
	}
	return New(g, side)
}

// Graph returns the underlying graph.
func (c *Cut) Graph() *graph.Graph { return c.g }

// InS reports whether v ∈ S.
func (c *Cut) InS(v int) bool { return c.side[v] }

// SizeS returns |S|.
func (c *Cut) SizeS() int { return c.inS }

// SizeSbar returns |S̄|.
func (c *Cut) SizeSbar() int { return c.g.N() - c.inS }

// Imbalance returns | |S| − |S̄| |.
func (c *Cut) Imbalance() int {
	d := c.inS - c.SizeSbar()
	if d < 0 {
		d = -d
	}
	return d
}

// Move transfers node v to the other side.
func (c *Cut) Move(v int) {
	if c.side[v] {
		c.inS--
	} else {
		c.inS++
	}
	c.side[v] = !c.side[v]
}

// Clone returns an independent copy of the cut.
func (c *Cut) Clone() *Cut {
	side := make([]bool, len(c.side))
	copy(side, c.side)
	return &Cut{g: c.g, side: side, inS: c.inS}
}

// Capacity returns C(S,S̄), the number of cut edges (parallel edges counted
// separately).
func (c *Cut) Capacity() int {
	cap := 0
	for _, e := range c.g.Edges() {
		if c.side[e.U] != c.side[e.V] {
			cap++
		}
	}
	return cap
}

// CutEdges returns the indices of the edges crossing the cut.
func (c *Cut) CutEdges() []int {
	var out []int
	for ei, e := range c.g.Edges() {
		if c.side[e.U] != c.side[e.V] {
			out = append(out, ei)
		}
	}
	return out
}

// SNodes returns the nodes of S in increasing order.
func (c *Cut) SNodes() []int {
	out := make([]int, 0, c.inS)
	for v, s := range c.side {
		if s {
			out = append(out, v)
		}
	}
	return out
}

// IsBisection reports whether the cut is a bisection: both sides have at
// most ⌈N/2⌉ nodes (§1.2).
func (c *Cut) IsBisection() bool {
	half := (c.g.N() + 1) / 2
	return c.inS <= half && c.SizeSbar() <= half
}

// BisectsSubset reports whether the cut bisects the node set U in the sense
// of §2.1: ||S∩U| − |S̄∩U|| ≤ 1.
func (c *Cut) BisectsSubset(u []int) bool {
	in := 0
	for _, v := range u {
		if c.side[v] {
			in++
		}
	}
	d := 2*in - len(u)
	return d >= -1 && d <= 1
}

// CountIn returns |S ∩ U|.
func (c *Cut) CountIn(u []int) int {
	in := 0
	for _, v := range u {
		if c.side[v] {
			in++
		}
	}
	return in
}

// EdgeBoundary returns C(S, S̄) for the set S given as a node list: the
// paper's edge expansion of S (§1.3).
func EdgeBoundary(g *graph.Graph, s []int) int {
	return FromSet(g, s).Capacity()
}

// NodeBoundary returns N(S), the nodes outside S adjacent to S, in
// increasing order: the paper's neighbor set (§1.3).
func NodeBoundary(g *graph.Graph, s []int) []int {
	inS := make([]bool, g.N())
	for _, v := range s {
		inS[v] = true
	}
	mark := make([]bool, g.N())
	for _, v := range s {
		for _, u := range g.Neighbors(v) {
			if !inS[u] {
				mark[u] = true
			}
		}
	}
	var out []int
	for v, m := range mark {
		if m {
			out = append(out, v)
		}
	}
	return out
}

// DegreeToSides returns, for node v, the number of its incident edges whose
// other endpoint lies in S and in S̄ respectively. Solvers use it for
// incremental gain computations.
func (c *Cut) DegreeToSides(v int) (toS, toSbar int) {
	for _, u := range c.g.Neighbors(v) {
		if c.side[u] {
			toS++
		} else {
			toSbar++
		}
	}
	return toS, toSbar
}
