package cut

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestCapacityOnPath(t *testing.T) {
	g := pathGraph(6)
	c := FromSet(g, []int{0, 1, 2})
	if c.Capacity() != 1 {
		t.Errorf("capacity = %d, want 1", c.Capacity())
	}
	c2 := FromSet(g, []int{0, 2, 4})
	if c2.Capacity() != 5 {
		t.Errorf("alternating capacity = %d, want 5", c2.Capacity())
	}
}

func TestSizesAndImbalance(t *testing.T) {
	g := pathGraph(7)
	c := FromSet(g, []int{0, 1})
	if c.SizeS() != 2 || c.SizeSbar() != 5 || c.Imbalance() != 3 {
		t.Errorf("sizes: %d/%d imbalance %d", c.SizeS(), c.SizeSbar(), c.Imbalance())
	}
	if c.IsBisection() {
		t.Errorf("2/5 split of 7 nodes is not a bisection")
	}
	c3 := FromSet(g, []int{0, 1, 2})
	if !c3.IsBisection() {
		t.Errorf("3/4 split of 7 nodes is a bisection")
	}
	c4 := FromSet(g, []int{0, 1, 2, 3})
	if !c4.IsBisection() {
		t.Errorf("4/3 split of 7 nodes is a bisection")
	}
}

func TestMove(t *testing.T) {
	g := pathGraph(4)
	c := FromSet(g, []int{0})
	before := c.Capacity()
	c.Move(1)
	if c.SizeS() != 2 {
		t.Errorf("SizeS after move = %d", c.SizeS())
	}
	if c.Capacity() != before {
		t.Errorf("capacity after moving 1: %d, want %d (cut shifts along path)", c.Capacity(), before)
	}
	if !c.InS(1) {
		t.Errorf("node 1 should be in S")
	}
	c.Move(1)
	if c.InS(1) || c.SizeS() != 1 {
		t.Errorf("move is not an involution")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := pathGraph(4)
	c := FromSet(g, []int{0, 1})
	d := c.Clone()
	d.Move(2)
	if c.InS(2) {
		t.Errorf("clone mutation leaked")
	}
	if c.SizeS() == d.SizeS() {
		t.Errorf("sizes should differ after clone move")
	}
}

func TestCutEdgesMatchCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		side := make([]bool, n)
		for i := range side {
			side[i] = rng.Intn(2) == 0
		}
		c := New(g, side)
		edges := c.CutEdges()
		if len(edges) != c.Capacity() {
			return false
		}
		for _, ei := range edges {
			e := g.Edge(ei)
			if c.InS(int(e.U)) == c.InS(int(e.V)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacitySymmetry(t *testing.T) {
	// C(S, S̄) = C(S̄, S): complementing the side assignment preserves
	// capacity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		side := make([]bool, n)
		comp := make([]bool, n)
		for i := range side {
			side[i] = rng.Intn(2) == 0
			comp[i] = !side[i]
		}
		return New(g, side).Capacity() == New(g, comp).Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisectsSubset(t *testing.T) {
	g := pathGraph(8)
	u := []int{0, 2, 4, 6}
	if !FromSet(g, []int{0, 2}).BisectsSubset(u) {
		t.Errorf("2-of-4 should bisect")
	}
	if FromSet(g, []int{0, 2, 4}).BisectsSubset(u) {
		t.Errorf("3-of-4 should not bisect (difference 2)")
	}
	odd := []int{0, 2, 4}
	if !FromSet(g, []int{0, 2}).BisectsSubset(odd) {
		t.Errorf("2-of-3 should bisect (difference 1)")
	}
	if !FromSet(g, []int{0}).BisectsSubset(odd) {
		t.Errorf("1-of-3 should bisect (difference 1)")
	}
	if FromSet(g, nil).BisectsSubset(odd) {
		t.Errorf("0-of-3 should not bisect")
	}
}

func TestCountIn(t *testing.T) {
	g := pathGraph(5)
	c := FromSet(g, []int{1, 3})
	if c.CountIn([]int{0, 1, 2, 3}) != 2 {
		t.Errorf("CountIn wrong")
	}
}

func TestFromSetRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate set entry did not panic")
		}
	}()
	FromSet(pathGraph(3), []int{1, 1})
}

func TestNewRejectsWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("wrong-length side did not panic")
		}
	}()
	New(pathGraph(3), make([]bool, 2))
}

func TestEdgeBoundaryAndNodeBoundary(t *testing.T) {
	// On B8: the set of all level-0 nodes has edge boundary 2n (each input
	// has 2 edges down) and node boundary n (all of level 1).
	b := topology.NewButterfly(8)
	inputs := b.InputNodes()
	if got := EdgeBoundary(b.Graph, inputs); got != 16 {
		t.Errorf("edge boundary of inputs = %d, want 16", got)
	}
	nb := NodeBoundary(b.Graph, inputs)
	if len(nb) != 8 {
		t.Errorf("node boundary of inputs has %d nodes, want 8", len(nb))
	}
	for _, v := range nb {
		if b.Level(v) != 1 {
			t.Errorf("boundary node on level %d", b.Level(v))
		}
	}
}

func TestFolkloreColumnCutOnB8(t *testing.T) {
	// The classical upper bound BW(Bn) ≤ n: columns starting with 0 vs 1
	// (§1.4). Only level-0/1 edges cross... in fact only the cross edges of
	// the first level-pair do, 2·(n/2) = n of them.
	b := topology.NewButterfly(8)
	var s []int
	for v := 0; v < b.N(); v++ {
		if b.Column(v) < 4 {
			s = append(s, v)
		}
	}
	c := FromSet(b.Graph, s)
	if !c.IsBisection() {
		t.Fatalf("column cut should bisect")
	}
	if got := c.Capacity(); got != 8 {
		t.Errorf("column cut capacity = %d, want n = 8", got)
	}
}

func TestDegreeToSides(t *testing.T) {
	g := pathGraph(5)
	c := FromSet(g, []int{0, 1, 2})
	toS, toSbar := c.DegreeToSides(2)
	if toS != 1 || toSbar != 1 {
		t.Errorf("DegreeToSides(2) = %d,%d", toS, toSbar)
	}
	toS, toSbar = c.DegreeToSides(0)
	if toS != 1 || toSbar != 0 {
		t.Errorf("DegreeToSides(0) = %d,%d", toS, toSbar)
	}
}
