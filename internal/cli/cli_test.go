package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/solve"
)

func TestCheckers(t *testing.T) {
	cases := []struct {
		name string
		err  error
		ok   bool
	}{
		{"positive ok", Positive("trials", 1), true},
		{"positive zero", Positive("trials", 0), false},
		{"positive negative", Positive("trials", -3), false},
		{"nonneg ok zero", NonNegative("workers", 0), true},
		{"nonneg ok", NonNegative("workers", 8), true},
		{"nonneg bad", NonNegative("workers", -1), false},
		{"range ok low", Range("max-log", 0, 0, 48), true},
		{"range ok high", Range("max-log", 48, 0, 48), true},
		{"range below", Range("max-log", -1, 0, 48), false},
		{"range above", Range("max-log", 49, 0, 48), false},
		{"pow2 ok", PowerOfTwo("n", 256), true},
		{"pow2 two", PowerOfTwo("n", 2), true},
		{"pow2 one", PowerOfTwo("n", 1), false},
		{"pow2 zero", PowerOfTwo("n", 0), false},
		{"pow2 odd", PowerOfTwo("n", 100), false},
		{"pow2 negative", PowerOfTwo("n", -8), false},
		{"prob ok zero", Probability("drop", 0), true},
		{"prob ok mid", Probability("drop", 0.25), true},
		{"prob one", Probability("drop", 1), false},
		{"prob negative", Probability("drop", -0.1), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.err == nil; got != c.ok {
				t.Fatalf("got err=%v, want ok=%v", c.err, c.ok)
			}
			if c.err != nil && !strings.Contains(c.err.Error(), "-") {
				t.Fatalf("error %q does not name the flag", c.err)
			}
		})
	}
}

func TestValidateExitsTwoOnFailure(t *testing.T) {
	code := -1
	exit = func(c int) { code = c }
	printUsage = func() {}
	defer func() { exit = os.Exit; printUsage = defaultUsage }()

	Validate(nil, Positive("trials", 0), nil)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}

	code = -1
	Validate(nil, nil)
	if code != -1 {
		t.Fatalf("Validate exited (%d) on all-nil errors", code)
	}
}

func TestWithTimeout(t *testing.T) {
	ctx, cancel := WithTimeout(0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout set a deadline")
	}
	ctx2, cancel2 := WithTimeout(time.Hour)
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Fatal("positive timeout set no deadline")
	}
}

func TestProgressPrinter(t *testing.T) {
	if ProgressPrinter(false) != nil {
		t.Fatal("disabled printer not nil")
	}
	if ProgressPrinter(true) == nil {
		t.Fatal("enabled printer is nil")
	}
}

func TestProgressPrinterLabelsAndSerializes(t *testing.T) {
	var buf bytes.Buffer
	stderr = &buf
	defer func() { stderr = os.Stderr }()

	print := ProgressPrinter(true)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				print(solve.Progress{Solver: fmt.Sprintf("solver-%d", i), Explored: int64(j)})
			}
		}(i)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d (interleaved writes?)", len(lines), 8*50)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "progress: [solver-") {
			t.Fatalf("line %q does not carry the solver label", line)
		}
	}
}

func TestProgressPrinterUnlabelled(t *testing.T) {
	var buf bytes.Buffer
	stderr = &buf
	defer func() { stderr = os.Stderr }()

	ProgressPrinter(true)(solve.Progress{Explored: 7})
	if got := buf.String(); strings.Contains(got, "[") || !strings.HasPrefix(got, "progress: explored=7") {
		t.Fatalf("unlabelled line = %q", got)
	}
}

func TestStartPprofWarnsOnBadAddress(t *testing.T) {
	var buf bytes.Buffer
	stderr = &buf
	defer func() { stderr = os.Stderr }()

	StartPprof("256.256.256.256:99999")
	if !strings.Contains(buf.String(), "warning: pprof server") {
		t.Fatalf("no startup warning on stderr, got %q", buf.String())
	}
}

func TestStartPprofServesMetrics(t *testing.T) {
	var buf bytes.Buffer
	stderr = &buf
	defer func() { stderr = os.Stderr }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	StartPprof(addr)
	if warned := buf.String(); warned != "" {
		t.Fatalf("unexpected warning: %q", warned)
	}
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get("http://" + addr + "/debug/metrics")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("GET /debug/metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Fatalf("status %d, body %q", resp.StatusCode, body)
	}
}

func TestOutputManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "run.json")
	tracePath := filepath.Join(dir, "trace.jsonl")

	o := &Output{JSON: &jsonPath, Trace: &tracePath, Metrics: new(bool)}
	o.Start("testcmd")
	if o.Tracer() == nil {
		t.Fatal("tracer nil with -trace set")
	}
	o.Tracer().Event("hello", nil)

	m := o.Manifest()
	m.Seed = 42
	m.AddTable("t", "a table", []int{1, 2, 3})
	o.Finish(m)

	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := obs.DecodeManifest(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != "testcmd" || got.Seed != 42 || got.Table("t") == nil {
		t.Fatalf("manifest round trip = %+v", got)
	}
	if got.Env == nil || got.Env.GOOS == "" || got.Flags == nil {
		t.Fatalf("manifest missing environment/flags: %+v", got)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"hello"`) {
		t.Fatalf("trace file missing event: %q", trace)
	}
}

func TestOutputWithoutFlagsIsInert(t *testing.T) {
	o := &Output{JSON: new(string), Trace: new(string), Metrics: new(bool)}
	o.Start("noop")
	if o.Tracer() != nil {
		t.Fatal("tracer non-nil without -trace")
	}
	o.Finish(nil)
	o.Finish(o.Manifest()) // no -json path: must not write or exit
}
