package cli

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestCheckers(t *testing.T) {
	cases := []struct {
		name string
		err  error
		ok   bool
	}{
		{"positive ok", Positive("trials", 1), true},
		{"positive zero", Positive("trials", 0), false},
		{"positive negative", Positive("trials", -3), false},
		{"nonneg ok zero", NonNegative("workers", 0), true},
		{"nonneg ok", NonNegative("workers", 8), true},
		{"nonneg bad", NonNegative("workers", -1), false},
		{"range ok low", Range("max-log", 0, 0, 48), true},
		{"range ok high", Range("max-log", 48, 0, 48), true},
		{"range below", Range("max-log", -1, 0, 48), false},
		{"range above", Range("max-log", 49, 0, 48), false},
		{"pow2 ok", PowerOfTwo("n", 256), true},
		{"pow2 two", PowerOfTwo("n", 2), true},
		{"pow2 one", PowerOfTwo("n", 1), false},
		{"pow2 zero", PowerOfTwo("n", 0), false},
		{"pow2 odd", PowerOfTwo("n", 100), false},
		{"pow2 negative", PowerOfTwo("n", -8), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.err == nil; got != c.ok {
				t.Fatalf("got err=%v, want ok=%v", c.err, c.ok)
			}
			if c.err != nil && !strings.Contains(c.err.Error(), "-") {
				t.Fatalf("error %q does not name the flag", c.err)
			}
		})
	}
}

func TestValidateExitsTwoOnFailure(t *testing.T) {
	code := -1
	exit = func(c int) { code = c }
	printUsage = func() {}
	defer func() { exit = os.Exit; printUsage = defaultUsage }()

	Validate(nil, Positive("trials", 0), nil)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}

	code = -1
	Validate(nil, nil)
	if code != -1 {
		t.Fatalf("Validate exited (%d) on all-nil errors", code)
	}
}

func TestWithTimeout(t *testing.T) {
	ctx, cancel := WithTimeout(0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout set a deadline")
	}
	ctx2, cancel2 := WithTimeout(time.Hour)
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Fatal("positive timeout set no deadline")
	}
}

func TestProgressPrinter(t *testing.T) {
	if ProgressPrinter(false) != nil {
		t.Fatal("disabled printer not nil")
	}
	if ProgressPrinter(true) == nil {
		t.Fatal("enabled printer is nil")
	}
}
