// Package cli holds the shared command-line plumbing of the repro
// binaries: fail-fast validation of nonsensical flag values (rejected with
// usage and exit code 2, like flag-parse errors), -timeout contexts,
// -progress printers, and the optional -pprof debug server.
package cli

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"time"

	"repro/internal/solve"
)

// exit is swapped out by tests; production code always calls os.Exit.
var exit = os.Exit

// Positive rejects flag values that must be at least one (trial counts,
// set sizes): a zero-trial simulation or zero-size table is a typo, not a
// request.
func Positive(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("-%s must be ≥ 1 (got %d)", name, v)
	}
	return nil
}

// NonNegative rejects negative values of flags where zero is meaningful
// (e.g. -workers 0 = all cores).
func NonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s must be ≥ 0 (got %d)", name, v)
	}
	return nil
}

// Range rejects values outside [lo, hi] — used for size exponents whose
// upper end would overflow or exhaust memory long before producing output.
func Range(name string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("-%s must be in [%d, %d] (got %d)", name, lo, hi, v)
	}
	return nil
}

// PowerOfTwo rejects network sizes the butterfly constructors cannot
// build, turning their panic into a usage error.
func PowerOfTwo(name string, v int) error {
	if v < 2 || v&(v-1) != 0 {
		return fmt.Errorf("-%s must be a power of two ≥ 2 (got %d)", name, v)
	}
	return nil
}

// Validate prints every non-nil error and the flag usage to stderr, then
// exits with code 2 (the flag package's own parse-failure code). With no
// failures it returns silently.
func Validate(errs ...error) {
	bad := false
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", os.Args[0], err)
			bad = true
		}
	}
	if !bad {
		return
	}
	fmt.Fprintln(os.Stderr, "usage:")
	printUsage()
	exit(2)
}

// printUsage is swapped out by tests (flag.Usage writes to the real
// stderr via the default FlagSet, which tests cannot intercept).
var printUsage = defaultUsage

func defaultUsage() { flag.Usage() }

// LongRun bundles the shared flags of the long-running table commands.
// Register it before flag.Parse, Start after.
type LongRun struct {
	Timeout  *time.Duration
	Progress *bool
	Pprof    *string
}

// RegisterLongRun declares -timeout, -progress and -pprof on the default
// flag set.
func RegisterLongRun() *LongRun {
	return &LongRun{
		Timeout:  flag.Duration("timeout", 0, "wall-clock budget; on expiry solvers return best-so-far results marked non-exact (0 = unlimited)"),
		Progress: flag.Bool("progress", false, "print solver progress snapshots to stderr"),
		Pprof:    flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)"),
	}
}

// Start applies the parsed LongRun flags: it launches the pprof server (if
// requested) and returns the deadline context plus the progress callback
// (nil when -progress is off). The caller must defer cancel.
func (l *LongRun) Start() (context.Context, context.CancelFunc, func(solve.Progress)) {
	StartPprof(*l.Pprof)
	ctx, cancel := WithTimeout(*l.Timeout)
	return ctx, cancel, ProgressPrinter(*l.Progress)
}

// WithTimeout returns a context carrying the -timeout deadline; d ≤ 0
// means no deadline (plain Background). The cancel func must be deferred
// either way.
func WithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), d)
}

// ProgressPrinter returns a -progress callback writing one status line per
// snapshot to stderr, or nil when disabled — so callers can pass the
// result straight into an options struct.
func ProgressPrinter(enabled bool) func(solve.Progress) {
	if !enabled {
		return nil
	}
	return func(p solve.Progress) {
		fmt.Fprintf(os.Stderr, "progress: %s\n", p)
	}
}

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") when
// non-empty. Failures to bind are reported, not fatal: profiling is a
// diagnostic aid, never a reason to abort the computation.
func StartPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
		}
	}()
}
