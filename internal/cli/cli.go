// Package cli holds the shared command-line plumbing of the repro
// binaries: fail-fast validation of nonsensical flag values (rejected with
// usage and exit code 2, like flag-parse errors), -timeout contexts,
// -progress printers, the optional -pprof debug server, and the -json /
// -trace / -metrics machine-readable output bundle.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/solve"
)

// exit is swapped out by tests; production code always calls os.Exit.
var exit = os.Exit

// stderr is swapped out by tests to capture warnings and progress lines.
var stderr io.Writer = os.Stderr

// Positive rejects flag values that must be at least one (trial counts,
// set sizes): a zero-trial simulation or zero-size table is a typo, not a
// request.
func Positive(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("-%s must be ≥ 1 (got %d)", name, v)
	}
	return nil
}

// NonNegative rejects negative values of flags where zero is meaningful
// (e.g. -workers 0 = all cores).
func NonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s must be ≥ 0 (got %d)", name, v)
	}
	return nil
}

// Range rejects values outside [lo, hi] — used for size exponents whose
// upper end would overflow or exhaust memory long before producing output.
func Range(name string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("-%s must be in [%d, %d] (got %d)", name, lo, hi, v)
	}
	return nil
}

// PowerOfTwo rejects network sizes the butterfly constructors cannot
// build, turning their panic into a usage error.
func PowerOfTwo(name string, v int) error {
	if v < 2 || v&(v-1) != 0 {
		return fmt.Errorf("-%s must be a power of two ≥ 2 (got %d)", name, v)
	}
	return nil
}

// Probability rejects rates outside [0, 1) — a drop or dead-link
// probability of exactly 1 would retry (or kill every link) forever.
func Probability(name string, v float64) error {
	if v < 0 || v >= 1 {
		return fmt.Errorf("-%s must be in [0, 1) (got %g)", name, v)
	}
	return nil
}

// Validate prints every non-nil error and the flag usage to stderr, then
// exits with code 2 (the flag package's own parse-failure code). With no
// failures it returns silently.
func Validate(errs ...error) {
	bad := false
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", os.Args[0], err)
			bad = true
		}
	}
	if !bad {
		return
	}
	fmt.Fprintln(stderr, "usage:")
	printUsage()
	exit(2)
}

// printUsage is swapped out by tests (flag.Usage writes to the real
// stderr via the default FlagSet, which tests cannot intercept).
var printUsage = defaultUsage

func defaultUsage() { flag.Usage() }

// LongRun bundles the shared flags of the long-running table commands.
// Register it before flag.Parse, Start after.
type LongRun struct {
	Timeout  *time.Duration
	Progress *bool
	Pprof    *string
}

// RegisterLongRun declares -timeout, -progress and -pprof on the default
// flag set.
func RegisterLongRun() *LongRun {
	return &LongRun{
		Timeout:  flag.Duration("timeout", 0, "wall-clock budget; on expiry solvers return best-so-far results marked non-exact (0 = unlimited)"),
		Progress: flag.Bool("progress", false, "print solver progress snapshots to stderr"),
		Pprof:    flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)"),
	}
}

// Start applies the parsed LongRun flags: it launches the pprof server (if
// requested) and returns the deadline context plus the progress callback
// (nil when -progress is off). The caller must defer cancel.
func (l *LongRun) Start() (context.Context, context.CancelFunc, func(solve.Progress)) {
	StartPprof(*l.Pprof)
	ctx, cancel := WithTimeout(*l.Timeout)
	return ctx, cancel, ProgressPrinter(*l.Progress)
}

// WithTimeout returns a context carrying the -timeout deadline; d ≤ 0
// means no deadline (plain Background). The cancel func must be deferred
// either way.
func WithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), d)
}

// ProgressPrinter returns a -progress callback writing one status line per
// snapshot to stderr, or nil when disabled — so callers can pass the
// result straight into an options struct. Lines carry the solver label
// (Progress.Solver) and are serialized under a mutex: concurrent solvers
// (the parallel exact engines, the trial workers) share one callback, and
// unserialized writes interleave mid-line.
func ProgressPrinter(enabled bool) func(solve.Progress) {
	if !enabled {
		return nil
	}
	var mu sync.Mutex
	return func(p solve.Progress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Solver != "" {
			fmt.Fprintf(stderr, "progress: [%s] %s\n", p.Solver, p)
			return
		}
		fmt.Fprintf(stderr, "progress: %s\n", p)
	}
}

// pprofMux builds the diagnostic mux: the net/http/pprof handlers plus
// /debug/metrics. A dedicated mux (rather than nil = DefaultServeMux)
// keeps stray http.Handle registrations elsewhere in the process from
// leaking onto the diagnostic port.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/metrics", obs.Default)
	return mux
}

// StartPprof serves net/http/pprof plus /debug/metrics on addr (e.g.
// "localhost:6060") when non-empty. The listener is bound synchronously so
// a bad address or an occupied port surfaces as an immediate stderr
// warning instead of a silently dead goroutine; failures are reported, not
// fatal, because profiling is a diagnostic aid, never a reason to abort
// the computation. The server carries a ReadHeaderTimeout so one stalled
// client cannot pin the diagnostic port open indefinitely (pprof profile
// responses themselves stream for their requested duration, so there is
// deliberately no WriteTimeout).
func StartPprof(addr string) {
	if addr == "" {
		return
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "warning: pprof server on %s failed to start: %v\n", addr, err)
		return
	}
	srv := &http.Server{
		Handler:           pprofMux(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			fmt.Fprintf(stderr, "warning: pprof server: %v\n", err)
		}
	}()
}

// Output bundles the machine-readable output flags shared by every
// command: -json (run manifest), -trace (JSONL solver trace) and -metrics
// (end-of-run registry dump). Register it before flag.Parse, Start after,
// and Finish once the command's tables are built.
type Output struct {
	JSON    *string
	Trace   *string
	Metrics *bool

	command   string
	begin     time.Time
	tracer    *obs.Tracer
	traceFile *os.File
}

// RegisterOutput declares -json, -trace and -metrics on the default flag
// set.
func RegisterOutput() *Output {
	return &Output{
		JSON:    flag.String("json", "", "write a machine-readable run manifest (JSON) to this path"),
		Trace:   flag.String("trace", "", "write solver trace events (JSONL) to this path"),
		Metrics: flag.Bool("metrics", false, "dump the metrics registry to stderr at exit"),
	}
}

// Start opens the trace sink (if -trace was given) and stamps the run
// start. An unwritable trace path is fatal: the user asked for the file.
func (o *Output) Start(command string) {
	o.command = command
	o.begin = time.Now()
	if *o.Trace == "" {
		return
	}
	f, err := os.Create(*o.Trace)
	if err != nil {
		fmt.Fprintf(stderr, "%s: -trace: %v\n", os.Args[0], err)
		exit(1)
		return
	}
	o.traceFile = f
	o.tracer = obs.NewTracer(f)
}

// Tracer returns the -trace tracer, or nil when tracing is off (safe to
// pass straight into options structs).
func (o *Output) Tracer() *obs.Tracer { return o.tracer }

// Finish completes the run: it stamps the manifest with the command line,
// flag values, environment, elapsed time and the metrics snapshot, writes
// it to -json (when requested), closes the trace sink, and dumps the
// registry to stderr under -metrics. A nil manifest skips the -json path
// (callers that failed before producing tables still flush their trace).
// Write failures are fatal: silent partial output is worse than an exit
// code.
func (o *Output) Finish(m *obs.Manifest) {
	if m != nil && *o.JSON != "" {
		m.Args = append([]string(nil), os.Args[1:]...)
		m.Flags = flagValues()
		m.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		m.ElapsedMS = float64(time.Since(o.begin)) / float64(time.Millisecond)
		env := obs.CaptureEnvironment()
		m.Env = &env
		m.Metrics = obs.Default.Snapshot()
		if err := m.WriteFile(*o.JSON); err != nil {
			fmt.Fprintf(stderr, "%s: -json: %v\n", os.Args[0], err)
			exit(1)
		}
	}
	if o.traceFile != nil {
		if err := o.tracer.Err(); err != nil {
			fmt.Fprintf(stderr, "warning: -trace: %v\n", err)
		}
		if err := o.traceFile.Close(); err != nil {
			fmt.Fprintf(stderr, "warning: -trace: %v\n", err)
		}
	}
	if *o.Metrics {
		fmt.Fprintf(stderr, "metrics (%s):\n", o.command)
		if err := obs.Default.WriteJSON(stderr); err != nil {
			fmt.Fprintf(stderr, "warning: -metrics: %v\n", err)
		}
	}
}

// Manifest starts a run manifest for the command named in Start.
func (o *Output) Manifest() *obs.Manifest { return obs.NewManifest(o.command) }

// flagValues snapshots every registered flag's current value (defaults
// included), making manifests self-describing.
func flagValues() map[string]string {
	flags := make(map[string]string)
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		flags[f.Name] = f.Value.String()
	})
	return flags
}
