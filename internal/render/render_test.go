package render

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestButterflyASCII(t *testing.T) {
	b := topology.NewButterfly(8)
	out := ButterflyASCII(b)
	if !strings.Contains(out, "000") || !strings.Contains(out, "111") {
		t.Errorf("missing column labels:\n%s", out)
	}
	// 4 node rows (levels 0..3).
	if got := strings.Count(out, "lvl"); got != 4 {
		t.Errorf("%d level rows, want 4:\n%s", got, out)
	}
	// 32 node markers.
	if got := strings.Count(out, "o"); got < 32 {
		t.Errorf("%d node markers, want ≥ 32", got)
	}
	// Edge glyphs present.
	if !strings.Contains(out, "|") || !strings.Contains(out, "\\") {
		t.Errorf("missing edge glyphs:\n%s", out)
	}
}

func TestButterflyASCIIPanicsOnWn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Wn should panic")
		}
	}()
	ButterflyASCII(topology.NewWrappedButterfly(8))
}

func TestDOT(t *testing.T) {
	b := topology.NewButterfly(4)
	var sb strings.Builder
	side := make([]bool, b.N())
	side[0] = true
	DOT(&sb, b.Graph, func(v int) string { return "x" }, side)
	out := sb.String()
	if !strings.HasPrefix(out, "graph G {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("not a DOT document:\n%s", out)
	}
	if strings.Count(out, " -- ") != b.M() {
		t.Errorf("edge count mismatch: %d vs %d", strings.Count(out, " -- "), b.M())
	}
	if !strings.Contains(out, "lightblue") {
		t.Errorf("side coloring missing")
	}
}

func TestDOTNoLabeler(t *testing.T) {
	b := topology.NewButterfly(2)
	var sb strings.Builder
	DOT(&sb, b.Graph, nil, nil)
	if !strings.Contains(sb.String(), "n0;") {
		t.Errorf("bare node ids missing:\n%s", sb.String())
	}
}

func TestButterflyDOT(t *testing.T) {
	b := topology.NewWrappedButterfly(4)
	var sb strings.Builder
	ButterflyDOT(&sb, b, nil)
	out := sb.String()
	if strings.Count(out, "rank=same") != b.Levels() {
		t.Errorf("rank groups %d, want %d", strings.Count(out, "rank=same"), b.Levels())
	}
	if strings.Count(out, " -- ") != b.M() {
		t.Errorf("edge lines %d, want %d", strings.Count(out, " -- "), b.M())
	}
	if !strings.Contains(out, `label="00,0"`) {
		t.Errorf("column/level labels missing:\n%s", out)
	}
}
