// Package render draws butterfly networks: a Figure 1 style ASCII diagram
// with explicit straight and cross edges, and Graphviz DOT output for any
// graph in the repository.
package render

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bitutil"
	"repro/internal/graph"
	"repro/internal/topology"
)

// ButterflyASCII renders Bn in the style of the paper's Figure 1: one row
// of nodes per level, column labels in binary, with straight edges drawn as
// vertical bars and cross edges as the spans they jump. Practical for
// n ≤ 16.
func ButterflyASCII(b *topology.Butterfly) string {
	if b.Wraparound() {
		panic("render: ASCII diagram is drawn for Bn")
	}
	n := b.Inputs()
	d := b.Dim()
	cell := 4 // characters per column
	width := n * cell

	var sb strings.Builder
	sb.WriteString("column ")
	for w := 0; w < n; w++ {
		sb.WriteString(fmt.Sprintf("%-*s", cell, bitutil.BitString(w, d)))
	}
	sb.WriteString("\n")

	nodeRow := func(level int) string {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for w := 0; w < n; w++ {
			row[w*cell] = 'o'
		}
		return fmt.Sprintf("lvl %-3d%s", level, string(row))
	}

	for i := 0; i <= d; i++ {
		sb.WriteString(nodeRow(i))
		sb.WriteString("\n")
		if i == d {
			break
		}
		// Between levels i and i+1: straight edges are vertical bars; a
		// cross edge from column w jumps 2^(d-i-1) columns (bit i+1 flips).
		span := 1 << (d - i - 1)
		// Draw a couple of rows suggesting the crossing pattern.
		for sub := 0; sub < 2; sub++ {
			row := make([]byte, width)
			for x := range row {
				row[x] = ' '
			}
			for w := 0; w < n; w++ {
				row[w*cell] = '|'
				// Indicate the cross edge direction with a slash midway
				// toward the partner column.
				partner := w ^ span
				dir := byte('\\')
				if partner < w {
					dir = '/'
				}
				offset := (sub + 1) * cell * span / 3
				x := w*cell + offset
				if partner < w {
					x = w*cell - offset
				}
				if x >= 0 && x < width && row[x] == ' ' {
					row[x] = dir
				}
			}
			sb.WriteString("       " + string(row) + "\n")
		}
	}
	return sb.String()
}

// DOT writes a Graphviz representation of any graph, with an optional node
// labeler (nil renders bare ids) and an optional side assignment that
// colors the S side.
func DOT(w io.Writer, g *graph.Graph, label func(v int) string, side []bool) {
	fmt.Fprintln(w, "graph G {")
	fmt.Fprintln(w, "  node [shape=circle, fontsize=10];")
	for v := 0; v < g.N(); v++ {
		attrs := ""
		if label != nil {
			attrs = fmt.Sprintf(" [label=%q", label(v))
			if side != nil && side[v] {
				attrs += `, style=filled, fillcolor=lightblue`
			}
			attrs += "]"
		} else if side != nil && side[v] {
			attrs = ` [style=filled, fillcolor=lightblue]`
		}
		fmt.Fprintf(w, "  n%d%s;\n", v, attrs)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "  n%d -- n%d;\n", e.U, e.V)
	}
	fmt.Fprintln(w, "}")
}

// ButterflyDOT renders Bn or Wn with ⟨column,level⟩ labels and level ranks.
func ButterflyDOT(w io.Writer, b *topology.Butterfly, side []bool) {
	fmt.Fprintln(w, "graph butterfly {")
	fmt.Fprintln(w, "  rankdir=TB; node [shape=circle, fontsize=10];")
	for i := 0; i < b.Levels(); i++ {
		fmt.Fprintf(w, "  { rank=same;")
		for _, v := range b.LevelNodes(i) {
			fmt.Fprintf(w, " n%d;", v)
		}
		fmt.Fprintln(w, " }")
	}
	for v := 0; v < b.N(); v++ {
		attrs := fmt.Sprintf("label=\"%s,%d\"", bitutil.BitString(b.Column(v), b.Dim()), b.Level(v))
		if side != nil && side[v] {
			attrs += ", style=filled, fillcolor=lightblue"
		}
		fmt.Fprintf(w, "  n%d [%s];\n", v, attrs)
	}
	for _, e := range b.Edges() {
		fmt.Fprintf(w, "  n%d -- n%d;\n", e.U, e.V)
	}
	fmt.Fprintln(w, "}")
}
