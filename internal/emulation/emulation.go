// Package emulation executes one network's communication on another
// through an embedding, quantifying the §1.3/§1.5 principle that embeddings
// with load l, congestion c and dilation d support emulations with slowdown
// O(l + c + d) — the mechanism behind the hypercube-relative equivalences
// ([12], [26]) the paper surveys, and behind the use of expansion gaps to
// lower-bound emulation inefficiency.
//
// The model: in one guest step, every guest edge carries one message in
// each direction. The host realizes this by forwarding all 2·M_guest
// messages along the embedding's paths under synchronous store-and-forward
// switching (each directed host edge moves one message per host step). The
// measured host steps per guest step is the slowdown.
package emulation

import (
	"sort"

	"repro/internal/embed"
)

// Result summarizes the emulation of one guest step.
type Result struct {
	Messages  int // 2 × guest edges
	HostSteps int // host steps needed to deliver them all
	// CongestionFloor and DilationFloor are certified lower bounds on
	// HostSteps: the busiest host edge must forward CongestionFloor
	// messages, and some message travels DilationFloor hops.
	CongestionFloor int
	DilationFloor   int
}

// EmulateStep routes one full guest communication step over the host and
// returns the measured slowdown. Zero-length paths (guest edges collapsed
// onto one host node) are delivered instantly.
func EmulateStep(e *embed.Embedding) Result {
	var res Result
	// Each guest edge yields two messages, one per direction.
	type msg struct {
		path []int
		pos  int
	}
	var msgs []msg
	for _, p := range e.Paths {
		if len(p) < 2 {
			res.Messages += 2
			continue
		}
		rev := make([]int, len(p))
		for i, v := range p {
			rev[len(p)-1-i] = v
		}
		msgs = append(msgs, msg{path: p}, msg{path: rev})
		res.Messages += 2
		if len(p)-1 > res.DilationFloor {
			res.DilationFloor = len(p) - 1
		}
	}

	// Directed congestion floor.
	dirCong := make(map[[2]int]int)
	for _, m := range msgs {
		for i := 0; i+1 < len(m.path); i++ {
			key := [2]int{m.path[i], m.path[i+1]}
			dirCong[key]++
			if dirCong[key] > res.CongestionFloor {
				res.CongestionFloor = dirCong[key]
			}
		}
	}

	// Synchronous store-and-forward with FIFO queues per directed edge.
	queues := make(map[[2]int][]int32)
	remaining := 0
	enqueue := func(id int) {
		m := &msgs[id]
		if m.pos+1 < len(m.path) {
			key := [2]int{m.path[m.pos], m.path[m.pos+1]}
			queues[key] = append(queues[key], int32(id))
			remaining++
		}
	}
	for id := range msgs {
		enqueue(id)
	}
	for remaining > 0 {
		res.HostSteps++
		if res.HostSteps > 4*len(msgs)+16 {
			panic("emulation: routing did not converge")
		}
		type move struct {
			id  int32
			key [2]int
		}
		var moves []move
		for key, q := range queues {
			if len(q) > 0 {
				moves = append(moves, move{q[0], key})
			}
		}
		sort.Slice(moves, func(i, j int) bool {
			if moves[i].key[0] != moves[j].key[0] {
				return moves[i].key[0] < moves[j].key[0]
			}
			return moves[i].key[1] < moves[j].key[1]
		})
		for _, mv := range moves {
			q := queues[mv.key]
			queues[mv.key] = q[1:]
			if len(q) == 1 {
				delete(queues, mv.key)
			}
			remaining--
			msgs[mv.id].pos++
			enqueue(int(mv.id))
		}
	}
	return res
}

// EmulateSteps emulates t consecutive guest steps with a barrier between
// steps (a guest node's step-t+1 messages depend on its step-t arrivals),
// returning the total host steps. The amortized slowdown TotalSteps/t is
// the §1.5 work-preserving emulation figure.
func EmulateSteps(e *embed.Embedding, t int) (totalSteps int) {
	if t < 1 {
		panic("emulation: step count must be positive")
	}
	per := EmulateStep(e).HostSteps
	// The model is memoryless across barriers: every guest step routes the
	// same message pattern, so t steps cost exactly t × one step.
	return t * per
}

// SlowdownBudget returns the O(l + c + d) budget for an embedding: a
// generous constant times load + 2·(undirected congestion) + dilation. The
// emulation's measured HostSteps must come in under it.
func SlowdownBudget(e *embed.Embedding) int {
	return 4 * (e.Load() + 2*e.Congestion() + e.Dilation())
}
