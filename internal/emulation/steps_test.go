package emulation

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/topology"
)

func TestEmulateStepsAmortized(t *testing.T) {
	host := topology.NewButterfly(8)
	e := embed.BenesIntoButterfly(host)
	per := EmulateStep(e).HostSteps
	total := EmulateSteps(e, 5)
	if total != 5*per {
		t.Errorf("5 steps took %d, want %d", total, 5*per)
	}
}

func TestEmulateStepsValidation(t *testing.T) {
	host := topology.NewButterfly(8)
	e := embed.BenesIntoButterfly(host)
	defer func() {
		if recover() == nil {
			t.Errorf("t=0 did not panic")
		}
	}()
	EmulateSteps(e, 0)
}
