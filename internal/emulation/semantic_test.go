package emulation

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/topology"
)

func TestSemanticFaithfulnessAcrossEmbeddings(t *testing.T) {
	// Every embedding in the repository must deliver exactly the guest's
	// communication pattern: the folded states after several steps agree
	// with the native guest run.
	b := topology.NewButterfly(8)
	w := topology.NewWrappedButterfly(8)
	c := topology.NewCCC(8)
	hc, _ := embed.ButterflyIntoHypercube(b)
	cases := map[string]*embed.Embedding{
		"Benes→Bn":     embed.BenesIntoButterfly(b),
		"Wn→CCC":       embed.WrappedIntoCCC(w, c),
		"Bn→hypercube": hc,
		"Bk→Bn":        embed.BkIntoBn(b, 1, 1),
		"Bn→MOS":       embed.ButterflyIntoMOS(b, 2, 2),
		"Knn→Bn":       embed.KnnIntoButterfly(b),
	}
	for name, e := range cases {
		for _, steps := range []int{1, 3} {
			if !SemanticallyFaithful(e, steps, 42) {
				t.Errorf("%s: emulation diverged from the guest after %d steps", name, steps)
			}
		}
	}
}

func TestSemanticCheckCatchesMiswiring(t *testing.T) {
	// Swap the residences of two guest nodes without rerouting: the
	// endpoint check must trip.
	b := topology.NewButterfly(8)
	e := embed.BenesIntoButterfly(b)
	bad := *e
	bad.NodeMap = append([]int{}, e.NodeMap...)
	bad.NodeMap[0], bad.NodeMap[1] = bad.NodeMap[1], bad.NodeMap[0]
	defer func() {
		if recover() == nil {
			t.Errorf("miswired embedding not caught")
		}
	}()
	RunEmulated(&bad, make([]int64, bad.Guest.N()), 1)
}

func TestSemanticCheckCatchesBrokenPath(t *testing.T) {
	b := topology.NewButterfly(8)
	e := embed.KnnIntoButterfly(b)
	bad := *e
	bad.Paths = append([][]int{}, e.Paths...)
	p := append([]int{}, e.Paths[0]...)
	if len(p) < 4 {
		t.Skip("path too short to corrupt meaningfully")
	}
	p[1], p[2] = p[2], p[1] // scramble interior hops
	bad.Paths[0] = p
	defer func() {
		if recover() == nil {
			t.Errorf("broken path not caught")
		}
	}()
	RunEmulated(&bad, make([]int64, bad.Guest.N()), 1)
}

func TestRunGuestDeterministic(t *testing.T) {
	g := topology.NewButterfly(4).Graph
	init := make([]int64, g.N())
	for i := range init {
		init[i] = int64(i)
	}
	a := RunGuest(g, init, 4)
	b := RunGuest(g, init, 4)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("nondeterministic guest run")
		}
	}
	// States actually evolve.
	same := true
	for v := range a {
		if a[v] != init[v] {
			same = false
		}
	}
	if same {
		t.Errorf("states did not change")
	}
}
