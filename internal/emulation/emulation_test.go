package emulation

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/topology"
)

func TestEmulateIdentityLikeEmbedding(t *testing.T) {
	// The Beneš→Bn embedding has load 1, congestion 1, dilation 3: one
	// guest step emulates in at most a handful of host steps.
	host := topology.NewButterfly(16)
	e := embed.BenesIntoButterfly(host)
	res := EmulateStep(e)
	if res.Messages != 2*e.Guest.M() {
		t.Errorf("messages %d, want %d", res.Messages, 2*e.Guest.M())
	}
	if res.HostSteps < res.DilationFloor {
		t.Errorf("steps %d below dilation floor %d", res.HostSteps, res.DilationFloor)
	}
	if res.HostSteps < res.CongestionFloor {
		t.Errorf("steps %d below congestion floor %d", res.HostSteps, res.CongestionFloor)
	}
	if budget := SlowdownBudget(e); res.HostSteps > budget {
		t.Errorf("steps %d exceed the O(l+c+d) budget %d", res.HostSteps, budget)
	}
}

func TestEmulateWnOnCCC(t *testing.T) {
	// Lemma 3.3's embedding: congestion 2, dilation 2 — the CCC emulates
	// the wrapped butterfly with constant slowdown (§1.5's theme).
	w := topology.NewWrappedButterfly(16)
	c := topology.NewCCC(16)
	e := embed.WrappedIntoCCC(w, c)
	res := EmulateStep(e)
	if res.HostSteps > SlowdownBudget(e) {
		t.Errorf("steps %d exceed budget %d", res.HostSteps, SlowdownBudget(e))
	}
	// Constant slowdown means single digits here, independent of n.
	if res.HostSteps > 12 {
		t.Errorf("slowdown %d not constant-like", res.HostSteps)
	}
}

func TestEmulateButterflyOnHypercube(t *testing.T) {
	b := topology.NewButterfly(16)
	e, _ := embed.ButterflyIntoHypercube(b)
	res := EmulateStep(e)
	if res.HostSteps > SlowdownBudget(e) {
		t.Errorf("steps %d exceed budget %d", res.HostSteps, SlowdownBudget(e))
	}
}

func TestEmulateCollapsedEdges(t *testing.T) {
	// Lemma 2.10 embeddings collapse levels: zero-length paths deliver
	// instantly but still count as messages.
	host := topology.NewButterfly(8)
	e := embed.BkIntoBn(host, 1, 1)
	res := EmulateStep(e)
	if res.Messages != 2*e.Guest.M() {
		t.Errorf("messages %d, want %d", res.Messages, 2*e.Guest.M())
	}
	if res.DilationFloor > 1 {
		t.Errorf("dilation floor %d, want ≤ 1", res.DilationFloor)
	}
	if res.HostSteps > SlowdownBudget(e) {
		t.Errorf("steps %d exceed budget %d", res.HostSteps, SlowdownBudget(e))
	}
}

func TestSlowdownScalesWithCongestion(t *testing.T) {
	// The K_{n,n}→Bn embedding has congestion n/2: emulating a full K_{n,n}
	// step must take at least n/2 host steps (the §1.3 inefficiency
	// principle in action).
	b := topology.NewButterfly(8)
	e := embed.KnnIntoButterfly(b)
	res := EmulateStep(e)
	if res.CongestionFloor < 4 {
		t.Errorf("congestion floor %d, expected ≥ n/2 = 4", res.CongestionFloor)
	}
	if res.HostSteps < 4 {
		t.Errorf("steps %d below the congestion floor", res.HostSteps)
	}
	if res.HostSteps > SlowdownBudget(e) {
		t.Errorf("steps %d exceed budget %d", res.HostSteps, SlowdownBudget(e))
	}
}
