package emulation

import (
	"repro/internal/embed"
	"repro/internal/graph"
)

// The semantic emulation check: a synchronous guest computation — each node
// repeatedly replaces its state with a fold over its own state and all
// neighbor states — is executed natively on the guest and again through the
// host via the embedding's node map and paths. Identical final states prove
// the embedding delivers exactly the guest's communication pattern (right
// endpoints, right multiplicity), which neither congestion nor dilation
// accounting alone can certify.

// stepFold is the per-step update: a node's next state folds its own state
// with the multiset of arriving neighbor states. Multiplication by primes
// keeps the fold sensitive to both multiplicity and which states arrive.
func stepFold(own int64, arrived []int64) int64 {
	next := own*31 + 7
	for _, a := range arrived {
		next = next*37 + a*17 + 1
	}
	return next
}

// RunGuest executes steps rounds of the reference computation directly on
// the guest graph. Arriving states are folded in a canonical order
// (ascending edge index), which both runners share.
func RunGuest(g *graph.Graph, init []int64, steps int) []int64 {
	state := append([]int64(nil), init...)
	for s := 0; s < steps; s++ {
		arrived := make([][]int64, g.N())
		for _, e := range g.Edges() {
			arrived[e.U] = append(arrived[e.U], state[e.V])
			arrived[e.V] = append(arrived[e.V], state[e.U])
		}
		next := make([]int64, g.N())
		for v := range next {
			next[v] = stepFold(state[v], arrived[v])
		}
		state = next
	}
	return state
}

// RunEmulated executes the same computation through the host: guest node
// v's state resides at host node NodeMap[v]; each guest step's messages
// walk their embedding paths hop by hop before the fold is applied. The
// walk asserts every hop is a host edge, so a corrupted embedding fails
// loudly rather than silently computing the right answer.
func RunEmulated(e *embed.Embedding, init []int64, steps int) []int64 {
	state := append([]int64(nil), init...)
	for s := 0; s < steps; s++ {
		arrived := make([][]int64, e.Guest.N())
		for ei, ge := range e.Guest.Edges() {
			path := e.Paths[ei]
			u, v := int(ge.U), int(ge.V)
			// The path must join exactly the residences of u and v
			// (either orientation); a miswired embedding fails here.
			first, last := path[0], path[len(path)-1]
			ru, rv := e.NodeMap[u], e.NodeMap[v]
			if !(first == ru && last == rv) && !(first == rv && last == ru) {
				panic("emulation: path does not join the edge's residences")
			}
			// Each endpoint receives the other's state, carried across
			// the validated hops.
			arrived[v] = append(arrived[v], walk(e, path, state[u]))
			arrived[u] = append(arrived[u], walk(e, reversed(path), state[v]))
		}
		next := make([]int64, e.Guest.N())
		for v := range next {
			next[v] = stepFold(state[v], arrived[v])
		}
		state = next
	}
	return state
}

// walk carries a payload along a host path, panicking on a non-edge hop.
func walk(e *embed.Embedding, path []int, payload int64) int64 {
	for i := 0; i+1 < len(path); i++ {
		if !e.Host.HasEdge(path[i], path[i+1]) {
			panic("emulation: embedding path uses a non-edge")
		}
	}
	return payload
}

func reversed(p []int) []int {
	out := make([]int, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}

// SemanticallyFaithful runs both executions and reports whether every guest
// node ends in the same state.
func SemanticallyFaithful(e *embed.Embedding, steps int, seed int64) bool {
	init := make([]int64, e.Guest.N())
	for v := range init {
		init[v] = seed + int64(v)*1000003
	}
	want := RunGuest(e.Guest, init, steps)
	got := RunEmulated(e, init, steps)
	for v := range want {
		if want[v] != got[v] {
			return false
		}
	}
	return true
}
