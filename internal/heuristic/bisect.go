// Package heuristic provides upper-bound search for minimum bisections and
// expansion sets on networks too large for package exact: a
// Fiduccia–Mattheyses-style local refinement with multi-start, and greedy
// set growth for edge/node expansion.
//
// The experiments use these as an adversary for the paper's constructions:
// the search tries to beat a constructed cut, and failing to do so on
// moderate sizes is evidence the construction is near-optimal.
package heuristic

import (
	"container/heap"
	"context"
	"math/rand"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/obs"
)

// BisectOptions control the bisection search.
type BisectOptions struct {
	// Starts is the number of random restarts (default 8).
	Starts int
	// MaxPasses bounds the refinement passes per start (default 16).
	MaxPasses int
	// Seed makes the search deterministic.
	Seed int64
	// Ctx cancels the search between refinement passes. The result is
	// still always a valid bisection — the best cut refined so far — just
	// a weaker upper bound than an uncancelled run would produce. nil
	// means never cancelled.
	Ctx context.Context
	// Label names the search in trace spans; Trace, when non-nil,
	// receives a span per BisectParallel run with the start count and the
	// best capacity found.
	Label string
	Trace *obs.Tracer
}

func (o BisectOptions) withDefaults() BisectOptions {
	if o.Starts <= 0 {
		o.Starts = 8
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 16
	}
	return o
}

// StartSeed derives the rng seed of multi-start i from the base seed via
// a splitmix64 mix (the same scheme route.TrialSeed uses for trials).
// Plain base+i sub-seeds would make runs with base seeds S and S+1 share
// all but one start stream; the mix decorrelates both nearby bases and
// nearby starts.
func StartSeed(base int64, i int) int64 {
	x := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Bisect searches for a small bisection of g and returns the best cut found.
// The result is always a valid bisection; its capacity is an upper bound on
// BW(g). Start i draws from StartSeed(opts.Seed, i), and ties between
// equal capacities resolve to the lowest start index, so Bisect and
// BisectParallel return identical cuts for the same options.
func Bisect(g *graph.Graph, opts BisectOptions) *cut.Cut {
	opts = opts.withDefaults()
	if g.N() == 0 {
		return cut.FromSet(g, nil)
	}
	var best *cut.Cut
	bestCap := -1
	for start := 0; start < opts.Starts; start++ {
		c := oneStart(g, StartSeed(opts.Seed, start), opts.MaxPasses, opts.Ctx)
		if cap := c.Capacity(); bestCap < 0 || cap < bestCap {
			best, bestCap = c, cap
		}
	}
	return best
}

// oneStart runs a single random start: draw a balanced cut from seed,
// refine it under ctx. Even a pre-cancelled ctx yields a valid (merely
// unrefined) bisection.
func oneStart(g *graph.Graph, seed int64, maxPasses int, ctx context.Context) *cut.Cut {
	rng := rand.New(rand.NewSource(seed))
	c := cut.New(g, randomBalancedSide(g.N(), rng))
	refineCtx(c, maxPasses, ctx)
	return c
}

func cancelled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// RefineCut runs FM refinement passes on an existing cut in place (it must
// be a bisection; balance is preserved to within one node). It returns the
// refined cut's capacity. Use it to try to improve a constructed cut.
func RefineCut(c *cut.Cut, maxPasses int) int {
	if maxPasses <= 0 {
		maxPasses = 16
	}
	refine(c, maxPasses)
	return c.Capacity()
}

func randomBalancedSide(n int, rng *rand.Rand) []bool {
	perm := rng.Perm(n)
	side := make([]bool, n)
	for i := 0; i < n/2; i++ {
		side[perm[i]] = true
	}
	return side
}

// gainItem is a heap entry with lazy invalidation: stale entries (whose gain
// no longer matches the node's current gain) are skipped on pop.
type gainItem struct {
	gain int32
	v    int32
}

type gainHeap []gainItem

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

func refine(c *cut.Cut, maxPasses int) {
	refineCtx(c, maxPasses, nil)
}

// refineCtx runs FM passes until a pass yields no improvement, maxPasses
// is reached, or ctx is cancelled. Each pass tentatively moves every node
// once (always from the currently larger or equal side, keeping balance
// within one node), tracks the best balanced prefix, and rolls back the
// rest. Cancellation is only observed between passes — a completed pass
// leaves the cut a valid bisection, so stopping there needs no unwinding.
func refineCtx(c *cut.Cut, maxPasses int, ctx context.Context) {
	g := c.Graph()
	n := g.N()
	gain := make([]int32, n)
	locked := make([]bool, n)
	moved := make([]int32, 0, n)

	for pass := 0; pass < maxPasses; pass++ {
		if cancelled(ctx) {
			return
		}
		startCap := c.Capacity()
		curCap := startCap
		bestPrefixCap := startCap
		bestPrefixLen := 0
		moved = moved[:0]
		for v := range locked {
			locked[v] = false
		}

		// Two heaps, one per side, so the side to move from can be forced.
		var heapS, heapT gainHeap
		for v := 0; v < n; v++ {
			toS, toSbar := c.DegreeToSides(v)
			if c.InS(v) {
				gain[v] = int32(toSbar - toS)
				heapS = append(heapS, gainItem{gain[v], int32(v)})
			} else {
				gain[v] = int32(toS - toSbar)
				heapT = append(heapT, gainItem{gain[v], int32(v)})
			}
		}
		heap.Init(&heapS)
		heap.Init(&heapT)

		pop := func(h *gainHeap, wantInS bool) int {
			for h.Len() > 0 {
				item := heap.Pop(h).(gainItem)
				v := int(item.v)
				if locked[v] || c.InS(v) != wantInS || item.gain != gain[v] {
					continue
				}
				return v
			}
			return -1
		}

		for step := 0; step < n; step++ {
			// Move from the larger side; on exact balance, from whichever
			// heap offers the better gain.
			var v int
			switch {
			case c.SizeS() > c.SizeSbar():
				v = pop(&heapS, true)
			case c.SizeS() < c.SizeSbar():
				v = pop(&heapT, false)
			default:
				v = popBest(&heapS, &heapT, c, locked, gain, pop)
			}
			if v < 0 {
				break
			}
			curCap -= int(gain[v])
			wasInS := c.InS(v)
			c.Move(v)
			locked[v] = true
			moved = append(moved, int32(v))

			// Update neighbor gains.
			for _, u := range g.Neighbors(v) {
				if locked[u] {
					continue
				}
				// v switched sides: if u is on v's old side, the edge
				// {u,v} became cut, improving u's move gain by 2;
				// otherwise it is no longer cut, worsening it by 2.
				if c.InS(int(u)) == wasInS {
					gain[u] += 2
				} else {
					gain[u] -= 2
				}
				item := gainItem{gain[u], u}
				if c.InS(int(u)) {
					heap.Push(&heapS, item)
				} else {
					heap.Push(&heapT, item)
				}
			}

			if c.Imbalance() <= n%2 && curCap < bestPrefixCap {
				bestPrefixCap = curCap
				bestPrefixLen = len(moved)
			}
		}

		// Roll back moves beyond the best balanced prefix.
		for i := len(moved) - 1; i >= bestPrefixLen; i-- {
			c.Move(int(moved[i]))
		}
		if bestPrefixCap >= startCap {
			return // no improvement; local optimum
		}
	}
}

// popBest pops the better-gain valid node from either heap when both sides
// are movable.
func popBest(hS, hT *gainHeap, c *cut.Cut, locked []bool, gain []int32,
	pop func(*gainHeap, bool) int) int {
	peek := func(h *gainHeap, wantInS bool) (int32, bool) {
		for h.Len() > 0 {
			item := (*h)[0]
			v := int(item.v)
			if locked[v] || c.InS(v) != wantInS || item.gain != gain[v] {
				heap.Pop(h)
				continue
			}
			return item.gain, true
		}
		return 0, false
	}
	gs, okS := peek(hS, true)
	gt, okT := peek(hT, false)
	switch {
	case okS && (!okT || gs >= gt):
		return pop(hS, true)
	case okT:
		return pop(hT, false)
	default:
		return -1
	}
}
