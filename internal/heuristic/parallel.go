package heuristic

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/cut"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Registry metrics of the multi-start search, published per BisectParallel
// call (never inside a refinement pass).
var (
	metricBisectRuns   = obs.NewCounter("heuristic.bisect_runs")
	metricBisectStarts = obs.NewCounter("heuristic.bisect_starts")
	metricBisectMS     = obs.NewHistogram("heuristic.bisect_ms")
)

// BisectParallel runs the multi-start FM search with the starts distributed
// over worker goroutines. The result is deterministic for a fixed seed and
// identical to Bisect's: each start draws from StartSeed(opts.Seed, i)
// (a splitmix64 mix, so nearby base seeds share no start streams), and
// ties between equal capacities resolve to the lowest start index
// regardless of the work partition. Cancelling opts.Ctx stops refinement
// early; every start still yields a valid bisection, so the result is a
// bisection either way.
func BisectParallel(g *graph.Graph, opts BisectOptions) *cut.Cut {
	opts = opts.withDefaults()
	began := time.Now()
	span := opts.Trace.StartSpan("heuristic.bisect", obs.Attrs{
		"name": opts.Label, "nodes": g.N(), "starts": opts.Starts,
	})
	metricBisectRuns.Inc()
	metricBisectStarts.Add(int64(opts.Starts))
	defer func() { metricBisectMS.Observe(int64(time.Since(began) / time.Millisecond)) }()
	n := g.N()
	if n == 0 {
		span.End(nil)
		return cut.FromSet(g, nil)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > opts.Starts {
		workers = opts.Starts
	}

	results := make([]*cut.Cut, opts.Starts)
	var wg sync.WaitGroup
	starts := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for start := range starts {
				// Each start gets its own deterministic sub-seed, so the
				// work partition does not affect the outcome.
				results[start] = oneStart(g, StartSeed(opts.Seed, start), opts.MaxPasses, opts.Ctx)
			}
		}()
	}
	for start := 0; start < opts.Starts; start++ {
		starts <- start
	}
	close(starts)
	wg.Wait()

	best := results[0]
	for _, c := range results[1:] {
		if c.Capacity() < best.Capacity() {
			best = c
		}
	}
	span.End(obs.Attrs{"capacity": best.Capacity()})
	return best
}
