package heuristic

import (
	"runtime"
	"sync"

	"repro/internal/cut"
	"repro/internal/graph"
)

// BisectParallel runs the multi-start FM search with the starts distributed
// over worker goroutines. The result is deterministic for a fixed seed and
// identical to Bisect's when both explore the same starts: each start uses
// the seed Seed+i, and ties between equal capacities resolve to the lowest
// start index.
func BisectParallel(g *graph.Graph, opts BisectOptions) *cut.Cut {
	opts = opts.withDefaults()
	n := g.N()
	if n == 0 {
		return cut.FromSet(g, nil)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > opts.Starts {
		workers = opts.Starts
	}

	type result struct {
		start int
		c     *cut.Cut
		cap   int
	}
	results := make([]result, opts.Starts)
	var wg sync.WaitGroup
	starts := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for start := range starts {
				// Each start gets its own deterministic sub-seed, so the
				// work partition does not affect the outcome.
				c := Bisect(g, BisectOptions{
					Starts:    1,
					MaxPasses: opts.MaxPasses,
					Seed:      opts.Seed + int64(start),
				})
				results[start] = result{start, c, c.Capacity()}
			}
		}()
	}
	for start := 0; start < opts.Starts; start++ {
		starts <- start
	}
	close(starts)
	wg.Wait()

	best := results[0]
	for _, r := range results[1:] {
		if r.cap < best.cap {
			best = r
		}
	}
	return best.c
}
