package heuristic

import (
	"context"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/topology"
)

func TestBisectParallelMatchesSerial(t *testing.T) {
	// Serial and parallel multi-start draw start i from
	// StartSeed(seed, i) with lowest-index tie-breaks, so for the same
	// options they must return identical cuts, independent of the worker
	// partition — and repeat runs must be deterministic.
	g := topology.NewWrappedButterfly(8).Graph
	opts := BisectOptions{Starts: 8, Seed: 100}
	par := BisectParallel(g, opts)
	if !par.IsBisection() {
		t.Fatalf("not a bisection")
	}
	ser := Bisect(g, opts)
	if par.Capacity() != ser.Capacity() {
		t.Errorf("parallel best %d, serial best %d", par.Capacity(), ser.Capacity())
	}
	for v := 0; v < g.N(); v++ {
		if par.InS(v) != ser.InS(v) {
			t.Fatalf("parallel and serial cuts differ at node %d", v)
		}
	}
	again := BisectParallel(g, opts)
	if again.Capacity() != par.Capacity() {
		t.Errorf("nondeterministic: %d vs %d", again.Capacity(), par.Capacity())
	}
}

func TestStartSeedDecorrelatesNearbyBases(t *testing.T) {
	// The splitmix64 mix must not let base seeds S and S+1 share start
	// streams (the old Seed+i scheme shared all but one).
	seen := make(map[int64]bool)
	for base := int64(0); base < 16; base++ {
		for i := 0; i < 16; i++ {
			s := StartSeed(base, i)
			if seen[s] {
				t.Fatalf("StartSeed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
}

func TestBisectCancelledStillBisection(t *testing.T) {
	g := topology.NewWrappedButterfly(16).Graph
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	ser := Bisect(g, BisectOptions{Starts: 64, Seed: 7, Ctx: ctx})
	par := BisectParallel(g, BisectOptions{Starts: 64, Seed: 7, Ctx: ctx})
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled searches took %v", took)
	}
	if !ser.IsBisection() || !par.IsBisection() {
		t.Fatal("cancelled search returned a non-bisection")
	}
}

func TestBisectParallelFindsOptimum(t *testing.T) {
	c := topology.NewCCC(8)
	bis := BisectParallel(c.Graph, BisectOptions{Starts: 16, Seed: 1})
	if bis.Capacity() != 4 {
		t.Errorf("parallel search found %d, optimum is 4", bis.Capacity())
	}
}

func TestBisectParallelEmpty(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if c := BisectParallel(g, BisectOptions{Seed: 1}); c.Capacity() != 0 {
		t.Errorf("empty graph capacity %d", c.Capacity())
	}
}
