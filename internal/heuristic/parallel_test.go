package heuristic

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func TestBisectParallelMatchesSerialBest(t *testing.T) {
	// The parallel search over starts {seed, seed+1, ...} must find a cut
	// at least as good as any single-start serial run with those seeds,
	// and be deterministic.
	g := topology.NewWrappedButterfly(8).Graph
	par := BisectParallel(g, BisectOptions{Starts: 8, Seed: 100})
	if !par.IsBisection() {
		t.Fatalf("not a bisection")
	}
	bestSerial := 1 << 30
	for i := 0; i < 8; i++ {
		c := Bisect(g, BisectOptions{Starts: 1, Seed: 100 + int64(i)})
		if cp := c.Capacity(); cp < bestSerial {
			bestSerial = cp
		}
	}
	if par.Capacity() != bestSerial {
		t.Errorf("parallel best %d, serial best %d", par.Capacity(), bestSerial)
	}
	again := BisectParallel(g, BisectOptions{Starts: 8, Seed: 100})
	if again.Capacity() != par.Capacity() {
		t.Errorf("nondeterministic: %d vs %d", again.Capacity(), par.Capacity())
	}
}

func TestBisectParallelFindsOptimum(t *testing.T) {
	c := topology.NewCCC(8)
	bis := BisectParallel(c.Graph, BisectOptions{Starts: 16, Seed: 1})
	if bis.Capacity() != 4 {
		t.Errorf("parallel search found %d, optimum is 4", bis.Capacity())
	}
}

func TestBisectParallelEmpty(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if c := BisectParallel(g, BisectOptions{Seed: 1}); c.Capacity() != 0 {
		t.Errorf("empty graph capacity %d", c.Capacity())
	}
}
