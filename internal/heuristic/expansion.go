package heuristic

import (
	"math/rand"

	"repro/internal/cut"
	"repro/internal/graph"
)

// ExpansionOptions control the greedy expansion-set search.
type ExpansionOptions struct {
	// Starts is the number of random seed nodes to grow from (default 8).
	Starts int
	// Seed makes the search deterministic.
	Seed int64
}

func (o ExpansionOptions) withDefaults() ExpansionOptions {
	if o.Starts <= 0 {
		o.Starts = 8
	}
	return o
}

// GreedyEdgeExpansion searches for a k-node set with small edge boundary,
// returning the set and its boundary — an upper bound on EE(g,k). From each
// seed the set grows by the frontier node whose inclusion increases the
// boundary least.
func GreedyEdgeExpansion(g *graph.Graph, k int, opts ExpansionOptions) ([]int, int) {
	return greedyGrow(g, k, opts, func(inS []bool, v int) int {
		// Boundary delta of adding v: +edges to outside − edges to inside.
		delta := 0
		for _, u := range g.Neighbors(v) {
			if inS[u] {
				delta--
			} else {
				delta++
			}
		}
		return delta
	}, func(s []int) int {
		return cut.EdgeBoundary(g, s)
	})
}

// GreedyNodeExpansion searches for a k-node set with a small neighbor set,
// returning the set and |N(S)| — an upper bound on NE(g,k).
func GreedyNodeExpansion(g *graph.Graph, k int, opts ExpansionOptions) ([]int, int) {
	return greedyGrow(g, k, opts, func(inS []bool, v int) int {
		// Approximate delta: new outside neighbors of v that are not
		// already adjacent to S minus v itself leaving N(S). Exact scoring
		// would need adjacency-to-S counts; this greedy only guides the
		// growth, the returned value is exact.
		delta := 0
		for _, u := range g.Neighbors(v) {
			if !inS[u] {
				delta++
			}
		}
		return delta
	}, func(s []int) int {
		return len(cut.NodeBoundary(g, s))
	})
}

// greedyGrow grows sets from several random seeds, scoring candidate
// additions with score and final sets with measure.
func greedyGrow(g *graph.Graph, k int, opts ExpansionOptions,
	score func(inS []bool, v int) int, measure func(s []int) int) ([]int, int) {
	if k < 0 || k > g.N() {
		panic("heuristic: expansion set size out of range")
	}
	if k == 0 {
		return nil, 0
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	var bestSet []int
	bestVal := -1
	for start := 0; start < opts.Starts; start++ {
		seed := rng.Intn(g.N())
		set := growFrom(g, k, seed, score)
		if val := measure(set); bestVal < 0 || val < bestVal {
			bestSet, bestVal = set, val
		}
	}
	return bestSet, bestVal
}

func growFrom(g *graph.Graph, k, seed int, score func(inS []bool, v int) int) []int {
	n := g.N()
	inS := make([]bool, n)
	inFrontier := make([]bool, n)
	set := make([]int, 0, k)
	frontier := make([]int, 0, n)

	add := func(v int) {
		inS[v] = true
		set = append(set, v)
		for _, u := range g.Neighbors(v) {
			if !inS[u] && !inFrontier[u] {
				inFrontier[u] = true
				frontier = append(frontier, int(u))
			}
		}
	}
	add(seed)
	for len(set) < k {
		bestV, bestScore := -1, 0
		out := frontier[:0]
		for _, v := range frontier {
			if inS[v] {
				continue
			}
			out = append(out, v)
			if s := score(inS, v); bestV < 0 || s < bestScore {
				bestV, bestScore = v, s
			}
		}
		frontier = out
		if bestV < 0 {
			// Frontier exhausted (component smaller than k): jump to any
			// unused node.
			for v := 0; v < n; v++ {
				if !inS[v] {
					bestV = v
					break
				}
			}
		}
		add(bestV)
	}
	return set
}
