package heuristic

import (
	"math/rand"
	"testing"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/topology"
)

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func TestBisectFindsOptimaOnSmallGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"cycle12", cycleGraph(12), 2},
		{"Q4", topology.NewHypercube(4).Graph, 8},
		{"W8", topology.NewWrappedButterfly(8).Graph, 8},
		{"CCC8", topology.NewCCC(8).Graph, 4},
	}
	for _, c := range cases {
		bis := Bisect(c.g, BisectOptions{Starts: 16, Seed: 1})
		if !bis.IsBisection() {
			t.Errorf("%s: not a bisection", c.name)
		}
		if got := bis.Capacity(); got != c.want {
			t.Errorf("%s: heuristic found %d, optimum is %d", c.name, got, c.want)
		}
	}
}

func TestBisectNeverBelowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 8 + 2*rng.Intn(4)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		_, opt := exact.MinBisection(g)
		h := Bisect(g, BisectOptions{Starts: 4, Seed: int64(trial)})
		if h.Capacity() < opt {
			t.Fatalf("heuristic %d beat exact optimum %d", h.Capacity(), opt)
		}
	}
}

func TestBisectEmptyAndOdd(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if c := Bisect(empty, BisectOptions{Seed: 1}); c.Capacity() != 0 {
		t.Errorf("empty graph capacity %d", c.Capacity())
	}
	odd := cycleGraph(9)
	c := Bisect(odd, BisectOptions{Starts: 8, Seed: 2})
	if !c.IsBisection() {
		t.Errorf("odd-order result not a bisection: %d/%d", c.SizeS(), c.SizeSbar())
	}
	if c.Capacity() != 2 {
		t.Errorf("C9 heuristic = %d, want 2", c.Capacity())
	}
}

func TestRefineCutImproves(t *testing.T) {
	// A deliberately bad balanced cut of a cycle (alternating sides) must
	// refine to something no worse, while staying balanced.
	g := cycleGraph(16)
	side := make([]bool, 16)
	for i := 0; i < 16; i += 2 {
		side[i] = true
	}
	c := cut.New(g, side)
	before := c.Capacity()
	after := RefineCut(c, 20)
	if after > before {
		t.Errorf("refinement worsened the cut: %d → %d", before, after)
	}
	if !c.IsBisection() {
		t.Errorf("refinement broke balance")
	}
	if c.Capacity() != after {
		t.Errorf("returned capacity mismatch")
	}
}

func TestBisectDeterministicWithSeed(t *testing.T) {
	g := topology.NewWrappedButterfly(8).Graph
	a := Bisect(g, BisectOptions{Starts: 4, Seed: 7}).Capacity()
	b := Bisect(g, BisectOptions{Starts: 4, Seed: 7}).Capacity()
	if a != b {
		t.Errorf("same seed gave %d and %d", a, b)
	}
}

func TestGreedyEdgeExpansion(t *testing.T) {
	g := cycleGraph(12)
	for k := 1; k <= 6; k++ {
		set, v := GreedyEdgeExpansion(g, k, ExpansionOptions{Starts: 4, Seed: 1})
		if len(set) != k {
			t.Fatalf("set size %d, want %d", len(set), k)
		}
		if v != 2 {
			t.Errorf("greedy EE(C12,%d) = %d, want 2 (arc)", k, v)
		}
		if cut.EdgeBoundary(g, set) != v {
			t.Errorf("value does not match set")
		}
	}
}

func TestGreedyNodeExpansion(t *testing.T) {
	g := cycleGraph(12)
	for k := 2; k <= 6; k++ {
		set, v := GreedyNodeExpansion(g, k, ExpansionOptions{Starts: 4, Seed: 1})
		if v != 2 {
			t.Errorf("greedy NE(C12,%d) = %d, want 2", k, v)
		}
		if got := len(cut.NodeBoundary(g, set)); got != v {
			t.Errorf("value does not match set")
		}
	}
}

func TestGreedyExpansionNeverBelowExact(t *testing.T) {
	b := topology.NewButterfly(4)
	for k := 1; k <= 5; k++ {
		_, opt := exact.MinEdgeExpansion(b.Graph, k)
		_, greedy := GreedyEdgeExpansion(b.Graph, k, ExpansionOptions{Starts: 8, Seed: 9})
		if greedy < opt {
			t.Fatalf("greedy EE %d beat exact %d at k=%d", greedy, opt, k)
		}
		_, optN := exact.MinNodeExpansion(b.Graph, k)
		_, greedyN := GreedyNodeExpansion(b.Graph, k, ExpansionOptions{Starts: 8, Seed: 9})
		if greedyN < optN {
			t.Fatalf("greedy NE %d beat exact %d at k=%d", greedyN, optN, k)
		}
	}
}

func TestGreedyExpansionDisconnectedFallback(t *testing.T) {
	// k larger than the component: the growth must jump components and
	// still return a set of the right size.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	g := b.Build()
	set, _ := GreedyEdgeExpansion(g, 5, ExpansionOptions{Starts: 2, Seed: 3})
	if len(set) != 5 {
		t.Errorf("set size %d, want 5", len(set))
	}
}

func TestGreedyExpansionZero(t *testing.T) {
	g := cycleGraph(4)
	set, v := GreedyEdgeExpansion(g, 0, ExpansionOptions{Seed: 1})
	if len(set) != 0 || v != 0 {
		t.Errorf("k=0 gave set %v value %d", set, v)
	}
}
