package heuristic

import (
	"math"
	"math/rand"

	"repro/internal/cut"
	"repro/internal/graph"
)

// AnnealOptions control simulated-annealing bisection search.
type AnnealOptions struct {
	// Sweeps is the number of full node sweeps (default 64).
	Sweeps int
	// StartTemp and EndTemp bound the geometric cooling schedule
	// (defaults 2.0 → 0.05, in units of edges).
	StartTemp, EndTemp float64
	// Seed makes the search deterministic.
	Seed int64
}

func (o AnnealOptions) withDefaults() AnnealOptions {
	if o.Sweeps <= 0 {
		o.Sweeps = 64
	}
	if o.StartTemp <= 0 {
		o.StartTemp = 2.0
	}
	if o.EndTemp <= 0 {
		o.EndTemp = 0.05
	}
	return o
}

// Anneal searches for a small bisection by simulated annealing over
// balance-preserving node swaps, then polishes the best state with FM
// refinement. Like Bisect, it returns a valid bisection whose capacity
// upper-bounds BW(g). It explores differently from FM multi-start — the
// experiments use both as independent adversaries for the constructions.
func Anneal(g *graph.Graph, opts AnnealOptions) *cut.Cut {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	n := g.N()
	if n < 2 {
		return cut.FromSet(g, nil)
	}

	c := cut.New(g, randomBalancedSide(n, rng))
	cur := c.Capacity()
	best := c.Clone()
	bestCap := cur

	steps := opts.Sweeps * n
	if steps == 0 {
		steps = 1
	}
	cool := math.Pow(opts.EndTemp/opts.StartTemp, 1/float64(steps))
	temp := opts.StartTemp

	// Maintain the node lists per side for O(1) random swap selection.
	var inS, inT []int
	for v := 0; v < n; v++ {
		if c.InS(v) {
			inS = append(inS, v)
		} else {
			inT = append(inT, v)
		}
	}

	for step := 0; step < steps; step++ {
		i := rng.Intn(len(inS))
		j := rng.Intn(len(inT))
		u, v := inS[i], inT[j]
		// Swap gain: capacity delta of exchanging u and v.
		delta := swapDelta(g, c, u, v)
		if delta <= 0 || rng.Float64() < math.Exp(-float64(delta)/temp) {
			c.Move(u)
			c.Move(v)
			inS[i], inT[j] = v, u
			cur += delta
			if cur < bestCap {
				bestCap = cur
				best = c.Clone()
			}
		}
		temp *= cool
	}

	RefineCut(best, 8)
	return best
}

// swapDelta computes the capacity change from swapping u ∈ S with v ∈ S̄.
func swapDelta(g *graph.Graph, c *cut.Cut, u, v int) int {
	uToS, uToT := c.DegreeToSides(u)
	vToS, vToT := c.DegreeToSides(v)
	delta := (uToS - uToT) + (vToT - vToS)
	// Edges between u and v themselves stay cut after the swap but were
	// counted as "healed" twice above; correct for their multiplicity.
	delta += 2 * g.EdgeMultiplicity(u, v)
	return delta
}
