package heuristic

import (
	"math/rand"
	"testing"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/topology"
)

func TestAnnealFindsOptimaOnSmallGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"cycle12", cycleGraph(12), 2},
		{"Q4", topology.NewHypercube(4).Graph, 8},
		{"W8", topology.NewWrappedButterfly(8).Graph, 8},
	}
	for _, c := range cases {
		bis := Anneal(c.g, AnnealOptions{Seed: 2})
		if !bis.IsBisection() {
			t.Errorf("%s: not a bisection", c.name)
		}
		if got := bis.Capacity(); got != c.want {
			t.Errorf("%s: anneal found %d, optimum is %d", c.name, got, c.want)
		}
	}
}

func TestAnnealNeverBelowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 8; trial++ {
		n := 8 + 2*rng.Intn(3)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		_, opt := exact.MinBisection(g)
		a := Anneal(g, AnnealOptions{Seed: int64(trial), Sweeps: 32})
		if a.Capacity() < opt {
			t.Fatalf("anneal %d beat exact optimum %d", a.Capacity(), opt)
		}
	}
}

func TestAnnealBalancePreserved(t *testing.T) {
	g := topology.NewButterfly(16).Graph
	a := Anneal(g, AnnealOptions{Seed: 5, Sweeps: 16})
	if !a.IsBisection() || a.Imbalance() > g.N()%2 {
		t.Errorf("anneal broke balance: %d/%d", a.SizeS(), a.SizeSbar())
	}
}

func TestAnnealTiny(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if c := Anneal(empty, AnnealOptions{Seed: 1}); c.Capacity() != 0 {
		t.Errorf("empty capacity %d", c.Capacity())
	}
	one := graph.NewBuilder(1).Build()
	if c := Anneal(one, AnnealOptions{Seed: 1}); !c.IsBisection() {
		t.Errorf("singleton not a bisection")
	}
}

func TestSwapDeltaMatchesRecompute(t *testing.T) {
	// The incremental swap delta must equal the recomputed difference,
	// including parallel edges between the swapped pair.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 3)
	b.AddEdge(0, 3) // parallel pair crossing the cut
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(2, 5)
	g := b.Build()
	c := cut.FromSet(g, []int{0, 1, 2})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var sNodes, tNodes []int
		for v := 0; v < g.N(); v++ {
			if c.InS(v) {
				sNodes = append(sNodes, v)
			} else {
				tNodes = append(tNodes, v)
			}
		}
		u := sNodes[rng.Intn(len(sNodes))]
		v := tNodes[rng.Intn(len(tNodes))]
		before := c.Capacity()
		want := 0
		c.Move(u)
		c.Move(v)
		want = c.Capacity() - before
		c.Move(u)
		c.Move(v)
		if got := swapDelta(g, c, u, v); got != want {
			t.Fatalf("swapDelta(%d,%d) = %d, recompute %d", u, v, got, want)
		}
		// Randomly apply the swap to vary the state.
		if rng.Intn(2) == 0 {
			c.Move(u)
			c.Move(v)
		}
	}
}
