package embed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topology"
)

// TestPropertyInducedCutBound: for any host cut, the induced guest cut is
// at most congestion × host capacity — the inequality every §1.4 lower
// bound rests on — across all the embeddings in this package.
func TestPropertyInducedCutBound(t *testing.T) {
	b := topology.NewButterfly(8)
	w := topology.NewWrappedButterfly(8)
	c := topology.NewCCC(8)
	hcEmb, _ := ButterflyIntoHypercube(b)
	embeddings := map[string]*Embedding{
		"Knn":   KnnIntoButterfly(b),
		"KN-Wn": KNIntoWrapped(w),
		"2KN":   DoubledCompleteIntoButterfly(topology.NewButterfly(4)),
		"Benes": BenesIntoButterfly(b),
		"CCC":   WrappedIntoCCC(w, c),
		"Hyper": hcEmb,
		"BkBn":  BkIntoBn(b, 1, 1),
		"MOS":   ButterflyIntoMOS(b, 2, 2),
	}
	rng := rand.New(rand.NewSource(10))
	for name, e := range embeddings {
		cong := e.Congestion()
		for trial := 0; trial < 10; trial++ {
			side := make([]bool, e.Host.N())
			for i := range side {
				side[i] = rng.Intn(2) == 0
			}
			hostCap := 0
			for _, he := range e.Host.Edges() {
				if side[he.U] != side[he.V] {
					hostCap++
				}
			}
			if induced := e.InducedGuestCut(side); induced > cong*hostCap {
				t.Fatalf("%s: induced %d > congestion %d × capacity %d",
					name, induced, cong, hostCap)
			}
		}
	}
}

// TestPropertyBkIntoBnParams: the Lemma 2.10 properties hold for random
// valid (n, i, j).
func TestPropertyBkIntoBnParams(t *testing.T) {
	f := func(dRaw, iRaw, jRaw uint8) bool {
		d := 2 + int(dRaw)%3 // host dim 2..4
		j := int(jRaw) % 3   // collapse 0..2
		host := topology.NewButterfly(1 << d)
		i := int(iRaw) % (d + 1)
		e := BkIntoBn(host, i, j)
		if err := e.Validate(); err != nil {
			return false
		}
		cong, uniform := e.UniformCongestion()
		return uniform && cong == 1<<j && e.Dilation() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPathsStayInHost: every path node of every embedding is a
// valid host node (a structural guard against index arithmetic slips).
func TestPropertyPathsStayInHost(t *testing.T) {
	b := topology.NewButterfly(16)
	for _, e := range []*Embedding{
		KnnIntoButterfly(b),
		BenesIntoButterfly(b),
		BkIntoBn(b, 2, 1),
		ButterflyIntoMOS(b, 4, 4),
	} {
		for _, p := range e.Paths {
			for _, v := range p {
				if v < 0 || v >= e.Host.N() {
					t.Fatalf("path node %d outside host", v)
				}
			}
		}
	}
}

// TestPropertyCongestionSymmetricUnderXor: the K_{n,n} embedding's
// congestion is invariant under relabeling the butterfly by column-xor
// automorphisms, reflecting Lemma 2.2's symmetry.
func TestPropertyCongestionSymmetricUnderXor(t *testing.T) {
	b := topology.NewButterfly(8)
	e := KnnIntoButterfly(b)
	cong := e.PairCongestion()
	perm := b.ColumnXorAutomorphism(5)
	for pair, c := range cong {
		u, v := perm[pair.U], perm[pair.V]
		if u > v {
			u, v = v, u
		}
		if cong[graph.Edge{U: int32(u), V: int32(v)}] != c {
			t.Fatalf("congestion not symmetric under xor automorphism")
		}
	}
}
