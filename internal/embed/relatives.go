package embed

import (
	"repro/internal/bitutil"
	"repro/internal/topology"
)

// BenesIntoButterfly builds the embedding behind the proof of Lemma 2.5: the
// ((log n)−1)-dimensional Beneš network embeds into Bn with load 1,
// congestion 1, and dilation 3, mapping the Beneš inputs onto the
// even-suffix half of L0 and its outputs onto the odd-suffix half — the
// partition (I,O) of L0 that makes Bn-with-ports rearrangeable.
//
// Construction: the Beneš is folded at its middle level. A forward-half node
// (c,l), l ≤ d (d = log n − 1), maps to Bn node ⟨c·2, l⟩; a backward-half
// node (c,l), l > d, maps to ⟨c·2+1, 2d−l⟩. Forward and backward edges map
// to single host edges. Each seam edge (between Beneš levels d and d+1)
// takes a length-3 path through the host's level-(d+1) "turnaround" row,
// with the straight and cross seam edges of a column routed through the two
// disjoint sides of the level-d/(d+1) 4-cycle so no host edge is reused.
func BenesIntoButterfly(host *topology.Butterfly) *Embedding {
	if host.Wraparound() {
		panic("embed: BenesIntoButterfly targets Bn")
	}
	n := host.Inputs()
	if n < 4 {
		panic("embed: Beneš embedding needs n ≥ 4")
	}
	d := host.Dim() - 1
	guest := topology.NewBenes(n / 2)

	fwdCol := func(c int) int { return c << 1 }   // direction bit 0
	bwdCol := func(c int) int { return c<<1 | 1 } // direction bit 1
	nodeMap := make([]int, guest.N())
	for v := 0; v < guest.N(); v++ {
		c, l := guest.Column(v), guest.Level(v)
		if l <= d {
			nodeMap[v] = host.Node(fwdCol(c), l)
		} else {
			nodeMap[v] = host.Node(bwdCol(c), 2*d-l)
		}
	}

	paths := make([][]int, guest.M())
	for ei, e := range guest.Edges() {
		u, v := int(e.U), int(e.V)
		lu, lv := guest.Level(u), guest.Level(v)
		if lu > lv {
			u, v = v, u
			lu, lv = lv, lu
		}
		if lu != d || lv != d+1 {
			// Forward or backward edge: single host edge.
			paths[ei] = []int{nodeMap[u], nodeMap[v]}
			continue
		}
		// Seam edge. u = (c,d), v = (c',d+1) with c' = c or c ⊕ e_d.
		c := guest.Column(u)
		cp := guest.Column(v)
		if cp == c {
			// Straight seam: cross down, straight up, straight up.
			paths[ei] = []int{
				host.Node(fwdCol(c), d),
				host.Node(bwdCol(c), d+1),
				host.Node(bwdCol(c), d),
				host.Node(bwdCol(c), d-1),
			}
		} else {
			// Cross seam: straight down, cross up, cross up.
			paths[ei] = []int{
				host.Node(fwdCol(c), d),
				host.Node(fwdCol(c), d+1),
				host.Node(bwdCol(c), d),
				host.Node(bwdCol(cp), d-1),
			}
		}
	}
	return &Embedding{Guest: guest.Graph, Host: host.Graph, NodeMap: nodeMap, Paths: paths}
}

// BenesIOPartition returns the Lemma 2.5 partition (I,O) of L0 of Bn induced
// by BenesIntoButterfly: I is the image of the Beneš inputs (even columns)
// and O the image of its outputs (odd columns), each of size n/2.
func BenesIOPartition(host *topology.Butterfly) (inputs, outputs []int) {
	n := host.Inputs()
	for c := 0; c < n/2; c++ {
		inputs = append(inputs, host.Node(c<<1, 0))
		outputs = append(outputs, host.Node(c<<1|1, 0))
	}
	return inputs, outputs
}

// WrappedIntoCCC builds the Lemma 3.3 embedding of Wn into CCCn with
// congestion 2: level i of Wn maps to cycle position i (position log n for
// level 0), straight edges map to cycle edges, and each cross edge takes a
// cycle edge followed by the cube edge of the flipped bit position.
func WrappedIntoCCC(w *topology.Butterfly, c *topology.CCC) *Embedding {
	if !w.Wraparound() {
		panic("embed: WrappedIntoCCC embeds Wn")
	}
	if c.Cycles() != w.Inputs() {
		panic("embed: CCC size does not match Wn")
	}
	d := w.Dim()
	pos := func(level int) int {
		if level == 0 {
			return d
		}
		return level
	}
	nodeMap := make([]int, w.N())
	for v := 0; v < w.N(); v++ {
		nodeMap[v] = c.Node(w.Column(v), pos(w.Level(v)))
	}
	paths := make([][]int, w.M())
	for ei, e := range w.Edges() {
		u, v := int(e.U), int(e.V)
		// Orient u at level i, v at level (i+1) mod d.
		if (w.Level(u)+1)%d != w.Level(v) {
			u, v = v, u
		}
		i := w.Level(u)
		q := i + 1 // cube/cycle position of the far endpoint (q = d at wrap)
		if w.Column(u) == w.Column(v) {
			paths[ei] = []int{nodeMap[u], nodeMap[v]}
		} else {
			paths[ei] = []int{
				nodeMap[u],
				c.Node(w.Column(u), q),
				c.Node(w.Column(v), q),
			}
		}
	}
	return &Embedding{Guest: w.Graph, Host: c.Graph, NodeMap: nodeMap, Paths: paths}
}

// ButterflyIntoHypercube embeds Bn into the hypercube of dimension
// log n + ⌈log(log n + 1)⌉ with load 1 and dilation 2: node ⟨w,i⟩ maps to
// the concatenation of w with the Gray code of i, so straight edges become
// hypercube edges and cross edges become length-2 paths (§1.5's
// constant-load/congestion/dilation relationship).
func ButterflyIntoHypercube(b *topology.Butterfly) (*Embedding, *topology.Hypercube) {
	if b.Wraparound() {
		panic("embed: ButterflyIntoHypercube targets Bn")
	}
	levels := b.Levels()
	lbits := bitutil.CeilLog2(levels)
	if lbits == 0 {
		lbits = 1
	}
	dim := b.Dim() + lbits
	h := topology.NewHypercube(dim)

	gray := func(i int) int { return i ^ (i >> 1) }
	nodeMap := make([]int, b.N())
	for v := 0; v < b.N(); v++ {
		nodeMap[v] = b.Column(v)<<lbits | gray(b.Level(v))
	}
	paths := make([][]int, b.M())
	for ei, e := range b.Edges() {
		u, v := int(e.U), int(e.V)
		if b.Column(u) == b.Column(v) {
			paths[ei] = []int{nodeMap[u], nodeMap[v]}
		} else {
			// Flip the column bit first, then the Gray bit.
			mid := b.Column(v)<<lbits | gray(b.Level(u))
			paths[ei] = []int{nodeMap[u], mid, nodeMap[v]}
		}
	}
	return &Embedding{Guest: b.Graph, Host: h.Graph, NodeMap: nodeMap, Paths: paths}, h
}
