// Package embed implements the embedding machinery of §1.4 and the concrete
// embeddings the paper's proofs rely on: K_{n,n} and 2K_N into Bn, K_N into
// Wn and Bn, B_{n·2^j} into Bn (Lemma 2.10), Bn into the mesh of stars
// (Lemma 2.11), the Beneš network into Bn (Lemma 2.5), Wn into CCCn
// (Lemma 3.3), and Bn into the hypercube (§1.5).
//
// An embedding maps guest nodes to host nodes and guest edges to host
// paths; its load, congestion and dilation (§1.4) turn cuts of the host
// into cuts of the guest and so yield the lower bounds on bisection width
// and edge expansion used throughout the paper.
package embed

import (
	"fmt"

	"repro/internal/graph"
)

// Embedding is an embedding of Guest into Host: NodeMap sends guest nodes to
// host nodes, and Paths[e] is the host path realizing guest edge e, given as
// a node sequence starting at NodeMap of one endpoint and ending at the
// other. A single-node path (length 0) is allowed when both endpoints map to
// the same host node, as happens in Lemma 2.10 when butterfly levels
// collapse.
type Embedding struct {
	Guest   *graph.Graph
	Host    *graph.Graph
	NodeMap []int
	Paths   [][]int
}

// Validate checks structural soundness: every guest node maps to a host
// node, and every guest edge's path connects the images of its endpoints
// through host edges. It returns the first problem found.
func (e *Embedding) Validate() error {
	if len(e.NodeMap) != e.Guest.N() {
		return fmt.Errorf("embed: node map has %d entries for %d guest nodes", len(e.NodeMap), e.Guest.N())
	}
	for v, h := range e.NodeMap {
		if h < 0 || h >= e.Host.N() {
			return fmt.Errorf("embed: guest node %d maps to invalid host node %d", v, h)
		}
	}
	if len(e.Paths) != e.Guest.M() {
		return fmt.Errorf("embed: %d paths for %d guest edges", len(e.Paths), e.Guest.M())
	}
	for ei, p := range e.Paths {
		ge := e.Guest.Edge(ei)
		if len(p) == 0 {
			return fmt.Errorf("embed: empty path for guest edge %d", ei)
		}
		a, b := e.NodeMap[ge.U], e.NodeMap[ge.V]
		first, last := p[0], p[len(p)-1]
		if !(first == a && last == b) && !(first == b && last == a) {
			return fmt.Errorf("embed: path of guest edge %d connects %d–%d, want %d–%d",
				ei, first, last, a, b)
		}
		for i := 0; i+1 < len(p); i++ {
			if !e.Host.HasEdge(p[i], p[i+1]) {
				return fmt.Errorf("embed: path of guest edge %d uses non-edge {%d,%d}",
					ei, p[i], p[i+1])
			}
		}
	}
	return nil
}

// Load returns the maximum number of guest nodes mapped to one host node.
func (e *Embedding) Load() int {
	count := make([]int, e.Host.N())
	max := 0
	for _, h := range e.NodeMap {
		count[h]++
		if count[h] > max {
			max = count[h]
		}
	}
	return max
}

// Dilation returns the length (in edges) of the longest path.
func (e *Embedding) Dilation() int {
	max := 0
	for _, p := range e.Paths {
		if len(p)-1 > max {
			max = len(p) - 1
		}
	}
	return max
}

// PairCongestion returns, for every unordered host node pair joined by an
// edge, the number of guest paths whose hops cross it. All host networks in
// this repository are simple graphs, so a pair identifies an edge.
func (e *Embedding) PairCongestion() map[graph.Edge]int {
	cong := make(map[graph.Edge]int)
	for _, p := range e.Paths {
		for i := 0; i+1 < len(p); i++ {
			u, v := int32(p[i]), int32(p[i+1])
			if u > v {
				u, v = v, u
			}
			cong[graph.Edge{U: u, V: v}]++
		}
	}
	return cong
}

// Congestion returns the maximum number of paths crossing any host edge.
func (e *Embedding) Congestion() int {
	max := 0
	for _, c := range e.PairCongestion() {
		if c > max {
			max = c
		}
	}
	return max
}

// UniformCongestion reports whether every host edge carries exactly the same
// number of paths, and that number. Several of the paper's embeddings
// (Lemmas 2.10 and 2.11) promise exact uniform congestion.
func (e *Embedding) UniformCongestion() (int, bool) {
	cong := e.PairCongestion()
	// Every host edge must appear, with equal count.
	want := -1
	for _, he := range e.Host.Edges() {
		c := cong[he]
		if want < 0 {
			want = c
		} else if c != want {
			return 0, false
		}
	}
	return want, true
}

// InducedGuestCut returns the number of guest edges whose paths cross the
// host cut given by side (true = in S). Removing the host cut edges
// disconnects exactly these guest edges — the counting at the heart of the
// §1.4 lower-bound technique.
func (e *Embedding) InducedGuestCut(side []bool) int {
	count := 0
	for _, p := range e.Paths {
		for i := 0; i+1 < len(p); i++ {
			if side[p[i]] != side[p[i+1]] {
				count++
				break
			}
		}
	}
	return count
}

// BisectionLowerBound computes the §1.4 bound: if the guest K has bisection
// width guestBW and the embedding has load 1 onto a host with the same node
// count, then BW(host) ≥ ⌈guestBW / congestion⌉.
func (e *Embedding) BisectionLowerBound(guestBW int) int {
	if e.Load() != 1 || e.Guest.N() != e.Host.N() {
		panic("embed: bisection lower bound needs a load-1 embedding onto an equal-size host")
	}
	c := e.Congestion()
	if c == 0 {
		return 0
	}
	return ceilDiv(guestBW, c)
}

// EdgeExpansionLowerBound computes the §1.4 expansion bound for a load-1
// embedding of the complete graph K_N: EE(host,k) ≥ ⌈k(N−k)/congestion⌉.
func (e *Embedding) EdgeExpansionLowerBound(k int) int {
	if e.Load() != 1 || e.Guest.N() != e.Host.N() {
		panic("embed: expansion lower bound needs a load-1 embedding onto an equal-size host")
	}
	c := e.Congestion()
	if c == 0 {
		return 0
	}
	n := e.Guest.N()
	return ceilDiv(k*(n-k), c)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// CompleteBisectionWidth returns BW(K_N) = ⌊N/2⌋·⌈N/2⌉ and
// DoubledCompleteBisectionWidth twice that, the guest widths used by the
// §1.4 arguments (the paper quotes N²/4 and N²/2 for even N).
func CompleteBisectionWidth(n int) int { return (n / 2) * ((n + 1) / 2) }

// DoubledCompleteBisectionWidth returns BW(2K_N).
func DoubledCompleteBisectionWidth(n int) int { return 2 * CompleteBisectionWidth(n) }
