package embed

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/topology"
)

// KnnIntoButterfly builds the Lemma 3.1 embedding of K_{n,n} into Bn: left
// node i maps to input ⟨i,0⟩, right node j to output ⟨j,log n⟩, and the edge
// (i,j) follows the unique monotone path between them (Lemma 2.3). The
// embedding has load 1 on the inputs and outputs, congestion n/2, and
// dilation log n.
func KnnIntoButterfly(b *topology.Butterfly) *Embedding {
	if b.Wraparound() {
		panic("embed: K_{n,n} embedding targets Bn")
	}
	n := b.Inputs()
	guest := topology.NewCompleteBipartite(n, n)
	nodeMap := make([]int, guest.N())
	for i := 0; i < n; i++ {
		nodeMap[i] = b.Node(i, 0)
		nodeMap[n+i] = b.Node(i, b.Dim())
	}
	paths := make([][]int, guest.M())
	for ei, e := range guest.Edges() {
		left, right := int(e.U), int(e.V)-n
		paths[ei] = b.MonotonePath(left, right)
	}
	return &Embedding{Guest: guest, Host: b.Graph, NodeMap: nodeMap, Paths: paths}
}

// threeLegPathBn routes in Bn from node u up its column to level 0, across
// the monotone path to the output in v's column, and back up v's column to
// v. This is the Bn adaptation of the Theorem 4.3 route.
func threeLegPathBn(b *topology.Butterfly, u, v int) []int {
	wu, iu := b.Column(u), b.Level(u)
	wv, iv := b.Column(v), b.Level(v)
	path := make([]int, 0, iu+b.Dim()+(b.Dim()-iv)+1)
	for l := iu; l >= 0; l-- {
		path = append(path, b.Node(wu, l))
	}
	mono := b.MonotonePath(wu, wv)
	path = append(path, mono[1:]...)
	for l := b.Dim() - 1; l >= iv; l-- {
		path = append(path, b.Node(wv, l))
	}
	return path
}

// KNIntoButterfly embeds the complete graph on all N = n(log n+1) nodes of
// Bn into Bn with load 1, using three-leg up/across/up routes. Its measured
// congestion gives the Ω(n) bisection lower bound and the Ω(k/log n) edge
// expansion lower bound of §1.4.
func KNIntoButterfly(b *topology.Butterfly) *Embedding {
	if b.Wraparound() {
		panic("embed: use KNIntoWrapped for Wn")
	}
	guest := topology.NewComplete(b.N())
	nodeMap := identity(b.N())
	paths := make([][]int, guest.M())
	for ei, e := range guest.Edges() {
		paths[ei] = threeLegPathBn(b, int(e.U), int(e.V))
	}
	return &Embedding{Guest: guest, Host: b.Graph, NodeMap: nodeMap, Paths: paths}
}

// DoubledCompleteIntoButterfly embeds 2K_N into Bn (the §1.4 argument for
// BW(Bn) ≥ n/2): the two parallel edges between u and v follow the two
// opposite-direction three-leg routes, u→v and v→u.
func DoubledCompleteIntoButterfly(b *topology.Butterfly) *Embedding {
	if b.Wraparound() {
		panic("embed: doubled complete embedding targets Bn")
	}
	guest := topology.NewDoubledComplete(b.N())
	nodeMap := identity(b.N())
	paths := make([][]int, guest.M())
	second := make(map[[2]int32]bool)
	for ei, e := range guest.Edges() {
		key := [2]int32{e.U, e.V}
		if !second[key] {
			paths[ei] = threeLegPathBn(b, int(e.U), int(e.V))
			second[key] = true
		} else {
			paths[ei] = reversePath(threeLegPathBn(b, int(e.V), int(e.U)))
		}
	}
	return &Embedding{Guest: guest, Host: b.Graph, NodeMap: nodeMap, Paths: paths}
}

// KNIntoWrapped builds the Theorem 4.3 embedding of K_N into Wn
// (N = n·log n): the path for {u,v} climbs u's column to level 0, follows
// the length-(log n) rotated monotone path into v's column (arriving back at
// level 0), and descends v's column in decreasing level order. Congestion is
// O(N log n).
func KNIntoWrapped(w *topology.Butterfly) *Embedding {
	if !w.Wraparound() {
		panic("embed: KNIntoWrapped targets Wn")
	}
	guest := topology.NewComplete(w.N())
	nodeMap := identity(w.N())
	d := w.Dim()
	paths := make([][]int, guest.M())
	for ei, e := range guest.Edges() {
		u, v := int(e.U), int(e.V)
		wu, iu := w.Column(u), w.Level(u)
		wv, iv := w.Column(v), w.Level(v)
		path := make([]int, 0, iu+d+(d-iv)+1)
		// Leg 1: up u's column to level 0.
		for l := iu; l >= 0; l-- {
			path = append(path, w.Node(wu, l))
		}
		// Leg 2: the full-length monotone path to level log n ≡ 0 of v's
		// column (even when wu = wv, per the theorem's description).
		mono := w.RotatedMonotonePath(wu, wv, 0)
		path = append(path, mono[1:]...)
		// Leg 3: down from level log n ≡ 0 in decreasing level order to v.
		for l := d - 1; l >= iv; l-- {
			path = append(path, w.Node(wv, l))
		}
		paths[ei] = path
	}
	return &Embedding{Guest: guest, Host: w.Graph, NodeMap: nodeMap, Paths: paths}
}

// BkIntoBn builds the Lemma 2.10 embedding π of B_{n·2^j} into Bn with
// parameters i and j: guest levels below i map level-to-level, the j+1
// guest levels i..i+j collapse onto host level i (dropping the middle j
// column bits), and the remaining levels shift down by j. It has dilation 1
// (collapsed edges become zero-length paths), uniform congestion 2^j, and
// the load profile of properties (3)–(5).
func BkIntoBn(host *topology.Butterfly, i, j int) *Embedding {
	if host.Wraparound() {
		panic("embed: BkIntoBn targets Bn")
	}
	if i < 0 || i > host.Dim() || j < 0 {
		panic(fmt.Sprintf("embed: bad BkIntoBn parameters i=%d j=%d", i, j))
	}
	dHost := host.Dim()
	dGuest := dHost + j
	guest := topology.NewButterfly(1 << dGuest)

	mapColumn := func(w int) int {
		pre := bitutil.Prefix(w, dGuest, i)
		suf := bitutil.Suffix(w, dGuest, dHost-i)
		return bitutil.Compose(pre, i, 0, 0, suf, dHost-i)
	}
	mapLevel := func(l int) int {
		switch {
		case l < i:
			return l
		case l <= i+j:
			return i
		default:
			return l - j
		}
	}
	nodeMap := make([]int, guest.N())
	for v := 0; v < guest.N(); v++ {
		nodeMap[v] = host.Node(mapColumn(guest.Column(v)), mapLevel(guest.Level(v)))
	}
	paths := make([][]int, guest.M())
	for ei, e := range guest.Edges() {
		a, b := nodeMap[e.U], nodeMap[e.V]
		if a == b {
			paths[ei] = []int{a}
		} else {
			paths[ei] = []int{a, b}
		}
	}
	return &Embedding{Guest: guest.Graph, Host: host.Graph, NodeMap: nodeMap, Paths: paths}
}

// ButterflyIntoMOS builds the Lemma 2.11 embedding of Bn into MOS_{j,k}
// (jk must divide n): the first log k levels map onto M1 by column-suffix
// class, the last log j levels onto M3 by column-prefix class, and the
// middle levels onto M2 by (suffix, prefix) class. Dilation 1, uniform
// congestion 2n/jk.
func ButterflyIntoMOS(b *topology.Butterfly, j, k int) *Embedding {
	if b.Wraparound() {
		panic("embed: ButterflyIntoMOS targets Bn")
	}
	if !bitutil.IsPow2(j) || !bitutil.IsPow2(k) || j < 2 || k < 2 {
		panic("embed: j and k must be powers of two ≥ 2")
	}
	n := b.Inputs()
	if n%(j*k) != 0 {
		panic(fmt.Sprintf("embed: jk = %d must divide n = %d", j*k, n))
	}
	logJ, logK := bitutil.Log2(j), bitutil.Log2(k)
	d := b.Dim()
	mos := topology.NewMeshOfStars(j, k)

	nodeMap := make([]int, b.N())
	for v := 0; v < b.N(); v++ {
		w, l := b.Column(v), b.Level(v)
		s := bitutil.Suffix(w, d, logJ) // M1 class: component of Bn[0, log n − log j]
		p := bitutil.Prefix(w, d, logK) // M3 class: component of Bn[log k, log n]
		switch {
		case l <= logK-1:
			nodeMap[v] = mos.M1Node(s)
		case l <= d-logJ:
			nodeMap[v] = mos.M2Node(s, p)
		default:
			nodeMap[v] = mos.M3Node(p)
		}
	}
	paths := make([][]int, b.M())
	for ei, e := range b.Edges() {
		a, bb := nodeMap[e.U], nodeMap[e.V]
		if a == bb {
			paths[ei] = []int{a}
		} else {
			paths[ei] = []int{a, bb}
		}
	}
	return &Embedding{Guest: b.Graph, Host: mos.Graph, NodeMap: nodeMap, Paths: paths}
}

func identity(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func reversePath(p []int) []int {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}
