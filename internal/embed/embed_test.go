package embed

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestKnnIntoButterfly(t *testing.T) {
	// Lemma 3.1: load 1 (on the used nodes), congestion n/2, dilation log n.
	for _, n := range []int{4, 8, 16} {
		b := topology.NewButterfly(n)
		e := KnnIntoButterfly(b)
		if err := e.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e.Load() != 1 {
			t.Errorf("n=%d: load %d, want 1", n, e.Load())
		}
		if got := e.Congestion(); got != n/2 {
			t.Errorf("n=%d: congestion %d, want %d", n, got, n/2)
		}
		if got := e.Dilation(); got != b.Dim() {
			t.Errorf("n=%d: dilation %d, want %d", n, got, b.Dim())
		}
	}
}

func TestKNIntoWrapped(t *testing.T) {
	// Theorem 4.3's embedding: valid, load 1, congestion O(N log n).
	for _, n := range []int{4, 8, 16} {
		w := topology.NewWrappedButterfly(n)
		e := KNIntoWrapped(w)
		if err := e.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e.Load() != 1 {
			t.Errorf("n=%d: load %d", n, e.Load())
		}
		N := w.N()
		d := w.Dim()
		if got, limit := e.Congestion(), 2*N*d; got > limit {
			t.Errorf("n=%d: congestion %d exceeds O(N log n) budget %d", n, got, limit)
		}
		if got, limit := e.Dilation(), 3*d; got > limit {
			t.Errorf("n=%d: dilation %d exceeds 3 log n = %d", n, got, limit)
		}
	}
}

func TestKNIntoButterflyLowerBounds(t *testing.T) {
	// The induced lower bounds must sit below the known truths:
	// BW(Bn) ≥ N²/4c and EE ≥ k(N−k)/c.
	b := topology.NewButterfly(8)
	e := KNIntoButterfly(b)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	lb := e.BisectionLowerBound(CompleteBisectionWidth(b.N()))
	if lb < 1 {
		t.Errorf("trivial lower bound %d", lb)
	}
	if lb > 8 { // BW(B8) = 8 exactly, so the bound cannot exceed it
		t.Errorf("lower bound %d exceeds BW(B8) = 8", lb)
	}
	for _, k := range []int{1, 4, 8, 16} {
		if got := e.EdgeExpansionLowerBound(k); got < 1 {
			t.Errorf("k=%d: degenerate expansion bound %d", k, got)
		}
	}
}

func TestDoubledCompleteIntoButterfly(t *testing.T) {
	// §1.4: 2K_N into Bn gives BW(Bn) ≥ N²/2c ≈ n/2.
	for _, n := range []int{4, 8} {
		b := topology.NewButterfly(n)
		e := DoubledCompleteIntoButterfly(b)
		if err := e.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e.Load() != 1 {
			t.Errorf("load %d", e.Load())
		}
		lb := e.BisectionLowerBound(DoubledCompleteBisectionWidth(b.N()))
		if lb < n/2-1 {
			t.Errorf("n=%d: 2K_N lower bound %d, expected ≈ n/2 = %d", n, lb, n/2)
		}
		if lb > n {
			t.Errorf("n=%d: lower bound %d above BW ≤ n", n, lb)
		}
	}
}

func TestBkIntoBnProperties(t *testing.T) {
	// Lemma 2.10: dilation 1, uniform congestion exactly 2^j, and the load
	// profile of properties (3)–(5).
	for _, tc := range []struct{ n, i, j int }{
		{8, 1, 1}, {8, 2, 1}, {8, 0, 1}, {8, 3, 1}, {8, 1, 2}, {16, 2, 1},
	} {
		host := topology.NewButterfly(tc.n)
		e := BkIntoBn(host, tc.i, tc.j)
		if err := e.Validate(); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if got := e.Dilation(); got > 1 {
			t.Errorf("%+v: dilation %d, want ≤ 1", tc, got)
		}
		cong, uniform := e.UniformCongestion()
		if !uniform {
			t.Errorf("%+v: congestion not uniform", tc)
		}
		if cong != 1<<tc.j {
			t.Errorf("%+v: congestion %d, want %d", tc, cong, 1<<tc.j)
		}
		// Load: (j+1)·2^j on host level i, uniform 2^j elsewhere.
		load := make(map[int]int)
		for _, h := range e.NodeMap {
			load[h]++
		}
		for hv, l := range load {
			lvl := host.Level(hv)
			want := 1 << tc.j
			if lvl == tc.i {
				want = (tc.j + 1) << tc.j
			}
			if l != want {
				t.Errorf("%+v: load %d on level-%d node, want %d", tc, l, lvl, want)
			}
		}
	}
}

func TestLemma212Property5Bisection(t *testing.T) {
	// The Lemma 2.12(2) mechanism: a cut of Bn bisecting level i pulls back
	// through BkIntoBn to a cut of B_{n·2^j} bisecting the guest levels
	// i..i+j. Check the counting with the column cut (bisects every level).
	host := topology.NewButterfly(8)
	e := BkIntoBn(host, 1, 1)
	side := make([]bool, host.N())
	for v := 0; v < host.N(); v++ {
		side[v] = host.Column(v) < 4
	}
	hostCut := 0
	for _, he := range host.Edges() {
		if side[he.U] != side[he.V] {
			hostCut++
		}
	}
	induced := e.InducedGuestCut(side)
	// With uniform congestion 2^j, the induced guest cut is exactly
	// 2^j · hostCut.
	if induced != 2*hostCut {
		t.Errorf("induced guest cut %d, want %d", induced, 2*hostCut)
	}
}

func TestButterflyIntoMOS(t *testing.T) {
	// Lemma 2.11: dilation 1, uniform congestion exactly 2n/jk, level
	// loads per properties (3)–(5).
	for _, tc := range []struct{ n, j, k int }{
		{8, 2, 2}, {8, 2, 4}, {8, 4, 2}, {16, 2, 2}, {16, 4, 4}, {16, 2, 8},
	} {
		b := topology.NewButterfly(tc.n)
		e := ButterflyIntoMOS(b, tc.j, tc.k)
		if err := e.Validate(); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if got := e.Dilation(); got > 1 {
			t.Errorf("%+v: dilation %d", tc, got)
		}
		cong, uniform := e.UniformCongestion()
		if !uniform {
			t.Errorf("%+v: congestion not uniform", tc)
		}
		if want := 2 * tc.n / (tc.j * tc.k); cong != want {
			t.Errorf("%+v: congestion %d, want %d", tc, cong, want)
		}
	}
}

func TestButterflyIntoMOSLoads(t *testing.T) {
	// Property (5): when jk = n every M2 node receives exactly one node.
	b := topology.NewButterfly(16)
	mos := topology.NewMeshOfStars(4, 4)
	e := ButterflyIntoMOS(b, 4, 4)
	load := make(map[int]int)
	for _, h := range e.NodeMap {
		load[h]++
	}
	for _, v := range mos.M2Nodes() {
		if load[v] != 1 {
			t.Errorf("M2 node load %d, want 1 when jk = n", load[v])
		}
	}
	// Properties (3)/(4): uniform loads on M1 and M3.
	logK, logJ := 2, 2
	wantM1 := (16 / 4) * logK
	wantM3 := (16 / 4) * logJ
	for a := 0; a < 4; a++ {
		if load[mos.M1Node(a)] != wantM1 {
			t.Errorf("M1 load %d, want %d", load[mos.M1Node(a)], wantM1)
		}
		if load[mos.M3Node(a)] != wantM3 {
			t.Errorf("M3 load %d, want %d", load[mos.M3Node(a)], wantM3)
		}
	}
}

func TestBenesIntoButterfly(t *testing.T) {
	// Lemma 2.5's proof: load 1, congestion 1, dilation 3, I/O on L0.
	for _, n := range []int{4, 8, 16, 32} {
		host := topology.NewButterfly(n)
		e := BenesIntoButterfly(host)
		if err := e.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e.Load() != 1 {
			t.Errorf("n=%d: load %d, want 1", n, e.Load())
		}
		if got := e.Congestion(); got != 1 {
			t.Errorf("n=%d: congestion %d, want 1", n, got)
		}
		if got := e.Dilation(); got != 3 {
			t.Errorf("n=%d: dilation %d, want 3", n, got)
		}
		// The Beneš inputs and outputs land on L0 and partition it.
		guest := topology.NewBenes(n / 2)
		seen := make(map[int]bool)
		for _, v := range append(guest.InputNodes(), guest.OutputNodes()...) {
			hv := e.NodeMap[v]
			if host.Level(hv) != 0 {
				t.Errorf("n=%d: I/O node mapped to level %d", n, host.Level(hv))
			}
			if seen[hv] {
				t.Errorf("n=%d: duplicate I/O image", n)
			}
			seen[hv] = true
		}
		if len(seen) != n {
			t.Errorf("n=%d: I/O covers %d of %d L0 nodes", n, len(seen), n)
		}
		in, out := BenesIOPartition(host)
		if len(in) != n/2 || len(out) != n/2 {
			t.Errorf("n=%d: partition sizes %d/%d", n, len(in), len(out))
		}
	}
}

func TestWrappedIntoCCC(t *testing.T) {
	// Lemma 3.3: congestion 2.
	for _, n := range []int{8, 16, 32} {
		w := topology.NewWrappedButterfly(n)
		c := topology.NewCCC(n)
		e := WrappedIntoCCC(w, c)
		if err := e.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e.Load() != 1 {
			t.Errorf("n=%d: load %d", n, e.Load())
		}
		if got := e.Congestion(); got != 2 {
			t.Errorf("n=%d: congestion %d, want 2", n, got)
		}
		if got := e.Dilation(); got != 2 {
			t.Errorf("n=%d: dilation %d, want 2", n, got)
		}
	}
}

func TestButterflyIntoHypercube(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		b := topology.NewButterfly(n)
		e, h := ButterflyIntoHypercube(b)
		if err := e.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e.Load() != 1 {
			t.Errorf("n=%d: load %d", n, e.Load())
		}
		if got := e.Dilation(); got > 2 {
			t.Errorf("n=%d: dilation %d, want ≤ 2", n, got)
		}
		if got := e.Congestion(); got > 4 {
			t.Errorf("n=%d: congestion %d, want a small constant", n, got)
		}
		if h.N() < b.N() {
			t.Errorf("host smaller than guest")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	b := topology.NewButterfly(4)
	e := KnnIntoButterfly(b)

	bad := *e
	bad.NodeMap = append([]int{}, e.NodeMap...)
	bad.NodeMap[0] = -1
	if bad.Validate() == nil {
		t.Errorf("invalid node map not caught")
	}

	bad2 := *e
	bad2.Paths = append([][]int{}, e.Paths...)
	bad2.Paths[0] = []int{e.Paths[0][0]} // endpoint mismatch
	if bad2.Validate() == nil {
		t.Errorf("truncated path not caught")
	}

	bad3 := *e
	bad3.Paths = append([][]int{}, e.Paths...)
	p := append([]int{}, e.Paths[0]...)
	if len(p) >= 3 {
		p[1] = p[len(p)-1] // break an interior hop
		bad3.Paths[0] = p
		if bad3.Validate() == nil {
			t.Errorf("broken hop not caught")
		}
	}
}

func TestInducedGuestCutRandom(t *testing.T) {
	// For any host cut, the induced guest cut is at most
	// congestion × (host cut capacity).
	b := topology.NewButterfly(8)
	e := KnnIntoButterfly(b)
	cong := e.Congestion()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		side := make([]bool, b.N())
		for i := range side {
			side[i] = rng.Intn(2) == 0
		}
		hostCap := 0
		for _, he := range b.Edges() {
			if side[he.U] != side[he.V] {
				hostCap++
			}
		}
		if induced := e.InducedGuestCut(side); induced > cong*hostCap {
			t.Fatalf("induced %d exceeds congestion %d × capacity %d", induced, cong, hostCap)
		}
	}
}

func TestCompleteBisectionWidths(t *testing.T) {
	if CompleteBisectionWidth(4) != 4 || CompleteBisectionWidth(5) != 6 {
		t.Errorf("K_N widths wrong: %d, %d", CompleteBisectionWidth(4), CompleteBisectionWidth(5))
	}
	if DoubledCompleteBisectionWidth(4) != 8 {
		t.Errorf("2K_N width wrong")
	}
	// Cross-check against the exact solver... via graph enumeration on K5.
	g := topology.NewComplete(5)
	want := CompleteBisectionWidth(5)
	best := 1 << 30
	for mask := 0; mask < 32; mask++ {
		pc := 0
		for i := 0; i < 5; i++ {
			if mask>>i&1 == 1 {
				pc++
			}
		}
		if pc != 2 && pc != 3 {
			continue
		}
		capc := 0
		for _, e := range g.Edges() {
			if (mask>>e.U)&1 != (mask>>e.V)&1 {
				capc++
			}
		}
		if capc < best {
			best = capc
		}
	}
	if best != want {
		t.Errorf("BW(K5) = %d, formula %d", best, want)
	}
}
