// Package codec is the versioned binary framing under the reproduction's
// persistence layer: the on-disk result store, the route CSR index
// snapshots, and any future durable artifact share one record format, so
// one strict decoder guards them all.
//
// A stream is a fixed header (magic + format version) followed by
// length-prefixed records, each carrying a kind tag, a key, an opaque
// payload and a CRC-32 over the whole frame. The decoder is strict by
// design: a short header or record is ErrTruncated, a flipped byte is
// ErrChecksum, a foreign file is ErrBadMagic, a file written by a newer
// format is ErrVersion — never a panic, never a silently misread record.
// Callers that own append-only files (internal/store) use those error
// classes to distinguish a torn tail write (recoverable: truncate to the
// last good record) from mid-file corruption (fatal).
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// magic opens every codec stream: "BFC" for butterfly codec plus a
// sentinel byte that is invalid UTF-8 and unlikely in text files, so a
// JSON manifest handed to the decoder by mistake fails on the first read.
var magic = [4]byte{'B', 'F', 'C', 0xBF}

// Version is the format version stamped into every stream header. Bump it
// on any incompatible frame change; the decoder rejects both older and
// newer versions, so skewed readers fail loudly instead of misframing.
const Version = 1

// HeaderSize is the byte length of the stream header: magic, a uint16
// version, and two reserved zero bytes.
const HeaderSize = 8

// frameHeadSize is the fixed prefix of one record: kind (uint8), key
// length (uint32) and payload length (uint32), little-endian.
const frameHeadSize = 9

// frameTailSize is the CRC-32 (IEEE) over the head, key and payload.
const frameTailSize = 4

// MaxRecordBytes bounds one record's key+payload. The decoder rejects
// larger length prefixes before allocating, so a corrupted length field
// costs an error, not a multi-gigabyte allocation.
const MaxRecordBytes = 1 << 28

// Kind tags what a record's payload decodes as. Unknown kinds decode
// fine (the frame is self-describing); interpreting them is the caller's
// business, so new kinds are backward-compatible.
type Kind uint8

const (
	// KindManifest is a rendered run-manifest document — the byte-exact
	// body a butterflyd response serves (internal/store records).
	KindManifest Kind = 1
	// KindWitness is a witness certificate: the set behind an expansion or
	// bisection bound, serialized for re-verification.
	KindWitness Kind = 2
	// KindRouteIndex is a compiled directed-edge CSR routing index
	// (internal/route snapshot records).
	KindRouteIndex Kind = 3
	// KindClusterMsg is one internal/cluster wire message: the key names
	// the message type, the payload is its binary body. Cluster peers
	// exchange exactly one such record per connection direction, so every
	// cross-node byte rides the same CRC-framed format as the store.
	KindClusterMsg Kind = 4
)

// Decoder error classes. Wrapping errors carry position context; test
// with errors.Is.
var (
	ErrBadMagic  = errors.New("codec: bad magic (not a codec stream)")
	ErrVersion   = errors.New("codec: unsupported format version")
	ErrTruncated = errors.New("codec: truncated stream")
	ErrChecksum  = errors.New("codec: record checksum mismatch")
	ErrTooLarge  = errors.New("codec: record length exceeds limit")
)

// Record is one framed entry: a kind tag, a key (the store's canonical
// request key, a route index's shape key, ...) and an opaque payload.
type Record struct {
	Kind    Kind
	Key     string
	Payload []byte
}

// FrameSize returns the encoded byte length of r, header excluded.
func FrameSize(r Record) int64 {
	return int64(frameHeadSize + len(r.Key) + len(r.Payload) + frameTailSize)
}

// Writer frames records onto an io.Writer. Each record is assembled in
// one buffer and written with a single Write call, so an append-only file
// sees whole frames (a crash can tear at most the final one).
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter starts a fresh stream on w: it writes the header and returns
// a writer for the records.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [HeaderSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("codec: writing header: %w", err)
	}
	return &Writer{w: w}, nil
}

// Resume returns a writer that appends records to a stream whose header
// was already written (reopening an append-only file). The caller is
// responsible for having validated the existing header via NewReader.
func Resume(w io.Writer) *Writer { return &Writer{w: w} }

// Write frames one record and returns the number of bytes appended.
func (w *Writer) Write(r Record) (int64, error) {
	if int64(len(r.Key))+int64(len(r.Payload)) > MaxRecordBytes {
		return 0, fmt.Errorf("%w: key %d + payload %d bytes", ErrTooLarge, len(r.Key), len(r.Payload))
	}
	n := int(FrameSize(r))
	if cap(w.buf) < n {
		w.buf = make([]byte, 0, n)
	}
	buf := w.buf[:frameHeadSize]
	buf[0] = byte(r.Kind)
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(r.Payload)))
	buf = append(buf, r.Key...)
	buf = append(buf, r.Payload...)
	sum := crc32.ChecksumIEEE(buf)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	if _, err := w.w.Write(buf); err != nil {
		return 0, fmt.Errorf("codec: writing record: %w", err)
	}
	return int64(n), nil
}

// Reader decodes a stream sequentially, tracking byte offsets so callers
// building an offset index (internal/store) know where each record
// starts.
type Reader struct {
	r   io.Reader
	off int64 // offset of the next unread byte
}

// NewReader validates the stream header of r and returns a reader
// positioned at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("%w: stream version %d, this build reads %d", ErrVersion, v, Version)
	}
	return &Reader{r: r, off: HeaderSize}, nil
}

// Offset returns the stream offset of the next record — after a failed
// Next, the position of the first bad byte's frame, which is where an
// append-only owner truncates to recover a torn tail.
func (d *Reader) Offset() int64 { return d.off }

// Next decodes the next record. A clean end of stream is io.EOF; a
// stream ending inside a frame is ErrTruncated; a frame whose bytes do
// not match their CRC is ErrChecksum.
func (d *Reader) Next() (Record, error) {
	rec, n, err := decodeRecord(d.r)
	if err == nil {
		d.off += n
	}
	return rec, err
}

// decodeRecord reads one full frame from r, verifying lengths and CRC.
func decodeRecord(r io.Reader) (Record, int64, error) {
	var head [frameHeadSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("%w: record head: %v", ErrTruncated, err)
	}
	keyLen := binary.LittleEndian.Uint32(head[1:5])
	payloadLen := binary.LittleEndian.Uint32(head[5:9])
	if int64(keyLen)+int64(payloadLen) > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: key %d + payload %d bytes", ErrTooLarge, keyLen, payloadLen)
	}
	body := make([]byte, int(keyLen)+int(payloadLen)+frameTailSize)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, 0, fmt.Errorf("%w: record body: %v", ErrTruncated, err)
	}
	content := body[:len(body)-frameTailSize]
	want := binary.LittleEndian.Uint32(body[len(body)-frameTailSize:])
	crc := crc32.ChecksumIEEE(head[:])
	crc = crc32.Update(crc, crc32.IEEETable, content)
	if crc != want {
		return Record{}, 0, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, crc, want)
	}
	return Record{
		Kind:    Kind(head[0]),
		Key:     string(content[:keyLen]),
		Payload: content[keyLen:],
	}, int64(frameHeadSize + len(body)), nil
}

// ReadRecordAt decodes the single record starting at offset off of ra —
// the store's random-access read path. The frame's CRC is verified on
// every read, so a flipped bit on disk surfaces as ErrChecksum at the
// caller, never as a silently wrong payload.
func ReadRecordAt(ra io.ReaderAt, off int64) (Record, error) {
	sr := io.NewSectionReader(ra, off, 1<<62)
	rec, _, err := decodeRecord(sr)
	if err == io.EOF {
		err = fmt.Errorf("%w: no record at offset %d", ErrTruncated, off)
	}
	return rec, err
}
