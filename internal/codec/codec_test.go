package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// encodeStream frames records into a fresh stream and returns the bytes.
func encodeStream(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	off := int64(HeaderSize)
	for _, r := range recs {
		n, err := w.Write(r)
		if err != nil {
			t.Fatalf("Write(%q): %v", r.Key, err)
		}
		if n != FrameSize(r) {
			t.Fatalf("Write(%q) = %d bytes, FrameSize says %d", r.Key, n, FrameSize(r))
		}
		off += n
	}
	if int64(buf.Len()) != off {
		t.Fatalf("stream is %d bytes, frame accounting says %d", buf.Len(), off)
	}
	return buf.Bytes()
}

var testRecords = []Record{
	{Kind: KindManifest, Key: "bisection?network=bn&n=8&exact-nodes=32", Payload: []byte(`{"schema":"repro/run-manifest"}`)},
	{Kind: KindRouteIndex, Key: "n=8&wrap=false", Payload: bytes.Repeat([]byte{0xAB, 0, 0x7F}, 100)},
	{Kind: KindWitness, Key: "", Payload: nil}, // empty key and payload are legal
	{Kind: KindManifest, Key: "k", Payload: []byte{0x00}},
}

func TestRoundTrip(t *testing.T) {
	data := encodeStream(t, testRecords...)
	d, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	offsets := []int64{d.Offset()}
	for i, want := range testRecords {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("Next[%d]: %v", i, err)
		}
		if got.Kind != want.Kind || got.Key != want.Key || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
		offsets = append(offsets, d.Offset())
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// Random access: every record is independently readable (and CRC
	// verified) at the offset sequential decoding reported.
	ra := bytes.NewReader(data)
	for i, want := range testRecords {
		got, err := ReadRecordAt(ra, offsets[i])
		if err != nil {
			t.Fatalf("ReadRecordAt(%d): %v", offsets[i], err)
		}
		if got.Key != want.Key || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("ReadRecordAt record %d mismatch", i)
		}
	}
}

// TestTruncationAtEveryBoundary chops a valid stream at every byte length
// and asserts the decoder returns a clean error (or decodes the intact
// prefix records and then errs) — never a panic, never a phantom record.
func TestTruncationAtEveryBoundary(t *testing.T) {
	data := encodeStream(t, testRecords...)
	// Record boundaries: decoding a prefix cut exactly at one is a valid
	// shorter stream, so cuts there must yield io.EOF after the intact
	// records, and cuts anywhere else must yield ErrTruncated.
	boundary := map[int64]bool{}
	d, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	boundary[d.Offset()] = true
	for {
		if _, err := d.Next(); err != nil {
			break
		}
		boundary[d.Offset()] = true
	}

	for cut := 0; cut < len(data); cut++ {
		prefix := data[:cut]
		d, err := NewReader(bytes.NewReader(prefix))
		if cut < HeaderSize {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: header error = %v, want ErrTruncated", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: NewReader: %v", cut, err)
		}
		var last error
		for {
			if _, last = d.Next(); last != nil {
				break
			}
		}
		if boundary[int64(cut)] {
			if last != io.EOF {
				t.Fatalf("cut %d (record boundary): %v, want io.EOF", cut, last)
			}
		} else if !errors.Is(last, ErrTruncated) {
			t.Fatalf("cut %d: %v, want ErrTruncated", cut, last)
		}
	}
}

// TestEveryByteFlipIsDetected flips each byte of a valid stream in turn
// and asserts a full decode pass reports an error: magic and version
// flips fail the header, length flips fail as truncation or size-limit
// errors, and every content flip fails the CRC. No flip may yield a
// clean, silently different decode.
func TestEveryByteFlipIsDetected(t *testing.T) {
	data := encodeStream(t, testRecords...)
	decodeAll := func(b []byte) error {
		d, err := NewReader(bytes.NewReader(b))
		if err != nil {
			return err
		}
		n := 0
		for {
			rec, err := d.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			// Compare against the original records: a surviving decode
			// must be byte-faithful (e.g. a flip inside a reserved header
			// byte is undetectable but also harmless only if content
			// matches).
			if n >= len(testRecords) {
				return errors.New("silent corruption: extra record decoded")
			}
			want := testRecords[n]
			if rec.Kind != want.Kind || rec.Key != want.Key || !bytes.Equal(rec.Payload, want.Payload) {
				return errors.New("silent corruption: decoded record differs")
			}
			n++
		}
	}

	for i := range data {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[i] ^= flip
			err := decodeAll(mut)
			// The two reserved header bytes are the only positions where a
			// flip may legitimately pass (they are not covered by any CRC
			// and carry no meaning) — everywhere else must error, and the
			// "silent corruption" probe above catches a content change
			// that somehow validated.
			if i == 6 || i == 7 {
				continue
			}
			if err == nil {
				t.Fatalf("flip 0x%02x at byte %d: decode passed silently", flip, i)
			}
			if strings.Contains(err.Error(), "silent corruption") {
				t.Fatalf("flip 0x%02x at byte %d: %v", flip, i, err)
			}
		}
	}
}

func TestBadMagicAndForeignFiles(t *testing.T) {
	cases := map[string][]byte{
		"json":    []byte(`{"schema": "repro/run-manifest", "version": 1}`),
		"text":    []byte("hello, this is not a codec stream at all"),
		"zeroes":  make([]byte, 64),
		"garbage": {0xDE, 0xAD, 0xBE, 0xEF, 1, 0, 0, 0, 9, 9, 9},
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadMagic) {
			t.Errorf("%s: NewReader = %v, want ErrBadMagic", name, err)
		}
	}
}

func TestFutureVersionRejected(t *testing.T) {
	data := encodeStream(t, testRecords[0])
	for _, v := range []uint16{0, Version + 1, 0xFFFF} {
		mut := append([]byte(nil), data...)
		binary.LittleEndian.PutUint16(mut[4:6], v)
		if _, err := NewReader(bytes.NewReader(mut)); !errors.Is(err, ErrVersion) {
			t.Errorf("version %d: NewReader = %v, want ErrVersion", v, err)
		}
	}
}

// TestOversizeLengthRejected corrupts a length prefix to an absurd value
// and asserts the decoder refuses before allocating.
func TestOversizeLengthRejected(t *testing.T) {
	data := encodeStream(t, testRecords[0])
	mut := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(mut[HeaderSize+5:], uint32(MaxRecordBytes)) // payload len; +key pushes past limit
	d, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Next = %v, want ErrTooLarge", err)
	}

	if _, err := (&Writer{w: io.Discard}).Write(Record{Payload: make([]byte, 1)}); err != nil {
		t.Fatalf("tiny write rejected: %v", err)
	}
}

// TestWriterRejectsOversizeRecord: the writer enforces the same limit the
// reader does, so a stream we write is always a stream we can read.
func TestWriterRejectsOversizeRecord(t *testing.T) {
	w := Resume(io.Discard)
	big := Record{Key: strings.Repeat("k", 1<<10)}
	big.Payload = make([]byte, MaxRecordBytes)
	if _, err := w.Write(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Write = %v, want ErrTooLarge", err)
	}
}

// TestResumeAppends: records appended via Resume after reopening decode
// seamlessly after the originals.
func TestResumeAppends(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	w := Resume(&buf)
	for _, r := range testRecords {
		if _, err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	d, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for range testRecords {
		if _, err := d.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("tail: %v", err)
	}
}
