// Package tablefmt renders fixed-width text tables for the experiment
// harness, matching the row/series style of the paper's §4.3 summaries.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows under a header and renders with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "%s\n", t.title)
	}
	line := make([]string, len(t.headers))
	for i, h := range t.headers {
		line[i] = pad(h, widths[i])
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(line, "  "))
	for i := range line {
		line[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(line, "  "))
	for _, row := range t.rows {
		for i := range line {
			if i < len(row) {
				line[i] = pad(row[i], widths[i])
			} else {
				line[i] = pad("", widths[i])
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(line, "  "))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}
