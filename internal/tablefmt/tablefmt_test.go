package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tb := New("Title", "net", "value")
	tb.AddRow("B8", 8)
	tb.AddRow("W16", 16)
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "net") || !strings.Contains(out, "value") {
		t.Errorf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "B8") || !strings.Contains(out, "16") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "x")
	tb.AddRow(0.82842712)
	if !strings.Contains(tb.String(), "0.8284") {
		t.Errorf("float not rendered to 4 places:\n%s", tb.String())
	}
}

func TestColumnsAligned(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("short", 1)
	tb.AddRow("muchlongervalue", 2)
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// The "b" column must start at the same offset on every row.
	idx := strings.Index(lines[0], "b")
	for _, ln := range lines[2:] {
		cell := strings.TrimSpace(ln[idx : idx+1])
		if cell != "1" && cell != "2" {
			t.Errorf("misaligned column in %q", ln)
		}
	}
}

func TestShortRow(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("only")
	if !strings.Contains(tb.String(), "only") {
		t.Errorf("short row dropped")
	}
}
