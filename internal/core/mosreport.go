package core

import (
	"repro/internal/mos"
	"repro/internal/tablefmt"
)

// MOSConvergence computes the Lemma 2.19 series: BW(MOS_{j,j},M2)/j²
// descending toward √2−1 (experiment E3).
func MOSConvergence(js []int) []mos.Result {
	out := make([]mos.Result, 0, len(js))
	for _, j := range js {
		out = append(out, mos.M2BisectionWidth(j))
	}
	return out
}

// RenderMOSTable renders the convergence series with the optimal class
// fractions, which Lemma 2.18 sends to (√½, √½).
func RenderMOSTable(results []mos.Result) string {
	t := tablefmt.New("BW(MOS_{j,j}, M2)/j² → √2−1 (Lemmas 2.17–2.19)",
		"j", "BW(MOS,M2)", "ratio", "x=a/j", "y=b/j", "limit √2−1")
	for _, r := range results {
		t.AddRow(r.J, r.Capacity, r.Ratio,
			float64(r.A)/float64(r.J), float64(r.B)/float64(r.J), mos.Limit)
	}
	return t.String()
}
