package core

import "repro/internal/obs"

// CheckRow is a scalar verification result in the run manifest (Thompson
// floor, Lemma 3.1 input-bisection check, ...).
type CheckRow struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

// AppendManifestTables serializes every table of the full report into the
// run manifest, one obs.Table per rendered text table. Expansion tables
// are keyed by the kind slug ("expansion.ee_wn", ...), with the
// enumerable-size exact rows appended to their kind's table; the two E12
// variant tables merge into one "variants" table (rows carry n).
func (r *FullReport) AppendManifestTables(m *obs.Manifest) {
	m.AddTable("structure", "E1: structure (Fig. 1, §1.1)", r.Structure).
		AddTable("bisection.bn", "E2: BW(Bn) (Theorem 2.20)", r.Bn).
		AddTable("bisection.sub_folklore", "E2: sub-n plans vs folklore", r.SubFolklore).
		AddTable("mos", "E3: mesh of stars (Lemmas 2.17–2.19)", r.MOS).
		AddTable("bisection.wn", "E4: BW(Wn) = n (Lemma 3.2)", r.Wn).
		AddTable("bisection.ccc", "E5: BW(CCCn) = n/2 (Lemma 3.3)", r.CCC)

	expansion := make(map[string][]ExpansionRow)
	var order []string
	appendRows := func(tables [][]ExpansionRow) {
		for _, rows := range tables {
			if len(rows) == 0 {
				continue
			}
			slug := rows[0].Kind.Slug()
			if _, seen := expansion[slug]; !seen {
				order = append(order, slug)
			}
			expansion[slug] = append(expansion[slug], rows...)
		}
	}
	appendRows(r.Expansion)
	appendRows(r.ExpansionExact)
	for _, slug := range order {
		m.AddTable("expansion."+slug, "E6/E7: expansion (§4.3)", expansion[slug])
	}

	var variants []VariantRow
	for _, rows := range r.Variants {
		variants = append(variants, rows...)
	}

	m.AddTable("routing.random", "E8: routing vs bisection bound (§1.2)", r.Routing).
		AddTable("routing.faults", "E8: routing under faults (drop-rate sweep)", r.RoutingFaults).
		AddTable("benes", "E9: Beneš rearrangeability (Lemma 2.5)", r.Benes).
		AddTable("variants", "E12: §1.6 related bounds (Snir, Hong–Kung)", variants).
		AddTable("bandwidth.directed", "E13: directed (Kruskal–Snir) bisection", r.Bandwidth).
		AddTable("transmutation", "E14: Lemma 3.2 transmutation pipeline", r.Transmutation).
		AddTable("dissemination", "E15: dissemination on Wn (§1.3)", r.Dissemination).
		AddTable("emulation", "E16: emulation through embeddings (§1.5)", r.Emulation).
		AddTable("layout", "E17: VLSI layout (§1.1/§1.2)", r.Layout).
		AddTable("checks", "scalar verification results", []CheckRow{
			{Name: "thompson_floor_b1024", Value: r.ThompsonFloorB1024},
			{Name: "input_bisection_b4", Value: r.InputBisectionB4},
		})
}
