package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/store"
)

var update = flag.Bool("update", false, "rewrite the golden manifest files under testdata/")

// goldenManifests builds the four table families of the run manifest on
// tiny instances: everything is exactly solvable in milliseconds and —
// after scrubbing the solver telemetry — byte-deterministic across worker
// counts and machines.
func goldenManifests(t *testing.T) map[string]*obs.Manifest {
	t.Helper()
	budget := BisectionBudget{ExactNodes: 32}

	b8, err := ButterflyBisection(8, budget)
	if err != nil {
		t.Fatalf("ButterflyBisection(8): %v", err)
	}
	bisection := obs.NewManifest("golden").
		AddTable("bisection.bn", "BW(Bn) (Thm 2.20)", []BisectionReport{b8}).
		AddTable("bisection.wn", "BW(Wn) = n (Lemma 3.2)", []BisectionReport{WrappedBisection(8, budget)})

	expansion := obs.NewManifest("golden").
		AddTable("expansion.ee_bn", "EE(Bn,k) (§4.3)",
			ExpansionTable(BnEdge, 8, []int{1, 2}, ExpansionTableOptions{ExactNodes: 64})).
		AddTable("expansion.ee_wn", "EE(Wn,k) (§4.3)",
			ExpansionTable(WnEdge, 8, []int{1}, ExpansionTableOptions{ExactNodes: 64}))

	mosManifest := obs.NewManifest("golden").
		AddTable("mos", "BW(MOS_{j,j}, M2)/j² (Lemmas 2.17–2.19)", MOSConvergence([]int{2, 4, 8}))

	routing := obs.NewManifest("golden")
	routing.Seed = 1
	routing.AddTable("routing.random", "Random destinations on B8 (§1.2)",
		[]RoutingReport{RandomRoutingExperiment(8, 1, RoutingOptions{Trials: 5})})

	return map[string]*obs.Manifest{
		"bisection": bisection,
		"expansion": expansion,
		"mos":       mosManifest,
		"routing":   routing,
	}
}

// telemetryFields are nondeterministic across runs (parallel
// branch-and-bound explores a schedule-dependent portion of the tree
// before the incumbent closes it) and are zeroed before golden
// comparison. The values themselves stay in real manifests.
var telemetryFields = map[string]bool{
	"explored":   true,
	"pruned":     true,
	"elapsed_ms": true,
}

// scrub walks decoded JSON and zeroes every telemetry field.
func scrub(v interface{}) {
	switch x := v.(type) {
	case map[string]interface{}:
		for k, val := range x {
			if telemetryFields[k] {
				x[k] = 0.0
				continue
			}
			scrub(val)
		}
	case []interface{}:
		for _, e := range x {
			scrub(e)
		}
	}
}

// scrubbedEncoding renders a manifest as indented JSON with telemetry
// fields zeroed.
func scrubbedEncoding(t *testing.T, m *obs.Manifest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("encoding manifest: %v", err)
	}
	var generic interface{}
	if err := json.Unmarshal(buf.Bytes(), &generic); err != nil {
		t.Fatalf("re-decoding manifest: %v", err)
	}
	scrub(generic)
	out, err := json.MarshalIndent(generic, "", "  ")
	if err != nil {
		t.Fatalf("re-encoding manifest: %v", err)
	}
	return append(out, '\n')
}

func TestManifestGolden(t *testing.T) {
	for name, m := range goldenManifests(t) {
		t.Run(name, func(t *testing.T) {
			got := scrubbedEncoding(t, m)
			path := filepath.Join("testdata", "manifest_"+name+".json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (run `go test ./internal/core -run TestManifestGolden -update` to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("manifest %s drifted from golden %s\ngot:\n%s\nwant:\n%s\n(if the schema change is intentional, re-run with -update and bump obs.ManifestVersion on incompatible changes)",
					name, path, got, want)
			}
		})
	}
}

// TestManifestRoundTrip checks that a real table manifest survives
// encode → DecodeManifest with its schema stamp verified, and that a
// foreign version is rejected rather than misread.
func TestManifestRoundTrip(t *testing.T) {
	m := obs.NewManifest("core-test")
	m.Seed = 1
	m.AddTable("mos", "mos", MOSConvergence([]int{2, 4}))

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := obs.DecodeManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got.Schema != obs.ManifestSchema || got.Version != obs.ManifestVersion {
		t.Fatalf("schema stamp = %q v%d", got.Schema, got.Version)
	}
	if got.Table("mos") == nil {
		t.Fatal("mos table lost in round trip")
	}
	rows, ok := got.Table("mos").Rows.([]interface{})
	if !ok || len(rows) != 2 {
		t.Fatalf("mos rows decoded as %T", got.Table("mos").Rows)
	}
	row, ok := rows[0].(map[string]interface{})
	if !ok || row["j"] != 2.0 || row["capacity"] == nil {
		t.Fatalf("mos row[0] = %#v", rows[0])
	}

	tampered := bytes.Replace(buf.Bytes(),
		[]byte(`"version": 1`), []byte(`"version": 99`), 1)
	if !bytes.Contains(buf.Bytes(), []byte(`"version": 1`)) {
		t.Fatal("test assumption broken: version field not found in encoding")
	}
	if _, err := obs.DecodeManifest(bytes.NewReader(tampered)); err == nil {
		t.Fatal("DecodeManifest accepted a foreign version")
	}
}

// TestManifestCodecStoreRoundTrip pushes every golden manifest through
// the persistence stack — codec frame in memory, then store Put →
// reopen → Get — and demands the bytes back untouched. This is the
// contract butterflyd's warm start rests on: what the store returns is
// exactly what the solver rendered, or an error.
func TestManifestCodecStoreRoundTrip(t *testing.T) {
	bodies := map[string][]byte{}
	for name, m := range goldenManifests(t) {
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		bodies[name] = buf.Bytes()
	}

	// Codec layer alone: frame → decode is byte-faithful.
	var framed bytes.Buffer
	w, err := codec.NewWriter(&framed)
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range bodies {
		if _, err := w.Write(codec.Record{Kind: codec.KindManifest, Key: name, Payload: body}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := codec.NewReader(bytes.NewReader(framed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		if !bytes.Equal(rec.Payload, bodies[rec.Key]) {
			t.Fatalf("codec round trip altered manifest %q", rec.Key)
		}
		seen++
	}
	if seen != len(bodies) {
		t.Fatalf("decoded %d records, want %d", seen, len(bodies))
	}

	// Store layer: Put, reopen from disk, Get — still the same bytes, and
	// still a decodable, schema-stamped manifest.
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range bodies {
		if err := st.Put(name, body); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for name, body := range bodies {
		got, ok, err := st.Get(name)
		if err != nil || !ok {
			t.Fatalf("Get(%q): ok=%v err=%v", name, ok, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("store round trip altered manifest %q", name)
		}
		m, err := obs.DecodeManifest(bytes.NewReader(got))
		if err != nil {
			t.Fatalf("stored manifest %q no longer decodes: %v", name, err)
		}
		if m.Schema != obs.ManifestSchema || m.Version != obs.ManifestVersion {
			t.Fatalf("stored manifest %q schema stamp = %q v%d", name, m.Schema, m.Version)
		}
	}
}

// TestFullReportManifestTables checks that AppendManifestTables emits
// every experiment family exactly once. It runs the quick report (the CI
// smoke path).
func TestFullReportManifestTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full report build in -short mode")
	}
	rep, err := BuildFullReport(ReportOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("BuildFullReport: %v", err)
	}
	m := obs.NewManifest("paperrepro")
	rep.AppendManifestTables(m)

	want := []string{
		"structure", "bisection.bn", "bisection.sub_folklore", "mos",
		"bisection.wn", "bisection.ccc",
		"expansion.ee_wn", "expansion.ne_wn", "expansion.ee_bn", "expansion.ne_bn",
		"routing.random", "routing.faults", "benes", "variants", "bandwidth.directed",
		"transmutation", "dissemination", "emulation", "layout", "checks",
	}
	if len(m.Tables) != len(want) {
		names := make([]string, len(m.Tables))
		for i, tb := range m.Tables {
			names[i] = tb.Name
		}
		t.Fatalf("got %d tables %v, want %d", len(m.Tables), names, len(want))
	}
	for _, name := range want {
		if m.Table(name) == nil {
			t.Errorf("table %q missing from the full-report manifest", name)
		}
	}
	// The expansion tables absorb the enumerable-size exact rows: ee_wn
	// gets the n=16 row, ee_bn the n=8 row.
	for _, tc := range []struct {
		table string
		rows  int
	}{{"expansion.ee_wn", 2}, {"expansion.ee_bn", 2}} {
		rows, ok := m.Table(tc.table).Rows.([]ExpansionRow)
		if !ok {
			t.Fatalf("%s rows are %T", tc.table, m.Table(tc.table).Rows)
		}
		if len(rows) < tc.rows {
			t.Errorf("%s has %d rows, want ≥ %d (exact-small rows not merged?)", tc.table, len(rows), tc.rows)
		}
	}
}
