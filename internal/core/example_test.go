package core_test

import (
	"fmt"

	"repro/internal/core"
)

func ExampleButterflyBisection() {
	// One line of the E2 table: B4's exact width, the §1.4 lower bound,
	// and the constructed cut.
	r, _ := core.ButterflyBisection(4, core.BisectionBudget{ExactNodes: 32})
	fmt.Println("network:", r.Network)
	fmt.Println("exact BW:", r.Exact)
	fmt.Println("constructed:", r.Constructed)
	fmt.Println("lower bound:", r.LowerBound)
	// Output:
	// network: B4
	// exact BW: 4
	// constructed: 4
	// lower bound: 2
}

func ExampleMOSConvergence() {
	for _, r := range core.MOSConvergence([]int{16, 256}) {
		fmt.Printf("j=%d ratio=%.4f\n", r.J, r.Ratio)
	}
	// Output:
	// j=16 ratio=0.4297
	// j=256 ratio=0.4143
}
