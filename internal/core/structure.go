package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/route"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// StructureReport reproduces the Figure 1 / §1.1 structural facts for one
// butterfly instance (experiment E1).
type StructureReport struct {
	Network       string      `json:"network"`
	Nodes         int         `json:"nodes"`
	NodesFormula  int         `json:"nodes_formula"` // n(log n+1) for Bn, n·log n for Wn
	Edges         int         `json:"edges"`
	DegreeHist    map[int]int `json:"degree_hist"`
	Diameter      int         `json:"diameter"`
	TheoryDiam    int         `json:"theory_diam"` // 2 log n for Bn, ⌊3 log n/2⌋ for Wn
	Connected     bool        `json:"connected"`
	MonotonePaths bool        `json:"monotone_paths"` // Lemma 2.3 verified (Bn only)
}

// ButterflyStructure measures Bn (wrap=false) or Wn (wrap=true).
func ButterflyStructure(n int, wrap bool) StructureReport {
	var b *topology.Butterfly
	rep := StructureReport{}
	if wrap {
		b = topology.NewWrappedButterfly(n)
		rep.Network = fmt.Sprintf("W%d", n)
		rep.NodesFormula = n * b.Dim()
		rep.TheoryDiam = 3 * b.Dim() / 2
	} else {
		b = topology.NewButterfly(n)
		rep.Network = fmt.Sprintf("B%d", n)
		rep.NodesFormula = n * (b.Dim() + 1)
		rep.TheoryDiam = 2 * b.Dim()
	}
	rep.Nodes = b.N()
	rep.Edges = b.M()
	rep.DegreeHist = b.DegreeHistogram()
	rep.Diameter = b.Diameter()
	rep.Connected = b.IsConnected()
	if !wrap {
		rep.MonotonePaths = verifyMonotonePaths(b)
	}
	return rep
}

func verifyMonotonePaths(b *topology.Butterfly) bool {
	for w0 := 0; w0 < b.Inputs(); w0++ {
		for w1 := 0; w1 < b.Inputs(); w1++ {
			p := b.MonotonePath(w0, w1)
			for i := 0; i+1 < len(p); i++ {
				if !b.HasEdge(p[i], p[i+1]) {
					return false
				}
			}
		}
	}
	return true
}

// RenderStructureTable renders E1 reports.
func RenderStructureTable(reports []StructureReport) string {
	t := tablefmt.New("Butterfly structure (Fig. 1 / §1.1)",
		"network", "nodes", "formula", "edges", "degrees", "diameter", "theory diam")
	for _, r := range reports {
		t.AddRow(r.Network, r.Nodes, r.NodesFormula, r.Edges,
			degreesString(r.DegreeHist), r.Diameter, r.TheoryDiam)
	}
	return t.String()
}

func degreesString(h map[int]int) string {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d×deg%d", h[k], k))
	}
	return strings.Join(parts, " ")
}

// RenderButterflyDiagram draws Bn in the style of Figure 1: one row per
// level, columns labeled with their binary strings. Practical for n ≤ 16.
func RenderButterflyDiagram(n int) string {
	b := topology.NewButterfly(n)
	d := b.Dim()
	var sb strings.Builder
	sb.WriteString("column")
	for w := 0; w < n; w++ {
		sb.WriteString(fmt.Sprintf("  %0*b", d, w))
	}
	sb.WriteString("\n")
	cell := d + 2
	for i := 0; i <= d; i++ {
		sb.WriteString(fmt.Sprintf("lvl %2d", i))
		for w := 0; w < n; w++ {
			sb.WriteString(strings.Repeat(" ", cell-1) + "o")
		}
		sb.WriteString("\n")
		if i < d {
			sb.WriteString(fmt.Sprintf("      %s(straight edges ||, cross edges flip bit %d)\n",
				strings.Repeat(" ", 2), i+1))
		}
	}
	return sb.String()
}

// BenesRearrangeabilityCheck routes count random permutations plus the
// identity and reversal through the n-input Beneš network and reports how
// many routed edge-disjointly (experiment E9); rearrangeability predicts
// all of them.
func BenesRearrangeabilityCheck(n, count int, seed int64) (routed, total int) {
	be := topology.NewBenes(n)
	perms := [][]int{identityPerm(n), reversalPerm(n)}
	rng := newRand(seed)
	for i := 0; i < count; i++ {
		perms = append(perms, rng.Perm(n))
	}
	for _, perm := range perms {
		paths, err := route.RoutePermutation(be, perm)
		if err != nil {
			continue
		}
		if ok, _ := route.VerifyEdgeDisjoint(be.Graph, paths); ok {
			routed++
		}
	}
	return routed, len(perms)
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func reversalPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}
