package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/construct"
	"repro/internal/embed"
	"repro/internal/exact"
	"repro/internal/heuristic"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// BisectionReport collects everything this reproduction knows about the
// bisection width of one network instance (experiments E2, E4, E5). The
// JSON tags are the manifest schema; telemetry fields (explored, pruned,
// elapsed_ms) are normalized away by the golden tests but kept in real
// manifests so a slow solve is attributable.
type BisectionReport struct {
	Network string `json:"network"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`

	// Exact is the BW value from branch-and-bound, or Unknown beyond the
	// exact-size budget. It is the certified optimum only when
	// ExactComplete is true; a cancelled solve leaves the best incumbent
	// here (an upper bound) with ExactComplete false.
	Exact int `json:"exact"`
	// ExactComplete reports whether the exact search ran to completion.
	ExactComplete bool `json:"exact_complete"`
	// Explored/Pruned count the branch-and-bound nodes the exact search
	// processed / cut off; ElapsedMS is its wall time (all zero when the
	// exact solver was skipped).
	Explored  int64   `json:"explored"`
	Pruned    int64   `json:"pruned"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Heuristic is the best upper bound found by FM multi-start search, or
	// Unknown if skipped.
	Heuristic int `json:"heuristic"`
	// Constructed is the capacity of the paper's explicit cut (column cut,
	// sub-n plan, or dimension cut).
	Constructed int `json:"constructed"`
	// LowerBound is a certified lower bound (embedding congestion
	// argument), or Unknown.
	LowerBound int `json:"lower_bound"`
	// Theory is the paper's asymptotic value for this network.
	Theory float64 `json:"theory"`
	// TheoryLabel names the paper result backing Theory.
	TheoryLabel string `json:"theory_label"`
}

// BisectionBudget bounds the expensive computations in a report.
type BisectionBudget struct {
	// ExactNodes is the largest node count on which the exact solver runs
	// (default 32: B8/W8-scale; 0 disables).
	ExactNodes int
	// HeuristicNodes is the largest node count for heuristic search
	// (default 16384; 0 disables).
	HeuristicNodes int
	// MaterializeNodes is the largest node count for which the butterfly
	// graph is built; beyond it, constructed cuts are evaluated virtually
	// (default 1<<22).
	MaterializeNodes int

	// Ctx cancels the expensive solves: exact searches return their best
	// incumbent with ExactComplete false, heuristic refinement stops at
	// the current pass, and virtual plan evaluation falls back to the
	// plan's predicted capacity. nil means never cancelled.
	Ctx context.Context
	// OnProgress, when non-nil, receives solver progress snapshots every
	// ProgressInterval (≤ 0: 1s) while an exact search runs.
	OnProgress       func(solve.Progress)
	ProgressInterval time.Duration
	// Trace, when non-nil, receives solver span events (labelled with the
	// network name).
	Trace *obs.Tracer
}

func (b BisectionBudget) solveOptions(label string, bound int) exact.SolveOptions {
	return exact.SolveOptions{
		Bound:            bound,
		Label:            label,
		Trace:            b.Trace,
		OnProgress:       b.OnProgress,
		ProgressInterval: b.ProgressInterval,
	}
}

func (b BisectionBudget) bisectOptions(label string) heuristic.BisectOptions {
	return heuristic.BisectOptions{Starts: 6, Seed: 1, Ctx: b.Ctx, Label: label, Trace: b.Trace}
}

// recordSolve copies one exact-solver outcome into the report.
func (r *BisectionReport) recordSolve(res exact.BisectionResult) {
	r.Exact = res.Width
	r.ExactComplete = res.Exact
	r.Explored = res.Explored
	r.Pruned = res.Pruned
	r.ElapsedMS = durationMS(res.Elapsed)
}

// durationMS renders telemetry durations as milliseconds for manifests.
func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func (b BisectionBudget) withDefaults() BisectionBudget {
	if b.ExactNodes == 0 {
		b.ExactNodes = 32
	}
	if b.HeuristicNodes == 0 {
		b.HeuristicNodes = 16384
	}
	if b.MaterializeNodes == 0 {
		b.MaterializeNodes = 1 << 22
	}
	return b
}

// ButterflyBisection analyzes BW(Bn) (experiment E2, Theorem 2.20). A
// cancelled budget.Ctx degrades gracefully — incumbents instead of optima,
// the plan's predicted capacity instead of the virtually verified one — and
// the only error is a genuinely unbalanced virtual plan (a construction
// bug, previously a panic).
func ButterflyBisection(n int, budget BisectionBudget) (BisectionReport, error) {
	budget = budget.withDefaults()
	d := log2(n)
	nodes := n * (d + 1)
	rep := BisectionReport{
		Network:     fmt.Sprintf("B%d", n),
		Nodes:       nodes,
		Edges:       2 * n * d,
		Exact:       Unknown,
		Heuristic:   Unknown,
		LowerBound:  n / 2, // the §1.4 2K_N-embedding bound
		Theory:      TheoreticalBisectionRatio * float64(n),
		TheoryLabel: "2(√2−1)n + o(n) (Thm 2.20)",
	}

	if nodes <= budget.MaterializeNodes {
		b := topology.NewButterfly(n)
		if n >= 4 {
			plan, err := construct.BestPlan(n)
			if err != nil {
				return rep, fmt.Errorf("core: B%d bisection report: %w", n, err)
			}
			rep.Constructed = plan.Build(b).Capacity()
		} else {
			// B2 is too small for the class-grid plan; the folklore column
			// cut is the construction.
			rep.Constructed = construct.ColumnBisection(b).Capacity()
		}
		if nodes <= budget.ExactNodes {
			rep.recordSolve(exact.SolveBisection(budget.Ctx, b.Graph, budget.solveOptions("bisection "+rep.Network, rep.Constructed)))
		}
		if nodes <= budget.HeuristicNodes {
			h := heuristic.BisectParallel(b.Graph, budget.bisectOptions("bisection "+rep.Network))
			rep.Heuristic = h.Capacity()
		}
		if nodes <= budget.ExactNodes {
			// Recompute the embedding-based bound exactly rather than
			// quoting n/2.
			e := embed.DoubledCompleteIntoButterfly(b)
			rep.LowerBound = e.BisectionLowerBound(embed.DoubledCompleteBisectionWidth(nodes))
		}
	} else {
		plan, err := construct.BestPlan(n)
		if err != nil {
			return rep, fmt.Errorf("core: B%d bisection report: %w", n, err)
		}
		ctx := budget.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		capacity, err := plan.VirtualBisectionCapacity(ctx, 0)
		switch {
		case err == nil:
			rep.Constructed = capacity
		case ctx.Err() != nil:
			// Cancelled mid-evaluation: quote the plan's analytic capacity
			// (exact by construction, just not re-verified node by node).
			rep.Constructed = plan.Capacity
		default:
			return rep, fmt.Errorf("core: B%d bisection report: %w", n, err)
		}
	}
	return rep, nil
}

// WrappedBisection analyzes BW(Wn) = n (experiment E4, Lemma 3.2).
func WrappedBisection(n int, budget BisectionBudget) BisectionReport {
	budget = budget.withDefaults()
	d := log2(n)
	rep := BisectionReport{
		Network:     fmt.Sprintf("W%d", n),
		Nodes:       n * d,
		Edges:       2 * n * d,
		Exact:       Unknown,
		Heuristic:   Unknown,
		LowerBound:  Unknown,
		Theory:      float64(n),
		TheoryLabel: "n (Lemma 3.2)",
	}
	w := topology.NewWrappedButterfly(n)
	rep.Constructed = construct.ColumnBisection(w).Capacity()
	if rep.Nodes <= budget.ExactNodes {
		rep.recordSolve(exact.SolveBisection(budget.Ctx, w.Graph, budget.solveOptions("bisection "+rep.Network, rep.Constructed)))
	}
	if rep.Nodes <= budget.HeuristicNodes {
		rep.Heuristic = heuristic.BisectParallel(w.Graph, budget.bisectOptions("bisection "+rep.Network)).Capacity()
	}
	return rep
}

// CCCBisection analyzes BW(CCCn) = n/2 (experiment E5, Lemma 3.3).
func CCCBisection(n int, budget BisectionBudget) BisectionReport {
	budget = budget.withDefaults()
	d := log2(n)
	rep := BisectionReport{
		Network:     fmt.Sprintf("CCC%d", n),
		Nodes:       n * d,
		Edges:       3 * n * d / 2,
		Exact:       Unknown,
		Heuristic:   Unknown,
		LowerBound:  Unknown,
		Theory:      float64(n) / 2,
		TheoryLabel: "n/2 (Lemma 3.3)",
	}
	c := topology.NewCCC(n)
	rep.Constructed = construct.CCCDimensionCut(c).Capacity()
	if rep.Nodes <= budget.ExactNodes {
		rep.recordSolve(exact.SolveBisection(budget.Ctx, c.Graph, budget.solveOptions("bisection "+rep.Network, rep.Constructed)))
	}
	if rep.Nodes <= budget.HeuristicNodes {
		rep.Heuristic = heuristic.BisectParallel(c.Graph, budget.bisectOptions("bisection "+rep.Network)).Capacity()
	}
	return rep
}

// InputBisectionCheck verifies Lemma 3.1 computationally: the minimum
// capacity of a cut of Bn bisecting its inputs, which the lemma proves is
// at least n. Exact for small n.
func InputBisectionCheck(n int) (width int) {
	b := topology.NewButterfly(n)
	_, width = exact.MinSubsetBisection(b.Graph, b.InputNodes())
	return width
}

// RenderBisectionTable renders E2/E4/E5 reports as one table. The "exact?"
// column distinguishes certified optima from cancelled-solve incumbents,
// and "explored" is the branch-and-bound node count behind the value.
func RenderBisectionTable(title string, reports []BisectionReport) string {
	t := tablefmt.New(title,
		"network", "nodes", "exact", "exact?", "explored", "heuristic", "constructed", "lower", "theory", "constructed/n-style ratio")
	for _, r := range reports {
		ratio := float64(r.Constructed) / r.Theory
		t.AddRow(r.Network, r.Nodes, fmtOrDash(r.Exact),
			fmtExactFlag(r.Exact, r.ExactComplete), fmtExplored(r.Exact, r.Explored),
			fmtOrDash(r.Heuristic),
			r.Constructed, fmtOrDash(r.LowerBound), r.Theory, ratio)
	}
	return t.String()
}

// fmtExactFlag renders the "exact?" cell: a dash when no exact value was
// attempted, otherwise whether the search certified the optimum.
func fmtExactFlag(value int, complete bool) interface{} {
	if value == Unknown {
		return "-"
	}
	if complete {
		return "yes"
	}
	return "no"
}

// fmtExplored renders the "explored" cell alongside an exact value.
func fmtExplored(value int, explored int64) interface{} {
	if value == Unknown {
		return "-"
	}
	return explored
}

// SubFolkloreSweep returns the best sub-n plan per size — the series behind
// the headline Theorem 2.20 plot: constructed-capacity/n falling from the
// folklore 1.0 toward 2(√2−1) ≈ 0.828.
func SubFolkloreSweep(dims []int) ([]construct.Plan, error) {
	plans := make([]construct.Plan, 0, len(dims))
	for _, d := range dims {
		p, err := construct.BestPlan(1 << d)
		if err != nil {
			return nil, fmt.Errorf("core: sub-folklore sweep at log n=%d: %w", d, err)
		}
		plans = append(plans, *p)
	}
	return plans, nil
}

// RenderSubFolkloreTable renders the sweep.
func RenderSubFolkloreTable(plans []construct.Plan) string {
	t := tablefmt.New("BW(Bn) upper bound: the §2 construction vs the folklore value n",
		"log n", "j", "a", "b", "capacity/n", "folklore", "theory limit")
	for i := range plans {
		p := &plans[i]
		t.AddRow(p.Dim, p.J, p.A, p.B, p.Ratio, 1.0, TheoreticalBisectionRatio)
	}
	return t.String()
}

func log2(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}
