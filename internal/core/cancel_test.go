package core

import (
	"context"
	"strings"
	"testing"
	"time"
)

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestButterflyBisectionCancelledExactIsIncumbent(t *testing.T) {
	r, err := ButterflyBisection(8, BisectionBudget{ExactNodes: 32, Ctx: cancelledCtx()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact == Unknown {
		t.Fatal("cancelled solve returned no incumbent")
	}
	if r.ExactComplete {
		t.Error("cancelled solve marked complete")
	}
	// The incumbent is a valid bisection, so it stays an upper bound.
	if r.Exact < 8 {
		t.Errorf("incumbent %d below BW(B8)=8", r.Exact)
	}
	out := RenderBisectionTable("t", []BisectionReport{r})
	if !strings.Contains(out, "no") {
		t.Errorf("table does not flag the non-exact row:\n%s", out)
	}
}

func TestButterflyBisectionCancelledVirtualFallsBack(t *testing.T) {
	// Beyond the materialization budget with a dead context, the report
	// quotes the plan's analytic capacity rather than erroring: -timeout
	// runs must exit cleanly.
	start := time.Now()
	r, err := ButterflyBisection(1<<15, BisectionBudget{MaterializeNodes: 1000, Ctx: cancelledCtx()})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled virtual report took %v", took)
	}
	live, err := ButterflyBisection(1<<15, BisectionBudget{MaterializeNodes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Constructed != live.Constructed {
		t.Errorf("fallback capacity %d differs from verified %d", r.Constructed, live.Constructed)
	}
}

func TestExpansionTableCancelledFlagsRows(t *testing.T) {
	rows := ExpansionTable(WnEdge, 8, []int{1}, ExpansionTableOptions{
		ExactNodes: 64, Ctx: cancelledCtx(),
	})
	r := rows[0]
	if r.Exact == Unknown {
		t.Fatal("cancelled survey returned no incumbent")
	}
	if r.ExactComplete {
		t.Error("cancelled survey row marked exact")
	}
	out := RenderExpansionTable(rows)
	if !strings.Contains(out, "exact?") || !strings.Contains(out, "explored") {
		t.Errorf("table missing telemetry columns:\n%s", out)
	}
}

func TestExpansionTableUncancelledMarksComplete(t *testing.T) {
	rows := ExpansionTable(WnEdge, 8, []int{1}, ExpansionTableOptions{ExactNodes: 64})
	r := rows[0]
	if !r.ExactComplete {
		t.Error("completed survey row not marked exact")
	}
	if r.Explored == 0 {
		t.Error("completed survey row has no explored count")
	}
}

func TestRoutingExperimentCancelled(t *testing.T) {
	r := RandomRoutingExperiment(8, 3, RoutingOptions{Trials: 10, Ctx: cancelledCtx()})
	if !r.Stats.Cancelled {
		t.Fatal("cancelled run not marked")
	}
	if r.Trials != 0 || r.Stats.Requested != 10 {
		t.Fatalf("trials %d/%d, want 0/10", r.Trials, r.Stats.Requested)
	}
	out := RenderRoutingTable("t", []RoutingReport{r})
	if !strings.Contains(out, "0 of 10") {
		t.Errorf("table does not show completed-of-requested:\n%s", out)
	}
}

func TestRenderBisectionTableTelemetryColumns(t *testing.T) {
	r := WrappedBisection(8, BisectionBudget{})
	if !r.ExactComplete || r.Explored == 0 {
		t.Fatalf("W8 solve telemetry: complete=%v explored=%d", r.ExactComplete, r.Explored)
	}
	out := RenderBisectionTable("t", []BisectionReport{r})
	for _, want := range []string{"exact?", "explored", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// Guard against the dash cells leaking into rows that skipped the exact
// pass entirely.
func TestRenderBisectionTableSkippedExact(t *testing.T) {
	r := WrappedBisection(64, BisectionBudget{ExactNodes: 16})
	if r.Exact != Unknown {
		t.Fatal("exact should be skipped at this size")
	}
	out := RenderBisectionTable("t", []BisectionReport{r})
	if !strings.Contains(out, "-") {
		t.Errorf("skipped exact row missing dashes:\n%s", out)
	}
}
