package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/construct"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/solve"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// RoutingOptions configures the Monte-Carlo side of the §1.2 experiments.
// The zero value runs a single trial on all available cores.
type RoutingOptions struct {
	// Trials is the number of independently seeded trials per row (≤0: 1).
	Trials int
	// Workers is the number of parallel trial workers (≤0: GOMAXPROCS).
	Workers int

	// Ctx cancels the simulation: the report covers only the trials that
	// completed (Stats.Cancelled set, Trials < Requested). nil means never
	// cancelled.
	Ctx context.Context
	// OnProgress, when non-nil, receives completed-trial counts every
	// ProgressInterval (≤ 0: 1s).
	OnProgress       func(solve.Progress)
	ProgressInterval time.Duration
	// Trace, when non-nil, receives per-trial events on the simulation's
	// span.
	Trace *obs.Tracer

	// Fault injects link faults into every trial (zero: healthy network).
	Fault route.FaultOptions
	// Switching selects the switch discipline (default store-and-forward).
	Switching route.Switching
}

// RoutingReport is one row of the §1.2 experiment (E8): multi-trial
// random-destination (or random-permutation) routing on Bn measured
// against the bisection-width bound time ≥ crossings / C(S,S̄). The
// embedded TrialStats carries the full Monte-Carlo record — steps/bound
// ratios and the max-queue histogram included — so the §1.2 floor
// comparison is regression-checkable from the manifest alone.
type RoutingReport struct {
	N           int `json:"n"`
	Trials      int `json:"trials"`
	CutCapacity int `json:"cut_capacity"`
	// Pattern and Switching name the traffic kind and switch discipline
	// of the row (slugs: random/permutation/hotspot/bitreversal, sf/ct).
	Pattern   string `json:"pattern,omitempty"`
	Switching string `json:"switching,omitempty"`
	// Fault knobs of the row; zero values (healthy network) are omitted.
	DropProb       float64 `json:"drop_prob,omitempty"`
	DeadLinkProb   float64 `json:"dead_link_prob,omitempty"`
	MaxRetransmits int     `json:"max_retransmits,omitempty"`
	// Stats aggregates the trials: min/mean/max steps, the certified
	// congestion bounds, steps/bound ratios, the tightness count, and the
	// fault-model delivery/drop/retransmission record.
	Stats route.TrialStats `json:"stats"`
}

// RandomRoutingExperiment runs the E8 simulation on Bn against the best
// constructed bisection: opt.Trials independently seeded trials derived
// from seed, fanned over opt.Workers workers.
func RandomRoutingExperiment(n int, seed int64, opt RoutingOptions) RoutingReport {
	return routingExperiment(n, seed, route.RandomDestinations, opt)
}

// PermutationRoutingExperiment routes random permutations input→output on
// Bn along monotone paths, with the same trials/workers fan-out.
func PermutationRoutingExperiment(n int, seed int64, opt RoutingOptions) RoutingReport {
	return routingExperiment(n, seed, route.RandomPermutations, opt)
}

// HotSpotRoutingExperiment routes the adversarial all-to-one pattern: a
// packet from every node to one random hot node per trial.
func HotSpotRoutingExperiment(n int, seed int64, opt RoutingOptions) RoutingReport {
	return routingExperiment(n, seed, route.HotSpotDestinations, opt)
}

// BitReversalRoutingExperiment routes the deterministic bit-reversal
// permutation ⟨w,l⟩ → ⟨reverse(w),l⟩, the classic adversary of greedy
// column routing.
func BitReversalRoutingExperiment(n int, seed int64, opt RoutingOptions) RoutingReport {
	return routingExperiment(n, seed, route.BitReversalDestinations, opt)
}

// RoutingDegradation sweeps the drop rate at a fixed shape: one report
// row per rate in drops, all other knobs taken from opt. It is the
// measured degradation curve of ROADMAP's scenario-diversity item — mean
// steps and delivery rate versus link loss, each row still scored
// against the §1.2 N/(4·BW) floor.
func RoutingDegradation(n int, seed int64, kind route.TrialKind, drops []float64, opt RoutingOptions) []RoutingReport {
	reports := make([]RoutingReport, 0, len(drops))
	for _, p := range drops {
		o := opt
		o.Fault.DropProb = p
		reports = append(reports, routingExperiment(n, seed, kind, o))
	}
	return reports
}

func routingExperiment(n int, seed int64, kind route.TrialKind, opt RoutingOptions) RoutingReport {
	b := topology.NewButterfly(n)
	// The class-grid plan needs n ≥ 4; for B2 (or any size the planner
	// rejects) the folklore column cut is the reference bisection.
	ref := construct.ColumnBisection(b)
	if plan, err := construct.BestPlan(n); err == nil {
		ref = plan.Build(b)
	}
	stats := route.SimulateMany(b, ref, kind, route.ManyOptions{
		Trials:  opt.Trials,
		Workers: opt.Workers,
		Seed:    seed,
		Label:   fmt.Sprintf("routing B%d %s", n, kind),
		Trace:   opt.Trace,
		// Greedy store-and-forward empirically sits 3–5× above the §1.2
		// floor, so a 4× threshold splits the trial distribution instead
		// of counting all or nothing.
		TightFactor:      4,
		Ctx:              opt.Ctx,
		OnProgress:       opt.OnProgress,
		ProgressInterval: opt.ProgressInterval,
		Fault:            opt.Fault,
		Switching:        opt.Switching,
	})
	return RoutingReport{
		N:              n,
		Trials:         stats.Trials,
		CutCapacity:    ref.Capacity(),
		Pattern:        kind.Slug(),
		Switching:      opt.Switching.Slug(),
		DropProb:       opt.Fault.DropProb,
		DeadLinkProb:   opt.Fault.DeadLinkProb,
		MaxRetransmits: opt.Fault.MaxRetransmits,
		Stats:          stats,
	}
}

// RenderRoutingTable renders E8 reports with per-row trial aggregates.
func RenderRoutingTable(title string, reports []RoutingReport) string {
	tightHeader := "tight"
	if len(reports) > 0 && reports[0].Stats.TightFactor > 0 {
		tightHeader = fmt.Sprintf("tight ≤%g×", reports[0].Stats.TightFactor)
	}
	t := tablefmt.New(title,
		"n", "trials", "packets", "steps min/mean/max", "cut capacity",
		"crossings", "bound steps≥", "steps/bound", tightHeader, "max queue")
	for _, r := range reports {
		s := r.Stats
		trials := fmt.Sprintf("%d", r.Trials)
		if s.Cancelled {
			trials = fmt.Sprintf("%d of %d", s.Trials, s.Requested)
		}
		t.AddRow(r.N, trials,
			fmt.Sprintf("%.1f", s.MeanPackets),
			fmt.Sprintf("%d/%.1f/%d", s.MinSteps, s.MeanSteps, s.MaxSteps),
			r.CutCapacity,
			fmt.Sprintf("%.1f", s.MeanCrossings),
			fmt.Sprintf("%d/%.1f/%d", s.MinBound, s.MeanBound, s.MaxBound),
			fmt.Sprintf("%.2f", s.MeanRatio),
			fmt.Sprintf("%d/%d", s.TightTrials, s.Trials),
			s.MaxQueuePeak)
	}
	return t.String()
}

// RenderFaultRoutingTable renders fault-injected routing rows (one per
// scenario, typically a drop-rate sweep): the degradation table of mean
// steps, delivery rate, and steps/floor ratio versus link loss.
func RenderFaultRoutingTable(title string, reports []RoutingReport) string {
	t := tablefmt.New(title,
		"n", "pattern", "sw", "drop", "dead", "retx≤", "trials",
		"steps mean", "delivered", "dropped", "retransmits", "steps/bound", "exhausted")
	for _, r := range reports {
		s := r.Stats
		retx := "∞"
		if r.MaxRetransmits > 0 {
			retx = fmt.Sprintf("%d", r.MaxRetransmits)
		}
		t.AddRow(r.N, r.Pattern, r.Switching,
			fmt.Sprintf("%g", r.DropProb),
			fmt.Sprintf("%g", r.DeadLinkProb),
			retx,
			s.Trials,
			fmt.Sprintf("%.1f", s.MeanSteps),
			fmt.Sprintf("%.3f", s.DeliveredRate),
			fmt.Sprintf("%.1f", s.MeanDropped),
			fmt.Sprintf("%.1f", s.MeanRetransmits),
			fmt.Sprintf("%.2f", s.MeanRatio),
			s.ExhaustedTrials)
	}
	return t.String()
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
