package core

import (
	"math/rand"

	"repro/internal/construct"
	"repro/internal/route"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// RoutingReport is one run of the §1.2 experiment (E8): random-destination
// routing on Bn measured against the bisection-width bound
// time ≥ crossings / C(S,S̄).
type RoutingReport struct {
	N            int
	Packets      int
	Steps        int
	CutCapacity  int
	CutCrossings int
	// BisectionBound is the certified floor ⌈crossings/capacity⌉ on Steps.
	BisectionBound int
	MaxQueue       int
}

// RandomRoutingExperiment runs the E8 simulation on Bn against the best
// constructed bisection.
func RandomRoutingExperiment(n int, seed int64) RoutingReport {
	b := topology.NewButterfly(n)
	plan := construct.BestPlan(n)
	ref := plan.Build(b)
	res := route.SimulateRandomDestinations(b, ref, seed)
	return RoutingReport{
		N:              n,
		Packets:        res.Packets,
		Steps:          res.Steps,
		CutCapacity:    ref.Capacity(),
		CutCrossings:   res.CutCrossings,
		BisectionBound: res.CongestionBound,
		MaxQueue:       res.MaxQueue,
	}
}

// PermutationRoutingExperiment routes a random permutation input→output on
// Bn along monotone paths.
func PermutationRoutingExperiment(n int, seed int64) RoutingReport {
	b := topology.NewButterfly(n)
	plan := construct.BestPlan(n)
	ref := plan.Build(b)
	rng := rand.New(rand.NewSource(seed))
	res, err := route.SimulatePermutation(b, ref, rng.Perm(n))
	if err != nil {
		panic(err) // rng.Perm always yields a valid permutation
	}
	return RoutingReport{
		N:              n,
		Packets:        res.Packets,
		Steps:          res.Steps,
		CutCapacity:    ref.Capacity(),
		CutCrossings:   res.CutCrossings,
		BisectionBound: res.CongestionBound,
		MaxQueue:       res.MaxQueue,
	}
}

// RenderRoutingTable renders E8 reports.
func RenderRoutingTable(title string, reports []RoutingReport) string {
	t := tablefmt.New(title,
		"n", "packets", "steps", "cut capacity", "crossings", "bound steps≥", "max queue")
	for _, r := range reports {
		t.AddRow(r.N, r.Packets, r.Steps, r.CutCapacity, r.CutCrossings, r.BisectionBound, r.MaxQueue)
	}
	return t.String()
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
