package core

import (
	"strings"
	"testing"
)

func TestVariantsTable(t *testing.T) {
	rows := VariantsTable(8, []int{1, 2}, 32) // base B4 exact
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.SnirHolds {
			t.Errorf("k=%d: Snir inequality failed", r.K)
		}
		if !r.HKHolds {
			t.Errorf("k=%d: Hong–Kung bound failed", r.K)
		}
	}
	if !rows[0].OmegaExact {
		t.Errorf("small base should be exact")
	}
	out := RenderVariantsTable(rows)
	if !strings.Contains(out, "Snir") {
		t.Errorf("table missing title:\n%s", out)
	}
}

func TestVariantsTableLargeIsWitnessOnly(t *testing.T) {
	rows := VariantsTable(64, []int{2}, 16)
	if rows[0].OmegaExact {
		t.Errorf("large base should not be exact")
	}
	if !rows[0].SnirHolds || !rows[0].HKHolds {
		t.Errorf("bounds should hold on witness sets")
	}
}

func TestBandwidthExperiment(t *testing.T) {
	r := BandwidthExperiment(4, 32)
	if r.Exact != 2 || r.Constructed != 2 || r.Theory != 2 {
		t.Errorf("B4 directed width: %+v, want 2 everywhere", r)
	}
	big := BandwidthExperiment(64, 16)
	if big.Exact != Unknown {
		t.Errorf("large exact should be skipped")
	}
	if big.Constructed != 32 {
		t.Errorf("column-prefix cut %d, want 32", big.Constructed)
	}
	out := RenderBandwidthTable([]BandwidthReport{r, big})
	if !strings.Contains(out, "n/2") {
		t.Errorf("table missing theory column:\n%s", out)
	}
}

func TestTransmutationExperiment(t *testing.T) {
	for _, n := range []int{8, 16} {
		res, err := TransmutationExperiment(n, 32)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.BnCapacity != res.WnCapacity {
			t.Errorf("n=%d: transmutation changed capacity", n)
		}
		if !res.InputBisected {
			t.Errorf("n=%d: inputs not bisected", n)
		}
		if res.FinalCapacity < n {
			t.Errorf("n=%d: final capacity %d below n", n, res.FinalCapacity)
		}
	}
}

func TestDissemination(t *testing.T) {
	r, err := Dissemination(16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rounds > r.Diameter {
		t.Errorf("rounds %d exceed diameter %d", r.Rounds, r.Diameter)
	}
	if r.Sizes[len(r.Sizes)-1] != 64 {
		t.Errorf("final informed size %d, want 64", r.Sizes[len(r.Sizes)-1])
	}
	out := RenderDisseminationTable([]DisseminationReport{r})
	if !strings.Contains(out, "rounds") {
		t.Errorf("table missing header:\n%s", out)
	}
}

func TestEmulationExperiments(t *testing.T) {
	rows := EmulationExperiments(16)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.HostSteps > r.Budget {
			t.Errorf("%s: steps %d exceed budget %d", r.Pair, r.HostSteps, r.Budget)
		}
		if r.Messages == 0 {
			t.Errorf("%s: no messages", r.Pair)
		}
	}
	out := RenderEmulationTable(rows)
	if !strings.Contains(out, "Beneš") {
		t.Errorf("table missing rows:\n%s", out)
	}
}

func TestLayoutExperiment(t *testing.T) {
	r, err := LayoutExperiment(64)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent {
		t.Errorf("Thompson violated: %+v", r)
	}
	if r.PackedArea >= r.NaiveArea {
		t.Errorf("packed %d not below naive %d", r.PackedArea, r.NaiveArea)
	}
	if r.PackedRatio < 1.0 || r.PackedRatio > 2.6 {
		t.Errorf("packed ratio %v out of the Θ(n²) window", r.PackedRatio)
	}
	out := RenderLayoutTable([]LayoutRow{r})
	if !strings.Contains(out, "Thompson") {
		t.Errorf("table missing title:\n%s", out)
	}
}
