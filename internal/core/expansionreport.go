package core

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/expansion"
	"repro/internal/obs"
	"repro/internal/solve"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// ExpansionKind selects one of the four §4 quantities.
type ExpansionKind int

// The four expansion functions bounded in §4 of the paper.
const (
	WnEdge ExpansionKind = iota // EE(Wn,k): (4±o(1))k/log k
	WnNode                      // NE(Wn,k): between (1−o(1)) and (3+o(1)) k/log k
	BnEdge                      // EE(Bn,k): (2±o(1))k/log k
	BnNode                      // NE(Bn,k): between (1/2−o(1)) and (1+o(1)) k/log k
)

// String names the kind as in the §4.3 tables.
func (k ExpansionKind) String() string {
	switch k {
	case WnEdge:
		return "EE(Wn,k)"
	case WnNode:
		return "NE(Wn,k)"
	case BnEdge:
		return "EE(Bn,k)"
	case BnNode:
		return "NE(Bn,k)"
	}
	return "?"
}

// Slug is the manifest-safe name of the kind ("ee_wn", "ne_bn", ...).
func (k ExpansionKind) Slug() string {
	switch k {
	case WnEdge:
		return "ee_wn"
	case WnNode:
		return "ne_wn"
	case BnEdge:
		return "ee_bn"
	case BnNode:
		return "ne_bn"
	}
	return "unknown"
}

// MarshalJSON renders the kind as its slug, keeping manifests readable
// without exposing the iota values.
func (k ExpansionKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.Slug() + `"`), nil
}

// ParseExpansionKind maps a manifest slug ("ee_wn", "ne_bn", ...) back to
// its kind — the inverse of Slug, shared by manifest round trips and the
// query-server request parser.
func ParseExpansionKind(slug string) (ExpansionKind, error) {
	switch slug {
	case "ee_wn":
		return WnEdge, nil
	case "ne_wn":
		return WnNode, nil
	case "ee_bn":
		return BnEdge, nil
	case "ne_bn":
		return BnNode, nil
	}
	return 0, fmt.Errorf("core: unknown expansion kind %q", slug)
}

// UnmarshalJSON accepts the slug form back (manifest round trips).
func (k *ExpansionKind) UnmarshalJSON(data []byte) error {
	var slug string
	if err := json.Unmarshal(data, &slug); err != nil {
		return fmt.Errorf("core: expansion kind: %w", err)
	}
	kind, err := ParseExpansionKind(slug)
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// Constants returns the lower- and upper-bound constants c in c·k/log k from
// the §4.3 summary tables.
func (k ExpansionKind) Constants() (lower, upper float64) {
	switch k {
	case WnEdge:
		return 4, 4
	case WnNode:
		return 1, 3
	case BnEdge:
		return 2, 2
	case BnNode:
		return 0.5, 1
	}
	return 0, 0
}

// ExpansionRow is one (network, k) entry of the §4.3 reproduction: the
// witness construction's measured boundary (upper bound), the
// credit-scheme certified lower bound evaluated on that witness, and —
// when the size budget allows — the true optimum.
type ExpansionRow struct {
	Kind      ExpansionKind `json:"kind"`
	N         int           `json:"n"` // butterfly inputs
	D         int           `json:"d"` // witness sub-butterfly dimension
	K         int           `json:"k"` // set size
	WitnessUB int           `json:"witness_ub"`
	// WitnessFormula is the lemma's exact prediction for the witness
	// boundary (4·2^d, 3·2^(d+1), 2·2^d or 2^(d+1)); the measured
	// WitnessUB must equal it.
	WitnessFormula int `json:"witness_formula"`
	CreditLB       int `json:"credit_lb"`
	// Exact is the branch-and-bound optimum (Unknown beyond the budget).
	// It is certified only when ExactComplete is true; a cancelled survey
	// leaves the best incumbent here (still an upper bound).
	Exact         int  `json:"exact"`
	ExactComplete bool `json:"exact_complete"`
	// Explored/Pruned count branch-and-bound nodes behind the Exact value.
	Explored int64   `json:"explored"`
	Pruned   int64   `json:"pruned"`
	TheoryLB float64 `json:"theory_lb"` // c_lower·k/log k
	TheoryUB float64 `json:"theory_ub"` // c_upper·k/log k
}

// MaxWitnessDim returns the largest witness dimension d for which the
// kind's §4 lemma construction exists on an n-input network (the lemmas
// need room around the sub-butterfly; see the constraints in package
// expansion). Dimensions above it make the witness constructors panic.
func MaxWitnessDim(kind ExpansionKind, n int) int {
	dim := 0
	for x := n; x > 1; x >>= 1 {
		dim++
	}
	switch kind {
	case WnEdge:
		return dim - 2
	case WnNode:
		return dim - 3
	case BnEdge, BnNode:
		return dim - 1
	}
	return 0
}

func witnessFormula(kind ExpansionKind, d int) int {
	switch kind {
	case WnEdge:
		return 4 << d
	case WnNode:
		return 3 << (d + 1)
	case BnEdge:
		return 2 << d
	case BnNode:
		return 1 << (d + 1)
	}
	return 0
}

// ExpansionTableOptions tune the exact-certification pass of
// ExpansionTable. The zero value reproduces the historical budget
// (k ≤ 8, GOMAXPROCS workers) with the exact pass disabled until
// ExactNodes is set.
type ExpansionTableOptions struct {
	// ExactNodes enables the exact engine on networks whose effective
	// search size is at most this many nodes; 0 disables exact optima.
	ExactNodes int
	// KMax caps the set sizes handed to the exact engine (default 8). The
	// parallel witness-seeded engine makes k = 10–12 reachable on small
	// networks; see cmd/exptable's -kmax flag.
	KMax int
	// Workers is the exact engine's worker-pool size (0 = GOMAXPROCS).
	Workers int

	// Ctx cancels the exact pass: interrupted searches report their best
	// incumbent with ExactComplete false instead of running to the end.
	// Witness measurement and credit certification are unaffected (cheap).
	// nil means never cancelled.
	Ctx context.Context
	// OnProgress, when non-nil, receives solver progress snapshots every
	// ProgressInterval (≤ 0: 1s) while the exact pass runs.
	OnProgress       func(solve.Progress)
	ProgressInterval time.Duration
	// Trace, when non-nil, receives the survey's span events.
	Trace *obs.Tracer
}

func (o ExpansionTableOptions) withDefaults() ExpansionTableOptions {
	if o.KMax <= 0 {
		o.KMax = 8
	}
	return o
}

// ExpansionTable evaluates one §4.3 row family on an n-input network for
// each witness dimension in dims. Exact optima are computed when the
// enumeration is affordable (small n and k): all affordable rows are
// batched into one exact.ExpansionSurvey call, root-forced on the
// vertex-transitive Wn and seeded with the witness boundaries so the
// branch-and-bound prunes against a tight incumbent from the start.
func ExpansionTable(kind ExpansionKind, n int, dims []int, opts ExpansionTableOptions) []ExpansionRow {
	opts = opts.withDefaults()
	rows := make([]ExpansionRow, 0, len(dims))
	var g *topology.Butterfly
	var root, costNodes int
	switch kind {
	case WnEdge, WnNode:
		g = topology.NewWrappedButterfly(n)
		// Wn is vertex-transitive, so the root-forced solver is exact and a
		// factor-N cheaper (the halved cost proxy reflects that).
		root, costNodes = 0, g.N()/2
	case BnEdge, BnNode:
		g = topology.NewButterfly(n)
		root, costNodes = -1, g.N()
	}
	for _, d := range dims {
		rows = append(rows, expansionRow(kind, g, d))
	}

	// Batch the affordable rows into one survey, seeded by their witnesses.
	var ks []int
	seeds := make(map[int]int)
	for _, r := range rows {
		if expansionExactAffordable(costNodes, r.K, opts.ExactNodes, opts.KMax) {
			ks = append(ks, r.K)
			seeds[r.K] = r.WitnessUB
		}
	}
	if len(ks) == 0 {
		return rows
	}
	seed := func(k int) int {
		if ub, ok := seeds[k]; ok {
			return ub
		}
		return -1
	}
	surveyOpts := exact.SurveyOptions{
		EdgeOnly:         kind == WnEdge || kind == BnEdge,
		NodeOnly:         kind == WnNode || kind == BnNode,
		EdgeSeed:         seed,
		NodeSeed:         seed,
		Ctx:              opts.Ctx,
		OnProgress:       opts.OnProgress,
		ProgressInterval: opts.ProgressInterval,
		Label:            fmt.Sprintf("%s survey n=%d", kind, n),
		Trace:            opts.Trace,
	}
	type exactOutcome struct {
		value    int
		complete bool
		explored int64
		pruned   int64
	}
	exactByK := make(map[int]exactOutcome)
	for _, res := range exact.ExpansionSurveyWithOptions(g.Graph, ks, root, opts.Workers, surveyOpts) {
		if res.EE != exact.NotComputed {
			exactByK[res.K] = exactOutcome{res.EE, res.EEExact, res.EEExplored, res.EEPruned}
		} else {
			exactByK[res.K] = exactOutcome{res.NE, res.NEExact, res.NEExplored, res.NEPruned}
		}
	}
	for i := range rows {
		if o, ok := exactByK[rows[i].K]; ok {
			rows[i].Exact = o.value
			rows[i].ExactComplete = o.complete
			rows[i].Explored = o.explored
			rows[i].Pruned = o.pruned
		}
	}
	return rows
}

// expansionRow measures one witness row: the set, its boundary, the credit
// certificate and the theory band — everything except the exact optimum.
func expansionRow(kind ExpansionKind, g *topology.Butterfly, d int) ExpansionRow {
	var set []int
	var ub int
	switch kind {
	case WnEdge:
		set = expansion.WnEdgeWitness(g, d)
		ub = cut.EdgeBoundary(g.Graph, set)
	case WnNode:
		set = expansion.WnNodeWitness(g, d)
		ub = len(cut.NodeBoundary(g.Graph, set))
	case BnEdge:
		set = expansion.BnEdgeWitness(g, d)
		ub = cut.EdgeBoundary(g.Graph, set)
	case BnNode:
		set = expansion.BnNodeWitness(g, d)
		ub = len(cut.NodeBoundary(g.Graph, set))
	}
	row := ExpansionRow{Kind: kind, N: g.Inputs(), D: d, K: len(set), WitnessUB: ub,
		WitnessFormula: witnessFormula(kind, d), Exact: Unknown}
	switch kind {
	case WnEdge:
		row.CreditLB = expansion.WnEdgeCreditBound(g, set).LowerBound
	case WnNode:
		row.CreditLB = expansion.WnNodeCreditBound(g, set).LowerBound
	case BnEdge:
		row.CreditLB = expansion.BnEdgeCreditBound(g, set).LowerBound
	case BnNode:
		row.CreditLB = expansion.BnNodeCreditBound(g, set).LowerBound
	}
	row.TheoryLB, row.TheoryUB = theoryBounds(kind, row.K)
	return row
}

func theoryBounds(kind ExpansionKind, k int) (lo, hi float64) {
	cl, cu := kind.Constants()
	logK := 0.0
	for x := k; x > 1; x >>= 1 {
		logK++
	}
	if logK == 0 {
		logK = 1
	}
	return cl * float64(k) / logK, cu * float64(k) / logK
}

// expansionExactAffordable is a coarse budget on the subset enumeration:
// roughly C(N,k) states after pruning; we cap by N and k.
func expansionExactAffordable(nodes, k, budget, kmax int) bool {
	if budget <= 0 {
		return false
	}
	return nodes <= budget && k <= kmax
}

// RenderExpansionTable renders rows for one kind.
func RenderExpansionTable(rows []ExpansionRow) string {
	if len(rows) == 0 {
		return ""
	}
	title := fmt.Sprintf("%s: witness upper bound vs credit-certified lower bound (§4.3)", rows[0].Kind)
	t := tablefmt.New(title,
		"n", "d", "k", "exact", "exact?", "explored", "credit LB", "witness UB", "lemma formula", "c_lo·k/log k", "c_hi·k/log k")
	for _, r := range rows {
		t.AddRow(r.N, r.D, r.K, fmtOrDash(r.Exact),
			fmtExactFlag(r.Exact, r.ExactComplete), fmtExplored(r.Exact, r.Explored),
			r.CreditLB, r.WitnessUB, r.WitnessFormula, r.TheoryLB, r.TheoryUB)
	}
	return t.String()
}
