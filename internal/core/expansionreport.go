package core

import (
	"fmt"

	"repro/internal/cut"
	"repro/internal/exact"
	"repro/internal/expansion"
	"repro/internal/tablefmt"
	"repro/internal/topology"
)

// ExpansionKind selects one of the four §4 quantities.
type ExpansionKind int

// The four expansion functions bounded in §4 of the paper.
const (
	WnEdge ExpansionKind = iota // EE(Wn,k): (4±o(1))k/log k
	WnNode                      // NE(Wn,k): between (1−o(1)) and (3+o(1)) k/log k
	BnEdge                      // EE(Bn,k): (2±o(1))k/log k
	BnNode                      // NE(Bn,k): between (1/2−o(1)) and (1+o(1)) k/log k
)

// String names the kind as in the §4.3 tables.
func (k ExpansionKind) String() string {
	switch k {
	case WnEdge:
		return "EE(Wn,k)"
	case WnNode:
		return "NE(Wn,k)"
	case BnEdge:
		return "EE(Bn,k)"
	case BnNode:
		return "NE(Bn,k)"
	}
	return "?"
}

// Constants returns the lower- and upper-bound constants c in c·k/log k from
// the §4.3 summary tables.
func (k ExpansionKind) Constants() (lower, upper float64) {
	switch k {
	case WnEdge:
		return 4, 4
	case WnNode:
		return 1, 3
	case BnEdge:
		return 2, 2
	case BnNode:
		return 0.5, 1
	}
	return 0, 0
}

// ExpansionRow is one (network, k) entry of the §4.3 reproduction: the
// witness construction's measured boundary (upper bound), the
// credit-scheme certified lower bound evaluated on that witness, and —
// when the size budget allows — the true optimum.
type ExpansionRow struct {
	Kind      ExpansionKind
	N         int // butterfly inputs
	D         int // witness sub-butterfly dimension
	K         int // set size
	WitnessUB int
	// WitnessFormula is the lemma's exact prediction for the witness
	// boundary (4·2^d, 3·2^(d+1), 2·2^d or 2^(d+1)); the measured
	// WitnessUB must equal it.
	WitnessFormula int
	CreditLB       int
	Exact          int
	TheoryLB       float64 // c_lower·k/log k
	TheoryUB       float64 // c_upper·k/log k
}

func witnessFormula(kind ExpansionKind, d int) int {
	switch kind {
	case WnEdge:
		return 4 << d
	case WnNode:
		return 3 << (d + 1)
	case BnEdge:
		return 2 << d
	case BnNode:
		return 1 << (d + 1)
	}
	return 0
}

// ExpansionTable evaluates one §4.3 row family on an n-input network for
// each witness dimension in dims. Exact optima are computed when the
// enumeration is affordable (small n and k).
func ExpansionTable(kind ExpansionKind, n int, dims []int, exactBudget int) []ExpansionRow {
	rows := make([]ExpansionRow, 0, len(dims))
	switch kind {
	case WnEdge, WnNode:
		w := topology.NewWrappedButterfly(n)
		for _, d := range dims {
			rows = append(rows, expansionRowWn(kind, w, d, exactBudget))
		}
	case BnEdge, BnNode:
		b := topology.NewButterfly(n)
		for _, d := range dims {
			rows = append(rows, expansionRowBn(kind, b, d, exactBudget))
		}
	}
	return rows
}

func expansionRowWn(kind ExpansionKind, w *topology.Butterfly, d, exactBudget int) ExpansionRow {
	var set []int
	var ub int
	if kind == WnEdge {
		set = expansion.WnEdgeWitness(w, d)
		ub = cut.EdgeBoundary(w.Graph, set)
	} else {
		set = expansion.WnNodeWitness(w, d)
		ub = len(cut.NodeBoundary(w.Graph, set))
	}
	row := ExpansionRow{Kind: kind, N: w.Inputs(), D: d, K: len(set), WitnessUB: ub,
		WitnessFormula: witnessFormula(kind, d), Exact: Unknown}
	if kind == WnEdge {
		row.CreditLB = expansion.WnEdgeCreditBound(w, set).LowerBound
	} else {
		row.CreditLB = expansion.WnNodeCreditBound(w, set).LowerBound
	}
	row.TheoryLB, row.TheoryUB = theoryBounds(kind, row.K)
	// Wn is vertex-transitive, so the root-forced solver is exact and a
	// factor-N cheaper (the larger budget reflects that).
	if expansionExactAffordable(w.N()/2, row.K, exactBudget) {
		if kind == WnEdge {
			_, row.Exact = exact.MinEdgeExpansionContaining(w.Graph, row.K, 0)
		} else {
			_, row.Exact = exact.MinNodeExpansionContaining(w.Graph, row.K, 0)
		}
	}
	return row
}

func expansionRowBn(kind ExpansionKind, b *topology.Butterfly, d, exactBudget int) ExpansionRow {
	var set []int
	var ub int
	if kind == BnEdge {
		set = expansion.BnEdgeWitness(b, d)
		ub = cut.EdgeBoundary(b.Graph, set)
	} else {
		set = expansion.BnNodeWitness(b, d)
		ub = len(cut.NodeBoundary(b.Graph, set))
	}
	row := ExpansionRow{Kind: kind, N: b.Inputs(), D: d, K: len(set), WitnessUB: ub,
		WitnessFormula: witnessFormula(kind, d), Exact: Unknown}
	if kind == BnEdge {
		row.CreditLB = expansion.BnEdgeCreditBound(b, set).LowerBound
	} else {
		row.CreditLB = expansion.BnNodeCreditBound(b, set).LowerBound
	}
	row.TheoryLB, row.TheoryUB = theoryBounds(kind, row.K)
	if expansionExactAffordable(b.N(), row.K, exactBudget) {
		if kind == BnEdge {
			_, row.Exact = exact.MinEdgeExpansion(b.Graph, row.K)
		} else {
			_, row.Exact = exact.MinNodeExpansion(b.Graph, row.K)
		}
	}
	return row
}

func theoryBounds(kind ExpansionKind, k int) (lo, hi float64) {
	cl, cu := kind.Constants()
	logK := 0.0
	for x := k; x > 1; x >>= 1 {
		logK++
	}
	if logK == 0 {
		logK = 1
	}
	return cl * float64(k) / logK, cu * float64(k) / logK
}

// expansionExactAffordable is a coarse budget on the subset enumeration:
// roughly C(N,k) states after pruning; we cap by N and k.
func expansionExactAffordable(nodes, k, budget int) bool {
	if budget <= 0 {
		return false
	}
	return nodes <= budget && k <= 8
}

// RenderExpansionTable renders rows for one kind.
func RenderExpansionTable(rows []ExpansionRow) string {
	if len(rows) == 0 {
		return ""
	}
	title := fmt.Sprintf("%s: witness upper bound vs credit-certified lower bound (§4.3)", rows[0].Kind)
	t := tablefmt.New(title,
		"n", "d", "k", "exact", "credit LB", "witness UB", "lemma formula", "c_lo·k/log k", "c_hi·k/log k")
	for _, r := range rows {
		t.AddRow(r.N, r.D, r.K, fmtOrDash(r.Exact), r.CreditLB, r.WitnessUB, r.WitnessFormula, r.TheoryLB, r.TheoryUB)
	}
	return t.String()
}
