package core

import (
	"strings"
	"testing"
)

func TestWriteFullReportQuick(t *testing.T) {
	var sb strings.Builder
	if err := WriteFullReport(&sb, ReportOptions{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, section := range []string{
		"E1:", "E2:", "E3:", "E4:", "E5:", "E6/E7:", "E8:", "E9:",
		"E12:", "E13:", "E14:", "E15:", "E16:", "E17:",
	} {
		if !strings.Contains(out, "=== "+section) {
			t.Errorf("report missing section %q", section)
		}
	}
	// The headline artifacts must appear.
	for _, needle := range []string{
		"0.8284", // theory limit 2(√2−1)
		"0.4142", // √2−1
		"inputs bisected: true",
		"permutations routed edge-disjointly",
		"Thompson",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("report missing %q", needle)
		}
	}
	// No experiment may have errored visibly.
	if strings.Contains(out, "error") || strings.Contains(out, "panic") {
		t.Errorf("report contains an error marker")
	}
}

func TestLayoutAreaLowerBound(t *testing.T) {
	if LayoutAreaLowerBound(8) != 64 {
		t.Errorf("Thompson bound wrong")
	}
}
