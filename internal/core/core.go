// Package core is the top-level analysis API of this reproduction of
// Bornstein, Litman, Maggs, Sitaraman and Yatzkar, "On the Bisection Width
// and Expansion of Butterfly Networks" (IPPS'98 / Theory Comput. Systems
// 34, 2001).
//
// Each experiment of DESIGN.md has a function here that assembles the
// relevant machinery — exact branch-and-bound solvers, heuristic search,
// the paper's constructions, embedding-based and credit-certified lower
// bounds — into a structured report, plus a renderer producing the table
// the paper's evaluation corresponds to. The cmd/ tools and the repository
// benchmarks are thin wrappers over this package.
package core

import "math"

// Unknown marks a quantity that was not computed at the requested size
// (e.g. an exact optimum beyond the branch-and-bound budget).
const Unknown = -1

// TheoreticalBisectionRatio is 2(√2−1), the Theorem 2.20 constant for
// BW(Bn)/n.
var TheoreticalBisectionRatio = 2 * (math.Sqrt2 - 1)

// fmtOrDash renders v, or "-" when it is Unknown.
func fmtOrDash(v int) interface{} {
	if v == Unknown {
		return "-"
	}
	return v
}
