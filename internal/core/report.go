package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/construct"
	"repro/internal/mos"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/solve"
	"repro/internal/transmute"
)

// ReportOptions tune BuildFullReport / WriteFullReport.
type ReportOptions struct {
	// Quick trims the exact-solver budget for fast runs.
	Quick bool
	// Seed drives the randomized experiments (routing, Beneš checks).
	Seed int64
	// Ctx cancels the expensive solves mid-report: affected rows degrade
	// to incumbents (marked non-exact) rather than aborting the report.
	// nil means never cancelled.
	Ctx context.Context
	// OnProgress, when non-nil, receives solver progress snapshots every
	// ProgressInterval (≤ 0: 1s) from the exact and Monte-Carlo engines.
	OnProgress       func(solve.Progress)
	ProgressInterval time.Duration
	// Trace, when non-nil, receives span events from every solver the
	// report runs.
	Trace *obs.Tracer
	// MaxConstructedLog, when ≥ 12, extends the E2 Bn table with extra
	// constructed-bisection rows at log n ∈ {12, 15, 18, 20} up to the
	// bound. The large sizes are evaluated virtually by the word-parallel
	// kernel; below 12 (the default) the classic table is unchanged.
	MaxConstructedLog int
}

// BenesCheck is one E9 row: how many permutations (identity, reversal and
// random ones) routed edge-disjointly through the n-input Beneš network.
type BenesCheck struct {
	N      int `json:"n"`
	Routed int `json:"routed"`
	Total  int `json:"total"`
}

// TransmutationRow is one E14 row: the Lemma 3.2 pipeline on Wn. Err is
// set (and the capacities partial) when the pipeline rejected the input
// cut.
type TransmutationRow struct {
	N int `json:"n"`
	transmute.Result
	Err string `json:"error,omitempty"`
}

// FullReport holds the structured results of every experiment of
// DESIGN.md (E1–E17): the data behind the text report and behind the
// machine-readable run manifest. Build it with BuildFullReport, render it
// with RenderFullReport, serialize it with AppendManifestTables.
type FullReport struct {
	Seed int64

	Structure          []StructureReport
	Bn                 []BisectionReport
	SubFolklore        []construct.Plan
	ThompsonFloorB1024 int
	MOS                []mos.Result
	Wn                 []BisectionReport
	InputBisectionB4   int
	CCC                []BisectionReport
	// Expansion holds the four §4.3 witness tables (n = 256); ExpansionExact
	// the two exact-optimum tables at enumerable sizes.
	Expansion      [][]ExpansionRow
	ExpansionExact [][]ExpansionRow
	Routing        []RoutingReport
	// RoutingFaults is the E8 degradation curve: drop-rate sweep at a
	// fixed shape, measuring how greedy routing decays from the §1.2
	// floor as links turn lossy.
	RoutingFaults []RoutingReport
	Benes         []BenesCheck
	// Variants holds the two E12 tables (n = 8 and n = 64).
	Variants      [][]VariantRow
	Bandwidth     []BandwidthReport
	Transmutation []TransmutationRow
	Dissemination []DisseminationReport
	Emulation     []EmulationRow
	Layout        []LayoutRow
}

// BuildFullReport runs every experiment of DESIGN.md (E1–E17) and returns
// the structured results. A non-nil error means an experiment detected an
// internal inconsistency (e.g. an invalid layout or unbalanced plan) and
// the report is incomplete.
func BuildFullReport(opts ReportOptions) (*FullReport, error) {
	exactNodes := 32
	if opts.Quick {
		exactNodes = 16
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	budget := BisectionBudget{
		ExactNodes:       exactNodes,
		Ctx:              opts.Ctx,
		OnProgress:       opts.OnProgress,
		ProgressInterval: opts.ProgressInterval,
		Trace:            opts.Trace,
	}
	rep := &FullReport{Seed: opts.Seed}

	for _, n := range []int{4, 8, 16, 32} {
		rep.Structure = append(rep.Structure, ButterflyStructure(n, false))
	}
	for _, n := range []int{4, 8, 16, 32} {
		rep.Structure = append(rep.Structure, ButterflyStructure(n, true))
	}

	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024} {
		r, err := ButterflyBisection(n, budget)
		if err != nil {
			return nil, err
		}
		rep.Bn = append(rep.Bn, r)
	}
	// The Thompson floor quotes B1024, the last classic row — read it
	// before the -max-log extension appends larger sizes.
	rep.ThompsonFloorB1024 = LayoutAreaLowerBound(rep.Bn[len(rep.Bn)-1].Constructed)
	for _, lg := range []int{12, 15, 18, 20} {
		if lg > opts.MaxConstructedLog {
			break
		}
		r, err := ButterflyBisection(1<<lg, budget)
		if err != nil {
			return nil, err
		}
		rep.Bn = append(rep.Bn, r)
	}
	var dims []int
	for d := 6; d <= 30; d += 3 {
		dims = append(dims, d)
	}
	sf, err := SubFolkloreSweep(dims)
	if err != nil {
		return nil, err
	}
	rep.SubFolklore = sf

	rep.MOS = MOSConvergence([]int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})

	for _, n := range []int{4, 8, 16, 64, 256} {
		rep.Wn = append(rep.Wn, WrappedBisection(n, budget))
	}
	rep.InputBisectionB4 = InputBisectionCheck(4)

	for _, n := range []int{8, 16, 64, 256} {
		rep.CCC = append(rep.CCC, CCCBisection(n, budget))
	}

	expOpts := ExpansionTableOptions{
		ExactNodes:       exactNodes,
		Ctx:              opts.Ctx,
		OnProgress:       opts.OnProgress,
		ProgressInterval: opts.ProgressInterval,
		Trace:            opts.Trace,
	}
	for _, kind := range []ExpansionKind{WnEdge, WnNode, BnEdge, BnNode} {
		rep.Expansion = append(rep.Expansion, ExpansionTable(kind, 256, []int{1, 2, 3, 4}, expOpts))
	}
	smallOpts := expOpts
	smallOpts.ExactNodes = exactNodes * 2
	rep.ExpansionExact = append(rep.ExpansionExact,
		ExpansionTable(WnEdge, 16, []int{1}, smallOpts),
		ExpansionTable(BnEdge, 8, []int{1}, smallOpts))

	for _, n := range []int{8, 16, 32, 64} {
		rep.Routing = append(rep.Routing, RandomRoutingExperiment(n, opts.Seed, RoutingOptions{
			Trials:           25,
			Ctx:              opts.Ctx,
			OnProgress:       opts.OnProgress,
			ProgressInterval: opts.ProgressInterval,
			Trace:            opts.Trace,
		}))
	}

	rep.RoutingFaults = RoutingDegradation(32, opts.Seed, route.RandomDestinations,
		[]float64{0, 0.02, 0.05, 0.1}, RoutingOptions{
			Trials:           25,
			Ctx:              opts.Ctx,
			OnProgress:       opts.OnProgress,
			ProgressInterval: opts.ProgressInterval,
			Trace:            opts.Trace,
		})

	for _, n := range []int{8, 64, 256} {
		routed, total := BenesRearrangeabilityCheck(n, 200, opts.Seed)
		rep.Benes = append(rep.Benes, BenesCheck{N: n, Routed: routed, Total: total})
	}

	rep.Variants = append(rep.Variants,
		VariantsTable(8, []int{1}, exactNodes),
		VariantsTable(64, []int{1, 2, 3}, exactNodes))

	for _, n := range []int{4, 8, 16, 64} {
		rep.Bandwidth = append(rep.Bandwidth, BandwidthExperiment(n, exactNodes))
	}

	for _, n := range []int{8, 16, 64} {
		row := TransmutationRow{N: n}
		res, err := TransmutationExperiment(n, exactNodes)
		row.Result = res
		if err != nil {
			row.Err = err.Error()
		}
		rep.Transmutation = append(rep.Transmutation, row)
	}

	for _, n := range []int{8, 16, 32} {
		if r, err := Dissemination(n); err == nil {
			rep.Dissemination = append(rep.Dissemination, r)
		}
	}

	rep.Emulation = EmulationExperiments(16)

	for _, n := range []int{16, 64, 256, 1024} {
		row, err := LayoutExperiment(n)
		if err != nil {
			return nil, err
		}
		rep.Layout = append(rep.Layout, row)
	}
	return rep, nil
}

// RenderFullReport writes the complete text reproduction report for a
// built FullReport to w. EXPERIMENTS.md records this output.
func RenderFullReport(w io.Writer, rep *FullReport) {
	fmt.Fprintln(w, "=== E1: structure (Fig. 1, §1.1) ===")
	fmt.Fprint(w, RenderStructureTable(rep.Structure))

	fmt.Fprintln(w, "\n=== E2: BW(Bn) (Theorem 2.20) ===")
	fmt.Fprint(w, RenderBisectionTable("BW(Bn)", rep.Bn))
	fmt.Fprint(w, RenderSubFolkloreTable(rep.SubFolklore))
	fmt.Fprintf(w, "Thompson (§1.2): layout area of B1024 is at least BW² = %d\n",
		rep.ThompsonFloorB1024)

	fmt.Fprintln(w, "\n=== E3: mesh of stars (Lemmas 2.17–2.19) ===")
	fmt.Fprint(w, RenderMOSTable(rep.MOS))

	fmt.Fprintln(w, "\n=== E4: BW(Wn) = n (Lemma 3.2) ===")
	fmt.Fprint(w, RenderBisectionTable("BW(Wn)", rep.Wn))
	fmt.Fprintf(w, "Lemma 3.1: BW(B4, inputs) = %d (≥ n = 4)\n", rep.InputBisectionB4)

	fmt.Fprintln(w, "\n=== E5: BW(CCCn) = n/2 (Lemma 3.3) ===")
	fmt.Fprint(w, RenderBisectionTable("BW(CCCn)", rep.CCC))

	fmt.Fprintln(w, "\n=== E6/E7: expansion (§4.3 tables) ===")
	for _, rows := range rep.Expansion {
		fmt.Fprint(w, RenderExpansionTable(rows))
	}
	fmt.Fprintln(w, "\n--- exact optima at enumerable sizes ---")
	for _, rows := range rep.ExpansionExact {
		fmt.Fprint(w, RenderExpansionTable(rows))
	}

	fmt.Fprintln(w, "\n=== E8: routing vs bisection bound (§1.2) ===")
	fmt.Fprint(w, RenderRoutingTable("random destinations on Bn (25 trials/row)", rep.Routing))
	fmt.Fprint(w, RenderFaultRoutingTable("routing under faults: drop-rate sweep on B32", rep.RoutingFaults))

	fmt.Fprintln(w, "\n=== E9: Beneš rearrangeability (Lemma 2.5 substrate) ===")
	for _, b := range rep.Benes {
		fmt.Fprintf(w, "  Beneš %3d inputs: %d/%d permutations routed edge-disjointly\n", b.N, b.Routed, b.Total)
	}
	fmt.Fprintln(w, "\nE10 (compactness/amenability) and E11 (embedding properties) are")
	fmt.Fprintln(w, "verified by the test suite: go test ./internal/compactness ./internal/embed")

	fmt.Fprintln(w, "\n=== E12: §1.6 related bounds (Snir, Hong–Kung) ===")
	for _, rows := range rep.Variants {
		fmt.Fprint(w, RenderVariantsTable(rows))
	}

	fmt.Fprintln(w, "\n=== E13: directed (Kruskal–Snir) bisection (§1.2) ===")
	fmt.Fprint(w, RenderBandwidthTable(rep.Bandwidth))

	fmt.Fprintln(w, "\n=== E14: Lemma 3.2 transmutation pipeline ===")
	for _, row := range rep.Transmutation {
		if row.Err != "" {
			fmt.Fprintf(w, "  W%d: %s\n", row.N, row.Err)
			continue
		}
		fmt.Fprintf(w, "  W%d: split level %d, Wn cut %d → Bn cut %d → rebalanced %d (%d moves), inputs bisected: %v\n",
			row.N, row.SplitLevel, row.WnCapacity, row.BnCapacity, row.FinalCapacity, row.Moves, row.InputBisected)
	}

	fmt.Fprintln(w, "\n=== E15: dissemination on Wn (§1.3) ===")
	fmt.Fprint(w, RenderDisseminationTable(rep.Dissemination))

	fmt.Fprintln(w, "\n=== E16: emulation through embeddings (§1.5) ===")
	fmt.Fprint(w, RenderEmulationTable(rep.Emulation))

	fmt.Fprintln(w, "\n=== E17: VLSI layout (§1.1/§1.2) ===")
	fmt.Fprint(w, RenderLayoutTable(rep.Layout))
}

// WriteFullReport runs every experiment of DESIGN.md (E1–E17) and writes
// the complete reproduction report to w. cmd/paperrepro is a thin wrapper
// around BuildFullReport + RenderFullReport; this convenience keeps the
// historical single-call API.
func WriteFullReport(w io.Writer, opts ReportOptions) error {
	rep, err := BuildFullReport(opts)
	if err != nil {
		return err
	}
	RenderFullReport(w, rep)
	return nil
}

// LayoutAreaLowerBound is Thompson's VLSI bound quoted in §1.2:
// A ≥ BW(G)².
func LayoutAreaLowerBound(bw int) int { return bw * bw }
