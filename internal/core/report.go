package core

import (
	"context"
	"fmt"
	"io"
)

// ReportOptions tune WriteFullReport.
type ReportOptions struct {
	// Quick trims the exact-solver budget for fast runs.
	Quick bool
	// Seed drives the randomized experiments (routing, Beneš checks).
	Seed int64
	// Ctx cancels the expensive solves mid-report: affected rows degrade
	// to incumbents (marked non-exact) rather than aborting the report.
	// nil means never cancelled.
	Ctx context.Context
}

// WriteFullReport runs every experiment of DESIGN.md (E1–E16) and writes
// the complete reproduction report to w. cmd/paperrepro is a thin wrapper
// around this function; EXPERIMENTS.md records its output. A non-nil error
// means an experiment detected an internal inconsistency (e.g. an invalid
// layout or unbalanced plan) and the report is incomplete.
func WriteFullReport(w io.Writer, opts ReportOptions) error {
	exactNodes := 32
	if opts.Quick {
		exactNodes = 16
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	budget := BisectionBudget{ExactNodes: exactNodes, Ctx: opts.Ctx}

	fmt.Fprintln(w, "=== E1: structure (Fig. 1, §1.1) ===")
	var structs []StructureReport
	for _, n := range []int{4, 8, 16, 32} {
		structs = append(structs, ButterflyStructure(n, false))
	}
	for _, n := range []int{4, 8, 16, 32} {
		structs = append(structs, ButterflyStructure(n, true))
	}
	fmt.Fprint(w, RenderStructureTable(structs))

	fmt.Fprintln(w, "\n=== E2: BW(Bn) (Theorem 2.20) ===")
	var bn []BisectionReport
	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024} {
		r, err := ButterflyBisection(n, budget)
		if err != nil {
			return err
		}
		bn = append(bn, r)
	}
	fmt.Fprint(w, RenderBisectionTable("BW(Bn)", bn))
	var dims []int
	for d := 6; d <= 30; d += 3 {
		dims = append(dims, d)
	}
	fmt.Fprint(w, RenderSubFolkloreTable(SubFolkloreSweep(dims)))
	fmt.Fprintf(w, "Thompson (§1.2): layout area of B1024 is at least BW² = %d\n",
		LayoutAreaLowerBound(bn[len(bn)-1].Constructed))

	fmt.Fprintln(w, "\n=== E3: mesh of stars (Lemmas 2.17–2.19) ===")
	js := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	fmt.Fprint(w, RenderMOSTable(MOSConvergence(js)))

	fmt.Fprintln(w, "\n=== E4: BW(Wn) = n (Lemma 3.2) ===")
	var wn []BisectionReport
	for _, n := range []int{4, 8, 16, 64, 256} {
		wn = append(wn, WrappedBisection(n, budget))
	}
	fmt.Fprint(w, RenderBisectionTable("BW(Wn)", wn))
	fmt.Fprintf(w, "Lemma 3.1: BW(B4, inputs) = %d (≥ n = 4)\n", InputBisectionCheck(4))

	fmt.Fprintln(w, "\n=== E5: BW(CCCn) = n/2 (Lemma 3.3) ===")
	var ccc []BisectionReport
	for _, n := range []int{8, 16, 64, 256} {
		ccc = append(ccc, CCCBisection(n, budget))
	}
	fmt.Fprint(w, RenderBisectionTable("BW(CCCn)", ccc))

	fmt.Fprintln(w, "\n=== E6/E7: expansion (§4.3 tables) ===")
	for _, kind := range []ExpansionKind{WnEdge, WnNode, BnEdge, BnNode} {
		fmt.Fprint(w, RenderExpansionTable(ExpansionTable(kind, 256, []int{1, 2, 3, 4},
			ExpansionTableOptions{ExactNodes: exactNodes, Ctx: opts.Ctx})))
	}
	fmt.Fprintln(w, "\n--- exact optima at enumerable sizes ---")
	fmt.Fprint(w, RenderExpansionTable(ExpansionTable(WnEdge, 16, []int{1},
		ExpansionTableOptions{ExactNodes: exactNodes * 2, Ctx: opts.Ctx})))
	fmt.Fprint(w, RenderExpansionTable(ExpansionTable(BnEdge, 8, []int{1},
		ExpansionTableOptions{ExactNodes: exactNodes * 2, Ctx: opts.Ctx})))

	fmt.Fprintln(w, "\n=== E8: routing vs bisection bound (§1.2) ===")
	var random []RoutingReport
	for _, n := range []int{8, 16, 32, 64} {
		random = append(random, RandomRoutingExperiment(n, opts.Seed, RoutingOptions{Trials: 25, Ctx: opts.Ctx}))
	}
	fmt.Fprint(w, RenderRoutingTable("random destinations on Bn (25 trials/row)", random))

	fmt.Fprintln(w, "\n=== E9: Beneš rearrangeability (Lemma 2.5 substrate) ===")
	for _, n := range []int{8, 64, 256} {
		routed, total := BenesRearrangeabilityCheck(n, 200, opts.Seed)
		fmt.Fprintf(w, "  Beneš %3d inputs: %d/%d permutations routed edge-disjointly\n", n, routed, total)
	}
	fmt.Fprintln(w, "\nE10 (compactness/amenability) and E11 (embedding properties) are")
	fmt.Fprintln(w, "verified by the test suite: go test ./internal/compactness ./internal/embed")

	fmt.Fprintln(w, "\n=== E12: §1.6 related bounds (Snir, Hong–Kung) ===")
	fmt.Fprint(w, RenderVariantsTable(VariantsTable(8, []int{1}, exactNodes)))
	fmt.Fprint(w, RenderVariantsTable(VariantsTable(64, []int{1, 2, 3}, exactNodes)))

	fmt.Fprintln(w, "\n=== E13: directed (Kruskal–Snir) bisection (§1.2) ===")
	var bws []BandwidthReport
	for _, n := range []int{4, 8, 16, 64} {
		bws = append(bws, BandwidthExperiment(n, exactNodes))
	}
	fmt.Fprint(w, RenderBandwidthTable(bws))

	fmt.Fprintln(w, "\n=== E14: Lemma 3.2 transmutation pipeline ===")
	for _, n := range []int{8, 16, 64} {
		res, err := TransmutationExperiment(n, exactNodes)
		if err != nil {
			fmt.Fprintf(w, "  W%d: %v\n", n, err)
			continue
		}
		fmt.Fprintf(w, "  W%d: split level %d, Wn cut %d → Bn cut %d → rebalanced %d (%d moves), inputs bisected: %v\n",
			n, res.SplitLevel, res.WnCapacity, res.BnCapacity, res.FinalCapacity, res.Moves, res.InputBisected)
	}

	fmt.Fprintln(w, "\n=== E15: dissemination on Wn (§1.3) ===")
	var diss []DisseminationReport
	for _, n := range []int{8, 16, 32} {
		if r, err := Dissemination(n); err == nil {
			diss = append(diss, r)
		}
	}
	fmt.Fprint(w, RenderDisseminationTable(diss))

	fmt.Fprintln(w, "\n=== E16: emulation through embeddings (§1.5) ===")
	fmt.Fprint(w, RenderEmulationTable(EmulationExperiments(16)))

	fmt.Fprintln(w, "\n=== E17: VLSI layout (§1.1/§1.2) ===")
	var lay []LayoutRow
	for _, n := range []int{16, 64, 256, 1024} {
		row, err := LayoutExperiment(n)
		if err != nil {
			return err
		}
		lay = append(lay, row)
	}
	fmt.Fprint(w, RenderLayoutTable(lay))
	return nil
}

// LayoutAreaLowerBound is Thompson's VLSI bound quoted in §1.2:
// A ≥ BW(G)².
func LayoutAreaLowerBound(bw int) int { return bw * bw }
