package core

import (
	"strings"
	"testing"
)

func TestButterflyBisectionSmall(t *testing.T) {
	// B4: exact, heuristic, constructed and lower bound must nest
	// correctly: LB ≤ exact ≤ heuristic, exact ≤ constructed.
	r, err := ButterflyBisection(4, BisectionBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact == Unknown {
		t.Fatalf("exact should be computed for B4")
	}
	if !r.ExactComplete {
		t.Errorf("uncancelled exact solve not marked complete")
	}
	if r.LowerBound > r.Exact {
		t.Errorf("lower bound %d exceeds exact %d", r.LowerBound, r.Exact)
	}
	if r.Exact > r.Heuristic {
		t.Errorf("exact %d exceeds heuristic %d", r.Exact, r.Heuristic)
	}
	if r.Exact > r.Constructed {
		t.Errorf("exact %d exceeds constructed %d", r.Exact, r.Constructed)
	}
	if r.Constructed != 4 {
		t.Errorf("constructed %d, want folklore 4 at this size", r.Constructed)
	}
}

func TestButterflyBisectionExactB8(t *testing.T) {
	if testing.Short() {
		t.Skip("exact B8 takes a few seconds")
	}
	r, err := ButterflyBisection(8, BisectionBudget{ExactNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact != 8 {
		t.Errorf("BW(B8) = %d, want 8", r.Exact)
	}
	if !r.ExactComplete || r.Explored == 0 {
		t.Errorf("B8 solve telemetry: complete=%v explored=%d", r.ExactComplete, r.Explored)
	}
}

func TestButterflyBisectionVirtualLarge(t *testing.T) {
	// Beyond the materialization budget, the constructed capacity comes
	// from the virtual evaluator and beats folklore at large sizes.
	r, err := ButterflyBisection(1<<15, BisectionBudget{MaterializeNodes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact != Unknown || r.Heuristic != Unknown {
		t.Errorf("exact/heuristic should be skipped at this size")
	}
	if r.Constructed >= 1<<15 {
		t.Errorf("constructed %d did not beat folklore", r.Constructed)
	}
}

func TestWrappedAndCCCBisection(t *testing.T) {
	w := WrappedBisection(8, BisectionBudget{})
	if w.Exact != 8 || w.Constructed != 8 {
		t.Errorf("W8: exact %d constructed %d, want 8/8", w.Exact, w.Constructed)
	}
	c := CCCBisection(8, BisectionBudget{})
	if c.Exact != 4 || c.Constructed != 4 {
		t.Errorf("CCC8: exact %d constructed %d, want 4/4", c.Exact, c.Constructed)
	}
}

func TestInputBisectionCheck(t *testing.T) {
	// Lemma 3.1: exactly n for B4.
	if got := InputBisectionCheck(4); got != 4 {
		t.Errorf("BW(B4, L0) = %d, want 4", got)
	}
}

func TestRenderBisectionTable(t *testing.T) {
	r := WrappedBisection(8, BisectionBudget{})
	out := RenderBisectionTable("test", []BisectionReport{r})
	for _, want := range []string{"W8", "exact", "theory"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSubFolkloreSweep(t *testing.T) {
	plans, err := SubFolkloreSweep([]int{6, 12, 15})
	if err != nil {
		t.Fatalf("SubFolkloreSweep: %v", err)
	}
	if len(plans) != 3 {
		t.Fatalf("got %d plans", len(plans))
	}
	if plans[0].Ratio != 1.0 {
		t.Errorf("small-n ratio %v, want folklore 1.0", plans[0].Ratio)
	}
	if plans[2].Ratio >= 1.0 {
		t.Errorf("large-n ratio %v should be sub-folklore", plans[2].Ratio)
	}
	out := RenderSubFolkloreTable(plans)
	if !strings.Contains(out, "0.8284") {
		t.Errorf("table missing the theory limit:\n%s", out)
	}
}

func TestMOSConvergenceReport(t *testing.T) {
	results := MOSConvergence([]int{2, 8, 64})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[2].Ratio >= results[0].Ratio {
		t.Errorf("ratio did not decrease: %v vs %v", results[2].Ratio, results[0].Ratio)
	}
	out := RenderMOSTable(results)
	if !strings.Contains(out, "0.4142") {
		t.Errorf("table missing √2−1:\n%s", out)
	}
}

func TestExpansionTables(t *testing.T) {
	for _, kind := range []ExpansionKind{WnEdge, WnNode, BnEdge, BnNode} {
		rows := ExpansionTable(kind, 64, []int{1, 2}, ExpansionTableOptions{})
		if len(rows) != 2 {
			t.Fatalf("%v: %d rows", kind, len(rows))
		}
		for _, r := range rows {
			if r.CreditLB > r.WitnessUB {
				t.Errorf("%v d=%d: credit LB %d exceeds witness UB %d",
					kind, r.D, r.CreditLB, r.WitnessUB)
			}
			if r.K != 0 && float64(r.WitnessUB) > 2*r.TheoryUB+4 {
				t.Errorf("%v d=%d: witness UB %d far above theory %g",
					kind, r.D, r.WitnessUB, r.TheoryUB)
			}
		}
		out := RenderExpansionTable(rows)
		if !strings.Contains(out, kind.String()) {
			t.Errorf("table missing kind name:\n%s", out)
		}
	}
}

func TestMaxWitnessDim(t *testing.T) {
	// At the returned dimension the witness constructors succeed; one above
	// they refuse (the lemmas need room around the sub-butterfly).
	for _, kind := range []ExpansionKind{WnEdge, WnNode, BnEdge, BnNode} {
		for _, n := range []int{16, 64} {
			top := MaxWitnessDim(kind, n)
			if top < 1 {
				t.Fatalf("%v n=%d: no valid witness dimension", kind, n)
			}
			if rows := ExpansionTable(kind, n, []int{top}, ExpansionTableOptions{}); len(rows) != 1 {
				t.Fatalf("%v n=%d d=%d: %d rows", kind, n, top, len(rows))
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%v n=%d d=%d: expected out-of-range panic", kind, n, top+1)
					}
				}()
				ExpansionTable(kind, n, []int{top + 1}, ExpansionTableOptions{})
			}()
		}
	}
}

func TestExpansionTableExact(t *testing.T) {
	// With a budget, exact optima appear and sit between the bounds.
	rows := ExpansionTable(WnEdge, 8, []int{1}, ExpansionTableOptions{ExactNodes: 64})
	r := rows[0]
	if r.Exact == Unknown {
		t.Fatalf("exact not computed")
	}
	if r.CreditLB > r.Exact || r.Exact > r.WitnessUB {
		t.Errorf("bounds do not bracket the optimum: %d ≤ %d ≤ %d",
			r.CreditLB, r.Exact, r.WitnessUB)
	}
}

func TestStructureReports(t *testing.T) {
	b8 := ButterflyStructure(8, false)
	if b8.Nodes != 32 || b8.NodesFormula != 32 {
		t.Errorf("B8 nodes %d/%d", b8.Nodes, b8.NodesFormula)
	}
	if b8.Diameter != b8.TheoryDiam {
		t.Errorf("B8 diameter %d vs theory %d", b8.Diameter, b8.TheoryDiam)
	}
	if !b8.MonotonePaths {
		t.Errorf("Lemma 2.3 verification failed")
	}
	w16 := ButterflyStructure(16, true)
	if w16.Diameter != w16.TheoryDiam {
		t.Errorf("W16 diameter %d vs theory %d", w16.Diameter, w16.TheoryDiam)
	}
	out := RenderStructureTable([]StructureReport{b8, w16})
	if !strings.Contains(out, "B8") || !strings.Contains(out, "W16") {
		t.Errorf("table missing rows:\n%s", out)
	}
}

func TestRenderButterflyDiagram(t *testing.T) {
	out := RenderButterflyDiagram(8)
	if !strings.Contains(out, "000") || !strings.Contains(out, "111") {
		t.Errorf("diagram missing column labels:\n%s", out)
	}
	if strings.Count(out, "lvl") != 4 {
		t.Errorf("diagram should have 4 level rows:\n%s", out)
	}
}

func TestBenesRearrangeability(t *testing.T) {
	routed, total := BenesRearrangeabilityCheck(16, 50, 1)
	if routed != total {
		t.Errorf("only %d of %d permutations routed edge-disjointly", routed, total)
	}
}

func TestRoutingExperiments(t *testing.T) {
	r := RandomRoutingExperiment(8, 3, RoutingOptions{Trials: 8, Workers: 2})
	if r.Trials != 8 {
		t.Errorf("ran %d trials, want 8", r.Trials)
	}
	if r.Stats.MinRatio < 1 {
		t.Errorf("a trial beat its certified bound: min steps/bound ratio %v", r.Stats.MinRatio)
	}
	if r.Stats.TotalPackets == 0 || r.CutCapacity == 0 {
		t.Errorf("degenerate run: %+v", r)
	}
	p := PermutationRoutingExperiment(8, 3, RoutingOptions{Trials: 4})
	if p.Stats.TotalPackets != 4*8 {
		t.Errorf("permutation trials routed %d packets, want %d", p.Stats.TotalPackets, 4*8)
	}
	if p.Stats.MinBound > 0 && p.Stats.MinRatio < 1 {
		t.Errorf("permutation trial beat its bound: %+v", p.Stats)
	}
	// Single-trial default matches the flat engine's single-trial run.
	single := RandomRoutingExperiment(8, 3, RoutingOptions{})
	if single.Trials != 1 {
		t.Errorf("zero options ran %d trials", single.Trials)
	}
	out := RenderRoutingTable("routing", []RoutingReport{r, p})
	if !strings.Contains(out, "crossings") || !strings.Contains(out, "steps/bound") {
		t.Errorf("table missing aggregate headers:\n%s", out)
	}
}
