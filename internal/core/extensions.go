package core

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/construct"
	"repro/internal/embed"
	"repro/internal/emulation"
	"repro/internal/exact"
	"repro/internal/expansion"
	"repro/internal/layout"
	"repro/internal/spread"
	"repro/internal/tablefmt"
	"repro/internal/topology"
	"repro/internal/transmute"
	"repro/internal/variants"
)

// VariantRow is one row of the §1.6 related-bounds table (experiment E12):
// Snir's Ω_n port-counting expansion and the Hong–Kung separator bound.
type VariantRow struct {
	N int `json:"n"`
	K int `json:"k"`
	// OmegaC is the measured (or exact, when OmegaExact) ported boundary
	// of Ω_n at size k.
	OmegaC     int  `json:"omega_c"`
	OmegaExact bool `json:"omega_exact"`
	SnirHolds  bool `json:"snir_holds"` // C·log C ≥ 4k
	// HKSeparator is the minimum input separator |D| for the FFT_n set.
	HKSeparator int  `json:"hk_separator"`
	HKHolds     bool `json:"hk_holds"` // k ≤ 2|D|·log|D|
}

// VariantsTable evaluates §1.6 on witness-style sets. For small base
// networks the Ω_n boundary is exact; otherwise it is the witness value.
func VariantsTable(n int, dims []int, exactNodes int) []VariantRow {
	omega := variants.NewOmega(n)
	fft := variants.NewFFT(n)
	var rows []VariantRow
	for _, d := range dims {
		set := expansion.BnEdgeWitness(omega.Base, minInt(d, omega.Base.Dim()-1))
		k := len(set)
		row := VariantRow{N: n, K: k}
		if omega.Base.N() <= exactNodes && k <= 8 {
			_, row.OmegaC = omega.MinPortedBoundary(k)
			row.OmegaExact = true
		} else {
			row.OmegaC = omega.PortedBoundary(set)
		}
		row.SnirHolds = variants.SnirInequalityHolds(row.OmegaC, k)

		hkSet := expansion.BnNodeWitness(fft.Base, minInt(d, fft.Base.Dim()-1))
		holds, sep := fft.VerifyHongKung(hkSet)
		row.HKSeparator = len(sep)
		row.HKHolds = holds
		rows = append(rows, row)
	}
	return rows
}

// RenderVariantsTable renders E12 rows.
func RenderVariantsTable(rows []VariantRow) string {
	t := tablefmt.New("§1.6 related bounds: Snir's Ω_n and Hong–Kung's FFT_n",
		"n", "k", "Ω_n boundary C", "exact", "C·logC ≥ 4k", "|D| (HK)", "k ≤ 2|D|log|D|")
	for _, r := range rows {
		t.AddRow(r.N, r.K, r.OmegaC, r.OmegaExact, r.SnirHolds, r.HKSeparator, r.HKHolds)
	}
	return t.String()
}

// BandwidthReport reproduces the §1.2 Kruskal–Snir discussion (experiment
// E13): the directed bisection width of Bn is n/2 — the "similar in spirit
// to Lemma 3.1" bound.
type BandwidthReport struct {
	N           int `json:"n"`
	Exact       int `json:"exact"`       // Unknown when beyond the budget
	Constructed int `json:"constructed"` // the column-prefix cut: always n/2
	Theory      int `json:"theory"`      // n/2
}

// BandwidthExperiment measures the directed bisection width.
func BandwidthExperiment(n int, exactNodes int) BandwidthReport {
	b := topology.NewButterfly(n)
	rep := BandwidthReport{N: n, Exact: Unknown, Theory: n / 2}
	rep.Constructed = bandwidth.DirectedCapacity(b, bandwidth.ColumnPrefixCut(b))
	if b.N() <= exactNodes {
		_, rep.Exact = bandwidth.MinDirectedBisection(b)
	}
	return rep
}

// RenderBandwidthTable renders E13 reports.
func RenderBandwidthTable(reports []BandwidthReport) string {
	t := tablefmt.New("Directed (Kruskal–Snir) bisection of Bn: bandwidth/4 ≤ width = n/2 (§1.2)",
		"n", "exact", "column-prefix cut", "theory n/2")
	for _, r := range reports {
		t.AddRow(r.N, fmtOrDash(r.Exact), r.Constructed, r.Theory)
	}
	return t.String()
}

// TransmutationExperiment runs the executable Lemma 3.2 pipeline
// (experiment E14) on a minimum bisection of Wn: the exact optimum when the
// network is small enough, the (provably optimal) column cut otherwise.
func TransmutationExperiment(n int, exactNodes int) (transmute.Result, error) {
	w := topology.NewWrappedButterfly(n)
	var side []bool
	if w.N() <= exactNodes {
		bis, _ := exact.MinBisectionWithBound(w.Graph, n)
		side = make([]bool, w.N())
		for v := range side {
			side[v] = bis.InS(v)
		}
	} else {
		side = make([]bool, w.N())
		for v := 0; v < w.N(); v++ {
			side[v] = w.Column(v) < w.Inputs()/2
		}
	}
	return transmute.Run(w, side)
}

// DisseminationExperiment runs the §1.3 growth experiment (E15): rumor
// spreading from a single node on Wn, with per-round growth verified
// against the credit-certified node expansion floor.
type DisseminationReport struct {
	N      int   `json:"n"`
	Rounds int   `json:"rounds"`
	Sizes  []int `json:"sizes"`
	// Diameter bounds Rounds from above for a single-seed run.
	Diameter int `json:"diameter"`
}

// Dissemination runs E15 on Wn.
func Dissemination(n int) (DisseminationReport, error) {
	w := topology.NewWrappedButterfly(n)
	tr, err := spread.Run(w.Graph, []int{0})
	if err != nil {
		return DisseminationReport{}, err
	}
	return DisseminationReport{N: n, Rounds: tr.Rounds, Sizes: tr.Sizes, Diameter: w.Diameter()}, nil
}

// RenderDisseminationTable renders E15 reports.
func RenderDisseminationTable(reports []DisseminationReport) string {
	t := tablefmt.New("Dissemination on Wn (§1.3): rounds vs diameter, informed sizes per round",
		"n", "rounds", "diameter", "sizes")
	for _, r := range reports {
		t.AddRow(r.N, r.Rounds, r.Diameter, fmt.Sprintf("%v", r.Sizes))
	}
	return t.String()
}

// EmulationRow records one §1.5 emulation run (experiment E16).
type EmulationRow struct {
	Pair      string `json:"pair"`
	Messages  int    `json:"messages"`
	HostSteps int    `json:"host_steps"`
	Budget    int    `json:"budget"` // the O(l+c+d) budget
}

// EmulationExperiments runs the emulation engine over the §1.5 embeddings.
func EmulationExperiments(n int) []EmulationRow {
	b := topology.NewButterfly(n)
	w := topology.NewWrappedButterfly(n)
	c := topology.NewCCC(n)
	hcEmb, _ := embed.ButterflyIntoHypercube(b)
	cases := []struct {
		name string
		e    *embed.Embedding
	}{
		{"Beneš on Bn", embed.BenesIntoButterfly(b)},
		{"Wn on CCCn", embed.WrappedIntoCCC(w, c)},
		{"Bn on hypercube", hcEmb},
	}
	var rows []EmulationRow
	for _, tc := range cases {
		res := emulation.EmulateStep(tc.e)
		rows = append(rows, EmulationRow{
			Pair:      tc.name,
			Messages:  res.Messages,
			HostSteps: res.HostSteps,
			Budget:    emulation.SlowdownBudget(tc.e),
		})
	}
	return rows
}

// RenderEmulationTable renders E16 rows.
func RenderEmulationTable(rows []EmulationRow) string {
	t := tablefmt.New("Network emulation through embeddings (§1.5): one guest step on the host",
		"pair", "messages", "host steps", "O(l+c+d) budget")
	for _, r := range rows {
		t.AddRow(r.Pair, r.Messages, r.HostSteps, r.Budget)
	}
	return t.String()
}

// LayoutRow records one §1.1 layout-area measurement (experiment E17).
type LayoutRow struct {
	N           int     `json:"n"`
	PackedArea  int     `json:"packed_area"`
	NaiveArea   int     `json:"naive_area"`
	PackedRatio float64 `json:"packed_ratio"` // area / n²; §1.1's tight value is 1±o(1), this
	// simple router achieves 2+o(1)
	BWSquared  int  `json:"bw_squared"` // Thompson floor from the constructed bisection width
	Consistent bool `json:"consistent"`
}

// LayoutExperiment lays Bn out on the Thompson grid with both strategies
// and checks the §1.2 Thompson relation against the constructed bisection.
// A layout that fails validation (overlapping wires, missing edges) is a
// router bug reported as an error, not a panic.
func LayoutExperiment(n int) (LayoutRow, error) {
	b := topology.NewButterfly(n)
	packed := layout.New(b, layout.Packed)
	naive := layout.New(b, layout.Naive)
	if err := packed.Validate(); err != nil {
		return LayoutRow{}, fmt.Errorf("core: packed layout of B%d failed validation: %w", n, err)
	}
	plan, err := construct.BestPlan(n)
	if err != nil {
		return LayoutRow{}, fmt.Errorf("core: layout experiment on B%d: %w", n, err)
	}
	bw := plan.Capacity
	return LayoutRow{
		N:           n,
		PackedArea:  packed.Area(),
		NaiveArea:   naive.Area(),
		PackedRatio: packed.AreaRatio(),
		BWSquared:   bw * bw,
		Consistent:  packed.ThompsonConsistent(bw),
	}, nil
}

// RenderLayoutTable renders E17 rows.
func RenderLayoutTable(rows []LayoutRow) string {
	t := tablefmt.New("VLSI layout of Bn (§1.1/§1.2): measured area vs Θ(n²) and Thompson's A ≥ BW²",
		"n", "packed area", "naive area", "area/n²", "BW²", "A ≥ BW²")
	for _, r := range rows {
		t.AddRow(r.N, r.PackedArea, r.NaiveArea, r.PackedRatio, r.BWSquared, r.Consistent)
	}
	return t.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
