// Package spread simulates information dissemination, the paper's §1.3
// motivation for node expansion: if k nodes hold a piece of information,
// one communication step grows the informed set to at least k + NE(G,k)
// nodes, so the time to inform everyone is governed by the expansion
// function. The load-balancing algorithms of [8] exploit exactly this.
package spread

import (
	"fmt"

	"repro/internal/cut"
	"repro/internal/graph"
)

// Step grows the informed set by one synchronous round: every informed node
// informs all its neighbors. It returns the new informed set (sorted).
func Step(g *graph.Graph, informed []int) []int {
	in := make([]bool, g.N())
	for _, v := range informed {
		in[v] = true
	}
	for _, v := range informed {
		for _, u := range g.Neighbors(v) {
			in[u] = true
		}
	}
	out := make([]int, 0, len(informed))
	for v, ok := range in {
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// Trace is the per-round record of a dissemination run.
type Trace struct {
	// Sizes[t] is the informed-set size after t rounds (Sizes[0] = |seed|).
	Sizes []int
	// Boundary[t] is |N(S_t)|, the node expansion actually realized going
	// into round t+1; Sizes[t+1] = Sizes[t] + Boundary[t].
	Boundary []int
	// Rounds is the number of rounds until everything is informed.
	Rounds int
}

// Run disseminates from seed until the whole graph is informed (requires a
// connected graph; it errors out after N rounds otherwise).
func Run(g *graph.Graph, seed []int) (Trace, error) {
	if len(seed) == 0 {
		return Trace{}, fmt.Errorf("spread: empty seed")
	}
	var tr Trace
	informed := append([]int(nil), seed...)
	tr.Sizes = append(tr.Sizes, len(informed))
	for len(informed) < g.N() {
		if tr.Rounds > g.N() {
			return tr, fmt.Errorf("spread: not fully informed after %d rounds (disconnected?)", tr.Rounds)
		}
		tr.Boundary = append(tr.Boundary, len(cut.NodeBoundary(g, informed)))
		informed = Step(g, informed)
		tr.Sizes = append(tr.Sizes, len(informed))
		tr.Rounds++
	}
	return tr, nil
}

// VerifyGrowth checks the §1.3 growth law on a trace against a node
// expansion oracle ne(k) ≤ NE(G,k): every round must have grown by at
// least ne(size). It returns the first violating round, or −1.
func VerifyGrowth(tr Trace, ne func(k int) int) int {
	for t := 0; t+1 < len(tr.Sizes); t++ {
		grew := tr.Sizes[t+1] - tr.Sizes[t]
		if grew < ne(tr.Sizes[t]) {
			return t
		}
	}
	return -1
}
