package spread

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestStepOnPath(t *testing.T) {
	g := pathGraph(5)
	got := Step(g, []int{2})
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("informed = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("informed = %v, want %v", got, want)
		}
	}
}

func TestRunInformsEverything(t *testing.T) {
	w := topology.NewWrappedButterfly(16)
	tr, err := Run(w.Graph, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Sizes[len(tr.Sizes)-1] != w.N() {
		t.Errorf("final size %d, want %d", tr.Sizes[len(tr.Sizes)-1], w.N())
	}
	// One informed node reaches everything within the diameter.
	if tr.Rounds > w.Diameter() {
		t.Errorf("took %d rounds, diameter is %d", tr.Rounds, w.Diameter())
	}
	// Sizes strictly increase until saturation.
	for i := 0; i+1 < len(tr.Sizes); i++ {
		if tr.Sizes[i+1] <= tr.Sizes[i] {
			t.Errorf("round %d did not grow: %v", i, tr.Sizes)
		}
	}
}

func TestGrowthMatchesBoundary(t *testing.T) {
	// Sizes[t+1] − Sizes[t] = |N(S_t)| exactly, by definition of Step.
	b := topology.NewButterfly(8)
	tr, err := Run(b.Graph, b.InputNodes()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < len(tr.Boundary); ti++ {
		if tr.Sizes[ti+1]-tr.Sizes[ti] != tr.Boundary[ti] {
			t.Errorf("round %d: grew %d but boundary was %d",
				ti, tr.Sizes[ti+1]-tr.Sizes[ti], tr.Boundary[ti])
		}
	}
}

func TestVerifyGrowthAgainstExactNE(t *testing.T) {
	// §1.3: every round grows by at least NE(G, k). Use the exact node
	// expansion as the oracle on a small Wn.
	w := topology.NewWrappedButterfly(8)
	neCache := make(map[int]int)
	ne := func(k int) int {
		if k >= w.N() {
			return 0
		}
		if v, ok := neCache[k]; ok {
			return v
		}
		_, v := exact.MinNodeExpansion(w.Graph, k)
		neCache[k] = v
		return v
	}
	for _, seed := range [][]int{{0}, {0, 1}, w.LevelNodes(0)[:3]} {
		tr, err := Run(w.Graph, seed)
		if err != nil {
			t.Fatal(err)
		}
		if bad := VerifyGrowth(tr, ne); bad >= 0 {
			t.Errorf("seed %v: round %d grew less than NE(G,k)", seed, bad)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(pathGraph(3), nil); err == nil {
		t.Errorf("empty seed accepted")
	}
	// Disconnected graph never finishes.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	if _, err := Run(b.Build(), []int{0}); err == nil {
		t.Errorf("disconnected graph should error")
	}
}
