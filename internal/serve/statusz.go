package serve

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// statuszEndpoint summarizes one endpoint's client-visible latency from
// its serve.latency_us histogram: count, interpolated quantiles and the
// exact observed max, all in microseconds.
type statuszEndpoint struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  int64   `json:"max_us"`
}

// statuszConfig is the effective (defaults-resolved) serving config —
// the numbers a bench report needs to interpret 429/503 rates.
type statuszConfig struct {
	MaxInflight       int     `json:"max_inflight"`
	MaxQueue          int     `json:"max_queue"`
	QueueWaitMS       float64 `json:"queue_wait_ms"`
	DefaultDeadlineMS float64 `json:"default_deadline_ms"`
	MaxDeadlineMS     float64 `json:"max_deadline_ms"`
	CacheEntries      int     `json:"cache_entries"`
	CacheBytes        int64   `json:"cache_bytes"`
	StoreConfigured   bool    `json:"store_configured"`
	AccessLog         bool    `json:"access_log"`
	Trace             bool    `json:"trace"`
}

// statuszOccupancy reports current cache (and, when configured, store)
// fill against the configured bounds.
type statuszOccupancy struct {
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// statuszDoc is the /debug/statusz document: one GET answers "what is
// this process, how long has it run, how is it configured, how full are
// its caches, what has it answered and how fast" — the first page of any
// incident, without correlating four metric series by hand.
type statuszDoc struct {
	Command   string                     `json:"command"`
	StartTime string                     `json:"start_time"`
	UptimeS   float64                    `json:"uptime_s"`
	Draining  bool                       `json:"draining"`
	Env       obs.Environment            `json:"env"`
	Config    statuszConfig              `json:"config"`
	Cache     statuszOccupancy           `json:"cache"`
	Store     *statuszOccupancy          `json:"store,omitempty"`
	Outcomes  map[string]int64           `json:"request_outcomes"`
	Endpoints map[string]statuszEndpoint `json:"endpoints"`
	Runtime   map[string]int64           `json:"runtime"`
}

// handleStatusz serves the live status snapshot.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	doc := statuszDoc{
		Command:   "butterflyd",
		StartTime: s.startTime.UTC().Format(time.RFC3339),
		UptimeS:   time.Since(s.startTime).Seconds(),
		Draining:  s.draining.Load(),
		Env:       s.env,
		Config: statuszConfig{
			MaxInflight:       s.cfg.MaxInflight,
			MaxQueue:          s.cfg.MaxQueue,
			QueueWaitMS:       float64(s.cfg.QueueWait) / float64(time.Millisecond),
			DefaultDeadlineMS: float64(s.cfg.DefaultDeadline) / float64(time.Millisecond),
			MaxDeadlineMS:     float64(s.cfg.MaxDeadline) / float64(time.Millisecond),
			CacheEntries:      s.cfg.CacheEntries,
			CacheBytes:        s.cfg.CacheBytes,
			StoreConfigured:   s.cfg.Store != nil,
			AccessLog:         s.accessLog != nil,
			Trace:             s.cfg.Trace != nil,
		},
		Cache: statuszOccupancy{
			Entries: int64(s.cache.len()),
			Bytes:   s.cache.totalBytes(),
		},
		Outcomes:  make(map[string]int64, len(requestOutcomes)),
		Endpoints: make(map[string]statuszEndpoint, len(s.latencies)),
		Runtime:   make(map[string]int64, 3),
	}
	for outcome, c := range requestOutcomes {
		doc.Outcomes[outcome] = c.Value()
	}
	// Endpoint names sort only for deterministic iteration of any bugs;
	// the JSON map marshals sorted regardless.
	names := make([]string, 0, len(s.latencies))
	for name := range s.latencies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := s.latencies[name].Snapshot()
		mean := float64(0)
		if snap.Count > 0 {
			mean = float64(snap.Sum) / float64(snap.Count)
		}
		doc.Endpoints[name] = statuszEndpoint{
			Count:  snap.Count,
			MeanUS: mean,
			P50US:  snap.Quantile(0.50),
			P95US:  snap.Quantile(0.95),
			P99US:  snap.Quantile(0.99),
			MaxUS:  snap.Max,
		}
	}
	// The registry snapshot runs the refreshers, so the runtime block
	// (and store.bytes, published on store mutation) is current.
	snap := obs.Default.Snapshot()
	for name, v := range snap {
		if strings.HasPrefix(name, "runtime.") {
			if n, ok := v.(int64); ok {
				doc.Runtime[name] = n
			}
		}
	}
	if s.cfg.Store != nil {
		occ := &statuszOccupancy{Entries: int64(s.cfg.Store.Len())}
		if n, ok := snap["store.bytes"].(int64); ok {
			occ.Bytes = n
		}
		doc.Store = occ
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = w.Write(data)
}
